// Ablation studies for the design choices DESIGN.md calls out:
//   A. coherent candidate extraction (witness constraint) on/off,
//   B. Equation 2's coverage-based pruning on/off,
//   C. FCT-/IFE-index dominance filtering on/off for coverage evaluation,
//   D. multi-scan vs single-scan swapping,
//   E. distribution distance measure choice for the major/minor classifier.

#include <iostream>

#include "bench_common.h"
#include "midas/common/timer.h"
#include "midas/queryform/formulation.h"
#include "midas/select/candidate_gen.h"

namespace midas {
namespace bench {
namespace {

// Shared pipeline pieces for A-C.
struct Pipeline {
  GraphDatabase db;
  FctSet fcts;
  std::map<ClusterId, Csg> csgs;
  FctIndex fct_index;
  IfeIndex ife_index;

  explicit Pipeline(size_t n, uint64_t seed) {
    MoleculeGenerator gen(seed);
    db = gen.Generate(MoleculeGenerator::PubchemLike(n));
    FctSet::Config fc;
    fc.sup_min = 0.5;
    fc.max_edges = 3;
    fcts = FctSet::Mine(db, fc);
    ClusterSet::Config cc;
    cc.num_coarse = 6;
    cc.max_cluster_size = 60;
    Rng rng(seed);
    ClusterSet clusters = ClusterSet::Build(db, fcts, cc, rng);
    for (const auto& [cid, c] : clusters.clusters()) {
      csgs.emplace(cid, Csg::Build(db, c.members));
    }
    fct_index = FctIndex::Build(db, fcts);
    ife_index = IfeIndex::Build(db, fcts);
  }
};

void AblationCoherence(const Pipeline& p) {
  Table t("Ablation A  coherent extraction (witness constraint)",
          {"mode", "candidates", "mean scov", "zero-scov share"});
  for (bool coherent : {true, false}) {
    CatapultConfig cfg;
    cfg.budget.eta_min = 3;
    cfg.budget.eta_max = 8;
    cfg.budget.gamma = 16;
    cfg.coherent_extraction = coherent;
    cfg.sample_cap = 0;
    Rng rng(7);
    PatternSet set =
        SelectCannedPatterns(p.db, p.fcts, p.csgs, cfg, rng, &p.fct_index,
                             &p.ife_index);
    double scov_sum = 0.0;
    size_t zero = 0;
    for (const auto& [pid, pat] : set.patterns()) {
      scov_sum += pat.scov;
      if (pat.coverage.empty()) ++zero;
    }
    size_t n = std::max<size_t>(1, set.size());
    t.AddRow({coherent ? "coherent" : "unconstrained",
              std::to_string(set.size()),
              Fmt(scov_sum / static_cast<double>(n)),
              FmtPct(100.0 * static_cast<double>(zero) /
                     static_cast<double>(n))});
  }
  t.Print();
}

void AblationPruning(const Pipeline& p) {
  Table t("Ablation B  Equation 2 coverage-based pruning",
          {"mode", "candidates", "generation time"});
  // An existing pattern set with moderate coverage so pruning has teeth.
  PatternSet existing;
  Rng seed_rng(3);
  CatapultConfig sel;
  sel.budget.eta_min = 3;
  sel.budget.eta_max = 8;
  sel.budget.gamma = 8;
  sel.sample_cap = 0;
  existing = SelectCannedPatterns(p.db, p.fcts, p.csgs, sel, seed_rng,
                                  &p.fct_index, &p.ife_index);
  IdSet universe(p.db.Ids());

  for (bool pruning : {true, false}) {
    CandidateGenConfig cfg;
    cfg.budget.eta_min = 3;
    cfg.budget.eta_max = 8;
    cfg.enable_pruning = pruning;
    cfg.max_candidates = 512;
    Rng rng(11);
    Timer timer;
    auto candidates = GeneratePromisingCandidates(
        p.db, p.fcts, p.csgs, existing, universe, cfg, rng);
    t.AddRow({pruning ? "Eq.2 pruning" : "no pruning",
              std::to_string(candidates.size()), FmtMs(timer.ElapsedMs())});
  }
  t.Print();
}

void AblationIndices(const Pipeline& p) {
  Table t("Ablation C  index-accelerated coverage evaluation",
          {"mode", "time for 64 evaluations", "avg candidates verified"});
  Rng qrng(13);
  std::vector<Graph> probes;
  auto ids = p.db.Ids();
  for (int i = 0; i < 64; ++i) {
    const Graph* g =
        p.db.Find(ids[static_cast<size_t>(qrng.UniformInt(0, ids.size() - 1))]);
    probes.push_back(RandomConnectedSubgraph(*g, 6, qrng));
  }
  for (bool use_indices : {true, false}) {
    Rng rng(17);
    CoverageEvaluator eval(p.db, 0, rng,
                           use_indices ? &p.fct_index : nullptr,
                           use_indices ? &p.ife_index : nullptr);
    Timer timer;
    size_t covered = 0;
    for (const Graph& probe : probes) covered += eval.CoverageOf(probe).size();
    t.AddRow({use_indices ? "FCT+IFE indices" : "full VF2 scan",
              FmtMs(timer.ElapsedMs()),
              Fmt(static_cast<double>(covered) / 64.0, 1)});
  }
  t.Print();
}

void AblationMultiScan() {
  Table t("Ablation D  multi-scan vs single-scan swapping",
          {"max scans", "swaps", "f_scov gain", "PMT"});
  for (int scans : {1, 3}) {
    MidasConfig cfg = PaperConfig(42);
    cfg.swap.max_scans = scans;
    World world(MoleculeGenerator::PubchemLike(Scaled(150)), cfg, 42);
    double scov_before =
        world.engine->CurrentQuality().scov;
    BatchUpdate delta = world.MakeDelta(25, true);
    MaintenanceStats stats = world.engine->ApplyUpdate(delta);
    double scov_after = world.engine->CurrentQuality().scov;
    t.AddRow({std::to_string(scans), std::to_string(stats.swaps),
              Fmt(scov_after - scov_before, 3), FmtMs(stats.total_ms)});
  }
  t.Print();
}

void AblationQueryLog() {
  // Section 3.5 extension: a log of boron-family queries steers swaps
  // towards workload-relevant patterns, cutting MP on that workload.
  Table t("Ablation F  query-log-aware swapping (Section 3.5 extension)",
          {"mode", "MP on workload", "mean steps", "panel log-weight",
           "swaps"});
  for (bool use_log : {false, true}) {
    MidasConfig cfg = PaperConfig(42);
    // Scarce acceptance (strict sw2, single scan): only candidates whose
    // score clears (1+λ)× the weakest pattern's get in, so the log boost
    // decides *which* candidates make the cut.
    cfg.lambda = 2.0;
    cfg.swap.lambda = 2.0;
    cfg.swap.max_scans = 1;
    cfg.swap.log_boost = 6.0;
    World world(MoleculeGenerator::PubchemLike(Scaled(150)), cfg, 42);

    // Build the future workload: queries over new-family graphs.
    BatchUpdate delta = world.MakeDelta(25, true);
    IdSet before(world.engine->db().Ids());

    QueryLog log;
    if (use_log) {
      // Users have been asking boron-flavored queries; pre-log a sample of
      // the incoming family's subgraphs.
      // Logged queries must be larger than candidate patterns for the
      // containment-based weight to fire.
      Rng lrng(5);
      while (log.size() < 48) {
        for (const Graph& g : delta.insertions) {
          log.Record(RandomConnectedSubgraph(g, 16, lrng));
          if (log.size() >= 48) break;
        }
      }
      world.engine->SetQueryLog(&log);
    }
    MaintenanceStats stats = world.engine->ApplyUpdate(delta);

    std::vector<GraphId> added;
    for (GraphId id : world.engine->db().Ids()) {
      if (!before.Contains(id)) added.push_back(id);
    }
    // Evaluation workload: fresh queries from the same family.
    Rng qrng(9);
    std::vector<Graph> workload;
    for (int i = 0; i < 60; ++i) {
      GraphId id = added[static_cast<size_t>(
          qrng.UniformInt(0, added.size() - 1))];
      Graph q = RandomConnectedSubgraph(*world.engine->db().Find(id), 8,
                                        qrng);
      if (q.NumEdges() > 0) workload.push_back(std::move(q));
    }
    // How aligned is the final panel with what users formulate? Weigh every
    // pattern against an out-of-sample log of the same workload.
    QueryLog eval_log;
    for (const Graph& q : workload) eval_log.Record(q);
    double weight_sum = 0.0;
    for (const auto& [pid, p] : world.engine->patterns().patterns()) {
      weight_sum += eval_log.PatternWeight(p.graph);
    }
    double panel_weight =
        world.engine->patterns().size() == 0
            ? 0.0
            : weight_sum /
                  static_cast<double>(world.engine->patterns().size());

    t.AddRow({use_log ? "log-boosted" : "log-oblivious",
              FmtPct(MissedPercentage(workload, world.engine->patterns())),
              Fmt(MeanSteps(workload, world.engine->patterns()), 2),
              Fmt(panel_weight, 3), std::to_string(stats.swaps)});
  }
  t.Print();
}

void AblationDistance() {
  Table t("Ablation E  distribution distance measure (Section 3.4 claim)",
          {"measure", "minor-batch distance", "major-batch distance",
           "ratio major/minor"});
  MoleculeGenerator gen(21);
  MoleculeGenConfig data = MoleculeGenerator::PubchemLike(Scaled(150));
  GraphDatabase db = gen.Generate(data);
  GraphletCensus census(db);
  auto psi0 = census.Distribution();

  auto evolved_psi = [&](bool new_family) {
    GraphDatabase copy = db;
    GraphletCensus c = census;
    MoleculeGenerator g2(22);
    BatchUpdate delta = g2.GenerateAdditions(copy, data, 40, new_family);
    for (GraphId id : copy.ApplyBatch(delta)) c.Add(id, *copy.Find(id));
    return c.Distribution();
  };
  auto psi_minor = evolved_psi(false);
  auto psi_major = evolved_psi(true);

  struct M {
    const char* name;
    DistributionDistance d;
  };
  for (const M& m : {M{"euclidean", DistributionDistance::kEuclidean},
                     M{"manhattan", DistributionDistance::kManhattan},
                     M{"cosine", DistributionDistance::kCosine},
                     M{"hellinger", DistributionDistance::kHellinger}}) {
    double dm = DistributionDistanceValue(psi0, psi_minor, m.d);
    double dM = DistributionDistanceValue(psi0, psi_major, m.d);
    t.AddRow({m.name, Fmt(dm, 4), Fmt(dM, 4),
              dm > 0 ? Fmt(dM / dm, 1) + "x" : "inf"});
  }
  t.Print();
}

}  // namespace
}  // namespace bench
}  // namespace midas

int main() {
  using namespace midas::bench;
  std::cout << "MIDAS bench_ablation (design-choice studies), scale="
            << ScaleFactor() << "\n";
  midas::bench::Pipeline p(Scaled(200), 5);
  midas::bench::AblationCoherence(p);
  midas::bench::AblationPruning(p);
  midas::bench::AblationIndices(p);
  midas::bench::AblationMultiScan();
  midas::bench::AblationQueryLog();
  midas::bench::AblationDistance();
  return 0;
}
