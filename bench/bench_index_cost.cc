// Experiment 2 (Figure 12): cost of the FCT pool and the FCT-/IFE-indices —
// construction time, memory footprint, and maintenance time — on PubChem-like
// databases of increasing size, plus the |FCT|/|D| ratio the paper reports.

#include <iostream>

#include "bench_common.h"
#include "midas/common/timer.h"
#include "midas/obs/metrics.h"

int main() {
  using namespace midas;
  using namespace midas::bench;
  std::cout << "MIDAS bench_index_cost (Figure 12), scale=" << ScaleFactor()
            << "\n";

  Table build("Fig 12 (top)  FCT mining + index construction",
              {"|D|", "FCT mine", "|FCT|", "|FCT|/|D|", "I_FCT build",
               "I_IFE build", "FCT mem", "I_FCT mem", "I_IFE mem"});
  Table maintain("Fig 12 (bottom)  maintenance cost under +10% additions",
                 {"|D|", "FCT maintain", "index maintain", "graphs added"});

  MidasConfig cfg = PaperConfig(42);
  for (size_t base : {100u, 200u, 400u, 800u}) {
    size_t n = Scaled(base);
    MoleculeGenerator gen(42);
    MoleculeGenConfig data_cfg = MoleculeGenerator::PubchemLike(n);
    GraphDatabase db = gen.Generate(data_cfg);

    Timer mine_t;
    FctSet fcts = FctSet::Mine(db, cfg.fct);
    double mine_ms = mine_t.ElapsedMs();

    Timer fct_idx_t;
    FctIndex fct_index = FctIndex::Build(db, fcts);
    double fct_idx_ms = fct_idx_t.ElapsedMs();

    Timer ife_idx_t;
    IfeIndex ife_index = IfeIndex::Build(db, fcts);
    double ife_idx_ms = ife_idx_t.ElapsedMs();

    size_t fct_count = fcts.FrequentClosedTrees().size();
    build.AddRow({std::to_string(n), FmtMs(mine_ms),
                  std::to_string(fct_count),
                  FmtPct(100.0 * static_cast<double>(fct_count) /
                             static_cast<double>(n),
                         2),
                  FmtMs(fct_idx_ms), FmtMs(ife_idx_ms),
                  Fmt(static_cast<double>(fcts.MemoryBytes()) / 1024.0, 1) +
                      "KB",
                  Fmt(static_cast<double>(fct_index.MemoryBytes()) / 1024.0,
                      1) +
                      "KB",
                  Fmt(static_cast<double>(ife_index.MemoryBytes()) / 1024.0,
                      1) +
                      "KB"});

    // Maintenance: +10% additions.
    size_t add = std::max<size_t>(1, n / 10);
    BatchUpdate delta = gen.GenerateAdditions(db, data_cfg, add, true);
    std::vector<GraphId> added = db.ApplyBatch(delta);

    Timer fct_maint_t;
    fcts.MaintainAdd(db, added);
    double fct_maint_ms = fct_maint_t.ElapsedMs();

    Timer idx_maint_t;
    for (GraphId id : added) {
      const Graph* g = db.Find(id);
      if (g == nullptr) continue;
      fct_index.AddGraph(id, *g);
      ife_index.AddGraph(id, *g);
    }
    fct_index.SyncFeatures(db, fcts);
    ife_index.SyncEdges(db, fcts);
    double idx_maint_ms = idx_maint_t.ElapsedMs();

    maintain.AddRow({std::to_string(n), FmtMs(fct_maint_ms),
                     FmtMs(idx_maint_ms), std::to_string(add)});
  }

  // Incremental-view sweep: the same evolving world run with the
  // materialized views on and off, across batch sizes from 1% to 50% of
  // |D|. With views on, refresh cost should track |Δ| (sub-linear rounds at
  // the small ratios); with views off every round pays the full |D| rescan.
  // Every cell is a fresh world (same seed) so the ratios stay comparable;
  // minor-only rounds (huge epsilon) isolate the refresh phase from
  // candidate/swap noise, and sample_cap=0 keeps the evaluation universe
  // exact — the regime the delta path is built for.
  Table views("Incremental views  round latency vs |Delta|/|D| (3-round mean)",
              {"|Delta|/|D|", "views on", "views off", "speedup",
               "strategy"});
  struct Ratio {
    double pct;
    const char* tag;
  };
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  for (const Ratio& ratio :
       {Ratio{1.0, "r01"}, Ratio{5.0, "r05"}, Ratio{20.0, "r20"},
        Ratio{50.0, "r50"}}) {
    double mean_ms[2] = {0.0, 0.0};  // [views on, views off]
    std::string strategy = "off";
    for (int views_on = 1; views_on >= 0; --views_on) {
      MidasConfig vcfg = LightConfig(7);
      vcfg.sample_cap = 0;      // exact universe: clean delta semantics
      vcfg.num_threads = 1;     // serial: latency differences are the path
      vcfg.epsilon = 1e9;       // minor-only rounds isolate the refresh
      vcfg.incremental_views = views_on != 0;
      World world(MoleculeGenerator::PubchemLike(Scaled(150)), vcfg, 7);
      // Warmup round: seeds the committed view base and the rescan EWMA.
      world.engine->ApplyUpdate(world.MakeDelta(ratio.pct, false));
      double total = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        MaintenanceStats st =
            world.engine->ApplyUpdate(world.MakeDelta(ratio.pct, false));
        total += st.total_ms;
        if (views_on != 0) strategy = st.ViewStrategy();
      }
      mean_ms[views_on == 0] = total / 3.0;
      reg.GetGauge(std::string("bench_view_round_ms_") + ratio.tag +
                   (views_on != 0 ? "_on" : "_off"))
          ->Set(total / 3.0);
    }
    views.AddRow({FmtPct(ratio.pct, 0), FmtMs(mean_ms[0]), FmtMs(mean_ms[1]),
                  Fmt(mean_ms[0] > 0.0 ? mean_ms[1] / mean_ms[0] : 0.0, 2) +
                      "x",
                  strategy});
  }

  build.Print();
  maintain.Print();
  views.Print();
  EmitMetricsJson();
  WriteBenchJson("index_cost");
  return 0;
}
