#include "bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

#include "midas/obs/export.h"
#include "midas/obs/json.h"
#include "midas/obs/metrics.h"

namespace midas {
namespace bench {

double ScaleFactor() {
  const char* env = std::getenv("MIDAS_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

size_t Scaled(size_t base) {
  double s = static_cast<double>(base) * ScaleFactor();
  return std::max<size_t>(4, static_cast<size_t>(s));
}

MidasConfig PaperConfig(uint64_t seed) {
  MidasConfig cfg;
  cfg.fct.sup_min = 0.5;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 6;
  cfg.cluster.max_cluster_size = 60;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 12;
  cfg.budget.gamma = 30;
  cfg.walk.num_walks = 80;
  cfg.walk.walk_length = 20;
  cfg.epsilon = 0.005;  // rescaled with the dataset sizes (paper: 0.1)
  cfg.kappa = 0.1;
  cfg.lambda = 0.1;
  cfg.sample_cap = 150;
  cfg.pcp_starts = 2;
  cfg.seed = seed;
  return cfg;
}

MidasConfig LightConfig(uint64_t seed) {
  MidasConfig cfg = PaperConfig(seed);
  cfg.budget.eta_max = 8;
  cfg.budget.gamma = 16;
  cfg.walk.num_walks = 50;
  cfg.walk.walk_length = 15;
  cfg.sample_cap = 100;
  return cfg;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& out) const {
  std::vector<size_t> widths(columns_.size(), 0);
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  out << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::string cell = i < row.size() ? row[i] : "";
      out << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    out << "\n";
  };
  print_row(columns_);
  std::string rule;
  for (size_t i = 0; i < columns_.size(); ++i) {
    rule += std::string(widths[i], '-') + "  ";
  }
  out << rule << "\n";
  for (const auto& row : rows_) print_row(row);
  out.flush();
}

void Table::Print() const { Print(std::cout); }

std::string Fmt(double value, int precision) {
  std::ostringstream s;
  s << std::fixed << std::setprecision(precision) << value;
  return s.str();
}

std::string FmtPct(double value, int precision) {
  return Fmt(value, precision) + "%";
}

std::string FmtMs(double ms) {
  if (ms >= 1000.0) return Fmt(ms / 1000.0, 2) + "s";
  return Fmt(ms, 1) + "ms";
}

World::World(MoleculeGenConfig data_cfg, const MidasConfig& cfg, uint64_t seed)
    : gen(seed), data(data_cfg) {
  GraphDatabase db = gen.Generate(data);
  engine = std::make_unique<MidasEngine>(std::move(db), cfg);
  engine->Initialize();
}

BatchUpdate World::MakeDelta(double percent, bool new_family) {
  size_t count = static_cast<size_t>(
      std::max(1.0, std::abs(percent) / 100.0 *
                        static_cast<double>(engine->db().size())));
  if (percent >= 0) {
    GraphDatabase copy = engine->db();
    return gen.GenerateAdditions(copy, data, count, new_family);
  }
  return gen.GenerateDeletions(engine->db(), count);
}

BatchUpdate World::MakeTargetedDeletion(const std::string& label,
                                        double percent) {
  size_t count = static_cast<size_t>(
      std::max(1.0, percent / 100.0 *
                        static_cast<double>(engine->db().size())));
  return gen.GenerateTargetedDeletions(engine->db(), label, count);
}

std::vector<Graph> MakeQueries(const GraphDatabase& db,
                               const std::vector<GraphId>& delta_ids,
                               size_t count, size_t min_edges,
                               size_t max_edges, uint64_t seed) {
  QueryGenConfig cfg;
  cfg.count = count;
  cfg.min_edges = min_edges;
  cfg.max_edges = max_edges;
  Rng rng(seed);
  return GenerateBalancedQueries(db, delta_ids, cfg, rng);
}

std::vector<std::string> QualityCells(const PatternQuality& q) {
  return {Fmt(q.scov), Fmt(q.lcov), Fmt(q.div), Fmt(q.cog_avg)};
}

void EmitMetricsJson() {
  std::cout << "\n=== midas metrics (json) ===\n"
            << obs::ExportJson(obs::MetricsRegistry::Current()) << "\n";
  std::cout.flush();
}

std::string WriteBenchJson(const std::string& suite, std::string out_dir) {
  if (out_dir.empty()) {
    const char* env = std::getenv("MIDAS_BENCH_OUT_DIR");
    out_dir = env != nullptr && env[0] != '\0' ? env : ".";
  }
  const std::string path = out_dir + "/BENCH_" + suite + ".json";

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("suite").Value(suite);
  w.Key("scale").Value(ScaleFactor());
  // The host's core count rides with every committed trajectory file so
  // 1-core container numbers are never misread as scaling claims.
  unsigned hw = std::thread::hardware_concurrency();
  w.Key("host_cores").Value(static_cast<uint64_t>(hw == 0 ? 1 : hw));
  w.EndObject();
  // Splice the metrics document (already JSON) in before the closing brace.
  std::string body = w.str();
  body.insert(body.size() - 1,
              ",\"metrics\":" + obs::ExportJson(obs::MetricsRegistry::Current()));

  std::ofstream out(path, std::ios::trunc);
  out << body << "\n";
  out.flush();
  if (!out) {
    std::cerr << "WriteBenchJson: cannot write " << path << "\n";
    return "";
  }
  std::cout << "bench json: " << path << "\n";
  return path;
}

}  // namespace bench
}  // namespace midas
