// Experiments of Section 7.2 (Figures 9 and 10): the simulated user study.
//
// Figure 9: a PubChem-like database evolves with a new-family batch
// addition; three query sets (Qs1 from the original D, Qs2 mixed, Qs3 from
// Δ⁺) are formulated with the pattern sets of MIDAS, NoMaintain, CATAPULT
// and CATAPULT++ by simulated users; QFT / steps / VMT are reported.
//
// Figure 10: user-specified (ad-hoc mixed) queries on all three datasets.

#include <iostream>

#include "bench_common.h"
#include "midas/queryform/user_model.h"

namespace midas {
namespace bench {
namespace {

struct Approach {
  const char* name;
  const PatternSet* patterns;
};

struct StudyOutcome {
  double qft = 0.0;
  double steps = 0.0;
  double vmt = 0.0;
};

StudyOutcome RunStudy(const std::vector<Graph>& queries,
                      const PatternSet& patterns, uint64_t seed) {
  UserModelConfig um;
  Rng rng(seed);
  StudyOutcome out;
  size_t vmt_count = 0;
  for (const Graph& q : queries) {
    SimulatedFormulation s =
        SimulateUsersWithEdits(q, patterns, /*trials=*/5, um, rng);
    out.qft += s.qft_seconds;
    out.steps += static_cast<double>(s.steps);
    if (s.vmt_seconds > 0) {
      out.vmt += s.vmt_seconds;
      ++vmt_count;
    }
  }
  size_t n = queries.size();
  if (n > 0) {
    out.qft /= static_cast<double>(n);
    out.steps /= static_cast<double>(n);
  }
  if (vmt_count > 0) out.vmt /= static_cast<double>(vmt_count);
  return out;
}

void AddStudyRows(Table& table, const char* query_set,
                  const std::vector<Graph>& queries,
                  const std::vector<Approach>& approaches, uint64_t seed) {
  for (const Approach& a : approaches) {
    StudyOutcome o = RunStudy(queries, *a.patterns, seed);
    table.AddRow({query_set, a.name, Fmt(o.qft, 1) + "s", Fmt(o.steps, 1),
                  Fmt(o.vmt, 1) + "s"});
  }
}

// Queries drawn exclusively from the given id pool.
std::vector<Graph> QueriesFromPool(const GraphDatabase& db,
                                   const std::vector<GraphId>& pool,
                                   size_t count, size_t min_edges,
                                   size_t max_edges, Rng& rng) {
  std::vector<Graph> queries;
  while (queries.size() < count && !pool.empty()) {
    GraphId id = pool[static_cast<size_t>(rng.UniformInt(0, pool.size() - 1))];
    const Graph* g = db.Find(id);
    if (g == nullptr) continue;
    size_t target = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(min_edges),
                       static_cast<int64_t>(max_edges)));
    Graph q = RandomConnectedSubgraph(*g, target, rng);
    if (q.NumEdges() > 0) queries.push_back(std::move(q));
  }
  return queries;
}

void Figure9() {
  MidasConfig cfg = PaperConfig(42);
  MoleculeGenConfig data_cfg = MoleculeGenerator::PubchemLike(Scaled(150));

  World world(data_cfg, cfg, 42);
  World stale(data_cfg, cfg, 42);

  std::vector<GraphId> original_ids = world.engine->db().Ids();
  BatchUpdate delta = world.MakeDelta(25, true);
  IdSet before_ids(original_ids);
  world.engine->ApplyUpdate(delta, MaintenanceMode::kMidas);
  stale.engine->ApplyUpdate(delta, MaintenanceMode::kNoMaintain);

  std::vector<GraphId> delta_ids;
  for (GraphId id : world.engine->db().Ids()) {
    if (!before_ids.Contains(id)) delta_ids.push_back(id);
  }

  FromScratchResult cat = RunFromScratch(world.engine->db(), cfg, false, 42);
  FromScratchResult catpp = RunFromScratch(world.engine->db(), cfg, true, 42);

  std::vector<Approach> approaches = {
      {"MIDAS", &world.engine->patterns()},
      {"NoMaintain", &stale.engine->patterns()},
      {"CATAPULT", &cat.patterns},
      {"CATAPULT++", &catpp.patterns},
  };

  // Qs1: 5 queries from D; Qs2: 2 from D + 3 from delta; Qs3: 5 from delta.
  Rng qrng(1000);
  const GraphDatabase& db = world.engine->db();
  std::vector<Graph> qs1 = QueriesFromPool(db, original_ids, 5, 8, 18, qrng);
  std::vector<Graph> qs2 = QueriesFromPool(db, original_ids, 2, 8, 18, qrng);
  for (Graph& q : QueriesFromPool(db, delta_ids, 3, 8, 18, qrng)) {
    qs2.push_back(std::move(q));
  }
  std::vector<Graph> qs3 = QueriesFromPool(db, delta_ids, 5, 8, 18, qrng);

  Table t("Fig 9  simulated user study, PubChem-like (5 users per query)",
          {"query set", "approach", "mean QFT", "mean steps", "mean VMT"});
  AddStudyRows(t, "Qs1 (from D)", qs1, approaches, 7);
  AddStudyRows(t, "Qs2 (mixed)", qs2, approaches, 8);
  AddStudyRows(t, "Qs3 (from delta)", qs3, approaches, 9);
  t.Print();
}

void Figure10() {
  Table t("Fig 10  user-specified (ad-hoc) queries, all datasets",
          {"dataset", "approach", "mean QFT", "mean steps", "mean VMT"});

  struct DatasetSpec {
    const char* name;
    MoleculeGenConfig cfg;
    uint64_t seed;
  };
  std::vector<DatasetSpec> datasets = {
      {"PubChem-like", MoleculeGenerator::PubchemLike(Scaled(150)), 52},
      {"AIDS-like", MoleculeGenerator::AidsLike(Scaled(250)), 53},
      {"eMol-like", MoleculeGenerator::EmolLike(Scaled(50)), 54},
  };

  for (const DatasetSpec& spec : datasets) {
    MidasConfig cfg = PaperConfig(spec.seed);
    World world(spec.cfg, cfg, spec.seed);
    World stale(spec.cfg, cfg, spec.seed);

    BatchUpdate delta = world.MakeDelta(25, true);
    IdSet before_ids(world.engine->db().Ids());
    world.engine->ApplyUpdate(delta, MaintenanceMode::kMidas);
    stale.engine->ApplyUpdate(delta, MaintenanceMode::kNoMaintain);

    std::vector<GraphId> delta_ids;
    for (GraphId id : world.engine->db().Ids()) {
      if (!before_ids.Contains(id)) delta_ids.push_back(id);
    }

    FromScratchResult cat =
        RunFromScratch(world.engine->db(), cfg, false, spec.seed);
    FromScratchResult catpp =
        RunFromScratch(world.engine->db(), cfg, true, spec.seed);

    // Ad-hoc queries: 5 per "user", mixed origin, sizes 8-18 edges.
    std::vector<Graph> queries =
        MakeQueries(world.engine->db(), delta_ids, 25, 8, 18, spec.seed + 5);

    std::vector<Approach> approaches = {
        {"MIDAS", &world.engine->patterns()},
        {"NoMaintain", &stale.engine->patterns()},
        {"CATAPULT", &cat.patterns},
        {"CATAPULT++", &catpp.patterns},
    };
    for (const Approach& a : approaches) {
      StudyOutcome o = RunStudy(queries, *a.patterns, spec.seed + 9);
      t.AddRow({spec.name, a.name, Fmt(o.qft, 1) + "s", Fmt(o.steps, 1),
                Fmt(o.vmt, 1) + "s"});
    }
  }
  t.Print();
}

}  // namespace
}  // namespace bench
}  // namespace midas

int main() {
  using namespace midas::bench;
  std::cout << "MIDAS bench_user_study (Figures 9-10), scale=" << ScaleFactor()
            << "\n";
  midas::bench::Figure9();
  midas::bench::Figure10();
  return 0;
}
