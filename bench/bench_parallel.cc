// Parallel-substrate experiment: ApplyUpdate wall time of the same seeded
// maintenance stream at 1/2/4/8 threads. Every configuration replays an
// identical workload (fresh world, fixed seeds, unlimited budgets, cleared
// memo cache), so the only variable is the task-pool width and the table's
// speedup column is a genuine strong-scaling curve. A second panel reports
// the ComputeCache hit rate accumulated across the sweep.
//
// Acceptance targets (docs/performance.md): >= 1.3x at 2 threads and
// >= 2.5x at 8 threads on the major-modification rounds measured here.

#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "midas/common/timer.h"
#include "midas/graph/compute_cache.h"

int main() {
  using namespace midas;
  using namespace midas::bench;
  std::cout << "MIDAS bench_parallel (task-pool strong scaling), scale="
            << ScaleFactor() << "\n";
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "hardware_concurrency=" << hw << "\n";
  if (hw < 8) {
    std::cout << "note: fewer than 8 hardware threads — sweep points above "
              << hw << " threads measure scheduling overhead, not scaling\n";
  }

  constexpr int kRounds = 3;
  const size_t db_size = Scaled(300);

  Table table("ApplyUpdate scaling, PubchemLike(" + std::to_string(db_size) +
                  "), " + std::to_string(kRounds) + " major rounds",
              {"threads", "init(ms)", "PMT total", "PMT mean", "speedup"});

  double serial_total = -1.0;
  for (int threads : {1, 2, 4, 8}) {
    // Each configuration starts cold: a warm memo cache from the previous
    // sweep point would hide compute the next one should be measured on.
    ComputeCache::Global().Clear();

    MidasConfig cfg = LightConfig(42);
    cfg.round_deadline_ms = 0.0;  // unlimited: measure the full round
    cfg.round_step_limit = 0;
    cfg.epsilon = 0.004;  // fixed-size deltas must take the major path
    cfg.num_threads = threads;

    Timer init_timer;
    World world(MoleculeGenerator::PubchemLike(db_size), cfg, 42);
    double init_ms = init_timer.ElapsedMs();

    double total_ms = 0.0;
    for (int round = 0; round < kRounds; ++round) {
      BatchUpdate delta = world.MakeDelta(10.0, true);
      MaintenanceStats stats = world.engine->ApplyUpdate(delta);
      total_ms += stats.total_ms;
    }

    if (threads == 1) serial_total = total_ms;
    double speedup = serial_total > 0.0 ? serial_total / total_ms : 1.0;
    table.AddRow({std::to_string(threads), FmtMs(init_ms),
                  FmtMs(total_ms), FmtMs(total_ms / kRounds),
                  Fmt(speedup, 2) + "x"});
  }
  table.Print();

  ComputeCache::Stats cache = ComputeCache::Global().stats();
  uint64_t probes = cache.hits + cache.misses;
  Table cache_table("ComputeCache (GED + containment memo), sweep lifetime",
                    {"hits", "misses", "evictions", "hit rate"});
  cache_table.AddRow({std::to_string(cache.hits), std::to_string(cache.misses),
                      std::to_string(cache.evictions),
                      FmtPct(probes > 0 ? 100.0 * static_cast<double>(
                                                      cache.hits) /
                                              static_cast<double>(probes)
                                        : 0.0)});
  cache_table.Print();

  EmitMetricsJson();
  WriteBenchJson("parallel");
  return 0;
}
