// Experiment 3b/3c (Figures 14 and 15): MIDAS vs CATAPULT, CATAPULT++ and
// Random swapping on AIDS-like and PubChem-like databases across a grid of
// batch modifications. Reports maintenance time (PMT), missed percentage
// (MP), reduction ratio mu (positive: the baseline needs more steps than
// MIDAS), and pattern-set quality (scov / lcov / div / avg cog).

#include <iostream>

#include "bench_common.h"
#include "midas/queryform/formulation.h"

namespace midas {
namespace bench {
namespace {

struct DeltaSpec {
  const char* name;
  double percent;
  bool new_family;
};

constexpr DeltaSpec kDeltas[] = {
    {"+10%", 10, true},   {"+20%", 20, true},   {"+40%", 40, true},
    {"-10%", -10, false}, {"-20%", -20, false}, {"-S fam", 0, false},
};

void RunDataset(const char* dataset_name, MoleculeGenConfig data_cfg,
                uint64_t seed) {
  MidasConfig cfg = PaperConfig(seed);

  Table time_table(std::string("Fig 14/15 [") + dataset_name +
                       "]  maintenance time",
                   {"delta", "MIDAS", "Random", "CATAPULT", "CATAPULT++"});
  Table mp_table(std::string("Fig 14/15 [") + dataset_name +
                     "]  missed percentage (MP)",
                 {"delta", "MIDAS", "Random", "CATAPULT", "CATAPULT++"});
  Table mu_table(std::string("Fig 14/15 [") + dataset_name +
                     "]  reduction ratio mu vs MIDAS (positive: MIDAS wins)",
                 {"delta", "Random", "CATAPULT", "CATAPULT++"});
  Table quality_table(std::string("Fig 14/15 [") + dataset_name +
                          "]  pattern set quality after maintenance",
                      {"delta", "approach", "scov", "lcov", "div", "cog"});

  for (const DeltaSpec& spec : kDeltas) {
    // Twin worlds with identical seeds: one maintained by MIDAS, one by
    // random swapping.
    World world(data_cfg, cfg, seed);
    World world_rand(data_cfg, cfg, seed);
    BatchUpdate delta =
        spec.percent == 0
            ? world.MakeTargetedDeletion("S", 25)
            : world.MakeDelta(spec.percent, spec.new_family);

    IdSet before_ids(world.engine->db().Ids());
    MaintenanceStats midas_stats = world.engine->ApplyUpdate(delta);
    MaintenanceStats rand_stats =
        world_rand.engine->ApplyUpdate(delta, MaintenanceMode::kRandomSwap);

    std::vector<GraphId> added;
    for (GraphId id : world.engine->db().Ids()) {
      if (!before_ids.Contains(id)) added.push_back(id);
    }

    FromScratchResult cat =
        RunFromScratch(world.engine->db(), cfg, /*plus_plus=*/false, seed);
    FromScratchResult catpp =
        RunFromScratch(world.engine->db(), cfg, /*plus_plus=*/true, seed);

    std::vector<Graph> queries = MakeQueries(
        world.engine->db(), added, 100, 4, 20, seed + 17);

    const PatternSet& midas_p = world.engine->patterns();
    const PatternSet& rand_p = world_rand.engine->patterns();

    time_table.AddRow({spec.name, FmtMs(midas_stats.total_ms),
                       FmtMs(rand_stats.total_ms), FmtMs(cat.total_ms),
                       FmtMs(catpp.total_ms)});
    mp_table.AddRow({spec.name, FmtPct(MissedPercentage(queries, midas_p)),
                     FmtPct(MissedPercentage(queries, rand_p)),
                     FmtPct(MissedPercentage(queries, cat.patterns)),
                     FmtPct(MissedPercentage(queries, catpp.patterns))});
    mu_table.AddRow({spec.name,
                     Fmt(ReductionRatio(queries, rand_p, midas_p), 3),
                     Fmt(ReductionRatio(queries, cat.patterns, midas_p), 3),
                     Fmt(ReductionRatio(queries, catpp.patterns, midas_p), 3)});

    size_t universe = world.engine->evaluator().universe().size();
    auto add_quality = [&](const char* approach, const PatternSet& set) {
      PatternQuality q = EvaluateQuality(set, universe);
      std::vector<std::string> row = {spec.name, approach};
      for (std::string& cell : QualityCells(q)) row.push_back(std::move(cell));
      quality_table.AddRow(std::move(row));
    };
    add_quality("MIDAS", midas_p);
    add_quality("Random", rand_p);
    add_quality("CATAPULT", cat.patterns);
    add_quality("CATAPULT++", catpp.patterns);
  }

  time_table.Print();
  mp_table.Print();
  mu_table.Print();
  quality_table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace midas

int main() {
  using namespace midas;
  using namespace midas::bench;
  std::cout << "MIDAS bench_baselines (Figures 14-15), scale="
            << ScaleFactor() << "\n";
  RunDataset("AIDS25K-like", MoleculeGenerator::AidsLike(Scaled(250)), 42);
  RunDataset("PubChem15K-like", MoleculeGenerator::PubchemLike(Scaled(150)),
             43);
  EmitMetricsJson();
  WriteBenchJson("baselines");
  return 0;
}
