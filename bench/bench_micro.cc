// google-benchmark micro suite covering the core kernels: VF2 subgraph
// isomorphism, GED (exact + bounds), graphlet census, canonical forms,
// FCT mining and maintenance, index construction, CSG integration, and the
// swap machinery.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "midas/graph/canonical.h"
#include "midas/graph/ged.h"
#include "midas/graph/graphlet.h"
#include "midas/graph/subgraph_iso.h"
#include "midas/index/pf_matrix.h"
#include "midas/maintain/swap.h"
#include "midas/obs/metrics.h"
#include "midas/queryform/formulation.h"
#include "midas/queryform/query_executor.h"

namespace midas {
namespace {

GraphDatabase SharedDb(size_t n = 60) {
  MoleculeGenerator gen(7);
  return gen.Generate(MoleculeGenerator::PubchemLike(n));
}

Graph SharedPattern() {
  GraphDatabase db = SharedDb(5);
  Rng rng(3);
  return RandomConnectedSubgraph(*db.Find(0), 5, rng);
}

void BM_Vf2Contains(benchmark::State& state) {
  GraphDatabase db = SharedDb();
  Graph pattern = SharedPattern();
  auto ids = db.Ids();
  size_t i = 0;
  for (auto _ : state) {
    const Graph* g = db.Find(ids[i++ % ids.size()]);
    benchmark::DoNotOptimize(ContainsSubgraph(pattern, *g));
  }
}
BENCHMARK(BM_Vf2Contains);

void BM_Vf2CountEmbeddings(benchmark::State& state) {
  GraphDatabase db = SharedDb();
  Graph pattern = SharedPattern();
  const Graph* g = db.Find(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountEmbeddings(pattern, *g, 256));
  }
}
BENCHMARK(BM_Vf2CountEmbeddings);

void BM_GedExactSmall(benchmark::State& state) {
  LabelDictionary d;
  Rng rng(5);
  std::vector<Graph> graphs;
  for (int i = 0; i < 16; ++i) {
    Graph g;
    for (int v = 0; v < 6; ++v) {
      g.AddVertex(d.Intern(std::string(1, 'A' + rng.UniformInt(0, 2))));
    }
    for (int v = 1; v < 6; ++v) {
      g.AddEdge(static_cast<VertexId>(rng.UniformInt(0, v - 1)),
                static_cast<VertexId>(v));
    }
    graphs.push_back(std::move(g));
  }
  size_t i = 0;
  for (auto _ : state) {
    const Graph& a = graphs[i % graphs.size()];
    const Graph& b = graphs[(i + 1) % graphs.size()];
    ++i;
    benchmark::DoNotOptimize(GedExact(a, b));
  }
}
BENCHMARK(BM_GedExactSmall);

void BM_GedLowerBound(benchmark::State& state) {
  GraphDatabase db = SharedDb();
  const Graph* a = db.Find(0);
  const Graph* b = db.Find(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GedLowerBound(*a, *b));
  }
}
BENCHMARK(BM_GedLowerBound);

void BM_GraphletCensus(benchmark::State& state) {
  GraphDatabase db = SharedDb();
  auto ids = db.Ids();
  size_t i = 0;
  for (auto _ : state) {
    const Graph* g = db.Find(ids[i++ % ids.size()]);
    benchmark::DoNotOptimize(CountGraphlets(*g));
  }
}
BENCHMARK(BM_GraphletCensus);

void BM_CanonicalTree(benchmark::State& state) {
  LabelDictionary d;
  Rng rng(9);
  Graph tree;
  for (int v = 0; v < 12; ++v) {
    tree.AddVertex(d.Intern(std::string(1, 'A' + rng.UniformInt(0, 3))));
  }
  for (int v = 1; v < 12; ++v) {
    tree.AddEdge(static_cast<VertexId>(rng.UniformInt(0, v - 1)),
                 static_cast<VertexId>(v));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CanonicalTreeString(tree));
  }
}
BENCHMARK(BM_CanonicalTree);

void BM_FctMine(benchmark::State& state) {
  GraphDatabase db = SharedDb(static_cast<size_t>(state.range(0)));
  FctSet::Config cfg;
  cfg.sup_min = 0.5;
  cfg.max_edges = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(FctSet::Mine(db, cfg));
  }
}
BENCHMARK(BM_FctMine)->Arg(30)->Arg(60);

void BM_FctMaintainAdd(benchmark::State& state) {
  MoleculeGenerator gen(11);
  MoleculeGenConfig data = MoleculeGenerator::PubchemLike(60);
  GraphDatabase db = gen.Generate(data);
  FctSet::Config cfg;
  cfg.sup_min = 0.5;
  cfg.max_edges = 3;
  FctSet base = FctSet::Mine(db, cfg);
  BatchUpdate delta = gen.GenerateAdditions(db, data, 6, true);
  std::vector<GraphId> added = db.ApplyBatch(delta);
  for (auto _ : state) {
    FctSet copy = base;
    copy.MaintainAdd(db, added);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_FctMaintainAdd);

void BM_FctIndexBuild(benchmark::State& state) {
  GraphDatabase db = SharedDb();
  FctSet fcts = FctSet::Mine(db, {0.5, 3, 20000});
  for (auto _ : state) {
    benchmark::DoNotOptimize(FctIndex::Build(db, fcts));
  }
}
BENCHMARK(BM_FctIndexBuild);

void BM_CsgBuild(benchmark::State& state) {
  GraphDatabase db = SharedDb();
  IdSet members(db.Ids());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Csg::Build(db, members));
  }
}
BENCHMARK(BM_CsgBuild);

void BM_CoverageEvaluation(benchmark::State& state) {
  GraphDatabase db = SharedDb();
  FctSet fcts = FctSet::Mine(db, {0.5, 3, 20000});
  FctIndex fct_index = FctIndex::Build(db, fcts);
  IfeIndex ife_index = IfeIndex::Build(db, fcts);
  Rng rng(13);
  CoverageEvaluator eval(db, 0, rng, &fct_index, &ife_index);
  Graph pattern = SharedPattern();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.CoverageOf(pattern));
  }
}
BENCHMARK(BM_CoverageEvaluation);

void BM_GedUpperBound(benchmark::State& state) {
  GraphDatabase db = SharedDb();
  const Graph* a = db.Find(0);
  const Graph* b = db.Find(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GedUpperBound(*a, *b));
  }
}
BENCHMARK(BM_GedUpperBound);

void BM_GraphletCensusMaintenance(benchmark::State& state) {
  GraphDatabase db = SharedDb();
  GraphletCensus census(db);
  const Graph* g = db.Find(2);
  for (auto _ : state) {
    census.Add(99999, *g);
    census.Remove(99999);
    benchmark::DoNotOptimize(census.totals());
  }
}
BENCHMARK(BM_GraphletCensusMaintenance);

void BM_QueryExecution(benchmark::State& state) {
  GraphDatabase db = SharedDb(120);
  FctSet fcts = FctSet::Mine(db, {0.5, 3, 20000});
  FctIndex fct_index = FctIndex::Build(db, fcts);
  IfeIndex ife_index = IfeIndex::Build(db, fcts);
  QueryExecutor exec(db, &fct_index, &ife_index);
  Rng rng(23);
  std::vector<Graph> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back(RandomConnectedSubgraph(*db.Find(i), 6, rng));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(queries[i++ % queries.size()]));
  }
}
BENCHMARK(BM_QueryExecution);

void BM_FormulationPlanWithEdits(benchmark::State& state) {
  GraphDatabase db = SharedDb();
  LabelDictionary& d = db.labels();
  PatternSet panel;
  Rng rng(29);
  for (int i = 0; i < 12; ++i) {
    CannedPattern p;
    p.graph = RandomConnectedSubgraph(*db.Find(i), 5, rng);
    panel.Add(std::move(p));
  }
  (void)d;
  Graph query = RandomConnectedSubgraph(*db.Find(20), 12, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanFormulationWithEdits(query, panel));
  }
}
BENCHMARK(BM_FormulationPlanWithEdits);

void BM_MultiScanSwap(benchmark::State& state) {
  GraphDatabase db = SharedDb(80);
  FctSet fcts = FctSet::Mine(db, {0.5, 3, 20000});
  Rng rng(31);
  CoverageEvaluator eval(db, 0, rng);
  PatternSet base;
  std::vector<Graph> candidates;
  Rng qrng(37);
  for (int i = 0; i < 8; ++i) {
    CannedPattern p;
    p.graph = RandomConnectedSubgraph(*db.Find(i), 4, qrng);
    RefreshPatternMetrics(p, eval, fcts);
    base.Add(std::move(p));
    candidates.push_back(RandomConnectedSubgraph(*db.Find(i + 20), 4, qrng));
  }
  SwapConfig cfg;
  for (auto _ : state) {
    PatternSet set = base;
    benchmark::DoNotOptimize(
        MultiScanSwap(set, candidates, eval, fcts, cfg));
  }
}
BENCHMARK(BM_MultiScanSwap);

// Full maintenance rounds (one addition batch + one deletion batch per
// iteration, so the database stays roughly steady) under a fresh registry
// that is either collecting (arg 1) or disabled (arg 0). Comparing the two
// rows bounds the observability overhead of the maintenance loop; the
// acceptance target is a disabled registry within 2% of... itself with
// metrics on, i.e. the arg-0 row must not be measurably slower than before
// instrumentation existed.
void BM_MaintainRound(benchmark::State& state) {
  static bench::World* world = new bench::World(
      MoleculeGenerator::PubchemLike(40), bench::LightConfig(17), 17);
  obs::MetricsRegistry reg;
  reg.set_enabled(state.range(0) != 0);
  obs::ScopedMetricsRegistry scoped(reg);
  for (auto _ : state) {
    BatchUpdate add = world->MakeDelta(5.0, false);
    benchmark::DoNotOptimize(world->engine->ApplyUpdate(add));
    BatchUpdate del = world->MakeDelta(-5.0, false);
    benchmark::DoNotOptimize(world->engine->ApplyUpdate(del));
  }
}
BENCHMARK(BM_MaintainRound)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_TightGedEstimate(benchmark::State& state) {
  GraphDatabase db = SharedDb();
  FctSet fcts = FctSet::Mine(db, {0.5, 3, 20000});
  std::vector<Graph> features = GedFeatureTrees(fcts);
  const Graph* a = db.Find(0);
  const Graph* b = db.Find(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GedTightLowerBoundWithFeatures(*a, *b, features));
  }
}
BENCHMARK(BM_TightGedEstimate);

}  // namespace
}  // namespace midas

// BENCHMARK_MAIN plus a machine-readable dump of every metric the kernel
// benchmarks incremented (the CI smoke job parses the block).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  midas::bench::EmitMetricsJson();
  midas::bench::WriteBenchJson("micro");
  return 0;
}
