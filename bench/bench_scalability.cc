// Experiment 4 (Figure 16): scalability of MIDAS on PubChem-like databases
// of increasing size with a fixed-size batch addition. Reports PMT, PGT,
// pattern quality, the step reduction mu relative to the smallest dataset's
// pattern set, and the cluster-maintenance vs regeneration speedup.

#include <iostream>

#include "bench_common.h"
#include "midas/common/timer.h"
#include "midas/queryform/formulation.h"

int main() {
  using namespace midas;
  using namespace midas::bench;
  std::cout << "MIDAS bench_scalability (Figure 16), scale=" << ScaleFactor()
            << "\n";

  MidasConfig cfg = LightConfig(42);
  size_t add_count = Scaled(50);

  Table times("Fig 16 (left)  PMT / PGT / cluster maintenance vs regeneration",
              {"|D|", "PMT", "PGT", "cluster maint", "scratch cluster",
               "speedup", "scratch total"});
  Table quality("Fig 16 (right)  pattern quality and step reduction",
                {"|D|", "scov", "lcov", "div", "cog", "mu vs smallest"});

  PatternSet smallest_patterns;
  std::vector<Graph> shared_queries;

  for (size_t base : {200u, 450u, 950u}) {
    size_t n = Scaled(base);
    // The fixed-size delta dilutes the graphlet shift as |D| grows; scale
    // the evolution threshold so every size runs the Type-1 (major) path,
    // whose cost is what this experiment measures.
    cfg.epsilon = 0.005 * 200.0 / static_cast<double>(n);
    World world(MoleculeGenerator::PubchemLike(n), cfg, 42);
    BatchUpdate delta = world.MakeDelta(
        100.0 * static_cast<double>(add_count) /
            static_cast<double>(world.engine->db().size()),
        true);

    IdSet before_ids(world.engine->db().Ids());
    MaintenanceStats stats = world.engine->ApplyUpdate(delta);

    // From-scratch comparison on the evolved database.
    FromScratchResult scratch =
        RunFromScratch(world.engine->db(), cfg, true, 42);
    double speedup = stats.cluster_ms + stats.csg_ms > 0
                         ? scratch.cluster_ms /
                               (stats.cluster_ms + stats.csg_ms)
                         : 0.0;
    times.AddRow(
        {std::to_string(n), FmtMs(stats.total_ms),
         FmtMs(stats.candidate_ms + stats.swap_ms),
         FmtMs(stats.cluster_ms + stats.csg_ms), FmtMs(scratch.cluster_ms),
         Fmt(speedup, 1) + "x", FmtMs(scratch.total_ms)});

    std::vector<GraphId> added;
    for (GraphId id : world.engine->db().Ids()) {
      if (!before_ids.Contains(id)) added.push_back(id);
    }
    if (shared_queries.empty()) {
      // Queries fixed from the smallest configuration (paper's mu baseline).
      shared_queries =
          MakeQueries(world.engine->db(), added, 80, 4, 16, 777);
      smallest_patterns = world.engine->patterns();
    }
    double mu = ReductionRatio(shared_queries, smallest_patterns,
                               world.engine->patterns());
    PatternQuality q = world.engine->CurrentQuality();
    std::vector<std::string> row = {std::to_string(n)};
    for (std::string& cell : QualityCells(q)) row.push_back(std::move(cell));
    row.push_back(Fmt(-mu, 3));  // paper reports negative mu = more reduction
    quality.AddRow(std::move(row));
  }

  times.Print();
  quality.Print();
  EmitMetricsJson();
  WriteBenchJson("scalability");
  return 0;
}
