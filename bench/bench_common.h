#ifndef MIDAS_BENCH_BENCH_COMMON_H_
#define MIDAS_BENCH_BENCH_COMMON_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "midas/datagen/molecule_gen.h"
#include "midas/datagen/workload.h"
#include "midas/maintain/midas.h"

namespace midas {
namespace bench {

/// Global dataset scale factor, read from MIDAS_BENCH_SCALE (default 1.0).
/// All experiment dataset sizes are multiplied by it, so the full paper
/// grid can be approached on bigger machines without code changes.
double ScaleFactor();
size_t Scaled(size_t base);

/// Shared experiment configuration: the paper's parameter defaults
/// (η_min = 3, η_max = 12, γ = 30, sup_min = 0.5, ε = 0.1, κ = λ = 0.1)
/// with walk/sampling knobs sized for single-core synthetic runs.
MidasConfig PaperConfig(uint64_t seed = 42);

/// Reduced-budget variant used by the heavier sweep benches.
MidasConfig LightConfig(uint64_t seed = 42);

/// Plain-text aligned table, one per figure panel.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);
  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& out) const;
  void Print() const;  // stdout

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string Fmt(double value, int precision = 2);
std::string FmtPct(double value, int precision = 1);
std::string FmtMs(double ms);

/// A ready-to-evolve world: generator + dataset config + initialized engine.
struct World {
  MoleculeGenerator gen;
  MoleculeGenConfig data;
  std::unique_ptr<MidasEngine> engine;

  World(MoleculeGenConfig data_cfg, const MidasConfig& cfg, uint64_t seed);

  /// Batch update of ±percent of the current database size. Positive =
  /// additions (new_family controls major/minor flavor), negative =
  /// deletions.
  BatchUpdate MakeDelta(double percent, bool new_family);

  /// Family-targeted deletion: removes up to `percent`% of the database,
  /// restricted to graphs containing `label` — the major-deletion mirror of
  /// a new-family insertion.
  BatchUpdate MakeTargetedDeletion(const std::string& label, double percent);
};

/// Balanced query workload against the world's database.
std::vector<Graph> MakeQueries(const GraphDatabase& db,
                               const std::vector<GraphId>& delta_ids,
                               size_t count, size_t min_edges,
                               size_t max_edges, uint64_t seed);

/// Pattern-set quality snapshot columns (scov, lcov, div, avg cog).
std::vector<std::string> QualityCells(const PatternQuality& q);

/// Dumps the current obs::MetricsRegistry as a fenced JSON block on stdout:
/// a `=== midas metrics (json) ===` marker line followed by one line of
/// JSON (obs::ExportJson). Downstream tooling (and the CI smoke check)
/// extracts the line after the marker and feeds it to a JSON parser.
void EmitMetricsJson();

/// Writes the machine-readable result of a bench run to
/// `<out_dir>/BENCH_<suite>.json`:
///   {"suite": ..., "scale": ScaleFactor(), "metrics": <obs::ExportJson>}
/// `out_dir` defaults to MIDAS_BENCH_OUT_DIR (or "." when unset). Returns
/// the path written, or "" (with a stderr note) on I/O failure. CI uploads
/// these files as artifacts.
std::string WriteBenchJson(const std::string& suite,
                           std::string out_dir = std::string());

}  // namespace bench
}  // namespace midas

#endif  // MIDAS_BENCH_BENCH_COMMON_H_
