// Experiment 3a (Figure 13): MIDAS vs NoMaintain on an AIDS-like database.
// After each batch modification the maintained and the stale pattern sets
// are compared on missed percentage, diversity and subgraph coverage over a
// Δ⁺-balanced query workload.

#include <iostream>

#include "bench_common.h"
#include "midas/queryform/formulation.h"

int main() {
  using namespace midas;
  using namespace midas::bench;
  std::cout << "MIDAS bench_no_maintain (Figure 13), scale=" << ScaleFactor()
            << "\n";

  MidasConfig cfg = PaperConfig(42);
  MoleculeGenConfig data_cfg = MoleculeGenerator::AidsLike(Scaled(250));

  struct DeltaSpec {
    const char* name;
    double percent;
    bool new_family;
  };
  constexpr DeltaSpec kDeltas[] = {
      {"+10%", 10, true},   {"+20%", 20, true},   {"+40%", 40, true},
      {"-10%", -10, false}, {"-20%", -20, false}, {"-S fam", 0, false},
  };

  Table mp("Fig 13  missed percentage (MP)",
           {"delta", "MIDAS", "NoMaintain"});
  Table div("Fig 13  pattern diversity (f_div)",
            {"delta", "MIDAS", "NoMaintain"});
  Table scov("Fig 13  subgraph coverage (f_scov)",
             {"delta", "MIDAS", "NoMaintain"});

  for (const DeltaSpec& spec : kDeltas) {
    World world(data_cfg, cfg, 42);
    World stale(data_cfg, cfg, 42);
    // "-S fam": family-targeted deletion (major); others: size-based.
    BatchUpdate delta =
        spec.percent == 0
            ? world.MakeTargetedDeletion("S", 25)
            : world.MakeDelta(spec.percent, spec.new_family);

    IdSet before_ids(world.engine->db().Ids());
    world.engine->ApplyUpdate(delta, MaintenanceMode::kMidas);
    stale.engine->ApplyUpdate(delta, MaintenanceMode::kNoMaintain);

    std::vector<GraphId> added;
    for (GraphId id : world.engine->db().Ids()) {
      if (!before_ids.Contains(id)) added.push_back(id);
    }
    std::vector<Graph> queries =
        MakeQueries(world.engine->db(), added, 100, 4, 20, 1234);

    mp.AddRow({spec.name,
               FmtPct(MissedPercentage(queries, world.engine->patterns())),
               FmtPct(MissedPercentage(queries, stale.engine->patterns()))});
    PatternQuality qm = world.engine->CurrentQuality();
    PatternQuality qs = stale.engine->CurrentQuality();
    div.AddRow({spec.name, Fmt(qm.div), Fmt(qs.div)});
    scov.AddRow({spec.name, Fmt(qm.scov), Fmt(qs.scov)});
  }

  mp.Print();
  div.Print();
  scov.Print();
  return 0;
}
