// Experiment 1 (Figure 11): sensitivity to the evolution ratio threshold ε
// and the swapping thresholds κ = λ on an AIDS-like database with a 20%
// batch addition. Reports pattern maintenance time (PMT), cluster/CSG
// maintenance time, and pattern generation time (PGT = candidate generation
// + swapping), with CATAPULT++ regeneration as the reference.

#include <iostream>

#include "bench_common.h"

int main() {
  using namespace midas;
  using namespace midas::bench;
  std::cout << "MIDAS bench_thresholds (Figure 11), scale=" << ScaleFactor()
            << "\n";

  MoleculeGenConfig data_cfg = MoleculeGenerator::AidsLike(Scaled(250));

  // --- vary epsilon ------------------------------------------------------
  {
    Table t("Fig 11 (left)  varying evolution ratio threshold eps",
            {"eps", "major?", "PMT", "cluster+csg time", "PGT",
             "CATAPULT++ total"});
    for (double eps : {0.0025, 0.005, 0.01, 0.02, 0.04}) {
      MidasConfig cfg = PaperConfig(42);
      cfg.epsilon = eps;
      World world(data_cfg, cfg, 42);
      BatchUpdate delta = world.MakeDelta(20, true);
      MaintenanceStats stats = world.engine->ApplyUpdate(delta);
      FromScratchResult catpp =
          RunFromScratch(world.engine->db(), cfg, true, 42);
      t.AddRow({Fmt(eps, 4), stats.major ? "yes" : "no",
                FmtMs(stats.total_ms),
                FmtMs(stats.cluster_ms + stats.csg_ms),
                FmtMs(stats.candidate_ms + stats.swap_ms),
                FmtMs(catpp.total_ms)});
    }
    t.Print();
  }

  // --- vary kappa = lambda ------------------------------------------------
  {
    Table t("Fig 11 (right)  varying swapping thresholds kappa = lambda",
            {"kappa", "PMT", "PGT", "swaps", "candidates",
             "CATAPULT++ total"});
    for (double kappa : {0.05, 0.1, 0.2, 0.4}) {
      MidasConfig cfg = PaperConfig(42);
      cfg.kappa = kappa;
      cfg.lambda = kappa;
      World world(data_cfg, cfg, 42);
      BatchUpdate delta = world.MakeDelta(20, true);
      MaintenanceStats stats = world.engine->ApplyUpdate(delta);
      FromScratchResult catpp =
          RunFromScratch(world.engine->db(), cfg, true, 42);
      t.AddRow({Fmt(kappa, 2), FmtMs(stats.total_ms),
                FmtMs(stats.candidate_ms + stats.swap_ms),
                std::to_string(stats.swaps), std::to_string(stats.candidates),
                FmtMs(catpp.total_ms)});
    }
    t.Print();
  }
  return 0;
}
