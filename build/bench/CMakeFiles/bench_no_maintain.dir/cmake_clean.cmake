file(REMOVE_RECURSE
  "CMakeFiles/bench_no_maintain.dir/bench_common.cc.o"
  "CMakeFiles/bench_no_maintain.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_no_maintain.dir/bench_no_maintain.cc.o"
  "CMakeFiles/bench_no_maintain.dir/bench_no_maintain.cc.o.d"
  "bench_no_maintain"
  "bench_no_maintain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_no_maintain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
