# Empty dependencies file for bench_no_maintain.
# This may be replaced when dependencies are built.
