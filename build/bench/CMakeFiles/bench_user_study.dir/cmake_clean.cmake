file(REMOVE_RECURSE
  "CMakeFiles/bench_user_study.dir/bench_common.cc.o"
  "CMakeFiles/bench_user_study.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_user_study.dir/bench_user_study.cc.o"
  "CMakeFiles/bench_user_study.dir/bench_user_study.cc.o.d"
  "bench_user_study"
  "bench_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
