# Empty dependencies file for bench_index_cost.
# This may be replaced when dependencies are built.
