file(REMOVE_RECURSE
  "CMakeFiles/bench_index_cost.dir/bench_common.cc.o"
  "CMakeFiles/bench_index_cost.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_index_cost.dir/bench_index_cost.cc.o"
  "CMakeFiles/bench_index_cost.dir/bench_index_cost.cc.o.d"
  "bench_index_cost"
  "bench_index_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
