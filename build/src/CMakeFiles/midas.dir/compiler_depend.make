# Empty compiler generated dependencies file for midas.
# This may be replaced when dependencies are built.
