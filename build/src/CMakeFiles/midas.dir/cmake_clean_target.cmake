file(REMOVE_RECURSE
  "libmidas.a"
)
