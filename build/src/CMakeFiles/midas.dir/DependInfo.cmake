
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/midas/cluster/clustering.cc" "src/CMakeFiles/midas.dir/midas/cluster/clustering.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/cluster/clustering.cc.o.d"
  "/root/repo/src/midas/cluster/csg.cc" "src/CMakeFiles/midas.dir/midas/cluster/csg.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/cluster/csg.cc.o.d"
  "/root/repo/src/midas/cluster/feature.cc" "src/CMakeFiles/midas.dir/midas/cluster/feature.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/cluster/feature.cc.o.d"
  "/root/repo/src/midas/cluster/kmeans.cc" "src/CMakeFiles/midas.dir/midas/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/cluster/kmeans.cc.o.d"
  "/root/repo/src/midas/common/id_set.cc" "src/CMakeFiles/midas.dir/midas/common/id_set.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/common/id_set.cc.o.d"
  "/root/repo/src/midas/common/rng.cc" "src/CMakeFiles/midas.dir/midas/common/rng.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/common/rng.cc.o.d"
  "/root/repo/src/midas/common/sparse_matrix.cc" "src/CMakeFiles/midas.dir/midas/common/sparse_matrix.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/common/sparse_matrix.cc.o.d"
  "/root/repo/src/midas/common/stats.cc" "src/CMakeFiles/midas.dir/midas/common/stats.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/common/stats.cc.o.d"
  "/root/repo/src/midas/datagen/molecule_gen.cc" "src/CMakeFiles/midas.dir/midas/datagen/molecule_gen.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/datagen/molecule_gen.cc.o.d"
  "/root/repo/src/midas/datagen/protein_gen.cc" "src/CMakeFiles/midas.dir/midas/datagen/protein_gen.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/datagen/protein_gen.cc.o.d"
  "/root/repo/src/midas/datagen/workload.cc" "src/CMakeFiles/midas.dir/midas/datagen/workload.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/datagen/workload.cc.o.d"
  "/root/repo/src/midas/graph/canonical.cc" "src/CMakeFiles/midas.dir/midas/graph/canonical.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/graph/canonical.cc.o.d"
  "/root/repo/src/midas/graph/closure_graph.cc" "src/CMakeFiles/midas.dir/midas/graph/closure_graph.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/graph/closure_graph.cc.o.d"
  "/root/repo/src/midas/graph/dot_export.cc" "src/CMakeFiles/midas.dir/midas/graph/dot_export.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/graph/dot_export.cc.o.d"
  "/root/repo/src/midas/graph/ged.cc" "src/CMakeFiles/midas.dir/midas/graph/ged.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/graph/ged.cc.o.d"
  "/root/repo/src/midas/graph/graph.cc" "src/CMakeFiles/midas.dir/midas/graph/graph.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/graph/graph.cc.o.d"
  "/root/repo/src/midas/graph/graph_database.cc" "src/CMakeFiles/midas.dir/midas/graph/graph_database.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/graph/graph_database.cc.o.d"
  "/root/repo/src/midas/graph/graph_io.cc" "src/CMakeFiles/midas.dir/midas/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/graph/graph_io.cc.o.d"
  "/root/repo/src/midas/graph/graph_statistics.cc" "src/CMakeFiles/midas.dir/midas/graph/graph_statistics.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/graph/graph_statistics.cc.o.d"
  "/root/repo/src/midas/graph/graphlet.cc" "src/CMakeFiles/midas.dir/midas/graph/graphlet.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/graph/graphlet.cc.o.d"
  "/root/repo/src/midas/graph/mccs.cc" "src/CMakeFiles/midas.dir/midas/graph/mccs.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/graph/mccs.cc.o.d"
  "/root/repo/src/midas/graph/subgraph_iso.cc" "src/CMakeFiles/midas.dir/midas/graph/subgraph_iso.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/graph/subgraph_iso.cc.o.d"
  "/root/repo/src/midas/index/fct_index.cc" "src/CMakeFiles/midas.dir/midas/index/fct_index.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/index/fct_index.cc.o.d"
  "/root/repo/src/midas/index/ife_index.cc" "src/CMakeFiles/midas.dir/midas/index/ife_index.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/index/ife_index.cc.o.d"
  "/root/repo/src/midas/index/pf_matrix.cc" "src/CMakeFiles/midas.dir/midas/index/pf_matrix.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/index/pf_matrix.cc.o.d"
  "/root/repo/src/midas/index/trie.cc" "src/CMakeFiles/midas.dir/midas/index/trie.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/index/trie.cc.o.d"
  "/root/repo/src/midas/maintain/midas.cc" "src/CMakeFiles/midas.dir/midas/maintain/midas.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/maintain/midas.cc.o.d"
  "/root/repo/src/midas/maintain/modification.cc" "src/CMakeFiles/midas.dir/midas/maintain/modification.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/maintain/modification.cc.o.d"
  "/root/repo/src/midas/maintain/report.cc" "src/CMakeFiles/midas.dir/midas/maintain/report.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/maintain/report.cc.o.d"
  "/root/repo/src/midas/maintain/small_patterns.cc" "src/CMakeFiles/midas.dir/midas/maintain/small_patterns.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/maintain/small_patterns.cc.o.d"
  "/root/repo/src/midas/maintain/snapshot.cc" "src/CMakeFiles/midas.dir/midas/maintain/snapshot.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/maintain/snapshot.cc.o.d"
  "/root/repo/src/midas/maintain/swap.cc" "src/CMakeFiles/midas.dir/midas/maintain/swap.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/maintain/swap.cc.o.d"
  "/root/repo/src/midas/mining/fct_set.cc" "src/CMakeFiles/midas.dir/midas/mining/fct_set.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/mining/fct_set.cc.o.d"
  "/root/repo/src/midas/mining/tree_miner.cc" "src/CMakeFiles/midas.dir/midas/mining/tree_miner.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/mining/tree_miner.cc.o.d"
  "/root/repo/src/midas/queryform/formulation.cc" "src/CMakeFiles/midas.dir/midas/queryform/formulation.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/queryform/formulation.cc.o.d"
  "/root/repo/src/midas/queryform/query_executor.cc" "src/CMakeFiles/midas.dir/midas/queryform/query_executor.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/queryform/query_executor.cc.o.d"
  "/root/repo/src/midas/queryform/query_log.cc" "src/CMakeFiles/midas.dir/midas/queryform/query_log.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/queryform/query_log.cc.o.d"
  "/root/repo/src/midas/queryform/session.cc" "src/CMakeFiles/midas.dir/midas/queryform/session.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/queryform/session.cc.o.d"
  "/root/repo/src/midas/queryform/user_model.cc" "src/CMakeFiles/midas.dir/midas/queryform/user_model.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/queryform/user_model.cc.o.d"
  "/root/repo/src/midas/select/candidate_gen.cc" "src/CMakeFiles/midas.dir/midas/select/candidate_gen.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/select/candidate_gen.cc.o.d"
  "/root/repo/src/midas/select/catapult.cc" "src/CMakeFiles/midas.dir/midas/select/catapult.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/select/catapult.cc.o.d"
  "/root/repo/src/midas/select/pattern.cc" "src/CMakeFiles/midas.dir/midas/select/pattern.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/select/pattern.cc.o.d"
  "/root/repo/src/midas/select/pattern_io.cc" "src/CMakeFiles/midas.dir/midas/select/pattern_io.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/select/pattern_io.cc.o.d"
  "/root/repo/src/midas/select/random_walk.cc" "src/CMakeFiles/midas.dir/midas/select/random_walk.cc.o" "gcc" "src/CMakeFiles/midas.dir/midas/select/random_walk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
