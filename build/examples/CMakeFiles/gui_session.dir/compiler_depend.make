# Empty compiler generated dependencies file for gui_session.
# This may be replaced when dependencies are built.
