file(REMOVE_RECURSE
  "CMakeFiles/gui_session.dir/gui_session.cc.o"
  "CMakeFiles/gui_session.dir/gui_session.cc.o.d"
  "gui_session"
  "gui_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gui_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
