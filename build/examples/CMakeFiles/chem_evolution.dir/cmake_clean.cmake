file(REMOVE_RECURSE
  "CMakeFiles/chem_evolution.dir/chem_evolution.cc.o"
  "CMakeFiles/chem_evolution.dir/chem_evolution.cc.o.d"
  "chem_evolution"
  "chem_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chem_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
