# Empty dependencies file for chem_evolution.
# This may be replaced when dependencies are built.
