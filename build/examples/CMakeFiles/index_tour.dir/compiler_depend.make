# Empty compiler generated dependencies file for index_tour.
# This may be replaced when dependencies are built.
