file(REMOVE_RECURSE
  "CMakeFiles/index_tour.dir/index_tour.cc.o"
  "CMakeFiles/index_tour.dir/index_tour.cc.o.d"
  "index_tour"
  "index_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
