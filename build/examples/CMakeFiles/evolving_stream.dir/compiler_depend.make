# Empty compiler generated dependencies file for evolving_stream.
# This may be replaced when dependencies are built.
