file(REMOVE_RECURSE
  "CMakeFiles/evolving_stream.dir/evolving_stream.cc.o"
  "CMakeFiles/evolving_stream.dir/evolving_stream.cc.o.d"
  "evolving_stream"
  "evolving_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolving_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
