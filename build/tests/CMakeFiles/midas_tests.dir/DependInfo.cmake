
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/brute_force_crosscheck_test.cc" "tests/CMakeFiles/midas_tests.dir/brute_force_crosscheck_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/brute_force_crosscheck_test.cc.o.d"
  "/root/repo/tests/candidate_gen_test.cc" "tests/CMakeFiles/midas_tests.dir/candidate_gen_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/candidate_gen_test.cc.o.d"
  "/root/repo/tests/canonical_test.cc" "tests/CMakeFiles/midas_tests.dir/canonical_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/canonical_test.cc.o.d"
  "/root/repo/tests/catapult_test.cc" "tests/CMakeFiles/midas_tests.dir/catapult_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/catapult_test.cc.o.d"
  "/root/repo/tests/clustering_test.cc" "tests/CMakeFiles/midas_tests.dir/clustering_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/clustering_test.cc.o.d"
  "/root/repo/tests/config_sweep_test.cc" "tests/CMakeFiles/midas_tests.dir/config_sweep_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/config_sweep_test.cc.o.d"
  "/root/repo/tests/csg_test.cc" "tests/CMakeFiles/midas_tests.dir/csg_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/csg_test.cc.o.d"
  "/root/repo/tests/dot_export_test.cc" "tests/CMakeFiles/midas_tests.dir/dot_export_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/dot_export_test.cc.o.d"
  "/root/repo/tests/engine_extensions_test.cc" "tests/CMakeFiles/midas_tests.dir/engine_extensions_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/engine_extensions_test.cc.o.d"
  "/root/repo/tests/engine_fuzz_test.cc" "tests/CMakeFiles/midas_tests.dir/engine_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/engine_fuzz_test.cc.o.d"
  "/root/repo/tests/exhaustive_small_test.cc" "tests/CMakeFiles/midas_tests.dir/exhaustive_small_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/exhaustive_small_test.cc.o.d"
  "/root/repo/tests/fct_index_test.cc" "tests/CMakeFiles/midas_tests.dir/fct_index_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/fct_index_test.cc.o.d"
  "/root/repo/tests/fct_set_test.cc" "tests/CMakeFiles/midas_tests.dir/fct_set_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/fct_set_test.cc.o.d"
  "/root/repo/tests/feature_kmeans_test.cc" "tests/CMakeFiles/midas_tests.dir/feature_kmeans_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/feature_kmeans_test.cc.o.d"
  "/root/repo/tests/formulation_test.cc" "tests/CMakeFiles/midas_tests.dir/formulation_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/formulation_test.cc.o.d"
  "/root/repo/tests/ged_test.cc" "tests/CMakeFiles/midas_tests.dir/ged_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/ged_test.cc.o.d"
  "/root/repo/tests/graph_io_test.cc" "tests/CMakeFiles/midas_tests.dir/graph_io_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/graph_io_test.cc.o.d"
  "/root/repo/tests/graph_statistics_test.cc" "tests/CMakeFiles/midas_tests.dir/graph_statistics_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/graph_statistics_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/midas_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/graphlet_test.cc" "tests/CMakeFiles/midas_tests.dir/graphlet_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/graphlet_test.cc.o.d"
  "/root/repo/tests/id_set_test.cc" "tests/CMakeFiles/midas_tests.dir/id_set_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/id_set_test.cc.o.d"
  "/root/repo/tests/ife_index_test.cc" "tests/CMakeFiles/midas_tests.dir/ife_index_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/ife_index_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/midas_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/mccs_closure_test.cc" "tests/CMakeFiles/midas_tests.dir/mccs_closure_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/mccs_closure_test.cc.o.d"
  "/root/repo/tests/midas_engine_test.cc" "tests/CMakeFiles/midas_tests.dir/midas_engine_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/midas_engine_test.cc.o.d"
  "/root/repo/tests/modification_test.cc" "tests/CMakeFiles/midas_tests.dir/modification_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/modification_test.cc.o.d"
  "/root/repo/tests/molecule_gen_test.cc" "tests/CMakeFiles/midas_tests.dir/molecule_gen_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/molecule_gen_test.cc.o.d"
  "/root/repo/tests/pattern_io_test.cc" "tests/CMakeFiles/midas_tests.dir/pattern_io_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/pattern_io_test.cc.o.d"
  "/root/repo/tests/pattern_test.cc" "tests/CMakeFiles/midas_tests.dir/pattern_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/pattern_test.cc.o.d"
  "/root/repo/tests/pf_matrix_test.cc" "tests/CMakeFiles/midas_tests.dir/pf_matrix_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/pf_matrix_test.cc.o.d"
  "/root/repo/tests/protein_gen_test.cc" "tests/CMakeFiles/midas_tests.dir/protein_gen_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/protein_gen_test.cc.o.d"
  "/root/repo/tests/query_executor_test.cc" "tests/CMakeFiles/midas_tests.dir/query_executor_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/query_executor_test.cc.o.d"
  "/root/repo/tests/query_log_test.cc" "tests/CMakeFiles/midas_tests.dir/query_log_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/query_log_test.cc.o.d"
  "/root/repo/tests/random_walk_test.cc" "tests/CMakeFiles/midas_tests.dir/random_walk_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/random_walk_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/midas_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/session_test.cc" "tests/CMakeFiles/midas_tests.dir/session_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/session_test.cc.o.d"
  "/root/repo/tests/small_patterns_test.cc" "tests/CMakeFiles/midas_tests.dir/small_patterns_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/small_patterns_test.cc.o.d"
  "/root/repo/tests/snapshot_test.cc" "tests/CMakeFiles/midas_tests.dir/snapshot_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/snapshot_test.cc.o.d"
  "/root/repo/tests/sparse_matrix_test.cc" "tests/CMakeFiles/midas_tests.dir/sparse_matrix_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/sparse_matrix_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/midas_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/subgraph_iso_test.cc" "tests/CMakeFiles/midas_tests.dir/subgraph_iso_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/subgraph_iso_test.cc.o.d"
  "/root/repo/tests/swap_test.cc" "tests/CMakeFiles/midas_tests.dir/swap_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/swap_test.cc.o.d"
  "/root/repo/tests/tree_miner_test.cc" "tests/CMakeFiles/midas_tests.dir/tree_miner_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/tree_miner_test.cc.o.d"
  "/root/repo/tests/trie_test.cc" "tests/CMakeFiles/midas_tests.dir/trie_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/trie_test.cc.o.d"
  "/root/repo/tests/user_model_test.cc" "tests/CMakeFiles/midas_tests.dir/user_model_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/user_model_test.cc.o.d"
  "/root/repo/tests/validate_report_test.cc" "tests/CMakeFiles/midas_tests.dir/validate_report_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/validate_report_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/midas_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/midas_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/midas.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
