// midas_fsck — offline integrity checker for an EngineHost state directory.
//
//   midas_fsck [--level=manifest|journal|deep] [--json] <engine_dir>
//
// Verifies <engine_dir>/snapshot (+ .tmp/.old fallbacks) and journal.log,
// and at --level=deep restores the engine and recomputes every per-pattern
// invariant (maintain/verify.h). Exit codes:
//
//   0  state verifies clean at the requested level
//   1  violations found (diagnosis on stdout)
//   2  state unreadable (no snapshot / restore failed) or usage error
//
// The deep level is the same check the in-process scrubber runs, so a
// clean `midas_fsck --level=deep` means the host would publish this state.

#include <cstdio>
#include <cstring>
#include <string>

#include "midas/maintain/verify.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--level=manifest|journal|deep] [--json] "
               "<engine_dir>\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  midas::VerifyOptions options;
  bool json = false;
  std::string engine_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--level=", 0) == 0) {
      const std::string level = arg.substr(8);
      if (level == "manifest") {
        options.level = midas::IntegrityTier::kManifest;
      } else if (level == "journal") {
        options.level = midas::IntegrityTier::kJournal;
      } else if (level == "deep") {
        options.level = midas::IntegrityTier::kDeep;
      } else {
        std::fprintf(stderr, "unknown level '%s'\n", level.c_str());
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    } else if (engine_dir.empty()) {
      engine_dir = arg;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (engine_dir.empty()) {
    Usage(argv[0]);
    return 2;
  }

  midas::IntegrityReport report =
      midas::VerifyEngineState(engine_dir, options);

  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    std::printf("%s\n", report.Describe().c_str());
  }

  if (report.clean()) return 0;
  for (const midas::IntegrityViolation& v : report.violations) {
    // "Unreadable" verdicts: there is no state to repair in place.
    if (v.kind == midas::IntegrityViolationKind::kSnapshotMissing ||
        v.kind == midas::IntegrityViolationKind::kRestoreFailed) {
      return 2;
    }
  }
  return 1;
}
