#!/bin/sh
# Emit one flight record's phase tree as folded stacks, ready for
# flamegraph.pl — so a single bad batch can be flamegraphed in isolation
# instead of reading it off the aggregate /spans profile.
#
# Usage:
#   tools/trace2folded.sh http://127.0.0.1:PORT TRACE_ID   # live host
#   tools/trace2folded.sh record.json                      # saved /traces/<id> body
#   ... | flamegraph.pl > trace.svg
#
# The /traces/<id> endpoint already serves this format directly with
# ?fmt=folded; this script is the offline/composable path: it converts a
# saved JSON flight record (or fetches one) using only python3's stdlib.

set -eu

usage() {
    echo "usage: $0 <base_url> <trace_id> | $0 <record.json>" >&2
    exit 2
}

case $# in
2)
    # Live host: the server renders the folded view itself.
    exec curl -sf "$1/traces/$2?fmt=folded"
    ;;
1)
    [ -r "$1" ] || usage
    exec python3 - "$1" <<'EOF'
import json
import sys

with open(sys.argv[1], "r", encoding="utf-8") as f:
    record = json.load(f)

phases = record.get("phases", {})
total_us = 0
for name, ms in phases.items():
    us = int(ms * 1000 + 0.5)
    total_us += us
    print(f"midas_round;{name} {us}")
# The round's own self time: wall time not covered by any phase span.
self_us = int(record.get("total_ms", 0.0) * 1000 + 0.5) - total_us
print(f"midas_round {max(self_us, 0)}")
EOF
    ;;
*)
    usage
    ;;
esac
