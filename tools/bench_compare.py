#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against the committed baseline.

CI bench regression gate (stdlib only): fails when the mean wall time of any
maintenance/scratch phase histogram regresses by more than --threshold
(default 25%). Tiny phases below --floor-ms are skipped — at microsecond
scale the container's scheduling jitter dwarfs any real regression.

Also gates the incremental-view strategy mix (midas_view_*_rows_total
counters): the share of pattern rows refreshed by full rescan instead of
delta-apply must not grow by more than --view-rescan-increase over the
baseline — a silent regression in the view cost model (or a change that
keeps invalidating the views) shows up here long before wall time moves on
small bench datasets. Runs with no view traffic at all, and baselines
predating the counters, report as "new" and pass.

Also gates the pattern-quality SLIs (midas_quality_* gauges): coverage,
label coverage and diversity are higher-is-better ratios, so a fresh value
more than --quality-drop below the baseline fails the gate — a speedup that
trades away panel quality is a regression, not a win. Cognitive load is
lower-is-better and gated on the symmetric increase. Quality gauges present
only in the fresh run report as "new" and pass (same contract as new
phases: a first run has nothing to compare against).

Usage:
    tools/bench_compare.py BASELINE.json FRESH.json \
        [--threshold 0.25] [--floor-ms 0.05] [--quality-drop 0.02] \
        [--out delta.md]

Exit codes: 0 ok, 1 regression found, 2 usage/parse error.

The BENCH json schema is bench/bench_common.cc's WriteBenchJson output:
{"suite": ..., "scale": ..., "host_cores": ..., "metrics": {"histograms":
{"<name>": {"count": N, "sum": MS, "buckets": [...]}, ...}, ...}}.
Comparisons use per-phase mean (sum/count): counts differ across runs when
the bench harness adapts iteration counts, so raw sums are not comparable.
"""

import argparse
import json
import sys


def load(path, missing_ok=False):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        if missing_ok:
            sys.stderr.write(
                f"bench_compare: no usable baseline at {path} ({e}); "
                "reporting fresh phases as new\n")
            return None
        sys.stderr.write(f"bench_compare: cannot read {path}: {e}\n")
        sys.exit(2)


def phase_means(doc):
    """{histogram name -> mean ms} for phase-shaped duration histograms."""
    hists = doc.get("metrics", {}).get("histograms", {})
    means = {}
    for name, h in hists.items():
        if not name.endswith("_ms"):
            continue
        count = h.get("count", 0)
        if not count:
            continue
        means[name] = h.get("sum", 0.0) / count
    return means


# Quality SLIs worth gating: (gauge name, higher_is_better). Ratios in
# [0, 1] except cognitive load, so deltas are compared absolutely.
QUALITY_GAUGES = [
    ("midas_quality_coverage", True),
    ("midas_quality_label_coverage", True),
    ("midas_quality_diversity", True),
    ("midas_quality_cognitive_load", False),
]


def quality_values(doc):
    """{gauge name -> value} for the gated midas_quality_* gauges."""
    gauges = doc.get("metrics", {}).get("gauges", {})
    return {name: gauges[name] for name, _ in QUALITY_GAUGES if name in gauges}


def compare_quality(base_doc, fresh_doc, drop):
    """Returns (rows, failures) for the quality-SLI table."""
    base = quality_values(base_doc) if base_doc is not None else {}
    fresh = quality_values(fresh_doc)
    rows, failures = [], []
    for name, higher_better in QUALITY_GAUGES:
        if name not in fresh:
            if name in base:
                rows.append((name, base[name], None, None, "missing"))
            continue
        if name not in base:
            rows.append((name, None, fresh[name], None, "new"))
            continue
        b, f = base[name], fresh[name]
        delta = f - b
        bad = delta < -drop if higher_better else delta > drop
        verdict = "REGRESSION" if bad else "ok"
        if bad:
            failures.append((name, b, f, delta))
        rows.append((name, b, f, delta, verdict))
    return rows, failures


def rescan_share(doc):
    """Fraction of view-refreshed pattern rows that took the rescan path,
    or None when the run has no view traffic (counters absent or zero)."""
    if doc is None:
        return None
    counters = doc.get("metrics", {}).get("counters", {})
    delta = counters.get("midas_view_delta_rows_total")
    rescan = counters.get("midas_view_rescan_rows_total")
    if delta is None and rescan is None:
        return None
    total = (delta or 0) + (rescan or 0)
    if total == 0:
        return None
    return (rescan or 0) / total


def compare_views(base_doc, fresh_doc, max_increase):
    """Returns (rows, failures) for the view-strategy table."""
    base = rescan_share(base_doc)
    fresh = rescan_share(fresh_doc)
    if fresh is None:
        return [], []
    if base is None:
        return [("view rescan share", None, fresh, None, "new")], []
    delta = fresh - base
    bad = delta > max_increase
    verdict = "REGRESSION" if bad else "ok"
    rows = [("view rescan share", base, fresh, delta, verdict)]
    failures = [("view rescan share", base, fresh, delta)] if bad else []
    return rows, failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed relative regression (0.25 = +25%%)")
    parser.add_argument("--floor-ms", type=float, default=0.05,
                        help="skip phases whose baseline mean is below this")
    parser.add_argument("--quality-drop", type=float, default=0.02,
                        help="max allowed absolute drop in a quality SLI "
                             "(increase, for cognitive load)")
    parser.add_argument("--view-rescan-increase", type=float, default=0.10,
                        help="max allowed absolute increase in the share of "
                             "view-refreshed rows taking the rescan path")
    parser.add_argument("--out", help="write the delta table here (markdown)")
    args = parser.parse_args()

    # A missing or phase-less baseline is not an error: the first run of a
    # new bench suite (or a baseline refresh) has nothing to compare against,
    # so every fresh phase is reported as "new" and the gate passes.
    base_doc = load(args.baseline, missing_ok=True)
    fresh_doc = load(args.fresh)
    base = phase_means(base_doc) if base_doc is not None else {}
    fresh = phase_means(fresh_doc)
    if base_doc is not None and not base:
        sys.stderr.write(
            "bench_compare: baseline has no phase histograms; "
            "reporting fresh phases as new\n")

    base_cores = base_doc.get("host_cores", "?") if base_doc else "?"
    fresh_cores = fresh_doc.get("host_cores", "?")
    rows = []
    regressions = []
    for name in sorted(base):
        if name not in fresh:
            rows.append((name, base[name], None, None, "missing"))
            continue
        b, f = base[name], fresh[name]
        delta = (f - b) / b if b > 0 else 0.0
        if b < args.floor_ms:
            verdict = "skipped (tiny)"
        elif delta > args.threshold:
            verdict = "REGRESSION"
            regressions.append((name, b, f, delta))
        else:
            verdict = "ok"
        rows.append((name, b, f, delta, verdict))
    for name in sorted(set(fresh) - set(base)):
        rows.append((name, None, fresh[name], None, "new"))

    lines = [
        f"# Bench delta: {args.baseline} -> {args.fresh}",
        "",
        f"Baseline host cores: {base_cores}; fresh host cores: {fresh_cores}.",
        f"Threshold: +{args.threshold:.0%} on per-phase mean;"
        f" floor: {args.floor_ms} ms.",
        "",
        "| phase | baseline mean ms | fresh mean ms | delta | verdict |",
        "|---|---|---|---|---|",
    ]
    for name, b, f, delta, verdict in rows:
        bs = f"{b:.4f}" if b is not None else "-"
        fs = f"{f:.4f}" if f is not None else "-"
        ds = f"{delta:+.1%}" if delta is not None else "-"
        lines.append(f"| {name} | {bs} | {fs} | {ds} | {verdict} |")

    view_rows, view_failures = compare_views(
        base_doc, fresh_doc, args.view_rescan_increase)
    if view_rows:
        lines += [
            "",
            f"Incremental-view gate: max rescan-share increase "
            f"{args.view_rescan_increase}.",
            "",
            "| view metric | baseline | fresh | delta | verdict |",
            "|---|---|---|---|---|",
        ]
        for name, b, f, delta, verdict in view_rows:
            bs = f"{b:.4f}" if b is not None else "-"
            fs = f"{f:.4f}" if f is not None else "-"
            ds = f"{delta:+.4f}" if delta is not None else "-"
            lines.append(f"| {name} | {bs} | {fs} | {ds} | {verdict} |")

    quality_rows, quality_failures = compare_quality(
        base_doc, fresh_doc, args.quality_drop)
    if quality_rows:
        lines += [
            "",
            f"Quality SLI gate: max absolute drop {args.quality_drop}.",
            "",
            "| quality SLI | baseline | fresh | delta | verdict |",
            "|---|---|---|---|---|",
        ]
        for name, b, f, delta, verdict in quality_rows:
            bs = f"{b:.4f}" if b is not None else "-"
            fs = f"{f:.4f}" if f is not None else "-"
            ds = f"{delta:+.4f}" if delta is not None else "-"
            lines.append(f"| {name} | {bs} | {fs} | {ds} | {verdict} |")
    table = "\n".join(lines) + "\n"

    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(table)
    sys.stdout.write(table)

    if base_cores != fresh_cores:
        sys.stdout.write(
            "\nnote: host core counts differ; wall-time comparison is only "
            "meaningful on matching hardware.\n")
    failed = False
    if regressions:
        failed = True
        sys.stdout.write("\nFAIL: wall-time regressions over threshold:\n")
        for name, b, f, delta in regressions:
            sys.stdout.write(
                f"  {name}: {b:.4f} ms -> {f:.4f} ms ({delta:+.1%})\n")
    if view_failures:
        failed = True
        sys.stdout.write(
            "\nFAIL: view rescan share grew beyond threshold (delta-apply "
            "path regressed):\n")
        for name, b, f, delta in view_failures:
            sys.stdout.write(
                f"  {name}: {b:.4f} -> {f:.4f} ({delta:+.4f})\n")
    if quality_failures:
        failed = True
        sys.stdout.write("\nFAIL: quality SLI regressions over threshold:\n")
        for name, b, f, delta in quality_failures:
            sys.stdout.write(
                f"  {name}: {b:.4f} -> {f:.4f} ({delta:+.4f})\n")
    if failed:
        sys.exit(1)
    sys.stdout.write(
        "\nOK: no phase or quality SLI regressed beyond threshold.\n")
    sys.exit(0)


if __name__ == "__main__":
    main()
