#include "midas/datagen/protein_gen.h"

#include <gtest/gtest.h>

#include <sstream>

#include "midas/graph/graph_io.h"
#include "midas/graph/graph_statistics.h"
#include "midas/maintain/midas.h"

namespace midas {
namespace {

TEST(ProteinGenTest, GeneratesRequestedCount) {
  ProteinGenerator gen(1);
  ProteinGenConfig cfg;
  cfg.num_graphs = 15;
  GraphDatabase db = gen.Generate(cfg);
  EXPECT_EQ(db.size(), 15u);
}

TEST(ProteinGenTest, GraphsAreConnectedAndDenserThanTrees) {
  ProteinGenerator gen(2);
  ProteinGenConfig cfg;
  cfg.num_graphs = 10;
  GraphDatabase db = gen.Generate(cfg);
  for (const auto& [id, g] : db.graphs()) {
    EXPECT_TRUE(g.IsConnected()) << id;
    EXPECT_GE(g.NumVertices(), cfg.min_vertices);
    // Core clique + triadic closure => strictly more edges than a tree.
    EXPECT_GT(g.NumEdges(), g.NumVertices() - 1) << id;
  }
}

TEST(ProteinGenTest, DeterministicBySeed) {
  ProteinGenerator g1(9);
  ProteinGenerator g2(9);
  ProteinGenConfig cfg;
  cfg.num_graphs = 6;
  std::ostringstream s1;
  std::ostringstream s2;
  WriteDatabase(g1.Generate(cfg), s1);
  WriteDatabase(g2.Generate(cfg), s2);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(ProteinGenTest, DifferentProfileThanMolecules) {
  ProteinGenerator gen(3);
  ProteinGenConfig cfg;
  cfg.num_graphs = 10;
  GraphDatabase db = gen.Generate(cfg);
  DatabaseStatistics stats = ComputeStatistics(db);
  EXPECT_GT(stats.mean_degree, 2.0);          // hubbier than molecules
  EXPECT_GE(stats.num_labels, 5u);            // protein families
  EXPECT_GT(stats.label_shares.count("KIN"), 0u);
}

TEST(ProteinGenTest, FixedAlphabetOrder) {
  ProteinGenerator gen(4);
  ProteinGenConfig cfg;
  cfg.num_graphs = 3;
  GraphDatabase db = gen.Generate(cfg);
  EXPECT_EQ(db.labels().Lookup("KIN"), 0);
  EXPECT_GE(db.labels().Lookup("RIB"), 0);
}

// The domain-independence claim (contribution b): the full MIDAS pipeline
// runs unchanged on protein-style data and maintains its invariants.
TEST(ProteinGenTest, FullPipelineRunsOnProteinData) {
  ProteinGenerator gen(5);
  ProteinGenConfig cfg;
  cfg.num_graphs = 40;
  GraphDatabase db = gen.Generate(cfg);

  MidasConfig mcfg;
  mcfg.fct.sup_min = 0.4;
  mcfg.fct.max_edges = 3;
  mcfg.cluster.num_coarse = 3;
  mcfg.cluster.max_cluster_size = 25;
  mcfg.budget = {3, 6, 8};
  mcfg.walk = {40, 12};
  mcfg.sample_cap = 0;
  mcfg.epsilon = 0.003;
  mcfg.seed = 6;

  MidasEngine engine(std::move(db), mcfg);
  engine.Initialize();
  EXPECT_GT(engine.patterns().size(), 0u);

  GraphDatabase copy = engine.db();
  BatchUpdate delta = gen.GenerateAdditions(copy, cfg, 15, true);
  MaintenanceStats stats = engine.ApplyUpdate(delta);
  EXPECT_EQ(engine.db().size(), 55u);
  EXPECT_EQ(engine.fcts().database_size(), 55u);
  // New interactome family should register as a real drift.
  EXPECT_GT(stats.graphlet_distance, 0.0);
  for (const auto& [pid, p] : engine.patterns().patterns()) {
    EXPECT_TRUE(p.graph.IsConnected());
    EXPECT_GE(p.graph.NumEdges(), 3u);
    EXPECT_LE(p.graph.NumEdges(), 6u);
  }
}

}  // namespace
}  // namespace midas
