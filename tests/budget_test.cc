#include "midas/common/budget.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "midas/datagen/molecule_gen.h"
#include "midas/graph/ged.h"
#include "midas/graph/graph.h"
#include "midas/graph/subgraph_iso.h"
#include "midas/maintain/midas.h"
#include "midas/obs/metrics.h"

namespace midas {
namespace {

// --- Deadline ---------------------------------------------------------------

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_TRUE(std::isinf(d.RemainingMs()));
}

TEST(DeadlineTest, ZeroDeadlineExpiresImmediately) {
  Deadline d = Deadline::AfterMs(0.0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.Expired());
  EXPECT_LE(d.RemainingMs(), 0.0);
}

TEST(DeadlineTest, FarDeadlineNotExpired) {
  Deadline d = Deadline::AfterMs(60'000.0);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMs(), 1000.0);
}

// --- ExecBudget -------------------------------------------------------------

TEST(ExecBudgetTest, UnlimitedNeverExhausts) {
  ExecBudget b;
  for (int i = 0; i < 10'000; ++i) EXPECT_TRUE(b.Charge());
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.cause(), ExecBudget::Cause::kNone);
  EXPECT_EQ(b.steps_used(), 0u);  // unlimited budgets don't even count
}

TEST(ExecBudgetTest, StepCapLatches) {
  ExecBudget b = ExecBudget::StepLimit(10);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(b.Charge());
  EXPECT_FALSE(b.Charge());  // 11th step trips
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.cause(), ExecBudget::Cause::kSteps);
  // Latched: stays exhausted without further counting.
  EXPECT_FALSE(b.Charge(100));
  EXPECT_EQ(b.steps_used(), 11u);
}

TEST(ExecBudgetTest, ExpiredDeadlineTripsWithinOneStride) {
  ExecBudget b = ExecBudget::TimeLimitMs(0.0);
  uint64_t charged = 0;
  while (b.Charge() && charged < 10 * ExecBudget::kDeadlineStride) ++charged;
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.cause(), ExecBudget::Cause::kDeadline);
  EXPECT_LE(charged, ExecBudget::kDeadlineStride);
}

TEST(ExecBudgetTest, ExhaustedNowNoticesDeadlineWithoutCharging) {
  ExecBudget b = ExecBudget::TimeLimitMs(0.0);
  EXPECT_TRUE(b.ExhaustedNow());
  EXPECT_EQ(b.cause(), ExecBudget::Cause::kDeadline);
}

TEST(ExecBudgetTest, ResetRearmsInPlace) {
  ExecBudget b = ExecBudget::StepLimit(1);
  EXPECT_TRUE(b.Charge());
  EXPECT_FALSE(b.Charge());
  ASSERT_TRUE(b.exhausted());

  b.Reset(Deadline::Infinite(), 5);
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.cause(), ExecBudget::Cause::kNone);
  EXPECT_EQ(b.steps_used(), 0u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.Charge());

  b.ResetUnlimited();
  EXPECT_FALSE(b.exhausted());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.Charge());
}

TEST(ExecBudgetTest, ExhaustionIncrementsCauseMetric) {
  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scope(reg);
  ExecBudget b = ExecBudget::StepLimit(1);
  b.Charge(5);
  ASSERT_TRUE(b.exhausted());
  EXPECT_EQ(reg.GetCounter("midas_budget_exhausted_total")->Value(), 1u);
  EXPECT_EQ(reg.GetCounter("midas_budget_exhausted_steps_total")->Value(),
            1u);
}

TEST(ExecBudgetTest, CauseNames) {
  EXPECT_EQ(ExecBudget::CauseName(ExecBudget::Cause::kNone), "none");
  EXPECT_EQ(ExecBudget::CauseName(ExecBudget::Cause::kSteps), "steps");
  EXPECT_EQ(ExecBudget::CauseName(ExecBudget::Cause::kDeadline), "deadline");
}

TEST(ExecBudgetTest, NullptrHelpersMeanUnlimited) {
  EXPECT_TRUE(BudgetCharge(nullptr));
  EXPECT_TRUE(BudgetCharge(nullptr, 1000));
  EXPECT_FALSE(BudgetExhausted(nullptr));
  ExecBudget b = ExecBudget::StepLimit(1);
  EXPECT_TRUE(BudgetCharge(&b));
  EXPECT_FALSE(BudgetCharge(&b));
  EXPECT_TRUE(BudgetExhausted(&b));
}

// --- Budgeted kernels -------------------------------------------------------

// A chain of n vertices with one label.
Graph Chain(int n) {
  Graph g;
  for (int i = 0; i < n; ++i) g.AddVertex(0);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

TEST(BudgetedKernelsTest, IsoTruncationUnderCounts) {
  Graph pattern = Chain(4);
  Graph target = Chain(12);
  // Unlimited: contained.
  EXPECT_TRUE(ContainsSubgraph(pattern, target));
  // One step is nowhere near enough: truncated, and found conservatively
  // reports false ("not found within budget"), never a false positive.
  ExecBudget b = ExecBudget::StepLimit(1);
  IsoOutcome out = ContainsSubgraphBudgeted(pattern, target, &b);
  EXPECT_FALSE(out.found);
  EXPECT_TRUE(out.truncated);
  EXPECT_TRUE(b.exhausted());
}

TEST(BudgetedKernelsTest, GedFallsBackToUpperBound) {
  Graph a = Chain(4);
  Graph b = Chain(6);

  int exact = GedExact(a, b);
  ExecBudget tiny = ExecBudget::StepLimit(1);
  GedOutcome out = GedExactBudgeted(
      a, b, std::numeric_limits<int>::max(), &tiny);
  EXPECT_TRUE(out.truncated);
  // Anytime property: the truncated answer is a valid upper bound.
  EXPECT_GE(out.distance, exact);
  EXPECT_LT(out.distance, std::numeric_limits<int>::max());
}

// Satellite: a budget-truncated round still returns a valid panel that
// satisfies the PatternBudget, and repeated runs are deterministic under a
// step (not wall-clock) limit.
TEST(BudgetedKernelsTest, TruncatedRoundKeepsPanelValidAndDeterministic) {
  auto run_once = [](uint64_t step_limit) {
    MoleculeGenerator gen(321);
    MoleculeGenConfig data = MoleculeGenerator::EmolLike(30);
    MidasConfig cfg;
    cfg.budget = {3, 7, 9};
    cfg.fct.sup_min = 0.45;
    cfg.epsilon = 0.0;  // force major rounds: swap always runs
    cfg.sample_cap = 0;
    cfg.seed = 5;
    cfg.round_step_limit = step_limit;
    MidasEngine engine(gen.Generate(data), cfg);
    engine.Initialize();
    GraphDatabase copy = engine.db();
    BatchUpdate delta = gen.GenerateAdditions(copy, data, 12, true);
    MaintenanceStats stats = engine.ApplyUpdate(delta);

    // Panel validity: within the display budget and the size band.
    EXPECT_LE(engine.patterns().size(), engine.config().budget.gamma);
    for (const auto& [id, p] : engine.patterns().patterns()) {
      EXPECT_GE(p.graph.NumEdges(), engine.config().budget.eta_min);
      EXPECT_LE(p.graph.NumEdges(), engine.config().budget.eta_max);
    }

    std::vector<size_t> panel_sizes;
    for (const auto& [id, p] : engine.patterns().patterns()) {
      panel_sizes.push_back(p.graph.NumEdges());
    }
    return std::make_tuple(stats.truncated, engine.patterns().size(),
                           panel_sizes);
  };

  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scope(reg);

  auto tight1 = run_once(200);
  auto tight2 = run_once(200);
  EXPECT_TRUE(std::get<0>(tight1));  // 200 steps cannot finish the round
  // Step budgets are platform-independent: identical runs, identical
  // truncation point, identical panel.
  EXPECT_EQ(tight1, tight2);

  EXPECT_GE(reg.GetCounter("midas_maintain_truncated_rounds_total")->Value(),
            2u);

  auto loose = run_once(0);  // unlimited
  EXPECT_FALSE(std::get<0>(loose));
}

TEST(BudgetedKernelsTest, DeadlineRoundStaysNearBudget) {
  MoleculeGenerator gen(99);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(40);
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.4;
  cfg.epsilon = 0.0;
  cfg.sample_cap = 0;
  cfg.seed = 11;
  cfg.round_deadline_ms = 50.0;
  MidasEngine engine(gen.Generate(data), cfg);
  engine.Initialize();

  GraphDatabase copy = engine.db();
  BatchUpdate delta = gen.GenerateAdditions(copy, data, 15, true);
  MaintenanceStats stats = engine.ApplyUpdate(delta);
  // Whether or not this machine needed to truncate, the round completed
  // with a valid panel and a consistent report.
  EXPECT_LE(engine.patterns().size(), engine.config().budget.gamma);
  if (stats.truncated) {
    SUCCEED() << "round degraded gracefully under the 50ms deadline";
  }
  // The engine keeps working after a (possibly truncated) round.
  GraphDatabase copy2 = engine.db();
  BatchUpdate delta2 = gen.GenerateAdditions(copy2, data, 5, false);
  engine.ApplyUpdate(delta2);
}

}  // namespace
}  // namespace midas
