#include "midas/graph/canonical.h"

#include <gtest/gtest.h>

#include <set>

#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeGraph;
using testing_util::Path;
using testing_util::RandomPermutation;
using testing_util::Star;

TEST(TreeCentersTest, PathHasMiddleCenters) {
  LabelDictionary d;
  Graph p3 = Path(d, {"C", "O", "C"});
  auto centers = TreeCenters(p3);
  ASSERT_EQ(centers.size(), 1u);
  EXPECT_EQ(centers[0], 1u);

  Graph p4 = Path(d, {"C", "O", "O", "C"});
  centers = TreeCenters(p4);
  ASSERT_EQ(centers.size(), 2u);  // even path: two centers
}

TEST(TreeCentersTest, SingleVertexAndEdge) {
  LabelDictionary d;
  Graph v = MakeGraph(d, {"C"}, {});
  EXPECT_EQ(TreeCenters(v).size(), 1u);
  Graph e = Path(d, {"C", "O"});
  EXPECT_EQ(TreeCenters(e).size(), 2u);
}

TEST(CanonicalTreeTest, DistinctTreesHaveDistinctStrings) {
  LabelDictionary d;
  Graph p = Path(d, {"C", "O", "C"});
  Graph s = Star(d, "O", {"C", "C"});
  // These are actually isomorphic (path C-O-C == star O with two C leaves).
  EXPECT_EQ(CanonicalTreeString(p), CanonicalTreeString(s));

  Graph q = Path(d, {"O", "C", "C"});
  EXPECT_NE(CanonicalTreeString(p), CanonicalTreeString(q));
}

TEST(CanonicalTreeTest, SiblingSeparatorPreventsLabelCollision) {
  LabelDictionary d;
  // Force multi-digit label ids.
  for (int i = 0; i < 15; ++i) d.Intern("pad" + std::to_string(i));
  // Star with leaves labeled 1 and 2 vs a single leaf labeled 12 must not
  // produce colliding encodings.
  Graph star2;
  star2.AddVertex(0);
  star2.AddVertex(1);
  star2.AddVertex(2);
  star2.AddEdge(0, 1);
  star2.AddEdge(0, 2);

  Graph leaf12;
  leaf12.AddVertex(0);
  leaf12.AddVertex(12);
  leaf12.AddEdge(0, 1);

  EXPECT_NE(CanonicalTreeString(star2), CanonicalTreeString(leaf12));
}

// Property: canonical string is invariant under vertex permutation.
class CanonicalInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalInvarianceTest, PermutationInvariant) {
  LabelDictionary d;
  Rng rng(500 + GetParam());
  // Random tree (no extra edges).
  Graph t = testing_util::RandomGraph(d, rng, 4 + GetParam() % 8, 0);
  ASSERT_TRUE(t.IsTree());
  auto perm = RandomPermutation(t.NumVertices(), rng);
  Graph p = t.Permuted(perm);
  EXPECT_EQ(CanonicalTreeString(t), CanonicalTreeString(p));
  EXPECT_EQ(CanonicalTreeTokens(t), CanonicalTreeTokens(p));
}

INSTANTIATE_TEST_SUITE_P(Permutations, CanonicalInvarianceTest,
                         ::testing::Range(0, 30));

// Property: equal canonical strings <=> isomorphic (for random tree pairs).
class CanonicalSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalSoundnessTest, EqualStringIffIsomorphic) {
  LabelDictionary d;
  Rng rng(900 + GetParam());
  Graph t1 = testing_util::RandomGraph(d, rng, 5, 0, 2);
  Graph t2 = testing_util::RandomGraph(d, rng, 5, 0, 2);
  bool same_string = CanonicalTreeString(t1) == CanonicalTreeString(t2);
  EXPECT_EQ(same_string, AreIsomorphic(t1, t2)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Soundness, CanonicalSoundnessTest,
                         ::testing::Range(0, 40));

TEST(GraphSignatureTest, InvariantUnderPermutation) {
  LabelDictionary d;
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = testing_util::RandomGraph(d, rng, 7, 3);
    auto perm = RandomPermutation(g.NumVertices(), rng);
    EXPECT_EQ(GraphSignature(g), GraphSignature(g.Permuted(perm)));
  }
}

TEST(GraphSignatureTest, SeparatesBasicShapes) {
  LabelDictionary d;
  Graph path = Path(d, {"C", "C", "C", "C"});
  Graph star = Star(d, "C", {"C", "C", "C"});
  Graph cycle = testing_util::Cycle(d, 4, "C");
  std::set<std::string> sigs = {GraphSignature(path), GraphSignature(star),
                                GraphSignature(cycle)};
  EXPECT_EQ(sigs.size(), 3u);
}

}  // namespace
}  // namespace midas
