#include "midas/maintain/small_patterns.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeToyDatabase;

TEST(SmallPatternPanelTest, EmptyUntilRefreshed) {
  SmallPatternPanel panel;
  EXPECT_TRUE(panel.patterns().empty());
}

TEST(SmallPatternPanelTest, TopEdgesBySupport) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  SmallPatternPanel::Config cfg;
  cfg.max_edges_patterns = 2;
  cfg.max_wedge_patterns = 2;
  SmallPatternPanel panel(cfg);
  panel.Refresh(fcts);

  ASSERT_FALSE(panel.patterns().empty());
  // The first pattern is the most supported frequent edge: C-O (all graphs).
  const Graph& top = panel.patterns().front();
  EXPECT_EQ(top.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(panel.supports().front(), 1.0);
  Label c = static_cast<Label>(db.labels().Lookup("C"));
  Label o = static_cast<Label>(db.labels().Lookup("O"));
  EXPECT_EQ(top.EdgeLabel(0, 1), EdgeLabelPair(c, o));
}

TEST(SmallPatternPanelTest, RespectsSlotLimits) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.2, 3, 20000});
  SmallPatternPanel::Config cfg;
  cfg.max_edges_patterns = 1;
  cfg.max_wedge_patterns = 1;
  SmallPatternPanel panel(cfg);
  panel.Refresh(fcts);
  size_t edges = 0;
  size_t wedges = 0;
  for (const Graph& g : panel.patterns()) {
    if (g.NumEdges() == 1) ++edges;
    if (g.NumEdges() == 2) ++wedges;
  }
  EXPECT_LE(edges, 1u);
  EXPECT_LE(wedges, 1u);
}

TEST(SmallPatternPanelTest, SupportsSortedDescendingPerKind) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.2, 3, 20000});
  SmallPatternPanel panel;
  panel.Refresh(fcts);
  const auto& pats = panel.patterns();
  const auto& sups = panel.supports();
  ASSERT_EQ(pats.size(), sups.size());
  for (size_t i = 1; i < pats.size(); ++i) {
    if (pats[i - 1].NumEdges() == pats[i].NumEdges()) {
      EXPECT_GE(sups[i - 1], sups[i]);
    }
  }
}

TEST(SmallPatternPanelTest, TracksMaintenance) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.5, 3, 20000});
  SmallPatternPanel panel;
  panel.Refresh(fcts);
  size_t before = panel.patterns().size();

  // Flood with P-P graphs: the P-P edge becomes a top small pattern.
  LabelDictionary& d = db.labels();
  BatchUpdate delta;
  for (int i = 0; i < 12; ++i) {
    delta.insertions.push_back(testing_util::Path(d, {"P", "P"}));
  }
  std::vector<GraphId> added = db.ApplyBatch(delta);
  fcts.MaintainAdd(db, added);
  panel.Refresh(fcts);

  Label pl = static_cast<Label>(d.Lookup("P"));
  bool has_pp = false;
  for (const Graph& g : panel.patterns()) {
    if (g.NumEdges() == 1 && g.EdgeLabel(0, 1) == EdgeLabelPair(pl, pl)) {
      has_pp = true;
    }
  }
  EXPECT_TRUE(has_pp);
  EXPECT_GE(panel.patterns().size(), before > 0 ? 1u : 0u);
}

TEST(SmallPatternPanelTest, EmptyDatabase) {
  FctSet fcts;
  SmallPatternPanel panel;
  panel.Refresh(fcts);
  EXPECT_TRUE(panel.patterns().empty());
}

}  // namespace
}  // namespace midas
