#include "midas/serve/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "midas/serve/quarantine.h"
#include "midas/serve/update_queue.h"
#include "test_util.h"

namespace midas {
namespace serve {
namespace {

using testing_util::MakeGraph;
using testing_util::MakeToyDatabase;
using testing_util::Path;

// --- ValidateBatch ----------------------------------------------------------

TEST(AdmissionTest, ValidBatchPassesUnchanged) {
  GraphDatabase db = MakeToyDatabase();
  BatchUpdate batch;
  batch.insertions.push_back(Path(db.labels(), {"C", "O"}));
  batch.deletions = {0, 3};

  BatchValidation v = ValidateBatch(batch, db, AdmissionLimits());
  EXPECT_TRUE(v.admissible);
  EXPECT_EQ(v.errors, 0u);
  EXPECT_EQ(v.warnings, 0u);
  EXPECT_TRUE(v.diagnostics.empty());
  EXPECT_EQ(v.normalized.insertions.size(), 1u);
  EXPECT_EQ(v.normalized.deletions, (std::vector<GraphId>{0, 3}));
}

TEST(AdmissionTest, DanglingDeletionIsRejectedWithDiagnostic) {
  GraphDatabase db = MakeToyDatabase();
  BatchUpdate batch;
  batch.deletions = {3, 999};

  BatchValidation v = ValidateBatch(batch, db, AdmissionLimits());
  EXPECT_FALSE(v.admissible);
  EXPECT_EQ(v.errors, 1u);
  ASSERT_EQ(v.diagnostics.size(), 1u);
  EXPECT_EQ(v.diagnostics[0].problem, BatchProblem::kDanglingDeletion);
  EXPECT_TRUE(v.diagnostics[0].fatal);
  EXPECT_NE(v.diagnostics[0].detail.find("999"), std::string::npos);
  EXPECT_NE(v.Describe().find("dangling_deletion"), std::string::npos);
}

TEST(AdmissionTest, DuplicateDeletionIsDedupedAsWarning) {
  GraphDatabase db = MakeToyDatabase();
  BatchUpdate batch;
  batch.deletions = {5, 3, 5, 3, 5};

  BatchValidation v = ValidateBatch(batch, db, AdmissionLimits());
  EXPECT_TRUE(v.admissible);  // warnings do not reject
  EXPECT_EQ(v.errors, 0u);
  EXPECT_EQ(v.warnings, 3u);
  // First occurrences, original order.
  EXPECT_EQ(v.normalized.deletions, (std::vector<GraphId>{5, 3}));
  for (const BatchDiagnostic& d : v.diagnostics) {
    EXPECT_EQ(d.problem, BatchProblem::kDuplicateDeletion);
    EXPECT_FALSE(d.fatal);
  }
}

TEST(AdmissionTest, EmptyBatchRejectedUnlessAllowed) {
  GraphDatabase db = MakeToyDatabase();
  BatchUpdate batch;

  BatchValidation v = ValidateBatch(batch, db, AdmissionLimits());
  EXPECT_FALSE(v.admissible);
  ASSERT_FALSE(v.diagnostics.empty());
  EXPECT_EQ(v.diagnostics[0].problem, BatchProblem::kEmptyBatch);

  AdmissionLimits relaxed;
  relaxed.allow_empty = true;
  EXPECT_TRUE(ValidateBatch(batch, db, relaxed).admissible);
}

TEST(AdmissionTest, OversizedBatchRejected) {
  GraphDatabase db = MakeToyDatabase();
  AdmissionLimits limits;
  limits.max_batch_items = 2;
  BatchUpdate batch;
  batch.deletions = {0, 1, 2};

  BatchValidation v = ValidateBatch(batch, db, limits);
  EXPECT_FALSE(v.admissible);
  EXPECT_EQ(v.diagnostics[0].problem, BatchProblem::kBatchTooLarge);
}

TEST(AdmissionTest, MalformedAndOversizedGraphsRejected) {
  GraphDatabase db = MakeToyDatabase();
  AdmissionLimits limits;
  limits.max_graph_vertices = 3;
  BatchUpdate batch;
  batch.insertions.push_back(Graph());  // no vertices
  batch.insertions.push_back(Path(db.labels(), {"C", "O", "C", "S"}));  // 4 > 3

  BatchValidation v = ValidateBatch(batch, db, limits);
  EXPECT_FALSE(v.admissible);
  EXPECT_EQ(v.errors, 2u);
  EXPECT_EQ(v.diagnostics[0].problem, BatchProblem::kEmptyGraph);
  EXPECT_EQ(v.diagnostics[1].problem, BatchProblem::kOversizedGraph);
}

TEST(AdmissionTest, LiveIdVectorOverloadMatchesDatabaseOverload) {
  GraphDatabase db = MakeToyDatabase();
  std::vector<GraphId> live = db.Ids();  // ascending == sorted
  BatchUpdate batch;
  batch.deletions = {2, 6, 1000};

  BatchValidation via_db = ValidateBatch(batch, db, AdmissionLimits());
  BatchValidation via_ids = ValidateBatch(batch, live, AdmissionLimits());
  EXPECT_EQ(via_db.admissible, via_ids.admissible);
  EXPECT_EQ(via_db.errors, via_ids.errors);
  EXPECT_EQ(via_db.Describe(), via_ids.Describe());
}

// --- BoundedUpdateQueue -----------------------------------------------------

BatchUpdate DeletionBatch(std::vector<GraphId> ids) {
  BatchUpdate b;
  b.deletions = std::move(ids);
  return b;
}

TEST(UpdateQueueTest, RejectPolicyFailsWhenFull) {
  BoundedUpdateQueue q(2, OverflowPolicy::kReject);
  EXPECT_EQ(q.Push(DeletionBatch({1})), BoundedUpdateQueue::PushOutcome::kQueued);
  EXPECT_EQ(q.Push(DeletionBatch({2})), BoundedUpdateQueue::PushOutcome::kQueued);
  EXPECT_EQ(q.Push(DeletionBatch({3})),
            BoundedUpdateQueue::PushOutcome::kRejectedFull);
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.admitted(), 2u);
}

TEST(UpdateQueueTest, CoalescePolicyMergesIntoNewestItem) {
  BoundedUpdateQueue q(1, OverflowPolicy::kCoalesce);
  EXPECT_EQ(q.Push(DeletionBatch({1, 2})),
            BoundedUpdateQueue::PushOutcome::kQueued);
  EXPECT_EQ(q.Push(DeletionBatch({2, 3})),
            BoundedUpdateQueue::PushOutcome::kCoalesced);
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.admitted(), 2u);

  BoundedUpdateQueue::Item item;
  ASSERT_TRUE(q.Pop(&item, std::chrono::milliseconds(10)));
  EXPECT_EQ(item.coalesced(), 1u);
  ASSERT_EQ(item.parts.size(), 2u);

  // The writer flattens parts with MergeBatches: deletions union, first
  // occurrence order.
  BatchUpdate merged = std::move(item.parts[0].batch);
  for (size_t i = 1; i < item.parts.size(); ++i) {
    MergeBatches(&merged, std::move(item.parts[i].batch));
  }
  EXPECT_EQ(merged.deletions, (std::vector<GraphId>{1, 2, 3}));
}

TEST(UpdateQueueTest, BlockPolicyWaitsForSpace) {
  BoundedUpdateQueue q(1, OverflowPolicy::kBlock);
  EXPECT_EQ(q.Push(DeletionBatch({1})), BoundedUpdateQueue::PushOutcome::kQueued);

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(q.Push(DeletionBatch({2})),
              BoundedUpdateQueue::PushOutcome::kQueued);
    pushed.store(true);
  });
  // The producer must be blocked until the consumer drains a slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());

  BoundedUpdateQueue::Item item;
  ASSERT_TRUE(q.Pop(&item, std::chrono::milliseconds(100)));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.depth(), 1u);
}

TEST(UpdateQueueTest, CloseUnblocksAndDrains) {
  BoundedUpdateQueue q(1, OverflowPolicy::kBlock);
  EXPECT_EQ(q.Push(DeletionBatch({1})), BoundedUpdateQueue::PushOutcome::kQueued);

  std::thread producer([&] {
    EXPECT_EQ(q.Push(DeletionBatch({2})),
              BoundedUpdateQueue::PushOutcome::kRejectedClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();

  EXPECT_EQ(q.Push(DeletionBatch({3})),
            BoundedUpdateQueue::PushOutcome::kRejectedClosed);
  // Already-queued items stay poppable; afterwards Pop reports drained.
  BoundedUpdateQueue::Item item;
  EXPECT_TRUE(q.Pop(&item, std::chrono::milliseconds(10)));
  EXPECT_FALSE(q.Pop(&item, std::chrono::milliseconds(10)));
}

TEST(UpdateQueueTest, PopTimesOutOnEmptyQueue) {
  BoundedUpdateQueue q(4, OverflowPolicy::kBlock);
  BoundedUpdateQueue::Item item;
  EXPECT_FALSE(q.Pop(&item, std::chrono::milliseconds(5)));
}

// --- Quarantine file round trip ---------------------------------------------

TEST(QuarantineTest, FileRoundTripsThroughGraphIo) {
  GraphDatabase db = MakeToyDatabase();
  std::string dir =
      (std::filesystem::temp_directory_path() / "midas_quarantine_rt")
          .string();
  std::filesystem::remove_all(dir);

  QuarantinedBatch q;
  q.seq = 12;
  q.attempts = 3;
  q.reason = "failpoint abort:\nmidas.apply_update.after_fct";  // multi-line
  q.batch.insertions.push_back(Path(db.labels(), {"C", "O", "N"}));
  q.batch.insertions.push_back(
      MakeGraph(db.labels(), {"C", "O", "C"}, {{0, 1}, {1, 2}, {0, 2}}));
  q.batch.deletions = {3, 17, 29};

  std::string path;
  std::string error;
  ASSERT_TRUE(WriteQuarantineFile(q, db.labels(), dir, &path, &error))
      << error;
  EXPECT_NE(path.find("batch-12"), std::string::npos);

  // A second quarantine of the same seq must not clobber the first.
  std::string path2;
  ASSERT_TRUE(WriteQuarantineFile(q, db.labels(), dir, &path2, &error))
      << error;
  EXPECT_NE(path, path2);
  EXPECT_EQ(ListQuarantineFiles(dir).size(), 2u);

  LabelDictionary dict;
  QuarantinedBatch back;
  ASSERT_TRUE(ReadQuarantineFile(path, dict, &back, &error)) << error;
  EXPECT_EQ(back.seq, 12u);
  EXPECT_EQ(back.attempts, 3);
  // Newlines were flattened for the one-line header.
  EXPECT_EQ(back.reason,
            "failpoint abort: midas.apply_update.after_fct");
  EXPECT_EQ(back.batch.deletions, q.batch.deletions);
  ASSERT_EQ(back.batch.insertions.size(), 2u);
  EXPECT_EQ(back.batch.insertions[0].NumVertices(), 3u);
  EXPECT_EQ(back.batch.insertions[1].NumEdges(), 3u);

  std::filesystem::remove_all(dir);
}

TEST(QuarantineTest, MissingMagicIsRejected) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "midas_quarantine_bad")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = dir + "/bogus.quarantine.gspan";
  {
    std::ofstream out(path);
    out << "t # 0\nv 0 C\n";
  }
  LabelDictionary dict;
  QuarantinedBatch back;
  std::string error;
  EXPECT_FALSE(ReadQuarantineFile(path, dict, &back, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(QuarantineTest, ListIgnoresForeignFiles) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "midas_quarantine_list")
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  { std::ofstream out(dir + "/notes.txt"); out << "hi\n"; }
  { std::ofstream out(dir + "/batch-1.quarantine.gspan"); out << "#\n"; }
  EXPECT_EQ(ListQuarantineFiles(dir).size(), 1u);
  EXPECT_TRUE(ListQuarantineFiles(dir + "/does_not_exist").empty());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace serve
}  // namespace midas
