#include "midas/graph/compute_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "midas/graph/graph_database.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeGraph;
using testing_util::Path;

TEST(GraphContentCodeTest, EqualRepresentationsShareOneCode) {
  LabelDictionary d;
  Graph a = Path(d, {"C", "O", "C"});
  Graph b = Path(d, {"C", "O", "C"});
  EXPECT_EQ(GraphContentCode(a), GraphContentCode(b));
}

TEST(GraphContentCodeTest, LabelAndEdgeDifferencesChangeTheCode) {
  LabelDictionary d;
  Graph base = Path(d, {"C", "O", "C"});
  Graph other_label = Path(d, {"C", "O", "N"});
  Graph other_edges = MakeGraph(d, {"C", "O", "C"}, {{0, 1}, {0, 2}});
  EXPECT_NE(GraphContentCode(base), GraphContentCode(other_label));
  EXPECT_NE(GraphContentCode(base), GraphContentCode(other_edges));
}

TEST(GraphContentCodeTest, CodeIsRepresentationNotIsomorphismClass) {
  LabelDictionary d;
  // Same path C-O-N written in two vertex orders: isomorphic, but distinct
  // codes. The memo may miss across the two; it must never conflate.
  Graph a = MakeGraph(d, {"C", "O", "N"}, {{0, 1}, {1, 2}});
  Graph b = MakeGraph(d, {"N", "O", "C"}, {{0, 1}, {1, 2}});
  EXPECT_NE(GraphContentCode(a), GraphContentCode(b));
}

TEST(ComputeCacheTest, GedRoundTripIsSymmetric) {
  ComputeCache cache(64);
  LabelDictionary d;
  std::string ca = GraphContentCode(Path(d, {"C", "O"}));
  std::string cb = GraphContentCode(Path(d, {"C", "O", "C"}));
  int out = -1;
  EXPECT_FALSE(cache.LookupGed(1, ca, cb, &out));
  cache.StoreGed(1, ca, cb, 3);
  ASSERT_TRUE(cache.LookupGed(1, ca, cb, &out));
  EXPECT_EQ(out, 3);
  // Symmetric: the argument order must not matter.
  out = -1;
  ASSERT_TRUE(cache.LookupGed(1, cb, ca, &out));
  EXPECT_EQ(out, 3);
}

TEST(ComputeCacheTest, GedSaltSeparatesEstimatorGenerations) {
  ComputeCache cache(64);
  LabelDictionary d;
  std::string ca = GraphContentCode(Path(d, {"C", "O"}));
  std::string cb = GraphContentCode(Path(d, {"C", "S"}));
  cache.StoreGed(7, ca, cb, 2);
  int out = -1;
  // Same pair under a different feature-tree digest: distinct entry.
  EXPECT_FALSE(cache.LookupGed(8, ca, cb, &out));
  cache.StoreGed(8, ca, cb, 5);
  ASSERT_TRUE(cache.LookupGed(7, ca, cb, &out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(cache.LookupGed(8, ca, cb, &out));
  EXPECT_EQ(out, 5);
}

TEST(ComputeCacheTest, ContainmentKeyedByEpochAndId) {
  ComputeCache cache(64);
  LabelDictionary d;
  std::string pc = GraphContentCode(Path(d, {"C", "O"}));
  cache.StoreContainment(pc, /*db_epoch=*/1, /*graph_id=*/7, true);
  bool out = false;
  ASSERT_TRUE(cache.LookupContainment(pc, 1, 7, &out));
  EXPECT_TRUE(out);
  // Other epoch or other graph id: miss.
  EXPECT_FALSE(cache.LookupContainment(pc, 2, 7, &out));
  EXPECT_FALSE(cache.LookupContainment(pc, 1, 8, &out));
  // Negative verdicts round-trip too.
  cache.StoreContainment(pc, 1, 8, false);
  out = true;
  ASSERT_TRUE(cache.LookupContainment(pc, 1, 8, &out));
  EXPECT_FALSE(out);
}

TEST(ComputeCacheTest, EvictsLeastRecentlyUsedAndCountsStats) {
  // Tiny cache (capacity clamps to 8 entries per shard = 128 total);
  // storing far more distinct keys than that must evict.
  ComputeCache cache(16);
  LabelDictionary d;
  std::string pc = GraphContentCode(Path(d, {"C"}));
  constexpr uint32_t kKeys = 2048;
  for (uint32_t id = 0; id < kKeys; ++id) {
    cache.StoreContainment(pc, 1, id, true);
  }
  EXPECT_LE(cache.size(), 128u);
  ComputeCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);

  bool out = false;
  uint64_t misses_before = stats.misses;
  EXPECT_FALSE(cache.LookupContainment(pc, 1, kKeys + 1, &out));  // never in
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
  // The most recent key in its shard is LRU-protected.
  ASSERT_TRUE(cache.LookupContainment(pc, 1, kKeys - 1, &out));
  EXPECT_EQ(cache.stats().hits, stats.hits + 1);
}

TEST(ComputeCacheTest, ClearDropsEntriesKeepsStats) {
  ComputeCache cache(64);
  LabelDictionary d;
  std::string pc = GraphContentCode(Path(d, {"C", "O"}));
  cache.StoreContainment(pc, 1, 1, true);
  bool out = false;
  ASSERT_TRUE(cache.LookupContainment(pc, 1, 1, &out));
  uint64_t hits = cache.stats().hits;
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.LookupContainment(pc, 1, 1, &out));
  EXPECT_EQ(cache.stats().hits, hits);
}

TEST(GraphDatabaseEpochTest, CopyGetsFreshEpochMoveKeepsIt) {
  GraphDatabase db;
  LabelDictionary& d = db.labels();
  db.Insert(Path(d, {"C", "O"}));
  uint64_t original = db.epoch();

  GraphDatabase copy = db;
  EXPECT_NE(copy.epoch(), original);  // diverging history → new generation

  GraphDatabase moved = std::move(copy);
  uint64_t copy_epoch = moved.epoch();
  EXPECT_NE(copy_epoch, original);
  GraphDatabase moved_again = std::move(moved);
  EXPECT_EQ(moved_again.epoch(), copy_epoch);  // same database continuing
}

TEST(GraphDatabaseEpochTest, PlainMutationsKeepEpochResurrectionBumpsIt) {
  GraphDatabase db;
  LabelDictionary& d = db.labels();
  GraphId id = db.Insert(Path(d, {"C", "O"}));
  uint64_t before = db.epoch();

  db.Insert(Path(d, {"C", "S"}));
  ASSERT_TRUE(db.Remove(id));
  EXPECT_EQ(db.epoch(), before);  // ids were never reused so far

  // Re-inserting a previously used id breaks the id-stability invariant the
  // containment cache relies on; the epoch must move.
  ASSERT_TRUE(db.InsertWithId(id, Path(d, {"N", "O"})));
  EXPECT_NE(db.epoch(), before);
}

}  // namespace
}  // namespace midas
