#ifndef MIDAS_TESTS_TEST_UTIL_H_
#define MIDAS_TESTS_TEST_UTIL_H_

#include <string>
#include <utility>
#include <vector>

#include "midas/common/rng.h"
#include "midas/graph/graph_database.h"

namespace midas {
namespace testing_util {

/// Builds a graph from label names and an edge list.
inline Graph MakeGraph(LabelDictionary& dict,
                       const std::vector<std::string>& labels,
                       const std::vector<std::pair<int, int>>& edges) {
  Graph g;
  for (const std::string& l : labels) g.AddVertex(dict.Intern(l));
  for (const auto& [u, v] : edges) {
    g.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
  }
  return g;
}

/// Path graph over the given labels.
inline Graph Path(LabelDictionary& dict,
                  const std::vector<std::string>& labels) {
  std::vector<std::pair<int, int>> edges;
  for (size_t i = 0; i + 1 < labels.size(); ++i) {
    edges.emplace_back(static_cast<int>(i), static_cast<int>(i + 1));
  }
  return MakeGraph(dict, labels, edges);
}

/// Cycle of n vertices, all labeled `label`.
inline Graph Cycle(LabelDictionary& dict, int n, const std::string& label) {
  std::vector<std::string> labels(n, label);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return MakeGraph(dict, labels, edges);
}

/// Star with the given center and leaf labels.
inline Graph Star(LabelDictionary& dict, const std::string& center,
                  const std::vector<std::string>& leaves) {
  std::vector<std::string> labels = {center};
  labels.insert(labels.end(), leaves.begin(), leaves.end());
  std::vector<std::pair<int, int>> edges;
  for (size_t i = 0; i < leaves.size(); ++i) {
    edges.emplace_back(0, static_cast<int>(i + 1));
  }
  return MakeGraph(dict, labels, edges);
}

/// A small chemistry-flavored toy database in the spirit of the paper's
/// Figure 3: C-O edges are ubiquitous, C-S edges common, C-N rare; several
/// graphs share a C-O-C backbone so non-trivial frequent (closed) trees
/// exist at sup_min = 0.5.
inline GraphDatabase MakeToyDatabase() {
  GraphDatabase db;
  LabelDictionary& d = db.labels();
  // G0: C-O-C path plus an S leaf on the middle O.
  db.Insert(MakeGraph(d, {"C", "O", "C", "S"}, {{0, 1}, {1, 2}, {1, 3}}));
  // G1: C-O-C path with an N leaf (rare label).
  db.Insert(MakeGraph(d, {"C", "O", "C", "N"}, {{0, 1}, {1, 2}, {2, 3}}));
  // G2: triangle C-O-C with extra O.
  db.Insert(
      MakeGraph(d, {"C", "O", "C", "O"}, {{0, 1}, {1, 2}, {0, 2}, {2, 3}}));
  // G3: C-O edge only.
  db.Insert(MakeGraph(d, {"C", "O"}, {{0, 1}}));
  // G4: C-O-C path plus S chain.
  db.Insert(MakeGraph(d, {"C", "O", "C", "S", "C"},
                      {{0, 1}, {1, 2}, {2, 3}, {3, 4}}));
  // G5: star around C with O, O, S.
  db.Insert(MakeGraph(d, {"C", "O", "O", "S"}, {{0, 1}, {0, 2}, {0, 3}}));
  // G6: C-C-C chain with one O.
  db.Insert(MakeGraph(d, {"C", "C", "C", "O"}, {{0, 1}, {1, 2}, {2, 3}}));
  // G7: C-O-C-O square.
  db.Insert(
      MakeGraph(d, {"C", "O", "C", "O"}, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
  return db;
}

/// Deterministic random labeled graph: tree + optional extra edges.
inline Graph RandomGraph(LabelDictionary& dict, Rng& rng, int num_vertices,
                         int extra_edges, int num_labels = 3) {
  Graph g;
  for (int i = 0; i < num_vertices; ++i) {
    g.AddVertex(dict.Intern(std::string(1, static_cast<char>(
                                               'A' + rng.UniformInt(
                                                         0, num_labels - 1)))));
  }
  for (int i = 1; i < num_vertices; ++i) {
    g.AddEdge(static_cast<VertexId>(rng.UniformInt(0, i - 1)),
              static_cast<VertexId>(i));
  }
  for (int e = 0; e < extra_edges; ++e) {
    VertexId u = static_cast<VertexId>(rng.UniformInt(0, num_vertices - 1));
    VertexId v = static_cast<VertexId>(rng.UniformInt(0, num_vertices - 1));
    if (u != v) g.AddEdge(u, v);
  }
  return g;
}

/// Random permutation vector of size n.
inline std::vector<VertexId> RandomPermutation(size_t n, Rng& rng) {
  std::vector<VertexId> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<VertexId>(i);
  rng.Shuffle(perm);
  return perm;
}

}  // namespace testing_util
}  // namespace midas

#endif  // MIDAS_TESTS_TEST_UTIL_H_
