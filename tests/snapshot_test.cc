#include "midas/maintain/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "midas/common/failpoint.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/graph/graph_io.h"
#include "midas/graph/subgraph_iso.h"

namespace midas {
namespace {

MidasConfig SnapConfig() {
  MidasConfig cfg;
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.cluster.max_cluster_size = 22;
  cfg.budget = {3, 7, 9};
  cfg.walk = {35, 11};
  cfg.epsilon = 0.0075;
  cfg.kappa = 0.15;
  cfg.lambda = 0.2;
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  return cfg;
}

TEST(ConfigIoTest, RoundTripPreservesEveryField) {
  MidasConfig cfg = SnapConfig();
  cfg.distance_measure = DistributionDistance::kHellinger;
  cfg.swap.max_scans = 5;
  cfg.swap.use_swap_alpha_schedule = false;
  cfg.small_panel.max_edges_patterns = 2;
  cfg.round_deadline_ms = 37.5;
  cfg.round_step_limit = 123456;

  std::ostringstream out;
  WriteConfig(cfg, out);
  MidasConfig restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadConfig(in, &restored));

  EXPECT_DOUBLE_EQ(restored.fct.sup_min, cfg.fct.sup_min);
  EXPECT_EQ(restored.fct.max_edges, cfg.fct.max_edges);
  EXPECT_EQ(restored.cluster.num_coarse, cfg.cluster.num_coarse);
  EXPECT_EQ(restored.cluster.max_cluster_size,
            cfg.cluster.max_cluster_size);
  EXPECT_EQ(restored.budget.eta_min, cfg.budget.eta_min);
  EXPECT_EQ(restored.budget.eta_max, cfg.budget.eta_max);
  EXPECT_EQ(restored.budget.gamma, cfg.budget.gamma);
  EXPECT_EQ(restored.walk.num_walks, cfg.walk.num_walks);
  EXPECT_EQ(restored.walk.walk_length, cfg.walk.walk_length);
  EXPECT_DOUBLE_EQ(restored.epsilon, cfg.epsilon);
  EXPECT_EQ(restored.distance_measure, cfg.distance_measure);
  EXPECT_DOUBLE_EQ(restored.kappa, cfg.kappa);
  EXPECT_DOUBLE_EQ(restored.lambda, cfg.lambda);
  EXPECT_EQ(restored.swap.max_scans, cfg.swap.max_scans);
  EXPECT_EQ(restored.swap.use_swap_alpha_schedule,
            cfg.swap.use_swap_alpha_schedule);
  EXPECT_EQ(restored.sample_cap, cfg.sample_cap);
  EXPECT_EQ(restored.seed, cfg.seed);
  EXPECT_EQ(restored.small_panel.max_edges_patterns,
            cfg.small_panel.max_edges_patterns);
  EXPECT_DOUBLE_EQ(restored.round_deadline_ms, cfg.round_deadline_ms);
  EXPECT_EQ(restored.round_step_limit, cfg.round_step_limit);
}

TEST(ConfigIoTest, UnknownKeysIgnoredMalformedRejected) {
  MidasConfig cfg;
  std::istringstream ok("future_knob=17\nseed=9\n# comment\n\n");
  EXPECT_TRUE(ReadConfig(ok, &cfg));
  EXPECT_EQ(cfg.seed, 9u);

  std::istringstream bad("this line has no equals sign\n");
  EXPECT_FALSE(ReadConfig(bad, &cfg));
  std::istringstream bad2("seed=not_a_number\n");
  EXPECT_FALSE(ReadConfig(bad2, &cfg));
}

TEST(SnapshotTest, SaveRestoreRoundTrip) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "midas_snapshot_test")
          .string();
  std::filesystem::remove_all(dir);

  MoleculeGenerator gen(777);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(30);
  MidasEngine engine(gen.Generate(data), SnapConfig());
  engine.Initialize();
  GraphDatabase copy = engine.db();
  BatchUpdate delta = gen.GenerateAdditions(copy, data, 10, true);
  engine.ApplyUpdate(delta);

  ASSERT_TRUE(SaveSnapshot(engine, dir));
  std::unique_ptr<MidasEngine> restored = RestoreEngine(dir);
  ASSERT_NE(restored, nullptr);

  // Same database size and same panel (up to isomorphism, in order).
  EXPECT_EQ(restored->db().size(), engine.db().size());
  ASSERT_EQ(restored->patterns().size(), engine.patterns().size());
  // The restored engine's dictionary is interned in file order, so numeric
  // labels differ; compare after remapping by name.
  auto it1 = engine.patterns().patterns().begin();
  auto it2 = restored->patterns().patterns().begin();
  for (; it1 != engine.patterns().patterns().end(); ++it1, ++it2) {
    Graph original_in_restored_labels = RemapLabels(
        it1->second.graph, engine.db().labels(), restored->labels());
    EXPECT_TRUE(
        AreIsomorphic(original_in_restored_labels, it2->second.graph));
  }
  EXPECT_DOUBLE_EQ(restored->config().epsilon, engine.config().epsilon);

  // The restored engine keeps working.
  GraphDatabase copy2 = restored->db();
  BatchUpdate delta2 = gen.GenerateAdditions(copy2, data, 8, false);
  restored->ApplyUpdate(delta2);
  EXPECT_EQ(restored->db().size(), engine.db().size() + 8);

  std::filesystem::remove_all(dir);
}

TEST(SnapshotTest, RestoreFromMissingDirectoryFails) {
  EXPECT_EQ(RestoreEngine("/nonexistent/midas/snapshot"), nullptr);
  std::string error;
  EXPECT_EQ(RestoreEngine("/nonexistent/midas/snapshot", &error), nullptr);
  EXPECT_NE(error.find("no snapshot found"), std::string::npos) << error;
}

// Scratch fixture: one saved snapshot in a temp dir.
struct SavedSnapshot {
  explicit SavedSnapshot(const char* name, size_t graphs = 25)
      : dir((std::filesystem::temp_directory_path() / name).string()),
        gen(777),
        data(MoleculeGenerator::EmolLike(graphs)),
        engine(gen.Generate(data), SnapConfig()) {
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(dir + ".tmp");
    std::filesystem::remove_all(dir + ".old");
    engine.Initialize();
  }
  ~SavedSnapshot() {
    std::filesystem::remove_all(dir);
    std::filesystem::remove_all(dir + ".tmp");
    std::filesystem::remove_all(dir + ".old");
  }

  std::string dir;
  MoleculeGenerator gen;
  MoleculeGenConfig data;
  MidasEngine engine;
};

TEST(SnapshotTest, SaveReportsErrorOnUnwritableTarget) {
  SavedSnapshot fx("midas_snap_unwritable");
  // Block the path with a regular file: create_directories must fail.
  std::string blocker = fx.dir + "_blocker";
  { std::ofstream(blocker) << "not a directory"; }
  std::string error;
  EXPECT_FALSE(SaveSnapshot(fx.engine, blocker + "/snap", &error));
  EXPECT_NE(error.find("create"), std::string::npos) << error;
  std::filesystem::remove(blocker);
}

TEST(SnapshotTest, ChecksumMismatchRefusedWithDiagnostic) {
  SavedSnapshot fx("midas_snap_crc");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(fx.engine, fx.dir, &error)) << error;
  // Corrupt one byte of the database file (bit rot / partial overwrite).
  std::ofstream(fx.dir + "/database.gspan", std::ios::app) << "x";
  EXPECT_EQ(RestoreEngine(fx.dir, &error), nullptr);
  EXPECT_NE(error.find("checksum mismatch"), std::string::npos) << error;
}

TEST(SnapshotTest, MissingFileRefusedWithDiagnostic) {
  SavedSnapshot fx("midas_snap_missing");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(fx.engine, fx.dir, &error)) << error;
  std::filesystem::remove(fx.dir + "/patterns.gspan");
  EXPECT_EQ(RestoreEngine(fx.dir, &error), nullptr);
  EXPECT_NE(error.find("patterns.gspan"), std::string::npos) << error;
}

TEST(SnapshotTest, InvalidRestoredConfigRefused) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "midas_snap_badcfg")
          .string();
  std::filesystem::remove_all(dir);
  MidasConfig bad = SnapConfig();
  bad.budget.eta_min = 2;  // violates Definition 3.1 — a hard error
  MoleculeGenerator gen(778);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(5);
  MidasEngine engine(gen.Generate(data), bad);  // never Initialize()d
  std::string error;
  ASSERT_TRUE(SaveSnapshot(engine, dir, &error)) << error;
  EXPECT_EQ(RestoreEngine(dir, &error), nullptr);
  EXPECT_NE(error.find("eta_min"), std::string::npos) << error;
  std::filesystem::remove_all(dir);
}

TEST(SnapshotTest, RestoreFallsBackToTmpAndOld) {
  SavedSnapshot fx("midas_snap_fallback");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(fx.engine, fx.dir, &error)) << error;
  size_t expected = fx.engine.db().size();

  // Crash right before the rename: only <dir>.tmp exists.
  std::filesystem::rename(fx.dir, fx.dir + ".tmp");
  std::unique_ptr<MidasEngine> from_tmp = RestoreEngine(fx.dir, &error);
  ASSERT_NE(from_tmp, nullptr) << error;
  EXPECT_EQ(from_tmp->db().size(), expected);

  // Crash mid-swap: only <dir>.old exists.
  std::filesystem::rename(fx.dir + ".tmp", fx.dir + ".old");
  std::unique_ptr<MidasEngine> from_old = RestoreEngine(fx.dir, &error);
  ASSERT_NE(from_old, nullptr) << error;
  EXPECT_EQ(from_old->db().size(), expected);
}

TEST(SnapshotTest, SnapshotCarriesRoundSeqAndIdAllocator) {
  SavedSnapshot fx("midas_snap_seq");
  BatchUpdate delta = [&] {
    GraphDatabase copy = fx.engine.db();
    return fx.gen.GenerateAdditions(copy, fx.data, 6, true);
  }();
  fx.engine.ApplyUpdate(delta);
  // Punch a hole above the largest live id so next_id() != max_id + 1.
  std::vector<GraphId> ids = fx.engine.db().Ids();
  BatchUpdate del;
  del.deletions = {ids.back()};
  fx.engine.ApplyUpdate(del);

  std::string error;
  ASSERT_TRUE(SaveSnapshot(fx.engine, fx.dir, &error)) << error;
  std::unique_ptr<MidasEngine> restored = RestoreEngine(fx.dir, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->round_seq(), fx.engine.round_seq());
  EXPECT_EQ(restored->db().next_id(), fx.engine.db().next_id());
}

TEST(SnapshotTest, PartialWriteFailpointLeavesOldSnapshotIntact) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  SavedSnapshot fx("midas_snap_partial");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(fx.engine, fx.dir, &error)) << error;
  size_t old_size = fx.engine.db().size();

  // Grow the engine, then fail the re-save mid-write.
  BatchUpdate delta = [&] {
    GraphDatabase copy = fx.engine.db();
    return fx.gen.GenerateAdditions(copy, fx.data, 5, false);
  }();
  fx.engine.ApplyUpdate(delta);
  fail::Arm("snapshot.save.partial_write");
  EXPECT_FALSE(SaveSnapshot(fx.engine, fx.dir, &error));
  fail::DisarmAll();
  EXPECT_NE(error.find("partial write"), std::string::npos) << error;

  // The torn write stayed in the tmp dir; the live snapshot still restores
  // to the pre-update state.
  std::unique_ptr<MidasEngine> restored = RestoreEngine(fx.dir, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->db().size(), old_size);
}

TEST(SnapshotTest, AbortBeforeRenameKeepsPreviousSnapshot) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  SavedSnapshot fx("midas_snap_rename");
  std::string error;
  ASSERT_TRUE(SaveSnapshot(fx.engine, fx.dir, &error)) << error;
  size_t old_size = fx.engine.db().size();

  BatchUpdate delta = [&] {
    GraphDatabase copy = fx.engine.db();
    return fx.gen.GenerateAdditions(copy, fx.data, 5, false);
  }();
  fx.engine.ApplyUpdate(delta);
  fail::Arm("snapshot.save.before_rename");
  EXPECT_THROW(SaveSnapshot(fx.engine, fx.dir, &error),
               fail::FailpointAbort);
  fail::DisarmAll();

  // The live directory was never touched; it restores the previous state.
  std::unique_ptr<MidasEngine> restored = RestoreEngine(fx.dir, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->db().size(), old_size);

  // And the interrupted save completes cleanly on retry.
  ASSERT_TRUE(SaveSnapshot(fx.engine, fx.dir, &error)) << error;
  restored = RestoreEngine(fx.dir, &error);
  ASSERT_NE(restored, nullptr) << error;
  EXPECT_EQ(restored->db().size(), old_size + 5);
}

}  // namespace
}  // namespace midas
