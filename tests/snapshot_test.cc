#include "midas/maintain/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "midas/datagen/molecule_gen.h"
#include "midas/graph/graph_io.h"
#include "midas/graph/subgraph_iso.h"

namespace midas {
namespace {

MidasConfig SnapConfig() {
  MidasConfig cfg;
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.cluster.max_cluster_size = 22;
  cfg.budget = {3, 7, 9};
  cfg.walk = {35, 11};
  cfg.epsilon = 0.0075;
  cfg.kappa = 0.15;
  cfg.lambda = 0.2;
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  return cfg;
}

TEST(ConfigIoTest, RoundTripPreservesEveryField) {
  MidasConfig cfg = SnapConfig();
  cfg.distance_measure = DistributionDistance::kHellinger;
  cfg.swap.max_scans = 5;
  cfg.swap.use_swap_alpha_schedule = false;
  cfg.small_panel.max_edges_patterns = 2;

  std::ostringstream out;
  WriteConfig(cfg, out);
  MidasConfig restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadConfig(in, &restored));

  EXPECT_DOUBLE_EQ(restored.fct.sup_min, cfg.fct.sup_min);
  EXPECT_EQ(restored.fct.max_edges, cfg.fct.max_edges);
  EXPECT_EQ(restored.cluster.num_coarse, cfg.cluster.num_coarse);
  EXPECT_EQ(restored.cluster.max_cluster_size,
            cfg.cluster.max_cluster_size);
  EXPECT_EQ(restored.budget.eta_min, cfg.budget.eta_min);
  EXPECT_EQ(restored.budget.eta_max, cfg.budget.eta_max);
  EXPECT_EQ(restored.budget.gamma, cfg.budget.gamma);
  EXPECT_EQ(restored.walk.num_walks, cfg.walk.num_walks);
  EXPECT_EQ(restored.walk.walk_length, cfg.walk.walk_length);
  EXPECT_DOUBLE_EQ(restored.epsilon, cfg.epsilon);
  EXPECT_EQ(restored.distance_measure, cfg.distance_measure);
  EXPECT_DOUBLE_EQ(restored.kappa, cfg.kappa);
  EXPECT_DOUBLE_EQ(restored.lambda, cfg.lambda);
  EXPECT_EQ(restored.swap.max_scans, cfg.swap.max_scans);
  EXPECT_EQ(restored.swap.use_swap_alpha_schedule,
            cfg.swap.use_swap_alpha_schedule);
  EXPECT_EQ(restored.sample_cap, cfg.sample_cap);
  EXPECT_EQ(restored.seed, cfg.seed);
  EXPECT_EQ(restored.small_panel.max_edges_patterns,
            cfg.small_panel.max_edges_patterns);
}

TEST(ConfigIoTest, UnknownKeysIgnoredMalformedRejected) {
  MidasConfig cfg;
  std::istringstream ok("future_knob=17\nseed=9\n# comment\n\n");
  EXPECT_TRUE(ReadConfig(ok, &cfg));
  EXPECT_EQ(cfg.seed, 9u);

  std::istringstream bad("this line has no equals sign\n");
  EXPECT_FALSE(ReadConfig(bad, &cfg));
  std::istringstream bad2("seed=not_a_number\n");
  EXPECT_FALSE(ReadConfig(bad2, &cfg));
}

TEST(SnapshotTest, SaveRestoreRoundTrip) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "midas_snapshot_test")
          .string();
  std::filesystem::remove_all(dir);

  MoleculeGenerator gen(777);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(30);
  MidasEngine engine(gen.Generate(data), SnapConfig());
  engine.Initialize();
  GraphDatabase copy = engine.db();
  BatchUpdate delta = gen.GenerateAdditions(copy, data, 10, true);
  engine.ApplyUpdate(delta);

  ASSERT_TRUE(SaveSnapshot(engine, dir));
  std::unique_ptr<MidasEngine> restored = RestoreEngine(dir);
  ASSERT_NE(restored, nullptr);

  // Same database size and same panel (up to isomorphism, in order).
  EXPECT_EQ(restored->db().size(), engine.db().size());
  ASSERT_EQ(restored->patterns().size(), engine.patterns().size());
  // The restored engine's dictionary is interned in file order, so numeric
  // labels differ; compare after remapping by name.
  auto it1 = engine.patterns().patterns().begin();
  auto it2 = restored->patterns().patterns().begin();
  for (; it1 != engine.patterns().patterns().end(); ++it1, ++it2) {
    Graph original_in_restored_labels = RemapLabels(
        it1->second.graph, engine.db().labels(), restored->labels());
    EXPECT_TRUE(
        AreIsomorphic(original_in_restored_labels, it2->second.graph));
  }
  EXPECT_DOUBLE_EQ(restored->config().epsilon, engine.config().epsilon);

  // The restored engine keeps working.
  GraphDatabase copy2 = restored->db();
  BatchUpdate delta2 = gen.GenerateAdditions(copy2, data, 8, false);
  restored->ApplyUpdate(delta2);
  EXPECT_EQ(restored->db().size(), engine.db().size() + 8);

  std::filesystem::remove_all(dir);
}

TEST(SnapshotTest, RestoreFromMissingDirectoryFails) {
  EXPECT_EQ(RestoreEngine("/nonexistent/midas/snapshot"), nullptr);
}

}  // namespace
}  // namespace midas
