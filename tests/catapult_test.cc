#include "midas/select/catapult.h"

#include <gtest/gtest.h>

#include <set>

#include "midas/datagen/molecule_gen.h"
#include "midas/graph/canonical.h"
#include "test_util.h"

namespace midas {
namespace {

struct Pipeline {
  GraphDatabase db;
  FctSet fcts;
  ClusterSet clusters;
  std::map<ClusterId, Csg> csgs;

  explicit Pipeline(size_t n = 40, uint64_t seed = 50) {
    MoleculeGenerator gen(seed);
    db = gen.Generate(MoleculeGenerator::EmolLike(n));
    fcts = FctSet::Mine(db, {0.4, 3, 20000});
    ClusterSet::Config cc;
    cc.num_coarse = 3;
    cc.max_cluster_size = 20;
    Rng rng(seed + 1);
    clusters = ClusterSet::Build(db, fcts, cc, rng);
    for (const auto& [cid, c] : clusters.clusters()) {
      csgs.emplace(cid, Csg::Build(db, c.members));
    }
  }
};

CatapultConfig SmallBudget() {
  CatapultConfig cfg;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 6;
  cfg.budget.gamma = 8;
  cfg.walk.num_walks = 40;
  cfg.walk.walk_length = 12;
  cfg.pcp_starts = 2;
  cfg.sample_cap = 0;
  return cfg;
}

TEST(PatternBudgetTest, MaxPerSize) {
  PatternBudget b;
  b.eta_min = 3;
  b.eta_max = 12;
  b.gamma = 30;
  EXPECT_EQ(b.MaxPerSize(), 3u);
  b.eta_max = 3;
  EXPECT_EQ(b.MaxPerSize(), 30u);
}

TEST(CatapultTest, RespectsBudget) {
  Pipeline p;
  Rng rng(3);
  PatternSet set =
      SelectCannedPatterns(p.db, p.fcts, p.csgs, SmallBudget(), rng);
  EXPECT_GT(set.size(), 0u);
  EXPECT_LE(set.size(), 8u);

  std::map<size_t, size_t> per_size;
  for (const auto& [pid, pat] : set.patterns()) {
    size_t eta = pat.graph.NumEdges();
    EXPECT_GE(eta, 3u);
    EXPECT_LE(eta, 6u);
    ++per_size[eta];
  }
  size_t cap = SmallBudget().budget.MaxPerSize();
  for (const auto& [eta, count] : per_size) EXPECT_LE(count, cap);
}

TEST(CatapultTest, PatternsAreConnectedAndDistinct) {
  Pipeline p;
  Rng rng(4);
  PatternSet set =
      SelectCannedPatterns(p.db, p.fcts, p.csgs, SmallBudget(), rng);
  std::set<std::string> sigs;
  for (const auto& [pid, pat] : set.patterns()) {
    EXPECT_TRUE(pat.graph.IsConnected());
    EXPECT_TRUE(sigs.insert(GraphSignature(pat.graph)).second)
        << "duplicate pattern selected";
  }
}

TEST(CatapultTest, MetricsPopulated) {
  Pipeline p;
  Rng rng(5);
  PatternSet set =
      SelectCannedPatterns(p.db, p.fcts, p.csgs, SmallBudget(), rng);
  ASSERT_GT(set.size(), 0u);
  for (const auto& [pid, pat] : set.patterns()) {
    EXPECT_GT(pat.cog, 0.0);
    EXPECT_GE(pat.scov, 0.0);
    EXPECT_GE(pat.lcov, 0.0);
    EXPECT_GE(pat.div, 0.0);
  }
  EXPECT_GT(set.FScov(p.db.size()), 0.0);
}

TEST(CatapultTest, IndicesDoNotChangeCoverageSemantics) {
  Pipeline p;
  FctIndex fct_index = FctIndex::Build(p.db, p.fcts);
  IfeIndex ife_index = IfeIndex::Build(p.db, p.fcts);
  Rng r1(6);
  Rng r2(6);
  PatternSet plain =
      SelectCannedPatterns(p.db, p.fcts, p.csgs, SmallBudget(), r1);
  PatternSet indexed = SelectCannedPatterns(p.db, p.fcts, p.csgs,
                                            SmallBudget(), r2, &fct_index,
                                            &ife_index);
  // Same RNG stream + same semantics => identical selections.
  ASSERT_EQ(plain.size(), indexed.size());
  auto it1 = plain.patterns().begin();
  auto it2 = indexed.patterns().begin();
  for (; it1 != plain.patterns().end(); ++it1, ++it2) {
    EXPECT_EQ(GraphSignature(it1->second.graph),
              GraphSignature(it2->second.graph));
    EXPECT_DOUBLE_EQ(it1->second.scov, it2->second.scov);
  }
}

TEST(CatapultTest, PcpLibraryModeAlsoRespectsBudget) {
  Pipeline p;
  CatapultConfig cfg = SmallBudget();
  cfg.use_pcp_library = true;
  cfg.pcp_library_size = 6;
  Rng rng(7);
  PatternSet set = SelectCannedPatterns(p.db, p.fcts, p.csgs, cfg, rng);
  EXPECT_GT(set.size(), 0u);
  EXPECT_LE(set.size(), cfg.budget.gamma);
  for (const auto& [pid, pat] : set.patterns()) {
    EXPECT_GE(pat.graph.NumEdges(), cfg.budget.eta_min);
    EXPECT_LE(pat.graph.NumEdges(), cfg.budget.eta_max);
    EXPECT_TRUE(pat.graph.IsConnected());
  }
}

TEST(CatapultTest, EmptyDatabase) {
  GraphDatabase db;
  FctSet fcts;
  std::map<ClusterId, Csg> csgs;
  Rng rng(1);
  PatternSet set = SelectCannedPatterns(db, fcts, csgs, SmallBudget(), rng);
  EXPECT_EQ(set.size(), 0u);
}

}  // namespace
}  // namespace midas
