// End-to-end acceptance of the live introspection stack: an EngineHost
// with its telemetry server on serves /metrics, /spans and /healthz over
// real HTTP while the writer maintains the panel — and a synthetic
// coverage collapse flips /healthz to 503 with a matching quality_drift
// record in the JSONL event log.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "http_test_client.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/obs/event_log.h"
#include "midas/obs/metrics.h"
#include "midas/obs/profile.h"
#include "midas/serve/engine_host.h"

namespace midas {
namespace serve {
namespace {

namespace fs = std::filesystem;
using midas::testing::HttpGet;
using midas::testing::HttpResult;
using std::chrono::milliseconds;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

// The global profiler stays enabled after EngineHost turns it on; restore
// the default so neighbouring tests see the profiler they expect.
struct ProfilerGuard {
  ~ProfilerGuard() {
    obs::SpanProfiler::Current().set_enabled(false);
    obs::SpanProfiler::Current().Clear();
  }
};

MidasConfig TestConfig() {
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.epsilon = 0.0;
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  return cfg;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(TelemetryIntegrationTest, EndpointsServeAndDriftFlipsHealthz) {
  TempDir dir("midas_telemetry_integration");
  ProfilerGuard profiler_guard;
  // A fresh registry: the registry slot is process-wide, so the writer
  // thread and the telemetry server both record into it, and the drift
  // counter assertions below start from zero regardless of test order.
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry metrics_scope(registry);

  MoleculeGenerator gen(101);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(24);
  auto engine = std::make_unique<MidasEngine>(gen.Generate(data),
                                              TestConfig());
  engine->Initialize();
  GraphDatabase base = engine->db();

  HostConfig cfg;
  cfg.queue_capacity = 8;
  // Synthetic collapse mechanism: the pattern set is frozen (kNoMaintain
  // refreshes metrics but never swaps patterns), so flooding the database
  // with a novel family genuinely sinks scov.
  cfg.mode = MaintenanceMode::kNoMaintain;
  cfg.telemetry_port = 0;  // ephemeral: tests never race over ports
  cfg.sli.baseline_rounds = 3;
  cfg.sli.window = 3;
  cfg.sli.min_window = 3;
  cfg.sli.alpha = 0.05;  // 3-vs-3 full separation: p ~ 0.033
  cfg.sli.min_rel_delta = 0.10;

  const std::string event_path = dir.path + "/events.jsonl";
  obs::MaintenanceEventLog event_log;
  event_log.set_sink(obs::FileSink(event_path));

  EngineHost host(std::move(engine), dir.path + "/state", cfg);
  host.SetEventLog(&event_log);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;
  const int port = host.telemetry_port();
  ASSERT_GT(port, 0);

  // --- Baseline: three in-family rounds, host healthy -----------------
  for (int day = 0; day < 3; ++day) {
    GraphDatabase copy = base;
    BatchUpdate delta = gen.GenerateAdditions(copy, data, 2, false);
    ASSERT_TRUE(host.Submit(std::move(delta), copy.labels()).accepted());
    ASSERT_TRUE(host.WaitIdle(milliseconds(60000)));
  }

  HttpResult health = HttpGet(port, "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"quality_drift\":false"), std::string::npos);

  // /metrics exposes the per-round quality SLIs.
  HttpResult metrics = HttpGet(port, "/metrics");
  ASSERT_TRUE(metrics.ok);
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("midas_quality_coverage"), std::string::npos);
  EXPECT_NE(metrics.body.find("midas_quality_label_coverage"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("midas_quality_diversity"), std::string::npos);
  EXPECT_NE(metrics.body.find("midas_quality_drift_status 0"),
            std::string::npos);

  // /spans?fmt=folded shows the maintenance phases nested under the round
  // span, with integer self-time weights.
  HttpResult spans = HttpGet(port, "/spans?fmt=folded");
  ASSERT_TRUE(spans.ok);
  ASSERT_EQ(spans.status, 200);
  EXPECT_NE(
      spans.body.find("midas_maintain_total_ms;midas_maintain_apply_ms "),
      std::string::npos)
      << spans.body;
  // Phase times are plausible: the total path's weight bounds its child's.
  auto weight_of = [&spans](const std::string& path) {
    size_t pos = spans.body.find(path + " ");
    EXPECT_NE(pos, std::string::npos) << path;
    return std::atoll(spans.body.c_str() + pos + path.size() + 1);
  };
  EXPECT_GE(weight_of("midas_maintain_total_ms"), 0);
  EXPECT_GT(spans.body.find('\n'), 0u);

  // /statusz carries the last committed round.
  HttpResult statusz = HttpGet(port, "/statusz");
  ASSERT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("\"last_round\":{"), std::string::npos);
  EXPECT_NE(statusz.body.find("\"drift\":{\"enabled\":true"),
            std::string::npos);

  // --- Collapse: flood with a novel family, panel frozen --------------
  for (int day = 0; day < 3; ++day) {
    GraphDatabase copy = base;
    BatchUpdate delta = gen.GenerateAdditions(copy, data, 40, true);
    ASSERT_TRUE(host.Submit(std::move(delta), copy.labels()).accepted());
    ASSERT_TRUE(host.WaitIdle(milliseconds(60000)));
  }

  EXPECT_TRUE(host.quality_drifted());
  obs::DriftFinding finding = host.drift_detector().last_finding();
  EXPECT_TRUE(finding.drifted);
  EXPECT_EQ(finding.metric, "scov");
  EXPECT_LT(finding.window_mean, finding.baseline_mean);

  health = HttpGet(port, "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("\"status\":\"degraded\""), std::string::npos);
  EXPECT_NE(health.body.find("\"quality_drift\":true"), std::string::npos);

  metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.body.find("midas_quality_drift_status 1"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("midas_quality_drift_events_total 1"),
            std::string::npos);

  host.Stop();

  // The JSONL event log carries exactly the transition record.
  std::string events = ReadFile(event_path);
  EXPECT_NE(events.find("\"quality_event\":\"quality_drift\""),
            std::string::npos)
      << events;
  EXPECT_NE(events.find("\"metric\":\"scov\""), std::string::npos);
}

TEST(TelemetryIntegrationTest, TelemetryDisabledByDefault) {
  TempDir dir("midas_telemetry_off");
  MoleculeGenerator gen(7);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(12);
  auto engine = std::make_unique<MidasEngine>(gen.Generate(data),
                                              TestConfig());
  engine->Initialize();

  EngineHost host(std::move(engine), dir.path);  // default HostConfig
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;
  EXPECT_EQ(host.telemetry_port(), -1);
  EXPECT_EQ(host.telemetry(), nullptr);
  host.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace midas
