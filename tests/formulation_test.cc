#include "midas/queryform/formulation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeGraph;
using testing_util::Path;

CannedPattern MakePattern(Graph g) {
  CannedPattern p;
  p.graph = std::move(g);
  return p;
}

TEST(FormulationTest, EdgeAtATimeSteps) {
  LabelDictionary d;
  Graph q = Path(d, {"C", "O", "C", "S"});
  EXPECT_EQ(EdgeAtATimeSteps(q), 4u + 3u);
}

TEST(FormulationTest, NoPatternsFallsBackToEdgeAtATime) {
  LabelDictionary d;
  Graph q = Path(d, {"C", "O", "C"});
  PatternSet empty;
  FormulationPlan plan = PlanFormulation(q, empty);
  EXPECT_EQ(plan.patterns_used, 0u);
  EXPECT_FALSE(plan.used_any_pattern);
  EXPECT_EQ(plan.steps, EdgeAtATimeSteps(q));
}

TEST(FormulationTest, ExactPatternIsOneStep) {
  LabelDictionary d;
  Graph q = Path(d, {"C", "O", "C"});
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O", "C"})));
  FormulationPlan plan = PlanFormulation(q, set);
  EXPECT_EQ(plan.patterns_used, 1u);
  EXPECT_EQ(plan.vertices_added, 0u);
  EXPECT_EQ(plan.edges_added, 0u);
  EXPECT_EQ(plan.steps, 1u);
}

TEST(FormulationTest, PatternPlusLeftovers) {
  LabelDictionary d;
  // Query: C-O-C-S chain. Pattern C-O-C covers 3 vertices/2 edges; leftover
  // S vertex and C-S edge.
  Graph q = Path(d, {"C", "O", "C", "S"});
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O", "C"})));
  FormulationPlan plan = PlanFormulation(q, set);
  EXPECT_EQ(plan.patterns_used, 1u);
  EXPECT_EQ(plan.vertices_added, 1u);
  EXPECT_EQ(plan.edges_added, 1u);
  EXPECT_EQ(plan.steps, 3u);
}

TEST(FormulationTest, PatternNotInQueryIgnored) {
  LabelDictionary d;
  Graph q = Path(d, {"C", "O", "C"});
  PatternSet set;
  set.Add(MakePattern(Path(d, {"N", "N", "N"})));
  FormulationPlan plan = PlanFormulation(q, set);
  EXPECT_EQ(plan.patterns_used, 0u);
  EXPECT_EQ(plan.steps, EdgeAtATimeSteps(q));
}

TEST(FormulationTest, PatternReuse) {
  LabelDictionary d;
  // Two disjoint C-O components connected by a C-C bridge.
  Graph q = MakeGraph(d, {"C", "O", "C", "O"}, {{0, 1}, {2, 3}, {0, 2}});
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O"})));
  FormulationPlan plan = PlanFormulation(q, set);
  EXPECT_EQ(plan.patterns_used, 2u);  // same pattern reused
  EXPECT_EQ(plan.vertices_added, 0u);
  EXPECT_EQ(plan.edges_added, 1u);  // the bridge
  EXPECT_EQ(plan.steps, 3u);
}

TEST(FormulationTest, LargestPatternPreferred) {
  LabelDictionary d;
  Graph q = Path(d, {"C", "O", "C", "O", "C"});
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O"})));
  set.Add(MakePattern(Path(d, {"C", "O", "C", "O", "C"})));
  FormulationPlan plan = PlanFormulation(q, set);
  EXPECT_EQ(plan.steps, 1u);  // whole query in one drag
}

TEST(FormulationTest, StepsNeverExceedEdgeAtATime) {
  // Patterns can only help (greedy never goes above the baseline).
  GraphDatabase db = testing_util::MakeToyDatabase();
  LabelDictionary& d = db.labels();
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O", "C"})));
  set.Add(MakePattern(Path(d, {"C", "S"})));
  for (const auto& [id, g] : db.graphs()) {
    FormulationPlan plan = PlanFormulation(g, set);
    EXPECT_LE(plan.steps, EdgeAtATimeSteps(g)) << "graph " << id;
  }
}

TEST(EditPlanTest, ExactEmbeddingNeedsNoEdits) {
  LabelDictionary d;
  Graph q = Path(d, {"C", "O", "C"});
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O", "C"})));
  EditPlan plan = PlanFormulationWithEdits(q, set);
  EXPECT_EQ(plan.patterns_used, 1u);
  EXPECT_EQ(plan.elements_deleted, 0u);
  EXPECT_EQ(plan.steps, 1u);
}

TEST(EditPlanTest, TrimsOversizedPattern) {
  LabelDictionary d;
  // Query C-O-C; the panel only has C-O-C-S (one extra S leaf). Example
  // 1.1's flow: drop, delete the S (cascades its edge) -> 2 steps, vs 5
  // edge-at-a-time.
  Graph q = Path(d, {"C", "O", "C"});
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O", "C", "S"})));
  EditPlan plan = PlanFormulationWithEdits(q, set);
  EXPECT_EQ(plan.patterns_used, 1u);
  EXPECT_EQ(plan.elements_deleted, 1u);  // the S vertex (edge cascades)
  EXPECT_EQ(plan.vertices_added, 0u);
  EXPECT_EQ(plan.edges_added, 0u);
  EXPECT_EQ(plan.steps, 2u);
}

TEST(EditPlanTest, UselessPatternNotTrimmed) {
  LabelDictionary d;
  // Trimming an 8-element pattern down to one C-O edge is worse than
  // placing the edge by hand; the planner must fall back.
  Graph q = Path(d, {"C", "O"});
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O", "N", "N", "N", "N"})));
  EditPlan plan = PlanFormulationWithEdits(q, set);
  EXPECT_EQ(plan.patterns_used, 0u);
  EXPECT_EQ(plan.steps, EdgeAtATimeSteps(q));
}

TEST(EditPlanTest, NeverWorseThanStrictPlanning) {
  // Editing can only help: across a real database, the edit-capable plan's
  // steps are <= the strict plan's.
  GraphDatabase db = testing_util::MakeToyDatabase();
  LabelDictionary& d = db.labels();
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O", "C"})));
  set.Add(MakePattern(Path(d, {"C", "O", "C", "S"})));
  set.Add(MakePattern(testing_util::Star(d, "C", {"O", "O", "S"})));
  for (const auto& [id, g] : db.graphs()) {
    EditPlan with_edits = PlanFormulationWithEdits(g, set);
    FormulationPlan strict = PlanFormulation(g, set);
    EXPECT_LE(with_edits.steps, strict.steps) << "graph " << id;
    EXPECT_LE(with_edits.steps, EdgeAtATimeSteps(g)) << "graph " << id;
  }
}

TEST(FormulationTest, MissedPercentage) {
  LabelDictionary d;
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O"})));
  std::vector<Graph> queries = {Path(d, {"C", "O", "C"}),
                                Path(d, {"N", "N"}),
                                Path(d, {"S", "S"}),
                                Path(d, {"C", "O"})};
  EXPECT_DOUBLE_EQ(MissedPercentage(queries, set), 50.0);
  EXPECT_DOUBLE_EQ(MissedPercentage({}, set), 0.0);
}

TEST(FormulationTest, MeanSteps) {
  LabelDictionary d;
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O", "C"})));
  std::vector<Graph> queries = {Path(d, {"C", "O", "C"}),
                                Path(d, {"C", "O", "C"})};
  EXPECT_DOUBLE_EQ(MeanSteps(queries, set), 1.0);
}

TEST(FormulationTest, ReductionRatio) {
  LabelDictionary d;
  PatternSet good;
  good.Add(MakePattern(Path(d, {"C", "O", "C"})));
  PatternSet empty;
  std::vector<Graph> queries = {Path(d, {"C", "O", "C"})};
  // Baseline (empty set) needs 5 steps, subject needs 1: mu = 0.8.
  EXPECT_DOUBLE_EQ(ReductionRatio(queries, empty, good), 0.8);
  // Reversed: subject worse => negative.
  EXPECT_LT(ReductionRatio(queries, good, empty), 0.0);
}

}  // namespace
}  // namespace midas
