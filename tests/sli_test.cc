#include "midas/obs/sli.h"

#include <gtest/gtest.h>

#include <vector>

#include "midas/obs/metrics.h"

namespace midas {
namespace obs {
namespace {

SliConfig SmallConfig() {
  SliConfig cfg;
  cfg.baseline_rounds = 5;
  cfg.window = 5;
  cfg.min_window = 5;
  cfg.alpha = 0.05;
  cfg.min_rel_delta = 0.10;
  return cfg;
}

// Healthy panel: scov near 0.8 with per-round jitter that keeps samples
// distinct (ties weaken the KS statistic for nothing).
QualitySample Healthy(int i) {
  QualitySample q;
  q.scov = 0.80 + 0.002 * (i % 5);
  q.lcov = 0.95 + 0.001 * (i % 3);
  q.div = 2.0 + 0.01 * (i % 4);
  q.cog_avg = 1.5 + 0.005 * (i % 5);
  return q;
}

// Collapsed panel: coverage fell off a cliff, everything else unchanged.
QualitySample Collapsed(int i) {
  QualitySample q = Healthy(i);
  q.scov = 0.20 + 0.002 * (i % 5);
  return q;
}

TEST(QualityDriftDetectorTest, StableStreamNeverDrifts) {
  QualityDriftDetector det(SmallConfig());
  for (int i = 0; i < 30; ++i) {
    DriftFinding f = det.Observe(Healthy(i));
    EXPECT_FALSE(f.drifted) << "round " << i;
    EXPECT_FALSE(f.newly_drifted);
    EXPECT_FALSE(f.recovered);
  }
  EXPECT_FALSE(det.drifted());
  EXPECT_TRUE(det.baseline_frozen());
  EXPECT_EQ(det.rounds(), 30u);
}

TEST(QualityDriftDetectorTest, NoVerdictBeforeMinWindow) {
  QualityDriftDetector det(SmallConfig());
  for (int i = 0; i < 5; ++i) det.Observe(Healthy(i));
  // Collapse immediately after the baseline freezes: rounds 6..9 have
  // fewer than min_window samples in the window, so no verdict yet.
  for (int i = 0; i < 4; ++i) {
    DriftFinding f = det.Observe(Collapsed(i));
    EXPECT_FALSE(f.drifted) << "window round " << i;
  }
  // The 5th collapsed round completes the window and the verdict fires.
  DriftFinding f = det.Observe(Collapsed(4));
  EXPECT_TRUE(f.drifted);
  EXPECT_TRUE(f.newly_drifted);
}

TEST(QualityDriftDetectorTest, CoverageCollapseIsDetectedOnce) {
  QualityDriftDetector det(SmallConfig());
  for (int i = 0; i < 5; ++i) det.Observe(Healthy(i));

  int newly = 0;
  DriftFinding last;
  for (int i = 0; i < 8; ++i) {
    last = det.Observe(Collapsed(i));
    if (last.newly_drifted) ++newly;
  }
  EXPECT_TRUE(det.drifted());
  EXPECT_EQ(newly, 1);  // one transition, one event-log line
  EXPECT_TRUE(last.drifted);
  EXPECT_EQ(last.metric, "scov");
  EXPECT_LT(last.p_value, 0.05);
  EXPECT_GT(last.ks_statistic, 0.9);  // full separation
  EXPECT_NEAR(last.baseline_mean, 0.804, 0.01);
  EXPECT_NEAR(last.window_mean, 0.204, 0.01);
}

TEST(QualityDriftDetectorTest, RecoveryFlipsBackAndReportsTransition) {
  QualityDriftDetector det(SmallConfig());
  for (int i = 0; i < 5; ++i) det.Observe(Healthy(i));
  for (int i = 0; i < 5; ++i) det.Observe(Collapsed(i));
  ASSERT_TRUE(det.drifted());

  int recovered = 0;
  for (int i = 0; i < 5; ++i) {
    DriftFinding f = det.Observe(Healthy(i));
    if (f.recovered) ++recovered;
  }
  EXPECT_FALSE(det.drifted());
  EXPECT_EQ(recovered, 1);  // status is current, not latched
}

TEST(QualityDriftDetectorTest, SmallButSignificantShiftIsGuarded) {
  // The two regimes never overlap, so KS is maximally significant — but the
  // mean moved ~1%, far under min_rel_delta = 10%: no page.
  QualityDriftDetector det(SmallConfig());
  for (int i = 0; i < 5; ++i) {
    QualitySample q;
    q.scov = 0.800 + 0.0002 * i;
    q.lcov = q.div = q.cog_avg = 1.0;
    det.Observe(q);
  }
  for (int i = 0; i < 10; ++i) {
    QualitySample q;
    q.scov = 0.810 + 0.0002 * i;
    q.lcov = q.div = q.cog_avg = 1.0;
    DriftFinding f = det.Observe(q);
    EXPECT_FALSE(f.drifted) << "round " << i;
  }
}

TEST(QualityDriftDetectorTest, ResetStartsANewBaseline) {
  QualityDriftDetector det(SmallConfig());
  for (int i = 0; i < 5; ++i) det.Observe(Healthy(i));
  for (int i = 0; i < 5; ++i) det.Observe(Collapsed(i));
  ASSERT_TRUE(det.drifted());

  det.Reset();
  EXPECT_FALSE(det.drifted());
  EXPECT_EQ(det.rounds(), 0u);
  EXPECT_FALSE(det.baseline_frozen());

  // The collapsed regime is the *new* baseline: staying there is healthy.
  for (int i = 0; i < 15; ++i) {
    EXPECT_FALSE(det.Observe(Collapsed(i)).drifted);
  }
}

TEST(QualityDriftDetectorTest, ExportsDriftMetrics) {
  MetricsRegistry reg;
  ScopedMetricsRegistry scope(reg);

  QualityDriftDetector det(SmallConfig());
  for (int i = 0; i < 5; ++i) det.Observe(Healthy(i));
  for (int i = 0; i < 5; ++i) det.Observe(Collapsed(i));

  EXPECT_EQ(reg.GetGauge("midas_quality_drift_status")->Value(), 1.0);
  EXPECT_GT(reg.GetGauge("midas_quality_drift_ks_statistic")->Value(), 0.9);
  EXPECT_EQ(reg.GetCounter("midas_quality_drift_events_total")->Value(), 1u);

  for (int i = 0; i < 5; ++i) det.Observe(Healthy(i));
  EXPECT_EQ(reg.GetGauge("midas_quality_drift_status")->Value(), 0.0);
  // The transition counter is monotonic.
  EXPECT_EQ(reg.GetCounter("midas_quality_drift_events_total")->Value(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace midas
