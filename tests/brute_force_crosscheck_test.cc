// Brute-force cross-checks: independent O(n^k) reference implementations
// validate the optimized kernels on small random inputs — graphlet census
// vs subset enumeration, VF2 embedding counts vs permutation enumeration,
// and incremental CSG maintenance vs rebuild after random update sequences.

#include <gtest/gtest.h>

#include <array>
#include <functional>

#include "midas/cluster/csg.h"
#include "midas/graph/graphlet.h"
#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::RandomGraph;

// ---------------------------------------------------------------------------
// Graphlet census vs brute-force subset enumeration.

GraphletCounts BruteForceGraphlets(const Graph& g) {
  GraphletCounts counts;
  counts.fill(0);
  size_t n = g.NumVertices();
  auto classify3 = [&](VertexId a, VertexId b, VertexId c) -> int {
    int edges = static_cast<int>(g.HasEdge(a, b)) +
                static_cast<int>(g.HasEdge(a, c)) +
                static_cast<int>(g.HasEdge(b, c));
    if (edges < 2) return -1;  // disconnected
    return edges == 3 ? kTriangle : kWedge;
  };
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      for (VertexId c = b + 1; c < n; ++c) {
        int t = classify3(a, b, c);
        if (t >= 0) ++counts[static_cast<size_t>(t)];
      }
    }
  }
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      for (VertexId c = b + 1; c < n; ++c) {
        for (VertexId e = c + 1; e < n; ++e) {
          std::array<VertexId, 4> s = {a, b, c, e};
          int deg[4] = {0, 0, 0, 0};
          int edges = 0;
          for (int i = 0; i < 4; ++i) {
            for (int j = i + 1; j < 4; ++j) {
              if (g.HasEdge(s[static_cast<size_t>(i)],
                            s[static_cast<size_t>(j)])) {
                ++edges;
                ++deg[i];
                ++deg[j];
              }
            }
          }
          // Connected iff >= 3 edges and no isolated vertex and not two
          // disjoint edges (edges == 2 can't be connected on 4 vertices;
          // edges == 3 with a zero-degree vertex is a triangle + isolate).
          bool isolated = deg[0] == 0 || deg[1] == 0 || deg[2] == 0 ||
                          deg[3] == 0;
          if (edges < 3 || isolated) continue;
          int max_deg = std::max(std::max(deg[0], deg[1]),
                                 std::max(deg[2], deg[3]));
          GraphletType t;
          if (edges == 3) {
            t = max_deg == 3 ? kStar4 : kPath4;
          } else if (edges == 4) {
            t = max_deg == 3 ? kPaw : kCycle4;
          } else if (edges == 5) {
            t = kDiamond;
          } else {
            t = kK4;
          }
          ++counts[t];
        }
      }
    }
  }
  return counts;
}

class GraphletCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphletCrossCheckTest, EsuMatchesSubsetEnumeration) {
  LabelDictionary d;
  Rng rng(5000 + GetParam());
  Graph g = RandomGraph(d, rng, 5 + GetParam() % 5, GetParam() % 6, 2);
  GraphletCounts fast = CountGraphlets(g);
  GraphletCounts slow = BruteForceGraphlets(g);
  for (int t = 0; t < kNumGraphletTypes; ++t) {
    EXPECT_EQ(fast[static_cast<size_t>(t)], slow[static_cast<size_t>(t)])
        << "type " << t << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, GraphletCrossCheckTest,
                         ::testing::Range(0, 30));

// ---------------------------------------------------------------------------
// VF2 embedding counts vs brute-force injective-mapping enumeration.

size_t BruteForceEmbeddings(const Graph& pattern, const Graph& target) {
  size_t np = pattern.NumVertices();
  size_t nt = target.NumVertices();
  if (np > nt) return 0;
  std::vector<int> m(np, -1);
  std::vector<bool> used(nt, false);
  size_t count = 0;
  std::function<void(size_t)> rec = [&](size_t depth) {
    if (depth == np) {
      ++count;
      return;
    }
    for (size_t t = 0; t < nt; ++t) {
      if (used[t]) continue;
      VertexId pv = static_cast<VertexId>(depth);
      VertexId tv = static_cast<VertexId>(t);
      if (pattern.label(pv) != target.label(tv)) continue;
      bool ok = true;
      for (size_t p2 = 0; p2 < depth; ++p2) {
        if (pattern.HasEdge(pv, static_cast<VertexId>(p2)) &&
            !target.HasEdge(tv, static_cast<VertexId>(m[p2]))) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      m[depth] = static_cast<int>(t);
      used[t] = true;
      rec(depth + 1);
      used[t] = false;
    }
  };
  rec(0);
  return count;
}

class EmbeddingCountCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(EmbeddingCountCrossCheckTest, Vf2MatchesEnumeration) {
  LabelDictionary d;
  Rng rng(6000 + GetParam());
  Graph pattern = RandomGraph(d, rng, 3 + GetParam() % 2, GetParam() % 2, 2);
  Graph target = RandomGraph(d, rng, 6, 3, 2);
  EXPECT_EQ(CountEmbeddings(pattern, target, 0),
            BruteForceEmbeddings(pattern, target))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, EmbeddingCountCrossCheckTest,
                         ::testing::Range(0, 30));

// ---------------------------------------------------------------------------
// Incremental CSG maintenance vs rebuild after random update sequences.

class CsgSequenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CsgSequenceTest, IncrementalMatchesRebuild) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  LabelDictionary& d = db.labels();
  Rng rng(7000 + GetParam());

  Csg incremental;
  IdSet members;
  for (int step = 0; step < 20; ++step) {
    if (members.empty() || rng.Bernoulli(0.65)) {
      // Add: either an existing toy graph or a fresh random one.
      GraphId id;
      if (rng.Bernoulli(0.5)) {
        auto ids = db.Ids();
        id = ids[static_cast<size_t>(rng.UniformInt(0, ids.size() - 1))];
        if (members.Contains(id)) continue;
      } else {
        id = db.Insert(RandomGraph(d, rng, 5, 2, 3));
      }
      incremental.AddGraph(id, *db.Find(id));
      members.Insert(id);
    } else {
      size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(members.size()) - 1));
      GraphId id = members.ids()[pick];
      incremental.RemoveGraph(id);
      members.Erase(id);
    }

    // Invariants vs a fresh build over the same members.
    EXPECT_TRUE(incremental.members() == members);
    size_t mass = 0;
    for (const auto& [edge, ids] : incremental.Edges()) mass += ids->size();
    size_t expected = 0;
    for (GraphId id : members) expected += db.Find(id)->NumEdges();
    EXPECT_EQ(mass, expected) << "step " << step;
    for (GraphId id : members) {
      EXPECT_TRUE(ContainsSubgraph(*db.Find(id), incremental.skeleton()))
          << "graph " << id << " step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, CsgSequenceTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace midas
