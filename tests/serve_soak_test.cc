// Multi-threaded soak of the serving host under fault injection.
//
// 4 reader threads continuously load the lock-free panel snapshot and check
// its invariants while 2 producer threads push >= 220 batches (some with
// producer-private label dictionaries) through the admission-controlled
// queue, with chaos failpoints armed on the serve and maintenance paths.
// Runs as its own ctest executable (serve_soak_test) so CI can give it a
// dedicated timeout and run it under TSan; the CI stress job re-runs it
// with MIDAS_FAILPOINTS supplying the chaos spec from the environment.
//
// Invariants proven at the end:
//  - readers always observed a complete, internally consistent panel whose
//    round_seq never regressed;
//  - no admitted batch was lost: rounds_ok + quarantined + writer_rejected
//    == admitted (kBlock policy => no coalescing, one round per batch);
//  - every quarantine file round-trips through graph_io;
//  - the telemetry server answered HTTP scrapes throughout the chaos, and
//    every response was well-formed (the TSan run makes the server-vs-writer
//    data-race check real).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "http_test_client.h"
#include "midas/common/chaos.h"
#include "midas/common/failpoint.h"
#include "midas/common/io.h"
#include "midas/maintain/verify.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/obs/event_log.h"
#include "midas/obs/metrics.h"
#include "midas/obs/profile.h"
#include "midas/serve/engine_host.h"
#include "midas/serve/quarantine.h"
#include "test_util.h"

namespace midas {
namespace serve {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

constexpr int kReaders = 4;
constexpr int kProducers = 2;
constexpr int kBatchesPerProducer = 110;  // >= 220 accepted batches total

// Default chaos when the environment doesn't supply MIDAS_FAILPOINTS.
// Every entry uses finite `fires` — armed maintenance failpoints also fire
// during recovery replay, so "fail forever" would wedge recovery itself.
// `serve.round.before_apply:20:3` fires on three consecutive attempts of
// one batch (max_attempts below is 3), forcing exactly one quarantine.
// journal.commit.io_error stays unarmed by design: losing the commit record
// of an applied round breaks the no-lost-round invariant this test proves
// (see docs/robustness.md).
constexpr char kDefaultChaos[] =
    "serve.round.before_apply:20:3;"
    "serve.round.before_publish:45:1;"
    "midas.apply_update.after_fct:60:2;"
    "midas.apply_update.after_swap:90:1;"
    "journal.append.io_error:120:2;"
    "midas.apply_update.after_apply:150:2";

MidasConfig SoakEngineConfig() {
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.epsilon = 0.5;            // mostly minor rounds: keeps 220 rounds cheap
  cfg.sample_cap = 64;
  cfg.round_deadline_ms = 25.0; // bound each round; degradation is graceful
  cfg.history_capacity = 64;    // exercise the history ring under load
  cfg.seed = 42;
  return cfg;
}

struct ReaderReport {
  uint64_t reads = 0;
  uint64_t max_seq = 0;
  std::string violation;  // empty = all invariants held
};

void ReaderLoop(const EngineHost& host, const std::atomic<bool>& stop,
                ReaderReport* report) {
  uint64_t last_seq = 0;
  auto check = [report](bool ok, const std::string& what) {
    if (!ok && report->violation.empty()) report->violation = what;
    return ok;
  };
  while (!stop.load(std::memory_order_acquire)) {
    PanelSnapshotPtr snap = host.snapshot();
    ++report->reads;
    if (!check(snap != nullptr, "null snapshot")) break;
    // Completeness: every field a GUI needs is present and consistent.
    check(snap->labels != nullptr, "snapshot without labels");
    check(snap->live_ids != nullptr, "snapshot without live_ids");
    check(snap->patterns.size() > 0, "empty pattern panel");
    if (snap->live_ids != nullptr) {
      check(snap->db_size == snap->live_ids->size(),
            "db_size disagrees with live_ids");
    }
    check(std::isfinite(snap->quality.scov) &&
              std::isfinite(snap->quality.lcov) &&
              std::isfinite(snap->quality.div) &&
              std::isfinite(snap->quality.cog_avg),
          "non-finite quality");
    check(snap->AgeMs() >= 0.0, "negative snapshot age");
    // Monotonicity: completed rounds never regress for a reader.
    check(snap->round_seq >= last_seq, "round_seq regressed");
    last_seq = std::max(last_seq, snap->round_seq);
    report->max_seq = last_seq;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
}

// Producer `id` keeps submitting until `target` batches were accepted.
// Only producer 0 issues deletions, and never re-targets an id it already
// deleted — so no admitted deletion can dangle at apply time and every
// admitted batch must become either a round or a quarantine.
void ProducerLoop(EngineHost& host, int id, int target,
                  std::atomic<uint64_t>* accepted_total) {
  std::set<GraphId> already_deleted;
  int accepted = 0;
  int iter = 0;
  while (accepted < target) {
    ++iter;
    PanelSnapshotPtr snap = host.snapshot();
    ASSERT_NE(snap, nullptr);
    LabelDictionary dict = *snap->labels;  // producer-private copy

    BatchUpdate batch;
    if (iter % 7 == 0) {
      // Novel label: the engine has never seen it; the rider dictionary
      // makes the batch self-describing.
      batch.insertions.push_back(testing_util::Path(
          dict, {"C", "P" + std::to_string(id) + "X" + std::to_string(iter)}));
    } else if (iter % 3 == 0) {
      batch.insertions.push_back(
          testing_util::Path(dict, {"C", "O", "C"}));
    } else {
      batch.insertions.push_back(testing_util::Path(dict, {"C", "O"}));
    }
    if (id == 0 && iter % 5 == 0 && snap->live_ids != nullptr) {
      for (GraphId candidate : *snap->live_ids) {
        if (already_deleted.count(candidate) == 0) {
          batch.deletions.push_back(candidate);
          break;
        }
      }
    }

    std::vector<GraphId> targeted = batch.deletions;
    SubmitResult r = host.Submit(std::move(batch), dict);
    if (r.accepted()) {
      ++accepted;
      for (GraphId g : targeted) already_deleted.insert(g);
      accepted_total->fetch_add(1, std::memory_order_relaxed);
    } else {
      // kBlock queue: the only expected bounce is a validation race on a
      // deletion against a stale snapshot; retry with a fresh snapshot.
      ASSERT_EQ(r.status, SubmitStatus::kRejectedValidation);
      std::this_thread::sleep_for(milliseconds(1));
    }
  }
}

TEST(ServeSoakTest, ConcurrentReadersSurviveChaosWithoutLosingRounds) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  obs::MetricsRegistry metrics;
  obs::ScopedMetricsRegistry scoped_metrics(metrics);

  TempDir dir("midas_serve_soak");
  MoleculeGenerator gen(31337);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine =
      std::make_unique<MidasEngine>(gen.Generate(data), SoakEngineConfig());
  engine->Initialize();

  HostConfig cfg;
  cfg.queue_capacity = 8;
  cfg.overflow = OverflowPolicy::kBlock;  // no coalescing: 1 batch = 1 round
  cfg.max_attempts = 3;
  cfg.backoff_initial_ms = 0.5;
  cfg.backoff_max_ms = 5.0;
  cfg.checkpoint_every = 16;
  cfg.telemetry_port = 0;  // scraped by the poller thread below
  obs::MaintenanceEventLog log;
  log.set_buffering(false);  // unbounded growth is the soak's own hazard
  EngineHost host(std::move(engine), dir.path, cfg);
  host.SetEventLog(&log);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  // Chaos: CI supplies MIDAS_FAILPOINTS for the stress job; standalone runs
  // use the default spec.
  if (std::getenv("MIDAS_FAILPOINTS") != nullptr) {
    fail::LoadFromEnv();
  } else {
    fail::ArmSpec(kDefaultChaos);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> accepted_total{0};
  std::vector<ReaderReport> reports(kReaders);
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back(
        [&host, &stop, &reports, i] { ReaderLoop(host, stop, &reports[i]); });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&host, &accepted_total, p] {
      ProducerLoop(host, p, kBatchesPerProducer, &accepted_total);
    });
  }

  // Telemetry poller: a scraper hitting the introspection endpoints while
  // the writer churns and recovery/quarantine chaos fires.
  std::atomic<uint64_t> scrapes_ok{0};
  std::atomic<uint64_t> scrapes_bad{0};
  const int telemetry_port = host.telemetry_port();
  ASSERT_GT(telemetry_port, 0);
  std::thread poller([&stop, &scrapes_ok, &scrapes_bad, telemetry_port] {
    const char* targets[] = {"/metrics",  "/healthz",
                             "/statusz",  "/spans?fmt=folded",
                             "/patternz", "/historyz?metric=",
                             "/alertz",   "/lineage/0"};
    constexpr size_t kTargets = sizeof(targets) / sizeof(targets[0]);
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      midas::testing::HttpResult r =
          midas::testing::HttpGet(telemetry_port, targets[i++ % kTargets]);
      // /healthz may legitimately be 503 mid-chaos (and /lineage/0 is 404
      // once pattern 0 ages out of the ledger); anything parseable with a
      // plausible status counts as a healthy server.
      if (r.ok && (r.status == 200 || r.status == 503 || r.status == 404)) {
        scrapes_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        scrapes_bad.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(milliseconds(5));
    }
  });

  for (auto& t : producers) t.join();
  ASSERT_TRUE(host.WaitIdle(milliseconds(300000)));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  poller.join();
  host.Stop();
  fail::DisarmAll();
  obs::SpanProfiler::Current().set_enabled(false);
  obs::SpanProfiler::Current().Clear();

  // --- Telemetry under chaos ------------------------------------------------
  EXPECT_GT(scrapes_ok.load(), 0u);
  EXPECT_EQ(scrapes_bad.load(), 0u);

  // --- Reader invariants ----------------------------------------------------
  for (int i = 0; i < kReaders; ++i) {
    EXPECT_TRUE(reports[i].violation.empty())
        << "reader " << i << ": " << reports[i].violation;
    EXPECT_GT(reports[i].reads, 0u) << "reader " << i << " never read";
  }

  // --- Accounting: no admitted batch vanished -------------------------------
  HostStats s = host.stats();
  EXPECT_EQ(s.admitted, accepted_total.load());
  EXPECT_EQ(s.admitted,
            static_cast<uint64_t>(kProducers * kBatchesPerProducer));
  EXPECT_EQ(s.rounds_ok + s.quarantined + s.writer_rejected, s.admitted);
  EXPECT_EQ(s.writer_rejected, 0u);  // deletion discipline above ensures it
  EXPECT_GE(s.rounds_ok, 200u);
  EXPECT_FALSE(host.dead());

  // Every completed round is visible: the final snapshot carries them all.
  PanelSnapshotPtr final_snap = host.snapshot();
  ASSERT_NE(final_snap, nullptr);
  EXPECT_EQ(final_snap->round_seq, s.rounds_ok);

  // The before_apply:20:3 entry guarantees one poison batch (3 consecutive
  // failed attempts). Chaos interleaving can produce a second — different
  // sites striking consecutive attempts of one batch — but never a flood.
  if (std::getenv("MIDAS_FAILPOINTS") == nullptr) {
    EXPECT_GE(s.quarantined, 1u);
    EXPECT_LE(s.quarantined, 4u);
    EXPECT_GE(s.retries, 1u);
    EXPECT_GE(s.recoveries, 1u);
  }

  // --- Quarantine files are complete, self-contained evidence ---------------
  std::vector<std::string> files = ListQuarantineFiles(host.quarantine_dir());
  EXPECT_EQ(files.size(), s.quarantined);
  for (const std::string& f : files) {
    LabelDictionary dict;
    QuarantinedBatch back;
    std::string rerr;
    ASSERT_TRUE(ReadQuarantineFile(f, dict, &back, &rerr)) << f << ": " << rerr;
    EXPECT_FALSE(back.reason.empty());
    EXPECT_FALSE(back.batch.Empty());
  }
}

// Seed-replayable overload soak: a chaos schedule (common/chaos.h) drives
// load bursts, synthetic memory pressure up past the lame-duck threshold,
// and failpoint arming against a host with the full overload-resilience
// layer on. The soak does not pin individual transitions (the seeded drill
// in overload_test.cc does that) — it proves the *terminal* contract: after
// any scheduled disturbance sequence, the host walks back to healthy, the
// breaker closes, and maintenance still commits end to end.
//
// Replay a CI failure with:  MIDAS_CHAOS_SEED=<printed seed>
// CI sets MIDAS_TRACE_DUMP to capture /traces + /statusz as artifacts.
TEST(ServeOverloadSoakTest, ChaosScheduleEndsWithHealthyHost) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  obs::MetricsRegistry metrics;
  obs::ScopedMetricsRegistry scoped_metrics(metrics);

  TempDir dir("midas_serve_overload_soak");
  MoleculeGenerator gen(90210);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine =
      std::make_unique<MidasEngine>(gen.Generate(data), SoakEngineConfig());
  engine->Initialize();

  const size_t kBudget = size_t{1} << 30;
  HostConfig cfg;
  cfg.queue_capacity = 4;
  cfg.overflow = OverflowPolicy::kBlock;
  cfg.submit_timeout_ms = 250.0;  // bounded kBlock waits under overload
  cfg.max_attempts = 3;
  cfg.backoff_initial_ms = 0.5;
  cfg.backoff_max_ms = 5.0;
  cfg.checkpoint_every = 16;
  cfg.telemetry_port = 0;
  cfg.overload.memory_budget_bytes = kBudget;
  cfg.overload.breaker.open_cooldown_ms = 50.0;
  EngineHost host(std::move(engine), dir.path, cfg);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  uint64_t seed = 20260809;
  if (const char* env = std::getenv("MIDAS_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  chaos::ChaosSchedule::Config ccfg;
  ccfg.seed = seed;
  ccfg.steps = 24;
  ccfg.max_burst_batches = 5;
  // Synthetic pressure can exceed the budget: every ladder rung up to
  // lame-duck is reachable, and recovery from all of them is proven below.
  ccfg.max_pressure_bytes = kBudget + (kBudget >> 2);
  chaos::ChaosSchedule schedule(ccfg);
  std::printf("overload soak: rerun with MIDAS_CHAOS_SEED=%llu\n%s",
              static_cast<unsigned long long>(seed),
              schedule.Describe().c_str());

  std::atomic<uint64_t> accepted{0}, shed{0}, timeouts{0};
  auto burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      PanelSnapshotPtr snap = host.snapshot();
      ASSERT_NE(snap, nullptr);
      LabelDictionary dict = *snap->labels;
      BatchUpdate batch;
      batch.insertions.push_back(testing_util::Path(dict, {"C", "O"}));
      SubmitResult r = host.Submit(std::move(batch), dict);
      switch (r.status) {
        case SubmitStatus::kAccepted:
          accepted.fetch_add(1, std::memory_order_relaxed);
          break;
        case SubmitStatus::kShedOverload:
          // Typed shed: the submitter always learns which mechanism acted
          // and when to come back.
          EXPECT_FALSE(r.shed_reason.empty());
          EXPECT_GT(r.retry_after_ms, 0.0);
          shed.fetch_add(1, std::memory_order_relaxed);
          break;
        case SubmitStatus::kRejectedTimeout:
          EXPECT_GT(r.retry_after_ms, 0.0);
          timeouts.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          ADD_FAILURE() << "unexpected submit status "
                        << static_cast<int>(r.status);
      }
    }
  };

  for (uint64_t step = 0; step <= schedule.steps(); ++step) {
    for (const chaos::ChaosEvent& e : schedule.EventsAt(step)) {
      switch (e.kind) {
        case chaos::ChaosEvent::Kind::kArmFailpoint:
          fail::ArmSpec(e.failpoint_spec);
          break;
        case chaos::ChaosEvent::Kind::kLoadBurst:
          burst(e.burst_batches);
          break;
        case chaos::ChaosEvent::Kind::kMemoryPressure:
          host.memory_budget().SetSyntheticBytes(e.pressure_bytes);
          break;
        case chaos::ChaosEvent::Kind::kClearPressure:
          host.memory_budget().SetSyntheticBytes(0);
          break;
        case chaos::ChaosEvent::Kind::kQuiesce:
          EXPECT_TRUE(host.WaitIdle(milliseconds(300000)));
          break;
      }
    }
    // Let the watchdog tick between virtual-time steps so the ladder can
    // react to this step's pressure before the next disturbance lands (the
    // idle writer ticks every ~50ms).
    std::this_thread::sleep_for(milliseconds(60));
  }

  fail::DisarmAll();
  host.memory_budget().SetSyntheticBytes(0);
  ASSERT_TRUE(host.WaitIdle(milliseconds(300000)));

  // Terminal contract: the ladder dwells back to healthy and the breaker
  // (if any leftover fires tripped it) closes via its half-open probe.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline &&
         (host.overload_state() != OverloadState::kHealthy ||
          host.breaker().state() != CircuitBreaker::State::kClosed)) {
    if (host.breaker().state() != CircuitBreaker::State::kClosed) {
      burst(1);  // a committed probe round is what closes a breaker
    }
    std::this_thread::sleep_for(milliseconds(20));
  }
  EXPECT_TRUE(host.WaitIdle(milliseconds(300000)));
  EXPECT_EQ(host.overload_state(), OverloadState::kHealthy);
  EXPECT_EQ(host.breaker().state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(host.dead());

  // End-to-end proof: a fresh batch flows through the recovered host.
  const uint64_t seq_before = host.snapshot()->round_seq;
  burst(1);
  EXPECT_TRUE(host.WaitIdle(milliseconds(300000)));
  EXPECT_GT(host.snapshot()->round_seq, seq_before);
  EXPECT_GT(accepted.load(), 0u);
  std::printf(
      "overload soak: accepted=%llu shed=%llu timeouts=%llu transitions=%llu\n",
      static_cast<unsigned long long>(accepted.load()),
      static_cast<unsigned long long>(shed.load()),
      static_cast<unsigned long long>(timeouts.load()),
      static_cast<unsigned long long>(host.overload_transitions().total()));

  // CI evidence: dump the flight-recorder ring and /statusz (which embeds
  // the overload transition table) where the workflow can pick them up.
  if (const char* dump_dir = std::getenv("MIDAS_TRACE_DUMP")) {
    fs::create_directories(dump_dir);
    const std::pair<const char*, const char*> dumps[] = {
        {"/traces?n=256", "overload_soak_traces.json"},
        {"/statusz", "overload_soak_statusz.json"},
        {"/patternz", "overload_soak_patternz.json"},
        {"/alertz", "overload_soak_alertz.json"},
    };
    for (const auto& [target, filename] : dumps) {
      midas::testing::HttpResult r =
          midas::testing::HttpGet(host.telemetry_port(), target);
      EXPECT_TRUE(r.ok) << target;
      std::ofstream out(fs::path(dump_dir) / filename);
      out << r.body;
    }
    // One live pattern's full decision lineage, so a failed soak shows why
    // the panel looked the way it did.
    if (PanelSnapshotPtr snap = host.snapshot();
        snap != nullptr && snap->lineage != nullptr &&
        !snap->lineage->lineages().empty()) {
      const PatternId id = snap->lineage->lineages().begin()->first;
      midas::testing::HttpResult r = midas::testing::HttpGet(
          host.telemetry_port(), "/lineage/" + std::to_string(id));
      std::ofstream out(fs::path(dump_dir) / "overload_soak_lineage.json");
      out << r.body;
    }
  }
  host.Stop();
}

// Durable-state integrity soak: the host runs with every byte of journal,
// snapshot and quarantine I/O routed through a FaultyFileSystem while the
// background scrubber is on. The schedule interleaves load bursts with
// seeded at-rest bit rot on snapshot files and finite-fire io.* failpoints
// (write errors, fsync lies). Terminal contract: once the faults stop, the
// scrubber detects any remaining rot, the repair ladder heals it, the host
// serves again, and an offline fsck pass over the engine dir comes back
// clean — the host never exits this test with corrupt durable state.
//
// Replay a CI failure with:  MIDAS_CHAOS_SEED=<printed seed>
// CI sets MIDAS_TRACE_DUMP to capture /integrityz + the fsck report.
TEST(IntegritySoakTest, ScrubberHealsSeededDiskRotDuringChaos) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  fail::DisarmAll();
  obs::MetricsRegistry metrics;
  obs::ScopedMetricsRegistry scoped_metrics(metrics);

  TempDir dir("midas_integrity_soak");
  io::FaultyFileSystem ffs;
  MoleculeGenerator gen(777);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  // Full-maintenance config: with minor rounds (epsilon > 0) or a round
  // deadline, the engine legitimately defers FCT-index work, and the deep
  // tier's recompute cross-check would flag that drift after every round.
  // The integrity soak wants the strict invariant, so every round is major.
  MidasConfig ecfg = SoakEngineConfig();
  ecfg.epsilon = 0.0;
  ecfg.round_deadline_ms = 0.0;
  auto engine = std::make_unique<MidasEngine>(gen.Generate(data), ecfg);
  engine->Initialize();

  HostConfig cfg;
  cfg.queue_capacity = 4;
  cfg.overflow = OverflowPolicy::kBlock;
  cfg.submit_timeout_ms = 250.0;
  cfg.max_attempts = 3;
  cfg.backoff_initial_ms = 0.5;
  cfg.backoff_max_ms = 5.0;
  // Checkpoint every round: the final offline fsck then verifies a
  // snapshot-only restore. A restore that replays journal rounds re-runs
  // incremental maintenance, whose FCT-index drift is exactly what the
  // scrubber exists to re-sync — not at-rest corruption.
  cfg.checkpoint_every = 1;
  cfg.telemetry_port = 0;
  cfg.fs = &ffs;
  cfg.scrub.enabled = true;
  cfg.scrub.tick_budget_ms = 25.0;
  EngineHost host(std::move(engine), dir.path, cfg);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  uint64_t seed = 20260809;
  if (const char* env = std::getenv("MIDAS_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::printf("integrity soak: rerun with MIDAS_CHAOS_SEED=%llu\n",
              static_cast<unsigned long long>(seed));

  auto burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      PanelSnapshotPtr snap = host.snapshot();
      ASSERT_NE(snap, nullptr);
      LabelDictionary dict = *snap->labels;
      BatchUpdate batch;
      batch.insertions.push_back(testing_util::Path(dict, {"C", "O"}));
      SubmitResult r = host.Submit(std::move(batch), dict);
      // Integrity refusal and overload sheds are legitimate mid-chaos;
      // anything else accepted/timeout is too. Validation rejects are not
      // possible for pure insertions.
      EXPECT_NE(r.status, SubmitStatus::kRejectedValidation);
      if (r.status == SubmitStatus::kShedOverload) {
        EXPECT_FALSE(r.shed_reason.empty());
        EXPECT_GT(r.retry_after_ms, 0.0);
      }
    }
  };

  // Deterministic disturbance schedule derived from the seed: each step
  // either bursts load, flips a seeded bit in a snapshot file, or arms a
  // finite-fire io failpoint. A simple LCG keeps the whole run replayable
  // from the printed seed alone.
  const char* kRotTargets[] = {"/snapshot/patterns.gspan",
                               "/snapshot/database.gspan",
                               "/snapshot/MANIFEST"};
  const char* kIoChaos[] = {"io.sync.lie:7:1", "io.append.error:11:1",
                            "io.write_file.error:5:1", "io.syncdir.lie:13:1"};
  uint64_t lcg = seed;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  int rot_injected = 0;
  for (int step = 0; step < 24; ++step) {
    const uint64_t roll = next() % 100;
    if (roll < 50) {
      burst(1 + static_cast<int>(next() % 4));
    } else if (roll < 75) {
      // At-rest rot on whichever snapshot files exist by now. Failures are
      // fine early on (file not written yet) — rot is best-effort chaos.
      const char* rel = kRotTargets[next() % 3];
      std::string rot_err;
      if (ffs.CorruptOnDisk(dir.path + rel,
                            static_cast<size_t>(next() % 4096), &rot_err)) {
        ++rot_injected;
      }
    } else {
      fail::ArmSpec(kIoChaos[next() % 4]);
    }
    std::this_thread::sleep_for(milliseconds(60));
  }
  ASSERT_GT(rot_injected, 0) << "schedule never landed a bit flip";

  // Faults over. Mid-run rot may already have been healed (or overwritten
  // by a routine checkpoint before the scrubber's disk pass reached it), so
  // land one final guaranteed flip: this one the scrubber must detect.
  fail::DisarmAll();
  ffs.ClearBitFlips();
  ASSERT_TRUE(host.WaitIdle(milliseconds(300000)));
  {
    std::string rot_err;
    ASSERT_TRUE(ffs.CorruptOnDisk(dir.path + "/snapshot/patterns.gspan",
                                  static_cast<size_t>(next() % 4096),
                                  &rot_err))
        << rot_err;
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline &&
         (host.integrity_failed() || host.stats().integrity_repairs == 0)) {
    std::this_thread::sleep_for(milliseconds(20));
  }
  HostStats s = host.stats();
  EXPECT_GT(s.scrub_ticks, 0u);
  EXPECT_GT(s.integrity_violations, 0u) << "rot was injected but never seen";
  EXPECT_GE(s.integrity_repairs, 1u);
  EXPECT_FALSE(host.integrity_failed());
  EXPECT_FALSE(host.dead());

  // End-to-end proof: the healed host still commits fresh rounds.
  const uint64_t seq_before = host.snapshot()->round_seq;
  burst(1);
  EXPECT_TRUE(host.WaitIdle(milliseconds(300000)));
  EXPECT_GT(host.snapshot()->round_seq, seq_before);

  // CI evidence: /integrityz plus an offline fsck-style report.
  VerifyOptions fsck;
  fsck.fs = &ffs;
  IntegrityReport offline_before_stop = VerifyEngineState(dir.path, fsck);
  if (const char* dump_dir = std::getenv("MIDAS_TRACE_DUMP")) {
    fs::create_directories(dump_dir);
    midas::testing::HttpResult r =
        midas::testing::HttpGet(host.telemetry_port(), "/integrityz");
    EXPECT_TRUE(r.ok);
    std::ofstream(fs::path(dump_dir) / "integrity_soak_integrityz.json")
        << r.body;
    std::ofstream(fs::path(dump_dir) / "integrity_soak_fsck.json")
        << offline_before_stop.ToJson();
  }
  host.Stop();

  // The durable state left behind passes a full deep fsck: scrubber repair
  // rewrote (or re-derived) everything the chaos rotted.
  IntegrityReport offline = VerifyEngineState(dir.path, fsck);
  EXPECT_TRUE(offline.clean()) << offline.Describe();
}

}  // namespace
}  // namespace serve
}  // namespace midas
