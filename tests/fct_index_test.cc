#include "midas/index/fct_index.h"

#include <gtest/gtest.h>

#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeToyDatabase;
using testing_util::Path;

FctSet MineToy(const GraphDatabase& db) {
  return FctSet::Mine(db, {0.25, 3, 20000});
}

TEST(FctIndexTest, BuildCreatesRows) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  FctIndex index = FctIndex::Build(db, fcts);
  size_t expected =
      fcts.FrequentClosedTrees().size() + fcts.FrequentEdges().size();
  // Frequent edges may coincide with 1-edge FCTs (deduped in the trie).
  EXPECT_GE(index.NumFeatures(), fcts.FrequentClosedTrees().size());
  EXPECT_LE(index.NumFeatures(), expected);
  EXPECT_GT(index.trie().NumEntries(), 0u);
}

TEST(FctIndexTest, TgMatrixMatchesDirectCounting) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  FctIndex index = FctIndex::Build(db, fcts);
  for (uint32_t row = 0; row < index.NumFeatures(); ++row) {
    const Graph* feature = index.FeatureTree(row);
    ASSERT_NE(feature, nullptr);
    for (const auto& [id, g] : db.graphs()) {
      EXPECT_EQ(index.tg_matrix().Get(row, id),
                static_cast<int32_t>(CountEmbeddings(*feature, g, 0)))
          << "row " << row << " graph " << id;
    }
  }
}

TEST(FctIndexTest, CandidateFilterIsSound) {
  // No false dismissals: every graph truly containing the pattern must
  // survive the dominance filter.
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  FctIndex index = FctIndex::Build(db, fcts);
  IdSet universe(db.Ids());

  LabelDictionary& d = db.labels();
  Graph pattern = Path(d, {"C", "O", "C"});
  IdSet candidates =
      index.CandidateGraphs(index.FeatureCounts(pattern), universe);
  for (const auto& [id, g] : db.graphs()) {
    if (ContainsSubgraph(pattern, g)) {
      EXPECT_TRUE(candidates.Contains(id)) << "false dismissal of " << id;
    }
  }
}

TEST(FctIndexTest, EmptyCountsReturnUniverse) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  FctIndex index = FctIndex::Build(db, fcts);
  IdSet universe{1, 2, 3};
  EXPECT_EQ(index.CandidateGraphs({}, universe), universe);
}

TEST(FctIndexTest, AddRemoveGraphMaintainsColumns) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  FctIndex index = FctIndex::Build(db, fcts);

  LabelDictionary& d = db.labels();
  Graph fresh = Path(d, {"C", "O", "C", "S"});
  GraphId id = db.Insert(fresh);
  index.AddGraph(id, fresh);

  bool any_entry = false;
  for (uint32_t row = 0; row < index.NumFeatures(); ++row) {
    const Graph* feature = index.FeatureTree(row);
    if (feature == nullptr) continue;
    int32_t expect = static_cast<int32_t>(CountEmbeddings(*feature, fresh, 0));
    EXPECT_EQ(index.tg_matrix().Get(row, id), expect);
    if (expect > 0) any_entry = true;
  }
  EXPECT_TRUE(any_entry);

  index.RemoveGraph(id);
  for (uint32_t row = 0; row < index.NumFeatures(); ++row) {
    EXPECT_EQ(index.tg_matrix().Get(row, id), 0);
  }
}

TEST(FctIndexTest, PatternColumns) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  FctIndex index = FctIndex::Build(db, fcts);

  LabelDictionary& d = db.labels();
  Graph pattern = Path(d, {"C", "O", "C"});
  index.AddPattern(3, pattern);
  auto counts = index.PatternCounts(3);
  EXPECT_FALSE(counts.empty());
  index.RemovePattern(3);
  EXPECT_TRUE(index.PatternCounts(3).empty());
}

TEST(FctIndexTest, SyncFeaturesAfterMaintenance) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  FctIndex index = FctIndex::Build(db, fcts);

  // Add graphs with a brand-new frequent edge (P-P), then re-sync. Growing
  // the database also raises the absolute frequency threshold, so some old
  // features may legitimately drop out; what matters is that the new
  // feature universe is exactly mirrored.
  LabelDictionary& d = db.labels();
  BatchUpdate delta;
  for (int i = 0; i < 6; ++i) {
    delta.insertions.push_back(Path(d, {"P", "P", "P"}));
  }
  std::vector<GraphId> added = db.ApplyBatch(delta);
  for (GraphId id : added) index.AddGraph(id, *db.Find(id));
  fcts.MaintainAdd(db, added);
  index.SyncFeatures(db, fcts);

  EXPECT_GE(index.NumFeatures(), fcts.FrequentClosedTrees().size());
  // The new P-P feature row must cover the new graphs.
  LabelDictionary& dict = db.labels();
  Graph pp = Path(dict, {"P", "P"});
  auto counts = index.FeatureCounts(pp);
  ASSERT_FALSE(counts.empty());
  IdSet candidates = index.CandidateGraphs(counts, IdSet(db.Ids()));
  for (GraphId id : added) EXPECT_TRUE(candidates.Contains(id));
}

TEST(FctIndexTest, MemoryReport) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  FctIndex index = FctIndex::Build(db, fcts);
  EXPECT_GT(index.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace midas
