#include "midas/cluster/csg.h"

#include <gtest/gtest.h>

#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeGraph;
using testing_util::Path;

TEST(CsgTest, EdgeKeyCanonical) {
  EXPECT_EQ(CsgEdgeKey(3, 5), CsgEdgeKey(5, 3));
  EXPECT_NE(CsgEdgeKey(1, 2), CsgEdgeKey(1, 3));
}

TEST(CsgTest, BuildSummarizesAllEdges) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  IdSet members{0, 1, 2};
  Csg csg = Csg::Build(db, members);
  EXPECT_EQ(csg.members(), members);

  // Every member graph must embed into the skeleton (closure property).
  for (GraphId id : members) {
    EXPECT_TRUE(ContainsSubgraph(*db.Find(id), csg.skeleton()))
        << "graph " << id;
  }
  // Total edge-membership mass equals the member edge count.
  size_t mass = 0;
  for (const auto& [edge, ids] : csg.Edges()) mass += ids->size();
  size_t expected = 0;
  for (GraphId id : members) expected += db.Find(id)->NumEdges();
  EXPECT_EQ(mass, expected);
}

TEST(CsgTest, AddGraphSharedEdgesMerge) {
  LabelDictionary d;
  GraphDatabase db;
  Csg csg;
  Graph g1 = Path(d, {"C", "O", "C"});
  Graph g2 = Path(d, {"C", "O", "C"});
  csg.AddGraph(0, g1);
  size_t edges_after_first = csg.NumLiveEdges();
  csg.AddGraph(1, g2);
  // Identical graphs align perfectly: no new edges, both ids on each edge.
  EXPECT_EQ(csg.NumLiveEdges(), edges_after_first);
  for (const auto& [edge, ids] : csg.Edges()) {
    EXPECT_EQ(ids->size(), 2u);
  }
}

TEST(CsgTest, AddGraphIsIdempotentPerId) {
  LabelDictionary d;
  Csg csg;
  Graph g = Path(d, {"C", "O"});
  csg.AddGraph(5, g);
  csg.AddGraph(5, g);  // ignored: id already a member
  EXPECT_EQ(csg.members().size(), 1u);
  EXPECT_EQ(csg.NumLiveEdges(), 1u);
}

TEST(CsgTest, RemoveGraphStripsIds) {
  LabelDictionary d;
  Csg csg;
  csg.AddGraph(0, Path(d, {"C", "O", "C"}));
  csg.AddGraph(1, Path(d, {"C", "O", "S"}));
  size_t live_before = csg.NumLiveEdges();
  csg.RemoveGraph(1);
  EXPECT_LT(csg.NumLiveEdges(), live_before);  // the O-S edge had freq 1
  EXPECT_FALSE(csg.members().Contains(1));
  // Shared edges survive with the remaining id.
  bool found_shared = false;
  for (const auto& [edge, ids] : csg.Edges()) {
    EXPECT_TRUE(ids->Contains(0));
    EXPECT_FALSE(ids->Contains(1));
    found_shared = true;
  }
  EXPECT_TRUE(found_shared);
}

TEST(CsgTest, RemoveAllGraphsEmptiesEdges) {
  LabelDictionary d;
  Csg csg;
  csg.AddGraph(0, Path(d, {"C", "O"}));
  csg.AddGraph(1, Path(d, {"C", "S"}));
  csg.RemoveGraph(0);
  csg.RemoveGraph(1);
  EXPECT_EQ(csg.NumLiveEdges(), 0u);
  EXPECT_TRUE(csg.members().empty());
}

TEST(CsgTest, RemoveUnknownIdIsNoOp) {
  LabelDictionary d;
  Csg csg;
  csg.AddGraph(0, Path(d, {"C", "O"}));
  csg.RemoveGraph(42);
  EXPECT_EQ(csg.NumLiveEdges(), 1u);
}

TEST(CsgTest, EdgeMembersLookup) {
  LabelDictionary d;
  Csg csg;
  csg.AddGraph(7, Path(d, {"C", "O"}));
  auto edges = csg.Edges();
  ASSERT_EQ(edges.size(), 1u);
  auto [u, v] = edges[0].first;
  EXPECT_TRUE(csg.EdgeMembers(u, v).Contains(7));
  EXPECT_TRUE(csg.EdgeMembers(u, v) == csg.EdgeMembers(v, u));
  EXPECT_TRUE(csg.EdgeMembers(90, 91).empty());
}

// Maintenance round-trip: building from scratch equals incremental adds.
TEST(CsgTest, IncrementalMatchesBatchBuild) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  IdSet members{0, 1, 2, 3, 4};
  Csg batch = Csg::Build(db, members);

  Csg inc;
  for (GraphId id : members) inc.AddGraph(id, *db.Find(id));
  EXPECT_EQ(inc.members(), batch.members());
  EXPECT_EQ(inc.NumLiveEdges(), batch.NumLiveEdges());
  EXPECT_EQ(inc.skeleton().NumVertices(), batch.skeleton().NumVertices());
}

// Paper's step (2): after deleting a graph, edges with in-cluster frequency
// 1 owned by it disappear, and the skeleton still embeds all survivors.
TEST(CsgTest, DeletionPreservesSurvivorEmbeddings) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  IdSet members{0, 1, 2, 4, 5};
  Csg csg = Csg::Build(db, members);
  csg.RemoveGraph(2);
  for (GraphId id : {0u, 1u, 4u, 5u}) {
    EXPECT_TRUE(ContainsSubgraph(*db.Find(id), csg.skeleton()))
        << "graph " << id;
  }
}

}  // namespace
}  // namespace midas
