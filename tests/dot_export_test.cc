#include "midas/graph/dot_export.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace midas {
namespace {

TEST(DotExportTest, BasicStructure) {
  LabelDictionary d;
  Graph g = testing_util::Path(d, {"C", "O"});
  std::string dot = ToDot(g, d, "pattern1");
  EXPECT_NE(dot.find("graph pattern1 {"), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"C\""), std::string::npos);
  EXPECT_NE(dot.find("n1 [label=\"O\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(DotExportTest, EveryVertexAndEdgePresent) {
  LabelDictionary d;
  Rng rng(4);
  Graph g = testing_util::RandomGraph(d, rng, 8, 3);
  std::string dot = ToDot(g, d);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_NE(dot.find("n" + std::to_string(v) + " [label"),
              std::string::npos);
  }
  size_t edge_count = 0;
  size_t pos = 0;
  while ((pos = dot.find(" -- ", pos)) != std::string::npos) {
    ++edge_count;
    pos += 4;
  }
  EXPECT_EQ(edge_count, g.NumEdges());
}

TEST(DotExportTest, KnownAtomColors) {
  EXPECT_EQ(DotColorFor("O"), "#ff4444");
  EXPECT_EQ(DotColorFor("C"), "#909090");
  EXPECT_EQ(DotColorFor("B"), "#ffb5b5");
}

TEST(DotExportTest, UnknownLabelsGetStableColors) {
  std::string c1 = DotColorFor("Xy");
  std::string c2 = DotColorFor("Xy");
  EXPECT_EQ(c1, c2);
  EXPECT_FALSE(c1.empty());
  EXPECT_EQ(c1[0], '#');
}

TEST(DotExportTest, EmptyGraph) {
  LabelDictionary d;
  std::string dot = ToDot(Graph(), d);
  EXPECT_NE(dot.find("graph g {"), std::string::npos);
  EXPECT_EQ(dot.find("--"), std::string::npos);
}

}  // namespace
}  // namespace midas
