#include "midas/graph/graphlet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "test_util.h"

namespace midas {
namespace {

using testing_util::Cycle;
using testing_util::MakeGraph;
using testing_util::Path;
using testing_util::Star;

uint64_t Total(const GraphletCounts& c) {
  return std::accumulate(c.begin(), c.end(), uint64_t{0});
}

TEST(GraphletCountTest, Wedge) {
  LabelDictionary d;
  GraphletCounts c = CountGraphlets(Path(d, {"C", "C", "C"}));
  EXPECT_EQ(c[kWedge], 1u);
  EXPECT_EQ(Total(c), 1u);
}

TEST(GraphletCountTest, Triangle) {
  LabelDictionary d;
  GraphletCounts c =
      CountGraphlets(MakeGraph(d, {"C", "C", "C"}, {{0, 1}, {1, 2}, {0, 2}}));
  EXPECT_EQ(c[kTriangle], 1u);
  EXPECT_EQ(c[kWedge], 0u);  // induced counting: the triangle is no wedge
  EXPECT_EQ(Total(c), 1u);
}

TEST(GraphletCountTest, Path4) {
  LabelDictionary d;
  GraphletCounts c = CountGraphlets(Path(d, {"C", "C", "C", "C"}));
  EXPECT_EQ(c[kPath4], 1u);
  EXPECT_EQ(c[kWedge], 2u);
  EXPECT_EQ(Total(c), 3u);
}

TEST(GraphletCountTest, Star4) {
  LabelDictionary d;
  GraphletCounts c = CountGraphlets(Star(d, "C", {"C", "C", "C"}));
  EXPECT_EQ(c[kStar4], 1u);
  EXPECT_EQ(c[kWedge], 3u);
  EXPECT_EQ(c[kPath4], 0u);
}

TEST(GraphletCountTest, Cycle4) {
  LabelDictionary d;
  GraphletCounts c = CountGraphlets(Cycle(d, 4, "C"));
  EXPECT_EQ(c[kCycle4], 1u);
  EXPECT_EQ(c[kWedge], 4u);
  EXPECT_EQ(c[kPath4], 0u);  // induced: every 4-subset is the cycle itself
}

TEST(GraphletCountTest, Paw) {
  LabelDictionary d;
  // Triangle 0-1-2 plus pendant 3 on vertex 0.
  Graph paw =
      MakeGraph(d, {"C", "C", "C", "C"}, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  GraphletCounts c = CountGraphlets(paw);
  EXPECT_EQ(c[kPaw], 1u);
  EXPECT_EQ(c[kTriangle], 1u);
  EXPECT_EQ(c[kWedge], 2u);  // 3-0-1 and 3-0-2
}

TEST(GraphletCountTest, Diamond) {
  LabelDictionary d;
  Graph diamond = MakeGraph(d, {"C", "C", "C", "C"},
                            {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  GraphletCounts c = CountGraphlets(diamond);
  EXPECT_EQ(c[kDiamond], 1u);
  EXPECT_EQ(c[kTriangle], 2u);
}

TEST(GraphletCountTest, K4) {
  LabelDictionary d;
  Graph k4 = MakeGraph(d, {"C", "C", "C", "C"},
                       {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  GraphletCounts c = CountGraphlets(k4);
  EXPECT_EQ(c[kK4], 1u);
  EXPECT_EQ(c[kTriangle], 4u);
  EXPECT_EQ(c[kWedge], 0u);
}

TEST(GraphletCountTest, K5HasBinomialK4Count) {
  LabelDictionary d;
  Graph k5;
  for (int i = 0; i < 5; ++i) k5.AddVertex(d.Intern("C"));
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      k5.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  GraphletCounts c = CountGraphlets(k5);
  EXPECT_EQ(c[kK4], 5u);       // C(5,4)
  EXPECT_EQ(c[kTriangle], 10u);  // C(5,3)
}

TEST(GraphletCensusTest, AddRemoveRoundTrip) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  GraphletCensus census(db);
  GraphletCounts before = census.totals();

  LabelDictionary& d = db.labels();
  Graph extra = Cycle(d, 4, "C");
  GraphId id = db.Insert(extra);
  census.Add(id, extra);
  EXPECT_NE(census.totals(), before);
  census.Remove(id);
  EXPECT_EQ(census.totals(), before);
}

TEST(GraphletCensusTest, DistributionSumsToOne) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  GraphletCensus census(db);
  auto psi = census.Distribution();
  ASSERT_EQ(psi.size(), static_cast<size_t>(kNumGraphletTypes));
  double sum = std::accumulate(psi.begin(), psi.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GraphletCensusTest, EmptyCensusIsUniform) {
  GraphletCensus census;
  auto psi = census.Distribution();
  for (double x : psi) EXPECT_NEAR(x, 1.0 / kNumGraphletTypes, 1e-12);
}

TEST(GraphletDistanceTest, MetricAxioms) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  GraphletCensus census(db);
  auto psi = census.Distribution();
  EXPECT_DOUBLE_EQ(GraphletDistance(psi, psi), 0.0);

  GraphletCensus other;
  auto uniform = other.Distribution();
  double dist = GraphletDistance(psi, uniform);
  EXPECT_GT(dist, 0.0);
  EXPECT_DOUBLE_EQ(dist, GraphletDistance(uniform, psi));
}

TEST(GraphletDistanceTest, NewFamilyShiftsDistribution) {
  // A batch of ring-heavy graphs must move psi noticeably more than a batch
  // of path-like graphs resembling the base (sanity of the major/minor
  // classifier's signal).
  GraphDatabase db;
  LabelDictionary& d = db.labels();
  for (int i = 0; i < 20; ++i) db.Insert(Path(d, {"C", "C", "C", "C"}));
  GraphletCensus census(db);
  auto psi0 = census.Distribution();

  GraphletCensus with_rings = census;
  for (int i = 0; i < 10; ++i) {
    Graph ring = Cycle(d, 4, "C");
    with_rings.Add(1000 + i, ring);
  }
  GraphletCensus with_paths = census;
  for (int i = 0; i < 10; ++i) {
    Graph p = Path(d, {"C", "C", "C", "C"});
    with_paths.Add(2000 + i, p);
  }
  double dist_rings = GraphletDistance(psi0, with_rings.Distribution());
  double dist_paths = GraphletDistance(psi0, with_paths.Distribution());
  EXPECT_GT(dist_rings, dist_paths);
  EXPECT_NEAR(dist_paths, 0.0, 1e-9);  // identical shape
}

}  // namespace
}  // namespace midas
