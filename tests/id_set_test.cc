#include "midas/common/id_set.h"

#include <gtest/gtest.h>

#include "midas/common/rng.h"

namespace midas {
namespace {

TEST(IdSetTest, InsertEraseContains) {
  IdSet s;
  EXPECT_TRUE(s.Insert(5));
  EXPECT_FALSE(s.Insert(5));
  EXPECT_TRUE(s.Insert(3));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_TRUE(s.Erase(5));
  EXPECT_FALSE(s.Erase(5));
  EXPECT_EQ(s.size(), 1u);
}

TEST(IdSetTest, ConstructionSortsAndDedups) {
  IdSet s(std::vector<uint32_t>{5, 1, 5, 3, 1});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ids(), (std::vector<uint32_t>{1, 3, 5}));
}

TEST(IdSetTest, InitializerList) {
  IdSet s{3, 1, 2};
  EXPECT_EQ(s.ids(), (std::vector<uint32_t>{1, 2, 3}));
}

TEST(IdSetTest, SetAlgebra) {
  IdSet a{1, 2, 3, 4};
  IdSet b{3, 4, 5};
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(a.UnionSize(b), 5u);
  EXPECT_EQ(a.DifferenceSize(b), 2u);
  EXPECT_EQ(IdSet::Intersection(a, b), (IdSet{3, 4}));
  EXPECT_EQ(IdSet::Union(a, b), (IdSet{1, 2, 3, 4, 5}));
  EXPECT_EQ(IdSet::Difference(a, b), (IdSet{1, 2}));
}

TEST(IdSetTest, InPlaceOps) {
  IdSet a{1, 2, 3};
  a.UnionWith(IdSet{3, 4});
  EXPECT_EQ(a, (IdSet{1, 2, 3, 4}));
  a.DifferenceWith(IdSet{1, 4});
  EXPECT_EQ(a, (IdSet{2, 3}));
}

TEST(IdSetTest, EmptySets) {
  IdSet empty;
  IdSet a{1};
  EXPECT_EQ(empty.UnionSize(a), 1u);
  EXPECT_EQ(empty.IntersectionSize(a), 0u);
  EXPECT_EQ(a.DifferenceSize(empty), 1u);
  EXPECT_TRUE(IdSet::Intersection(empty, a).empty());
}

// Property: algebra sizes agree with materialized sets.
class IdSetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IdSetPropertyTest, SizesConsistent) {
  Rng rng(40 + GetParam());
  std::vector<uint32_t> va;
  std::vector<uint32_t> vb;
  for (int i = 0; i < 30; ++i) {
    if (rng.Bernoulli(0.5)) va.push_back(static_cast<uint32_t>(i));
    if (rng.Bernoulli(0.5)) vb.push_back(static_cast<uint32_t>(i));
  }
  IdSet a(va);
  IdSet b(vb);
  EXPECT_EQ(a.UnionSize(b), IdSet::Union(a, b).size());
  EXPECT_EQ(a.IntersectionSize(b), IdSet::Intersection(a, b).size());
  EXPECT_EQ(a.DifferenceSize(b), IdSet::Difference(a, b).size());
  // Inclusion-exclusion.
  EXPECT_EQ(a.UnionSize(b) + a.IntersectionSize(b), a.size() + b.size());
}

INSTANTIATE_TEST_SUITE_P(Random, IdSetPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace midas
