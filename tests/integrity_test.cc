// fsck-style verifier + background scrubber + self-healing repair ladder:
// the seeded corruption matrix (every durable file x bit offsets), journal
// chain checks, scrub-and-repair inside a live host, escalation to typed
// refusal, and the same-seed determinism of the repair transitions.

#include "midas/maintain/verify.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "midas/common/failpoint.h"
#include "midas/common/io.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/maintain/journal.h"
#include "midas/maintain/midas.h"
#include "midas/maintain/snapshot.h"
#include "midas/serve/engine_host.h"

namespace midas {
namespace {

namespace stdfs = std::filesystem;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((stdfs::temp_directory_path() / name).string()) {
    stdfs::remove_all(path);
    stdfs::create_directories(path);
  }
  ~TempDir() { stdfs::remove_all(path); }
  std::string path;
};

struct FailpointGuard {
  FailpointGuard() { fail::DisarmAll(); }
  ~FailpointGuard() { fail::DisarmAll(); }
};

MidasConfig TestConfig() {
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.epsilon = 0.0;
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  return cfg;
}

std::unique_ptr<MidasEngine> MakeEngine(MoleculeGenerator& gen,
                                        MoleculeGenConfig& data) {
  auto engine =
      std::make_unique<MidasEngine>(gen.Generate(data), TestConfig());
  engine->Initialize();
  return engine;
}

// Waits until `pred` holds or `budget` elapses; returns pred's final value.
template <typename Pred>
bool Eventually(Pred pred, milliseconds budget = milliseconds(30000)) {
  const auto deadline = steady_clock::now() + budget;
  while (steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(10));
  }
  return pred();
}

// Integrity-sourced transitions as "from->to" strings, up to and including
// the first terminal entry (refuse_serve or a return to none).
std::vector<std::string> IntegrityTransitions(const serve::EngineHost& host) {
  std::vector<std::string> out;
  for (const serve::OverloadTransition& t :
       host.overload_transitions().Snapshot()) {
    if (t.source != "integrity") continue;
    out.push_back(t.from + "->" + t.to);
    if (t.to == "refuse_serve" || t.to == "none") break;
  }
  return out;
}

// --- Verifier unit coverage --------------------------------------------------

TEST(VerifyTest, CleanCheckpointVerifiesAtEveryLevel) {
  TempDir dir("midas_verify_clean");
  MoleculeGenerator gen(11);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  std::string err;
  ASSERT_TRUE(SaveCheckpoint(*engine, dir.path, &err)) << err;

  VerifyOptions opt;  // deep by default
  IntegrityReport report = VerifyEngineState(dir.path, opt);
  EXPECT_TRUE(report.clean()) << report.Describe();
  EXPECT_GT(report.checks, 0u);
  EXPECT_TRUE(report.RanTier(IntegrityTier::kManifest));
  EXPECT_TRUE(report.RanTier(IntegrityTier::kJournal));
  EXPECT_TRUE(report.RanTier(IntegrityTier::kDeep));
  EXPECT_FALSE(report.deep_truncated);
}

TEST(VerifyTest, DeepTierAgainstLiveEngineIsClean) {
  MoleculeGenerator gen(13);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);

  IntegrityReport report;
  VerifyOptions opt;
  VerifyEngineDeep(*engine, opt, &report);
  EXPECT_TRUE(report.clean()) << report.Describe();
  EXPECT_EQ(report.checks, engine->patterns().size() * 3);

  // The sliced variant converges to the same verdict: laps end at cursor 0.
  IntegrityReport sliced;
  size_t cursor = 0;
  int slices = 0;
  do {
    cursor = VerifyPatternsSlice(*engine, cursor, /*deadline_ms=*/1e9,
                                 &sliced);
    ++slices;
    ASSERT_LT(slices, 1000);
  } while (cursor != 0);
  EXPECT_TRUE(sliced.clean()) << sliced.Describe();
}

TEST(VerifyTest, JournalSeqGapIsTyped) {
  TempDir dir("midas_verify_gap");
  MoleculeGenerator gen(17);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  const std::string path = dir.path + "/journal.log";

  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(path));
  GraphDatabase copy = engine->db();
  BatchUpdate batch = gen.GenerateAdditions(copy, data, 2, false);
  ASSERT_TRUE(journal.AppendBatch(1, batch, engine->db().labels()));
  ASSERT_TRUE(
      journal.AppendCommit(1, engine->patterns(), engine->db().labels()));
  // Seq 2 never happened: the chain jumps 1 -> 3.
  ASSERT_TRUE(journal.AppendBatch(3, batch, engine->db().labels()));
  ASSERT_TRUE(
      journal.AppendCommit(3, engine->patterns(), engine->db().labels()));

  VerifyOptions opt;
  IntegrityReport report = VerifyJournal(path, /*snapshot_seq=*/0, opt);
  ASSERT_FALSE(report.clean());
  EXPECT_EQ(report.violations[0].kind, IntegrityViolationKind::kJournalGap);
}

// --- Seeded corruption matrix ------------------------------------------------

// Every durable file x a spread of bit offsets: after at-rest rot, the
// verifier must report a typed violation, and recovery must either refuse
// with a diagnosis or come back deep-verified — never silently serve rot.
TEST(IntegrityMatrixTest, BitRotIsDetectedThenRepairedOrRefused) {
  FailpointGuard guard;
  MoleculeGenerator gen(23);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);

  TempDir base("midas_matrix_base");
  std::string err;
  ASSERT_TRUE(SaveCheckpoint(*engine, base.path, &err)) << err;
  // A journal tail past the snapshot, so journal rot has bytes to chew.
  {
    UpdateJournal journal;
    ASSERT_TRUE(journal.Open(base.path + "/journal.log"));
    GraphDatabase copy = engine->db();
    BatchUpdate batch = gen.GenerateAdditions(copy, data, 2, false);
    ASSERT_TRUE(journal.AppendBatch(1, batch, copy.labels()));
    ASSERT_TRUE(journal.AppendCommit(1, engine->patterns(), copy.labels()));
  }

  const std::vector<std::string> files = {
      "snapshot/MANIFEST", "snapshot/config.ini", "snapshot/database.gspan",
      "snapshot/patterns.gspan", "journal.log"};
  const std::vector<uint64_t> bits = {7, 301, 5003};

  for (const std::string& rel : files) {
    for (uint64_t bit : bits) {
      SCOPED_TRACE(rel + " bit " + std::to_string(bit));
      TempDir cell("midas_matrix_cell");
      stdfs::copy(base.path, cell.path,
                  stdfs::copy_options::recursive |
                      stdfs::copy_options::overwrite_existing);

      io::FaultyFileSystem ffs;
      ASSERT_TRUE(ffs.CorruptOnDisk(cell.path + "/" + rel, bit, &err))
          << err;

      VerifyOptions opt;
      opt.fs = &ffs;
      IntegrityReport report = VerifyEngineState(cell.path, opt);

      RecoverInfo info;
      std::unique_ptr<MidasEngine> recovered =
          RecoverEngine(cell.path, &info, &ffs);
      if (recovered == nullptr) {
        // Typed refusal: the rot was detected, named, and nothing served.
        EXPECT_FALSE(report.clean()) << "refused but fsck saw nothing";
        EXPECT_FALSE(info.error.empty());
      } else {
        // Recovery absorbed the rot (e.g. a torn journal tail, or a flip
        // in journal padding): the state it serves must verify deep-clean.
        IntegrityReport proof;
        VerifyOptions deep;
        VerifyEngineDeep(*recovered, deep, &proof);
        EXPECT_TRUE(proof.clean()) << proof.Describe();
      }
    }
  }
}

// --- Scrubber + repair ladder in a live host --------------------------------

serve::HostConfig ScrubHostConfig(io::FileSystem* fs) {
  serve::HostConfig cfg;
  cfg.queue_capacity = 4;
  cfg.fs = fs;
  cfg.scrub.enabled = true;
  cfg.scrub.tick_budget_ms = 50.0;
  cfg.checkpoint_every = 0;  // only integrity-driven checkpoint rewrites
  return cfg;
}

TEST(ScrubberTest, DetectsDiskRotAndSelfHeals) {
  FailpointGuard guard;
  TempDir dir("midas_scrub_heal");
  io::FaultyFileSystem ffs;
  MoleculeGenerator gen(31);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);

  serve::EngineHost host(std::move(engine), dir.path, ScrubHostConfig(&ffs));
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  // Let the scrubber complete at least one clean lap first.
  ASSERT_TRUE(Eventually([&] { return host.stats().scrub_ticks > 3; }));
  EXPECT_EQ(host.stats().integrity_violations, 0u);

  // Rot at rest in the checkpoint the host would recover from.
  ASSERT_TRUE(ffs.CorruptOnDisk(dir.path + "/snapshot/patterns.gspan", 1001,
                                &err))
      << err;

  // The scrubber's next disk-tier pass flags it; rung 1 (rebuild views +
  // checkpoint rewrite) heals it, because the in-memory engine is fine.
  ASSERT_TRUE(Eventually([&] {
    serve::HostStats s = host.stats();
    return s.integrity_violations > 0 && s.integrity_repairs >= 1;
  }));
  EXPECT_FALSE(host.integrity_failed());

  // The healed checkpoint verifies clean offline too.
  host.Stop();
  VerifyOptions opt;
  opt.fs = &ffs;
  IntegrityReport report = VerifyEngineState(dir.path, opt);
  EXPECT_TRUE(report.clean()) << report.Describe();

  std::vector<std::string> transitions = IntegrityTransitions(host);
  ASSERT_FALSE(transitions.empty());
  EXPECT_EQ(transitions.front(), "none->rebuild_views");
  EXPECT_EQ(transitions.back(), "rebuild_views->none");
}

TEST(ScrubberTest, LadderExhaustionRefusesThenRecovers) {
  FailpointGuard guard;
  TempDir dir("midas_scrub_refuse");
  io::FaultyFileSystem ffs;
  MoleculeGenerator gen(37);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();

  serve::EngineHost host(std::move(engine), dir.path, ScrubHostConfig(&ffs));
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;
  ASSERT_TRUE(Eventually([&] { return host.stats().scrub_ticks > 2; }));

  // Rot the only checkpoint AND break every snapshot write: rung 1 cannot
  // rewrite, rung 2 cannot restore (the rot refuses it), rung 3 cannot
  // checkpoint its rebuilt engine. The ladder must end in a typed refusal.
  ASSERT_TRUE(ffs.CorruptOnDisk(dir.path + "/snapshot/patterns.gspan", 77,
                                &err))
      << err;
  fail::Arm("io.write_file.error", 0, 1000000);

  ASSERT_TRUE(Eventually([&] { return host.integrity_failed(); }));
  EXPECT_GE(host.stats().integrity_refusals, 1u);

  // Refusal is typed end to end: Submit sheds with reason "integrity".
  GraphDatabase copy = base;
  BatchUpdate batch = gen.GenerateAdditions(copy, data, 2, false);
  serve::SubmitResult shed = host.Submit(std::move(batch), copy.labels());
  EXPECT_EQ(shed.status, serve::SubmitStatus::kShedOverload);
  EXPECT_EQ(shed.shed_reason, "integrity");
  EXPECT_GT(shed.retry_after_ms, 0.0);

  // The transition sequence climbed every rung in order before refusing.
  std::vector<std::string> expected = {
      "none->rebuild_views", "rebuild_views->restore_snapshot",
      "restore_snapshot->run_from_scratch", "run_from_scratch->refuse_serve"};
  EXPECT_EQ(IntegrityTransitions(host), expected);

  // The fault clears (disk writes work again): the next ladder retry's
  // rung 1 rewrites a fresh checkpoint and the refusal lifts.
  fail::DisarmAll();
  ASSERT_TRUE(Eventually([&] { return !host.integrity_failed(); }));
  GraphDatabase copy2 = base;
  BatchUpdate batch2 = gen.GenerateAdditions(copy2, data, 2, false);
  EXPECT_TRUE(Eventually([&] {
    GraphDatabase c = base;
    BatchUpdate b = gen.GenerateAdditions(c, data, 1, false);
    return host.Submit(std::move(b), c.labels()).accepted();
  }));
  host.Stop();
}

TEST(ScrubberTest, SameSeedFaultRunsProduceIdenticalTransitions) {
  auto run_once = [](unsigned seed) {
    FailpointGuard guard;
    TempDir dir("midas_scrub_det_" + std::to_string(seed));
    io::FaultyFileSystem ffs;
    MoleculeGenerator gen(seed);
    MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
    auto engine =
        std::make_unique<MidasEngine>(gen.Generate(data), TestConfig());
    engine->Initialize();

    serve::EngineHost host(std::move(engine), dir.path,
                           ScrubHostConfig(&ffs));
    std::string err;
    EXPECT_TRUE(host.Start(&err)) << err;
    EXPECT_TRUE(Eventually([&] { return host.stats().scrub_ticks > 1; }));
    EXPECT_TRUE(ffs.CorruptOnDisk(dir.path + "/snapshot/patterns.gspan",
                                  4099, &err))
        << err;
    fail::Arm("io.write_file.error", 0, 1000000);
    EXPECT_TRUE(Eventually([&] { return host.integrity_failed(); }));
    host.Stop();
    return IntegrityTransitions(host);
  };

  std::vector<std::string> first = run_once(20260809);
  std::vector<std::string> second = run_once(20260809);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace midas
