#include "midas/mining/fct_set.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "midas/datagen/molecule_gen.h"
#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeToyDatabase;

FctSet::Config Config(double sup, size_t max_edges) {
  FctSet::Config c;
  c.sup_min = sup;
  c.max_edges = max_edges;
  return c;
}

// Canonical-string -> occurrence-size snapshot of the frequent closed trees.
std::map<std::string, size_t> Snapshot(const FctSet& set) {
  std::map<std::string, size_t> snap;
  for (const FctEntry* e : set.FrequentClosedTrees()) {
    snap[e->canon] = e->occurrences.size();
  }
  return snap;
}

TEST(FctSetTest, MineBasics) {
  GraphDatabase db = MakeToyDatabase();
  FctSet set = FctSet::Mine(db, Config(0.5, 3));
  EXPECT_EQ(set.database_size(), db.size());
  EXPECT_FALSE(set.FrequentClosedTrees().empty());
  // Pool holds the relaxed-threshold shadow entries too.
  EXPECT_GE(set.PoolEntries().size(), set.FrequentClosedTrees().size());
}

TEST(FctSetTest, FrequentClosedTreesSatisfyDefinition) {
  GraphDatabase db = MakeToyDatabase();
  FctSet set = FctSet::Mine(db, Config(0.25, 3));
  auto fcts = set.FrequentClosedTrees();
  auto pool = set.PoolEntries();
  for (const FctEntry* f : fcts) {
    EXPECT_GE(f->occurrences.size(), 2u);  // 0.25 * 8
    if (f->tree.NumEdges() >= 3) continue;  // cap convention
    for (const FctEntry* super : pool) {
      if (super->tree.NumEdges() != f->tree.NumEdges() + 1) continue;
      bool equal_occ = super->occurrences == f->occurrences;
      bool is_super = ContainsSubgraph(f->tree, super->tree);
      EXPECT_FALSE(equal_occ && is_super)
          << f->canon << " has equal-support supertree " << super->canon;
    }
  }
}

TEST(FctSetTest, EdgeUniversesPartitionByFrequency) {
  GraphDatabase db = MakeToyDatabase();
  FctSet set = FctSet::Mine(db, Config(0.5, 3));
  std::set<uint64_t> freq;
  for (const auto& [lp, occ] : set.FrequentEdges()) {
    EXPECT_GE(occ->size(), 4u);  // 0.5 * 8
    freq.insert(lp.Packed());
  }
  for (const auto& [lp, occ] : set.InfrequentEdges()) {
    EXPECT_LT(occ->size(), 4u);
    EXPECT_EQ(freq.count(lp.Packed()), 0u);
  }
  EXPECT_EQ(set.FrequentEdges().size() + set.InfrequentEdges().size(),
            set.edge_occurrences().size());
}

TEST(FctSetTest, MaintainAddMatchesScratch) {
  GraphDatabase db = MakeToyDatabase();
  FctSet maintained = FctSet::Mine(db, Config(0.5, 3));

  // Add three more C-O-C heavy graphs.
  LabelDictionary& d = db.labels();
  BatchUpdate delta;
  delta.insertions.push_back(testing_util::Path(d, {"C", "O", "C", "S"}));
  delta.insertions.push_back(testing_util::Path(d, {"C", "O", "C"}));
  delta.insertions.push_back(
      testing_util::Star(d, "C", {"O", "O", "S"}));
  std::vector<GraphId> added = db.ApplyBatch(delta);
  maintained.MaintainAdd(db, added);

  FctSet scratch = FctSet::Mine(db, Config(0.5, 3));
  EXPECT_EQ(Snapshot(maintained), Snapshot(scratch));
  EXPECT_EQ(maintained.database_size(), scratch.database_size());
}

TEST(FctSetTest, MaintainDeleteMatchesScratch) {
  GraphDatabase db = MakeToyDatabase();
  FctSet maintained = FctSet::Mine(db, Config(0.5, 3));

  std::vector<GraphId> removed = {1, 6};
  for (GraphId id : removed) db.Remove(id);
  maintained.MaintainDelete(removed, db.size());

  FctSet scratch = FctSet::Mine(db, Config(0.5, 3));
  EXPECT_EQ(Snapshot(maintained), Snapshot(scratch));
}

TEST(FctSetTest, MaintainEdgeOccurrences) {
  GraphDatabase db = MakeToyDatabase();
  FctSet set = FctSet::Mine(db, Config(0.5, 3));
  size_t edges_before = set.edge_occurrences().size();

  LabelDictionary& d = db.labels();
  BatchUpdate delta;
  delta.insertions.push_back(testing_util::Path(d, {"P", "P"}));  // new label
  std::vector<GraphId> added = db.ApplyBatch(delta);
  set.MaintainAdd(db, added);
  EXPECT_EQ(set.edge_occurrences().size(), edges_before + 1);

  db.Remove(added[0]);
  set.MaintainDelete(added, db.size());
  EXPECT_EQ(set.edge_occurrences().size(), edges_before);
}

// Lemma 3.4 flavored property: one maintenance round (mixed adds + deletes)
// on a synthetic molecule database reproduces from-scratch mining exactly.
class FctMaintenanceEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(FctMaintenanceEquivalenceTest, OneRoundEquivalence) {
  MoleculeGenerator gen(10'000 + GetParam());
  MoleculeGenConfig cfg = MoleculeGenerator::EmolLike(40);
  GraphDatabase db = gen.Generate(cfg);

  FctSet maintained = FctSet::Mine(db, Config(0.4, 3));

  // Mixed batch: delete 5, add 10 (half from a new family).
  BatchUpdate deletions = gen.GenerateDeletions(db, 5);
  for (GraphId id : deletions.deletions) db.Remove(id);
  maintained.MaintainDelete(deletions.deletions, db.size());

  BatchUpdate additions =
      gen.GenerateAdditions(db, cfg, 10, GetParam() % 2 == 0);
  std::vector<GraphId> added = db.ApplyBatch(additions);
  maintained.MaintainAdd(db, added);

  FctSet scratch = FctSet::Mine(db, Config(0.4, 3));
  EXPECT_EQ(Snapshot(maintained), Snapshot(scratch)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Random, FctMaintenanceEquivalenceTest,
                         ::testing::Range(0, 6));

TEST(FctSetTest, MemoryReportingIsPositive) {
  GraphDatabase db = MakeToyDatabase();
  FctSet set = FctSet::Mine(db, Config(0.5, 3));
  EXPECT_GT(set.MemoryBytes(), sizeof(FctSet));
}

}  // namespace
}  // namespace midas
