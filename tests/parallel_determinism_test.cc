// Regression test for the parallel substrate's determinism contract
// (docs/performance.md): with unlimited budgets, the same configuration and
// seed produce bit-identical maintenance outcomes at every thread count.
// Budgeted rounds are explicitly outside the contract — truncation points
// depend on execution order — which is why this stream runs unbudgeted.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "midas/datagen/molecule_gen.h"
#include "midas/maintain/midas.h"
#include "midas/select/pattern_io.h"

namespace midas {
namespace {

MidasConfig StreamConfig(int num_threads) {
  MidasConfig cfg;
  cfg.fct.sup_min = 0.4;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.cluster.max_cluster_size = 25;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 6;
  cfg.budget.gamma = 8;
  cfg.walk.num_walks = 40;
  cfg.walk.walk_length = 12;
  cfg.sample_cap = 0;
  cfg.epsilon = 0.005;  // new-family batches must take the major path
  cfg.seed = 5;
  cfg.round_deadline_ms = 0.0;  // unlimited: the determinism contract
  cfg.round_step_limit = 0;     // only covers unbudgeted rounds
  cfg.num_threads = num_threads;
  return cfg;
}

struct RoundShape {
  bool major = false;
  bool truncated = false;
  int candidates = 0;
  int swaps = 0;
  double graphlet_distance = 0.0;
};

struct StreamResult {
  std::vector<RoundShape> rounds;
  std::string final_patterns;  // WritePatternSet serialization
  std::string lineage;         // PatternLedger serialization
  PatternQuality quality;
};

/// Runs the identical seeded 10-round insertion stream (a mix of in-family
/// and new-family batches) through a fresh engine at the given thread
/// count. Everything is re-derived from fixed seeds, so two calls differ
/// only in `num_threads`.
StreamResult RunStream(int num_threads) {
  MoleculeGenerator gen(500);
  MoleculeGenConfig data_cfg = MoleculeGenerator::EmolLike(40);
  GraphDatabase db = gen.Generate(data_cfg);
  // Deltas are generated against a scratch copy so label ids stay valid
  // for the engine (same idiom as midas_engine_test).
  GraphDatabase scratch = db;

  auto engine =
      std::make_unique<MidasEngine>(std::move(db), StreamConfig(num_threads));
  engine->Initialize();

  MoleculeGenerator delta_gen(77);
  StreamResult result;
  for (int round = 0; round < 10; ++round) {
    const bool new_family = round % 4 == 0;
    BatchUpdate delta = delta_gen.GenerateAdditions(
        scratch, data_cfg, new_family ? 25 : 8, new_family);
    MaintenanceStats stats = engine->ApplyUpdate(delta);
    RoundShape shape;
    shape.major = stats.major;
    shape.truncated = stats.truncated;
    shape.candidates = stats.candidates;
    shape.swaps = stats.swaps;
    shape.graphlet_distance = stats.graphlet_distance;
    result.rounds.push_back(shape);
  }

  std::ostringstream patterns;
  WritePatternSet(engine->patterns(), engine->labels(), patterns);
  result.final_patterns = patterns.str();
  result.lineage = engine->lineage().Serialize();
  result.quality = engine->CurrentQuality();
  return result;
}

void ExpectIdentical(const StreamResult& reference, const StreamResult& got,
                     int num_threads) {
  SCOPED_TRACE("num_threads=" + std::to_string(num_threads));
  ASSERT_EQ(got.rounds.size(), reference.rounds.size());
  for (size_t r = 0; r < reference.rounds.size(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    EXPECT_EQ(got.rounds[r].major, reference.rounds[r].major);
    EXPECT_EQ(got.rounds[r].truncated, reference.rounds[r].truncated);
    EXPECT_EQ(got.rounds[r].candidates, reference.rounds[r].candidates);
    EXPECT_EQ(got.rounds[r].swaps, reference.rounds[r].swaps);
    // Bit-identical, not approximately equal: the parallel loops reduce in
    // index order, so even floating point must match exactly.
    EXPECT_EQ(got.rounds[r].graphlet_distance,
              reference.rounds[r].graphlet_distance);
  }
  EXPECT_EQ(got.final_patterns, reference.final_patterns);
  // The decision ledger — every birth/death/rescore with its rationale —
  // must also be thread-count-invariant: swap decisions are applied
  // serially and rescores are pended in sorted pattern-id order.
  EXPECT_EQ(got.lineage, reference.lineage);
  EXPECT_EQ(got.quality.scov, reference.quality.scov);
  EXPECT_EQ(got.quality.lcov, reference.quality.lcov);
  EXPECT_EQ(got.quality.div, reference.quality.div);
  EXPECT_EQ(got.quality.cog_avg, reference.quality.cog_avg);
  EXPECT_EQ(got.quality.cog_max, reference.quality.cog_max);
}

TEST(ParallelDeterminismTest, StreamIsThreadCountInvariant) {
  StreamResult serial = RunStream(1);
  ASSERT_FALSE(serial.final_patterns.empty());
  // At least one new-family batch should register as a major modification;
  // otherwise the stream would not exercise the full maintenance path.
  bool any_major = false;
  for (const RoundShape& r : serial.rounds) any_major |= r.major;
  EXPECT_TRUE(any_major);

  ExpectIdentical(serial, RunStream(4), 4);
  ExpectIdentical(serial, RunStream(8), 8);
}

// Serial runs must also be repeatable against themselves — if this fails,
// the invariance test above is vacuous.
TEST(ParallelDeterminismTest, SerialStreamIsRepeatable) {
  StreamResult a = RunStream(1);
  StreamResult b = RunStream(1);
  ExpectIdentical(a, b, 1);
}

}  // namespace
}  // namespace midas
