#include "midas/queryform/query_log.h"

#include <gtest/gtest.h>

#include "midas/maintain/swap.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::Path;

TEST(QueryLogTest, RecordAndSize) {
  LabelDictionary d;
  QueryLog log(4);
  EXPECT_TRUE(log.empty());
  log.Record(Path(d, {"C", "O"}));
  log.Record(Path(d, {"C", "N"}));
  EXPECT_EQ(log.size(), 2u);
}

TEST(QueryLogTest, SlidingWindowEvictsOldest) {
  LabelDictionary d;
  QueryLog log(2);
  log.Record(Path(d, {"C", "O"}));
  log.Record(Path(d, {"C", "N"}));
  log.Record(Path(d, {"C", "S"}));
  EXPECT_EQ(log.size(), 2u);
  // The C-O query was evicted: its weight is now 0.
  EXPECT_DOUBLE_EQ(log.PatternWeight(Path(d, {"C", "O"})), 0.0);
  EXPECT_DOUBLE_EQ(log.PatternWeight(Path(d, {"C", "S"})), 0.5);
}

TEST(QueryLogTest, SetCapacityShrinks) {
  LabelDictionary d;
  QueryLog log(10);
  for (int i = 0; i < 6; ++i) log.Record(Path(d, {"C", "O"}));
  log.SetCapacity(3);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.capacity(), 3u);
}

TEST(QueryLogTest, PatternWeightFraction) {
  LabelDictionary d;
  QueryLog log;
  log.Record(Path(d, {"C", "O", "C"}));
  log.Record(Path(d, {"C", "O", "N"}));
  log.Record(Path(d, {"S", "S"}));
  // C-O occurs in 2 of 3 logged queries.
  EXPECT_NEAR(log.PatternWeight(Path(d, {"C", "O"})), 2.0 / 3.0, 1e-12);
  // Empty pattern and empty log edge cases.
  EXPECT_DOUBLE_EQ(log.PatternWeight(Graph()), 0.0);
  QueryLog empty;
  EXPECT_DOUBLE_EQ(empty.PatternWeight(Path(d, {"C", "O"})), 0.0);
}

// The Section 3.5 extension end-to-end: with a log full of C-S queries, the
// C-S candidate wins the swap; without the log (and an N-heavy log), the
// alternative wins.
TEST(QueryLogSwapTest, LogSteersSwapChoice) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  Rng rng(1);
  CoverageEvaluator eval(db, 0, rng);
  LabelDictionary& d = db.labels();

  // Two identical anchor patterns: set diversity is 0, so sw3 cannot block
  // any swap, and the duplicate's unique coverage is 0, so sw1 cannot
  // either. The swap choice is then driven purely by candidate scores.
  auto make_set = [&]() {
    PatternSet set;
    for (int i = 0; i < 2; ++i) {
      CannedPattern p;
      p.graph = Path(d, {"C", "O", "C", "O"});
      RefreshPatternMetrics(p, eval, fcts);
      set.Add(std::move(p));
    }
    return set;
  };

  // Two candidates of equal size; C-S-C is rarer than C-O-C in the data,
  // so without a log the C-O-C candidate dominates.
  std::vector<Graph> candidates = {Path(d, {"C", "S", "C"}),
                                   Path(d, {"C", "O", "C"})};

  // A log dominated by C-S queries.
  QueryLog log;
  for (int i = 0; i < 8; ++i) log.Record(Path(d, {"C", "S", "C", "S"}));

  SwapConfig with_log;
  with_log.kappa = 0.0;
  with_log.lambda = 0.0;
  with_log.max_scans = 1;
  with_log.use_swap_alpha_schedule = false;
  with_log.query_log = &log;
  with_log.log_boost = 50.0;  // make the preference decisive

  PatternSet boosted = make_set();
  MultiScanSwap(boosted, candidates, eval, fcts, with_log);

  bool has_cs = false;
  for (const auto& [pid, p] : boosted.patterns()) {
    for (const auto& [u, v] : p.graph.Edges()) {
      EdgeLabelPair lp = p.graph.EdgeLabel(u, v);
      if (lp == EdgeLabelPair(static_cast<Label>(d.Lookup("C")),
                              static_cast<Label>(d.Lookup("S")))) {
        has_cs = true;
      }
    }
  }
  EXPECT_TRUE(has_cs) << "log-boosted swap should adopt the C-S pattern";
}

}  // namespace
}  // namespace midas
