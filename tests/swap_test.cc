#include "midas/maintain/swap.h"

#include <gtest/gtest.h>

#include "midas/datagen/molecule_gen.h"
#include "midas/datagen/workload.h"
#include "test_util.h"

namespace midas {
namespace {

// A controlled fixture: toy database, evaluator without sampling, and a
// helper to make evaluated patterns.
struct Fixture {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  Rng rng{77};
  CoverageEvaluator eval{db, 0, rng};

  CannedPattern Make(const Graph& g) {
    CannedPattern p;
    p.graph = g;
    RefreshPatternMetrics(p, eval, fcts);
    return p;
  }
};

SwapConfig Fixed(double kappa = 0.1, double lambda = 0.1, int scans = 2) {
  SwapConfig cfg;
  cfg.kappa = kappa;
  cfg.lambda = lambda;
  cfg.max_scans = scans;
  cfg.use_swap_alpha_schedule = false;
  return cfg;
}

TEST(MultiScanSwapTest, NoCandidatesNoChange) {
  Fixture f;
  PatternSet set;
  LabelDictionary& d = f.db.labels();
  set.Add(f.Make(testing_util::Path(d, {"C", "O", "C"})));
  double scov_before = set.FScov(f.eval.universe().size());

  SwapStats stats = MultiScanSwap(set, {}, f.eval, f.fcts, Fixed());
  EXPECT_EQ(stats.swaps, 0);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_DOUBLE_EQ(set.FScov(f.eval.universe().size()), scov_before);
}

TEST(MultiScanSwapTest, BetterCandidateReplacesWeakest) {
  Fixture f;
  LabelDictionary& d = f.db.labels();
  PatternSet set;
  // A weak pattern of the same size as the candidate (so sw4's cognitive
  // load ceiling does not block): N-C-N occurs nowhere.
  set.Add(f.Make(testing_util::Path(d, {"N", "C", "N"})));
  // A second anchor pattern so diversity is defined.
  set.Add(f.Make(testing_util::Path(d, {"C", "S"})));

  // Candidate: the ubiquitous C-O edge extended (covers nearly everything).
  std::vector<Graph> candidates = {
      testing_util::Path(d, {"C", "O", "C"}),
  };
  double scov_before = set.FScov(f.eval.universe().size());
  SwapStats stats =
      MultiScanSwap(set, candidates, f.eval, f.fcts, Fixed(0.0, 0.0, 1));
  EXPECT_GE(stats.swaps, 1);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_GE(set.FScov(f.eval.universe().size()), scov_before);
}

TEST(MultiScanSwapTest, CoverageNeverDecreases) {
  // The headline invariant: progressive gain of coverage (Section 6.2).
  MoleculeGenerator gen(88);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(30));
  FctSet fcts = FctSet::Mine(db, {0.4, 3, 20000});
  Rng rng(1);
  CoverageEvaluator eval(db, 0, rng);
  LabelDictionary& d = db.labels();

  PatternSet set;
  for (const Graph& g :
       {testing_util::Path(d, {"C", "O", "C"}),
        testing_util::Path(d, {"C", "C", "C"}),
        testing_util::Star(d, "C", {"O", "H", "H"})}) {
    CannedPattern p;
    p.graph = g;
    RefreshPatternMetrics(p, eval, fcts);
    set.Add(std::move(p));
  }
  double scov_before = set.FScov(eval.universe().size());
  double cog_before = set.FCog();

  // Candidates from random subgraphs of the database.
  std::vector<Graph> candidates;
  Rng qrng(2);
  for (GraphId id : {0u, 3u, 7u, 11u}) {
    const Graph* g = db.Find(id);
    if (g == nullptr) continue;
    candidates.push_back(RandomConnectedSubgraph(*g, 4, qrng));
  }

  MultiScanSwap(set, candidates, eval, fcts, Fixed());
  EXPECT_GE(set.FScov(eval.universe().size()), scov_before - 1e-12);
  EXPECT_LE(set.FCog(), cog_before + 1e-12);  // sw4
}

TEST(MultiScanSwapTest, Sw4BlocksHighCognitiveLoad) {
  Fixture f;
  LabelDictionary& d = f.db.labels();
  PatternSet set;
  set.Add(f.Make(testing_util::Path(d, {"C", "N"})));  // weak, low cog
  set.Add(f.Make(testing_util::Path(d, {"C", "S"})));

  // A dense triangle candidate: cognitive load 3.0 > any path's.
  std::vector<Graph> candidates = {
      testing_util::MakeGraph(d, {"C", "O", "C"}, {{0, 1}, {1, 2}, {0, 2}}),
  };
  double cog_before = set.FCog();
  MultiScanSwap(set, candidates, f.eval, f.fcts, Fixed(0.0, 0.0, 1));
  EXPECT_LE(set.FCog(), cog_before + 1e-12);
}

TEST(MultiScanSwapTest, SwapAlphaScheduleTightensKappa) {
  Fixture f;
  PatternSet set;
  LabelDictionary& d = f.db.labels();
  set.Add(f.Make(testing_util::Path(d, {"C", "N"})));
  set.Add(f.Make(testing_util::Path(d, {"C", "S"})));
  std::vector<Graph> candidates = {testing_util::Path(d, {"C", "O", "C"}),
                                   testing_util::Path(d, {"C", "O", "C", "S"})};
  SwapConfig cfg;
  cfg.kappa = 0.1;
  cfg.lambda = 0.0;
  cfg.max_scans = 3;
  cfg.use_swap_alpha_schedule = true;
  SwapStats stats = MultiScanSwap(set, candidates, f.eval, f.fcts, cfg);
  EXPECT_GE(stats.scans, 1);
  // Lemma 6.3 with sigma_0 = 0.25 gives kappa_1 = 0.5 on the second scan.
  if (stats.scans >= 2) EXPECT_NEAR(stats.kappa_final, 0.5, 1e-9);
}

TEST(MultiScanSwapTest, Sw5BlocksLabelCoverageLoss) {
  Fixture f;
  LabelDictionary& d = f.db.labels();
  PatternSet set;
  // The only C-N carrier in the set: evicting it would drop f_lcov (C-N
  // covers G1, which no other pattern's labels reach... C-O covers all, so
  // craft the set so the weak pattern is also the lone C-N carrier while
  // the other pattern has a label subset).
  set.Add(f.Make(testing_util::Path(d, {"C", "N", "C"})));
  set.Add(f.Make(testing_util::Path(d, {"C", "S", "C"})));

  // Candidate without C-N: set label coverage would lose nothing only if
  // other patterns carry C-N — they do not, but C-O covers every graph, so
  // swapping the C-N pattern for a C-O one *keeps* f_lcov. Verify the
  // criterion by the outcome: f_lcov never decreases.
  std::vector<Graph> candidates = {testing_util::Path(d, {"C", "O", "C"})};
  // Compute f_lcov before/after through the engine-visible metric.
  auto lcov_union = [&](const PatternSet& s) {
    IdSet all;
    const auto& occ = f.fcts.edge_occurrences();
    for (const auto& [pid, p] : s.patterns()) {
      for (const EdgeLabelPair& lp : p.graph.DistinctEdgeLabels()) {
        auto it = occ.find(lp);
        if (it != occ.end()) all.UnionWith(it->second);
      }
    }
    return all.size();
  };
  size_t before = lcov_union(set);
  MultiScanSwap(set, candidates, f.eval, f.fcts, Fixed(0.0, 0.0, 2));
  EXPECT_GE(lcov_union(set), before);
}

TEST(MultiScanSwapTest, KsBlocksSizeDistributionShift) {
  Fixture f;
  LabelDictionary& d = f.db.labels();
  PatternSet set;
  // A tight size distribution: six 2-edge patterns.
  for (int i = 0; i < 6; ++i) {
    set.Add(f.Make(testing_util::Path(d, {"C", "O", "C"})));
  }
  // A much larger candidate: accepting it would shift the size
  // distribution; with a strict alpha the KS test must reject the swap.
  Graph big = testing_util::Path(
      d, {"C", "O", "C", "O", "C", "O", "C", "O", "C"});
  SwapConfig cfg = Fixed(0.0, 0.0, 1);
  cfg.ks_alpha = 0.9;  // nearly any difference is "significant"
  MultiScanSwap(set, {big}, f.eval, f.fcts, cfg);
  for (const auto& [pid, p] : set.patterns()) {
    EXPECT_EQ(p.graph.NumEdges(), 2u);  // the giant never entered
  }
}

TEST(RandomSwapTest, SwapsWithoutQualityChecks) {
  Fixture f;
  LabelDictionary& d = f.db.labels();
  PatternSet set;
  set.Add(f.Make(testing_util::Path(d, {"C", "O", "C"})));
  set.Add(f.Make(testing_util::Path(d, {"C", "S"})));

  std::vector<Graph> candidates;
  for (int i = 0; i < 10; ++i) {
    candidates.push_back(testing_util::Path(d, {"C", "N"}));
  }
  Rng rng(5);
  int swaps = RandomSwap(set, candidates, f.eval, f.fcts, rng);
  EXPECT_GT(swaps, 0);
  EXPECT_EQ(set.size(), 2u);  // cardinality preserved
}

TEST(RandomSwapTest, EmptySetNoCrash) {
  Fixture f;
  PatternSet set;
  LabelDictionary& d = f.db.labels();
  std::vector<Graph> candidates = {testing_util::Path(d, {"C", "O"})};
  Rng rng(6);
  EXPECT_EQ(RandomSwap(set, candidates, f.eval, f.fcts, rng), 0);
}

}  // namespace
}  // namespace midas
