#include "midas/select/candidate_gen.h"

#include <gtest/gtest.h>

#include "midas/datagen/molecule_gen.h"
#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

struct Fixture {
  GraphDatabase db;
  FctSet fcts;
  std::map<ClusterId, Csg> csgs;
  PatternSet existing;
  IdSet universe;

  explicit Fixture(uint64_t seed = 60) {
    MoleculeGenerator gen(seed);
    db = gen.Generate(MoleculeGenerator::EmolLike(30));
    fcts = FctSet::Mine(db, {0.4, 3, 20000});
    ClusterSet::Config cc;
    cc.num_coarse = 2;
    cc.max_cluster_size = 20;
    Rng rng(seed);
    ClusterSet clusters = ClusterSet::Build(db, fcts, cc, rng);
    for (const auto& [cid, c] : clusters.clusters()) {
      csgs.emplace(cid, Csg::Build(db, c.members));
    }
    universe = IdSet(db.Ids());
  }
};

CandidateGenConfig SmallConfig(double kappa = 0.1) {
  CandidateGenConfig cfg;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 6;
  cfg.budget.gamma = 8;
  cfg.walk.num_walks = 40;
  cfg.walk.walk_length = 12;
  cfg.kappa = kappa;
  return cfg;
}

TEST(CandidateGenTest, EmptyExistingSetGeneratesFreely) {
  Fixture f;
  Rng rng(1);
  // With no existing patterns, MinUniqueCoverage is 0 and nothing prunes.
  auto candidates = GeneratePromisingCandidates(
      f.db, f.fcts, f.csgs, f.existing, f.universe, SmallConfig(), rng);
  EXPECT_FALSE(candidates.empty());
  for (const Graph& g : candidates) {
    EXPECT_GE(g.NumEdges(), 3u);
    EXPECT_LE(g.NumEdges(), 6u);
    EXPECT_TRUE(g.IsConnected());
  }
}

TEST(CandidateGenTest, FullCoverageBlocksEverything) {
  Fixture f;
  // An existing pattern that covers the whole universe with huge unique
  // coverage: every marginal is 0 < threshold.
  CannedPattern p;
  LabelDictionary& d = f.db.labels();
  p.graph = testing_util::Path(d, {"C", "C"});
  p.coverage = f.universe;
  f.existing.Add(std::move(p));

  Rng rng(2);
  auto candidates = GeneratePromisingCandidates(
      f.db, f.fcts, f.csgs, f.existing, f.universe, SmallConfig(), rng);
  EXPECT_TRUE(candidates.empty());
}

TEST(CandidateGenTest, ZeroCoveragePatternDoesNotBlock) {
  Fixture f;
  // Existing pattern covering nothing: min unique coverage 0, threshold 0,
  // marginal >= 0 ... strict comparison means edges with zero marginal are
  // still pruned, but ubiquitous edges pass.
  CannedPattern p;
  LabelDictionary& d = f.db.labels();
  p.graph = testing_util::Path(d, {"Zz", "Zz"});
  f.existing.Add(std::move(p));

  Rng rng(3);
  auto candidates = GeneratePromisingCandidates(
      f.db, f.fcts, f.csgs, f.existing, f.universe, SmallConfig(), rng);
  EXPECT_FALSE(candidates.empty());
}

TEST(CandidateGenTest, HigherKappaPrunesMore) {
  Fixture f;
  // Existing pattern with moderate coverage.
  LabelDictionary& d = f.db.labels();
  CannedPattern p;
  p.graph = testing_util::Path(d, {"C", "O"});
  std::vector<uint32_t> half;
  for (size_t i = 0; i < f.universe.size() / 2; ++i) {
    half.push_back(f.universe.ids()[i]);
  }
  p.coverage = IdSet(half);
  f.existing.Add(std::move(p));

  Rng r1(4);
  Rng r2(4);
  auto low = GeneratePromisingCandidates(f.db, f.fcts, f.csgs, f.existing,
                                         f.universe, SmallConfig(0.0), r1);
  auto high = GeneratePromisingCandidates(f.db, f.fcts, f.csgs, f.existing,
                                          f.universe, SmallConfig(1.0), r2);
  EXPECT_GE(low.size(), high.size());
}

TEST(CandidateGenTest, ExistingPatternsNotReproposed) {
  Fixture f;
  Rng rng(5);
  auto first = GeneratePromisingCandidates(
      f.db, f.fcts, f.csgs, f.existing, f.universe, SmallConfig(), rng);
  ASSERT_FALSE(first.empty());

  // Install every generated candidate as an existing pattern (zero
  // coverage so pruning stays off), then regenerate with the same stream.
  for (const Graph& g : first) {
    CannedPattern p;
    p.graph = g;
    f.existing.Add(std::move(p));
  }
  Rng rng2(5);
  auto second = GeneratePromisingCandidates(
      f.db, f.fcts, f.csgs, f.existing, f.universe, SmallConfig(), rng2);
  // Identical walks, but previously proposed shapes are filtered.
  EXPECT_LT(second.size(), first.size() + 1);
  for (const Graph& g2 : second) {
    for (const Graph& g1 : first) {
      EXPECT_FALSE(AreIsomorphic(g1, g2));
    }
  }
}

TEST(CandidateGenTest, MaxCandidatesHonored) {
  Fixture f;
  CandidateGenConfig cfg = SmallConfig();
  cfg.max_candidates = 2;
  Rng rng(6);
  auto candidates = GeneratePromisingCandidates(
      f.db, f.fcts, f.csgs, f.existing, f.universe, cfg, rng);
  EXPECT_LE(candidates.size(), 2u);
}

}  // namespace
}  // namespace midas
