// Tests for the engine's extension surface: maintenance history telemetry,
// LoadPatterns (panel restore), the small-pattern companion panel, the
// query-log hook, and the distribution-distance configuration.

#include <gtest/gtest.h>

#include <sstream>

#include "midas/datagen/molecule_gen.h"
#include "midas/maintain/midas.h"
#include "midas/select/pattern_io.h"
#include "test_util.h"

namespace midas {
namespace {

MidasConfig SmallConfig(uint64_t seed = 5) {
  MidasConfig cfg;
  cfg.fct.sup_min = 0.4;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.cluster.max_cluster_size = 25;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 6;
  cfg.budget.gamma = 8;
  cfg.walk.num_walks = 30;
  cfg.walk.walk_length = 10;
  cfg.sample_cap = 0;
  cfg.epsilon = 0.004;
  cfg.seed = seed;
  return cfg;
}

struct Fixture {
  MoleculeGenerator gen{808};
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(40);
  std::unique_ptr<MidasEngine> engine;

  Fixture() {
    engine = std::make_unique<MidasEngine>(gen.Generate(data), SmallConfig());
    engine->Initialize();
  }

  BatchUpdate Delta(size_t count, bool novel) {
    GraphDatabase copy = engine->db();
    return gen.GenerateAdditions(copy, data, count, novel);
  }
};

TEST(MaintenanceHistoryTest, RecordsEveryRound) {
  Fixture f;
  EXPECT_EQ(f.engine->history().rounds(), 0u);
  f.engine->ApplyUpdate(f.Delta(2, false));
  f.engine->ApplyUpdate(f.Delta(20, true));
  EXPECT_EQ(f.engine->history().rounds(), 2u);

  MaintenanceHistory::Summary s = f.engine->history().Summarize();
  EXPECT_EQ(s.rounds, 2u);
  EXPECT_GE(s.major_rounds, 1u);  // the 20-graph novel batch
  EXPECT_GT(s.total_pmt_ms, 0.0);
  EXPECT_GE(s.max_pmt_ms, s.mean_pmt_ms);
  EXPECT_NEAR(s.mean_pmt_ms * 2.0, s.total_pmt_ms, 1e-9);
}

TEST(MaintenanceHistoryTest, EmptySummary) {
  MaintenanceHistory h;
  MaintenanceHistory::Summary s = h.Summarize();
  EXPECT_EQ(s.rounds, 0u);
  EXPECT_DOUBLE_EQ(s.mean_pmt_ms, 0.0);
}

TEST(LoadPatternsTest, RestoredPanelGetsFreshMetrics) {
  Fixture f;
  // Serialize the current panel, then restore it through the text format.
  std::ostringstream out;
  WritePatternSet(f.engine->patterns(), f.engine->db().labels(), out);
  PatternSet restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadPatternSet(in, f.engine->labels(), &restored));
  size_t n = restored.size();

  f.engine->LoadPatterns(std::move(restored));
  EXPECT_EQ(f.engine->patterns().size(), n);
  for (const auto& [pid, p] : f.engine->patterns().patterns()) {
    EXPECT_GT(p.cog, 0.0);  // metrics recomputed
    for (GraphId id : p.coverage) {
      EXPECT_TRUE(f.engine->evaluator().universe().Contains(id));
    }
  }
  // The panel still participates in maintenance afterwards.
  MaintenanceStats stats = f.engine->ApplyUpdate(f.Delta(20, true));
  EXPECT_TRUE(stats.major);
}

TEST(SmallPanelEngineTest, RefreshedOnUpdates) {
  Fixture f;
  EXPECT_FALSE(f.engine->small_panel().patterns().empty());
  size_t before = f.engine->small_panel().patterns().size();
  f.engine->ApplyUpdate(f.Delta(20, true));
  // Panel still valid (frequent edges exist in any non-empty database).
  EXPECT_FALSE(f.engine->small_panel().patterns().empty());
  (void)before;
  for (const Graph& g : f.engine->small_panel().patterns()) {
    EXPECT_LE(g.NumEdges(), 2u);
    EXPECT_GE(g.NumEdges(), 1u);
  }
}

TEST(QueryLogEngineTest, AttachDetach) {
  Fixture f;
  QueryLog log;
  LabelDictionary& d = f.engine->labels();
  for (int i = 0; i < 4; ++i) {
    log.Record(testing_util::Path(d, {"B", "O", "C"}));
  }
  f.engine->SetQueryLog(&log);
  MaintenanceStats stats = f.engine->ApplyUpdate(f.Delta(20, true));
  EXPECT_TRUE(stats.major);  // runs through the log-boosted swap path
  f.engine->SetQueryLog(nullptr);
  f.engine->ApplyUpdate(f.Delta(2, false));  // no dangling-log crash
}

TEST(DistanceMeasureEngineTest, AllMeasuresClassify) {
  for (DistributionDistance m :
       {DistributionDistance::kEuclidean, DistributionDistance::kManhattan,
        DistributionDistance::kCosine, DistributionDistance::kHellinger}) {
    MoleculeGenerator gen(909);
    MoleculeGenConfig data = MoleculeGenerator::EmolLike(40);
    MidasConfig cfg = SmallConfig(9);
    cfg.distance_measure = m;
    // Cosine distances are much smaller in magnitude; use a tiny epsilon.
    cfg.epsilon = m == DistributionDistance::kCosine ? 1e-5 : 0.004;
    MidasEngine engine(gen.Generate(data), cfg);
    engine.Initialize();
    GraphDatabase copy = engine.db();
    BatchUpdate delta = gen.GenerateAdditions(copy, data, 20, true);
    MaintenanceStats stats = engine.ApplyUpdate(delta);
    EXPECT_TRUE(stats.major) << "measure " << static_cast<int>(m);
  }
}

}  // namespace
}  // namespace midas
