#include <gtest/gtest.h>

#include "midas/cluster/feature.h"
#include "midas/cluster/kmeans.h"
#include "test_util.h"

namespace midas {
namespace {

TEST(FeatureSpaceTest, DimensionMatchesFctCount) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  FeatureSpace space(fcts);
  EXPECT_EQ(space.Dimension(), fcts.FrequentClosedTrees().size());
}

TEST(FeatureSpaceTest, IdAndGraphVectorsAgree) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  FeatureSpace space(fcts);
  for (const auto& [id, g] : db.graphs()) {
    EXPECT_EQ(space.VectorForId(id), space.VectorForGraph(g)) << "graph " << id;
  }
}

TEST(FeatureSpaceTest, UnknownIdIsZeroVector) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  FeatureSpace space(fcts);
  for (double x : space.VectorForId(424242)) EXPECT_EQ(x, 0.0);
}

TEST(FeatureSpaceTest, ExplicitConstructor) {
  LabelDictionary d;
  std::vector<Graph> trees = {testing_util::Path(d, {"C", "O"})};
  std::vector<IdSet> occ = {IdSet{1, 2}};
  FeatureSpace space(std::move(trees), std::move(occ));
  EXPECT_EQ(space.Dimension(), 1u);
  EXPECT_EQ(space.VectorForId(1), std::vector<double>{1.0});
  EXPECT_EQ(space.VectorForId(3), std::vector<double>{0.0});
}

TEST(KMeansTest, SeparatesObviousClusters) {
  // Two tight blobs in 2D.
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({0.0 + 0.01 * i, 0.0});
  for (int i = 0; i < 10; ++i) pts.push_back({10.0 + 0.01 * i, 10.0});
  Rng rng(3);
  KmeansResult r = KMeans(pts, 2, rng);
  ASSERT_EQ(r.assignment.size(), 20u);
  // All of the first blob together, all of the second blob together.
  for (int i = 1; i < 10; ++i) EXPECT_EQ(r.assignment[i], r.assignment[0]);
  for (int i = 11; i < 20; ++i) EXPECT_EQ(r.assignment[i], r.assignment[10]);
  EXPECT_NE(r.assignment[0], r.assignment[10]);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  std::vector<std::vector<double>> pts;
  Rng data_rng(4);
  for (int i = 0; i < 30; ++i) {
    pts.push_back({data_rng.UniformReal(), data_rng.UniformReal()});
  }
  Rng r1(7);
  Rng r2(7);
  EXPECT_EQ(KMeans(pts, 4, r1).assignment, KMeans(pts, 4, r2).assignment);
}

TEST(KMeansTest, FewerPointsThanK) {
  std::vector<std::vector<double>> pts = {{0.0}, {1.0}};
  Rng rng(1);
  KmeansResult r = KMeans(pts, 5, rng);
  EXPECT_EQ(r.centroids.size(), 2u);
  EXPECT_NE(r.assignment[0], r.assignment[1]);
}

TEST(KMeansTest, EmptyInput) {
  Rng rng(1);
  KmeansResult r = KMeans({}, 3, rng);
  EXPECT_TRUE(r.assignment.empty());
  EXPECT_TRUE(r.centroids.empty());
}

TEST(KMeansTest, AssignmentsInRange) {
  std::vector<std::vector<double>> pts;
  Rng data_rng(8);
  for (int i = 0; i < 50; ++i) {
    pts.push_back({data_rng.UniformReal() * 5, data_rng.UniformReal() * 5});
  }
  Rng rng(9);
  KmeansResult r = KMeans(pts, 6, rng);
  for (int a : r.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 6);
  }
}

TEST(KMeansTest, IdenticalPointsDoNotCrash) {
  std::vector<std::vector<double>> pts(12, {1.0, 1.0});
  Rng rng(2);
  KmeansResult r = KMeans(pts, 3, rng);
  EXPECT_EQ(r.assignment.size(), 12u);
}

}  // namespace
}  // namespace midas
