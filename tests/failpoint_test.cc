#include "midas/common/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

namespace midas {
namespace {

// Every test leaves the registry clean; failpoints are process-global.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::DisarmAll(); }
  void TearDown() override { fail::DisarmAll(); }
};

TEST_F(FailpointTest, CompiledInMatchesBuildFlag) {
#if defined(MIDAS_FAILPOINTS) && MIDAS_FAILPOINTS
  EXPECT_TRUE(fail::CompiledIn());
#else
  EXPECT_FALSE(fail::CompiledIn());
#endif
}

TEST_F(FailpointTest, UnarmedSitesNeverFail) {
  EXPECT_FALSE(fail::ShouldFail("never.armed"));
  EXPECT_FALSE(MIDAS_FAILPOINT("never.armed"));
  MIDAS_FAILPOINT_ABORT("never.armed");  // must not throw
}

TEST_F(FailpointTest, ArmFiresOnceByDefault) {
  fail::Arm("site.a");
  EXPECT_TRUE(fail::ShouldFail("site.a"));
  EXPECT_FALSE(fail::ShouldFail("site.a"));  // fires=1 spent
  EXPECT_EQ(fail::HitCount("site.a"), 2);
}

TEST_F(FailpointTest, SkipThenFire) {
  fail::Arm("site.b", /*skip=*/2, /*fires=*/2);
  EXPECT_FALSE(fail::ShouldFail("site.b"));
  EXPECT_FALSE(fail::ShouldFail("site.b"));
  EXPECT_TRUE(fail::ShouldFail("site.b"));
  EXPECT_TRUE(fail::ShouldFail("site.b"));
  EXPECT_FALSE(fail::ShouldFail("site.b"));
}

TEST_F(FailpointTest, NegativeFiresMeansForever) {
  fail::Arm("site.c", 0, -1);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(fail::ShouldFail("site.c"));
  fail::Disarm("site.c");
  EXPECT_FALSE(fail::ShouldFail("site.c"));
}

TEST_F(FailpointTest, ArmedNamesAndDisarmAll) {
  fail::Arm("x.one");
  fail::Arm("x.two");
  std::vector<std::string> names = fail::ArmedNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "x.one"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "x.two"), names.end());
  fail::DisarmAll();
  EXPECT_TRUE(fail::ArmedNames().empty());
}

TEST_F(FailpointTest, AbortMacroThrowsWhenArmed) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  fail::Arm("site.abort");
  try {
    MIDAS_FAILPOINT_ABORT("site.abort");
    FAIL() << "expected FailpointAbort";
  } catch (const fail::FailpointAbort& e) {
    EXPECT_EQ(e.name(), "site.abort");
  }
}

TEST_F(FailpointTest, LoadFromEnvParsesSpecs) {
  ::setenv("MIDAS_FAILPOINTS", "env.a;env.b:1:2,env.c:0:-1", 1);
  fail::LoadFromEnv();
  ::unsetenv("MIDAS_FAILPOINTS");

  EXPECT_TRUE(fail::ShouldFail("env.a"));
  EXPECT_FALSE(fail::ShouldFail("env.a"));

  EXPECT_FALSE(fail::ShouldFail("env.b"));  // skip 1
  EXPECT_TRUE(fail::ShouldFail("env.b"));
  EXPECT_TRUE(fail::ShouldFail("env.b"));
  EXPECT_FALSE(fail::ShouldFail("env.b"));

  for (int i = 0; i < 10; ++i) EXPECT_TRUE(fail::ShouldFail("env.c"));
}

}  // namespace
}  // namespace midas
