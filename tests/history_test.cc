// In-process metric history + burn-rate alerting (obs/history.h). All
// times are virtual (passed in), so every drill here is deterministic:
// the alerter must fire and clear at exactly the computed ticks.

#include "midas/obs/history.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "midas/obs/json.h"
#include "midas/obs/metrics.h"

namespace midas {
namespace {

// --- MetricHistory ----------------------------------------------------------

TEST(MetricHistoryTest, SamplesCountersGaugesAndHistogramSeries) {
  obs::MetricsRegistry reg;
  reg.GetCounter("midas_rounds_total")->Increment();
  reg.GetGauge("midas_queue_depth")->Set(3.0);
  obs::Histogram* h = reg.GetHistogram("midas_round_ms", {1.0, 10.0});
  h->Observe(5.0);

  obs::MetricHistory history;
  history.Sample(1000.0, reg);
  EXPECT_EQ(history.samples_taken(), 1u);

  std::vector<std::string> names = history.Names();
  auto has = [&names](const std::string& n) {
    for (const std::string& name : names) {
      if (name == n) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("midas_rounds_total"));
  EXPECT_TRUE(has("midas_queue_depth"));
  EXPECT_TRUE(has("midas_round_ms_count"));
  EXPECT_TRUE(has("midas_round_ms_sum"));
}

TEST(MetricHistoryTest, MinIntervalAndCapacityBoundTheSeries) {
  obs::MetricsRegistry reg;
  obs::Gauge* g = reg.GetGauge("midas_queue_depth");

  obs::MetricHistoryConfig cfg;
  cfg.capacity = 4;
  cfg.min_interval_ms = 100.0;
  obs::MetricHistory history(cfg);

  for (int i = 0; i < 20; ++i) {
    g->Set(static_cast<double>(i));
    // Every second sample lands inside the min interval and is dropped.
    history.Sample(1000.0 + 50.0 * i, reg);
  }
  EXPECT_EQ(history.samples_taken(), 10u);

  // Query over everything: only the last `capacity` samples survive.
  std::vector<obs::MetricHistory::Bucket> buckets;
  ASSERT_TRUE(history.Query("midas_queue_depth", 2000.0, 10000.0, 1000,
                            &buckets));
  uint64_t total = 0;
  for (const auto& b : buckets) total += b.count;
  EXPECT_EQ(total, 4u);
}

TEST(MetricHistoryTest, DownsampleComputesMinMeanMaxP99) {
  obs::MetricsRegistry reg;
  obs::Gauge* g = reg.GetGauge("midas_queue_depth");
  obs::MetricHistory history;

  // 100 samples, values 1..100, one per second.
  for (int i = 1; i <= 100; ++i) {
    g->Set(static_cast<double>(i));
    history.Sample(1000.0 * i, reg);
  }
  // One bucket spanning the whole window.
  std::vector<obs::MetricHistory::Bucket> buckets;
  ASSERT_TRUE(history.Query("midas_queue_depth", 100000.0, 100000.0, 1,
                            &buckets));
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].count, 100u);
  EXPECT_DOUBLE_EQ(buckets[0].min, 1.0);
  EXPECT_DOUBLE_EQ(buckets[0].max, 100.0);
  EXPECT_DOUBLE_EQ(buckets[0].mean, 50.5);
  EXPECT_GE(buckets[0].p99, 99.0);
  EXPECT_LE(buckets[0].p99, 100.0);

  // A narrower window excludes older samples (inclusive window start:
  // t = 90000..100000 is 11 samples).
  ASSERT_TRUE(history.Query("midas_queue_depth", 100000.0, 10000.0, 1,
                            &buckets));
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].count, 11u);
  EXPECT_DOUBLE_EQ(buckets[0].min, 90.0);
  EXPECT_DOUBLE_EQ(buckets[0].max, 100.0);

  EXPECT_FALSE(history.Query("no_such_metric", 100000.0, 1000.0, 1,
                             &buckets));
}

TEST(MetricHistoryTest, QueryJsonIsSelfDescribing) {
  obs::MetricsRegistry reg;
  reg.GetGauge("midas_queue_depth")->Set(1.0);
  obs::MetricHistory history;
  history.Sample(1000.0, reg);

  obs::FlatJson ok =
      obs::ParseFlatJson(history.QueryJson("midas_queue_depth", 2000.0,
                                           60000.0, 60));
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.strings.at("metric"), "midas_queue_depth");

  // Unknown metric: an error plus the list of known series, so a human
  // poking /historyz can discover what exists.
  obs::FlatJson err =
      obs::ParseFlatJson(history.QueryJson("nope", 2000.0, 60000.0, 60));
  ASSERT_TRUE(err.ok) << err.error;
  EXPECT_NE(err.strings.count("error"), 0u);
  EXPECT_EQ(err.strings.at("metrics.0"), "midas_queue_depth");
}

// --- BurnRateAlerter --------------------------------------------------------

obs::AlertConfig DrillConfig() {
  obs::AlertConfig cfg;
  cfg.fast_window_ms = 10000.0;   // 10s fast window
  cfg.slow_window_ms = 60000.0;   // 60s slow window
  cfg.fast_burn = 0.5;
  cfg.slow_burn = 0.1;
  cfg.min_events = 3;
  return cfg;
}

TEST(BurnRateAlerterTest, FiresWhenBothWindowsBurnAndClearsOnRecovery) {
  obs::BurnRateAlerter alerter(DrillConfig());

  // Three good rounds: nothing fires (rates are zero).
  for (int i = 0; i < 3; ++i) {
    alerter.ObserveRound(1000.0 * i, /*slo_violation=*/false);
  }
  EXPECT_TRUE(alerter.Tick(3000.0).empty());

  // A run of bad rounds, one per second. After the third bad event both
  // windows exceed their thresholds (fast: 3/6 = 0.5, slow: >= 0.1) and
  // min_events is satisfied — exactly one "fired" transition.
  std::vector<obs::BurnRateAlerter::Transition> fired;
  for (int i = 3; i < 8; ++i) {
    alerter.ObserveRound(1000.0 * i, /*slo_violation=*/true);
    for (const auto& t : alerter.Tick(1000.0 * i)) fired.push_back(t);
  }
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].alert, "round_slo_burn");
  EXPECT_TRUE(fired[0].firing);
  EXPECT_GE(fired[0].fast_rate, 0.5);
  EXPECT_GE(fired[0].slow_rate, 0.1);

  // While still burning, repeated ticks produce no duplicate transitions.
  EXPECT_TRUE(alerter.Tick(8000.0).empty());
  std::vector<obs::BurnRateAlerter::AlertState> states =
      alerter.States(8000.0);
  bool found = false;
  for (const auto& s : states) {
    if (s.name == "round_slo_burn") {
      found = true;
      EXPECT_TRUE(s.firing);
      EXPECT_EQ(s.fired_total, 1u);
    }
  }
  EXPECT_TRUE(found);

  // Recovery: the bad events age out of the fast window; the alert clears
  // with exactly one "resolved" transition even though the slow window may
  // still be hot (fast-window recovery gates clearing).
  std::vector<obs::BurnRateAlerter::Transition> cleared =
      alerter.Tick(30000.0);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0].alert, "round_slo_burn");
  EXPECT_FALSE(cleared[0].firing);

  // Re-running the identical drill yields the identical transitions — the
  // determinism contract for seeded drills.
  obs::BurnRateAlerter again(DrillConfig());
  for (int i = 0; i < 3; ++i) again.ObserveRound(1000.0 * i, false);
  std::vector<obs::BurnRateAlerter::Transition> fired2;
  for (int i = 3; i < 8; ++i) {
    again.ObserveRound(1000.0 * i, true);
    for (const auto& t : again.Tick(1000.0 * i)) fired2.push_back(t);
  }
  ASSERT_EQ(fired2.size(), 1u);
  EXPECT_EQ(fired2[0].at_ms, fired[0].at_ms);
  EXPECT_EQ(fired2[0].fast_rate, fired[0].fast_rate);
  EXPECT_EQ(fired2[0].slow_rate, fired[0].slow_rate);
}

TEST(BurnRateAlerterTest, MinEventsSuppressesSingleBadRound) {
  obs::BurnRateAlerter alerter(DrillConfig());
  // One catastrophic round must not page.
  alerter.ObserveRound(1000.0, /*slo_violation=*/true);
  EXPECT_TRUE(alerter.Tick(1000.0).empty());
  alerter.ObserveRound(2000.0, true);
  EXPECT_TRUE(alerter.Tick(2000.0).empty());  // still below min_events
}

TEST(BurnRateAlerterTest, QualityFloorsDriveSeparateAlerts) {
  obs::AlertConfig cfg = DrillConfig();
  cfg.scov_floor = 0.4;
  cfg.lcov_floor = 0.6;
  obs::BurnRateAlerter alerter(cfg);

  // scov below floor, lcov healthy: only the scov alert fires.
  for (int i = 0; i < 5; ++i) {
    alerter.ObserveQuality(1000.0 * i, /*scov=*/0.2, /*lcov=*/0.9);
  }
  std::vector<obs::BurnRateAlerter::Transition> ts = alerter.Tick(4000.0);
  ASSERT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].alert, "quality_scov_floor");
  EXPECT_TRUE(ts[0].firing);

  // With no floors configured the quality alerts stay disabled.
  obs::BurnRateAlerter off(DrillConfig());
  for (int i = 0; i < 5; ++i) off.ObserveQuality(1000.0 * i, 0.0, 0.0);
  EXPECT_TRUE(off.Tick(4000.0).empty());
  for (const auto& s : off.States(4000.0)) {
    if (s.name != "round_slo_burn") {
      EXPECT_FALSE(s.enabled);
    }
  }
}

TEST(BurnRateAlerterTest, ToJsonCarriesEveryAlertState) {
  obs::AlertConfig cfg = DrillConfig();
  cfg.scov_floor = 0.4;
  obs::BurnRateAlerter alerter(cfg);
  alerter.ObserveRound(1000.0, false);

  obs::FlatJson doc = obs::ParseFlatJson(alerter.ToJson(2000.0));
  ASSERT_TRUE(doc.ok) << doc.error;
  // Three named alerts, each with firing/rate fields.
  bool saw_round = false, saw_scov = false, saw_lcov = false;
  for (int i = 0; i < 3; ++i) {
    const std::string key = "alerts." + std::to_string(i) + ".name";
    if (doc.strings.count(key) == 0) continue;
    const std::string& name = doc.strings.at(key);
    if (name == "round_slo_burn") saw_round = true;
    if (name == "quality_scov_floor") saw_scov = true;
    if (name == "quality_lcov_floor") saw_lcov = true;
  }
  EXPECT_TRUE(saw_round);
  EXPECT_TRUE(saw_scov);
  EXPECT_TRUE(saw_lcov);
}

}  // namespace
}  // namespace midas
