#include "midas/index/trie.h"

#include <gtest/gtest.h>

#include "midas/graph/canonical.h"
#include "test_util.h"

namespace midas {
namespace {

TEST(TokenTrieTest, InsertAndLookup) {
  TokenTrie trie;
  EXPECT_TRUE(trie.Insert({1, 2, 3}, 7));
  EXPECT_EQ(trie.Lookup({1, 2, 3}), 7);
  EXPECT_EQ(trie.Lookup({1, 2}), -1);     // prefix, not terminal
  EXPECT_EQ(trie.Lookup({1, 2, 4}), -1);  // absent
  EXPECT_EQ(trie.NumEntries(), 1u);
}

TEST(TokenTrieTest, ReinsertUpdatesKey) {
  TokenTrie trie;
  EXPECT_TRUE(trie.Insert({5}, 1));
  EXPECT_FALSE(trie.Insert({5}, 2));
  EXPECT_EQ(trie.Lookup({5}), 2);
  EXPECT_EQ(trie.NumEntries(), 1u);
}

TEST(TokenTrieTest, SharedPrefixes) {
  TokenTrie trie;
  trie.Insert({1, 2, 3}, 0);
  trie.Insert({1, 2, 4}, 1);
  trie.Insert({1}, 2);
  EXPECT_EQ(trie.Lookup({1, 2, 3}), 0);
  EXPECT_EQ(trie.Lookup({1, 2, 4}), 1);
  EXPECT_EQ(trie.Lookup({1}), 2);
  // Root + 1 + 2 + {3,4} = 5 nodes.
  EXPECT_EQ(trie.NumNodes(), 5u);
}

TEST(TokenTrieTest, Remove) {
  TokenTrie trie;
  trie.Insert({1, 2}, 0);
  trie.Insert({1, 2, 3}, 1);
  EXPECT_TRUE(trie.Remove({1, 2}));
  EXPECT_EQ(trie.Lookup({1, 2}), -1);
  EXPECT_EQ(trie.Lookup({1, 2, 3}), 1);  // deeper entry survives
  EXPECT_FALSE(trie.Remove({1, 2}));
  EXPECT_FALSE(trie.Remove({9, 9}));
  EXPECT_EQ(trie.NumEntries(), 1u);
}

TEST(TokenTrieTest, MaxDepthTracksDeepestTerminal) {
  TokenTrie trie;
  trie.Insert({1}, 0);
  EXPECT_EQ(trie.MaxDepth(), 1u);
  trie.Insert({1, 2, 3, 4}, 1);
  EXPECT_EQ(trie.MaxDepth(), 4u);
}

TEST(TokenTrieTest, EmptySequenceIsRootTerminal) {
  TokenTrie trie;
  EXPECT_EQ(trie.Lookup({}), -1);
  trie.Insert({}, 9);
  EXPECT_EQ(trie.Lookup({}), 9);
}

TEST(TokenTrieTest, CanonicalTreeTokensRoundTrip) {
  LabelDictionary d;
  TokenTrie trie;
  Graph t1 = testing_util::Path(d, {"C", "O", "C"});
  Graph t2 = testing_util::Star(d, "C", {"O", "O", "S"});
  trie.Insert(CanonicalTreeTokens(t1), 1);
  trie.Insert(CanonicalTreeTokens(t2), 2);
  EXPECT_EQ(trie.Lookup(CanonicalTreeTokens(t1)), 1);
  EXPECT_EQ(trie.Lookup(CanonicalTreeTokens(t2)), 2);
  // A permuted copy hits the same terminal.
  Rng rng(4);
  Graph p = t2.Permuted(testing_util::RandomPermutation(4, rng));
  EXPECT_EQ(trie.Lookup(CanonicalTreeTokens(p)), 2);
}

TEST(TokenTrieTest, MemoryGrowsWithNodes) {
  TokenTrie trie;
  size_t before = trie.MemoryBytes();
  for (uint32_t i = 0; i < 50; ++i) trie.Insert({i, i + 1, i + 2}, i);
  EXPECT_GT(trie.MemoryBytes(), before);
}

}  // namespace
}  // namespace midas
