// HTTP acceptance of the decision-lineage + metric-history endpoints: a
// live EngineHost serves /patternz, /lineage/<id>, /historyz and /alertz
// with well-formed JSON — including under concurrent scrapes while the
// writer is mid-round — and /metrics negotiates the OpenMetrics dialect
// via Accept.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "http_test_client.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/obs/json.h"
#include "midas/obs/metrics.h"
#include "midas/obs/profile.h"
#include "midas/serve/engine_host.h"

namespace midas {
namespace serve {
namespace {

namespace fs = std::filesystem;
using midas::testing::HttpGet;
using midas::testing::HttpRaw;
using midas::testing::HttpResult;
using std::chrono::milliseconds;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

struct ProfilerGuard {
  ~ProfilerGuard() {
    obs::SpanProfiler::Current().set_enabled(false);
    obs::SpanProfiler::Current().Clear();
  }
};

MidasConfig TestConfig() {
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.epsilon = 0.0;
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  return cfg;
}

BatchUpdate MakeBatch(MoleculeGenerator& gen, MoleculeGenConfig& data,
                      const GraphDatabase& base, size_t adds, bool novel) {
  GraphDatabase copy = base;
  return gen.GenerateAdditions(copy, data, adds, novel);
}

TEST(LineageEndpointsTest, ServeLineageHistoryAndAlertJson) {
  TempDir dir("midas_lineage_endpoints");
  ProfilerGuard profiler_guard;
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry metrics_scope(registry);

  MoleculeGenerator gen(404);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine =
      std::make_unique<MidasEngine>(gen.Generate(data), TestConfig());
  engine->Initialize();
  GraphDatabase base = engine->db();

  HostConfig cfg;
  cfg.telemetry_port = 0;
  cfg.history.min_interval_ms = 5.0;  // fill the ring quickly
  EngineHost host(std::move(engine), dir.path, cfg);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;
  const int port = host.telemetry_port();
  ASSERT_GT(port, 0);

  for (int i = 0; i < 3; ++i) {
    BatchUpdate b = MakeBatch(gen, data, base, 6, /*novel=*/true);
    ASSERT_TRUE(host.Submit(std::move(b)).accepted());
  }
  ASSERT_TRUE(host.WaitIdle(milliseconds(60000)));

  // --- /patternz: the live panel with provenance columns ---
  HttpResult panel = HttpGet(port, "/patternz");
  ASSERT_TRUE(panel.ok);
  EXPECT_EQ(panel.status, 200);
  obs::FlatJson pdoc = obs::ParseFlatJson(panel.body);
  ASSERT_TRUE(pdoc.ok) << pdoc.error << "\n" << panel.body;
  EXPECT_EQ(pdoc.numbers.at("round_seq"), 3.0);
  const size_t live = static_cast<size_t>(pdoc.numbers.at("live"));
  EXPECT_EQ(live, host.snapshot()->patterns.size());
  ASSERT_GT(live, 0u);

  // --- /lineage/<id>: every live pattern answers with its full history ---
  for (size_t i = 0; i < live; ++i) {
    const std::string key = "patterns." + std::to_string(i) + ".id";
    ASSERT_NE(pdoc.numbers.count(key), 0u);
    const uint64_t id = static_cast<uint64_t>(pdoc.numbers.at(key));
    HttpResult lin = HttpGet(port, "/lineage/" + std::to_string(id));
    ASSERT_TRUE(lin.ok);
    EXPECT_EQ(lin.status, 200) << lin.body;
    obs::FlatJson ldoc = obs::ParseFlatJson(lin.body);
    ASSERT_TRUE(ldoc.ok) << ldoc.error << "\n" << lin.body;
    EXPECT_EQ(ldoc.numbers.at("id"), static_cast<double>(id));
    EXPECT_EQ(ldoc.bools.at("alive"), true);
    // Birth-to-present: at least the birth event is there.
    EXPECT_TRUE(ldoc.Has("events.0.kind"));
  }

  // Unknown id: 404 with a JSON error; non-numeric: 400 usage.
  HttpResult missing = HttpGet(port, "/lineage/999999");
  EXPECT_EQ(missing.status, 404);
  EXPECT_TRUE(obs::ParseFlatJson(missing.body).ok);
  HttpResult garbage = HttpGet(port, "/lineage/abc");
  EXPECT_EQ(garbage.status, 400);
  EXPECT_TRUE(obs::ParseFlatJson(garbage.body).ok);

  // --- /historyz: self-describing without ?metric=, real series with ---
  // The writer samples on its loop tick; wait for the first sample.
  ASSERT_NE(host.metric_history(), nullptr);
  for (int i = 0; i < 200 && host.metric_history()->samples_taken() == 0;
       ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  ASSERT_GT(host.metric_history()->samples_taken(), 0u);

  HttpResult hist = HttpGet(port, "/historyz");
  ASSERT_TRUE(hist.ok);
  obs::FlatJson hdoc = obs::ParseFlatJson(hist.body);
  ASSERT_TRUE(hdoc.ok) << hdoc.error << "\n" << hist.body;
  ASSERT_TRUE(hdoc.Has("metrics.0")) << hist.body;  // discoverable names
  const std::string metric = hdoc.strings.at("metrics.0");

  HttpResult series =
      HttpGet(port, "/historyz?metric=" + metric + "&window=120&buckets=30");
  ASSERT_TRUE(series.ok);
  EXPECT_EQ(series.status, 200);
  obs::FlatJson sdoc = obs::ParseFlatJson(series.body);
  ASSERT_TRUE(sdoc.ok) << sdoc.error << "\n" << series.body;
  EXPECT_EQ(sdoc.strings.at("metric"), metric);
  EXPECT_EQ(sdoc.numbers.at("window_ms"), 120000.0);

  // --- /alertz: the burn-rate alerter state ---
  HttpResult alerts = HttpGet(port, "/alertz");
  ASSERT_TRUE(alerts.ok);
  EXPECT_EQ(alerts.status, 200);
  obs::FlatJson adoc = obs::ParseFlatJson(alerts.body);
  ASSERT_TRUE(adoc.ok) << adoc.error << "\n" << alerts.body;
  EXPECT_EQ(adoc.bools.at("enabled"), true);
  EXPECT_EQ(adoc.strings.at("alerts.0.name"), "round_slo_burn");

  // --- /metrics conformance: both negotiated bodies ---
  HttpResult legacy = HttpGet(port, "/metrics");
  ASSERT_TRUE(legacy.ok);
  EXPECT_NE(legacy.headers.find("text/plain; version=0.0.4"),
            std::string::npos)
      << legacy.headers;
  EXPECT_EQ(legacy.body.find("# EOF"), std::string::npos);
  EXPECT_EQ(legacy.body.find(" # {"), std::string::npos);  // no exemplars

  HttpResult om = HttpRaw(
      port,
      "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Accept: application/openmetrics-text\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(om.ok);
  EXPECT_NE(om.headers.find("application/openmetrics-text; version=1.0.0"),
            std::string::npos)
      << om.headers;
  // The mandatory terminator, at the very end of the body.
  ASSERT_GE(om.body.size(), 6u);
  EXPECT_EQ(om.body.substr(om.body.size() - 6), "# EOF\n");

  host.Stop();
}

// Concurrent scrapes of the new endpoints against a live writer: no torn
// JSON, no crashes, no data races (this test is in the TSan suite).
TEST(LineageEndpointsTest, ConcurrentScrapeWhileWriting) {
  TempDir dir("midas_lineage_scrape");
  ProfilerGuard profiler_guard;
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry metrics_scope(registry);

  MoleculeGenerator gen(505);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine =
      std::make_unique<MidasEngine>(gen.Generate(data), TestConfig());
  engine->Initialize();
  GraphDatabase base = engine->db();
  const PatternId probe_id = engine->patterns().patterns().begin()->first;

  HostConfig cfg;
  cfg.telemetry_port = 0;
  cfg.history.min_interval_ms = 5.0;
  EngineHost host(std::move(engine), dir.path, cfg);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;
  const int port = host.telemetry_port();

  const char* kTargets[] = {"/patternz", "/historyz?metric=", "/alertz",
                            "/metrics"};
  std::atomic<bool> failed{false};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < 25 && !failed.load(); ++i) {
        std::string target = kTargets[t % 4];
        if (i % 3 == 0) target = "/lineage/" + std::to_string(probe_id);
        HttpResult r = HttpGet(port, target);
        if (!r.ok) {
          failed.store(true);
          ADD_FAILURE() << "transport failure on " << target;
          break;
        }
        // JSON endpoints must never serve torn bodies, whatever the
        // status (200/400/404/503 all carry JSON here).
        if (target != "/metrics" && !obs::ParseFlatJson(r.body).ok) {
          failed.store(true);
          ADD_FAILURE() << "malformed JSON from " << target << ": "
                        << r.body;
          break;
        }
      }
    });
  }

  for (int i = 0; i < 6; ++i) {
    BatchUpdate b = MakeBatch(gen, data, base, 4, /*novel=*/i % 2 == 0);
    host.Submit(std::move(b));
  }
  ASSERT_TRUE(host.WaitIdle(milliseconds(60000)));
  for (std::thread& s : scrapers) s.join();
  EXPECT_FALSE(failed.load());

  host.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace midas
