#include "midas/serve/overload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "midas/common/chaos.h"
#include "midas/common/failpoint.h"
#include "midas/common/memory.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/serve/engine_host.h"
#include "midas/serve/update_queue.h"

namespace midas {
namespace serve {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

struct FailpointGuard {
  FailpointGuard() { fail::DisarmAll(); }
  ~FailpointGuard() { fail::DisarmAll(); }
};

MidasConfig TestConfig() {
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.epsilon = 0.0;
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  return cfg;
}

std::unique_ptr<MidasEngine> MakeEngine(MoleculeGenerator& gen,
                                        MoleculeGenConfig& data) {
  auto engine =
      std::make_unique<MidasEngine>(gen.Generate(data), TestConfig());
  engine->Initialize();
  return engine;
}

struct LabeledBatch {
  BatchUpdate batch;
  LabelDictionary labels;
};

LabeledBatch MakeBatch(MoleculeGenerator& gen, MoleculeGenConfig& data,
                       const GraphDatabase& base, size_t adds, bool novel) {
  GraphDatabase copy = base;
  LabeledBatch out;
  out.batch = gen.GenerateAdditions(copy, data, adds, novel);
  out.labels = copy.labels();
  return out;
}

template <typename Pred>
bool PollUntil(Pred pred, int timeout_ms) {
  const auto deadline = steady_clock::now() + milliseconds(timeout_ms);
  while (steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(5));
  }
  return pred();
}

// --- AdmissionController ----------------------------------------------------

TEST(OverloadAdmissionTest, CodelShedsAfterSustainedCongestionAndResets) {
  AdmissionControlConfig cfg;
  cfg.target_sojourn_ms = 5.0;
  cfg.interval_ms = 20.0;
  cfg.min_interval_ms = 5.0;
  cfg.retry_after_floor_ms = 1.0;
  AdmissionController ctrl(cfg);

  // A single above-target sojourn opens the window but does not shed yet.
  ctrl.ObserveSojourn(50.0);
  EXPECT_FALSE(ctrl.shedding());
  EXPECT_TRUE(ctrl.Admit(1).admit);

  // A full interval of above-target sojourns: shedding engages.
  std::this_thread::sleep_for(milliseconds(25));
  ctrl.ObserveSojourn(50.0);
  EXPECT_TRUE(ctrl.shedding());

  // Consecutive sheds halve the interval down to the floor; the hint tracks
  // the interval the shed was decided under.
  AdmissionDecision d1 = ctrl.Admit(1);
  EXPECT_FALSE(d1.admit);
  EXPECT_STREQ(d1.reason, "codel");
  EXPECT_DOUBLE_EQ(d1.retry_after_ms, 20.0);
  EXPECT_DOUBLE_EQ(ctrl.Admit(1).retry_after_ms, 10.0);
  EXPECT_DOUBLE_EQ(ctrl.Admit(1).retry_after_ms, 5.0);
  EXPECT_DOUBLE_EQ(ctrl.Admit(1).retry_after_ms, 5.0);  // floor
  EXPECT_EQ(ctrl.shed_total(), 4u);

  // One sub-target observation resets the control law completely.
  ctrl.ObserveSojourn(1.0);
  EXPECT_FALSE(ctrl.shedding());
  EXPECT_TRUE(ctrl.Admit(1).admit);
  EXPECT_EQ(ctrl.shed_total(), 4u);
}

TEST(OverloadAdmissionTest, CostCeilingShedsExpensiveBatches) {
  AdmissionControlConfig cfg;
  cfg.max_estimated_cost_ms = 100.0;
  cfg.retry_after_floor_ms = 1.0;
  AdmissionController ctrl(cfg);

  // Unprimed EWMA: no cost estimate, everything admits.
  EXPECT_TRUE(ctrl.Admit(1000000).admit);

  // One committed round primes the per-edge estimate: 1000ms / 10 edges.
  ctrl.ObserveRound(10, 1000.0);
  EXPECT_DOUBLE_EQ(ctrl.per_edge_ewma_ms(), 100.0);

  AdmissionDecision d = ctrl.Admit(10);  // est 1000ms > 100ms ceiling
  EXPECT_FALSE(d.admit);
  EXPECT_STREQ(d.reason, "cost");
  EXPECT_DOUBLE_EQ(d.retry_after_ms, 900.0);  // scales with the overage
  EXPECT_TRUE(ctrl.Admit(1).admit);           // est 100ms, at the ceiling
  EXPECT_EQ(ctrl.shed_total(), 1u);
}

TEST(OverloadAdmissionTest, ColdStartRetryHintIsClamped) {
  // A cold EWMA primed by one slow warm-up round used to produce retry
  // hints measured in minutes or hours. The cap bounds the hint; the floor
  // still applies underneath it.
  AdmissionControlConfig cfg;
  cfg.max_estimated_cost_ms = 100.0;
  cfg.retry_after_floor_ms = 50.0;
  cfg.retry_after_cap_ms = 30000.0;
  AdmissionController ctrl(cfg);

  // One pathological first round: 2 minutes for a single edge.
  ctrl.ObserveRound(1, 120000.0);
  AdmissionDecision d = ctrl.Admit(1000);  // est 120s/edge * 1000 edges
  ASSERT_FALSE(d.admit);
  EXPECT_STREQ(d.reason, "cost");
  EXPECT_DOUBLE_EQ(d.retry_after_ms, 30000.0);

  // A barely-over-ceiling estimate hits the floor instead of a sub-floor
  // overage hint.
  AdmissionControlConfig small = cfg;
  small.retry_after_floor_ms = 50.0;
  AdmissionController ctrl2(small);
  ctrl2.ObserveRound(100, 10100.0);  // 101ms/edge
  AdmissionDecision d2 = ctrl2.Admit(1);
  ASSERT_FALSE(d2.admit);
  EXPECT_DOUBLE_EQ(d2.retry_after_ms, 50.0);

  // Degenerate configs sanitize instead of emitting garbage: a negative
  // floor clamps to zero, a cap below the floor clamps to the floor.
  AdmissionControlConfig weird;
  weird.max_estimated_cost_ms = 100.0;
  weird.retry_after_floor_ms = -10.0;
  weird.retry_after_cap_ms = 1000.0;
  AdmissionController ctrl3(weird);
  ctrl3.ObserveRound(1, 1e9);
  AdmissionDecision d3 = ctrl3.Admit(1000);
  ASSERT_FALSE(d3.admit);
  EXPECT_GE(d3.retry_after_ms, 0.0);
  EXPECT_LE(d3.retry_after_ms, 1000.0);

  AdmissionControlConfig inverted;
  inverted.max_estimated_cost_ms = 100.0;
  inverted.retry_after_floor_ms = 500.0;
  inverted.retry_after_cap_ms = 1.0;  // below the floor
  AdmissionController ctrl4(inverted);
  ctrl4.ObserveRound(1, 1e9);
  AdmissionDecision d4 = ctrl4.Admit(1000);
  ASSERT_FALSE(d4.admit);
  EXPECT_DOUBLE_EQ(d4.retry_after_ms, 500.0);
}

TEST(OverloadAdmissionTest, DisabledControllerPassesEverything) {
  AdmissionControlConfig cfg;
  cfg.enabled = false;
  cfg.target_sojourn_ms = 0.001;
  cfg.max_estimated_cost_ms = 0.001;
  AdmissionController ctrl(cfg);
  ctrl.ObserveSojourn(1e9);
  ctrl.ObserveSojourn(1e9);
  ctrl.ObserveRound(1, 1e9);
  EXPECT_TRUE(ctrl.Admit(1000000).admit);
  EXPECT_FALSE(ctrl.shedding());
  EXPECT_EQ(ctrl.shed_total(), 0u);
}

// --- CircuitBreaker ---------------------------------------------------------

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndProbesClosed) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_cooldown_ms = 50.0;
  CircuitBreaker breaker(cfg);

  EXPECT_TRUE(breaker.AllowAttempt());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  // A success clears the streak: two more failures are not enough...
  EXPECT_FALSE(breaker.RecordSuccess(1.0));
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_FALSE(breaker.RecordFailure());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // ...but the third consecutive one trips it open.
  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_GT(breaker.RetryAfterMs(), 0.0);
  EXPECT_FALSE(breaker.AllowAttempt());  // cooldown not elapsed

  // Cooldown elapsed: the next attempt is the half-open probe; its success
  // closes the breaker and clears the hint.
  std::this_thread::sleep_for(milliseconds(60));
  EXPECT_TRUE(breaker.AllowAttempt());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.RecordSuccess(1.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_DOUBLE_EQ(breaker.RetryAfterMs(), 0.0);
}

TEST(CircuitBreakerTest, FailedProbeDoublesCooldownUntilSuccessResets) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_cooldown_ms = 30.0;
  cfg.cooldown_multiplier = 2.0;
  cfg.cooldown_max_ms = 5000.0;
  CircuitBreaker breaker(cfg);

  EXPECT_TRUE(breaker.RecordFailure());
  EXPECT_DOUBLE_EQ(breaker.RetryAfterMs(), 30.0);

  std::this_thread::sleep_for(milliseconds(40));
  EXPECT_TRUE(breaker.AllowAttempt());  // the probe
  EXPECT_TRUE(breaker.RecordFailure()); // failed probe: reopen, doubled
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_DOUBLE_EQ(breaker.RetryAfterMs(), 60.0);
  EXPECT_FALSE(breaker.AllowAttempt());

  std::this_thread::sleep_for(milliseconds(70));
  EXPECT_TRUE(breaker.AllowAttempt());
  EXPECT_TRUE(breaker.RecordSuccess(1.0));  // successful probe resets
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.RecordFailure());     // next trip: original cooldown
  EXPECT_DOUBLE_EQ(breaker.RetryAfterMs(), 30.0);
}

TEST(CircuitBreakerTest, LatencySloStreakTrips) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 0;  // failure trip off: only the SLO applies
  cfg.latency_slo_ms = 10.0;
  cfg.slo_violation_threshold = 2;
  CircuitBreaker breaker(cfg);

  EXPECT_FALSE(breaker.RecordSuccess(20.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // A fast round in between resets the streak.
  EXPECT_FALSE(breaker.RecordSuccess(1.0));
  EXPECT_FALSE(breaker.RecordSuccess(20.0));
  EXPECT_TRUE(breaker.RecordSuccess(20.0));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
}

// --- DegradationLadder ------------------------------------------------------

TEST(DegradationLadderTest, EscalatesOneRungPerEvalAndDescendsWithDwell) {
  DegradationLadderConfig cfg;  // defaults: dwell 2, margin 0.08
  DegradationLadder ladder(cfg);

  // Saturated pressure walks up exactly one rung per evaluation — a spike
  // cannot leap straight to lame-duck.
  const OverloadState up[] = {
      OverloadState::kTrimCache,    OverloadState::kTightenBudgets,
      OverloadState::kCoalesceOnly, OverloadState::kShedWork,
      OverloadState::kLameDuck,     OverloadState::kLameDuck};
  for (OverloadState expected : up) {
    EXPECT_EQ(ladder.Evaluate(0.99), expected);
  }
  EXPECT_TRUE(ladder.AtLeast(OverloadState::kCoalesceOnly));

  // Recovery needs the dwell: two sub-exit evaluations per rung down.
  const OverloadState down[] = {
      OverloadState::kLameDuck,     OverloadState::kShedWork,
      OverloadState::kShedWork,     OverloadState::kCoalesceOnly,
      OverloadState::kCoalesceOnly, OverloadState::kTightenBudgets,
      OverloadState::kTightenBudgets, OverloadState::kTrimCache,
      OverloadState::kTrimCache,    OverloadState::kHealthy};
  for (OverloadState expected : down) {
    EXPECT_EQ(ladder.Evaluate(0.0), expected);
  }
  EXPECT_EQ(ladder.state(), OverloadState::kHealthy);
  EXPECT_EQ(ladder.evals(), 16u);
}

TEST(DegradationLadderTest, HysteresisHoldsInsideTheExitMargin) {
  DegradationLadder ladder{DegradationLadderConfig()};
  EXPECT_EQ(ladder.Evaluate(0.72), OverloadState::kTrimCache);
  // Exit line for kTrimCache is 0.70 - 0.08 = 0.62: readings above it hold
  // the rung no matter how long they persist.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ladder.Evaluate(0.66), OverloadState::kTrimCache);
  }
  // Below the exit line the dwell still applies.
  EXPECT_EQ(ladder.Evaluate(0.5), OverloadState::kTrimCache);
  EXPECT_EQ(ladder.Evaluate(0.5), OverloadState::kHealthy);
}

TEST(DegradationLadderTest, TransitionLogIsBounded) {
  OverloadTransitionLog log(3);
  for (int i = 0; i < 5; ++i) {
    OverloadTransition t;
    t.source = "ladder";
    t.from = std::to_string(i);
    t.to = std::to_string(i + 1);
    log.Append(std::move(t));
  }
  EXPECT_EQ(log.total(), 5u);
  std::vector<OverloadTransition> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.front().from, "2");  // oldest two evicted
  EXPECT_EQ(entries.back().to, "5");
}

// --- MemoryBudget -----------------------------------------------------------

TEST(MemoryBudgetTest, TracksComponentsAndSyntheticPressure) {
  MemoryBudget budget(1000);
  budget.Register("a", [] { return size_t{300}; });
  budget.Register("b", [] { return size_t{200}; });
  budget.SetSyntheticBytes(100);

  MemoryBudget::Sample s = budget.SampleNow();
  EXPECT_EQ(s.total_bytes, 600u);
  EXPECT_EQ(s.synthetic_bytes, 100u);
  EXPECT_DOUBLE_EQ(s.pressure, 0.6);
  ASSERT_EQ(s.components.size(), 2u);
  EXPECT_EQ(budget.last_total_bytes(), 600u);
  EXPECT_DOUBLE_EQ(budget.last_pressure(), 0.6);

  budget.Unregister("a");
  budget.SetSyntheticBytes(0);
  s = budget.SampleNow();
  EXPECT_EQ(s.total_bytes, 200u);
  EXPECT_DOUBLE_EQ(s.pressure, 0.2);

  // No budget: pressure is defined as 0 (the watchdog stays quiet).
  budget.set_budget_bytes(0);
  s = budget.SampleNow();
  EXPECT_DOUBLE_EQ(s.pressure, 0.0);
}

// --- ChaosSchedule ----------------------------------------------------------

TEST(ChaosScheduleTest, SameSeedReplaysIdentically) {
  chaos::ChaosSchedule::Config cfg;
  cfg.seed = 4242;
  cfg.steps = 64;
  chaos::ChaosSchedule a(cfg), b(cfg);
  EXPECT_EQ(a.Describe(), b.Describe());
  ASSERT_EQ(a.events().size(), b.events().size());
  for (size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].Describe(), b.events()[i].Describe());
  }

  chaos::ChaosSchedule::Config other = cfg;
  other.seed = 4243;
  chaos::ChaosSchedule c(other);
  EXPECT_NE(a.Describe(), c.Describe());
}

TEST(ChaosScheduleTest, EveryScheduleEndsCalm) {
  chaos::ChaosSchedule::Config cfg;
  cfg.seed = 7;
  cfg.steps = 16;
  chaos::ChaosSchedule s(cfg);
  ASSERT_GE(s.events().size(), 2u);
  const auto& tail = s.events();
  EXPECT_EQ(tail[tail.size() - 2].kind, chaos::ChaosEvent::Kind::kClearPressure);
  EXPECT_EQ(tail[tail.size() - 1].kind, chaos::ChaosEvent::Kind::kQuiesce);
  for (const chaos::ChaosEvent& e : s.events()) {
    EXPECT_LE(e.step, cfg.steps);
    if (e.kind == chaos::ChaosEvent::Kind::kMemoryPressure) {
      EXPECT_LE(e.pressure_bytes, cfg.max_pressure_bytes);
    }
    if (e.kind == chaos::ChaosEvent::Kind::kLoadBurst) {
      EXPECT_GE(e.burst_batches, 1);
      EXPECT_LE(e.burst_batches, cfg.max_burst_batches);
    }
  }
}

// --- BoundedUpdateQueue overload hooks --------------------------------------

TEST(UpdateQueueOverloadTest, BlockedPushTimesOutWithDeadline) {
  BoundedUpdateQueue q(1, OverflowPolicy::kBlock);
  EXPECT_EQ(q.Push(BatchUpdate()), BoundedUpdateQueue::PushOutcome::kQueued);

  const auto start = steady_clock::now();
  const auto outcome =
      q.Push(BatchUpdate(), nullptr, nullptr, milliseconds(50));
  const double waited_ms =
      std::chrono::duration<double, std::milli>(steady_clock::now() - start)
          .count();
  EXPECT_EQ(outcome, BoundedUpdateQueue::PushOutcome::kRejectedTimeout);
  EXPECT_GE(waited_ms, 45.0);
  EXPECT_EQ(q.admitted(), 1u);
}

TEST(UpdateQueueOverloadTest, DrainOnlyWakesBlockedProducers) {
  BoundedUpdateQueue q(1, OverflowPolicy::kBlock);
  EXPECT_EQ(q.Push(BatchUpdate()), BoundedUpdateQueue::PushOutcome::kQueued);

  std::atomic<int> outcome{-1};
  std::thread producer([&] {
    outcome.store(static_cast<int>(q.Push(BatchUpdate())),
                  std::memory_order_release);
  });
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_EQ(outcome.load(std::memory_order_acquire), -1);  // still blocked
  q.SetDrainOnly();
  producer.join();
  EXPECT_EQ(outcome.load(std::memory_order_acquire),
            static_cast<int>(BoundedUpdateQueue::PushOutcome::kRejectedDraining));
  // New pushes bounce immediately; the queued item stays poppable.
  EXPECT_EQ(q.Push(BatchUpdate()),
            BoundedUpdateQueue::PushOutcome::kRejectedDraining);
  BoundedUpdateQueue::Item item;
  EXPECT_TRUE(q.Pop(&item, milliseconds(100)));
}

TEST(UpdateQueueOverloadTest, PolicyOverrideWakesBlockedProducerIntoCoalesce) {
  BoundedUpdateQueue q(1, OverflowPolicy::kBlock);
  EXPECT_EQ(q.Push(BatchUpdate()), BoundedUpdateQueue::PushOutcome::kQueued);

  std::atomic<int> outcome{-1};
  std::thread producer([&] {
    outcome.store(static_cast<int>(q.Push(BatchUpdate())),
                  std::memory_order_release);
  });
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_EQ(outcome.load(std::memory_order_acquire), -1);
  q.SetPolicyOverride(OverflowPolicy::kCoalesce);
  producer.join();
  EXPECT_EQ(outcome.load(std::memory_order_acquire),
            static_cast<int>(BoundedUpdateQueue::PushOutcome::kCoalesced));
  EXPECT_EQ(q.effective_policy(), OverflowPolicy::kCoalesce);
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.admitted(), 2u);

  q.ClearPolicyOverride();
  EXPECT_EQ(q.effective_policy(), OverflowPolicy::kBlock);

  BoundedUpdateQueue::Item item;
  ASSERT_TRUE(q.Pop(&item, milliseconds(100)));
  EXPECT_EQ(item.parts.size(), 2u);  // the blocked push became a part
}

TEST(UpdateQueueOverloadTest, ApproxBytesTracksContents) {
  BoundedUpdateQueue q(4, OverflowPolicy::kReject);
  EXPECT_EQ(q.ApproxBytes(), 0u);

  BatchUpdate batch;
  batch.deletions = {1, 2, 3};
  const size_t expected = ApproxBatchBytes(batch);
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(q.Push(std::move(batch)), BoundedUpdateQueue::PushOutcome::kQueued);
  EXPECT_EQ(q.ApproxBytes(), expected);

  BoundedUpdateQueue::Item item;
  ASSERT_TRUE(q.Pop(&item, milliseconds(100)));
  EXPECT_EQ(q.ApproxBytes(), 0u);
}

// --- EngineHost: overload surfaces ------------------------------------------

TEST(EngineHostOverloadTest, LameDuckShedsSubmittersAndRecovers) {
  TempDir dir("midas_overload_lameduck");
  MoleculeGenerator gen(313);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();

  const size_t kBudget = size_t{1} << 30;
  HostConfig cfg;
  cfg.queue_capacity = 8;
  cfg.overload.memory_budget_bytes = kBudget;
  // Keep CoDel out of the way: only the ladder should act here.
  cfg.overload.admission.target_sojourn_ms = 1e9;
  EngineHost host(std::move(engine), dir.path, cfg);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  // Saturate the watchdog with synthetic pressure: the ladder walks to
  // lame-duck one rung per writer tick.
  host.memory_budget().SetSyntheticBytes(kBudget + (kBudget >> 3));
  ASSERT_TRUE(PollUntil(
      [&] { return host.overload_state() == OverloadState::kLameDuck; },
      20000));

  LabeledBatch lb = MakeBatch(gen, data, base, 1, false);
  SubmitResult shed = host.Submit(std::move(lb.batch), lb.labels);
  EXPECT_EQ(shed.status, SubmitStatus::kShedOverload);
  EXPECT_EQ(shed.shed_reason, "ladder");
  EXPECT_GT(shed.retry_after_ms, 0.0);
  EXPECT_GE(host.stats().shed_overload, 1u);

  // Pressure gone: the ladder dwells back down and submissions flow again.
  host.memory_budget().SetSyntheticBytes(0);
  ASSERT_TRUE(PollUntil(
      [&] { return host.overload_state() == OverloadState::kHealthy; },
      30000));
  lb = MakeBatch(gen, data, base, 1, false);
  SubmitResult ok = host.Submit(std::move(lb.batch), lb.labels);
  EXPECT_TRUE(ok.accepted());
  EXPECT_TRUE(host.WaitIdle(milliseconds(60000)));
  EXPECT_FALSE(host.dead());

  // The ladder's walk is in the transition log, in order.
  bool saw_lame_duck = false;
  for (const OverloadTransition& t : host.overload_transitions().Snapshot()) {
    if (t.source == "ladder" && t.to == "lame_duck") saw_lame_duck = true;
  }
  EXPECT_TRUE(saw_lame_duck);
  host.Stop();
}

TEST(EngineHostOverloadTest, BlockedSubmitTimesOutWithRetryHint) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  TempDir dir("midas_overload_submit_timeout");
  FailpointGuard guard;
  MoleculeGenerator gen(414);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();

  HostConfig cfg;
  cfg.queue_capacity = 1;
  cfg.overflow = OverflowPolicy::kBlock;
  cfg.submit_timeout_ms = 25.0;
  cfg.backoff_initial_ms = 1.0;
  // The breaker would stop the writer (and shed upstream) long before a
  // blocked push times out; this test wants the queue to stay full.
  cfg.overload.breaker.enabled = false;
  EngineHost host(std::move(engine), dir.path, cfg);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  // Every round fails all attempts and recovers in between: the writer is
  // pinned long enough that a blocked producer hits its deadline.
  fail::Arm("serve.round.before_apply", 0, -1);
  bool timed_out = false;
  double hint = 0.0;
  for (int i = 0; i < 20 && !timed_out; ++i) {
    LabeledBatch lb = MakeBatch(gen, data, base, 1, false);
    SubmitResult r = host.Submit(std::move(lb.batch), lb.labels);
    if (r.status == SubmitStatus::kRejectedTimeout) {
      timed_out = true;
      hint = r.retry_after_ms;
    }
  }
  EXPECT_TRUE(timed_out);
  EXPECT_DOUBLE_EQ(hint, 25.0);
  EXPECT_GE(host.stats().submit_timeouts, 1u);

  fail::DisarmAll();
  host.Stop();
}

// --- Coalesce-only under racing producers -----------------------------------

// 4 producers race into a host whose ladder was forced to coalesce-only.
// Every accepted batch must stay causally attributable: its trace id shows
// up exactly once across the committed rounds' primary ids and links, and
// the admission counters must reconcile with the panel the rounds produced.
TEST(OverloadCoalesceRaceTest, CoalesceUnderPressureKeepsTraceLinks) {
  TempDir dir("midas_overload_coalesce_race");
  MoleculeGenerator gen(515);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();
  const size_t initial = base.size();

  const size_t kBudget = size_t{1} << 30;
  HostConfig cfg;
  cfg.queue_capacity = 1;  // force overflow: coalescing must do the absorbing
  cfg.overflow = OverflowPolicy::kBlock;
  cfg.overload.memory_budget_bytes = kBudget;
  cfg.overload.admission.target_sojourn_ms = 1e9;
  cfg.flight.capacity = 1024;  // every round's record must survive the test
  EngineHost host(std::move(engine), dir.path, cfg);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  // Drive the ladder to exactly kCoalesceOnly: 0.90 of budget sits between
  // the coalesce rung (0.88) and the shed rung (0.94).
  host.memory_budget().SetSyntheticBytes(
      static_cast<size_t>(0.90 * static_cast<double>(kBudget)));
  ASSERT_TRUE(PollUntil(
      [&] { return host.overload_state() == OverloadState::kCoalesceOnly; },
      20000));

  // Batches are pre-generated serially (the generator is not a shared-state
  // API); the race under test is Submit vs Submit vs the writer.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 6;
  std::vector<std::vector<LabeledBatch>> work(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      work[p].push_back(MakeBatch(gen, data, base, 1, false));
    }
  }

  std::vector<std::vector<std::string>> trace_ids(kProducers);
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (LabeledBatch& lb : work[p]) {
        SubmitResult r = host.Submit(std::move(lb.batch), lb.labels);
        // Coalesce-only means no producer is ever turned away or parked:
        // full queue -> merged into the newest pending item.
        ASSERT_TRUE(r.accepted());
        accepted.fetch_add(1, std::memory_order_relaxed);
        trace_ids[p].push_back(r.trace_id);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  ASSERT_EQ(accepted.load(), kProducers * kPerProducer);
  ASSERT_TRUE(host.WaitIdle(milliseconds(120000)));

  // Every batch applied: the panel's database grew by exactly one graph per
  // submission, however the rounds were merged.
  EXPECT_EQ(host.snapshot()->db_size,
            initial + static_cast<size_t>(kProducers * kPerProducer));

  HostStats s = host.stats();
  EXPECT_EQ(s.admitted, static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(s.rejected_overflow, 0u);
  EXPECT_EQ(s.quarantined, 0u);
  // Rounds + merged parts reconcile with admissions.
  EXPECT_EQ(s.rounds_ok + s.coalesced,
            static_cast<uint64_t>(kProducers * kPerProducer));

  // Causal links: each accepted trace id appears exactly once across the
  // committed records — as a round's primary id or in a round's links.
  std::vector<std::shared_ptr<const obs::FlightRecord>> records =
      host.flights().Snapshot();
  uint64_t coalesced_parts = 0;
  std::map<std::string, int> seen;
  for (const auto& rec : records) {
    if (rec->outcome != "ok") continue;
    coalesced_parts += rec->coalesced_parts;
    seen[rec->trace_id]++;
    for (const std::string& link : rec->links) seen[link]++;
  }
  EXPECT_EQ(coalesced_parts, s.coalesced);
  for (int p = 0; p < kProducers; ++p) {
    for (const std::string& id : trace_ids[p]) {
      EXPECT_EQ(seen[id], 1) << "trace " << id
                             << " lost or duplicated across merged rounds";
    }
  }

  // Recovery: pressure gone, ladder dwells home, policy override lifts.
  host.memory_budget().SetSyntheticBytes(0);
  ASSERT_TRUE(PollUntil(
      [&] { return host.overload_state() == OverloadState::kHealthy; },
      30000));
  EXPECT_FALSE(host.dead());
  host.Stop();
}

// --- Deterministic chaos drill ----------------------------------------------

// One full overload drill: a seeded chaos schedule (bursts + background
// pressure), then a scripted finale that walks the ladder to coalesce-only,
// trips the breaker open via failpoints, and recovers to healthy. Returns
// the host's transition log as "source:from->to" strings.
std::vector<std::string> RunOverloadDrill(uint64_t seed, int run,
                                          size_t* max_tracked_bytes) {
  TempDir dir("midas_overload_drill_run" + std::to_string(run));
  FailpointGuard guard;
  MoleculeGenerator gen(777);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();

  const size_t kBudget = size_t{1} << 30;
  HostConfig cfg;
  cfg.queue_capacity = 8;
  cfg.backoff_initial_ms = 1.0;
  cfg.overload.memory_budget_bytes = kBudget;
  // CoDel depends on wall-clock queue waits; park it so the drill's
  // transitions are a pure function of the scripted pressure + failpoints.
  cfg.overload.admission.target_sojourn_ms = 1e9;
  cfg.overload.breaker.failure_threshold = 2;
  cfg.overload.breaker.open_cooldown_ms = 800.0;
  EngineHost host(std::move(engine), dir.path, cfg);
  std::string err;
  EXPECT_TRUE(host.Start(&err)) << err;

  size_t max_bytes = 0;
  auto note_bytes = [&] {
    max_bytes = std::max(max_bytes, host.memory_budget().last_total_bytes());
  };
  auto submit_one = [&] {
    LabeledBatch lb = MakeBatch(gen, data, base, 1, false);
    return host.Submit(std::move(lb.batch), lb.labels);
  };

  // Phase 1: the seeded schedule. Pressure is capped below the first ladder
  // rung (0.60 < 0.70 of budget) so this phase shakes the host — bursts,
  // background pressure, per-step quiesce — without any transition the
  // finale's strict comparison would depend on.
  chaos::ChaosSchedule::Config ccfg;
  ccfg.seed = seed;
  ccfg.steps = 6;
  ccfg.burst_prob = 0.5;
  ccfg.pressure_prob = 0.5;
  ccfg.failpoint_prob = 0.0;
  ccfg.max_burst_batches = 3;
  ccfg.max_pressure_bytes = static_cast<size_t>(0.60 * static_cast<double>(kBudget));
  chaos::ChaosSchedule schedule(ccfg);
  if (run == 0) {
    std::printf("%s", schedule.Describe().c_str());
  }
  for (uint64_t step = 0; step <= schedule.steps(); ++step) {
    for (const chaos::ChaosEvent& e : schedule.EventsAt(step)) {
      switch (e.kind) {
        case chaos::ChaosEvent::Kind::kArmFailpoint:
          fail::ArmSpec(e.failpoint_spec);
          break;
        case chaos::ChaosEvent::Kind::kLoadBurst:
          for (int i = 0; i < e.burst_batches; ++i) {
            EXPECT_TRUE(submit_one().accepted());
          }
          break;
        case chaos::ChaosEvent::Kind::kMemoryPressure:
          host.memory_budget().SetSyntheticBytes(e.pressure_bytes);
          break;
        case chaos::ChaosEvent::Kind::kClearPressure:
          host.memory_budget().SetSyntheticBytes(0);
          break;
        case chaos::ChaosEvent::Kind::kQuiesce:
          EXPECT_TRUE(host.WaitIdle(milliseconds(120000)));
          break;
      }
    }
    EXPECT_TRUE(host.WaitIdle(milliseconds(120000)));
    note_bytes();
  }

  // Phase 2 (scripted finale, part of every seeded run): walk the ladder to
  // exactly coalesce-only...
  host.memory_budget().SetSyntheticBytes(
      static_cast<size_t>(0.91 * static_cast<double>(kBudget)));
  EXPECT_TRUE(PollUntil(
      [&] {
        note_bytes();
        return host.overload_state() == OverloadState::kCoalesceOnly;
      },
      30000));
  EXPECT_TRUE(submit_one().accepted());  // degraded, but still serving
  EXPECT_TRUE(host.WaitIdle(milliseconds(120000)));

  // ...trip the breaker: two consecutive failed attempts reach the
  // threshold mid-batch; the third attempt commits the batch while the
  // breaker stays open until its cooldown probe.
  if (fail::CompiledIn()) {
    fail::Arm("serve.round.before_apply", 0, 2);
    EXPECT_TRUE(submit_one().accepted());
    EXPECT_TRUE(host.WaitIdle(milliseconds(120000)));
    fail::DisarmAll();
    SubmitResult r = submit_one();
    if (r.status == SubmitStatus::kShedOverload) {
      // Submitted inside the cooldown window: typed shed + retry hint.
      EXPECT_EQ(r.shed_reason, "breaker");
      EXPECT_GT(r.retry_after_ms, 0.0);
    } else {
      EXPECT_TRUE(r.accepted());
    }
    // The cooldown elapses, the next batch is the half-open probe, and its
    // success closes the breaker.
    EXPECT_TRUE(PollUntil(
        [&] {
          return host.breaker().state() != CircuitBreaker::State::kOpen;
        },
        30000));
    EXPECT_TRUE(submit_one().accepted());
    EXPECT_TRUE(host.WaitIdle(milliseconds(120000)));
    EXPECT_TRUE(PollUntil(
        [&] {
          return host.breaker().state() == CircuitBreaker::State::kClosed;
        },
        30000));
  }

  // ...and recover: pressure cleared, ladder dwells back to healthy.
  host.memory_budget().SetSyntheticBytes(0);
  EXPECT_TRUE(PollUntil(
      [&] { return host.overload_state() == OverloadState::kHealthy; },
      30000));
  note_bytes();
  EXPECT_TRUE(submit_one().accepted());
  EXPECT_TRUE(host.WaitIdle(milliseconds(120000)));

  // End-of-drill health: the host must hand back a fully serving instance.
  EXPECT_FALSE(host.dead());
  EXPECT_EQ(host.overload_state(), OverloadState::kHealthy);
  EXPECT_EQ(host.breaker().state(), CircuitBreaker::State::kClosed);

  std::vector<std::string> transitions;
  for (const OverloadTransition& t : host.overload_transitions().Snapshot()) {
    transitions.push_back(t.source + ":" + t.from + "->" + t.to);
  }
  host.Stop();
  if (max_tracked_bytes != nullptr) *max_tracked_bytes = max_bytes;
  return transitions;
}

TEST(OverloadDrillTest, SeededDrillReplaysIdenticalTransitions) {
  const uint64_t kSeed = 42;
  std::printf("overload drill seed=%llu (set in-source to replay)\n",
              static_cast<unsigned long long>(kSeed));
  size_t max_bytes1 = 0, max_bytes2 = 0;
  std::vector<std::string> run1 = RunOverloadDrill(kSeed, 0, &max_bytes1);
  std::vector<std::string> run2 = RunOverloadDrill(kSeed, 1, &max_bytes2);

  // The drill's whole point: the same seed produces the same resilience
  // story, transition for transition.
  EXPECT_EQ(run1, run2);

  // The ladder visited >= 3 degraded states (in escalation order) and the
  // breaker opened and closed again.
  auto count = [&](const std::string& needle) {
    int n = 0;
    for (const std::string& t : run1) {
      if (t == needle) ++n;
    }
    return n;
  };
  EXPECT_GE(count("ladder:healthy->trim_cache"), 1);
  EXPECT_GE(count("ladder:trim_cache->tighten_budgets"), 1);
  EXPECT_GE(count("ladder:tighten_budgets->coalesce_only"), 1);
  EXPECT_GE(count("ladder:trim_cache->healthy"), 1);
  if (fail::CompiledIn()) {
    EXPECT_GE(count("breaker:closed->open"), 1);
    EXPECT_GE(count("breaker:open->half_open"), 1);
    EXPECT_GE(count("breaker:half_open->closed"), 1);
  }

  // The watchdog's contract: tracked bytes never exceeded the budget.
  const size_t kBudget = size_t{1} << 30;
  EXPECT_LE(max_bytes1, kBudget);
  EXPECT_LE(max_bytes2, kBudget);
}

}  // namespace
}  // namespace serve
}  // namespace midas
