// Parameterized sweeps: the core invariants must hold across the whole
// configuration grid, not just the defaults — FCT maintenance equivalence
// for any (sup_min, max_edges), clustering validity for any (k, N),
// selection budget compliance for any (gamma, eta-range), and the swap
// guarantees for any (kappa, lambda).

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "midas/cluster/clustering.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/datagen/workload.h"
#include "midas/maintain/swap.h"
#include "midas/select/catapult.h"
#include "test_util.h"

namespace midas {
namespace {

GraphDatabase SweepDatabase(uint64_t seed = 31) {
  MoleculeGenerator gen(seed);
  return gen.Generate(MoleculeGenerator::EmolLike(35));
}

// ---------------------------------------------------------------------------
// FCT maintenance equivalence across mining configurations.

class FctConfigSweep
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(FctConfigSweep, MaintainEqualsScratch) {
  auto [sup_min, max_edges] = GetParam();
  MoleculeGenerator gen(77);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(35);
  GraphDatabase db = gen.Generate(data);
  FctSet::Config cfg;
  cfg.sup_min = sup_min;
  cfg.max_edges = max_edges;

  FctSet maintained = FctSet::Mine(db, cfg);
  BatchUpdate deletions = gen.GenerateDeletions(db, 4);
  for (GraphId id : deletions.deletions) db.Remove(id);
  maintained.MaintainDelete(deletions.deletions, db.size());
  BatchUpdate additions = gen.GenerateAdditions(db, data, 8, true);
  std::vector<GraphId> added = db.ApplyBatch(additions);
  maintained.MaintainAdd(db, added);

  FctSet scratch = FctSet::Mine(db, cfg);
  std::map<std::string, size_t> a;
  std::map<std::string, size_t> b;
  for (const FctEntry* e : maintained.FrequentClosedTrees()) {
    a[e->canon] = e->occurrences.size();
  }
  for (const FctEntry* e : scratch.FrequentClosedTrees()) {
    b[e->canon] = e->occurrences.size();
  }
  EXPECT_EQ(a, b) << "sup_min=" << sup_min << " max_edges=" << max_edges;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FctConfigSweep,
    ::testing::Combine(::testing::Values(0.3, 0.5, 0.7),
                       ::testing::Values(size_t{2}, size_t{3})));

// ---------------------------------------------------------------------------
// Clustering validity across (k, N).

class ClusteringConfigSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(ClusteringConfigSweep, PartitionAndSizeBound) {
  auto [k, max_size] = GetParam();
  GraphDatabase db = SweepDatabase();
  FctSet fcts = FctSet::Mine(db, {0.4, 3, 20000});
  ClusterSet::Config cfg;
  cfg.num_coarse = k;
  cfg.max_cluster_size = max_size;
  Rng rng(3);
  ClusterSet clusters = ClusterSet::Build(db, fcts, cfg, rng);

  size_t total = 0;
  for (const auto& [cid, c] : clusters.clusters()) {
    EXPECT_LE(c.members.size(), max_size);
    EXPECT_FALSE(c.members.empty());
    total += c.members.size();
  }
  EXPECT_EQ(total, db.size()) << "k=" << k << " N=" << max_size;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ClusteringConfigSweep,
    ::testing::Combine(::testing::Values(size_t{1}, size_t{3}, size_t{6}),
                       ::testing::Values(size_t{5}, size_t{15})));

// ---------------------------------------------------------------------------
// Selection budget compliance across (gamma, eta range).

class CatapultConfigSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(CatapultConfigSweep, BudgetHonored) {
  auto [gamma, eta_max] = GetParam();
  GraphDatabase db = SweepDatabase(55);
  FctSet fcts = FctSet::Mine(db, {0.4, 3, 20000});
  ClusterSet::Config cc;
  cc.num_coarse = 3;
  cc.max_cluster_size = 15;
  Rng rng(5);
  ClusterSet clusters = ClusterSet::Build(db, fcts, cc, rng);
  std::map<ClusterId, Csg> csgs;
  for (const auto& [cid, c] : clusters.clusters()) {
    csgs.emplace(cid, Csg::Build(db, c.members));
  }

  CatapultConfig cfg;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = eta_max;
  cfg.budget.gamma = gamma;
  cfg.walk.num_walks = 30;
  cfg.sample_cap = 0;
  PatternSet set = SelectCannedPatterns(db, fcts, csgs, cfg, rng);

  EXPECT_LE(set.size(), gamma);
  std::map<size_t, size_t> per_size;
  for (const auto& [pid, p] : set.patterns()) {
    EXPECT_GE(p.graph.NumEdges(), cfg.budget.eta_min);
    EXPECT_LE(p.graph.NumEdges(), cfg.budget.eta_max);
    ++per_size[p.graph.NumEdges()];
  }
  for (const auto& [eta, count] : per_size) {
    EXPECT_LE(count, cfg.budget.MaxPerSize()) << "eta " << eta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CatapultConfigSweep,
    ::testing::Combine(::testing::Values(size_t{4}, size_t{12}),
                       ::testing::Values(size_t{5}, size_t{8})));

// ---------------------------------------------------------------------------
// Swap guarantees across (kappa, lambda).

class SwapConfigSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SwapConfigSweep, GuaranteesHoldForAnyThresholds) {
  auto [kappa, lambda] = GetParam();
  GraphDatabase db = SweepDatabase(88);
  FctSet fcts = FctSet::Mine(db, {0.4, 3, 20000});
  Rng rng(1);
  CoverageEvaluator eval(db, 0, rng);
  LabelDictionary& d = db.labels();

  PatternSet set;
  for (const Graph& g : {testing_util::Path(d, {"C", "O", "C"}),
                         testing_util::Path(d, {"C", "C", "C"}),
                         testing_util::Star(d, "C", {"O", "H", "H"})}) {
    CannedPattern p;
    p.graph = g;
    RefreshPatternMetrics(p, eval, fcts);
    set.Add(std::move(p));
  }
  double scov_before = set.FScov(eval.universe().size());
  double cog_before = set.FCog();
  size_t size_before = set.size();

  std::vector<Graph> candidates;
  Rng qrng(2);
  for (GraphId id : db.Ids()) {
    if (id % 7 == 0) {
      candidates.push_back(
          RandomConnectedSubgraph(*db.Find(id), 4, qrng));
    }
  }

  SwapConfig cfg;
  cfg.kappa = kappa;
  cfg.lambda = lambda;
  cfg.max_scans = 2;
  cfg.use_swap_alpha_schedule = false;
  MultiScanSwap(set, candidates, eval, fcts, cfg);

  EXPECT_EQ(set.size(), size_before);  // swaps never change cardinality
  EXPECT_GE(set.FScov(eval.universe().size()), scov_before - 1e-12);
  EXPECT_LE(set.FCog(), cog_before + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SwapConfigSweep,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.4),
                       ::testing::Values(0.0, 0.1, 0.4)));

}  // namespace
}  // namespace midas
