#include "midas/obs/telemetry_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "http_test_client.h"

namespace midas {
namespace obs {
namespace {

using midas::testing::HttpGet;
using midas::testing::HttpRaw;
using midas::testing::HttpResult;

TEST(TelemetryServerTest, EphemeralPortServesRegisteredRoute) {
  TelemetryServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "pong";
    return resp;
  });

  std::string err;
  ASSERT_TRUE(server.Start(0, &err)) << err;
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);
  EXPECT_EQ(server.BaseUrl(),
            "http://127.0.0.1:" + std::to_string(server.port()));

  HttpResult r = HttpGet(server.port(), "/ping");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "pong");
  EXPECT_NE(r.headers.find("Content-Length: 4"), std::string::npos);
  EXPECT_NE(r.headers.find("Connection: close"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(TelemetryServerTest, HandlerSeesQueryParameters) {
  TelemetryServer server;
  server.Handle("/spans", [](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = "fmt=" + req.QueryParam("fmt") + " missing=" +
                req.QueryParam("nope");
    return resp;
  });
  ASSERT_TRUE(server.Start(0));

  HttpResult r = HttpGet(server.port(), "/spans?fmt=folded&x=1");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.body, "fmt=folded missing=");
}

TEST(TelemetryServerTest, UnknownPathIs404) {
  TelemetryServer server;
  server.Handle("/known", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0));

  HttpResult r = HttpGet(server.port(), "/other");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 404);
  // The 404 body lists the registered routes (operator convenience).
  EXPECT_NE(r.body.find("/known"), std::string::npos);
}

TEST(TelemetryServerTest, NonGetIs405AndMalformedIs400) {
  TelemetryServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0));

  HttpResult post = HttpRaw(server.port(),
                            "POST /x HTTP/1.1\r\nHost: a\r\n\r\n");
  ASSERT_TRUE(post.ok);
  EXPECT_EQ(post.status, 405);

  HttpResult garbage = HttpRaw(server.port(), "not an http request\r\n\r\n");
  ASSERT_TRUE(garbage.ok);
  EXPECT_EQ(garbage.status, 400);
}

TEST(TelemetryServerTest, HeadReturnsHeadersWithoutBody) {
  TelemetryServer server;
  server.Handle("/m", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "0123456789";
    return resp;
  });
  ASSERT_TRUE(server.Start(0));

  HttpResult r = HttpRaw(server.port(),
                         "HEAD /m HTTP/1.1\r\nHost: a\r\n\r\n");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("Content-Length: 10"), std::string::npos);
  EXPECT_TRUE(r.body.empty());
}

TEST(TelemetryServerTest, ThrowingHandlerIs500NotACrash) {
  TelemetryServer server;
  server.Handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  ASSERT_TRUE(server.Start(0));

  HttpResult r = HttpGet(server.port(), "/boom");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 500);

  // The server thread survived the exception.
  server.Handle("/ok", [](const HttpRequest&) { return HttpResponse{}; });
  EXPECT_EQ(HttpGet(server.port(), "/ok").status, 200);
}

TEST(TelemetryServerTest, ConcurrentGetsAllSucceed) {
  TelemetryServer server;
  std::atomic<int> calls{0};
  server.Handle("/hit", [&calls](const HttpRequest&) {
    calls.fetch_add(1, std::memory_order_relaxed);
    HttpResponse resp;
    resp.body = "ok";
    return resp;
  });
  ASSERT_TRUE(server.Start(0));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&server, &failures] {
      for (int i = 0; i < kPerThread; ++i) {
        HttpResult r = HttpGet(server.port(), "/hit");
        if (!r.ok || r.status != 200 || r.body != "ok") {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(calls.load(), kThreads * kPerThread);
}

TEST(TelemetryServerTest, StopIsIdempotentAndRestartable) {
  TelemetryServer server;
  server.Handle("/r", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start(0));
  int first_port = server.port();
  server.Stop();
  server.Stop();  // idempotent

  // SO_REUSEADDR: rebinding (even the same port) works immediately.
  ASSERT_TRUE(server.Start(first_port));
  EXPECT_EQ(server.port(), first_port);
  EXPECT_EQ(HttpGet(server.port(), "/r").status, 200);
  server.Stop();
}

TEST(TelemetryServerTest, StartFailsCleanlyOnBusyPort) {
  TelemetryServer a;
  a.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(a.Start(0));

  TelemetryServer b;
  std::string err;
  EXPECT_FALSE(b.Start(a.port(), &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(b.running());
}

}  // namespace
}  // namespace obs
}  // namespace midas
