// Exhaustive small-universe tests: enumerate *every* labeled graph on up to
// 3 vertices over a 2-label alphabet and check the GED metric axioms and
// containment relations on all pairs — no sampling gaps.

#include <gtest/gtest.h>

#include <vector>

#include "midas/graph/canonical.h"
#include "midas/graph/ged.h"
#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

// All labeled graphs with exactly n vertices (labels 0/1) and any edge set.
std::vector<Graph> AllGraphs(int n) {
  std::vector<Graph> graphs;
  int label_combos = 1 << n;
  std::vector<std::pair<int, int>> slots;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) slots.push_back({i, j});
  }
  int edge_combos = 1 << slots.size();
  for (int lc = 0; lc < label_combos; ++lc) {
    for (int ec = 0; ec < edge_combos; ++ec) {
      Graph g;
      for (int i = 0; i < n; ++i) {
        g.AddVertex(static_cast<Label>((lc >> i) & 1));
      }
      for (size_t s = 0; s < slots.size(); ++s) {
        if ((ec >> s) & 1) {
          g.AddEdge(static_cast<VertexId>(slots[s].first),
                    static_cast<VertexId>(slots[s].second));
        }
      }
      graphs.push_back(std::move(g));
    }
  }
  return graphs;
}

std::vector<Graph> Universe() {
  std::vector<Graph> all;
  for (int n = 1; n <= 3; ++n) {
    for (Graph& g : AllGraphs(n)) all.push_back(std::move(g));
  }
  return all;  // 2 + 8 + 64 = 74 graphs
}

TEST(ExhaustiveSmallTest, GedMetricAxiomsOnAllPairs) {
  std::vector<Graph> universe = Universe();
  ASSERT_EQ(universe.size(), 74u);
  for (size_t i = 0; i < universe.size(); ++i) {
    for (size_t j = i; j < universe.size(); ++j) {
      const Graph& a = universe[i];
      const Graph& b = universe[j];
      int ab = GedExact(a, b);
      EXPECT_EQ(ab, GedExact(b, a)) << i << "," << j;          // symmetry
      EXPECT_EQ(ab == 0, AreIsomorphic(a, b)) << i << "," << j;  // identity
      EXPECT_LE(GedLowerBound(a, b), ab) << i << "," << j;
      EXPECT_GE(GedUpperBound(a, b), ab) << i << "," << j;
    }
  }
}

TEST(ExhaustiveSmallTest, ContainmentIsAPartialOrderOnConnected) {
  std::vector<Graph> universe;
  for (Graph& g : Universe()) {
    if (g.NumEdges() > 0 && g.IsConnected()) universe.push_back(std::move(g));
  }
  // Reflexive; antisymmetric up to isomorphism; transitive.
  for (const Graph& a : universe) {
    EXPECT_TRUE(ContainsSubgraph(a, a));
  }
  for (const Graph& a : universe) {
    for (const Graph& b : universe) {
      if (ContainsSubgraph(a, b) && ContainsSubgraph(b, a)) {
        EXPECT_TRUE(AreIsomorphic(a, b));
      }
      for (const Graph& c : universe) {
        if (ContainsSubgraph(a, b) && ContainsSubgraph(b, c)) {
          EXPECT_TRUE(ContainsSubgraph(a, c));
        }
      }
    }
  }
}

TEST(ExhaustiveSmallTest, CanonicalStringsPartitionTreesByIsomorphism) {
  std::vector<Graph> trees;
  for (Graph& g : Universe()) {
    if (g.IsTree()) trees.push_back(std::move(g));
  }
  ASSERT_GT(trees.size(), 10u);
  for (const Graph& a : trees) {
    for (const Graph& b : trees) {
      EXPECT_EQ(CanonicalTreeString(a) == CanonicalTreeString(b),
                AreIsomorphic(a, b));
    }
  }
}

TEST(ExhaustiveSmallTest, SignatureNeverSeparatesIsomorphs) {
  std::vector<Graph> universe = Universe();
  for (const Graph& a : universe) {
    for (const Graph& b : universe) {
      if (AreIsomorphic(a, b)) {
        EXPECT_EQ(GraphSignature(a), GraphSignature(b));
      }
    }
  }
}

}  // namespace
}  // namespace midas
