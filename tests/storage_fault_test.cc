// FaultyFileSystem semantics + the durability fixes it exists to prove:
// the POSIX crash model (data needs fsync, names need parent-dir fsync),
// torn snapshot renames, and a host that keeps serving through ENOSPC.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>

#include "midas/common/failpoint.h"
#include "midas/common/io.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/maintain/midas.h"
#include "midas/maintain/snapshot.h"
#include "midas/serve/engine_host.h"

namespace midas {
namespace {

namespace stdfs = std::filesystem;
using std::chrono::milliseconds;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((stdfs::temp_directory_path() / name).string()) {
    stdfs::remove_all(path);
    stdfs::create_directories(path);
  }
  ~TempDir() { stdfs::remove_all(path); }
  std::string path;
};

struct FailpointGuard {
  FailpointGuard() { fail::DisarmAll(); }
  ~FailpointGuard() { fail::DisarmAll(); }
};

MidasConfig TestConfig() {
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.epsilon = 0.0;
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  return cfg;
}

std::unique_ptr<MidasEngine> MakeEngine(MoleculeGenerator& gen,
                                        MoleculeGenConfig& data) {
  auto engine =
      std::make_unique<MidasEngine>(gen.Generate(data), TestConfig());
  engine->Initialize();
  return engine;
}

std::string ReadVia(io::FileSystem& fs, const std::string& path) {
  std::string content;
  EXPECT_EQ(fs.Read(path, &content, nullptr), io::ReadStatus::kOk) << path;
  return content;
}

// --- Crash model: data durability -------------------------------------------

TEST(FaultyFileSystemTest, UnsyncedCreationVanishesOnCrash) {
  FailpointGuard guard;
  TempDir dir("midas_io_append_crash");
  io::FaultyFileSystem ffs;
  const std::string path = dir.path + "/log";

  std::string err;
  auto file = ffs.OpenAppend(path, &err);
  ASSERT_NE(file, nullptr) << err;
  ASSERT_TRUE(file->Append("durable", &err)) << err;
  ASSERT_TRUE(file->Sync(&err)) << err;
  // fsync'd the *data* — but nothing synced the parent directory, so the
  // file's very name is volatile. This is why UpdateJournal::Open SyncDirs
  // the parent before the first record.
  ffs.SimulateCrash();
  EXPECT_FALSE(ffs.Exists(path));
  EXPECT_EQ(ffs.counters().crashes, 1u);
}

TEST(FaultyFileSystemTest, SyncedAppendsSurviveCrash) {
  FailpointGuard guard;
  TempDir dir("midas_io_append_ok");
  io::FaultyFileSystem ffs;
  const std::string path = dir.path + "/log";

  std::string err;
  auto file = ffs.OpenAppend(path, &err);
  ASSERT_NE(file, nullptr) << err;
  ASSERT_TRUE(ffs.SyncDir(dir.path, &err)) << err;  // name durable
  ASSERT_TRUE(file->Append("one", &err)) << err;
  ASSERT_TRUE(file->Sync(&err)) << err;
  ASSERT_TRUE(file->Append("two", &err)) << err;

  ffs.SimulateCrash();
  EXPECT_EQ(ReadVia(ffs, path), "one");  // synced prefix only
}

TEST(FaultyFileSystemTest, FsyncLieLosesDataOnCrash) {
  FailpointGuard guard;
  TempDir dir("midas_io_sync_lie");
  io::FaultyFileSystem ffs;
  const std::string path = dir.path + "/log";

  std::string err;
  auto file = ffs.OpenAppend(path, &err);
  ASSERT_NE(file, nullptr) << err;
  ASSERT_TRUE(ffs.SyncDir(dir.path, &err)) << err;

  fail::Arm("io.sync.lie", 0, 1);
  ASSERT_TRUE(file->Append("ghost", &err)) << err;
  ASSERT_TRUE(file->Sync(&err)) << err;  // reports success, advances nothing
  EXPECT_EQ(ffs.counters().sync_lies, 1u);

  ffs.SimulateCrash();
  EXPECT_EQ(ReadVia(ffs, path), "");  // the "synced" bytes never landed
}

// --- Crash model: name durability -------------------------------------------

TEST(FaultyFileSystemTest, RenameRollsBackWithoutParentSync) {
  FailpointGuard guard;
  TempDir dir("midas_io_rename");
  io::FaultyFileSystem ffs;
  const std::string a = dir.path + "/a";
  const std::string b = dir.path + "/b";

  std::string err;
  ASSERT_TRUE(ffs.WriteFileDurable(a, "payload", &err)) << err;
  ASSERT_TRUE(ffs.SyncDir(dir.path, &err)) << err;  // a's name durable
  ASSERT_TRUE(ffs.Rename(a, b, &err)) << err;
  EXPECT_TRUE(ffs.Exists(b));

  ffs.SimulateCrash();  // the rename was never made durable
  EXPECT_TRUE(ffs.Exists(a));
  EXPECT_FALSE(ffs.Exists(b));
  EXPECT_EQ(ReadVia(ffs, a), "payload");
  EXPECT_GE(ffs.counters().rolled_back_ops, 1u);
}

TEST(FaultyFileSystemTest, SyncDirMakesRenameDurable) {
  FailpointGuard guard;
  TempDir dir("midas_io_rename_sync");
  io::FaultyFileSystem ffs;
  const std::string a = dir.path + "/a";
  const std::string b = dir.path + "/b";

  std::string err;
  ASSERT_TRUE(ffs.WriteFileDurable(a, "payload", &err)) << err;
  ASSERT_TRUE(ffs.SyncDir(dir.path, &err)) << err;
  ASSERT_TRUE(ffs.Rename(a, b, &err)) << err;
  ASSERT_TRUE(ffs.SyncDir(dir.path, &err)) << err;

  ffs.SimulateCrash();
  EXPECT_FALSE(ffs.Exists(a));
  EXPECT_EQ(ReadVia(ffs, b), "payload");
}

TEST(FaultyFileSystemTest, CrashResurrectsUnsyncedRemoval) {
  FailpointGuard guard;
  TempDir dir("midas_io_remove");
  io::FaultyFileSystem ffs;
  const std::string path = dir.path + "/doomed";

  std::string err;
  ASSERT_TRUE(ffs.WriteFileDurable(path, "still here", &err)) << err;
  ASSERT_TRUE(ffs.SyncDir(dir.path, &err)) << err;
  ASSERT_TRUE(ffs.RemoveAll(path, &err)) << err;
  EXPECT_FALSE(ffs.Exists(path));

  ffs.SimulateCrash();  // removal never reached the directory inode
  EXPECT_TRUE(ffs.Exists(path));
  EXPECT_EQ(ReadVia(ffs, path), "still here");
}

// --- Injected errors ---------------------------------------------------------

TEST(FaultyFileSystemTest, EnospcWritesHalfTheContent) {
  FailpointGuard guard;
  TempDir dir("midas_io_enospc");
  io::FaultyFileSystem ffs;
  const std::string path = dir.path + "/partial";

  fail::Arm("io.write_file.enospc", 0, 1);
  std::string err;
  EXPECT_FALSE(ffs.WriteFileDurable(path, "0123456789", &err));
  EXPECT_NE(err.find("No space left"), std::string::npos) << err;
  EXPECT_EQ(ReadVia(ffs, path), "01234");  // the torn half is on disk
  EXPECT_EQ(ffs.counters().short_writes, 1u);
}

TEST(FaultyFileSystemTest, BitFlipCorruptsReads) {
  FailpointGuard guard;
  TempDir dir("midas_io_bitflip");
  io::FaultyFileSystem ffs;
  const std::string path = dir.path + "/data";

  std::string err;
  ASSERT_TRUE(ffs.WriteFileDurable(path, "AAAA", &err)) << err;
  ffs.ArmBitFlip("data", 9);  // bit 1 of byte 1
  std::string seen = ReadVia(ffs, path);
  EXPECT_NE(seen, "AAAA");
  EXPECT_EQ(seen.size(), 4u);
  ffs.ClearBitFlips();
  EXPECT_EQ(ReadVia(ffs, path), "AAAA");  // rot was read-side only
  EXPECT_EQ(ffs.counters().bit_flips, 1u);
}

// --- Snapshot rename dance under crashes ------------------------------------

TEST(StorageFaultTest, NewSnapshotSurvivesCrashAfterSave) {
  FailpointGuard guard;
  TempDir dir("midas_snap_crash_new");
  io::FaultyFileSystem ffs;
  MoleculeGenerator gen(42);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  const std::string snap = dir.path + "/snapshot";

  std::string err;
  ASSERT_TRUE(SaveSnapshot(*engine, snap, &err, &ffs)) << err;

  GraphDatabase copy = engine->db();
  BatchUpdate delta = gen.GenerateAdditions(copy, data, 3, false);
  engine->ApplyUpdate(delta);
  ASSERT_TRUE(SaveSnapshot(*engine, snap, &err, &ffs)) << err;

  // Power cut immediately after SaveSnapshot returned: the second snapshot
  // must be the one that restores — this is exactly the parent-directory
  // fsync after the rename dance. Without it the rename rolls back and
  // recovery silently reopens the seq-0 state.
  ffs.SimulateCrash();
  std::unique_ptr<MidasEngine> restored = RestoreEngine(snap, &err, &ffs);
  ASSERT_NE(restored, nullptr) << err;
  EXPECT_EQ(restored->round_seq(), engine->round_seq());
  EXPECT_EQ(restored->db().size(), engine->db().size());
}

TEST(StorageFaultTest, SyncDirLieFallsBackToOldSnapshot) {
  FailpointGuard guard;
  TempDir dir("midas_snap_crash_lie");
  io::FaultyFileSystem ffs;
  MoleculeGenerator gen(42);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  const std::string snap = dir.path + "/snapshot";

  std::string err;
  ASSERT_TRUE(SaveSnapshot(*engine, snap, &err, &ffs)) << err;
  const uint64_t old_seq = engine->round_seq();

  GraphDatabase copy = engine->db();
  BatchUpdate delta = gen.GenerateAdditions(copy, data, 3, false);
  engine->ApplyUpdate(delta);

  // Every directory fsync from here on lies: the second save's renames are
  // never durable, so the crash unwinds the whole dance back to the first
  // snapshot — torn, but recoverable.
  fail::Arm("io.syncdir.lie", 0, 1000000);
  ASSERT_TRUE(SaveSnapshot(*engine, snap, &err, &ffs)) << err;
  fail::DisarmAll();

  ffs.SimulateCrash();
  std::unique_ptr<MidasEngine> restored = RestoreEngine(snap, &err, &ffs);
  ASSERT_NE(restored, nullptr) << err;
  EXPECT_EQ(restored->round_seq(), old_seq);
}

// --- Host keeps serving through checkpoint ENOSPC ---------------------------

TEST(StorageFaultTest, HostSurvivesEnospcMidCheckpoint) {
  FailpointGuard guard;
  TempDir dir("midas_host_enospc");
  io::FaultyFileSystem ffs;
  MoleculeGenerator gen(7);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();

  serve::HostConfig cfg;
  cfg.queue_capacity = 4;
  cfg.checkpoint_every = 1;  // checkpoint after every round
  cfg.fs = &ffs;
  serve::EngineHost host(std::move(engine), dir.path, cfg);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  // Disk fills mid-checkpoint: the snapshot tmp write tears. The round is
  // already journaled, so this must degrade to a checkpoint_failed event,
  // never to a dead host or a lost panel.
  fail::Arm("io.write_file.enospc", 0, 1);
  GraphDatabase copy = base;
  BatchUpdate b1 = gen.GenerateAdditions(copy, data, 2, false);
  ASSERT_TRUE(host.Submit(std::move(b1), copy.labels()).accepted());
  ASSERT_TRUE(host.WaitIdle(milliseconds(20000)));
  EXPECT_FALSE(host.dead());
  EXPECT_EQ(host.snapshot()->round_seq, 1u);

  // Space comes back: the next round's checkpoint succeeds.
  fail::DisarmAll();
  GraphDatabase copy2 = base;
  BatchUpdate b2 = gen.GenerateAdditions(copy2, data, 2, true);
  ASSERT_TRUE(host.Submit(std::move(b2), copy2.labels()).accepted());
  ASSERT_TRUE(host.WaitIdle(milliseconds(20000)));
  EXPECT_FALSE(host.dead());
  EXPECT_EQ(host.snapshot()->round_seq, 2u);
  EXPECT_GE(host.stats().checkpoints, 1u);
  host.Stop();

  // The durable state the faulty run left behind still verifies + restores.
  RecoverInfo info;
  std::unique_ptr<MidasEngine> recovered =
      RecoverEngine(dir.path, &info, &ffs);
  ASSERT_NE(recovered, nullptr) << info.error;
  EXPECT_EQ(recovered->round_seq(), 2u);
}

}  // namespace
}  // namespace midas
