// Panel decision lineage (obs/lineage.h): ledger unit semantics, swap
// rationale capture at the engine's swap site, and the durability contract —
// the ledger after crash + RecoverEngine is bit-identical to the
// uninterrupted run's, at every journal phase boundary.

#include "midas/obs/lineage.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "midas/common/failpoint.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/maintain/journal.h"
#include "midas/maintain/midas.h"
#include "midas/maintain/snapshot.h"
#include "midas/maintain/verify.h"
#include "midas/obs/json.h"
#include "midas/obs/metrics.h"

namespace midas {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

// --- Ledger unit semantics --------------------------------------------------

obs::SwapRationale MakeRationale() {
  obs::SwapRationale r;
  r.winner_score = 0.75;
  r.loser_score = 0.5;
  r.margin = 0.25;
  r.coverage_gain = 12.0;
  r.coverage_loss = 4.0;
  r.kappa = 0.6;
  r.div_before = 1.0;
  r.div_after = 1.1;
  r.cog_before = 3.0;
  r.cog_after = 2.5;
  r.lcov_before = 0.8;
  r.lcov_after = 0.85;
  r.dominant_term = obs::DominantTerm(r);
  return r;
}

TEST(LineageEventTest, SerializeParseRoundTrip) {
  obs::LineageEvent e;
  e.kind = obs::LineageEventKind::kSwapIn;
  e.seq = 7;
  e.pattern = 42;
  e.other = 13;
  e.has_other = true;
  e.has_rationale = true;
  e.rationale = MakeRationale();
  e.scov = 0.25;
  e.lcov = 0.5;
  e.div = 1.25;
  e.cog = 3.5;
  e.score = 0.0446428571428571;
  e.trace_id = "00ff00ff00ff00ff0123456789abcdef";

  obs::LineageEvent back;
  std::string error;
  ASSERT_TRUE(obs::LineageEvent::Parse(e.Serialize(), &back, &error)) << error;
  EXPECT_EQ(back.Serialize(), e.Serialize());
  EXPECT_EQ(back.kind, e.kind);
  EXPECT_EQ(back.seq, e.seq);
  EXPECT_EQ(back.pattern, e.pattern);
  EXPECT_EQ(back.other, e.other);
  EXPECT_TRUE(back.has_other);
  ASSERT_TRUE(back.has_rationale);
  EXPECT_DOUBLE_EQ(back.rationale.margin, 0.25);
  EXPECT_EQ(back.rationale.dominant_term, e.rationale.dominant_term);
  EXPECT_EQ(back.trace_id, e.trace_id);

  // Without the optional parts, the line still round-trips.
  obs::LineageEvent bare;
  bare.kind = obs::LineageEventKind::kRescore;
  bare.seq = 3;
  bare.pattern = 9;
  ASSERT_TRUE(obs::LineageEvent::Parse(bare.Serialize(), &back, &error))
      << error;
  EXPECT_EQ(back.Serialize(), bare.Serialize());
  EXPECT_FALSE(back.has_other);
  EXPECT_FALSE(back.has_rationale);
  EXPECT_TRUE(back.trace_id.empty());

  // Garbage is rejected with a diagnostic, not silently zeroed.
  EXPECT_FALSE(obs::LineageEvent::Parse("E 99 not-a-number", &back, &error));
  EXPECT_FALSE(error.empty());
}

TEST(PatternLedgerTest, CommitAtomicPendingBuffer) {
  obs::PatternLedger ledger;
  ledger.RecordInitial(1, 0.5, 0.5, 1.0, 2.0, 0.125);
  EXPECT_EQ(ledger.live_count(), 1u);

  // Round 1 pends a swap but never commits (the round threw): the next
  // BeginRound discards the buffer and the ledger is untouched.
  ledger.BeginRound(1);
  obs::SwapRationale r = MakeRationale();
  ledger.PendDeath(1, 2, true, &r, 0.4, 0.5, 1.0, 2.0, 0.1);
  ledger.PendBirth(2, obs::LineageEventKind::kSwapIn, 1, true, &r, 0.6, 0.6,
                   1.1, 2.0, 0.198);
  EXPECT_EQ(ledger.pending_size(), 2u);
  const std::string before = ledger.Serialize();

  ledger.BeginRound(2);  // round 1 aborted
  EXPECT_EQ(ledger.pending_size(), 0u);
  EXPECT_EQ(ledger.Serialize(), before);
  EXPECT_EQ(ledger.live_count(), 1u);

  // Round 2 commits: pattern 1 dies, pattern 2 is born with the rationale.
  ledger.PendDeath(1, 2, true, &r, 0.4, 0.5, 1.0, 2.0, 0.1);
  ledger.PendBirth(2, obs::LineageEventKind::kSwapIn, 1, true, &r, 0.6, 0.6,
                   1.1, 2.0, 0.198);
  ledger.StampTrace("deadbeefdeadbeefdeadbeefdeadbeef");
  ledger.Commit();
  EXPECT_EQ(ledger.live_count(), 1u);
  const obs::PatternLineage* dead = ledger.Find(1);
  ASSERT_NE(dead, nullptr);
  EXPECT_FALSE(dead->alive);
  EXPECT_EQ(dead->death_seq, 2u);
  const obs::PatternLineage* born = ledger.Find(2);
  ASSERT_NE(born, nullptr);
  EXPECT_TRUE(born->alive);
  EXPECT_EQ(born->birth_kind, obs::LineageEventKind::kSwapIn);
  ASSERT_NE(born->birth(), nullptr);
  EXPECT_TRUE(born->birth()->has_rationale);
  EXPECT_EQ(born->birth()->other, 1u);  // names the displaced loser
  EXPECT_DOUBLE_EQ(born->birth()->rationale.margin, 0.25);
  EXPECT_EQ(born->birth()->trace_id, "deadbeefdeadbeefdeadbeefdeadbeef");
}

TEST(PatternLedgerTest, RescoreRingAndDeadEviction) {
  obs::PatternLedgerConfig cfg;
  cfg.max_rescores_per_pattern = 4;
  cfg.max_dead_patterns = 2;
  obs::PatternLedger ledger(cfg);
  ledger.RecordInitial(1, 0.5, 0.5, 1.0, 2.0, 0.125);

  for (uint64_t seq = 1; seq <= 10; ++seq) {
    ledger.BeginRound(seq);
    ledger.PendRescore(1, 0.5 + 0.01 * static_cast<double>(seq), 0.5, 1.0,
                       2.0, 0.125);
    ledger.Commit();
  }
  const obs::PatternLineage* lin = ledger.Find(1);
  ASSERT_NE(lin, nullptr);
  EXPECT_EQ(lin->rescores, 10u);
  EXPECT_EQ(lin->dropped_rescores, 6u);  // ring holds 4 of 10
  // Birth is never dropped; the retained rescores are the most recent.
  ASSERT_NE(lin->birth(), nullptr);
  EXPECT_EQ(lin->events.size(), 5u);  // birth + 4 rescores
  EXPECT_EQ(lin->latest()->seq, 10u);

  // Kill patterns 11..14: only the 2 most recent deaths are retained.
  for (PatternId id = 11; id <= 14; ++id) {
    ledger.RecordInitial(id, 0.1, 0.1, 1.0, 1.0, 0.01);
  }
  for (PatternId id = 11; id <= 14; ++id) {
    ledger.BeginRound(20 + static_cast<uint64_t>(id));
    ledger.PendDeath(id, 0, false, nullptr, 0.0, 0.0, 0.0, 0.0, 0.0);
    ledger.Commit();
  }
  EXPECT_EQ(ledger.evicted_dead(), 2u);
  EXPECT_EQ(ledger.Find(11), nullptr);
  EXPECT_EQ(ledger.Find(12), nullptr);
  EXPECT_NE(ledger.Find(13), nullptr);
  EXPECT_NE(ledger.Find(14), nullptr);
}

TEST(PatternLedgerTest, DominantTermClassification) {
  obs::SwapRationale r;
  r.coverage_gain = 10.0;
  r.coverage_loss = 1.0;
  EXPECT_EQ(obs::DominantTerm(r), "coverage");

  obs::SwapRationale d;
  d.div_before = 1.0;
  d.div_after = 50.0;
  EXPECT_EQ(obs::DominantTerm(d), "diversity");

  obs::SwapRationale l;
  l.lcov_before = 0.1;
  l.lcov_after = 0.9;
  EXPECT_EQ(obs::DominantTerm(l), "label_coverage");

  obs::SwapRationale c;
  c.cog_before = 10.0;
  c.cog_after = 1.0;
  EXPECT_EQ(obs::DominantTerm(c), "cognitive_load");

  obs::SwapRationale rand;
  rand.random = true;
  rand.coverage_gain = 100.0;
  EXPECT_EQ(obs::DominantTerm(rand), "random");

  // All-zero terms tie; the fixed order keeps "coverage".
  obs::SwapRationale zero;
  EXPECT_EQ(obs::DominantTerm(zero), "coverage");
}

TEST(PatternLedgerTest, SerializeDeserializeRoundTrip) {
  obs::PatternLedger ledger;
  ledger.RecordInitial(1, 0.5, 0.5, 1.0, 2.0, 0.125);
  ledger.RecordInitial(2, 0.4, 0.6, 1.2, 2.5, 0.115);
  ledger.BeginRound(1);
  obs::SwapRationale r = MakeRationale();
  ledger.PendDeath(2, 3, true, &r, 0.4, 0.6, 1.2, 2.5, 0.115);
  ledger.PendBirth(3, obs::LineageEventKind::kSwapIn, 2, true, &r, 0.7, 0.7,
                   1.3, 2.0, 0.3185);
  ledger.PendRescore(1, 0.52, 0.5, 1.0, 2.0, 0.13);
  ledger.Commit();

  const std::string text = ledger.Serialize();
  obs::PatternLedger back;
  std::string error;
  ASSERT_TRUE(back.Deserialize(text, &error)) << error;
  EXPECT_EQ(back.Serialize(), text);
  EXPECT_EQ(back.live_count(), ledger.live_count());
  EXPECT_EQ(back.events_applied(), ledger.events_applied());

  EXPECT_FALSE(back.Deserialize("not a ledger\n", &error));
  EXPECT_FALSE(error.empty());
}

TEST(PatternLedgerTest, ApplyDeltaReplaysOneRound) {
  obs::PatternLedger live;
  live.RecordInitial(1, 0.5, 0.5, 1.0, 2.0, 0.125);
  obs::PatternLedger replayed = live;  // same starting point

  live.BeginRound(1);
  obs::SwapRationale r = MakeRationale();
  live.PendDeath(1, 5, true, &r, 0.5, 0.5, 1.0, 2.0, 0.125);
  live.PendBirth(5, obs::LineageEventKind::kSwapIn, 1, true, &r, 0.7, 0.7,
                 1.3, 2.0, 0.3185);
  live.StampTrace("0123456789abcdef0123456789abcdef");
  const std::string delta = live.SerializeDelta(/*next_pattern_id=*/6);
  live.Commit();

  PatternId next_id = 0;
  std::string error;
  ASSERT_TRUE(replayed.ApplyDelta(delta, &next_id, &error)) << error;
  EXPECT_EQ(next_id, 6u);
  EXPECT_EQ(replayed.Serialize(), live.Serialize());

  EXPECT_FALSE(replayed.ApplyDelta("garbage\n", nullptr, &error));
}

TEST(PatternLedgerTest, ReconcileSynthesizesRestoredAndRemoved) {
  obs::PatternLedger ledger;
  ledger.RecordInitial(1, 0.5, 0.5, 1.0, 2.0, 0.125);
  ledger.RecordInitial(2, 0.4, 0.6, 1.2, 2.5, 0.115);

  // The externally installed panel has pattern 1 and a brand-new 7, but no 2.
  PatternSet panel;
  CannedPattern p1;
  p1.scov = 0.5;
  panel.AddWithId(1, p1);
  CannedPattern p7;
  p7.scov = 0.9;
  panel.AddWithId(7, p7);

  ledger.Reconcile(panel, /*seq=*/4);
  EXPECT_EQ(ledger.live_count(), 2u);
  const obs::PatternLineage* restored = ledger.Find(7);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->birth_kind, obs::LineageEventKind::kRestored);
  EXPECT_EQ(restored->birth_seq, 4u);
  const obs::PatternLineage* removed = ledger.Find(2);
  ASSERT_NE(removed, nullptr);
  EXPECT_FALSE(removed->alive);
  EXPECT_EQ(removed->death_seq, 4u);
  // Reconcile against the same panel is idempotent.
  const std::string before = ledger.Serialize();
  ledger.Reconcile(panel, 5);
  EXPECT_EQ(ledger.Serialize(), before);
}

TEST(PatternLedgerTest, PanelAndLineageJsonShapes) {
  obs::PatternLedger ledger;
  ledger.RecordInitial(1, 0.5, 0.5, 1.0, 2.0, 0.125);
  ledger.BeginRound(1);
  obs::SwapRationale r = MakeRationale();
  ledger.PendDeath(1, 2, true, &r, 0.5, 0.5, 1.0, 2.0, 0.125);
  ledger.PendBirth(2, obs::LineageEventKind::kSwapIn, 1, true, &r, 0.7, 0.7,
                   1.3, 2.0, 0.3185);
  ledger.Commit();

  obs::FlatJson panel = obs::ParseFlatJson(ledger.PanelJson(3));
  ASSERT_TRUE(panel.ok) << panel.error;
  EXPECT_EQ(panel.numbers.at("round_seq"), 3.0);
  EXPECT_EQ(panel.numbers.at("live"), 1.0);
  EXPECT_EQ(panel.numbers.at("dead"), 1.0);
  EXPECT_EQ(panel.numbers.at("patterns.0.id"), 2.0);
  EXPECT_EQ(panel.numbers.at("patterns.0.age_rounds"), 2.0);
  EXPECT_EQ(panel.numbers.at("patterns.0.displaced"), 1.0);
  EXPECT_EQ(panel.numbers.at("patterns.0.margin"), 0.25);

  obs::FlatJson lin = obs::ParseFlatJson(ledger.LineageJson(2));
  ASSERT_TRUE(lin.ok) << lin.error;
  EXPECT_EQ(lin.numbers.at("id"), 2.0);
  EXPECT_EQ(lin.strings.at("birth_kind"), "swap_in");
  EXPECT_EQ(lin.strings.at("events.0.kind"), "swap_in");
  EXPECT_EQ(lin.numbers.at("events.0.rationale.margin"), 0.25);

  EXPECT_EQ(ledger.LineageJson(99), "");  // unknown id
}

// --- Engine integration -----------------------------------------------------

MidasConfig EngineConfig() {
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.epsilon = 0.0;  // every round major: the swap path executes
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  return cfg;
}

std::unique_ptr<MidasEngine> MakeEngine(MoleculeGenerator& gen,
                                        MoleculeGenConfig& data) {
  auto engine =
      std::make_unique<MidasEngine>(gen.Generate(data), EngineConfig());
  engine->Initialize();
  return engine;
}

BatchUpdate MakeBatch(MoleculeGenerator& gen, MoleculeGenConfig& data,
                      const MidasEngine& engine, size_t adds, bool novel) {
  GraphDatabase copy = engine.db();
  return gen.GenerateAdditions(copy, data, adds, novel);
}

// Runs a seeded stream until at least one swap committed, returning the
// number of rounds applied (0 if the stream never swapped — a test bug).
int RunUntilSwap(MidasEngine* engine, MoleculeGenerator& gen,
                 MoleculeGenConfig& data, int max_rounds) {
  for (int round = 1; round <= max_rounds; ++round) {
    BatchUpdate d = MakeBatch(gen, data, *engine, 10, true);
    MaintenanceStats stats = engine->ApplyUpdate(d);
    if (stats.swaps > 0) return round;
  }
  return 0;
}

TEST(EngineLineageTest, InitialSelectionAndSwapRationaleCaptured) {
  MoleculeGenerator gen(555);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(25);
  auto engine = MakeEngine(gen, data);

  // Every initially selected pattern has a kInitial birth at seq 0.
  EXPECT_EQ(engine->lineage().live_count(), engine->patterns().size());
  for (const auto& [id, p] : engine->patterns().patterns()) {
    const obs::PatternLineage* lin = engine->lineage().Find(id);
    ASSERT_NE(lin, nullptr) << "pattern " << id;
    EXPECT_EQ(lin->birth_kind, obs::LineageEventKind::kInitial);
    EXPECT_EQ(lin->birth_seq, 0u);
  }

  const int swap_round = RunUntilSwap(engine.get(), gen, data, 12);
  ASSERT_GT(swap_round, 0) << "stream never swapped; adjust seeds";

  // The ledger stays squared with the panel...
  EXPECT_EQ(engine->lineage().live_count(), engine->patterns().size());
  // ...and the swap-in birth names the displaced loser with the full
  // decision rationale.
  std::vector<obs::LineageEvent> swaps =
      engine->lineage().SwapInsAt(static_cast<uint64_t>(swap_round));
  ASSERT_FALSE(swaps.empty());
  for (const obs::LineageEvent& e : swaps) {
    EXPECT_TRUE(e.has_other);
    ASSERT_TRUE(e.has_rationale);
    const obs::PatternLineage* loser = engine->lineage().Find(e.other);
    ASSERT_NE(loser, nullptr);
    EXPECT_FALSE(loser->alive);
    EXPECT_EQ(loser->death_seq, static_cast<uint64_t>(swap_round));
    EXPECT_DOUBLE_EQ(e.rationale.margin,
                     e.rationale.winner_score - e.rationale.loser_score);
    EXPECT_FALSE(e.rationale.dominant_term.empty());
    // The winner's own /lineage/<id> body is complete birth-to-present.
    const std::string json = engine->lineage().LineageJson(e.pattern);
    obs::FlatJson doc = obs::ParseFlatJson(json);
    ASSERT_TRUE(doc.ok) << doc.error;
    EXPECT_EQ(doc.strings.at("birth_kind"), "swap_in");
    EXPECT_EQ(doc.numbers.at("events.0.other"),
              static_cast<double>(e.other));
  }

  // Live patterns accumulate one rescore per committed round.
  for (const auto& [id, p] : engine->patterns().patterns()) {
    const obs::PatternLineage* lin = engine->lineage().Find(id);
    ASSERT_NE(lin, nullptr);
    const obs::LineageEvent* last = lin->latest();
    ASSERT_NE(last, nullptr);
    EXPECT_EQ(last->seq, engine->round_seq());
    EXPECT_EQ(last->score, p.score);  // bit-identical, freshly rescored
  }
}

// --- Durability: crash at every phase boundary ------------------------------

// Reference: the uninterrupted run's ledger after round k. Crash run: same
// seeds, crash in round k+1 at `site`, recover. The recovered ledger must
// be bit-identical to the reference — lineage never leaks uncommitted
// rounds and never loses committed ones.
TEST(LineageRecoveryTest, LedgerBitIdenticalAcrossCrashAtEveryPhase) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  const char* kSites[] = {
      "midas.apply_update.after_apply",    "midas.apply_update.after_fct",
      "midas.apply_update.after_cluster",  "midas.apply_update.after_csg",
      "midas.apply_update.after_index",    "midas.apply_update.after_refresh",
      "midas.apply_update.after_candidates", "midas.apply_update.after_swap",
  };

  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    TempDir edir("midas_lineage_crash");
    MoleculeGenerator gen(906);
    MoleculeGenConfig data = MoleculeGenerator::EmolLike(25);
    auto engine = MakeEngine(gen, data);

    UpdateJournal journal;
    ASSERT_TRUE(journal.Open(edir.path + "/journal.log"));
    engine->SetJournal(&journal);
    std::string error;
    ASSERT_TRUE(SaveCheckpoint(*engine, edir.path, &error)) << error;

    BatchUpdate d1 = MakeBatch(gen, data, *engine, 8, true);
    engine->ApplyUpdate(d1);
    const std::string committed_ledger = engine->lineage().Serialize();
    const PatternId committed_next_id = engine->patterns().next_id();

    BatchUpdate d2 = MakeBatch(gen, data, *engine, 10, true);
    fail::Arm(site);
    EXPECT_THROW(engine->ApplyUpdate(d2), fail::FailpointAbort);
    fail::DisarmAll();
    journal.Close();

    RecoverInfo info;
    std::unique_ptr<MidasEngine> recovered = RecoverEngine(edir.path, &info);
    ASSERT_NE(recovered, nullptr) << info.error;
    EXPECT_EQ(recovered->round_seq(), 1u);
    // The acceptance criterion: bit-identical, not structurally similar.
    EXPECT_EQ(recovered->lineage().Serialize(), committed_ledger);
    // The pattern-id allocator survives too, so post-recovery swap-ins
    // cannot recycle a dead pattern's id (which would corrupt lineage).
    EXPECT_EQ(recovered->patterns().next_id(), committed_next_id);

    // The recovered engine keeps recording lineage.
    BatchUpdate d3 = MakeBatch(gen, data, *recovered, 6, true);
    recovered->ApplyUpdate(d3);
    EXPECT_EQ(recovered->lineage().live_count(),
              recovered->patterns().size());
  }
}

TEST(LineageRecoveryTest, CleanReplayMatchesUninterruptedRun) {
  TempDir edir("midas_lineage_clean");
  MoleculeGenerator gen(907);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(25);
  auto engine = MakeEngine(gen, data);

  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(edir.path + "/journal.log"));
  engine->SetJournal(&journal);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(*engine, edir.path, &error)) << error;

  for (int round = 0; round < 3; ++round) {
    BatchUpdate d = MakeBatch(gen, data, *engine, 8, round != 1);
    engine->ApplyUpdate(d);
  }
  journal.Close();

  RecoverInfo info;
  auto recovered = RecoverEngine(edir.path, &info);
  ASSERT_NE(recovered, nullptr) << info.error;
  EXPECT_EQ(info.replayed, 3u);
  EXPECT_EQ(recovered->lineage().Serialize(), engine->lineage().Serialize());
}

TEST(LineageRecoveryTest, SnapshotRoundTripAndFsckValidateLedger) {
  TempDir edir("midas_lineage_snap");
  MoleculeGenerator gen(908);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(25);
  auto engine = MakeEngine(gen, data);

  BatchUpdate d1 = MakeBatch(gen, data, *engine, 8, true);
  engine->ApplyUpdate(d1);

  std::string error;
  ASSERT_TRUE(SaveCheckpoint(*engine, edir.path, &error)) << error;

  // The snapshot carries the ledger; fsck's manifest tier verifies it.
  ASSERT_TRUE(fs::exists(edir.path + "/snapshot/lineage.ledger"));
  VerifyOptions opts;
  opts.level = IntegrityTier::kJournal;
  IntegrityReport report = VerifyEngineDir(edir.path, opts);
  EXPECT_TRUE(report.clean()) << report.Describe();

  // Restore reproduces the ledger bit-identically.
  RecoverInfo info;
  auto recovered = RecoverEngine(edir.path, &info);
  ASSERT_NE(recovered, nullptr) << info.error;
  EXPECT_EQ(recovered->lineage().Serialize(), engine->lineage().Serialize());

  // A corrupted ledger is a checksum violation; a valid-CRC-but-garbage
  // ledger (manifest rewritten) would be a parse violation. Corrupt the
  // bytes: fsck must flag lineage.ledger specifically.
  std::ofstream out(edir.path + "/snapshot/lineage.ledger",
                    std::ios::binary | std::ios::trunc);
  out << "ledger v1 garbage\n";
  out.close();
  report = VerifyEngineDir(edir.path, opts);
  ASSERT_FALSE(report.clean());
  bool flagged = false;
  for (const IntegrityViolation& v : report.violations) {
    if (v.object.find("lineage.ledger") != std::string::npos) flagged = true;
  }
  EXPECT_TRUE(flagged) << report.Describe();
}

}  // namespace
}  // namespace midas
