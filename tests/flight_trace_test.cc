// Causal update tracing, end to end: TraceId/TraceContext propagation
// (including inheritance by TaskPool workers), the FlightRecorder's
// tail-based retention and sampling, the /traces HTTP surface under
// concurrent readers, the acceptance scenario from docs/observability.md
// (three batches, one artificially slowed via failpoint, attributed on
// /traces and as a histogram exemplar), and the determinism contract:
// tracing must not perturb maintenance output at any thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "http_test_client.h"
#include "midas/common/failpoint.h"
#include "midas/common/parallel.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/maintain/midas.h"
#include "midas/obs/event_log.h"
#include "midas/obs/flight.h"
#include "midas/obs/json.h"
#include "midas/obs/metrics.h"
#include "midas/obs/telemetry_server.h"
#include "midas/obs/trace.h"
#include "midas/select/pattern_io.h"
#include "midas/serve/engine_host.h"

namespace midas {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;

// --- TraceId ----------------------------------------------------------------

TEST(TraceIdTest, HexRoundTripAndValidity) {
  obs::TraceId null_id;
  EXPECT_FALSE(null_id.valid());
  EXPECT_EQ(null_id.ToHex(), std::string(32, '0'));

  obs::TraceId id;
  id.hi = 0x0123456789abcdefull;
  id.lo = 0xfedcba9876543210ull;
  EXPECT_TRUE(id.valid());
  const std::string hex = id.ToHex();
  EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(obs::TraceId::FromHex(hex), id);

  // Malformed inputs parse to the null id, never to garbage.
  EXPECT_FALSE(obs::TraceId::FromHex("").valid());
  EXPECT_FALSE(obs::TraceId::FromHex("0123").valid());
  EXPECT_FALSE(obs::TraceId::FromHex(std::string(32, 'g')).valid());
  EXPECT_FALSE(obs::TraceId::FromHex(hex + "00").valid());
}

TEST(TraceIdTest, MintedIdsAreUniqueAndValid) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    obs::TraceId id = obs::MintTraceId();
    EXPECT_TRUE(id.valid());
    EXPECT_TRUE(seen.insert(id.ToHex()).second);
  }
}

// --- TraceContext propagation ----------------------------------------------

TEST(TraceContextTest, CountersAccumulateAndScopesNest) {
  EXPECT_EQ(obs::TraceContext::Current(), nullptr);
  obs::TraceContext outer(obs::MintTraceId());
  obs::TraceContext inner(obs::MintTraceId());
  {
    obs::ScopedTraceContext so(&outer);
    EXPECT_EQ(obs::TraceContext::Current(), &outer);
    {
      obs::ScopedTraceContext si(&inner);
      EXPECT_EQ(obs::TraceContext::Current(), &inner);
      inner.CountCacheLookup(true);
    }
    EXPECT_EQ(obs::TraceContext::Current(), &outer);
    outer.AddBudgetSteps(7);
    outer.CountCacheLookup(false);
    outer.SetDegradeCause(2);
  }
  EXPECT_EQ(obs::TraceContext::Current(), nullptr);
  EXPECT_EQ(outer.budget_steps(), 7u);
  EXPECT_EQ(outer.cache_hits(), 0u);
  EXPECT_EQ(outer.cache_misses(), 1u);
  EXPECT_EQ(outer.degrade_cause(), 2);
  EXPECT_EQ(inner.cache_hits(), 1u);
  EXPECT_EQ(inner.cache_misses(), 0u);

  // Span ids are fresh per trace (1-based).
  EXPECT_EQ(outer.NextSpanId(), 1u);
  EXPECT_EQ(outer.NextSpanId(), 2u);
  EXPECT_EQ(inner.NextSpanId(), 1u);
}

TEST(TraceContextTest, TaskPoolWorkersInheritSubmittersContext) {
  TaskPool pool(4);
  obs::TraceContext trace(obs::MintTraceId());
  std::atomic<int> mismatches{0};
  {
    obs::ScopedTraceContext scope(&trace);
    pool.ParallelFor(256, [&](size_t) {
      obs::TraceContext* current = obs::TraceContext::Current();
      if (current != &trace) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Kernel-style attribution from whichever thread ran the chunk.
      current->CountCacheLookup(true);
    });
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(trace.cache_hits(), 256u);
  // The submitting thread's context is restored after the scope...
  EXPECT_EQ(obs::TraceContext::Current(), nullptr);
  // ...and workers drop it between batches: an untraced ParallelFor must
  // observe no leaked context.
  pool.ParallelFor(64, [&](size_t) {
    if (obs::TraceContext::Current() != nullptr) {
      mismatches.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

// --- FlightRecord -----------------------------------------------------------

std::shared_ptr<obs::FlightRecord> MakeRecord(uint64_t seq, bool interesting) {
  auto r = std::make_shared<obs::FlightRecord>();
  r->trace_id = obs::MintTraceId().ToHex();
  r->seq = seq;
  r->ticket = seq;
  r->total_ms = 4.0;
  r->phase_ms = {{"apply_ms", 2.0}, {"swap_ms", 1.0}};
  if (interesting) r->slo_violation = true;
  return r;
}

TEST(FlightRecordTest, SlowestPhaseJsonAndFolded) {
  auto r = MakeRecord(1, /*interesting=*/true);
  double ms = 0.0;
  EXPECT_EQ(r->SlowestPhase(&ms), "apply_ms");
  EXPECT_DOUBLE_EQ(ms, 2.0);

  obs::FlatJson doc = obs::ParseFlatJson(r->ToJson());
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_EQ(doc.strings.at("trace_id"), r->trace_id);
  EXPECT_DOUBLE_EQ(doc.numbers.at("total_ms"), 4.0);
  EXPECT_DOUBLE_EQ(doc.numbers.at("phases.apply_ms"), 2.0);
  EXPECT_DOUBLE_EQ(doc.numbers.at("phases.swap_ms"), 1.0);
  EXPECT_EQ(doc.strings.at("slowest_phase"), "apply_ms");
  EXPECT_TRUE(doc.bools.at("slo_violation"));
  EXPECT_EQ(doc.strings.at("outcome"), "ok");
  EXPECT_EQ(doc.strings.at("degrade_reason"), "none");

  // Folded stacks: integral microsecond counts, phases + root self time
  // (4.0 total - 3.0 phase wall = 1.0ms self).
  const std::string folded = r->ToFolded();
  EXPECT_NE(folded.find("midas_round;apply_ms 2000\n"), std::string::npos);
  EXPECT_NE(folded.find("midas_round;swap_ms 1000\n"), std::string::npos);
  EXPECT_NE(folded.find("midas_round 1000\n"), std::string::npos);
}

TEST(FlightRecordTest, EmptyRecordHasNoSlowestPhase) {
  obs::FlightRecord r;
  double ms = 123.0;
  EXPECT_EQ(r.SlowestPhase(&ms), "");
  EXPECT_DOUBLE_EQ(ms, 0.0);
  obs::FlatJson doc = obs::ParseFlatJson(r.ToJson());
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_FALSE(doc.Has("slowest_phase"));
}

// --- FlightRecorder retention ----------------------------------------------

TEST(FlightRecorderTest, TailRetentionSurvivesBoringBursts) {
  obs::FlightRecorderConfig cfg;
  cfg.capacity = 4;
  cfg.retained_capacity = 4;
  obs::FlightRecorder rec(cfg);

  auto interesting = MakeRecord(1, true);
  rec.Record(interesting);
  // A burst of healthy traffic large enough to lap the recent ring twice.
  for (uint64_t i = 2; i <= 13; ++i) rec.Record(MakeRecord(i, false));

  EXPECT_EQ(rec.recorded(), 13u);
  EXPECT_EQ(rec.sampled_out(), 0u);
  // Evicted from the recent ring, but tail-based retention kept it.
  auto found = rec.Find(interesting->trace_id);
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->slo_violation);

  // Snapshot is newest-first by seq and deduplicated across the rings.
  auto all = rec.Snapshot();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front()->seq, 13u);
  std::set<std::string> ids;
  for (const auto& r : all) EXPECT_TRUE(ids.insert(r->trace_id).second);
  EXPECT_EQ(ids.count(interesting->trace_id), 1u);
}

TEST(FlightRecorderTest, SamplingDropsOnlyBoringRecords) {
  obs::FlightRecorderConfig cfg;
  cfg.capacity = 16;
  cfg.sample_every = 3;
  obs::FlightRecorder rec(cfg);

  for (uint64_t i = 1; i <= 9; ++i) rec.Record(MakeRecord(i, false));
  EXPECT_EQ(rec.recorded(), 3u);  // every 3rd boring record kept
  EXPECT_EQ(rec.sampled_out(), 6u);

  auto interesting = MakeRecord(10, true);
  rec.Record(interesting);  // never sampled out
  EXPECT_EQ(rec.recorded(), 4u);
  EXPECT_EQ(rec.sampled_out(), 6u);
  EXPECT_NE(rec.Find(interesting->trace_id), nullptr);
}

TEST(FlightRecorderTest, InterestingCoversEveryRetentionTrigger) {
  obs::FlightRecord r;
  EXPECT_FALSE(obs::FlightRecorder::Interesting(r));
  auto flagged = [](auto&& mutate) {
    obs::FlightRecord x;
    mutate(x);
    return obs::FlightRecorder::Interesting(x);
  };
  EXPECT_TRUE(flagged([](obs::FlightRecord& x) { x.slo_violation = true; }));
  EXPECT_TRUE(flagged([](obs::FlightRecord& x) { x.truncated = true; }));
  EXPECT_TRUE(flagged([](obs::FlightRecord& x) { x.degrade_reason = "steps"; }));
  EXPECT_TRUE(flagged([](obs::FlightRecord& x) { x.retries = 1; }));
  EXPECT_TRUE(flagged([](obs::FlightRecord& x) { x.recovered = true; }));
  EXPECT_TRUE(flagged([](obs::FlightRecord& x) { x.drift_coincident = true; }));
  EXPECT_TRUE(
      flagged([](obs::FlightRecord& x) { x.outcome = "quarantined"; }));
}

// --- /traces HTTP surface ---------------------------------------------------

TEST(TraceRoutesTest, ServesListingRecordAndFoldedViews) {
  obs::FlightRecorder rec;
  auto record = MakeRecord(1, true);
  rec.Record(record);
  rec.Record(MakeRecord(2, false));

  obs::TelemetryServer server;
  obs::InstallTraceRoutes(&server, &rec);
  std::string err;
  ASSERT_TRUE(server.Start(0, &err)) << err;
  const int port = server.port();

  testing::HttpResult listing = testing::HttpGet(port, "/traces");
  ASSERT_TRUE(listing.ok);
  EXPECT_EQ(listing.status, 200);
  obs::FlatJson doc = obs::ParseFlatJson(listing.body);
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_DOUBLE_EQ(doc.numbers.at("recorded"), 2.0);
  EXPECT_EQ(doc.strings.at("traces.0.trace_id"),
            rec.Snapshot().front()->trace_id);

  // ?n= caps the rows.
  testing::HttpResult capped = testing::HttpGet(port, "/traces?n=1");
  ASSERT_TRUE(capped.ok);
  obs::FlatJson capped_doc = obs::ParseFlatJson(capped.body);
  ASSERT_TRUE(capped_doc.ok);
  EXPECT_TRUE(capped_doc.Has("traces.0.trace_id"));
  EXPECT_FALSE(capped_doc.Has("traces.1.trace_id"));

  testing::HttpResult full =
      testing::HttpGet(port, "/traces/" + record->trace_id);
  ASSERT_TRUE(full.ok);
  EXPECT_EQ(full.status, 200);
  obs::FlatJson full_doc = obs::ParseFlatJson(full.body);
  ASSERT_TRUE(full_doc.ok) << full_doc.error;
  EXPECT_EQ(full_doc.strings.at("trace_id"), record->trace_id);
  EXPECT_TRUE(full_doc.Has("phases.apply_ms"));

  testing::HttpResult folded =
      testing::HttpGet(port, "/traces/" + record->trace_id + "?fmt=folded");
  ASSERT_TRUE(folded.ok);
  EXPECT_NE(folded.body.find("midas_round;apply_ms "), std::string::npos);

  testing::HttpResult missing =
      testing::HttpGet(port, "/traces/" + std::string(32, '0'));
  ASSERT_TRUE(missing.ok);
  EXPECT_EQ(missing.status, 404);

  server.Stop();
}

// Writer publishing records while reader threads page /traces — the
// lock-free ring contract under real concurrency (the TSan CI job runs
// this test under the race detector).
TEST(TraceRoutesTest, ConcurrentReadersNeverBlockOrTear) {
  obs::FlightRecorderConfig cfg;
  cfg.capacity = 8;
  cfg.retained_capacity = 4;
  obs::FlightRecorder rec(cfg);
  rec.Record(MakeRecord(1, true));

  obs::TelemetryServer server;
  obs::InstallTraceRoutes(&server, &rec);
  std::string err;
  ASSERT_TRUE(server.Start(0, &err)) << err;
  const int port = server.port();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      int iter = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // Alternate the listing with record fetches (some of which 404
        // because the record was already evicted — that is fine, only
        // transport failures and tears count).
        testing::HttpResult r =
            iter++ % 2 == 0
                ? testing::HttpGet(port, "/traces")
                : testing::HttpGet(
                      port, "/traces/" + rec.Snapshot().front()->trace_id);
        if (!r.ok || (r.status != 200 && r.status != 404)) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (r.status == 200 && r.body.rfind("{", 0) == 0 &&
            !obs::ParseFlatJson(r.body).ok) {
          failures.fetch_add(1, std::memory_order_relaxed);  // torn JSON
        }
        (void)t;
      }
    });
  }

  for (uint64_t seq = 2; seq <= 200; ++seq) {
    rec.Record(MakeRecord(seq, seq % 5 == 0));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  server.Stop();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(rec.recorded(), 200u);
}

// --- End-to-end acceptance scenario ----------------------------------------

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

struct FailpointGuard {
  FailpointGuard() { fail::DisarmAll(); }
  ~FailpointGuard() { fail::DisarmAll(); }
};

// Three batches through the host, the third artificially slowed by the
// midas.apply_update.slow_apply failpoint (slowed last so its histogram
// exemplar cannot be overwritten by a later fast round). Asserts the full
// causal chain: Submit's trace id -> /traces listing -> full flight record
// with queue wait, dominant phase, budget steps and cache counters -> the
// trace_event log line -> the top latency bucket's exemplar.
TEST(FlightTraceE2ETest, SlowBatchIsAttributedEndToEnd) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  FailpointGuard guard;
  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scoped(reg);

  TempDir dir("midas_flight_e2e");
  MoleculeGenerator gen(909);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.epsilon = 0.0;  // every round major: the full pipeline executes
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  // A step limit (far above what these rounds use) switches ExecBudget out
  // of unlimited mode so steps are counted into the trace.
  cfg.round_step_limit = 50'000'000;
  auto engine = std::make_unique<MidasEngine>(gen.Generate(data), cfg);
  engine->Initialize();
  GraphDatabase base = engine->db();

  serve::HostConfig host_cfg;
  host_cfg.queue_capacity = 8;
  host_cfg.telemetry_port = 0;  // ephemeral
  host_cfg.num_threads = 2;     // kernel work crosses into pool workers
  host_cfg.flight.slo_ms = 25.0;  // the 40ms-slowed round must violate it
  obs::MaintenanceEventLog event_log;
  serve::EngineHost host(std::move(engine), dir.path, host_cfg);
  host.SetEventLog(&event_log);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;
  ASSERT_GT(host.telemetry_port(), 0);

  fail::Arm("midas.apply_update.slow_apply", /*skip=*/2, /*fires=*/1);

  std::vector<std::string> trace_ids;
  for (int i = 0; i < 3; ++i) {
    GraphDatabase copy = base;
    BatchUpdate delta = gen.GenerateAdditions(copy, data, 2, /*novel=*/false);
    serve::SubmitResult r = host.Submit(std::move(delta), copy.labels());
    ASSERT_TRUE(r.accepted());
    ASSERT_EQ(r.trace_id.size(), 32u);
    trace_ids.push_back(r.trace_id);
  }
  EXPECT_NE(trace_ids[0], trace_ids[1]);
  EXPECT_NE(trace_ids[1], trace_ids[2]);
  ASSERT_TRUE(host.WaitIdle(milliseconds(120000)));
  EXPECT_EQ(fail::HitCount("midas.apply_update.slow_apply"), 3);

  const std::string& slow_id = trace_ids[2];
  auto record = host.flights().Find(slow_id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->outcome, "ok");
  EXPECT_EQ(record->admission, "admitted");
  EXPECT_EQ(record->attempts, 1);
  EXPECT_GE(record->queue_wait_ms, 0.0);
  EXPECT_GE(record->total_ms, 40.0);  // the injected sleep alone
  EXPECT_TRUE(record->slo_violation);
  double slowest_ms = 0.0;
  EXPECT_EQ(record->SlowestPhase(&slowest_ms), "apply_ms");
  EXPECT_GE(slowest_ms, 40.0);
  EXPECT_GT(record->budget_steps, 0u);
  EXPECT_FALSE(record->truncated);
  EXPECT_EQ(record->degrade_reason, "none");
  EXPECT_GT(record->cache_hits + record->cache_misses, 0u);

  // /traces listing carries all three flights; the full record round-trips
  // through HTTP + JSON with the same attribution.
  const int port = host.telemetry_port();
  testing::HttpResult listing = testing::HttpGet(port, "/traces");
  ASSERT_TRUE(listing.ok);
  EXPECT_EQ(listing.status, 200);
  for (const std::string& id : trace_ids) {
    EXPECT_NE(listing.body.find(id), std::string::npos) << id;
  }
  testing::HttpResult full = testing::HttpGet(port, "/traces/" + slow_id);
  ASSERT_TRUE(full.ok);
  ASSERT_EQ(full.status, 200);
  obs::FlatJson doc = obs::ParseFlatJson(full.body);
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_EQ(doc.strings.at("trace_id"), slow_id);
  EXPECT_GE(doc.numbers.at("total_ms"), 40.0);
  EXPECT_GE(doc.numbers.at("phases.apply_ms"), 40.0);
  EXPECT_TRUE(doc.Has("queue_wait_ms"));
  EXPECT_GT(doc.numbers.at("budget_steps"), 0.0);
  EXPECT_EQ(doc.strings.at("slowest_phase"), "apply_ms");
  EXPECT_TRUE(doc.bools.at("slo_violation"));

  testing::HttpResult folded =
      testing::HttpGet(port, "/traces/" + slow_id + "?fmt=folded");
  ASSERT_TRUE(folded.ok);
  EXPECT_NE(folded.body.find("midas_round;apply_ms "), std::string::npos);

  // Every flight also landed as a trace_event JSONL line.
  bool logged = false;
  for (const std::string& line : event_log.lines()) {
    if (line.find("\"trace_event\"") != std::string::npos &&
        line.find(slow_id) != std::string::npos) {
      logged = true;
    }
  }
  EXPECT_TRUE(logged);

  // The round-latency histogram's top occupied bucket links back to the
  // slow batch: its observation is the largest (it carries the sleep) and
  // the most recent, so the exemplar there is exactly its trace id.
  obs::Histogram* h = reg.GetHistogram("midas_maintain_total_ms");
  ASSERT_EQ(h->Count(), 3u);
  size_t top = 0;
  bool any = false;
  for (size_t i = 0; i <= h->bounds().size(); ++i) {
    if (h->BucketCount(i) > 0) {
      top = i;
      any = true;
    }
  }
  ASSERT_TRUE(any);
  obs::Histogram::Exemplar exemplar = h->BucketExemplar(top);
  ASSERT_TRUE(exemplar.valid);
  obs::TraceId exemplar_id;
  exemplar_id.hi = exemplar.trace_hi;
  exemplar_id.lo = exemplar.trace_lo;
  EXPECT_EQ(exemplar_id.ToHex(), slow_id);
  // ...and the OpenMetrics exposition carries it (negotiated via Accept),
  // while the default 0.0.4 exposition strips exemplar suffixes.
  testing::HttpResult prom = testing::HttpRaw(
      port,
      "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Accept: application/openmetrics-text\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(prom.ok);
  EXPECT_NE(prom.headers.find("application/openmetrics-text"),
            std::string::npos);
  EXPECT_NE(prom.body.find("# {trace_id=\"" + slow_id + "\"}"),
            std::string::npos);
  testing::HttpResult legacy = testing::HttpGet(port, "/metrics");
  ASSERT_TRUE(legacy.ok);
  EXPECT_NE(legacy.headers.find("text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_EQ(legacy.body.find("trace_id"), std::string::npos);

  host.Stop();
}

// --- Determinism with tracing enabled ---------------------------------------

// Tracing observes, never steers: with a TraceContext installed (exemplar
// path, cache attribution, worker inheritance all active), maintenance
// output stays bit-identical across thread counts.
std::string RunTracedStream(int num_threads) {
  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scoped(reg);
  MoleculeGenerator gen(500);
  MoleculeGenConfig data_cfg = MoleculeGenerator::EmolLike(30);
  GraphDatabase db = gen.Generate(data_cfg);
  GraphDatabase scratch = db;

  MidasConfig cfg;
  cfg.fct.sup_min = 0.4;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.cluster.max_cluster_size = 25;
  cfg.budget = {3, 6, 8};
  cfg.walk.num_walks = 40;
  cfg.walk.walk_length = 12;
  cfg.sample_cap = 0;
  cfg.epsilon = 0.005;
  cfg.seed = 5;
  cfg.round_deadline_ms = 0.0;  // determinism contract: unbudgeted rounds
  cfg.round_step_limit = 0;
  cfg.num_threads = num_threads;
  auto engine = std::make_unique<MidasEngine>(std::move(db), cfg);
  engine->Initialize();

  MoleculeGenerator delta_gen(77);
  std::ostringstream out;
  for (int round = 0; round < 6; ++round) {
    const bool new_family = round % 3 == 0;
    BatchUpdate delta = delta_gen.GenerateAdditions(
        scratch, data_cfg, new_family ? 20 : 6, new_family);
    obs::TraceContext trace(obs::MintTraceId());
    obs::ScopedTraceContext scope(&trace);
    MaintenanceStats stats = engine->ApplyUpdate(delta);
    out << round << ":" << stats.major << "," << stats.candidates << ","
        << stats.swaps << "," << stats.graphlet_distance << "\n";
  }
  WritePatternSet(engine->patterns(), engine->labels(), out);
  PatternQuality q = engine->CurrentQuality();
  out << q.scov << "," << q.lcov << "," << q.div << "," << q.cog_avg << ","
      << q.cog_max << "\n";
  return out.str();
}

TEST(FlightTraceE2ETest, TracingPreservesThreadCountInvariance) {
  std::string serial = RunTracedStream(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(RunTracedStream(4), serial);
}

}  // namespace
}  // namespace midas
