#include "midas/graph/ged.h"

#include <gtest/gtest.h>

#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::Cycle;
using testing_util::MakeGraph;
using testing_util::Path;
using testing_util::RandomGraph;
using testing_util::RandomPermutation;

TEST(GedExactTest, ZeroForIdenticalGraphs) {
  LabelDictionary d;
  Graph g = Path(d, {"C", "O", "C"});
  EXPECT_EQ(GedExact(g, g), 0);
}

TEST(GedExactTest, ZeroForIsomorphicCopies) {
  LabelDictionary d;
  Rng rng(3);
  Graph g = RandomGraph(d, rng, 6, 2);
  Graph p = g.Permuted(RandomPermutation(6, rng));
  EXPECT_EQ(GedExact(g, p), 0);
}

TEST(GedExactTest, SingleRelabel) {
  LabelDictionary d;
  Graph a = Path(d, {"C", "O"});
  Graph b = Path(d, {"C", "N"});
  EXPECT_EQ(GedExact(a, b), 1);
}

TEST(GedExactTest, SingleEdgeDeletion) {
  LabelDictionary d;
  Graph triangle = MakeGraph(d, {"C", "C", "C"}, {{0, 1}, {1, 2}, {0, 2}});
  Graph path = Path(d, {"C", "C", "C"});
  EXPECT_EQ(GedExact(triangle, path), 1);
  EXPECT_EQ(GedExact(path, triangle), 1);  // symmetric
}

TEST(GedExactTest, VertexInsertion) {
  LabelDictionary d;
  Graph p2 = Path(d, {"C", "C"});
  Graph p3 = Path(d, {"C", "C", "C"});
  // One vertex + one edge.
  EXPECT_EQ(GedExact(p2, p3), 2);
}

TEST(GedExactTest, PathVsStar) {
  LabelDictionary d;
  Graph path = Path(d, {"C", "C", "C", "C"});
  Graph star = testing_util::Star(d, "C", {"C", "C", "C"});
  // Delete one edge, insert one edge.
  EXPECT_EQ(GedExact(path, star), 2);
}

TEST(GedExactTest, RespectsCostLimit) {
  LabelDictionary d;
  Graph a = Path(d, {"C", "C"});
  Graph b = Cycle(d, 6, "O");
  EXPECT_EQ(GedExact(a, b, 3), 3);  // true distance is much larger
}

TEST(GedLowerBoundTest, KnownCases) {
  LabelDictionary d;
  Graph a = Path(d, {"C", "O"});
  Graph b = Path(d, {"C", "N"});
  EXPECT_EQ(GedLowerBound(a, b), 1);  // one relabel

  Graph triangle = MakeGraph(d, {"C", "C", "C"}, {{0, 1}, {1, 2}, {0, 2}});
  Graph path = Path(d, {"C", "C", "C"});
  EXPECT_EQ(GedLowerBound(triangle, path), 1);  // edge count difference
}

TEST(GedTightLowerBoundTest, AddsRelaxedEdges) {
  LabelDictionary d;
  Graph a = Path(d, {"C", "O"});
  Graph b = Path(d, {"C", "O"});
  EXPECT_EQ(GedTightLowerBound(a, b, 2), 2);
  EXPECT_EQ(GedTightLowerBound(a, b, -5), 0);  // negative n clamped
}

TEST(GedUpperBoundTest, ExactForSimpleCases) {
  LabelDictionary d;
  Graph a = Path(d, {"C", "O", "C"});
  EXPECT_EQ(GedUpperBound(a, a), 0);  // identity alignment found greedily
  Graph b = Path(d, {"C", "N", "C"});
  EXPECT_LE(GedExact(a, b), GedUpperBound(a, b));
}

TEST(GedUpperBoundTest, EmptyGraphCosts) {
  LabelDictionary d;
  Graph g = Path(d, {"C", "O", "C"});
  EXPECT_EQ(GedUpperBound(g, Graph()), 5);  // 3 vertices + 2 edges
  EXPECT_EQ(GedUpperBound(Graph(), g), 5);
}

// Property: GED is symmetric and sandwiched between its bounds.
class GedPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GedPropertyTest, SymmetricAndBounded) {
  LabelDictionary d;
  Rng rng(700 + GetParam());
  Graph a = RandomGraph(d, rng, 3 + GetParam() % 4, GetParam() % 3, 2);
  Graph b = RandomGraph(d, rng, 3 + (GetParam() / 2) % 4, GetParam() % 2, 2);
  int ab = GedExact(a, b);
  int ba = GedExact(b, a);
  EXPECT_EQ(ab, ba);
  EXPECT_LE(GedLowerBound(a, b), ab);
  EXPECT_GE(GedUpperBound(a, b), ab);
  EXPECT_GE(ab, 0);
  // Zero distance iff isomorphic.
  EXPECT_EQ(ab == 0, AreIsomorphic(a, b));
}

INSTANTIATE_TEST_SUITE_P(Random, GedPropertyTest, ::testing::Range(0, 40));

// Property: triangle inequality on small random triples.
class GedTriangleTest : public ::testing::TestWithParam<int> {};

TEST_P(GedTriangleTest, TriangleInequality) {
  LabelDictionary d;
  Rng rng(1500 + GetParam());
  Graph a = RandomGraph(d, rng, 4, 1, 2);
  Graph b = RandomGraph(d, rng, 4, 1, 2);
  Graph c = RandomGraph(d, rng, 4, 1, 2);
  EXPECT_LE(GedExact(a, c), GedExact(a, b) + GedExact(b, c));
}

INSTANTIATE_TEST_SUITE_P(Random, GedTriangleTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace midas
