// Tests of the observability subsystem: Timer pause/resume accumulation,
// metric instruments and registry isolation, TraceSpan nesting, the JSON
// writer/parser pair, the exporters, and the maintenance event-log schema.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "midas/common/timer.h"
#include "midas/obs/event_log.h"
#include "midas/obs/export.h"
#include "midas/obs/json.h"
#include "midas/obs/metrics.h"
#include "midas/obs/trace.h"

namespace midas {
namespace {

void SpinFor(double ms) {
  Timer t;
  while (t.ElapsedMs() < ms) {
  }
}

// --- Timer -----------------------------------------------------------------

TEST(TimerTest, StartsRunningAndAccumulates) {
  Timer t;
  EXPECT_TRUE(t.running());
  SpinFor(1.0);
  EXPECT_GE(t.ElapsedMs(), 1.0);
}

TEST(TimerTest, PauseFreezesElapsed) {
  Timer t;
  SpinFor(1.0);
  t.Pause();
  EXPECT_FALSE(t.running());
  double frozen = t.ElapsedMs();
  SpinFor(2.0);
  EXPECT_DOUBLE_EQ(t.ElapsedMs(), frozen);
}

TEST(TimerTest, ResumeAccumulatesAcrossSegments) {
  Timer t;
  SpinFor(1.0);
  t.Pause();
  double first = t.ElapsedMs();
  SpinFor(2.0);  // not counted
  t.Resume();
  SpinFor(1.0);
  t.Pause();
  double second = t.ElapsedMs();
  EXPECT_GE(second, first + 1.0);
  EXPECT_LT(second, first + 3.0);  // the paused gap must not leak in
}

TEST(TimerTest, PauseAndResumeAreIdempotent) {
  Timer t;
  t.Pause();
  t.Pause();
  double frozen = t.ElapsedMs();
  t.Resume();
  t.Resume();
  EXPECT_TRUE(t.running());
  EXPECT_GE(t.ElapsedMs(), frozen);
}

TEST(TimerTest, ResetZeroesAccumulatedTime) {
  Timer t;
  SpinFor(2.0);
  t.Pause();
  t.Reset();
  EXPECT_TRUE(t.running());
  EXPECT_LT(t.ElapsedMs(), 2.0);
}

// --- Instruments -----------------------------------------------------------

TEST(MetricsTest, CounterIncrements) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("midas_test_events_total");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  EXPECT_EQ(c->name(), "midas_test_events_total");
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  obs::MetricsRegistry reg;
  obs::Gauge* g = reg.GetGauge("midas_test_db_size");
  g->Set(10.0);
  g->Add(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 12.5);
}

TEST(MetricsTest, GetReturnsSameInstrumentForSameName) {
  obs::MetricsRegistry reg;
  EXPECT_EQ(reg.GetCounter("a_total"), reg.GetCounter("a_total"));
  EXPECT_EQ(reg.GetGauge("g"), reg.GetGauge("g"));
  EXPECT_EQ(reg.GetHistogram("h_ms"), reg.GetHistogram("h_ms"));
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusive) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("midas_test_ms", {1.0, 2.0, 5.0});
  // Prometheus le-semantics: an observation equal to a bound belongs to
  // that bound's bucket.
  h->Observe(1.0);   // bucket 0 (le=1)
  h->Observe(1.5);   // bucket 1 (le=2)
  h->Observe(2.0);   // bucket 1 (le=2)
  h->Observe(5.0);   // bucket 2 (le=5)
  h->Observe(99.0);  // overflow (+Inf)
  EXPECT_EQ(h->BucketCount(0), 1u);
  EXPECT_EQ(h->BucketCount(1), 2u);
  EXPECT_EQ(h->BucketCount(2), 1u);
  EXPECT_EQ(h->BucketCount(3), 1u);
  EXPECT_EQ(h->Count(), 5u);
  EXPECT_DOUBLE_EQ(h->Sum(), 1.0 + 1.5 + 2.0 + 5.0 + 99.0);
}

TEST(MetricsTest, HistogramDefaultBoundsAreLatencyBounds) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("midas_test_default_ms");
  EXPECT_EQ(h->bounds(), obs::MetricsRegistry::LatencyBoundsMs());
}

TEST(MetricsTest, ResetValuesKeepsHandlesAlive) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("c_total");
  obs::Histogram* h = reg.GetHistogram("h_ms", {1.0});
  c->Increment(7);
  h->Observe(0.5);
  reg.ResetValues();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.0);
  EXPECT_EQ(reg.GetCounter("c_total"), c);  // registration survives
}

TEST(MetricsTest, RegistryIdsAreUnique) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), obs::MetricsRegistry::Global().id());
}

// --- Registry scoping ------------------------------------------------------

TEST(MetricsTest, CurrentDefaultsToGlobal) {
  EXPECT_EQ(&obs::MetricsRegistry::Current(), &obs::MetricsRegistry::Global());
}

TEST(MetricsTest, ScopedRegistryOverridesAndRestores) {
  obs::MetricsRegistry outer;
  obs::MetricsRegistry inner;
  {
    obs::ScopedMetricsRegistry so(outer);
    EXPECT_EQ(&obs::MetricsRegistry::Current(), &outer);
    {
      obs::ScopedMetricsRegistry si(inner);
      EXPECT_EQ(&obs::MetricsRegistry::Current(), &inner);
    }
    EXPECT_EQ(&obs::MetricsRegistry::Current(), &outer);
  }
  EXPECT_EQ(&obs::MetricsRegistry::Current(), &obs::MetricsRegistry::Global());
}

TEST(MetricsTest, ScopedRegistryIsolatesCounts) {
  obs::MetricsRegistry reg;
  uint64_t global_before =
      obs::MetricsRegistry::Global().GetCounter("iso_probe_total")->Value();
  {
    obs::ScopedMetricsRegistry scoped(reg);
    obs::MetricsRegistry::Current().GetCounter("iso_probe_total")->Increment();
  }
  EXPECT_EQ(reg.GetCounter("iso_probe_total")->Value(), 1u);
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("iso_probe_total")->Value(),
      global_before);
}

// --- TraceSpan -------------------------------------------------------------

TEST(TraceSpanTest, RecordsIntoHistogramAndAccumulator) {
  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scoped(reg);
  double acc = 0.0;
  {
    obs::TraceSpan span("midas_test_span_ms", &acc);
    SpinFor(1.0);
  }
  obs::Histogram* h = reg.GetHistogram("midas_test_span_ms");
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_GE(h->Sum(), 1.0);
  EXPECT_GE(acc, 1.0);
}

TEST(TraceSpanTest, StopIsIdempotentAndFinal) {
  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scoped(reg);
  double acc = 0.0;
  {
    obs::TraceSpan span("midas_test_stop_ms", &acc);
    SpinFor(1.0);
    span.Stop();
    double at_stop = acc;
    SpinFor(1.0);
    span.Stop();  // no-op; destructor must not record again either
    EXPECT_DOUBLE_EQ(acc, at_stop);
  }
  EXPECT_EQ(reg.GetHistogram("midas_test_stop_ms")->Count(), 1u);
}

TEST(TraceSpanTest, PauseExcludesTheGap) {
  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scoped(reg);
  double acc = 0.0;
  {
    obs::TraceSpan span("midas_test_pause_ms", &acc);
    SpinFor(1.0);
    span.Pause();
    SpinFor(3.0);
    span.Resume();
    SpinFor(1.0);
  }
  EXPECT_GE(acc, 2.0);
  EXPECT_LT(acc, 4.0);  // the 3 ms pause must not be counted
}

TEST(TraceSpanTest, SpansNest) {
  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scoped(reg);
  EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 0);
  {
    obs::TraceSpan outer("midas_test_outer_ms");
    EXPECT_EQ(outer.depth(), 1);
    EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 1);
    {
      obs::TraceSpan inner("midas_test_inner_ms");
      EXPECT_EQ(inner.depth(), 2);
      EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 2);
    }
    EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 1);
  }
  EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 0);
}

TEST(TraceSpanTest, DisabledRegistrySkipsHistogramButKeepsAccumulator) {
  obs::MetricsRegistry reg;
  reg.set_enabled(false);
  obs::ScopedMetricsRegistry scoped(reg);
  double acc = 0.0;
  {
    obs::TraceSpan span("midas_test_disabled_ms", &acc);
    SpinFor(1.0);
  }
  EXPECT_GE(acc, 1.0);  // stats breakdowns keep working with metrics off
  // The histogram was never registered: no lookup happens when disabled.
  EXPECT_TRUE(reg.histograms().empty());
}

TEST(TraceSpanTest, DisabledRegistryAndNoAccumulatorIsInert) {
  obs::MetricsRegistry reg;
  reg.set_enabled(false);
  obs::ScopedMetricsRegistry scoped(reg);
  obs::TraceSpan span("midas_test_inert_ms");
  SpinFor(1.0);
  EXPECT_DOUBLE_EQ(span.ElapsedMs(), 0.0);
  EXPECT_EQ(obs::TraceSpan::CurrentDepth(), 0);  // inert spans don't nest
}

// --- JSON writer / parser --------------------------------------------------

TEST(JsonTest, WriterProducesCompactJson) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("a").Value(1.5);
  w.Key("b").Value(true);
  w.Key("c").Value("x\"y");
  w.Key("d").BeginArray().Value(uint64_t{1}).Value(uint64_t{2}).EndArray();
  w.Key("e").BeginObject().Key("n").Value(-3).EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            R"({"a":1.5,"b":true,"c":"x\"y","d":[1,2],"e":{"n":-3}})");
}

TEST(JsonTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -1.5, 0.1, 1e-9, 12345.6789, 1e18}) {
    std::string s = obs::JsonWriter::FormatDouble(v);
    EXPECT_DOUBLE_EQ(std::stod(s), v) << s;
  }
  EXPECT_EQ(obs::JsonWriter::FormatDouble(
                std::numeric_limits<double>::quiet_NaN()),
            "\"NaN\"");
}

TEST(JsonTest, ParseFlatJsonFlattensNestedPaths) {
  obs::FlatJson doc = obs::ParseFlatJson(
      R"({"a":{"b":1.5},"arr":[2,{"x":3}],"s":"hi","t":true,"z":null})");
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_DOUBLE_EQ(doc.numbers.at("a.b"), 1.5);
  EXPECT_DOUBLE_EQ(doc.numbers.at("arr.0"), 2.0);
  EXPECT_DOUBLE_EQ(doc.numbers.at("arr.1.x"), 3.0);
  EXPECT_EQ(doc.strings.at("s"), "hi");
  EXPECT_TRUE(doc.bools.at("t"));
  EXPECT_EQ(doc.strings.at("z"), "null");
  EXPECT_TRUE(doc.Has("a.b"));
  EXPECT_FALSE(doc.Has("a.c"));
}

TEST(JsonTest, ParseFlatJsonRejectsMalformedInput) {
  EXPECT_FALSE(obs::ParseFlatJson("{").ok);
  EXPECT_FALSE(obs::ParseFlatJson(R"({"a":1} trailing)").ok);
  EXPECT_FALSE(obs::ParseFlatJson(R"({"a":})").ok);
  EXPECT_FALSE(obs::ParseFlatJson("").ok);
  EXPECT_FALSE(obs::ParseFlatJson(R"({"a" 1})").ok);
}

TEST(JsonTest, ParseFlatJsonHandlesEscapes) {
  obs::FlatJson doc = obs::ParseFlatJson(R"({"k":"a\"b\\c\n"})");
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_EQ(doc.strings.at("k"), "a\"b\\c\n");
}

// --- Exporters -------------------------------------------------------------

TEST(ExportTest, PrometheusFormat) {
  obs::MetricsRegistry reg;
  reg.GetCounter("midas_test_runs_total")->Increment(3);
  reg.GetGauge("midas_test_size")->Set(7.5);
  obs::Histogram* h = reg.GetHistogram("midas_test_dur_ms", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(100.0);
  std::string text = obs::ExportPrometheus(reg);
  EXPECT_NE(text.find("# TYPE midas_test_runs_total counter\n"
                      "midas_test_runs_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE midas_test_size gauge\n"
                      "midas_test_size 7.5\n"),
            std::string::npos);
  // Bucket counts are cumulative in the exposition format.
  EXPECT_NE(text.find("midas_test_dur_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("midas_test_dur_ms_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("midas_test_dur_ms_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("midas_test_dur_ms_sum 105.5\n"), std::string::npos);
  EXPECT_NE(text.find("midas_test_dur_ms_count 3\n"), std::string::npos);
}

// Exposition-format conformance golden: one registry with every metric
// kind, whole-document comparison. Locks the details scrapers depend on —
// cumulative `le` buckets ending at +Inf, `_sum`/`_count`, `# TYPE` lines,
// and name/label sanitization.
TEST(ExportTest, PrometheusConformanceGolden) {
  obs::MetricsRegistry reg;
  reg.GetCounter("midas_rounds_total")->Increment(2);
  // Hostile names: Prometheus metric names cannot carry '-', '.' or a
  // leading digit; the exporter must sanitize rather than emit them raw.
  reg.GetCounter("midas-weird.name")->Increment(1);
  reg.GetCounter("0starts_with_digit")->Increment(4);
  reg.GetGauge("midas_queue_depth")->Set(3.0);
  obs::Histogram* h = reg.GetHistogram("midas_round_ms", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(0.75);
  h->Observe(5.0);
  h->Observe(50.0);

  // Instruments export sorted by *registered* name ('0' < '-' < '_').
  const std::string expected =
      "# TYPE _0starts_with_digit counter\n"
      "_0starts_with_digit 4\n"
      "# TYPE midas_weird_name counter\n"
      "midas_weird_name 1\n"
      "# TYPE midas_rounds_total counter\n"
      "midas_rounds_total 2\n"
      "# TYPE midas_queue_depth gauge\n"
      "midas_queue_depth 3\n"
      "# TYPE midas_round_ms histogram\n"
      "midas_round_ms_bucket{le=\"1\"} 2\n"
      "midas_round_ms_bucket{le=\"10\"} 3\n"
      "midas_round_ms_bucket{le=\"+Inf\"} 4\n"
      "midas_round_ms_sum 56.25\n"
      "midas_round_ms_count 4\n";
  EXPECT_EQ(obs::ExportPrometheus(reg), expected);
}

TEST(ExportTest, SanitizeMetricName) {
  EXPECT_EQ(obs::SanitizeMetricName("midas_ok_total"), "midas_ok_total");
  EXPECT_EQ(obs::SanitizeMetricName("has-dash.and space"),
            "has_dash_and_space");
  EXPECT_EQ(obs::SanitizeMetricName("7digit"), "_7digit");
  EXPECT_EQ(obs::SanitizeMetricName("ns:name"), "ns:name");  // colons legal
  EXPECT_EQ(obs::SanitizeMetricName(""), "_");
}

TEST(ExportTest, EscapeLabelValue) {
  EXPECT_EQ(obs::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::EscapeLabelValue("a\nb"), "a\\nb");
}

// --- Exemplars (OpenMetrics) ------------------------------------------------

// A bucket only carries the `# {trace_id="..."} value` suffix after a traced
// observation landed in it, and only in the OpenMetrics dialect; untraced
// buckets must stay byte-identical to the pre-exemplar exposition, and the
// 0.0.4 dialect strips exemplars entirely (pre-OpenMetrics scrapers would
// choke on unexpected suffixes).
TEST(ExportTest, PrometheusExemplarSyntaxAndOmission) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("midas_round_ms", {1.0, 10.0});
  h->Observe(0.5);  // untraced: bucket le="1" must carry no exemplar
  obs::TraceId id = obs::TraceId::FromHex("00ff00ff00ff00ff0123456789abcdef");
  ASSERT_TRUE(id.valid());
  h->ObserveExemplar(5.0, id.hi, id.lo);

  const std::string text =
      obs::ExportPrometheus(reg, obs::MetricsTextFormat::kOpenMetrics);
  EXPECT_NE(text.find("midas_round_ms_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("midas_round_ms_bucket{le=\"10\"} 2 "
                "# {trace_id=\"00ff00ff00ff00ff0123456789abcdef\"} 5\n"),
      std::string::npos);
  // +Inf had no traced observation either.
  EXPECT_NE(text.find("midas_round_ms_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  // OpenMetrics bodies terminate with the mandatory EOF marker.
  EXPECT_NE(text.find("# EOF\n"), std::string::npos);

  // The legacy 0.0.4 dialect (single-arg overload) strips the exemplar and
  // carries no EOF marker.
  const std::string legacy = obs::ExportPrometheus(reg);
  EXPECT_NE(legacy.find("midas_round_ms_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_EQ(legacy.find("trace_id"), std::string::npos);
  EXPECT_EQ(legacy.find("# EOF"), std::string::npos);
}

TEST(ExportTest, PrometheusExemplarKeepsMostRecentTrace) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("midas_round_ms", {10.0});
  obs::TraceId first = obs::MintTraceId();
  obs::TraceId second = obs::MintTraceId();
  h->ObserveExemplar(1.0, first.hi, first.lo);
  h->ObserveExemplar(2.0, second.hi, second.lo);
  obs::Histogram::Exemplar e = h->BucketExemplar(0);
  ASSERT_TRUE(e.valid);
  EXPECT_EQ(e.trace_hi, second.hi);
  EXPECT_EQ(e.trace_lo, second.lo);
  EXPECT_DOUBLE_EQ(e.value, 2.0);
  // Reset clears exemplars along with the counts.
  h->Reset();
  EXPECT_FALSE(h->BucketExemplar(0).valid);
}

TEST(ExportTest, JsonExportCarriesExemplar) {
  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("midas_round_ms", {1.0, 10.0});
  obs::TraceId id = obs::TraceId::FromHex("deadbeefdeadbeefdeadbeefdeadbeef");
  h->ObserveExemplar(5.0, id.hi, id.lo);
  obs::FlatJson doc = obs::ParseFlatJson(obs::ExportJson(reg));
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_EQ(
      doc.strings.at("histograms.midas_round_ms.buckets.1.exemplar.trace_id"),
      "deadbeefdeadbeefdeadbeefdeadbeef");
  EXPECT_DOUBLE_EQ(
      doc.numbers.at("histograms.midas_round_ms.buckets.1.exemplar.value"),
      5.0);
  // The untraced bucket has no exemplar key at all.
  EXPECT_FALSE(
      doc.Has("histograms.midas_round_ms.buckets.0.exemplar.trace_id"));
}

TEST(TraceSpanTest, SpanTagsExemplarWithInstalledTrace) {
  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scoped(reg);
  obs::TraceContext trace(obs::MintTraceId());
  {
    obs::ScopedTraceContext scope(&trace);
    obs::TraceSpan span("midas_test_span_ms");
  }
  obs::Histogram* h = reg.GetHistogram("midas_test_span_ms");
  ASSERT_EQ(h->Count(), 1u);
  bool found = false;
  for (size_t i = 0; i <= h->bounds().size(); ++i) {
    obs::Histogram::Exemplar e = h->BucketExemplar(i);
    if (!e.valid) continue;
    EXPECT_EQ(e.trace_hi, trace.id().hi);
    EXPECT_EQ(e.trace_lo, trace.id().lo);
    found = true;
  }
  EXPECT_TRUE(found);

  // Without an installed context the same span records no exemplar.
  { obs::TraceSpan span("midas_test_untagged_ms"); }
  obs::Histogram* h2 = reg.GetHistogram("midas_test_untagged_ms");
  ASSERT_EQ(h2->Count(), 1u);
  for (size_t i = 0; i <= h2->bounds().size(); ++i) {
    EXPECT_FALSE(h2->BucketExemplar(i).valid);
  }
}

TEST(ExportTest, JsonExportParses) {
  obs::MetricsRegistry reg;
  reg.GetCounter("midas_test_runs_total")->Increment(3);
  reg.GetGauge("midas_test_size")->Set(7.5);
  obs::Histogram* h = reg.GetHistogram("midas_test_dur_ms", {1.0});
  h->Observe(0.5);
  obs::FlatJson doc = obs::ParseFlatJson(obs::ExportJson(reg));
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_DOUBLE_EQ(doc.numbers.at("counters.midas_test_runs_total"), 3.0);
  EXPECT_DOUBLE_EQ(doc.numbers.at("gauges.midas_test_size"), 7.5);
  EXPECT_DOUBLE_EQ(doc.numbers.at("histograms.midas_test_dur_ms.count"), 1.0);
  EXPECT_DOUBLE_EQ(doc.numbers.at("histograms.midas_test_dur_ms.sum"), 0.5);
  EXPECT_DOUBLE_EQ(
      doc.numbers.at("histograms.midas_test_dur_ms.buckets.0.le"), 1.0);
  EXPECT_DOUBLE_EQ(
      doc.numbers.at("histograms.midas_test_dur_ms.buckets.0.count"), 1.0);
  EXPECT_EQ(doc.strings.at("histograms.midas_test_dur_ms.buckets.1.le"),
            "+Inf");
}

// --- Maintenance event log -------------------------------------------------

obs::MaintenanceEvent SampleEvent() {
  obs::MaintenanceEvent e;
  e.seq = 3;
  e.additions = 12;
  e.deletions = 4;
  e.db_size = 158;
  e.patterns = 30;
  e.major = true;
  e.graphlet_distance = 0.25;
  e.epsilon = 0.1;
  e.candidates = 16;
  e.swaps = 2;
  e.truncated = true;
  e.degrade_reason = "deadline";
  e.budget_steps = 4096;
  e.phase_ms = {{"total_ms", 10.5}, {"apply_ms", 4.5}, {"swap_ms", 6.0}};
  e.scov = 0.75;
  e.lcov = 0.5;
  e.div = 3.5;
  e.cog_avg = 6.25;
  e.cog_max = 12.0;
  return e;
}

TEST(EventLogTest, JsonLineMatchesGoldenSchema) {
  // Exact golden line: any schema change must update this test AND
  // docs/observability.md.
  EXPECT_EQ(
      obs::MaintenanceEventLog::ToJsonLine(SampleEvent()),
      R"({"seq":3,"additions":12,"deletions":4,"db_size":158,"patterns":30,)"
      R"("major":true,"graphlet_distance":0.25,"epsilon":0.1,)"
      R"("candidates":16,"swaps":2,)"
      R"("truncated":true,"degrade_reason":"deadline","budget_steps":4096,)"
      R"("phases":{"total_ms":10.5,"apply_ms":4.5,"swap_ms":6},)"
      R"("quality":{"scov":0.75,"lcov":0.5,"div":3.5,"cog_avg":6.25,)"
      R"("cog_max":12}})");
}

TEST(EventLogTest, EveryLineIsValidJson) {
  std::string line = obs::MaintenanceEventLog::ToJsonLine(SampleEvent());
  obs::FlatJson doc = obs::ParseFlatJson(line);
  ASSERT_TRUE(doc.ok) << doc.error;
  EXPECT_DOUBLE_EQ(doc.numbers.at("seq"), 3.0);
  EXPECT_TRUE(doc.bools.at("major"));
  EXPECT_DOUBLE_EQ(doc.numbers.at("phases.total_ms"), 10.5);
  EXPECT_DOUBLE_EQ(doc.numbers.at("quality.scov"), 0.75);
  EXPECT_TRUE(doc.bools.at("truncated"));
  EXPECT_EQ(doc.strings.at("degrade_reason"), "deadline");
  EXPECT_DOUBLE_EQ(doc.numbers.at("budget_steps"), 4096.0);
}

TEST(EventLogTest, BuffersAndNotifiesSink) {
  obs::MaintenanceEventLog log;
  std::ostringstream sink_out;
  log.set_sink(obs::StreamSink(&sink_out));
  log.Append(SampleEvent());
  log.Append(SampleEvent());
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.lines()[0], obs::MaintenanceEventLog::ToJsonLine(SampleEvent()));
  // Sink received both lines, newline-terminated.
  std::string streamed = sink_out.str();
  EXPECT_EQ(std::count(streamed.begin(), streamed.end(), '\n'), 2);
}

TEST(EventLogTest, BufferingCanBeDisabled) {
  obs::MaintenanceEventLog log;
  int sunk = 0;
  log.set_sink([&](const std::string&) { ++sunk; });
  log.set_buffering(false);
  log.Append(SampleEvent());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(sunk, 1);
}

}  // namespace
}  // namespace midas
