#include "midas/cluster/clustering.h"

#include <gtest/gtest.h>

#include "midas/datagen/molecule_gen.h"
#include "test_util.h"

namespace midas {
namespace {

ClusterSet::Config SmallConfig() {
  ClusterSet::Config c;
  c.num_coarse = 3;
  c.max_cluster_size = 6;
  return c;
}

TEST(ClusterSetTest, BuildPartitionsDatabase) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  Rng rng(1);
  ClusterSet clusters = ClusterSet::Build(db, fcts, SmallConfig(), rng);

  // Every graph belongs to exactly one cluster.
  size_t total = 0;
  for (const auto& [cid, c] : clusters.clusters()) {
    total += c.members.size();
    for (GraphId id : c.members) {
      EXPECT_EQ(clusters.ClusterOf(id), static_cast<int>(cid));
    }
  }
  EXPECT_EQ(total, db.size());
}

TEST(ClusterSetTest, ClusterOfUnknownGraph) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  Rng rng(1);
  ClusterSet clusters = ClusterSet::Build(db, fcts, SmallConfig(), rng);
  EXPECT_EQ(clusters.ClusterOf(999), -1);
}

TEST(ClusterSetTest, MaxClusterSizeEnforced) {
  MoleculeGenerator gen(42);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(40));
  FctSet fcts = FctSet::Mine(db, {0.4, 3, 20000});
  ClusterSet::Config cfg;
  cfg.num_coarse = 2;  // force oversized coarse clusters
  cfg.max_cluster_size = 8;
  Rng rng(2);
  ClusterSet clusters = ClusterSet::Build(db, fcts, cfg, rng);
  for (const auto& [cid, c] : clusters.clusters()) {
    EXPECT_LE(c.members.size(), cfg.max_cluster_size);
  }
}

TEST(ClusterSetTest, AssignGraphsToNearestCentroid) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  Rng rng(3);
  ClusterSet clusters = ClusterSet::Build(db, fcts, SmallConfig(), rng);
  size_t before = 0;
  for (const auto& [cid, c] : clusters.clusters()) before += c.members.size();

  LabelDictionary& d = db.labels();
  BatchUpdate delta;
  delta.insertions.push_back(testing_util::Path(d, {"C", "O", "C"}));
  std::vector<GraphId> added = db.ApplyBatch(delta);

  std::vector<ClusterId> affected = clusters.AssignGraphs(db, added);
  EXPECT_EQ(affected.size(), 1u);
  EXPECT_EQ(clusters.ClusterOf(added[0]), static_cast<int>(affected[0]));

  size_t after = 0;
  for (const auto& [cid, c] : clusters.clusters()) after += c.members.size();
  EXPECT_EQ(after, before + 1);
}

TEST(ClusterSetTest, RemoveGraphsUpdatesMembership) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  Rng rng(4);
  ClusterSet clusters = ClusterSet::Build(db, fcts, SmallConfig(), rng);

  int cid = clusters.ClusterOf(0);
  ASSERT_GE(cid, 0);
  std::vector<ClusterId> affected = clusters.RemoveGraphs({0});
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[0], static_cast<ClusterId>(cid));
  EXPECT_EQ(clusters.ClusterOf(0), -1);
}

TEST(ClusterSetTest, RemovingAllMembersDropsCluster) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  Rng rng(5);
  ClusterSet clusters = ClusterSet::Build(db, fcts, SmallConfig(), rng);

  std::vector<GraphId> all = db.Ids();
  clusters.RemoveGraphs(all);
  EXPECT_EQ(clusters.size(), 0u);
}

TEST(ClusterSetTest, CentroidTracksMembership) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  Rng rng(6);
  ClusterSet clusters = ClusterSet::Build(db, fcts, SmallConfig(), rng);

  for (const auto& [cid, c] : clusters.clusters()) {
    std::vector<double> centroid = c.Centroid();
    for (double x : centroid) {
      EXPECT_GE(x, -1e-9);
      EXPECT_LE(x, 1.0 + 1e-9);  // mean of binary features
    }
  }
}

TEST(ClusterSetTest, AddThenRemoveRestoresCentroidSums) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  Rng rng(7);
  ClusterSet clusters = ClusterSet::Build(db, fcts, SmallConfig(), rng);

  LabelDictionary& d = db.labels();
  BatchUpdate delta;
  delta.insertions.push_back(testing_util::Path(d, {"C", "O", "C", "S"}));
  std::vector<GraphId> added = db.ApplyBatch(delta);
  std::vector<ClusterId> affected = clusters.AssignGraphs(db, added);
  ASSERT_EQ(affected.size(), 1u);
  std::vector<double> with = clusters.clusters().at(affected[0]).feature_sums;

  clusters.RemoveGraphs(added);
  if (clusters.clusters().count(affected[0]) > 0) {
    const auto& sums = clusters.clusters().at(affected[0]).feature_sums;
    // Sums must have decreased by exactly the added vector (>= 0 and <= with).
    for (size_t i = 0; i < sums.size(); ++i) {
      EXPECT_LE(sums[i], with[i] + 1e-9);
      EXPECT_GE(sums[i], -1e-9);
    }
  }
}

TEST(ClusterSetTest, SplitKeepsAllMembers) {
  MoleculeGenerator gen(77);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(30));
  FctSet fcts = FctSet::Mine(db, {0.4, 3, 20000});
  ClusterSet::Config cfg;
  cfg.num_coarse = 1;
  cfg.max_cluster_size = 7;
  Rng rng(8);
  ClusterSet clusters = ClusterSet::Build(db, fcts, cfg, rng);
  size_t total = 0;
  for (const auto& [cid, c] : clusters.clusters()) {
    total += c.members.size();
    EXPECT_LE(c.members.size(), 7u);
  }
  EXPECT_EQ(total, db.size());
  EXPECT_GE(clusters.size(), (db.size() + 6) / 7);
}

}  // namespace
}  // namespace midas
