#include "midas/datagen/workload.h"

#include <gtest/gtest.h>

#include "midas/datagen/molecule_gen.h"
#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

TEST(RandomConnectedSubgraphTest, SizeAndConnectivity) {
  MoleculeGenerator gen(1);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(5));
  Rng rng(2);
  for (const auto& [id, g] : db.graphs()) {
    for (size_t target : {2u, 4u, 8u}) {
      Graph q = RandomConnectedSubgraph(g, target, rng);
      EXPECT_TRUE(q.IsConnected());
      EXPECT_LE(q.NumEdges(), std::min(target, g.NumEdges()));
      EXPECT_GE(q.NumEdges(), 1u);
    }
  }
}

TEST(RandomConnectedSubgraphTest, IsActualSubgraph) {
  MoleculeGenerator gen(3);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(5));
  Rng rng(4);
  for (const auto& [id, g] : db.graphs()) {
    Graph q = RandomConnectedSubgraph(g, 5, rng);
    EXPECT_TRUE(ContainsSubgraph(q, g)) << "graph " << id;
  }
}

TEST(RandomConnectedSubgraphTest, EmptyGraph) {
  Rng rng(5);
  Graph q = RandomConnectedSubgraph(Graph(), 4, rng);
  EXPECT_EQ(q.NumEdges(), 0u);
}

TEST(GenerateQueriesTest, CountAndSizes) {
  MoleculeGenerator gen(6);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(20));
  QueryGenConfig cfg;
  cfg.count = 40;
  cfg.min_edges = 3;
  cfg.max_edges = 10;
  Rng rng(7);
  auto queries = GenerateQueries(db, cfg, rng);
  EXPECT_EQ(queries.size(), 40u);
  for (const Graph& q : queries) {
    EXPECT_GE(q.NumEdges(), 1u);
    EXPECT_LE(q.NumEdges(), 10u);
    EXPECT_TRUE(q.IsConnected());
  }
}

TEST(GenerateQueriesTest, EmptyDatabase) {
  GraphDatabase db;
  QueryGenConfig cfg;
  Rng rng(8);
  EXPECT_TRUE(GenerateQueries(db, cfg, rng).empty());
}

TEST(GenerateBalancedQueriesTest, HalfFromDelta) {
  MoleculeGenerator gen(9);
  MoleculeGenConfig mcfg = MoleculeGenerator::EmolLike(20);
  GraphDatabase db = gen.Generate(mcfg);
  BatchUpdate delta = gen.GenerateAdditions(db, mcfg, 10, true);
  std::vector<GraphId> added = db.ApplyBatch(delta);

  QueryGenConfig cfg;
  cfg.count = 30;
  cfg.min_edges = 3;
  cfg.max_edges = 8;
  Rng rng(10);
  auto queries = GenerateBalancedQueries(db, added, cfg, rng);
  EXPECT_EQ(queries.size(), 30u);

  // Delta graphs carry boron; at least some queries should too (the first
  // half was drawn from the delta).
  Label b = static_cast<Label>(db.labels().Lookup("B"));
  size_t with_boron = 0;
  for (const Graph& q : queries) {
    for (VertexId v = 0; v < q.NumVertices(); ++v) {
      if (q.label(v) == b) {
        ++with_boron;
        break;
      }
    }
  }
  EXPECT_GT(with_boron, 0u);
}

TEST(GenerateBalancedQueriesTest, EmptyDeltaFallsBack) {
  MoleculeGenerator gen(11);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(10));
  QueryGenConfig cfg;
  cfg.count = 10;
  Rng rng(12);
  auto queries = GenerateBalancedQueries(db, {}, cfg, rng);
  EXPECT_EQ(queries.size(), 10u);
}

TEST(GenerateBalancedQueriesTest, StaleDeltaIdsSkipped) {
  MoleculeGenerator gen(13);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(10));
  QueryGenConfig cfg;
  cfg.count = 6;
  Rng rng(14);
  // Ids that no longer exist behave like an empty delta.
  auto queries = GenerateBalancedQueries(db, {9999, 10000}, cfg, rng);
  EXPECT_EQ(queries.size(), 6u);
}

}  // namespace
}  // namespace midas
