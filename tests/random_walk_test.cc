#include "midas/select/random_walk.h"

#include <gtest/gtest.h>

#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeToyDatabase;

struct Fixture {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  Csg csg;

  Fixture() {
    IdSet members(db.Ids());
    csg = Csg::Build(db, members);
  }
};

TEST(CsgEdgeWeightsTest, WeightsWithinUnitInterval) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  EXPECT_EQ(w.size(), f.csg.NumLiveEdges());
  for (const auto& [key, weight] : w) {
    EXPECT_GE(weight, 0.0);
    EXPECT_LE(weight, 1.0 + 1e-9);
  }
}

TEST(CsgEdgeWeightsTest, UbiquitousEdgeOutweighsRareEdge) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  const Graph& skel = f.csg.skeleton();
  Label c = static_cast<Label>(f.db.labels().Lookup("C"));
  Label o = static_cast<Label>(f.db.labels().Lookup("O"));
  Label n = static_cast<Label>(f.db.labels().Lookup("N"));
  double best_co = 0.0;
  double best_cn = 0.0;
  for (const auto& [edge, ids] : f.csg.Edges()) {
    const auto& [u, v] = edge;
    EdgeLabelPair lp = skel.EdgeLabel(u, v);
    double weight = w.at(CsgEdgeKey(u, v));
    if (lp == EdgeLabelPair(c, o)) best_co = std::max(best_co, weight);
    if (lp == EdgeLabelPair(c, n)) best_cn = std::max(best_cn, weight);
  }
  EXPECT_GT(best_co, best_cn);
}

TEST(WalkTraversalsTest, OnlyLiveEdgesTraversed) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  Rng rng(5);
  WalkConfig cfg;
  cfg.num_walks = 50;
  cfg.walk_length = 10;
  EdgeWeights t = WalkTraversals(f.csg, w, cfg, rng);
  EXPECT_FALSE(t.empty());
  for (const auto& [key, count] : t) {
    EXPECT_GT(count, 0.0);
    EXPECT_TRUE(w.count(key) > 0) << "traversed a non-csg edge";
  }
}

TEST(WalkTraversalsTest, DeterministicBySeed) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  WalkConfig cfg;
  Rng r1(9);
  Rng r2(9);
  auto t1 = WalkTraversals(f.csg, w, cfg, r1);
  auto t2 = WalkTraversals(f.csg, w, cfg, r2);
  EXPECT_EQ(t1.size(), t2.size());
  for (const auto& [key, count] : t1) {
    EXPECT_DOUBLE_EQ(count, t2.at(key));
  }
}

TEST(WalkTraversalsTest, EmptyCsg) {
  Csg empty;
  Rng rng(1);
  WalkConfig cfg;
  EXPECT_TRUE(WalkTraversals(empty, {}, cfg, rng).empty());
}

TEST(ExtractCandidateTest, ProducesConnectedPatternOfRequestedSize) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  Rng rng(7);
  WalkConfig cfg;
  EdgeWeights t = WalkTraversals(f.csg, w, cfg, rng);
  for (size_t eta = 2; eta <= 4; ++eta) {
    Graph g = ExtractCandidate(f.csg, t, eta, 0);
    if (g.NumEdges() == 0) continue;  // csg exhausted
    EXPECT_LE(g.NumEdges(), eta);
    EXPECT_TRUE(g.IsConnected());
  }
}

TEST(ExtractCandidateTest, StartRankVariesSeed) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  Rng rng(8);
  WalkConfig cfg;
  EdgeWeights t = WalkTraversals(f.csg, w, cfg, rng);
  Graph g0 = ExtractCandidate(f.csg, t, 3, 0);
  Graph g9 = ExtractCandidate(f.csg, t, 3, 999);  // clamped to last rank
  EXPECT_GT(g0.NumEdges(), 0u);
  EXPECT_GT(g9.NumEdges(), 0u);
}

TEST(ExtractCandidateTest, PruneCallbackStopsGrowth) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  Rng rng(9);
  EdgeWeights t = WalkTraversals(f.csg, w, WalkConfig(), rng);

  // Prune everything: not even the seed edge is allowed.
  EdgePruneFn prune_all = [](VertexId, VertexId) { return true; };
  Graph g = ExtractCandidate(f.csg, t, 4, 0, &prune_all);
  EXPECT_EQ(g.NumEdges(), 0u);

  // Allow exactly two edges.
  int allowed = 2;
  EdgePruneFn prune_after_two = [&allowed](VertexId, VertexId) {
    return allowed-- <= 0;
  };
  Graph g2 = ExtractCandidate(f.csg, t, 6, 0, &prune_after_two);
  EXPECT_LE(g2.NumEdges(), 2u);
}

TEST(ExtractCandidateTest, PatternEmbedsInSkeleton) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  Rng rng(10);
  EdgeWeights t = WalkTraversals(f.csg, w, WalkConfig(), rng);
  Graph g = ExtractCandidate(f.csg, t, 4, 0);
  if (g.NumEdges() > 0) {
    EXPECT_TRUE(ContainsSubgraph(g, f.csg.skeleton()));
  }
}

TEST(PcpLibraryTest, DistinctRankedCandidates) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  Rng rng(21);
  EdgeWeights t = WalkTraversals(f.csg, w, WalkConfig(), rng);
  auto library = BuildPcpLibrary(f.csg, t, 3, 8);
  ASSERT_FALSE(library.empty());
  // No two library entries are isomorphic.
  for (size_t i = 0; i < library.size(); ++i) {
    for (size_t j = i + 1; j < library.size(); ++j) {
      EXPECT_FALSE(AreIsomorphic(library[i].pattern, library[j].pattern));
    }
  }
  // Ranked by traversal mass, descending.
  for (size_t i = 1; i < library.size(); ++i) {
    EXPECT_GE(library[i - 1].traversal_mass, library[i].traversal_mass);
  }
  for (const Pcp& pcp : library) {
    EXPECT_GE(pcp.proposals, 1u);
    EXPECT_GE(pcp.traversal_mass, 0.0);
    EXPECT_TRUE(pcp.pattern.IsConnected());
  }
}

TEST(PcpLibraryTest, SizeCapAndEmptyCases) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  Rng rng(22);
  EdgeWeights t = WalkTraversals(f.csg, w, WalkConfig(), rng);
  EXPECT_TRUE(BuildPcpLibrary(f.csg, t, 3, 0).empty());
  auto capped = BuildPcpLibrary(f.csg, t, 3, 2);
  EXPECT_LE(capped.size(), 2u);
  Csg empty;
  EXPECT_TRUE(BuildPcpLibrary(empty, {}, 3, 4).empty());
}

TEST(PcpLibraryTest, ExtractCandidateEdgesMatchesProjection) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  Rng rng(23);
  EdgeWeights t = WalkTraversals(f.csg, w, WalkConfig(), rng);
  auto edges = ExtractCandidateEdges(f.csg, t, 4, 0);
  Graph direct = ExtractCandidate(f.csg, t, 4, 0);
  EXPECT_EQ(edges.size(), direct.NumEdges());
  if (!edges.empty()) {
    EXPECT_TRUE(
        AreIsomorphic(ProjectPattern(f.csg.skeleton(), edges), direct));
  }
}

// The coherence guarantee: every extracted candidate is a subgraph of at
// least one member graph of the csg (non-zero subgraph coverage by
// construction).
class CoherenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CoherenceTest, CandidateExistsInSomeMember) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  IdSet members(db.Ids());
  Csg csg = Csg::Build(db, members);
  EdgeWeights w = CsgEdgeWeights(csg, fcts, db.size());
  Rng rng(4000 + GetParam());
  EdgeWeights t = WalkTraversals(csg, w, WalkConfig(), rng);

  for (size_t eta = 2; eta <= 5; ++eta) {
    Graph g = ExtractCandidate(csg, t, eta, static_cast<size_t>(GetParam()));
    if (g.NumEdges() == 0) continue;
    bool contained = false;
    for (GraphId id : members) {
      if (ContainsSubgraph(g, *db.Find(id))) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "eta " << eta << " rank " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, CoherenceTest, ::testing::Range(0, 8));

TEST(MultiplicativeWeightsUpdateTest, DecaysCoveredLabels) {
  Fixture f;
  EdgeWeights w = CsgEdgeWeights(f.csg, f.fcts, f.db.size());
  EdgeWeights before = w;

  LabelDictionary& d = f.db.labels();
  Graph selected = testing_util::Path(d, {"C", "O"});
  MultiplicativeWeightsUpdate(f.csg, selected, w, 0.5);

  const Graph& skel = f.csg.skeleton();
  Label c = static_cast<Label>(d.Lookup("C"));
  Label o = static_cast<Label>(d.Lookup("O"));
  EdgeLabelPair co(c, o);
  for (const auto& [key, weight] : w) {
    VertexId u = static_cast<VertexId>(key >> 32);
    VertexId v = static_cast<VertexId>(key & 0xffffffffu);
    if (skel.EdgeLabel(u, v) == co) {
      EXPECT_DOUBLE_EQ(weight, before.at(key) * 0.5);
    } else {
      EXPECT_DOUBLE_EQ(weight, before.at(key));
    }
  }
}

}  // namespace
}  // namespace midas
