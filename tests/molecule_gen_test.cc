#include "midas/datagen/molecule_gen.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "midas/graph/graph_io.h"

namespace midas {
namespace {

TEST(MoleculeGenTest, GeneratesRequestedCount) {
  MoleculeGenerator gen(1);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(25));
  EXPECT_EQ(db.size(), 25u);
}

TEST(MoleculeGenTest, GraphsAreConnectedAndSized) {
  MoleculeGenerator gen(2);
  MoleculeGenConfig cfg = MoleculeGenerator::PubchemLike(30);
  GraphDatabase db = gen.Generate(cfg);
  for (const auto& [id, g] : db.graphs()) {
    EXPECT_TRUE(g.IsConnected()) << "graph " << id;
    EXPECT_GE(g.NumVertices(), cfg.min_vertices);
    // Motifs can push past the target by a few vertices.
    EXPECT_LE(g.NumVertices(), cfg.max_vertices + 6);
    EXPECT_GE(g.NumEdges(), g.NumVertices() - 1);
  }
}

TEST(MoleculeGenTest, DeterministicBySeed) {
  MoleculeGenerator g1(7);
  MoleculeGenerator g2(7);
  GraphDatabase db1 = g1.Generate(MoleculeGenerator::EmolLike(10));
  GraphDatabase db2 = g2.Generate(MoleculeGenerator::EmolLike(10));
  std::ostringstream s1;
  std::ostringstream s2;
  WriteDatabase(db1, s1);
  WriteDatabase(db2, s2);
  EXPECT_EQ(s1.str(), s2.str());
}

TEST(MoleculeGenTest, AlphabetInternedUpfront) {
  MoleculeGenerator gen(3);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(5));
  for (const char* atom : {"C", "O", "N", "H", "S", "P", "Cl", "B"}) {
    EXPECT_GE(db.labels().Lookup(atom), 0) << atom;
  }
  // Fixed order: C is always label 0.
  EXPECT_EQ(db.labels().Lookup("C"), 0);
}

TEST(MoleculeGenTest, AdditionsCompatibleWithCopies) {
  MoleculeGenerator gen(4);
  MoleculeGenConfig cfg = MoleculeGenerator::EmolLike(10);
  GraphDatabase db = gen.Generate(cfg);
  GraphDatabase copy = db;
  BatchUpdate delta = gen.GenerateAdditions(copy, cfg, 5, true);
  // Applying the delta to the original db yields valid labels.
  std::vector<GraphId> added = db.ApplyBatch(delta);
  for (GraphId id : added) {
    const Graph* g = db.Find(id);
    ASSERT_NE(g, nullptr);
    for (VertexId v = 0; v < g->NumVertices(); ++v) {
      EXPECT_NE(db.labels().Name(g->label(v))[0], '?');
    }
  }
}

TEST(MoleculeGenTest, NewFamilyCarriesBoron) {
  MoleculeGenerator gen(5);
  MoleculeGenConfig cfg = MoleculeGenerator::EmolLike(10);
  GraphDatabase db = gen.Generate(cfg);
  Label b = static_cast<Label>(db.labels().Lookup("B"));

  BatchUpdate delta = gen.GenerateAdditions(db, cfg, 8, true);
  size_t with_boron = 0;
  for (const Graph& g : delta.insertions) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (g.label(v) == b) {
        ++with_boron;
        break;
      }
    }
  }
  EXPECT_EQ(with_boron, delta.insertions.size());
}

TEST(MoleculeGenTest, InFamilyAdditionsAvoidBoron) {
  MoleculeGenerator gen(6);
  MoleculeGenConfig cfg = MoleculeGenerator::EmolLike(10);
  GraphDatabase db = gen.Generate(cfg);
  Label b = static_cast<Label>(db.labels().Lookup("B"));
  BatchUpdate delta = gen.GenerateAdditions(db, cfg, 8, false);
  for (const Graph& g : delta.insertions) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_NE(g.label(v), b);
    }
  }
}

TEST(MoleculeGenTest, DeletionsPickExistingIds) {
  MoleculeGenerator gen(8);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(12));
  BatchUpdate delta = gen.GenerateDeletions(db, 5);
  EXPECT_EQ(delta.deletions.size(), 5u);
  std::set<GraphId> unique(delta.deletions.begin(), delta.deletions.end());
  EXPECT_EQ(unique.size(), 5u);
  for (GraphId id : delta.deletions) EXPECT_TRUE(db.Contains(id));

  // Requesting more deletions than graphs clamps.
  BatchUpdate all = gen.GenerateDeletions(db, 100);
  EXPECT_EQ(all.deletions.size(), db.size());
}

TEST(MoleculeGenTest, TargetedDeletionsHitLabel) {
  MoleculeGenerator gen(10);
  MoleculeGenConfig cfg = MoleculeGenerator::EmolLike(20);
  GraphDatabase db = gen.Generate(cfg);
  // Add boron-family graphs so the target label exists.
  BatchUpdate add = gen.GenerateAdditions(db, cfg, 8, true);
  db.ApplyBatch(add);

  BatchUpdate del = gen.GenerateTargetedDeletions(db, "B", 5);
  EXPECT_GT(del.deletions.size(), 0u);
  EXPECT_LE(del.deletions.size(), 5u);
  Label b = static_cast<Label>(db.labels().Lookup("B"));
  for (GraphId id : del.deletions) {
    const Graph* g = db.Find(id);
    ASSERT_NE(g, nullptr);
    bool has_b = false;
    for (VertexId v = 0; v < g->NumVertices(); ++v) {
      if (g->label(v) == b) has_b = true;
    }
    EXPECT_TRUE(has_b) << "graph " << id;
  }
}

TEST(MoleculeGenTest, TargetedDeletionsUnknownLabel) {
  MoleculeGenerator gen(11);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(10));
  BatchUpdate del = gen.GenerateTargetedDeletions(db, "Zz", 5);
  EXPECT_TRUE(del.deletions.empty());
}

TEST(MoleculeGenTest, PresetsDiffer) {
  MoleculeGenConfig aids = MoleculeGenerator::AidsLike(10);
  MoleculeGenConfig pub = MoleculeGenerator::PubchemLike(10);
  MoleculeGenConfig emol = MoleculeGenerator::EmolLike(10);
  EXPECT_NE(aids.family_seed, pub.family_seed);
  EXPECT_NE(pub.family_seed, emol.family_seed);
  EXPECT_GT(aids.max_vertices, emol.max_vertices);
}

}  // namespace
}  // namespace midas
