#include <gtest/gtest.h>

#include "midas/graph/closure_graph.h"
#include "midas/graph/mccs.h"
#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeGraph;
using testing_util::Path;

TEST(MccsTest, IdenticalGraphsFullSimilarity) {
  LabelDictionary d;
  Rng rng(1);
  Graph g = Path(d, {"C", "O", "C", "S"});
  EXPECT_EQ(ApproxMccsEdges(g, g, rng, 8), g.NumEdges());
  Rng rng2(1);
  EXPECT_DOUBLE_EQ(MccsSimilarity(g, g, rng2, 8), 1.0);
}

TEST(MccsTest, DisjointLabelsZero) {
  LabelDictionary d;
  Rng rng(2);
  Graph a = Path(d, {"C", "C"});
  Graph b = Path(d, {"N", "N"});
  EXPECT_EQ(ApproxMccsEdges(a, b, rng, 4), 0u);
  EXPECT_DOUBLE_EQ(MccsSimilarity(a, b, rng, 4), 0.0);
}

TEST(MccsTest, EmptyGraphZero) {
  LabelDictionary d;
  Rng rng(3);
  Graph a = Path(d, {"C", "C"});
  EXPECT_DOUBLE_EQ(MccsSimilarity(a, Graph(), rng, 4), 0.0);
}

TEST(MccsTest, SharedBackboneDetected) {
  LabelDictionary d;
  Rng rng(4);
  // Both contain C-O-C; decorations differ.
  Graph a = MakeGraph(d, {"C", "O", "C", "S"}, {{0, 1}, {1, 2}, {2, 3}});
  Graph b = MakeGraph(d, {"C", "O", "C", "N"}, {{0, 1}, {1, 2}, {2, 3}});
  size_t mccs = ApproxMccsEdges(a, b, rng, 8);
  EXPECT_GE(mccs, 2u);  // at least the C-O-C backbone
}

TEST(MccsTest, NeverExceedsSmallerGraph) {
  LabelDictionary d;
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Graph a = testing_util::RandomGraph(d, rng, 6, 2, 2);
    Graph b = testing_util::RandomGraph(d, rng, 9, 3, 2);
    size_t mccs = ApproxMccsEdges(a, b, rng, 4);
    EXPECT_LE(mccs, std::min(a.NumEdges(), b.NumEdges()));
    double sim = MccsSimilarity(a, b, rng, 4);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
}

TEST(GreedyAlignTest, ExactCopyFullyMapped) {
  LabelDictionary d;
  Graph g = Path(d, {"C", "O", "C"});
  auto mapping = GreedyAlign(g, g);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_GE(mapping[v], 0);
    EXPECT_EQ(g.label(static_cast<VertexId>(mapping[v])), g.label(v));
  }
  // Injective.
  EXPECT_NE(mapping[0], mapping[2]);
}

TEST(GreedyAlignTest, LabelMismatchUnmapped) {
  LabelDictionary d;
  Graph g = Path(d, {"N", "N"});
  Graph target = Path(d, {"C", "O"});
  auto mapping = GreedyAlign(g, target);
  EXPECT_EQ(mapping[0], -1);
  EXPECT_EQ(mapping[1], -1);
}

TEST(GraphClosureTest, ContainsBothInputs) {
  LabelDictionary d;
  Graph g1 = MakeGraph(d, {"C", "O", "C"}, {{0, 1}, {1, 2}});
  Graph g2 = MakeGraph(d, {"C", "O", "S"}, {{0, 1}, {1, 2}});
  Graph closure = GraphClosure(g1, g2);
  EXPECT_TRUE(ContainsSubgraph(g1, closure));
  EXPECT_TRUE(ContainsSubgraph(g2, closure));
}

TEST(GraphClosureTest, IdenticalInputsNoGrowth) {
  LabelDictionary d;
  Graph g = Path(d, {"C", "O", "C", "S"});
  Graph closure = GraphClosure(g, g);
  EXPECT_EQ(closure.NumVertices(), g.NumVertices());
  EXPECT_EQ(closure.NumEdges(), g.NumEdges());
}

TEST(GraphClosureTest, DisjointLabelsConcatenate) {
  LabelDictionary d;
  Graph g1 = Path(d, {"C", "C"});
  Graph g2 = Path(d, {"N", "N"});
  Graph closure = GraphClosure(g1, g2);
  EXPECT_EQ(closure.NumVertices(), 4u);
  EXPECT_EQ(closure.NumEdges(), 2u);
}

// Property: closure of two random graphs contains both (the defining
// property of graph integration, Figure 4).
class ClosurePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ClosurePropertyTest, ClosureContainsBoth) {
  LabelDictionary d;
  Rng rng(2000 + GetParam());
  Graph g1 = testing_util::RandomGraph(d, rng, 5 + GetParam() % 4, 2, 3);
  Graph g2 = testing_util::RandomGraph(d, rng, 5 + GetParam() % 3, 2, 3);
  Graph closure = GraphClosure(g1, g2);
  EXPECT_TRUE(ContainsSubgraph(g1, closure));
  EXPECT_TRUE(ContainsSubgraph(g2, closure));
}

INSTANTIATE_TEST_SUITE_P(Random, ClosurePropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace midas
