// End-to-end integration tests: the full MIDAS pipeline against the
// from-scratch baselines on a synthetic molecule database, checking the
// paper's headline claims at toy scale:
//   - maintenance is cheaper than regeneration,
//   - MIDAS's maintained set serves Δ⁺-heavy workloads better than a stale
//     (NoMaintain) set,
//   - set-level quality metrics do not collapse after maintenance.

#include <gtest/gtest.h>

#include "midas/common/timer.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/datagen/workload.h"
#include "midas/maintain/midas.h"
#include "midas/queryform/formulation.h"

namespace midas {
namespace {

MidasConfig IntegrationConfig() {
  MidasConfig cfg;
  cfg.fct.sup_min = 0.4;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 4;
  cfg.cluster.max_cluster_size = 30;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 6;
  cfg.budget.gamma = 10;
  cfg.walk.num_walks = 60;
  cfg.walk.walk_length = 15;
  cfg.sample_cap = 0;
  cfg.epsilon = 0.005;  // a 30-graph new family in a 150-graph base is major
  cfg.seed = 99;
  return cfg;
}

struct World {
  MoleculeGenerator gen{424242};
  MoleculeGenConfig data_cfg = MoleculeGenerator::EmolLike(150);
  MidasConfig cfg = IntegrationConfig();
  std::unique_ptr<MidasEngine> engine;
  std::vector<GraphId> added;

  World() {
    GraphDatabase db = gen.Generate(data_cfg);
    engine = std::make_unique<MidasEngine>(std::move(db), cfg);
    engine->Initialize();
  }

  MaintenanceStats EvolveNewFamily(size_t count,
                                   MaintenanceMode mode = MaintenanceMode::kMidas) {
    GraphDatabase copy = engine->db();
    BatchUpdate delta = gen.GenerateAdditions(copy, data_cfg, count, true);
    MaintenanceStats stats = engine->ApplyUpdate(delta, mode);
    // Recover ids of the inserted graphs: they are the newest ones.
    std::vector<GraphId> ids = engine->db().Ids();
    added.assign(ids.end() - static_cast<long>(count), ids.end());
    return stats;
  }
};

TEST(IntegrationTest, MaintenanceFasterThanRegeneration) {
  World w;
  MaintenanceStats stats = w.EvolveNewFamily(30);
  ASSERT_TRUE(stats.major);

  Timer scratch_timer;
  FromScratchResult scratch = RunFromScratch(w.engine->db(), w.cfg, true, 99);
  double scratch_ms = scratch_timer.ElapsedMs();
  EXPECT_GT(scratch.patterns.size(), 0u);

  // The paper reports up to 80x; at toy scale we only require a clear win.
  EXPECT_LT(stats.total_ms, scratch_ms);
}

TEST(IntegrationTest, MaintainedSetBeatsStaleSetOnDeltaQueries) {
  World w;

  // Freeze a stale copy of the pattern set before evolution.
  World stale;  // identical seeds -> identical initial state
  stale.EvolveNewFamily(30, MaintenanceMode::kNoMaintain);
  w.EvolveNewFamily(30, MaintenanceMode::kMidas);

  // Queries drawn from the new family only.
  QueryGenConfig qcfg;
  qcfg.count = 40;
  qcfg.min_edges = 4;
  qcfg.max_edges = 12;
  Rng qrng(7);
  std::vector<Graph> queries;
  for (size_t i = 0; i < qcfg.count; ++i) {
    GraphId id = w.added[static_cast<size_t>(
        qrng.UniformInt(0, w.added.size() - 1))];
    const Graph* g = w.engine->db().Find(id);
    ASSERT_NE(g, nullptr);
    Graph q = RandomConnectedSubgraph(
        *g,
        static_cast<size_t>(qrng.UniformInt(qcfg.min_edges, qcfg.max_edges)),
        qrng);
    if (q.NumEdges() > 0) queries.push_back(std::move(q));
  }

  double mp_midas = MissedPercentage(queries, w.engine->patterns());
  double mp_stale = MissedPercentage(queries, stale.engine->patterns());
  double steps_midas = MeanSteps(queries, w.engine->patterns());
  double steps_stale = MeanSteps(queries, stale.engine->patterns());

  // MIDAS must not be worse, and in aggregate should help.
  EXPECT_LE(mp_midas, mp_stale + 1e-9);
  EXPECT_LE(steps_midas, steps_stale + 1e-9);
}

TEST(IntegrationTest, QualityMetricsSurviveEvolution) {
  World w;
  w.EvolveNewFamily(30);
  PatternQuality q = w.engine->CurrentQuality();
  EXPECT_GT(q.scov, 0.0);
  EXPECT_GT(q.lcov, 0.0);
  EXPECT_GE(q.div, 0.0);
  EXPECT_GT(q.cog_max, 0.0);
  EXPECT_EQ(w.engine->patterns().size(), 10u);
}

TEST(IntegrationTest, RepeatedRoundsStayConsistent) {
  World w;
  for (int round = 0; round < 3; ++round) {
    GraphDatabase copy = w.engine->db();
    BatchUpdate delta =
        w.gen.GenerateAdditions(copy, w.data_cfg, 8, round % 2 == 0);
    // Mix in deletions.
    BatchUpdate deletions = w.gen.GenerateDeletions(w.engine->db(), 4);
    delta.deletions = deletions.deletions;
    w.engine->ApplyUpdate(delta);

    // Structural invariants after every round.
    size_t member_total = 0;
    for (const auto& [cid, c] : w.engine->clusters().clusters()) {
      member_total += c.members.size();
      EXPECT_TRUE(w.engine->csgs().at(cid).members() == c.members);
    }
    EXPECT_EQ(member_total, w.engine->db().size());
    EXPECT_EQ(w.engine->fcts().database_size(), w.engine->db().size());
    EXPECT_EQ(w.engine->patterns().size(), 10u);
  }
}

TEST(IntegrationTest, RandomModeMaintainsButWithoutGuarantees) {
  World w;
  PatternQuality before = w.engine->CurrentQuality();
  MaintenanceStats stats =
      w.EvolveNewFamily(30, MaintenanceMode::kRandomSwap);
  if (stats.major) {
    EXPECT_GE(stats.swaps, 0);
  }
  // Cardinality is preserved even by random swapping.
  EXPECT_EQ(w.engine->patterns().size(), 10u);
  (void)before;
}

}  // namespace
}  // namespace midas
