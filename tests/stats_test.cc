#include "midas/common/stats.h"

#include <gtest/gtest.h>

#include "midas/common/rng.h"

namespace midas {
namespace {

TEST(StatsTest, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Stddev({5}), 0.0);
  EXPECT_NEAR(Stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-9);
}

TEST(StatsTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1, 2}, {1, 2}), 0.0);
  // Implicit zero padding for shorter vectors.
  EXPECT_DOUBLE_EQ(EuclideanDistance({3}, {3, 4}), 4.0);
}

TEST(StatsTest, NormalizeToDistribution) {
  std::vector<double> v = {1, 1, 2};
  NormalizeToDistribution(v);
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[2], 0.5);
  std::vector<double> zeros = {0, 0};
  NormalizeToDistribution(zeros);  // no-op, no NaN
  EXPECT_DOUBLE_EQ(zeros[0], 0.0);
}

TEST(KsTest, IdenticalSamplesSimilar) {
  std::vector<double> a = {3, 4, 5, 6, 7, 8, 9, 10};
  KsResult r = KsTest(a, a);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_GT(r.p_value, 0.9);
  EXPECT_TRUE(KsSimilar(a, a));
}

TEST(KsTest, DisjointSamplesDiffer) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(i);
    b.push_back(1000 + i);
  }
  KsResult r = KsTest(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_FALSE(KsSimilar(a, b));
}

TEST(KsTest, SmallPerturbationStaysSimilar) {
  // Removing one size-6 pattern and adding a size-7 one barely moves the
  // empirical CDF — the swap criterion case.
  std::vector<double> sizes = {3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                               3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<double> perturbed = sizes;
  perturbed[3] = 7;
  EXPECT_TRUE(KsSimilar(sizes, perturbed));
}

TEST(KsTest, EmptySampleIsVacuouslySimilar) {
  EXPECT_TRUE(KsSimilar({}, {1, 2, 3}));
}

TEST(KsTest, SameDistributionRandomDraws) {
  Rng rng(9);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.UniformReal());
    b.push_back(rng.UniformReal());
  }
  EXPECT_TRUE(KsSimilar(a, b, 0.01));
}

}  // namespace
}  // namespace midas
