#include "midas/graph/graph_statistics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.h"

namespace midas {
namespace {

TEST(GraphStatisticsTest, EmptyDatabase) {
  GraphDatabase db;
  DatabaseStatistics s = ComputeStatistics(db);
  EXPECT_EQ(s.num_graphs, 0u);
  EXPECT_EQ(s.total_edges, 0u);
}

TEST(GraphStatisticsTest, ToyDatabaseCounts) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  DatabaseStatistics s = ComputeStatistics(db);
  EXPECT_EQ(s.num_graphs, db.size());
  EXPECT_EQ(s.total_edges, db.TotalEdges());
  EXPECT_EQ(s.max_edges, db.MaxGraphEdges());
  EXPECT_GT(s.mean_vertices, 0.0);
  EXPECT_GT(s.mean_degree, 0.0);
  // Toy database uses C, O, S, N.
  EXPECT_EQ(s.num_labels, 4u);
}

TEST(GraphStatisticsTest, LabelSharesSumToOne) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  DatabaseStatistics s = ComputeStatistics(db);
  double sum = 0.0;
  for (const auto& [name, share] : s.label_shares) sum += share;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GraphStatisticsTest, EdgeLabelCoverageBounds) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  DatabaseStatistics s = ComputeStatistics(db);
  ASSERT_FALSE(s.edge_label_coverage.empty());
  for (const auto& [name, share] : s.edge_label_coverage) {
    EXPECT_GT(share, 0.0);
    EXPECT_LE(share, 1.0);
  }
  // C-O occurs in every toy graph.
  EXPECT_DOUBLE_EQ(s.edge_label_coverage.at("C-O"), 1.0);
}

TEST(GraphStatisticsTest, PrintIsReadable) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  std::ostringstream out;
  PrintStatistics(ComputeStatistics(db), out);
  EXPECT_NE(out.str().find("graphs:"), std::string::npos);
  EXPECT_NE(out.str().find("label shares:"), std::string::npos);
  EXPECT_NE(out.str().find("C-O"), std::string::npos);
}

}  // namespace
}  // namespace midas
