#include "midas/index/pf_matrix.h"

#include <gtest/gtest.h>

#include "midas/graph/ged.h"
#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeGraph;
using testing_util::Path;

std::vector<Graph> EdgeFeature(LabelDictionary& d, const std::string& a,
                               const std::string& b) {
  std::vector<Graph> f;
  f.push_back(Path(d, {a, b}));
  return f;
}

TEST(PfMatrixTest, BuildShape) {
  LabelDictionary d;
  Graph g = Path(d, {"C", "O", "C"});
  auto features = EdgeFeature(d, "C", "O");
  PfMatrix pf = BuildPfMatrix(g, features);
  EXPECT_EQ(pf.rows.size(), g.NumEdges());
  // Two C-O edges -> 2 embeddings -> 2 columns.
  EXPECT_EQ(pf.feature_of_column.size(), 2u);
  // Each embedding touches exactly one edge of the 1-edge feature.
  for (size_t c = 0; c < pf.feature_of_column.size(); ++c) {
    int touched = 0;
    for (const auto& row : pf.rows) touched += row[c];
    EXPECT_EQ(touched, 1);
  }
}

TEST(ComputeRelaxedEdgesTest, ZeroWhenEmbeddingsFit) {
  LabelDictionary d;
  Graph small = Path(d, {"C", "O"});
  Graph big = Path(d, {"C", "O", "C"});
  EXPECT_EQ(ComputeRelaxedEdges(small, big, EdgeFeature(d, "C", "O")), 0);
}

TEST(ComputeRelaxedEdgesTest, CountsSurplus) {
  LabelDictionary d;
  // Smaller graph (2 edges, both C-O) vs a big graph with only one C-O edge:
  // one edge of the smaller graph must be relaxed.
  Graph small = Path(d, {"C", "O", "C"});          // 2 C-O embeddings... 2
  Graph big = MakeGraph(d, {"C", "O", "N", "N"},
                        {{0, 1}, {1, 2}, {2, 3}});  // 1 C-O edge
  int n = ComputeRelaxedEdges(small, big, EdgeFeature(d, "C", "O"));
  EXPECT_EQ(n, 1);
}

TEST(ComputeRelaxedEdgesTest, UsesSmallerSide) {
  LabelDictionary d;
  // Asymmetric call must relax on the smaller (fewer edges) graph; the
  // triangle/path case from Section 6.1: with B the smaller side, n = 0.
  Graph triangle = MakeGraph(d, {"C", "C", "C"}, {{0, 1}, {1, 2}, {0, 2}});
  Graph path = Path(d, {"C", "C", "C"});
  int n = ComputeRelaxedEdges(triangle, path, EdgeFeature(d, "C", "C"));
  EXPECT_EQ(n, 0);
  // Symmetric argument order gives the same answer.
  EXPECT_EQ(ComputeRelaxedEdges(path, triangle, EdgeFeature(d, "C", "C")), n);
}

TEST(GedTightWithFeaturesTest, AtLeastPlainLowerBound) {
  LabelDictionary d;
  Rng rng(21);
  for (int trial = 0; trial < 25; ++trial) {
    Graph a = testing_util::RandomGraph(d, rng, 5, 2, 2);
    Graph b = testing_util::RandomGraph(d, rng, 6, 2, 2);
    std::vector<Graph> features;
    features.push_back(Path(d, {"A", "A"}));
    features.push_back(Path(d, {"A", "B"}));
    int tight = GedTightLowerBoundWithFeatures(a, b, features);
    EXPECT_GE(tight, GedLowerBound(a, b));
  }
}

// Properties of the tightened estimate (see pf_matrix.h: it is a ranking
// heuristic, sound up to a small overshoot in relabel-heavy corner cases):
//   - always dominates the plain lower bound,
//   - zero for isomorphic graphs,
//   - never exceeds the exact GED by more than the observed corner-case
//     slack (one relabel-absorbed relaxation per mismatching vertex pair).
class TightBoundEstimateTest : public ::testing::TestWithParam<int> {};

TEST_P(TightBoundEstimateTest, EstimateProperties) {
  LabelDictionary d;
  Rng rng(3000 + GetParam());
  Graph a = testing_util::RandomGraph(d, rng, 4 + GetParam() % 3,
                                      GetParam() % 3, 2);
  Graph b = testing_util::RandomGraph(d, rng, 4 + (GetParam() / 3) % 3,
                                      GetParam() % 2, 2);
  std::vector<Graph> features;
  features.push_back(Path(d, {"A", "A"}));
  features.push_back(Path(d, {"A", "B"}));
  features.push_back(Path(d, {"B", "B"}));
  features.push_back(Path(d, {"A", "B", "A"}));
  int tight = GedTightLowerBoundWithFeatures(a, b, features);
  int exact = GedExact(a, b);
  EXPECT_GE(tight, GedLowerBound(a, b)) << "seed " << GetParam();
  EXPECT_LE(tight, exact + 2) << "seed " << GetParam();
  if (AreIsomorphic(a, b)) {
    EXPECT_EQ(tight, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, TightBoundEstimateTest,
                         ::testing::Range(0, 40));

TEST(TightBoundEstimateTest, ZeroForIsomorphicCopies) {
  LabelDictionary d;
  Rng rng(88);
  Graph g = testing_util::RandomGraph(d, rng, 7, 3, 2);
  Graph p = g.Permuted(testing_util::RandomPermutation(7, rng));
  std::vector<Graph> features;
  features.push_back(Path(d, {"A", "A"}));
  features.push_back(Path(d, {"A", "B"}));
  EXPECT_EQ(GedTightLowerBoundWithFeatures(g, p, features), 0);
}

TEST(EstimateGedTest, ExactForSmallGraphs) {
  LabelDictionary d;
  Graph a = Path(d, {"C", "O", "C"});
  Graph b = Path(d, {"C", "O", "N"});
  std::vector<Graph> features;
  EXPECT_EQ(EstimateGed(a, b, features), GedExact(a, b));
}

TEST(EstimateGedTest, FallsBackToBoundForLargeGraphs) {
  LabelDictionary d;
  Rng rng(5);
  Graph a = testing_util::RandomGraph(d, rng, 12, 4, 2);
  Graph b = testing_util::RandomGraph(d, rng, 13, 4, 2);
  std::vector<Graph> features;
  int est = EstimateGed(a, b, features, /*exact_max_vertices=*/8);
  EXPECT_EQ(est, GedTightLowerBoundWithFeatures(a, b, features));
}

}  // namespace
}  // namespace midas
