#include "midas/common/sparse_matrix.h"

#include <gtest/gtest.h>

namespace midas {
namespace {

TEST(SparseMatrixTest, SetGet) {
  SparseMatrix m;
  m.Set(1, 2, 5);
  EXPECT_EQ(m.Get(1, 2), 5);
  EXPECT_EQ(m.Get(2, 1), 0);
  EXPECT_EQ(m.NonZeroCount(), 1u);
}

TEST(SparseMatrixTest, ZeroErasesEntry) {
  SparseMatrix m;
  m.Set(1, 2, 5);
  m.Set(1, 2, 0);
  EXPECT_EQ(m.Get(1, 2), 0);
  EXPECT_EQ(m.NonZeroCount(), 0u);
  EXPECT_FALSE(m.HasRow(1));
}

TEST(SparseMatrixTest, AddAccumulatesAndErases) {
  SparseMatrix m;
  m.Add(3, 4, 2);
  m.Add(3, 4, 3);
  EXPECT_EQ(m.Get(3, 4), 5);
  m.Add(3, 4, -5);
  EXPECT_EQ(m.Get(3, 4), 0);
  EXPECT_EQ(m.NonZeroCount(), 0u);
}

TEST(SparseMatrixTest, RemoveRow) {
  SparseMatrix m;
  m.Set(1, 1, 1);
  m.Set(1, 2, 2);
  m.Set(2, 1, 3);
  m.RemoveRow(1);
  EXPECT_EQ(m.Get(1, 1), 0);
  EXPECT_EQ(m.Get(1, 2), 0);
  EXPECT_EQ(m.Get(2, 1), 3);
}

TEST(SparseMatrixTest, RemoveColumn) {
  SparseMatrix m;
  m.Set(1, 1, 1);
  m.Set(2, 1, 2);
  m.Set(2, 2, 3);
  m.RemoveColumn(1);
  EXPECT_EQ(m.Get(1, 1), 0);
  EXPECT_EQ(m.Get(2, 1), 0);
  EXPECT_EQ(m.Get(2, 2), 3);
  EXPECT_FALSE(m.HasRow(1));  // row became empty
}

TEST(SparseMatrixTest, RowIteration) {
  SparseMatrix m;
  m.Set(7, 1, 10);
  m.Set(7, 3, 30);
  auto row = m.Row(7);
  EXPECT_EQ(row.size(), 2u);
  int sum = 0;
  for (const auto& [col, value] : row) sum += value;
  EXPECT_EQ(sum, 40);
  EXPECT_TRUE(m.Row(99).empty());
}

TEST(SparseMatrixTest, RowKeys) {
  SparseMatrix m;
  m.Set(1, 1, 1);
  m.Set(5, 1, 1);
  auto keys = m.RowKeys();
  EXPECT_EQ(keys.size(), 2u);
}

TEST(SparseMatrixTest, MemoryGrowsWithEntries) {
  SparseMatrix m;
  size_t empty = m.MemoryBytes();
  for (uint32_t i = 0; i < 100; ++i) m.Set(i, i, 1);
  EXPECT_GT(m.MemoryBytes(), empty);
}

}  // namespace
}  // namespace midas
