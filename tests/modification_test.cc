#include "midas/maintain/modification.h"

#include <gtest/gtest.h>

#include <cmath>

#include "midas/datagen/molecule_gen.h"
#include "midas/graph/graphlet.h"
#include "test_util.h"

namespace midas {
namespace {

TEST(ModificationTest, IdenticalDistributionsAreMinor) {
  std::vector<double> psi = {0.5, 0.25, 0.25};
  ModificationReport r = ClassifyModification(psi, psi, 0.1);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_EQ(r.type, ModificationType::kMinor);
}

TEST(ModificationTest, ThresholdBoundaryIsMajor) {
  std::vector<double> a = {1.0, 0.0};
  std::vector<double> b = {0.9, 0.1};
  double dist = GraphletDistance(a, b);
  ModificationReport at = ClassifyModification(a, b, dist);
  EXPECT_EQ(at.type, ModificationType::kMajor);  // >= epsilon
  ModificationReport above = ClassifyModification(a, b, dist + 1e-6);
  EXPECT_EQ(above.type, ModificationType::kMinor);
}

TEST(ModificationTest, InFamilyAdditionsAreMinorNewFamilyMajor) {
  // The end-to-end signal: adding graphs that look like the base database
  // moves psi less than adding a structurally novel family.
  MoleculeGenerator gen(101);
  MoleculeGenConfig cfg = MoleculeGenerator::EmolLike(60);
  GraphDatabase db = gen.Generate(cfg);
  GraphletCensus census(db);
  std::vector<double> psi0 = census.Distribution();

  // In-family additions.
  GraphDatabase db_minor = db;
  GraphletCensus census_minor = census;
  BatchUpdate minor = gen.GenerateAdditions(db_minor, cfg, 15, false);
  std::vector<GraphId> added = db_minor.ApplyBatch(minor);
  for (GraphId id : added) census_minor.Add(id, *db_minor.Find(id));
  double dist_minor = GraphletDistance(psi0, census_minor.Distribution());

  // New-family additions.
  GraphDatabase db_major = db;
  GraphletCensus census_major = census;
  BatchUpdate major = gen.GenerateAdditions(db_major, cfg, 15, true);
  added = db_major.ApplyBatch(major);
  for (GraphId id : added) census_major.Add(id, *db_major.Find(id));
  double dist_major = GraphletDistance(psi0, census_major.Distribution());

  EXPECT_LT(dist_minor, dist_major);
}

TEST(DistributionDistanceTest, AllMeasuresZeroForIdentical) {
  std::vector<double> psi = {0.4, 0.3, 0.2, 0.1};
  for (DistributionDistance m :
       {DistributionDistance::kEuclidean, DistributionDistance::kManhattan,
        DistributionDistance::kCosine, DistributionDistance::kHellinger}) {
    EXPECT_NEAR(DistributionDistanceValue(psi, psi, m), 0.0, 1e-12);
  }
}

TEST(DistributionDistanceTest, KnownValues) {
  std::vector<double> a = {1.0, 0.0};
  std::vector<double> b = {0.0, 1.0};
  EXPECT_NEAR(DistributionDistanceValue(a, b, DistributionDistance::kEuclidean),
              std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(DistributionDistanceValue(a, b, DistributionDistance::kManhattan),
              2.0, 1e-12);
  EXPECT_NEAR(DistributionDistanceValue(a, b, DistributionDistance::kCosine),
              1.0, 1e-12);  // orthogonal
  EXPECT_NEAR(DistributionDistanceValue(a, b, DistributionDistance::kHellinger),
              1.0, 1e-12);  // disjoint support
}

TEST(DistributionDistanceTest, MeasuresAgreeOnOrdering) {
  // The Section 3.4 claim: measure choice does not flip the minor/major
  // ordering of drifts.
  std::vector<double> base = {0.5, 0.3, 0.2};
  std::vector<double> near = {0.48, 0.31, 0.21};
  std::vector<double> far = {0.1, 0.2, 0.7};
  for (DistributionDistance m :
       {DistributionDistance::kEuclidean, DistributionDistance::kManhattan,
        DistributionDistance::kCosine, DistributionDistance::kHellinger}) {
    EXPECT_LT(DistributionDistanceValue(base, near, m),
              DistributionDistanceValue(base, far, m))
        << static_cast<int>(m);
  }
}

TEST(ModificationTest, EmptyDeltaIsMinor) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  GraphletCensus census(db);
  auto psi = census.Distribution();
  ModificationReport r = ClassifyModification(psi, psi, 0.01);
  EXPECT_EQ(r.type, ModificationType::kMinor);
}

}  // namespace
}  // namespace midas
