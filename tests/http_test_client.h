#ifndef MIDAS_TESTS_HTTP_TEST_CLIENT_H_
#define MIDAS_TESTS_HTTP_TEST_CLIENT_H_

// Tiny blocking HTTP/1.0-style client for exercising obs::TelemetryServer
// in tests: one request per connection (the server sends
// `Connection: close`), no chunked encoding, 127.0.0.1 only.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

namespace midas {
namespace testing {

struct HttpResult {
  bool ok = false;        ///< transport-level success (connected + parsed)
  int status = 0;         ///< HTTP status code
  std::string headers;    ///< raw header block
  std::string body;
};

/// Sends `raw` verbatim to 127.0.0.1:port and reads until EOF. The server
/// closes after each response, so EOF delimits the reply.
inline HttpResult HttpRaw(int port, const std::string& raw) {
  HttpResult result;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return result;
  }

  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return result;
    }
    sent += static_cast<size_t>(n);
  }

  std::string reply;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t header_end = reply.find("\r\n\r\n");
  if (header_end == std::string::npos) return result;
  result.headers = reply.substr(0, header_end);
  result.body = reply.substr(header_end + 4);

  // "HTTP/1.1 200 OK"
  size_t sp = result.headers.find(' ');
  if (sp == std::string::npos) return result;
  result.status = std::atoi(result.headers.c_str() + sp + 1);
  result.ok = result.status != 0;
  return result;
}

/// GET `target` (path plus optional query) from 127.0.0.1:port.
inline HttpResult HttpGet(int port, const std::string& target) {
  return HttpRaw(port, "GET " + target +
                           " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                           "Connection: close\r\n\r\n");
}

}  // namespace testing
}  // namespace midas

#endif  // MIDAS_TESTS_HTTP_TEST_CLIENT_H_
