#include "midas/obs/profile.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "midas/obs/metrics.h"
#include "midas/obs/trace.h"

namespace midas {
namespace obs {
namespace {

void SpinMs(double ms) {
  auto until = std::chrono::steady_clock::now() +
               std::chrono::duration<double, std::milli>(ms);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(SpanProfilerTest, DisabledProfilerRecordsNothing) {
  SpanProfiler prof;  // enabled() == false by default
  ScopedSpanProfiler scope(prof);
  double sink = 0.0;
  {
    TraceSpan span("root", &sink);
  }
  EXPECT_GT(sink, 0.0);   // the span itself still measured
  EXPECT_EQ(prof.size(), 0u);
}

TEST(SpanProfilerTest, NestedSpansFormPaths) {
  SpanProfiler prof;
  prof.set_enabled(true);
  ScopedSpanProfiler scope(prof);

  double sink = 0.0;
  {
    TraceSpan root("root", &sink);
    SpinMs(2.0);
    {
      TraceSpan child("child", &sink);
      SpinMs(2.0);
      { TraceSpan leaf("leaf", &sink); SpinMs(1.0); }
    }
    { TraceSpan child2("child2", &sink); SpinMs(1.0); }
  }
  EXPECT_EQ(SpanProfiler::FrameDepth(), 0u);

  auto snap = prof.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Lexicographic by path ('2' < ';'), so child2 lands before child's leaf.
  EXPECT_EQ(snap[0].first, "root");
  EXPECT_EQ(snap[1].first, "root;child");
  EXPECT_EQ(snap[2].first, "root;child2");
  EXPECT_EQ(snap[3].first, "root;child;leaf");

  const auto& root = snap[0].second;
  const auto& child = snap[1].second;
  const auto& leaf = snap[3].second;
  EXPECT_EQ(root.count, 1u);
  // Inclusive times nest: root >= child >= leaf.
  EXPECT_GE(root.total_ms, child.total_ms);
  EXPECT_GE(child.total_ms, leaf.total_ms);
  // Self excludes children: root spent ~3ms outside its two children.
  EXPECT_GE(root.self_ms, 1.0);
  EXPECT_LE(root.self_ms, root.total_ms - child.total_ms);
  // A leaf's self time is its total time.
  EXPECT_DOUBLE_EQ(leaf.self_ms, leaf.total_ms);
}

TEST(SpanProfilerTest, RepeatedPathsAggregate) {
  SpanProfiler prof;
  prof.set_enabled(true);
  ScopedSpanProfiler scope(prof);

  double sink = 0.0;
  for (int i = 0; i < 5; ++i) {
    TraceSpan root("round", &sink);
    TraceSpan phase("phase", &sink);
  }

  auto snap = prof.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].second.count, 5u);
  EXPECT_EQ(snap[1].second.count, 5u);
}

TEST(SpanProfilerTest, ThreadsKeepIndependentStacksButShareTheTree) {
  SpanProfiler prof;
  prof.set_enabled(true);
  ScopedSpanProfiler scope(prof);

  auto work = [](const std::string& name) {
    double sink = 0.0;
    for (int i = 0; i < 10; ++i) {
      TraceSpan outer(name, &sink);
      TraceSpan inner("inner", &sink);
    }
  };
  std::thread a(work, "thread_a");
  std::thread b(work, "thread_b");
  a.join();
  b.join();

  auto snap = prof.Snapshot();
  ASSERT_EQ(snap.size(), 4u);  // a, a;inner, b, b;inner — never interleaved
  EXPECT_EQ(snap[0].first, "thread_a");
  EXPECT_EQ(snap[1].first, "thread_a;inner");
  EXPECT_EQ(snap[2].first, "thread_b");
  EXPECT_EQ(snap[3].first, "thread_b;inner");
  for (const auto& entry : snap) EXPECT_EQ(entry.second.count, 10u);
}

TEST(SpanProfilerTest, FoldedExportIsFlamegraphInput) {
  SpanProfiler prof;
  prof.set_enabled(true);
  ScopedSpanProfiler scope(prof);

  double sink = 0.0;
  {
    TraceSpan root("root", &sink);
    SpinMs(1.0);
    TraceSpan child("child", &sink);
    SpinMs(1.0);
  }

  std::string folded = prof.ExportFolded();
  // Every line: "<path> <integer>".
  size_t lines = 0;
  size_t pos = 0;
  while (pos < folded.size()) {
    size_t eol = folded.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    std::string line = folded.substr(pos, eol - pos);
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_NE(line.substr(sp + 1).find_first_of("0123456789"),
              std::string::npos)
        << line;
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(folded.find("root;child "), std::string::npos);
}

TEST(SpanProfilerTest, TopTableSortsBySelfTime) {
  SpanProfiler prof;
  prof.set_enabled(true);
  ScopedSpanProfiler scope(prof);

  double sink = 0.0;
  { TraceSpan s("cheap", &sink); }
  { TraceSpan s("expensive", &sink); SpinMs(3.0); }

  std::string table = prof.ExportTopTable(1);
  EXPECT_NE(table.find("expensive"), std::string::npos);
  EXPECT_EQ(table.find("cheap"), std::string::npos);  // truncated at top-1
}

TEST(SpanProfilerTest, ClearDropsPathsKeepsEnabled) {
  SpanProfiler prof;
  prof.set_enabled(true);
  ScopedSpanProfiler scope(prof);
  double sink = 0.0;
  { TraceSpan s("x", &sink); }
  ASSERT_EQ(prof.size(), 1u);
  prof.Clear();
  EXPECT_EQ(prof.size(), 0u);
  EXPECT_TRUE(prof.enabled());
}

TEST(SpanProfilerTest, PausedSpanSelfTimeClampsAtZero) {
  SpanProfiler prof;
  prof.set_enabled(true);
  ScopedSpanProfiler scope(prof);

  double sink = 0.0;
  {
    TraceSpan parent("parent", &sink);
    parent.Pause();
    // The child runs while the parent's own clock is paused: the child's
    // wall time exceeds the parent's unpaused elapsed time.
    { TraceSpan child("child", &sink); SpinMs(2.0); }
    parent.Resume();
  }

  auto snap = prof.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "parent");
  EXPECT_GE(snap[0].second.self_ms, 0.0);  // clamped, never negative
  EXPECT_LT(snap[0].second.total_ms, snap[1].second.total_ms);
}

}  // namespace
}  // namespace obs
}  // namespace midas
