#include "midas/queryform/query_executor.h"

#include <gtest/gtest.h>

#include "midas/datagen/molecule_gen.h"
#include "midas/datagen/workload.h"
#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

struct Fixture {
  GraphDatabase db = testing_util::MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  FctIndex fct_index = FctIndex::Build(db, fcts);
  IfeIndex ife_index = IfeIndex::Build(db, fcts);
};

TEST(QueryExecutorTest, MatchesAreExact) {
  Fixture f;
  QueryExecutor exec(f.db, &f.fct_index, &f.ife_index);
  LabelDictionary& d = f.db.labels();
  Graph query = testing_util::Path(d, {"C", "O", "C"});
  QueryExecutor::Result r = exec.Execute(query);
  for (const auto& [id, g] : f.db.graphs()) {
    EXPECT_EQ(r.matches.Contains(id), ContainsSubgraph(query, g))
        << "graph " << id;
  }
  EXPECT_LE(r.matches.size(), r.verified);
  EXPECT_LE(r.verified, r.candidates);
}

TEST(QueryExecutorTest, IndexAgreesWithScan) {
  Fixture f;
  QueryExecutor indexed(f.db, &f.fct_index, &f.ife_index);
  QueryExecutor scanning(f.db);
  Rng rng(3);
  for (const auto& [id, g] : f.db.graphs()) {
    Graph q = RandomConnectedSubgraph(g, 3, rng);
    if (q.NumEdges() == 0) continue;
    EXPECT_EQ(indexed.Execute(q).matches, scanning.Execute(q).matches);
  }
  // The scan always verifies the whole database; the index usually less.
  EXPECT_LE(indexed.totals().verified, scanning.totals().verified);
}

TEST(QueryExecutorTest, LimitStopsEarly) {
  Fixture f;
  QueryExecutor exec(f.db, &f.fct_index, &f.ife_index);
  LabelDictionary& d = f.db.labels();
  Graph query = testing_util::Path(d, {"C", "O"});  // matches everything
  QueryExecutor::Result r = exec.Execute(query, 3);
  EXPECT_EQ(r.matches.size(), 3u);
  EXPECT_EQ(r.verified, 3u);  // every candidate matches; stop at the limit
}

TEST(QueryExecutorTest, NoMatches) {
  Fixture f;
  QueryExecutor exec(f.db, &f.fct_index, &f.ife_index);
  LabelDictionary& d = f.db.labels();
  Graph query = testing_util::Path(d, {"Zz", "Zz"});
  QueryExecutor::Result r = exec.Execute(query);
  EXPECT_TRUE(r.matches.empty());
}

TEST(QueryExecutorTest, TotalsAccumulate) {
  Fixture f;
  QueryExecutor exec(f.db, &f.fct_index, &f.ife_index);
  LabelDictionary& d = f.db.labels();
  exec.Execute(testing_util::Path(d, {"C", "O"}));
  exec.Execute(testing_util::Path(d, {"C", "S"}));
  EXPECT_EQ(exec.totals().queries, 2u);
  EXPECT_GT(exec.totals().matches, 0u);
}

// Property: filter soundness on a synthetic database — indexed execution
// never loses a match relative to the full scan.
class ExecutorSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorSoundnessTest, IndexedEqualsScan) {
  MoleculeGenerator gen(8000 + GetParam());
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(25));
  FctSet fcts = FctSet::Mine(db, {0.4, 3, 20000});
  FctIndex fct_index = FctIndex::Build(db, fcts);
  IfeIndex ife_index = IfeIndex::Build(db, fcts);
  QueryExecutor indexed(db, &fct_index, &ife_index);
  QueryExecutor scanning(db);

  Rng rng(GetParam());
  QueryGenConfig qcfg;
  qcfg.count = 10;
  qcfg.min_edges = 2;
  qcfg.max_edges = 8;
  for (const Graph& q : GenerateQueries(db, qcfg, rng)) {
    EXPECT_EQ(indexed.Execute(q).matches, scanning.Execute(q).matches);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ExecutorSoundnessTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace midas
