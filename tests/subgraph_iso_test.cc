#include "midas/graph/subgraph_iso.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeGraph;
using testing_util::Path;
using testing_util::RandomGraph;
using testing_util::RandomPermutation;

TEST(SubgraphIsoTest, EdgeInPath) {
  LabelDictionary d;
  Graph pattern = Path(d, {"C", "O"});
  Graph target = Path(d, {"C", "O", "C"});
  EXPECT_TRUE(ContainsSubgraph(pattern, target));
}

TEST(SubgraphIsoTest, LabelMismatchFails) {
  LabelDictionary d;
  Graph pattern = Path(d, {"N", "N"});
  Graph target = Path(d, {"C", "O", "C"});
  EXPECT_FALSE(ContainsSubgraph(pattern, target));
}

TEST(SubgraphIsoTest, NonInducedSemantics) {
  LabelDictionary d;
  // Path C-C-C embeds into triangle C,C,C even though the triangle has the
  // extra closing edge (non-induced matching).
  Graph path = Path(d, {"C", "C", "C"});
  Graph triangle = MakeGraph(d, {"C", "C", "C"}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_TRUE(ContainsSubgraph(path, triangle));
  // The triangle does NOT embed into the path.
  EXPECT_FALSE(ContainsSubgraph(triangle, path));
}

TEST(SubgraphIsoTest, LargerPatternNeverContained) {
  LabelDictionary d;
  Graph pattern = Path(d, {"C", "C", "C", "C"});
  Graph target = Path(d, {"C", "C", "C"});
  EXPECT_FALSE(ContainsSubgraph(pattern, target));
}

TEST(SubgraphIsoTest, EmptyPatternContained) {
  LabelDictionary d;
  Graph target = Path(d, {"C", "O"});
  EXPECT_TRUE(ContainsSubgraph(Graph(), target));
}

TEST(SubgraphIsoTest, CountEmbeddingsOfEdge) {
  LabelDictionary d;
  Graph edge_co = Path(d, {"C", "O"});
  Graph target = Path(d, {"C", "O", "C"});
  // Two C-O edges, labels distinct -> 2 embeddings.
  EXPECT_EQ(CountEmbeddings(edge_co, target), 2u);

  Graph edge_cc = Path(d, {"C", "C"});
  Graph cc_path = Path(d, {"C", "C", "C"});
  // Two C-C edges, both orientations each -> 4 embeddings.
  EXPECT_EQ(CountEmbeddings(edge_cc, cc_path), 4u);
}

TEST(SubgraphIsoTest, CountEmbeddingsRespectsCap) {
  LabelDictionary d;
  Graph edge = Path(d, {"C", "C"});
  Graph clique = MakeGraph(d, {"C", "C", "C", "C"},
                           {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(CountEmbeddings(edge, clique, 5), 5u);
  EXPECT_EQ(CountEmbeddings(edge, clique, 0), 12u);  // unlimited
}

TEST(SubgraphIsoTest, FindEmbeddingsAreValid) {
  LabelDictionary d;
  Graph pattern = Path(d, {"C", "O", "C"});
  Graph target = MakeGraph(d, {"C", "O", "C", "O"},
                           {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  auto embeddings = FindEmbeddings(pattern, target, 64);
  EXPECT_FALSE(embeddings.empty());
  for (const auto& m : embeddings) {
    ASSERT_EQ(m.size(), pattern.NumVertices());
    // Injective.
    auto sorted = m;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
    // Labels and edges preserved.
    for (VertexId v = 0; v < pattern.NumVertices(); ++v) {
      EXPECT_EQ(pattern.label(v), target.label(m[v]));
    }
    for (const auto& [u, v] : pattern.Edges()) {
      EXPECT_TRUE(target.HasEdge(m[u], m[v]));
    }
  }
}

TEST(SubgraphIsoTest, CountEdgeEmbeddingsMatchesVf2) {
  LabelDictionary d;
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = RandomGraph(d, rng, 8, 3);
    for (const EdgeLabelPair& lp : g.DistinctEdgeLabels()) {
      Graph edge;
      VertexId a = edge.AddVertex(lp.first);
      VertexId b = edge.AddVertex(lp.second);
      edge.AddEdge(a, b);
      EXPECT_EQ(CountEdgeEmbeddings(lp, g), CountEmbeddings(edge, g, 0))
          << "trial " << trial;
    }
  }
}

TEST(SubgraphIsoTest, AreIsomorphicBasics) {
  LabelDictionary d;
  Graph a = Path(d, {"C", "O", "C"});
  Graph b = Path(d, {"C", "O", "C"});
  EXPECT_TRUE(AreIsomorphic(a, b));
  Graph c = Path(d, {"C", "C", "O"});
  EXPECT_FALSE(AreIsomorphic(a, c));
  EXPECT_FALSE(AreIsomorphic(a, Path(d, {"C", "O"})));
}

// Property: a graph always contains every permuted copy of itself.
class IsoPermutationTest : public ::testing::TestWithParam<int> {};

TEST_P(IsoPermutationTest, PermutedCopyIsIsomorphic) {
  LabelDictionary d;
  Rng rng(100 + GetParam());
  Graph g = RandomGraph(d, rng, 4 + GetParam() % 6, GetParam() % 4);
  auto perm = RandomPermutation(g.NumVertices(), rng);
  Graph p = g.Permuted(perm);
  EXPECT_TRUE(AreIsomorphic(g, p));
  EXPECT_TRUE(ContainsSubgraph(g, p));
  EXPECT_TRUE(ContainsSubgraph(p, g));
}

INSTANTIATE_TEST_SUITE_P(Permutations, IsoPermutationTest,
                         ::testing::Range(0, 25));

// Property: VF2 containment agrees with a brute-force matcher on tiny graphs.
namespace {

bool BruteForceContains(const Graph& pattern, const Graph& target) {
  size_t np = pattern.NumVertices();
  size_t nt = target.NumVertices();
  if (np > nt) return false;
  std::vector<VertexId> ids(nt);
  for (size_t i = 0; i < nt; ++i) ids[i] = static_cast<VertexId>(i);
  // Enumerate all np-permutations of target vertices.
  std::vector<VertexId> m(np);
  std::vector<bool> used(nt, false);
  std::function<bool(size_t)> rec = [&](size_t depth) -> bool {
    if (depth == np) return true;
    for (size_t t = 0; t < nt; ++t) {
      if (used[t]) continue;
      if (pattern.label(static_cast<VertexId>(depth)) !=
          target.label(static_cast<VertexId>(t))) {
        continue;
      }
      bool ok = true;
      for (size_t p = 0; p < depth; ++p) {
        if (pattern.HasEdge(static_cast<VertexId>(depth),
                            static_cast<VertexId>(p)) &&
            !target.HasEdge(static_cast<VertexId>(t), m[p])) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      m[depth] = static_cast<VertexId>(t);
      used[t] = true;
      if (rec(depth + 1)) return true;
      used[t] = false;
    }
    return false;
  };
  return rec(0);
}

}  // namespace

class IsoBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(IsoBruteForceTest, AgreesWithBruteForce) {
  LabelDictionary d;
  Rng rng(333 + GetParam());
  Graph pattern = RandomGraph(d, rng, 3 + GetParam() % 3, GetParam() % 2, 2);
  Graph target = RandomGraph(d, rng, 6, 3, 2);
  EXPECT_EQ(ContainsSubgraph(pattern, target),
            BruteForceContains(pattern, target))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(BruteForce, IsoBruteForceTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace midas
