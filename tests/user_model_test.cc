#include "midas/queryform/user_model.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace midas {
namespace {

using testing_util::Path;

TEST(UserModelTest, ZeroPlanZeroTime) {
  FormulationPlan plan;  // nothing to do
  UserModelConfig cfg;
  Rng rng(1);
  SimulatedFormulation s = SimulateUser(plan, 30, cfg, rng);
  EXPECT_DOUBLE_EQ(s.qft_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.vmt_seconds, 0.0);
}

TEST(UserModelTest, TimeScalesWithSteps) {
  UserModelConfig cfg;
  cfg.jitter = 0.0;
  Rng rng(2);
  FormulationPlan small;
  small.vertices_added = 2;
  small.edges_added = 2;
  small.steps = 4;
  FormulationPlan big;
  big.vertices_added = 10;
  big.edges_added = 10;
  big.steps = 20;
  EXPECT_LT(SimulateUser(small, 30, cfg, rng).qft_seconds,
            SimulateUser(big, 30, cfg, rng).qft_seconds);
}

TEST(UserModelTest, VmtGrowsWithPanelSize) {
  UserModelConfig cfg;
  cfg.jitter = 0.0;
  Rng rng(3);
  FormulationPlan plan;
  plan.patterns_used = 1;
  plan.steps = 1;
  double vmt_small = SimulateUser(plan, 10, cfg, rng).vmt_seconds;
  double vmt_large = SimulateUser(plan, 100, cfg, rng).vmt_seconds;
  EXPECT_LT(vmt_small, vmt_large);
  EXPECT_NEAR(vmt_small, cfg.vmt_base_seconds + 10 * cfg.vmt_per_pattern,
              1e-9);
}

TEST(UserModelTest, JitterIsBounded) {
  UserModelConfig cfg;
  cfg.jitter = 0.15;
  Rng rng(4);
  FormulationPlan plan;
  plan.vertices_added = 1;
  plan.steps = 1;
  for (int i = 0; i < 200; ++i) {
    double t = SimulateUser(plan, 30, cfg, rng).qft_seconds;
    EXPECT_GE(t, cfg.vertex_seconds * 0.85 - 1e-9);
    EXPECT_LE(t, cfg.vertex_seconds * 1.15 + 1e-9);
  }
}

TEST(UserModelTest, CalibrationMagnitudes) {
  // Example 1.1 shapes: ~41-step edge-at-a-time formulation lands in the
  // low hundreds of seconds; pattern-mode ~20 steps is faster.
  UserModelConfig cfg;
  Rng rng(5);
  FormulationPlan edge_mode;
  edge_mode.vertices_added = 18;
  edge_mode.edges_added = 23;
  edge_mode.steps = 41;
  double qft_edges = SimulateUser(edge_mode, 30, cfg, rng).qft_seconds;
  EXPECT_GT(qft_edges, 80.0);
  EXPECT_LT(qft_edges, 220.0);

  FormulationPlan pattern_mode;
  pattern_mode.patterns_used = 2;
  pattern_mode.vertices_added = 7;
  pattern_mode.edges_added = 11;
  pattern_mode.steps = 20;
  double qft_patterns = SimulateUser(pattern_mode, 30, cfg, rng).qft_seconds;
  EXPECT_LT(qft_patterns, qft_edges);
}

TEST(UserModelTest, EditPlanAddsTrimTime) {
  UserModelConfig cfg;
  cfg.jitter = 0.0;
  Rng rng(7);
  EditPlan trimmed;
  trimmed.patterns_used = 1;
  trimmed.elements_deleted = 2;
  trimmed.steps = 3;
  EditPlan clean;
  clean.patterns_used = 1;
  clean.steps = 1;
  double t_trimmed = SimulateUser(trimmed, 30, cfg, rng).qft_seconds;
  double t_clean = SimulateUser(clean, 30, cfg, rng).qft_seconds;
  EXPECT_NEAR(t_trimmed - t_clean, 2 * cfg.delete_seconds, 1e-9);
}

TEST(UserModelTest, SimulateUsersWithEditsBeatsStrictWhenTrimmingHelps) {
  LabelDictionary d;
  PatternSet set;
  CannedPattern p;
  p.graph = Path(d, {"C", "O", "C", "S"});  // oversized for the query
  set.Add(std::move(p));
  Graph query = Path(d, {"C", "O", "C"});

  UserModelConfig cfg;
  cfg.jitter = 0.0;
  Rng rng(8);
  SimulatedFormulation strict = SimulateUsers(query, set, 3, cfg, rng);
  SimulatedFormulation edits = SimulateUsersWithEdits(query, set, 3, cfg, rng);
  // Strict planning cannot use the pattern (5 steps); trimming can
  // (drop + one delete = 2 steps).
  EXPECT_EQ(strict.steps, 5u);
  EXPECT_EQ(edits.steps, 2u);
  EXPECT_LT(edits.qft_seconds, strict.qft_seconds);
}

TEST(UserModelTest, SimulateUsersAveragesTrials) {
  LabelDictionary d;
  PatternSet set;
  CannedPattern p;
  p.graph = Path(d, {"C", "O", "C"});
  set.Add(std::move(p));
  Graph query = Path(d, {"C", "O", "C"});

  UserModelConfig cfg;
  Rng rng(6);
  SimulatedFormulation mean = SimulateUsers(query, set, 10, cfg, rng);
  EXPECT_EQ(mean.steps, 1u);
  EXPECT_GT(mean.qft_seconds, 0.0);
  EXPECT_GT(mean.vmt_seconds, 0.0);

  SimulatedFormulation none = SimulateUsers(query, set, 0, cfg, rng);
  EXPECT_DOUBLE_EQ(none.qft_seconds, 0.0);
}

}  // namespace
}  // namespace midas
