#include "midas/common/rng.h"

#include <gtest/gtest.h>

#include <numeric>

namespace midas {
namespace {

TEST(RngTest, DeterministicBySeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t x = rng.UniformInt(-3, 7);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 7);
  }
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformReal();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, PickWeightedRespectsZeros) {
  Rng rng(7);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.PickWeighted(w), 1);
}

TEST(RngTest, PickWeightedAllZeroReturnsMinusOne) {
  Rng rng(7);
  EXPECT_EQ(rng.PickWeighted({0.0, 0.0}), -1);
  EXPECT_EQ(rng.PickWeighted({}), -1);
}

TEST(RngTest, PickWeightedProportional) {
  Rng rng(11);
  std::vector<double> w = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.PickWeighted(w)];
  double ratio = static_cast<double>(counts[1]) / counts[0];
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(99);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(99);
  b.Fork();
  EXPECT_EQ(a.UniformInt(0, 1 << 30), b.UniformInt(0, 1 << 30));
  (void)child;
}

}  // namespace
}  // namespace midas
