#include <gtest/gtest.h>

#include "midas/datagen/molecule_gen.h"
#include "midas/maintain/report.h"
#include "test_util.h"

namespace midas {
namespace {

MidasConfig GoodConfig() {
  MidasConfig cfg;
  cfg.fct.sup_min = 0.4;
  cfg.fct.max_edges = 3;
  cfg.budget = {3, 6, 8};
  cfg.sample_cap = 0;
  return cfg;
}

TEST(ValidateConfigTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateConfig(GoodConfig()).empty());
  EXPECT_TRUE(ValidateConfig(MidasConfig()).empty());
}

TEST(ValidateConfigTest, EtaMinConstraint) {
  MidasConfig cfg = GoodConfig();
  cfg.budget.eta_min = 2;  // Definition 3.1 requires eta_min > 2
  auto problems = ValidateConfig(cfg);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("eta_min"), std::string::npos);
}

TEST(ValidateConfigTest, InvertedRangeAndZeroGamma) {
  MidasConfig cfg = GoodConfig();
  cfg.budget.eta_max = 2;  // below eta_min = 3
  cfg.budget.gamma = 0;
  auto problems = ValidateConfig(cfg);
  EXPECT_GE(problems.size(), 2u);
}

TEST(ValidateConfigTest, BadSupportFraction) {
  MidasConfig cfg = GoodConfig();
  cfg.fct.sup_min = 1.5;
  EXPECT_FALSE(ValidateConfig(cfg).empty());
  cfg.fct.sup_min = 0.0;
  EXPECT_FALSE(ValidateConfig(cfg).empty());
}

TEST(ValidateConfigTest, NegativeThresholds) {
  MidasConfig cfg = GoodConfig();
  cfg.kappa = -0.1;
  EXPECT_FALSE(ValidateConfig(cfg).empty());
}

TEST(ValidateConfigTest, WarningsArePrefixed) {
  MidasConfig cfg = GoodConfig();
  cfg.fct.sup_min = 0.05;
  cfg.kappa = 2.0;
  cfg.sample_cap = 5;
  auto problems = ValidateConfig(cfg);
  ASSERT_EQ(problems.size(), 3u);
  for (const std::string& p : problems) {
    EXPECT_EQ(p.rfind("warning:", 0), 0u) << p;
  }
}

TEST(ValidateConfigTest, ZeroStructuralKnobs) {
  MidasConfig cfg = GoodConfig();
  cfg.cluster.num_coarse = 0;
  cfg.cluster.max_cluster_size = 0;
  cfg.fct.max_edges = 0;
  cfg.walk.num_walks = 0;
  EXPECT_GE(ValidateConfig(cfg).size(), 4u);
}

TEST(EngineReportTest, ContainsAllSections) {
  MoleculeGenerator gen(606);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(30);
  MidasConfig cfg = GoodConfig();
  cfg.seed = 3;
  MidasEngine engine(gen.Generate(data), cfg);
  engine.Initialize();
  GraphDatabase copy = engine.db();
  BatchUpdate delta = gen.GenerateAdditions(copy, data, 10, true);
  engine.ApplyUpdate(delta);

  std::string report = RenderEngineReport(engine);
  EXPECT_NE(report.find("MIDAS engine report"), std::string::npos);
  EXPECT_NE(report.find("pattern panel"), std::string::npos);
  EXPECT_NE(report.find("set quality"), std::string::npos);
  EXPECT_NE(report.find("maintenance history: 1 rounds"), std::string::npos);
  // Prometheus dump of the current metrics registry.
  EXPECT_NE(report.find("=== metrics (prometheus) ==="), std::string::npos);
  EXPECT_NE(report.find("# TYPE midas_maintain_rounds_total counter"),
            std::string::npos);
  // One row per pattern.
  size_t rows = 0;
  size_t pos = 0;
  while ((pos = report.find('\n', pos + 1)) != std::string::npos) ++rows;
  EXPECT_GT(rows, engine.patterns().size());
}

}  // namespace
}  // namespace midas
