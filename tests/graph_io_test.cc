#include "midas/graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

TEST(GraphIoTest, WriteSingleGraph) {
  LabelDictionary d;
  Graph g = testing_util::Path(d, {"C", "O"});
  std::ostringstream out;
  WriteGraph(g, d, 7, out);
  EXPECT_EQ(out.str(), "t # 7\nv 0 C\nv 1 O\ne 0 1\n");
}

TEST(GraphIoTest, DatabaseRoundTrip) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  std::ostringstream out;
  WriteDatabase(db, out);

  GraphDatabase restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadDatabase(in, &restored));
  ASSERT_EQ(restored.size(), db.size());

  auto orig_ids = db.Ids();
  auto new_ids = restored.Ids();
  for (size_t i = 0; i < orig_ids.size(); ++i) {
    const Graph* a = db.Find(orig_ids[i]);
    const Graph* b = restored.Find(new_ids[i]);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->NumVertices(), b->NumVertices());
    EXPECT_EQ(a->NumEdges(), b->NumEdges());
    // Label ids can differ between dictionaries; compare label names.
    for (VertexId v = 0; v < a->NumVertices(); ++v) {
      EXPECT_EQ(db.labels().Name(a->label(v)),
                restored.labels().Name(b->label(v)));
    }
  }
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::istringstream in("# header\n\nt # 0\nv 0 C\nv 1 O\ne 0 1\n");
  GraphDatabase db;
  ASSERT_TRUE(ReadDatabase(in, &db));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.Find(0)->NumEdges(), 1u);
}

TEST(GraphIoTest, RejectsNonDenseVertexIds) {
  std::istringstream in("t # 0\nv 0 C\nv 2 O\n");
  GraphDatabase db;
  EXPECT_FALSE(ReadDatabase(in, &db));
}

TEST(GraphIoTest, RejectsBadEdge) {
  std::istringstream in("t # 0\nv 0 C\nv 1 O\ne 0 5\n");
  GraphDatabase db;
  EXPECT_FALSE(ReadDatabase(in, &db));
}

TEST(GraphIoTest, RejectsUnknownTag) {
  std::istringstream in("x nonsense\n");
  GraphDatabase db;
  EXPECT_FALSE(ReadDatabase(in, &db));
}

TEST(GraphIoTest, RemapLabelsByName) {
  LabelDictionary from;
  from.Intern("pad");  // shift the source ids
  Graph g = testing_util::Path(from, {"C", "O"});

  LabelDictionary to;
  Label o = to.Intern("O");  // reversed intern order in the target
  Label c = to.Intern("C");
  Graph remapped = RemapLabels(g, from, to);
  EXPECT_EQ(remapped.label(0), c);
  EXPECT_EQ(remapped.label(1), o);
  EXPECT_TRUE(remapped.HasEdge(0, 1));
  // New names are interned on demand.
  LabelDictionary empty;
  Graph again = RemapLabels(g, from, empty);
  EXPECT_EQ(empty.size(), 2u);
}

TEST(GraphIoTest, ToStringContainsAllParts) {
  LabelDictionary d;
  Graph g = testing_util::Path(d, {"C", "O", "N"});
  std::string s = ToString(g, d);
  EXPECT_NE(s.find("v 2 N"), std::string::npos);
  EXPECT_NE(s.find("e 1 2"), std::string::npos);
}

}  // namespace
}  // namespace midas
