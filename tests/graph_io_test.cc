#include "midas/graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

TEST(GraphIoTest, WriteSingleGraph) {
  LabelDictionary d;
  Graph g = testing_util::Path(d, {"C", "O"});
  std::ostringstream out;
  WriteGraph(g, d, 7, out);
  EXPECT_EQ(out.str(), "t # 7\nv 0 C\nv 1 O\ne 0 1\n");
}

TEST(GraphIoTest, DatabaseRoundTrip) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  std::ostringstream out;
  WriteDatabase(db, out);

  GraphDatabase restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadDatabase(in, &restored));
  ASSERT_EQ(restored.size(), db.size());

  auto orig_ids = db.Ids();
  auto new_ids = restored.Ids();
  for (size_t i = 0; i < orig_ids.size(); ++i) {
    const Graph* a = db.Find(orig_ids[i]);
    const Graph* b = restored.Find(new_ids[i]);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->NumVertices(), b->NumVertices());
    EXPECT_EQ(a->NumEdges(), b->NumEdges());
    // Label ids can differ between dictionaries; compare label names.
    for (VertexId v = 0; v < a->NumVertices(); ++v) {
      EXPECT_EQ(db.labels().Name(a->label(v)),
                restored.labels().Name(b->label(v)));
    }
  }
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::istringstream in("# header\n\nt # 0\nv 0 C\nv 1 O\ne 0 1\n");
  GraphDatabase db;
  ASSERT_TRUE(ReadDatabase(in, &db));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.Find(0)->NumEdges(), 1u);
}

TEST(GraphIoTest, RejectsNonDenseVertexIds) {
  std::istringstream in("t # 0\nv 0 C\nv 2 O\n");
  GraphDatabase db;
  EXPECT_FALSE(ReadDatabase(in, &db));
}

TEST(GraphIoTest, RejectsBadEdge) {
  std::istringstream in("t # 0\nv 0 C\nv 1 O\ne 0 5\n");
  GraphDatabase db;
  EXPECT_FALSE(ReadDatabase(in, &db));
}

TEST(GraphIoTest, RejectsUnknownTag) {
  std::istringstream in("x nonsense\n");
  GraphDatabase db;
  EXPECT_FALSE(ReadDatabase(in, &db));
}

// Malformed-input table: every rejection class, with its line-numbered
// diagnostic. A parser that silently constructs a bad Graph poisons every
// downstream structure, so the diagnostics are part of the contract.
TEST(GraphIoTest, MalformedInputTable) {
  struct Case {
    const char* name;
    const char* input;
    const char* want_error;  // substring of the diagnostic
  };
  const Case kCases[] = {
      {"vertex before t", "v 0 C\n", "line 1: vertex record before any 't'"},
      {"edge before t", "e 0 1\n", "line 1: edge record before any 't'"},
      {"unknown tag", "t # 0\nv 0 C\nq zzz\n", "line 3: unknown record tag"},
      {"malformed vertex", "t # 0\nv zero\n", "line 2: malformed vertex"},
      {"non-dense vertex ids", "t # 0\nv 0 C\nv 2 O\n",
       "line 3: vertex index 2 out of order"},
      {"descending vertex ids", "t # 0\nv 0 C\nv 1 O\nv 1 N\n",
       "line 4: vertex index 1 out of order"},
      {"malformed edge", "t # 0\nv 0 C\ne 0\n", "line 3: malformed edge"},
      {"edge endpoint out of range", "t # 0\nv 0 C\nv 1 O\ne 0 5\n",
       "line 4: edge endpoint out of range"},
      {"negative endpoint", "t # 0\nv 0 C\nv 1 O\ne 0 -1\n",
       "line 4: edge endpoint out of range"},
      {"self-loop", "t # 0\nv 0 C\nv 1 O\ne 1 1\n",
       "line 4: self-loop edge 1-1"},
      {"duplicate edge", "t # 0\nv 0 C\nv 1 O\ne 0 1\ne 1 0\n",
       "line 5: duplicate edge 1-0"},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    GraphDatabase db;
    std::string error;
    std::istringstream in(c.input);
    EXPECT_FALSE(ReadDatabase(in, &db, &error));
    EXPECT_NE(error.find(c.want_error), std::string::npos) << error;
  }
}

TEST(GraphIoTest, PreserveIdsRoundTrip) {
  GraphDatabase db2;
  db2.InsertWithId(4, testing_util::Path(db2.labels(), {"C", "O"}));
  db2.InsertWithId(9, testing_util::Path(db2.labels(), {"N"}));

  std::ostringstream out;
  WriteDatabase(db2, out);

  GraphDatabase restored;
  GspanReadOptions opts;
  opts.preserve_ids = true;
  std::string error;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadDatabase(in, &restored, opts, &error)) << error;
  EXPECT_NE(restored.Find(4), nullptr);
  EXPECT_NE(restored.Find(9), nullptr);
  EXPECT_EQ(restored.Find(2), nullptr);  // no renumbering happened
  EXPECT_EQ(restored.next_id(), 10u);    // allocator advanced past 9
}

TEST(GraphIoTest, PreserveIdsRejectsDuplicatesAndMalformedHeaders) {
  GspanReadOptions opts;
  opts.preserve_ids = true;
  {
    GraphDatabase db;
    std::string error;
    std::istringstream in("t # 3\nv 0 C\nt # 3\nv 0 O\n");
    EXPECT_FALSE(ReadDatabase(in, &db, opts, &error));
    EXPECT_NE(error.find("duplicate graph id 3"), std::string::npos)
        << error;
  }
  {
    GraphDatabase db;
    std::string error;
    std::istringstream in("t\nv 0 C\n");
    EXPECT_FALSE(ReadDatabase(in, &db, opts, &error));
    EXPECT_NE(error.find("malformed graph header"), std::string::npos)
        << error;
  }
}

TEST(GraphIoTest, RemapLabelsByName) {
  LabelDictionary from;
  from.Intern("pad");  // shift the source ids
  Graph g = testing_util::Path(from, {"C", "O"});

  LabelDictionary to;
  Label o = to.Intern("O");  // reversed intern order in the target
  Label c = to.Intern("C");
  Graph remapped = RemapLabels(g, from, to);
  EXPECT_EQ(remapped.label(0), c);
  EXPECT_EQ(remapped.label(1), o);
  EXPECT_TRUE(remapped.HasEdge(0, 1));
  // New names are interned on demand.
  LabelDictionary empty;
  Graph again = RemapLabels(g, from, empty);
  EXPECT_EQ(empty.size(), 2u);
}

TEST(GraphIoTest, ToStringContainsAllParts) {
  LabelDictionary d;
  Graph g = testing_util::Path(d, {"C", "O", "N"});
  std::string s = ToString(g, d);
  EXPECT_NE(s.find("v 2 N"), std::string::npos);
  EXPECT_NE(s.find("e 1 2"), std::string::npos);
}

}  // namespace
}  // namespace midas
