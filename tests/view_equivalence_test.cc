// Equivalence and recovery tests for the incremental materialized views
// (src/midas/view/): the delta-apply refresh path must be *byte-identical*
// to the full-recompute oracle — same panel serialization, same lineage,
// same quality floats — over a seeded insert/delete stream, at 1 and at 4
// threads. A separate crash matrix proves that an engine recovered at any
// journal phase boundary carries view state that passes the deep fsck tier
// (the views re-seed through LoadPatterns, so recovered coverage/lcov
// accumulators must square exactly with a from-scratch recomputation).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "midas/common/failpoint.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/maintain/journal.h"
#include "midas/maintain/midas.h"
#include "midas/maintain/snapshot.h"
#include "midas/maintain/verify.h"
#include "midas/select/pattern_io.h"
#include "midas/view/cost_model.h"
#include "midas/view/pair_distance_view.h"

namespace midas {
namespace {

namespace fs = std::filesystem;

// True when the MIDAS_VIEWS env kill-switch forces the views off (the
// views-off ctest configuration): equivalence still holds trivially, but
// assertions that the delta path *ran* must be skipped.
bool ViewsForcedOff() {
  const char* env = std::getenv("MIDAS_VIEWS");
  return env != nullptr && (std::string(env) == "off" ||
                            std::string(env) == "0" ||
                            std::string(env) == "false");
}

MidasConfig StreamConfig(int num_threads, bool incremental_views) {
  MidasConfig cfg;
  cfg.fct.sup_min = 0.4;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.cluster.max_cluster_size = 25;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 6;
  cfg.budget.gamma = 8;
  cfg.walk.num_walks = 40;
  cfg.walk.walk_length = 12;
  cfg.sample_cap = 0;   // stable universe: the delta path gets clean Δ⁺/Δ⁻
  cfg.epsilon = 0.005;  // new-family batches take the major path
  cfg.seed = 5;
  cfg.round_deadline_ms = 0.0;  // unbudgeted: exact-equivalence contract
  cfg.round_step_limit = 0;
  cfg.num_threads = num_threads;
  cfg.incremental_views = incremental_views;
  return cfg;
}

struct RoundShape {
  bool major = false;
  int candidates = 0;
  int swaps = 0;
  double graphlet_distance = 0.0;
  std::string view_strategy;
};

struct StreamResult {
  std::vector<RoundShape> rounds;
  std::string final_patterns;  // WritePatternSet serialization
  std::string lineage;         // PatternLedger serialization
  PatternQuality quality;
  int delta_rounds = 0;     // rounds the delta-apply path actually ran
  int fallback_rounds = 0;  // valid views, but the cost model chose rescan
  IntegrityReport deep_fsck;  // deep tier on the final engine state
};

// The identical seeded 10-round stream (in-family growth, periodic
// new-family arrivals, periodic deletions) through a fresh engine; the two
// runs under comparison differ only in `incremental_views` (and/or thread
// count). Deletions matter: they exercise the Δ⁻ clear-without-VF2 path.
StreamResult RunStream(int num_threads, bool incremental_views) {
  MoleculeGenerator gen(500);
  MoleculeGenConfig data_cfg = MoleculeGenerator::EmolLike(40);
  GraphDatabase db = gen.Generate(data_cfg);
  GraphDatabase scratch = db;  // deltas staged against a scratch copy

  auto engine = std::make_unique<MidasEngine>(
      std::move(db), StreamConfig(num_threads, incremental_views));
  engine->Initialize();

  MoleculeGenerator delta_gen(77);
  StreamResult result;
  for (int round = 0; round < 10; ++round) {
    const bool new_family = round % 4 == 0;
    BatchUpdate delta = delta_gen.GenerateAdditions(
        scratch, data_cfg, new_family ? 25 : 8, new_family);
    if (round % 3 == 2) {
      BatchUpdate deletions = delta_gen.GenerateDeletions(engine->db(), 4);
      delta.deletions = deletions.deletions;
      for (GraphId id : delta.deletions) scratch.Remove(id);
    }
    MaintenanceStats stats = engine->ApplyUpdate(delta);
    RoundShape shape;
    shape.major = stats.major;
    shape.candidates = stats.candidates;
    shape.swaps = stats.swaps;
    shape.graphlet_distance = stats.graphlet_distance;
    shape.view_strategy = stats.ViewStrategy();
    result.rounds.push_back(shape);
    if (stats.view_delta) ++result.delta_rounds;
    if (stats.view_fallback) ++result.fallback_rounds;
  }

  std::ostringstream patterns;
  WritePatternSet(engine->patterns(), engine->labels(), patterns);
  result.final_patterns = patterns.str();
  result.lineage = engine->lineage().Serialize();
  result.quality = engine->CurrentQuality();
  VerifyOptions deep;
  deep.level = IntegrityTier::kDeep;
  VerifyEngineDeep(*engine, deep, &result.deep_fsck);
  return result;
}

// Byte-identity between a views-on and a views-off run: everything except
// the strategy bookkeeping must match exactly (floats included — the delta
// path reuses the oracle's arithmetic expressions, so even rounding agrees).
void ExpectEquivalent(const StreamResult& oracle, const StreamResult& delta,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(delta.rounds.size(), oracle.rounds.size());
  for (size_t r = 0; r < oracle.rounds.size(); ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    EXPECT_EQ(delta.rounds[r].major, oracle.rounds[r].major);
    EXPECT_EQ(delta.rounds[r].candidates, oracle.rounds[r].candidates);
    EXPECT_EQ(delta.rounds[r].swaps, oracle.rounds[r].swaps);
    EXPECT_EQ(delta.rounds[r].graphlet_distance,
              oracle.rounds[r].graphlet_distance);
  }
  EXPECT_EQ(delta.final_patterns, oracle.final_patterns);
  EXPECT_EQ(delta.lineage, oracle.lineage);
  EXPECT_EQ(delta.quality.scov, oracle.quality.scov);
  EXPECT_EQ(delta.quality.lcov, oracle.quality.lcov);
  EXPECT_EQ(delta.quality.div, oracle.quality.div);
  EXPECT_EQ(delta.quality.cog_avg, oracle.quality.cog_avg);
  EXPECT_EQ(delta.quality.cog_max, oracle.quality.cog_max);
}

TEST(ViewEquivalenceTest, DeltaMatchesOracleByteForByte) {
  StreamResult oracle = RunStream(1, /*incremental_views=*/false);
  ASSERT_FALSE(oracle.final_patterns.empty());
  bool any_major = false;
  for (const RoundShape& r : oracle.rounds) any_major |= r.major;
  EXPECT_TRUE(any_major);  // the stream must exercise candidate/swap phases

  StreamResult delta1 = RunStream(1, /*incremental_views=*/true);
  ExpectEquivalent(oracle, delta1, "1 thread");
  StreamResult delta4 = RunStream(4, /*incremental_views=*/true);
  ExpectEquivalent(oracle, delta4, "4 threads");
  // Deliberately NOT compared across thread counts: the per-round strategy
  // choice feeds on wall-clock EWMAs, so 1-thread and 4-thread runs may pick
  // different refresh paths for the same round. The determinism contract
  // covers the *outputs* (both paths are bit-identical), not the choice.

  // The comparison is only meaningful if the delta path actually ran.
  if (ViewsForcedOff()) {
    GTEST_SKIP() << "MIDAS_VIEWS forces the oracle; delta-path assertions "
                    "not applicable";
  }
  EXPECT_GT(delta1.delta_rounds, 0);
  // Round 1 must rescan: Initialize() leaves the views unseeded (selection
  // ran on its own evaluator).
  EXPECT_EQ(delta1.rounds[0].view_strategy, "rescan");
  // Live state after a delta-heavy stream passes the deep fsck tier —
  // coverage bitsets and lcov numerators square with recomputation.
  EXPECT_TRUE(delta1.deep_fsck.clean()) << delta1.deep_fsck.Describe();
  EXPECT_TRUE(delta4.deep_fsck.clean()) << delta4.deep_fsck.Describe();
}

// The views-off oracle run must also be self-consistent under the deep
// fsck (guards the test itself against a vacuous clean()).
TEST(ViewEquivalenceTest, OracleStreamPassesDeepFsck) {
  StreamResult oracle = RunStream(1, /*incremental_views=*/false);
  EXPECT_TRUE(oracle.deep_fsck.clean()) << oracle.deep_fsck.Describe();
  EXPECT_GT(oracle.deep_fsck.checks, 0u);
  EXPECT_EQ(oracle.delta_rounds, 0);
  EXPECT_EQ(oracle.fallback_rounds, 0);
}

// MaintenanceStats round-trips its view fields (the /statusz splice and the
// metric-history store both rely on ToJson/FromJson being lossless).
TEST(ViewEquivalenceTest, StatsJsonRoundTripCarriesViewFields) {
  MaintenanceStats s;
  s.total_ms = 12.5;
  s.refresh_ms = 3.25;
  s.major = true;
  s.view_delta = true;
  s.view_fallback = false;
  s.view_delta_rows = 8;
  s.view_rescan_rows = 0;
  bool ok = false;
  MaintenanceStats back = MaintenanceStats::FromJson(s.ToJson(), &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(back.view_delta, s.view_delta);
  EXPECT_EQ(back.view_fallback, s.view_fallback);
  EXPECT_EQ(back.view_delta_rows, s.view_delta_rows);
  EXPECT_EQ(back.view_rescan_rows, s.view_rescan_rows);
  EXPECT_STREQ(back.ViewStrategy(), "delta");
  s.view_delta = false;
  s.view_rescan_rows = 8;
  EXPECT_STREQ(s.ViewStrategy(), "rescan");
  s.view_rescan_rows = 0;
  EXPECT_STREQ(s.ViewStrategy(), "off");
}

// Cost-model unit behavior: cold start prefers delta (to seed the EWMA),
// the churn guard forces rescan, and observed costs steer the choice.
TEST(ViewCostModelTest, ChurnGuardAndEwmaSteerTheChoice) {
  view::ViewCostModel m;
  EXPECT_TRUE(m.PreferDelta(5, 100, 10));     // optimistic cold start
  EXPECT_FALSE(m.PreferDelta(60, 100, 10));   // churn > half the universe
  // Delta observed expensive (10ms/row), rescan cheap (0.1ms/row): a round
  // with 50 churn rows vs 10 pattern rows must fall back.
  m.ObserveDelta(100.0, 10);
  m.ObserveRescan(1.0, 10);
  EXPECT_FALSE(m.PreferDelta(50, 1000, 10));
  // Tiny churn flips it back: 1 row * 10ms < 10 rows * 0.1ms is false, but
  // the comparison is per-shape — make delta genuinely cheaper.
  view::ViewCostModel cheap;
  cheap.ObserveDelta(0.1, 10);    // 0.01 ms per churn row
  cheap.ObserveRescan(100.0, 10); // 10 ms per pattern row
  EXPECT_TRUE(cheap.PreferDelta(5, 1000, 10));
}

// PairDistanceView unit behavior: digest change clears, ForgetPattern drops
// every row of the evicted id, lookups are unordered-pair keyed.
TEST(PairDistanceViewTest, DigestAndForgetSemantics) {
  view::PairDistanceView v;
  v.SetDigest(1);
  v.Store(3, 7, 2.5);
  double d = 0.0;
  EXPECT_TRUE(v.Lookup(7, 3, &d));  // unordered pair
  EXPECT_EQ(d, 2.5);
  v.SetDigest(1);  // same digest: nothing clears
  EXPECT_TRUE(v.Lookup(3, 7, &d));
  v.Store(3, 9, 4.0);
  v.ForgetPattern(3);
  EXPECT_FALSE(v.Lookup(3, 7, &d));
  EXPECT_FALSE(v.Lookup(3, 9, &d));
  v.Store(5, 6, 1.0);
  v.SetDigest(2);  // digest moved: the whole view clears
  EXPECT_FALSE(v.Lookup(5, 6, &d));
  EXPECT_EQ(v.size(), 0u);
}

// --- Crash matrix: recovered view state passes the deep fsck ----------------

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

MidasConfig CrashConfig() {
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.epsilon = 0.0;  // every round major: all phases execute
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  return cfg;
}

// Abort round 2 at every journal phase boundary; the recovered engine's
// pattern/view state must pass the deep integrity tier, and the *next*
// round on the recovered engine (which may take the delta path — recovery
// re-seeds the views through LoadPatterns) must leave it clean too.
TEST(ViewCrashMatrixTest, RecoveredViewStatePassesDeepFsck) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  const char* kSites[] = {
      "midas.apply_update.after_apply",    "midas.apply_update.after_fct",
      "midas.apply_update.after_cluster",  "midas.apply_update.after_csg",
      "midas.apply_update.after_index",    "midas.apply_update.after_refresh",
      "midas.apply_update.after_candidates", "midas.apply_update.after_swap",
  };

  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    TempDir edir("midas_view_crash_matrix");
    MoleculeGenerator gen(900);
    MoleculeGenConfig data = MoleculeGenerator::EmolLike(25);
    auto engine =
        std::make_unique<MidasEngine>(gen.Generate(data), CrashConfig());
    engine->Initialize();

    UpdateJournal journal;
    ASSERT_TRUE(journal.Open(edir.path + "/journal.log"));
    engine->SetJournal(&journal);
    std::string error;
    ASSERT_TRUE(SaveCheckpoint(*engine, edir.path, &error)) << error;

    // Round 1 commits normally (and, with views on, ends with a committed
    // view base). Round 2 dies at `site`.
    GraphDatabase copy1 = engine->db();
    engine->ApplyUpdate(gen.GenerateAdditions(copy1, data, 8, true));
    GraphDatabase copy2 = engine->db();
    BatchUpdate d2 = gen.GenerateAdditions(copy2, data, 10, true);
    fail::Arm(site);
    EXPECT_THROW(engine->ApplyUpdate(d2), fail::FailpointAbort);
    fail::DisarmAll();
    journal.Close();

    RecoverInfo info;
    std::unique_ptr<MidasEngine> recovered = RecoverEngine(edir.path, &info);
    ASSERT_NE(recovered, nullptr) << info.error;
    EXPECT_EQ(recovered->round_seq(), 1u);

    VerifyOptions deep;
    deep.level = IntegrityTier::kDeep;
    IntegrityReport after_recovery;
    VerifyEngineDeep(*recovered, deep, &after_recovery);
    EXPECT_TRUE(after_recovery.clean()) << after_recovery.Describe();

    // The recovered engine keeps working — and a post-recovery round leaves
    // the (possibly delta-maintained) state just as verifiable.
    GraphDatabase copy3 = recovered->db();
    recovered->ApplyUpdate(
        gen.GenerateAdditions(copy3, data, 3, false));
    IntegrityReport after_round;
    VerifyEngineDeep(*recovered, deep, &after_round);
    EXPECT_TRUE(after_round.clean()) << after_round.Describe();
  }
}

}  // namespace
}  // namespace midas
