// Randomized multi-round consistency tests for the full engine: after any
// sequence of mixed batch updates under any maintenance mode, every derived
// structure must agree exactly with the database — clusters partition it,
// CSGs mirror their clusters, the FCT pool matches a from-scratch mine, the
// indices match a from-scratch rebuild, and the pattern invariants hold.

#include <gtest/gtest.h>

#include <map>

#include "midas/datagen/molecule_gen.h"
#include "midas/maintain/midas.h"
#include "test_util.h"

namespace midas {
namespace {

MidasConfig FuzzConfig(uint64_t seed) {
  MidasConfig cfg;
  cfg.fct.sup_min = 0.4;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.cluster.max_cluster_size = 25;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 6;
  cfg.budget.gamma = 8;
  cfg.walk.num_walks = 30;
  cfg.walk.walk_length = 10;
  cfg.sample_cap = 0;
  cfg.epsilon = 0.004;
  cfg.seed = seed;
  return cfg;
}

// Canonical snapshot of the frequent closed trees.
std::map<std::string, size_t> FctSnapshot(const FctSet& set) {
  std::map<std::string, size_t> snap;
  for (const FctEntry* e : set.FrequentClosedTrees()) {
    snap[e->canon] = e->occurrences.size();
  }
  return snap;
}

class EngineFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineFuzzTest, StructuresStayConsistent) {
  uint64_t seed = 7000 + static_cast<uint64_t>(GetParam());
  MoleculeGenerator gen(seed);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(50);
  MidasEngine engine(gen.Generate(data), FuzzConfig(seed));
  engine.Initialize();

  Rng chaos(seed * 31);
  for (int round = 0; round < 4; ++round) {
    // Random mixed batch: 0-10 additions (random family flavor), 0-5
    // deletions, random maintenance mode.
    GraphDatabase copy = engine.db();
    size_t n_add = static_cast<size_t>(chaos.UniformInt(0, 10));
    size_t n_del = static_cast<size_t>(
        chaos.UniformInt(0, std::min<int64_t>(5, engine.db().size() / 4)));
    BatchUpdate delta =
        gen.GenerateAdditions(copy, data, n_add, chaos.Bernoulli(0.5));
    BatchUpdate deletions = gen.GenerateDeletions(engine.db(), n_del);
    delta.deletions = deletions.deletions;

    MaintenanceMode mode;
    switch (chaos.UniformInt(0, 2)) {
      case 0:
        mode = MaintenanceMode::kMidas;
        break;
      case 1:
        mode = MaintenanceMode::kRandomSwap;
        break;
      default:
        mode = MaintenanceMode::kNoMaintain;
        break;
    }
    engine.ApplyUpdate(delta, mode);

    // --- clusters partition the database exactly -------------------------
    size_t member_total = 0;
    for (const auto& [cid, cluster] : engine.clusters().clusters()) {
      member_total += cluster.members.size();
      for (GraphId id : cluster.members) {
        EXPECT_TRUE(engine.db().Contains(id));
        EXPECT_EQ(engine.clusters().ClusterOf(id), static_cast<int>(cid));
      }
      EXPECT_LE(cluster.members.size(),
                engine.config().cluster.max_cluster_size);
    }
    EXPECT_EQ(member_total, engine.db().size()) << "round " << round;

    // --- CSGs mirror their clusters --------------------------------------
    EXPECT_EQ(engine.csgs().size(), engine.clusters().size());
    for (const auto& [cid, cluster] : engine.clusters().clusters()) {
      const Csg& csg = engine.csgs().at(cid);
      EXPECT_TRUE(csg.members() == cluster.members) << "round " << round;
    }

    // --- FCT pool equals a from-scratch mine ------------------------------
    FctSet scratch = FctSet::Mine(engine.db(), engine.config().fct);
    EXPECT_EQ(FctSnapshot(engine.fcts()), FctSnapshot(scratch))
        << "round " << round;

    // --- indices equal a from-scratch rebuild (feature universe + TG) -----
    FctIndex rebuilt = FctIndex::Build(engine.db(), scratch);
    EXPECT_EQ(engine.fct_index().NumFeatures(), rebuilt.NumFeatures())
        << "round " << round;
    EXPECT_EQ(engine.fct_index().tg_matrix().NonZeroCount(),
              rebuilt.tg_matrix().NonZeroCount())
        << "round " << round;
    IfeIndex ife_rebuilt = IfeIndex::Build(engine.db(), scratch);
    EXPECT_EQ(engine.ife_index().NumEdges(), ife_rebuilt.NumEdges());
    EXPECT_EQ(engine.ife_index().eg_matrix().NonZeroCount(),
              ife_rebuilt.eg_matrix().NonZeroCount());

    // --- pattern invariants ----------------------------------------------
    EXPECT_EQ(engine.patterns().size(), engine.config().budget.gamma);
    for (const auto& [pid, p] : engine.patterns().patterns()) {
      EXPECT_TRUE(p.graph.IsConnected());
      EXPECT_GE(p.graph.NumEdges(), engine.config().budget.eta_min);
      EXPECT_LE(p.graph.NumEdges(), engine.config().budget.eta_max);
      // Cached coverage is consistent with the evaluator's universe.
      for (GraphId id : p.coverage) {
        EXPECT_TRUE(engine.evaluator().universe().Contains(id));
      }
    }

    // --- small panel mirrors the FCT pool ---------------------------------
    for (double s : engine.small_panel().supports()) {
      EXPECT_GT(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, EngineFuzzTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace midas
