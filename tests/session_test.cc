#include "midas/queryform/session.h"

#include <gtest/gtest.h>

#include "midas/graph/subgraph_iso.h"
#include "midas/queryform/formulation.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::Path;

TEST(SessionTest, AddVerticesAndEdges) {
  LabelDictionary d;
  FormulationSession s;
  VertexId a = s.AddVertex(d.Intern("C"));
  VertexId b = s.AddVertex(d.Intern("O"));
  EXPECT_TRUE(s.AddEdge(a, b));
  EXPECT_EQ(s.steps(), 3u);
  Graph canvas = s.Canvas();
  EXPECT_EQ(canvas.NumVertices(), 2u);
  EXPECT_EQ(canvas.NumEdges(), 1u);
}

TEST(SessionTest, InvalidActionsCostNothing) {
  LabelDictionary d;
  FormulationSession s;
  VertexId a = s.AddVertex(d.Intern("C"));
  EXPECT_FALSE(s.AddEdge(a, a));      // self loop
  EXPECT_FALSE(s.AddEdge(a, 99));     // bad id
  EXPECT_FALSE(s.DeleteVertex(99));
  EXPECT_FALSE(s.DeleteEdge(a, 99));
  EXPECT_EQ(s.steps(), 1u);  // only the AddVertex counted
}

TEST(SessionTest, DropPatternPlacesWholeStructure) {
  LabelDictionary d;
  FormulationSession s;
  Graph pattern = testing_util::Star(d, "C", {"O", "O", "S"});
  std::vector<VertexId> placed = s.DropPattern(pattern);
  EXPECT_EQ(placed.size(), 4u);
  EXPECT_EQ(s.steps(), 1u);  // one drag-and-drop
  EXPECT_TRUE(AreIsomorphic(s.Canvas(), pattern));
}

TEST(SessionTest, DeleteVertexCascadesEdges) {
  LabelDictionary d;
  FormulationSession s;
  std::vector<VertexId> placed =
      s.DropPattern(testing_util::Star(d, "C", {"O", "O", "S"}));
  // Delete the center: all 3 edges cascade with one step.
  EXPECT_TRUE(s.DeleteVertex(placed[0]));
  EXPECT_EQ(s.LiveEdges(), 0u);
  EXPECT_EQ(s.LiveVertices(), 3u);
  EXPECT_EQ(s.steps(), 2u);
}

TEST(SessionTest, UndoRestoresCanvas) {
  LabelDictionary d;
  FormulationSession s;
  s.DropPattern(Path(d, {"C", "O", "C"}));
  Graph before = s.Canvas();
  s.DeleteVertex(1);
  EXPECT_FALSE(AreIsomorphic(s.Canvas(), before));
  EXPECT_TRUE(s.Undo());
  EXPECT_TRUE(AreIsomorphic(s.Canvas(), before));
  EXPECT_EQ(s.steps(), 3u);  // drop + delete + undo
}

TEST(SessionTest, UndoOnEmptySession) {
  FormulationSession s;
  EXPECT_FALSE(s.Undo());
  EXPECT_EQ(s.steps(), 0u);
}

TEST(SessionTest, UndoChainBackToEmpty) {
  LabelDictionary d;
  FormulationSession s;
  s.AddVertex(d.Intern("C"));
  s.AddVertex(d.Intern("O"));
  s.AddEdge(0, 1);
  EXPECT_TRUE(s.Undo());
  EXPECT_TRUE(s.Undo());
  EXPECT_TRUE(s.Undo());
  EXPECT_FALSE(s.Undo());
  EXPECT_EQ(s.Canvas().NumVertices(), 0u);
}

TEST(SessionTest, LogRecordsActions) {
  LabelDictionary d;
  FormulationSession s;
  s.AddVertex(d.Intern("C"));
  s.DropPattern(Path(d, {"C", "O"}));
  s.Undo();
  ASSERT_EQ(s.log().size(), 3u);
  EXPECT_EQ(s.log()[0].type, FormulationSession::ActionType::kAddVertex);
  EXPECT_EQ(s.log()[1].type, FormulationSession::ActionType::kDropPattern);
  EXPECT_EQ(s.log()[2].type, FormulationSession::ActionType::kUndo);
}

// Example 1.1's flow executed end-to-end: drop an oversized pattern, trim
// it, and land exactly on the target query in the step count the edit
// planner predicted.
TEST(SessionTest, ExecutesEditPlanScenario) {
  LabelDictionary d;
  Graph target = Path(d, {"C", "O", "C"});
  Graph oversized = Path(d, {"C", "O", "C", "S"});

  PatternSet panel;
  CannedPattern p;
  p.graph = oversized;
  panel.Add(std::move(p));
  EditPlan plan = PlanFormulationWithEdits(target, panel);
  ASSERT_EQ(plan.steps, 2u);

  FormulationSession s;
  std::vector<VertexId> placed = s.DropPattern(oversized);
  s.DeleteVertex(placed[3]);  // the S leaf; its edge cascades
  EXPECT_TRUE(AreIsomorphic(s.Canvas(), target));
  EXPECT_EQ(s.steps(), plan.steps);
}

}  // namespace
}  // namespace midas
