#include "midas/select/pattern.h"

#include <gtest/gtest.h>

#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeToyDatabase;
using testing_util::Path;

CannedPattern MakePattern(Graph g) {
  CannedPattern p;
  p.graph = std::move(g);
  return p;
}

TEST(PatternSetTest, AddAssignsIds) {
  LabelDictionary d;
  PatternSet set;
  PatternId a = set.Add(MakePattern(Path(d, {"C", "O"})));
  PatternId b = set.Add(MakePattern(Path(d, {"C", "S"})));
  EXPECT_NE(a, b);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_NE(set.Find(a), nullptr);
  EXPECT_TRUE(set.Remove(a));
  EXPECT_EQ(set.Find(a), nullptr);
  EXPECT_FALSE(set.Remove(a));
}

TEST(PatternSetTest, SizeDistribution) {
  LabelDictionary d;
  PatternSet set;
  set.Add(MakePattern(Path(d, {"C", "O"})));
  set.Add(MakePattern(Path(d, {"C", "O", "C"})));
  auto sizes = set.SizeDistribution();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0] + sizes[1], 3.0);
}

TEST(PatternSetTest, CoverageAlgebra) {
  LabelDictionary d;
  PatternSet set;
  CannedPattern p1 = MakePattern(Path(d, {"C", "O"}));
  p1.coverage = IdSet{0, 1, 2};
  CannedPattern p2 = MakePattern(Path(d, {"C", "S"}));
  p2.coverage = IdSet{2, 3};
  PatternId id1 = set.Add(std::move(p1));
  PatternId id2 = set.Add(std::move(p2));

  EXPECT_EQ(set.CoverageUnion(), (IdSet{0, 1, 2, 3}));
  EXPECT_EQ(set.UniqueCoverage(id1), 2u);  // {0,1}
  EXPECT_EQ(set.UniqueCoverage(id2), 1u);  // {3}
  EXPECT_EQ(set.MinUniqueCoverage(), 1u);
  EXPECT_DOUBLE_EQ(set.FScov(8), 0.5);
}

TEST(CoverageEvaluatorTest, FullUniverseWithoutSampling) {
  GraphDatabase db = MakeToyDatabase();
  Rng rng(1);
  CoverageEvaluator eval(db, 0, rng);
  EXPECT_EQ(eval.universe().size(), db.size());
}

TEST(CoverageEvaluatorTest, SamplingCapsUniverse) {
  GraphDatabase db = MakeToyDatabase();
  Rng rng(1);
  CoverageEvaluator eval(db, 3, rng);
  EXPECT_EQ(eval.universe().size(), 3u);
  for (GraphId id : eval.universe()) EXPECT_TRUE(db.Contains(id));
}

TEST(CoverageEvaluatorTest, ResampleTracksDatabase) {
  GraphDatabase db = MakeToyDatabase();
  Rng rng(5);
  CoverageEvaluator eval(db, 0, rng);
  size_t before = eval.universe().size();
  GraphId fresh = db.Insert(Graph());
  eval.Resample(rng);
  EXPECT_EQ(eval.universe().size(), before + 1);
  EXPECT_TRUE(eval.universe().Contains(fresh));
  db.Remove(fresh);
  eval.Resample(rng);
  EXPECT_FALSE(eval.universe().Contains(fresh));
}

TEST(CoverageEvaluatorTest, CoverageMatchesDirectScan) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.25, 3, 20000});
  FctIndex fct_index = FctIndex::Build(db, fcts);
  IfeIndex ife_index = IfeIndex::Build(db, fcts);
  Rng rng(2);
  CoverageEvaluator with_idx(db, 0, rng, &fct_index, &ife_index);
  CoverageEvaluator without_idx(db, 0, rng);

  LabelDictionary& d = db.labels();
  for (const Graph& pattern :
       {Path(d, {"C", "O", "C"}), Path(d, {"C", "S"}),
        Path(d, {"C", "O", "C", "S"})}) {
    IdSet a = with_idx.CoverageOf(pattern);
    IdSet b = without_idx.CoverageOf(pattern);
    EXPECT_EQ(a, b);
    for (GraphId id : a) {
      EXPECT_TRUE(ContainsSubgraph(pattern, *db.Find(id)));
    }
  }
}

TEST(CoverageEvaluatorTest, LabelCoverage) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.5, 3, 20000});
  Rng rng(3);
  CoverageEvaluator eval(db, 0, rng);
  LabelDictionary& d = db.labels();
  // C-O occurs in all graphs.
  EXPECT_DOUBLE_EQ(eval.LabelCoverageOf(Path(d, {"C", "O"}), fcts), 1.0);
  // Unknown edge label covers nothing.
  EXPECT_DOUBLE_EQ(eval.LabelCoverageOf(Path(d, {"Zz", "Zz"}), fcts), 0.0);
}

TEST(RefreshPatternMetricsTest, PopulatesAllFields) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.5, 3, 20000});
  Rng rng(4);
  CoverageEvaluator eval(db, 0, rng);
  LabelDictionary& d = db.labels();

  CannedPattern p = MakePattern(Path(d, {"C", "O", "C"}));
  RefreshPatternMetrics(p, eval, fcts);
  EXPECT_GT(p.scov, 0.0);
  EXPECT_GT(p.lcov, 0.0);
  EXPECT_GT(p.cog, 0.0);
  EXPECT_EQ(p.coverage.size(),
            static_cast<size_t>(p.scov * static_cast<double>(db.size()) + 0.5));
}

TEST(RefreshDiversityTest, LonePatternUsesOwnSize) {
  LabelDictionary d;
  PatternSet set;
  CannedPattern p = MakePattern(Path(d, {"C", "O", "C"}));
  p.cog = p.graph.CognitiveLoad();
  set.Add(std::move(p));
  RefreshDiversityAndScores(set, std::vector<Graph>{});
  EXPECT_DOUBLE_EQ(set.patterns().begin()->second.div, 2.0);
}

TEST(RefreshDiversityTest, MinPairwiseGed) {
  LabelDictionary d;
  PatternSet set;
  CannedPattern a = MakePattern(Path(d, {"C", "O"}));
  CannedPattern b = MakePattern(Path(d, {"C", "O"}));  // identical: GED 0
  CannedPattern c = MakePattern(Path(d, {"N", "N", "N", "N"}));
  a.cog = b.cog = c.cog = 1.0;
  set.Add(std::move(a));
  set.Add(std::move(b));
  set.Add(std::move(c));
  RefreshDiversityAndScores(set, std::vector<Graph>{});
  auto it = set.patterns().begin();
  EXPECT_DOUBLE_EQ(it->second.div, 0.0);  // duplicate pair
  EXPECT_DOUBLE_EQ(set.FDiv(), 0.0);
}

TEST(SetScoreTest, ZeroWithoutPatterns) {
  PatternSet set;
  EXPECT_DOUBLE_EQ(set.SetScore(10), 0.0);
  EXPECT_DOUBLE_EQ(set.FDiv(), 0.0);
  EXPECT_DOUBLE_EQ(set.FCog(), 0.0);
}

TEST(GedFeatureTreesTest, IncludesFctsAndEdges) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = FctSet::Mine(db, {0.5, 3, 20000});
  auto trees = GedFeatureTrees(fcts);
  EXPECT_EQ(trees.size(), fcts.FrequentClosedTrees().size() +
                              fcts.FrequentEdges().size() +
                              fcts.InfrequentEdges().size());
}

}  // namespace
}  // namespace midas
