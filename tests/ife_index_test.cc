#include "midas/index/ife_index.h"

#include <gtest/gtest.h>

#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeToyDatabase;
using testing_util::Path;

FctSet MineToy(const GraphDatabase& db) {
  return FctSet::Mine(db, {0.5, 3, 20000});
}

TEST(IfeIndexTest, TracksExactlyInfrequentEdges) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  IfeIndex index = IfeIndex::Build(db, fcts);
  EXPECT_EQ(index.NumEdges(), fcts.InfrequentEdges().size());
  EXPECT_GT(index.NumEdges(), 0u);  // C-S, C-C, C-N, O-S are all infrequent
}

TEST(IfeIndexTest, EgMatrixMatchesDirectCounting) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  IfeIndex index = IfeIndex::Build(db, fcts);
  for (const auto& [lp, occ] : fcts.InfrequentEdges()) {
    for (const auto& [id, g] : db.graphs()) {
      int32_t expect = static_cast<int32_t>(CountEdgeEmbeddings(lp, g));
      auto counts = index.EdgeCounts(g);
      // Cross-check via candidate filtering instead of raw rows: a graph
      // containing lp must be a candidate for the 1-edge pattern.
      if (expect > 0) {
        Graph edge;
        VertexId a = edge.AddVertex(lp.first);
        VertexId b = edge.AddVertex(lp.second);
        edge.AddEdge(a, b);
        IdSet candidates =
            index.CandidateGraphs(index.EdgeCounts(edge), IdSet(db.Ids()));
        EXPECT_TRUE(candidates.Contains(id));
      }
      (void)counts;
    }
  }
}

TEST(IfeIndexTest, CandidateFilterIsSound) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  IfeIndex index = IfeIndex::Build(db, fcts);
  IdSet universe(db.Ids());

  LabelDictionary& d = db.labels();
  Graph pattern = Path(d, {"C", "S"});  // infrequent edge
  IdSet candidates = index.CandidateGraphs(index.EdgeCounts(pattern), universe);
  for (const auto& [id, g] : db.graphs()) {
    if (ContainsSubgraph(pattern, g)) {
      EXPECT_TRUE(candidates.Contains(id));
    } else {
      EXPECT_FALSE(candidates.Contains(id));  // exact for single edges
    }
  }
}

TEST(IfeIndexTest, PatternsWithoutInfrequentEdgesUnfiltered) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  IfeIndex index = IfeIndex::Build(db, fcts);
  IdSet universe(db.Ids());
  LabelDictionary& d = db.labels();
  Graph pattern = Path(d, {"C", "O", "C"});  // frequent edges only
  EXPECT_EQ(index.CandidateGraphs(index.EdgeCounts(pattern), universe),
            universe);
}

TEST(IfeIndexTest, AddRemoveGraph) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  IfeIndex index = IfeIndex::Build(db, fcts);

  LabelDictionary& d = db.labels();
  Graph fresh = Path(d, {"C", "S", "C"});
  GraphId id = db.Insert(fresh);
  index.AddGraph(id, fresh);
  Graph cs = Path(d, {"C", "S"});
  IdSet candidates = index.CandidateGraphs(index.EdgeCounts(cs), IdSet(db.Ids()));
  EXPECT_TRUE(candidates.Contains(id));

  index.RemoveGraph(id);
  candidates = index.CandidateGraphs(index.EdgeCounts(cs), IdSet(db.Ids()));
  EXPECT_FALSE(candidates.Contains(id));
}

TEST(IfeIndexTest, PatternColumns) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  IfeIndex index = IfeIndex::Build(db, fcts);

  LabelDictionary& d = db.labels();
  Graph pattern = Path(d, {"C", "S", "C"});
  index.AddPattern(11, pattern);
  EXPECT_GT(index.ep_matrix().NonZeroCount(), 0u);
  index.RemovePattern(11);
  EXPECT_EQ(index.ep_matrix().NonZeroCount(), 0u);
}

TEST(IfeIndexTest, SyncEdgesMigration) {
  GraphDatabase db = MakeToyDatabase();
  FctSet fcts = MineToy(db);
  IfeIndex index = IfeIndex::Build(db, fcts);
  size_t before = index.NumEdges();

  // Make C-S frequent by flooding the database with C-S graphs.
  LabelDictionary& d = db.labels();
  BatchUpdate delta;
  for (int i = 0; i < 10; ++i) delta.insertions.push_back(Path(d, {"C", "S"}));
  std::vector<GraphId> added = db.ApplyBatch(delta);
  fcts.MaintainAdd(db, added);
  index.SyncEdges(db, fcts);
  // C-S left the infrequent universe.
  EXPECT_LT(index.NumEdges(), before + 1);
  for (const auto& [lp, occ] : fcts.InfrequentEdges()) {
    Graph edge;
    VertexId a = edge.AddVertex(lp.first);
    VertexId b = edge.AddVertex(lp.second);
    edge.AddEdge(a, b);
    EXPECT_FALSE(index.EdgeCounts(edge).empty());
  }
}

}  // namespace
}  // namespace midas
