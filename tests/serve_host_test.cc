#include "midas/serve/engine_host.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>

#include "midas/common/failpoint.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/obs/event_log.h"
#include "midas/obs/metrics.h"
#include "midas/serve/quarantine.h"

namespace midas {
namespace serve {
namespace {

namespace fs = std::filesystem;
using std::chrono::milliseconds;

struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

// Disarms every failpoint on scope exit, so a failing test cannot leak
// armed sites into its neighbours.
struct FailpointGuard {
  FailpointGuard() { fail::DisarmAll(); }
  ~FailpointGuard() { fail::DisarmAll(); }
};

MidasConfig TestConfig() {
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.epsilon = 0.0;  // every round major: the full pipeline executes
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  return cfg;
}

std::unique_ptr<MidasEngine> MakeEngine(MoleculeGenerator& gen,
                                        MoleculeGenConfig& data) {
  auto engine =
      std::make_unique<MidasEngine>(gen.Generate(data), TestConfig());
  engine->Initialize();
  return engine;
}

// ΔD insertions generated against a private copy of `base`; when `novel`
// the copy's dictionary gains labels the engine has never seen, so the
// batch must ride with that dictionary through Submit.
struct LabeledBatch {
  BatchUpdate batch;
  LabelDictionary labels;
};

LabeledBatch MakeBatch(MoleculeGenerator& gen, MoleculeGenConfig& data,
                       const GraphDatabase& base, size_t adds, bool novel) {
  GraphDatabase copy = base;
  LabeledBatch out;
  out.batch = gen.GenerateAdditions(copy, data, adds, novel);
  out.labels = copy.labels();
  return out;
}

// --- Lifecycle + happy path -------------------------------------------------

TEST(EngineHostTest, ServesSnapshotsWhileApplyingBatches) {
  TempDir dir("midas_host_happy");
  MoleculeGenerator gen(101);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();
  const size_t initial = base.size();

  HostConfig cfg;
  cfg.queue_capacity = 8;
  EngineHost host(std::move(engine), dir.path, cfg);

  // Before Start: no snapshot, submissions bounce.
  EXPECT_EQ(host.snapshot(), nullptr);
  EXPECT_EQ(host.Submit(BatchUpdate()).status, SubmitStatus::kRejectedStopped);

  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;
  PanelSnapshotPtr snap0 = host.snapshot();
  ASSERT_NE(snap0, nullptr);
  EXPECT_EQ(snap0->round_seq, 0u);
  EXPECT_EQ(snap0->db_size, initial);
  EXPECT_GT(snap0->patterns.size(), 0u);
  ASSERT_NE(snap0->labels, nullptr);
  ASSERT_NE(snap0->live_ids, nullptr);
  EXPECT_GE(snap0->AgeMs(), 0.0);

  for (int i = 0; i < 3; ++i) {
    LabeledBatch lb = MakeBatch(gen, data, base, 2, /*novel=*/i == 1);
    SubmitResult r = host.Submit(std::move(lb.batch), lb.labels);
    EXPECT_TRUE(r.accepted());
  }
  ASSERT_TRUE(host.WaitIdle(milliseconds(60000)));

  PanelSnapshotPtr snap = host.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->round_seq, 3u);
  EXPECT_EQ(snap->db_size, initial + 6);
  EXPECT_GT(snap->patterns.size(), 0u);
  // The old epoch is still intact for readers that grabbed it earlier.
  EXPECT_EQ(snap0->round_seq, 0u);
  EXPECT_EQ(snap0->db_size, initial);

  HostStats s = host.stats();
  EXPECT_EQ(s.submitted, 4u);  // includes the pre-Start bounce
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.rounds_ok, 3u);
  EXPECT_EQ(s.quarantined, 0u);
  EXPECT_EQ(s.writer_rejected, 0u);
  EXPECT_FALSE(host.dead());

  host.Stop();
  EXPECT_FALSE(host.running());
  EXPECT_EQ(host.Submit(BatchUpdate()).status, SubmitStatus::kRejectedStopped);
}

TEST(EngineHostTest, SubmitValidatesAgainstSnapshot) {
  TempDir dir("midas_host_admission");
  MoleculeGenerator gen(202);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();

  EngineHost host(std::move(engine), dir.path);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  // Dangling deletion: rejected at the door with a per-item diagnostic.
  BatchUpdate bad;
  bad.deletions = {static_cast<GraphId>(base.next_id() + 1000)};
  SubmitResult r = host.Submit(std::move(bad));
  EXPECT_EQ(r.status, SubmitStatus::kRejectedValidation);
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics[0].problem, BatchProblem::kDanglingDeletion);

  // Duplicate deletions of a live id: accepted after dedupe, applied once.
  GraphId victim = host.snapshot()->live_ids->front();
  BatchUpdate dup;
  dup.insertions = MakeBatch(gen, data, base, 1, false).batch.insertions;
  dup.deletions = {victim, victim};
  r = host.Submit(std::move(dup));
  EXPECT_TRUE(r.accepted());
  ASSERT_TRUE(host.WaitIdle(milliseconds(60000)));

  PanelSnapshotPtr snap = host.snapshot();
  EXPECT_EQ(snap->round_seq, 1u);
  EXPECT_EQ(snap->db_size, base.size());  // +1 insertion, -1 deletion
  EXPECT_FALSE(snap->ContainsGraph(victim));

  HostStats s = host.stats();
  EXPECT_EQ(s.rejected_validation, 1u);
  EXPECT_EQ(s.rounds_ok, 1u);
  host.Stop();
}

TEST(EngineHostTest, WriterRevalidatesAgainstAuthoritativeDatabase) {
  TempDir dir("midas_host_writer_reject");
  MoleculeGenerator gen(303);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();

  obs::MaintenanceEventLog log;
  EngineHost host(std::move(engine), dir.path);
  host.SetEventLog(&log);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  // Both batches delete the same id; both pass the snapshot-based check
  // (the snapshot doesn't advance until a round completes), but the second
  // must be caught by the writer's re-validation.
  GraphId victim = host.snapshot()->live_ids->front();
  BatchUpdate first;
  first.deletions = {victim};
  BatchUpdate second;
  second.insertions = MakeBatch(gen, data, base, 1, false).batch.insertions;
  second.deletions = {victim};
  EXPECT_TRUE(host.Submit(std::move(first)).accepted());
  EXPECT_TRUE(host.Submit(std::move(second)).accepted());
  ASSERT_TRUE(host.WaitIdle(milliseconds(60000)));

  HostStats s = host.stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.rounds_ok + s.writer_rejected, 2u);
  // Deterministic here: the queue is FIFO and the writer applies the first
  // batch before re-validating the second.
  EXPECT_EQ(s.writer_rejected, 1u);
  host.Stop();

  bool saw_reject_event = false;
  for (const std::string& line : log.lines()) {
    if (line.find("writer_reject") != std::string::npos) {
      saw_reject_event = true;
      EXPECT_NE(line.find("dangling_deletion"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_reject_event);
}

// --- Retry, recovery, quarantine --------------------------------------------

TEST(EngineHostTest, TransientFaultIsRetriedToSuccess) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  FailpointGuard guard;
  TempDir dir("midas_host_retry_ok");
  MoleculeGenerator gen(404);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();
  const size_t initial = base.size();

  HostConfig cfg;
  cfg.backoff_initial_ms = 0.0;  // keep the test fast
  EngineHost host(std::move(engine), dir.path, cfg);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  fail::Arm("midas.apply_update.after_fct", /*skip=*/0, /*fires=*/1);
  LabeledBatch lb = MakeBatch(gen, data, base, 2, false);
  EXPECT_TRUE(host.Submit(std::move(lb.batch)).accepted());
  ASSERT_TRUE(host.WaitIdle(milliseconds(60000)));

  HostStats s = host.stats();
  EXPECT_EQ(s.rounds_ok, 1u);
  EXPECT_EQ(s.retries, 1u);
  EXPECT_EQ(s.recoveries, 1u);
  EXPECT_EQ(s.quarantined, 0u);
  PanelSnapshotPtr snap = host.snapshot();
  EXPECT_EQ(snap->round_seq, 1u);
  EXPECT_EQ(snap->db_size, initial + 2);
  EXPECT_FALSE(host.dead());
  host.Stop();
}

TEST(EngineHostTest, PoisonBatchIsQuarantinedAndStreamContinues) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  FailpointGuard guard;
  TempDir dir("midas_host_quarantine");
  MoleculeGenerator gen(505);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();
  const size_t initial = base.size();

  HostConfig cfg;
  cfg.max_attempts = 2;
  cfg.backoff_initial_ms = 0.0;
  obs::MaintenanceEventLog log;
  EngineHost host(std::move(engine), dir.path, cfg);
  host.SetEventLog(&log);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  // Fails exactly the poison batch's two attempts; the follow-up batch
  // sails through.
  fail::Arm("serve.round.before_apply", /*skip=*/0, /*fires=*/2);
  LabeledBatch poison = MakeBatch(gen, data, base, 2, /*novel=*/true);
  const size_t poison_adds = poison.batch.insertions.size();
  EXPECT_TRUE(host.Submit(std::move(poison.batch), poison.labels).accepted());
  LabeledBatch follow = MakeBatch(gen, data, base, 1, false);
  EXPECT_TRUE(host.Submit(std::move(follow.batch)).accepted());
  ASSERT_TRUE(host.WaitIdle(milliseconds(60000)));

  HostStats s = host.stats();
  EXPECT_EQ(s.quarantined, 1u);
  EXPECT_EQ(s.rounds_ok, 1u);
  EXPECT_EQ(s.retries, 1u);
  EXPECT_GE(s.recoveries, 2u);  // one per failed attempt
  EXPECT_FALSE(host.dead());

  PanelSnapshotPtr snap = host.snapshot();
  EXPECT_EQ(snap->round_seq, 1u);
  EXPECT_EQ(snap->db_size, initial + 1);

  // The quarantine file is greppable evidence and round-trips the batch —
  // including the novel labels the engine never learned.
  std::vector<std::string> files = ListQuarantineFiles(host.quarantine_dir());
  ASSERT_EQ(files.size(), 1u);
  LabelDictionary dict;
  QuarantinedBatch back;
  ASSERT_TRUE(ReadQuarantineFile(files[0], dict, &back, &err)) << err;
  EXPECT_EQ(back.attempts, 2);
  EXPECT_NE(back.reason.find("serve.round.before_apply"), std::string::npos);
  EXPECT_EQ(back.batch.insertions.size(), poison_adds);

  bool saw_quarantine_event = false;
  for (const std::string& line : log.lines()) {
    if (line.find("\"quarantine\"") != std::string::npos) {
      saw_quarantine_event = true;
    }
  }
  EXPECT_TRUE(saw_quarantine_event);
  host.Stop();
}

TEST(EngineHostTest, PostCommitFailureIsNotAppliedTwice) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  FailpointGuard guard;
  TempDir dir("midas_host_post_commit");
  MoleculeGenerator gen(606);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  GraphDatabase base = engine->db();
  const size_t initial = base.size();

  HostConfig cfg;
  cfg.backoff_initial_ms = 0.0;
  EngineHost host(std::move(engine), dir.path, cfg);
  std::string err;
  ASSERT_TRUE(host.Start(&err)) << err;

  // The crash lands after ApplyUpdate committed the round: recovery replays
  // it from the journal, and the host must publish instead of re-applying.
  fail::Arm("serve.round.before_publish", /*skip=*/0, /*fires=*/1);
  LabeledBatch lb = MakeBatch(gen, data, base, 2, false);
  EXPECT_TRUE(host.Submit(std::move(lb.batch)).accepted());
  ASSERT_TRUE(host.WaitIdle(milliseconds(60000)));

  HostStats s = host.stats();
  EXPECT_EQ(s.rounds_ok, 1u);
  EXPECT_EQ(s.quarantined, 0u);
  EXPECT_EQ(s.recoveries, 1u);
  PanelSnapshotPtr snap = host.snapshot();
  EXPECT_EQ(snap->round_seq, 1u);
  EXPECT_EQ(snap->db_size, initial + 2);  // applied exactly once
  host.Stop();
}

// --- MaintenanceHistory ring buffer -----------------------------------------

TEST(MaintenanceHistoryTest, RingEvictsOldRoundsButKeepsCounting) {
  MaintenanceHistory h(4);
  EXPECT_EQ(h.capacity(), 4u);
  for (int i = 1; i <= 10; ++i) {
    MaintenanceStats s;
    s.total_ms = static_cast<double>(i);
    s.major = (i % 2 == 0);
    s.swaps = 1;
    h.Record(s);
  }
  EXPECT_EQ(h.rounds(), 10u);    // lifetime count
  EXPECT_EQ(h.retained(), 4u);   // window
  EXPECT_EQ(h.evicted(), 6u);
  // Oldest retained entry is round 7 (1..6 evicted).
  EXPECT_DOUBLE_EQ(h.entries().front().total_ms, 7.0);
  EXPECT_DOUBLE_EQ(h.entries().back().total_ms, 10.0);

  // Summarize() still covers all ten rounds, evicted ones included.
  MaintenanceHistory::Summary sum = h.Summarize();
  EXPECT_EQ(sum.rounds, 10u);
  EXPECT_EQ(sum.major_rounds, 5u);
  EXPECT_EQ(sum.total_swaps, 10u);
  EXPECT_DOUBLE_EQ(sum.total_pmt_ms, 55.0);
  EXPECT_DOUBLE_EQ(sum.max_pmt_ms, 10.0);
  EXPECT_DOUBLE_EQ(sum.mean_pmt_ms, 5.5);
}

TEST(MaintenanceHistoryTest, ZeroCapacityRetainsEverything) {
  MaintenanceHistory h(0);  // 0 = unbounded, the pre-ring behaviour
  for (int i = 0; i < 100; ++i) h.Record(MaintenanceStats());
  EXPECT_EQ(h.rounds(), 100u);
  EXPECT_EQ(h.retained(), 100u);
  EXPECT_EQ(h.evicted(), 0u);
}

// --- Engine-level deletion hygiene (satellite: no silent ignores) -----------

TEST(EngineDeletionHygieneTest, DanglingDeletionIsRefusedUpFront) {
  MoleculeGenerator gen(707);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  const size_t before = engine->db().size();
  const uint64_t seq_before = engine->round_seq();

  BatchUpdate batch;
  batch.deletions = {static_cast<GraphId>(engine->db().next_id() + 7)};
  EXPECT_THROW(engine->ApplyUpdate(batch), std::invalid_argument);
  // Refused before any mutation: database and round counter untouched.
  EXPECT_EQ(engine->db().size(), before);
  EXPECT_EQ(engine->round_seq(), seq_before);
}

TEST(EngineDeletionHygieneTest, DuplicateDeletionsApplyOnce) {
  MoleculeGenerator gen(808);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  const size_t before = engine->db().size();
  GraphId victim = engine->db().Ids().front();

  BatchUpdate batch;
  batch.deletions = {victim, victim, victim};
  engine->ApplyUpdate(batch);
  EXPECT_EQ(engine->db().size(), before - 1);
  EXPECT_FALSE(engine->db().Contains(victim));
}

}  // namespace
}  // namespace serve
}  // namespace midas
