#include "midas/select/pattern_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::Path;
using testing_util::Star;

TEST(PatternIoTest, RoundTrip) {
  LabelDictionary d;
  PatternSet set;
  for (const Graph& g : {Path(d, {"C", "O", "C"}), Star(d, "C", {"O", "S"})}) {
    CannedPattern p;
    p.graph = g;
    set.Add(std::move(p));
  }
  std::ostringstream out;
  WritePatternSet(set, d, out);

  PatternSet restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadPatternSet(in, d, &restored));
  ASSERT_EQ(restored.size(), set.size());

  auto it1 = set.patterns().begin();
  auto it2 = restored.patterns().begin();
  for (; it1 != set.patterns().end(); ++it1, ++it2) {
    EXPECT_TRUE(AreIsomorphic(it1->second.graph, it2->second.graph));
  }
}

TEST(PatternIoTest, CrossDictionaryRemap) {
  // Write with one dictionary, read into another with different id order.
  LabelDictionary d1;
  d1.Intern("X");  // shift ids
  PatternSet set;
  CannedPattern p;
  p.graph = Path(d1, {"C", "O"});
  set.Add(std::move(p));
  std::ostringstream out;
  WritePatternSet(set, d1, out);

  LabelDictionary d2;
  Label o2 = d2.Intern("O");  // O before C in the target dictionary
  Label c2 = d2.Intern("C");
  PatternSet restored;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadPatternSet(in, d2, &restored));
  const Graph& g = restored.patterns().begin()->second.graph;
  EdgeLabelPair expected(c2, o2);
  EXPECT_EQ(g.EdgeLabel(0, 1), expected);
}

TEST(PatternIoTest, MalformedInputRejected) {
  LabelDictionary d;
  PatternSet set;
  std::istringstream in("t # 0\nv 0 C\ne 0 9\n");
  EXPECT_FALSE(ReadPatternSet(in, d, &set));
}

TEST(PatternIoTest, EmptySetRoundTrip) {
  LabelDictionary d;
  PatternSet set;
  std::ostringstream out;
  WritePatternSet(set, d, out);
  EXPECT_TRUE(out.str().empty());
  PatternSet restored;
  std::istringstream in(out.str());
  EXPECT_TRUE(ReadPatternSet(in, d, &restored));
  EXPECT_EQ(restored.size(), 0u);
}

}  // namespace
}  // namespace midas
