#include "midas/maintain/midas.h"

#include <gtest/gtest.h>

#include "midas/datagen/molecule_gen.h"
#include "test_util.h"

namespace midas {
namespace {

MidasConfig SmallEngineConfig() {
  MidasConfig cfg;
  cfg.fct.sup_min = 0.4;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.cluster.max_cluster_size = 25;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 6;
  cfg.budget.gamma = 8;
  cfg.walk.num_walks = 40;
  cfg.walk.walk_length = 12;
  cfg.sample_cap = 0;
  cfg.epsilon = 0.03;
  cfg.seed = 5;
  return cfg;
}

struct EngineFixture {
  MoleculeGenerator gen{500};
  MoleculeGenConfig data_cfg = MoleculeGenerator::EmolLike(40);
  std::unique_ptr<MidasEngine> engine;

  EngineFixture() {
    GraphDatabase db = gen.Generate(data_cfg);
    engine = std::make_unique<MidasEngine>(std::move(db), SmallEngineConfig());
    engine->Initialize();
  }
};

TEST(MidasEngineTest, InitializeBuildsEverything) {
  EngineFixture f;
  EXPECT_GT(f.engine->patterns().size(), 0u);
  EXPECT_GT(f.engine->fcts().FrequentClosedTrees().size(), 0u);
  EXPECT_GT(f.engine->clusters().size(), 0u);
  EXPECT_EQ(f.engine->csgs().size(), f.engine->clusters().size());
  EXPECT_GT(f.engine->fct_index().NumFeatures(), 0u);
}

TEST(MidasEngineTest, CsgsMirrorClusters) {
  EngineFixture f;
  for (const auto& [cid, cluster] : f.engine->clusters().clusters()) {
    auto it = f.engine->csgs().find(cid);
    ASSERT_NE(it, f.engine->csgs().end());
    EXPECT_TRUE(it->second.members() == cluster.members);
  }
}

TEST(MidasEngineTest, MinorUpdateKeepsPatterns) {
  EngineFixture f;
  std::vector<PatternId> before;
  for (const auto& [pid, p] : f.engine->patterns().patterns()) {
    before.push_back(pid);
  }
  // A tiny in-family addition: graphlet distribution barely moves. The
  // delta is generated against a copy of the database; label ids stay valid
  // because MoleculeGenerator interns its alphabet in a fixed order.
  BatchUpdate delta;
  {
    MoleculeGenerator gen2(501);
    GraphDatabase db_copy = f.engine->db();
    delta = gen2.GenerateAdditions(db_copy, f.data_cfg, 1, false);
  }
  MaintenanceStats stats = f.engine->ApplyUpdate(delta);
  if (!stats.major) {
    std::vector<PatternId> after;
    for (const auto& [pid, p] : f.engine->patterns().patterns()) {
      after.push_back(pid);
    }
    EXPECT_EQ(before, after);
    EXPECT_EQ(stats.swaps, 0);
  }
  // Structures are maintained regardless.
  EXPECT_EQ(f.engine->db().size(), 41u);
  EXPECT_EQ(f.engine->fcts().database_size(), 41u);
}

TEST(MidasEngineTest, MajorUpdateTriggersMaintenance) {
  EngineFixture f;
  GraphDatabase db_copy = f.engine->db();
  MoleculeGenerator gen2(502);
  BatchUpdate delta = gen2.GenerateAdditions(db_copy, f.data_cfg, 25, true);
  MaintenanceStats stats = f.engine->ApplyUpdate(delta);
  EXPECT_TRUE(stats.major);
  EXPECT_GT(stats.graphlet_distance, 0.0);
  EXPECT_GE(stats.candidates, 0);
  EXPECT_GT(stats.total_ms, 0.0);
}

TEST(MidasEngineTest, DeletionsMaintainStructures) {
  EngineFixture f;
  std::vector<GraphId> ids = f.engine->db().Ids();
  BatchUpdate delta;
  delta.deletions = {ids[0], ids[1], ids[2]};
  f.engine->ApplyUpdate(delta);
  EXPECT_EQ(f.engine->db().size(), 37u);
  EXPECT_EQ(f.engine->fcts().database_size(), 37u);
  for (GraphId id : delta.deletions) {
    EXPECT_EQ(f.engine->clusters().ClusterOf(id), -1);
  }
  // CSGs reconciled with cluster membership.
  for (const auto& [cid, cluster] : f.engine->clusters().clusters()) {
    EXPECT_TRUE(f.engine->csgs().at(cid).members() == cluster.members);
  }
}

TEST(MidasEngineTest, QualityNeverRegressesUnderMidasMode) {
  EngineFixture f;
  PatternQuality before = f.engine->CurrentQuality();
  GraphDatabase db_copy = f.engine->db();
  MoleculeGenerator gen2(503);
  BatchUpdate delta = gen2.GenerateAdditions(db_copy, f.data_cfg, 25, true);
  MaintenanceStats stats = f.engine->ApplyUpdate(delta);
  PatternQuality after = f.engine->CurrentQuality();
  if (stats.major && stats.swaps > 0) {
    // sw4: cognitive load must not increase through swapping.
    EXPECT_LE(after.cog_max, before.cog_max + 1e-9);
  }
  EXPECT_GE(after.scov, 0.0);
}

TEST(MidasEngineTest, NoMaintainModeFreezesPatterns) {
  EngineFixture f;
  std::vector<std::string> sigs_before;
  for (const auto& [pid, p] : f.engine->patterns().patterns()) {
    sigs_before.push_back(std::to_string(pid));
  }
  GraphDatabase db_copy = f.engine->db();
  MoleculeGenerator gen2(504);
  BatchUpdate delta = gen2.GenerateAdditions(db_copy, f.data_cfg, 25, true);
  f.engine->ApplyUpdate(delta, MaintenanceMode::kNoMaintain);
  std::vector<std::string> sigs_after;
  for (const auto& [pid, p] : f.engine->patterns().patterns()) {
    sigs_after.push_back(std::to_string(pid));
  }
  EXPECT_EQ(sigs_before, sigs_after);
}

TEST(RunFromScratchTest, BothModesProducePatterns) {
  MoleculeGenerator gen(505);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(30));
  MidasConfig cfg = SmallEngineConfig();
  FromScratchResult plain = RunFromScratch(db, cfg, false, 1);
  FromScratchResult plus = RunFromScratch(db, cfg, true, 1);
  EXPECT_GT(plain.patterns.size(), 0u);
  EXPECT_GT(plus.patterns.size(), 0u);
  EXPECT_GT(plain.total_ms, 0.0);
  EXPECT_GT(plus.total_ms, 0.0);
}

TEST(EvaluateQualityTest, AggregatesCorrectly) {
  LabelDictionary d;
  PatternSet set;
  CannedPattern a;
  a.graph = testing_util::Path(d, {"C", "O"});
  a.coverage = IdSet{0, 1};
  a.scov = 0.5;
  a.lcov = 0.8;
  a.cog = 1.0;
  a.div = 2.0;
  CannedPattern b;
  b.graph = testing_util::Path(d, {"C", "S"});
  b.coverage = IdSet{2};
  b.scov = 0.25;
  b.lcov = 0.6;
  b.cog = 3.0;
  b.div = 4.0;
  set.Add(std::move(a));
  set.Add(std::move(b));

  PatternQuality q = EvaluateQuality(set, 4);
  EXPECT_DOUBLE_EQ(q.scov, 0.75);  // 3 of 4 covered
  EXPECT_DOUBLE_EQ(q.div, 2.0);
  EXPECT_DOUBLE_EQ(q.cog_max, 3.0);
  EXPECT_DOUBLE_EQ(q.cog_avg, 2.0);
}

}  // namespace
}  // namespace midas
