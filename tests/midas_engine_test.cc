#include "midas/maintain/midas.h"

#include <gtest/gtest.h>

#include <limits>

#include "midas/datagen/molecule_gen.h"
#include "midas/obs/event_log.h"
#include "midas/obs/json.h"
#include "midas/obs/metrics.h"
#include "test_util.h"

namespace midas {
namespace {

MidasConfig SmallEngineConfig() {
  MidasConfig cfg;
  cfg.fct.sup_min = 0.4;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.cluster.max_cluster_size = 25;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 6;
  cfg.budget.gamma = 8;
  cfg.walk.num_walks = 40;
  cfg.walk.walk_length = 12;
  cfg.sample_cap = 0;
  cfg.epsilon = 0.03;
  cfg.seed = 5;
  return cfg;
}

struct EngineFixture {
  MoleculeGenerator gen{500};
  MoleculeGenConfig data_cfg = MoleculeGenerator::EmolLike(40);
  std::unique_ptr<MidasEngine> engine;

  EngineFixture() {
    GraphDatabase db = gen.Generate(data_cfg);
    engine = std::make_unique<MidasEngine>(std::move(db), SmallEngineConfig());
    engine->Initialize();
  }
};

TEST(MidasEngineTest, InitializeBuildsEverything) {
  EngineFixture f;
  EXPECT_GT(f.engine->patterns().size(), 0u);
  EXPECT_GT(f.engine->fcts().FrequentClosedTrees().size(), 0u);
  EXPECT_GT(f.engine->clusters().size(), 0u);
  EXPECT_EQ(f.engine->csgs().size(), f.engine->clusters().size());
  EXPECT_GT(f.engine->fct_index().NumFeatures(), 0u);
}

TEST(MidasEngineTest, CsgsMirrorClusters) {
  EngineFixture f;
  for (const auto& [cid, cluster] : f.engine->clusters().clusters()) {
    auto it = f.engine->csgs().find(cid);
    ASSERT_NE(it, f.engine->csgs().end());
    EXPECT_TRUE(it->second.members() == cluster.members);
  }
}

TEST(MidasEngineTest, MinorUpdateKeepsPatterns) {
  EngineFixture f;
  std::vector<PatternId> before;
  for (const auto& [pid, p] : f.engine->patterns().patterns()) {
    before.push_back(pid);
  }
  // A tiny in-family addition: graphlet distribution barely moves. The
  // delta is generated against a copy of the database; label ids stay valid
  // because MoleculeGenerator interns its alphabet in a fixed order.
  BatchUpdate delta;
  {
    MoleculeGenerator gen2(501);
    GraphDatabase db_copy = f.engine->db();
    delta = gen2.GenerateAdditions(db_copy, f.data_cfg, 1, false);
  }
  MaintenanceStats stats = f.engine->ApplyUpdate(delta);
  if (!stats.major) {
    std::vector<PatternId> after;
    for (const auto& [pid, p] : f.engine->patterns().patterns()) {
      after.push_back(pid);
    }
    EXPECT_EQ(before, after);
    EXPECT_EQ(stats.swaps, 0);
  }
  // Structures are maintained regardless.
  EXPECT_EQ(f.engine->db().size(), 41u);
  EXPECT_EQ(f.engine->fcts().database_size(), 41u);
}

TEST(MidasEngineTest, MajorUpdateTriggersMaintenance) {
  EngineFixture f;
  GraphDatabase db_copy = f.engine->db();
  MoleculeGenerator gen2(502);
  BatchUpdate delta = gen2.GenerateAdditions(db_copy, f.data_cfg, 25, true);
  MaintenanceStats stats = f.engine->ApplyUpdate(delta);
  EXPECT_TRUE(stats.major);
  EXPECT_GT(stats.graphlet_distance, 0.0);
  EXPECT_GE(stats.candidates, 0);
  EXPECT_GT(stats.total_ms, 0.0);
}

TEST(MidasEngineTest, DeletionsMaintainStructures) {
  EngineFixture f;
  std::vector<GraphId> ids = f.engine->db().Ids();
  BatchUpdate delta;
  delta.deletions = {ids[0], ids[1], ids[2]};
  f.engine->ApplyUpdate(delta);
  EXPECT_EQ(f.engine->db().size(), 37u);
  EXPECT_EQ(f.engine->fcts().database_size(), 37u);
  for (GraphId id : delta.deletions) {
    EXPECT_EQ(f.engine->clusters().ClusterOf(id), -1);
  }
  // CSGs reconciled with cluster membership.
  for (const auto& [cid, cluster] : f.engine->clusters().clusters()) {
    EXPECT_TRUE(f.engine->csgs().at(cid).members() == cluster.members);
  }
}

TEST(MidasEngineTest, QualityNeverRegressesUnderMidasMode) {
  EngineFixture f;
  PatternQuality before = f.engine->CurrentQuality();
  GraphDatabase db_copy = f.engine->db();
  MoleculeGenerator gen2(503);
  BatchUpdate delta = gen2.GenerateAdditions(db_copy, f.data_cfg, 25, true);
  MaintenanceStats stats = f.engine->ApplyUpdate(delta);
  PatternQuality after = f.engine->CurrentQuality();
  if (stats.major && stats.swaps > 0) {
    // sw4: cognitive load must not increase through swapping.
    EXPECT_LE(after.cog_max, before.cog_max + 1e-9);
  }
  EXPECT_GE(after.scov, 0.0);
}

TEST(MidasEngineTest, NoMaintainModeFreezesPatterns) {
  EngineFixture f;
  std::vector<std::string> sigs_before;
  for (const auto& [pid, p] : f.engine->patterns().patterns()) {
    sigs_before.push_back(std::to_string(pid));
  }
  GraphDatabase db_copy = f.engine->db();
  MoleculeGenerator gen2(504);
  BatchUpdate delta = gen2.GenerateAdditions(db_copy, f.data_cfg, 25, true);
  f.engine->ApplyUpdate(delta, MaintenanceMode::kNoMaintain);
  std::vector<std::string> sigs_after;
  for (const auto& [pid, p] : f.engine->patterns().patterns()) {
    sigs_after.push_back(std::to_string(pid));
  }
  EXPECT_EQ(sigs_before, sigs_after);
}

TEST(MidasEngineTest, PhaseSpansSumToTotal) {
  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scoped(reg);
  EngineFixture f;
  GraphDatabase db_copy = f.engine->db();
  MoleculeGenerator gen2(506);
  BatchUpdate delta = gen2.GenerateAdditions(db_copy, f.data_cfg, 25, true);
  MaintenanceStats stats = f.engine->ApplyUpdate(delta);
  // The spans partition the round: per-phase times must account for the
  // whole wall time (within 5% + a fixed floor for span overhead).
  EXPECT_GT(stats.total_ms, 0.0);
  EXPECT_NEAR(stats.PhaseSumMs(), stats.total_ms,
              0.05 * stats.total_ms + 0.5);
  // And the histograms observed exactly this one round.
  EXPECT_EQ(reg.GetHistogram("midas_maintain_total_ms")->Count(), 1u);
  EXPECT_EQ(reg.GetHistogram("midas_maintain_apply_ms")->Count(), 1u);
  EXPECT_EQ(reg.GetCounter("midas_maintain_rounds_total")->Value(), 1u);
  EXPECT_DOUBLE_EQ(reg.GetGauge("midas_maintain_db_size")->Value(),
                   static_cast<double>(f.engine->db().size()));
}

TEST(MidasEngineTest, StatsJsonRoundTrips) {
  MaintenanceStats s;
  s.total_ms = 12.5;
  s.apply_ms = 1.0;
  s.fct_ms = 2.0;
  s.cluster_ms = 3.0;
  s.csg_ms = 0.5;
  s.index_ms = 0.25;
  s.refresh_ms = 1.75;
  s.candidate_ms = 2.5;
  s.swap_ms = 1.5;
  s.graphlet_distance = 0.125;
  s.major = true;
  s.candidates = 7;
  s.swaps = 3;
  bool ok = false;
  MaintenanceStats back = MaintenanceStats::FromJson(s.ToJson(), &ok);
  ASSERT_TRUE(ok) << s.ToJson();
  EXPECT_EQ(back.ToJson(), s.ToJson());
  EXPECT_DOUBLE_EQ(back.PhaseSumMs(), s.PhaseSumMs());
  EXPECT_TRUE(back.major);
  EXPECT_EQ(back.candidates, 7);
  EXPECT_EQ(back.swaps, 3);

  MaintenanceStats bad = MaintenanceStats::FromJson("{broken", &ok);
  EXPECT_FALSE(ok);
  EXPECT_DOUBLE_EQ(bad.total_ms, 0.0);
}

TEST(MidasEngineTest, StatsFromJsonRejectsTruncatedInput) {
  MaintenanceStats s;
  s.total_ms = 12.5;
  s.major = true;
  std::string json = s.ToJson();
  // Every proper prefix is incomplete: ok must be false and the result must
  // stay default-initialized, never a half-filled struct treated as valid.
  for (size_t len : {size_t{0}, size_t{1}, json.size() / 2, json.size() - 1}) {
    bool ok = true;
    MaintenanceStats back = MaintenanceStats::FromJson(json.substr(0, len),
                                                       &ok);
    EXPECT_FALSE(ok) << "prefix length " << len;
    (void)back;
  }
}

TEST(MidasEngineTest, StatsFromJsonRejectsNonFiniteNumbers) {
  MaintenanceStats s;
  s.total_ms = std::numeric_limits<double>::quiet_NaN();
  s.swap_ms = std::numeric_limits<double>::infinity();
  // ToJson serializes non-finite doubles as quoted sentinels ("NaN"/"Inf"),
  // which are deliberately NOT parseable back as numbers.
  std::string json = s.ToJson();
  EXPECT_NE(json.find("\"NaN\""), std::string::npos);
  EXPECT_NE(json.find("\"Inf\""), std::string::npos);
  bool ok = true;
  MaintenanceStats back = MaintenanceStats::FromJson(json, &ok);
  EXPECT_FALSE(ok);
  EXPECT_DOUBLE_EQ(back.total_ms, 0.0);

  // Raw (unquoted) non-finite tokens from a foreign writer are malformed
  // JSON and must not parse either.
  ok = true;
  MaintenanceStats raw = MaintenanceStats::FromJson(
      "{\"total_ms\": NaN, \"apply_ms\": Infinity}", &ok);
  EXPECT_FALSE(ok);
  EXPECT_DOUBLE_EQ(raw.total_ms, 0.0);
  EXPECT_DOUBLE_EQ(raw.apply_ms, 0.0);
}

TEST(MidasEngineTest, StatsFromJsonToleratesUnknownKeys) {
  MaintenanceStats s;
  s.total_ms = 4.0;
  s.candidates = 2;
  std::string json = s.ToJson();
  // A newer writer may add fields; an older reader must still accept the
  // record as long as every field it knows about is present.
  ASSERT_EQ(json.front(), '{');
  std::string extended =
      "{\"future_field\":123,\"another\":\"text\"," + json.substr(1);
  bool ok = false;
  MaintenanceStats back = MaintenanceStats::FromJson(extended, &ok);
  EXPECT_TRUE(ok) << extended;
  EXPECT_DOUBLE_EQ(back.total_ms, 4.0);
  EXPECT_EQ(back.candidates, 2);
}

TEST(MidasEngineTest, EventLogRecordsEveryRound) {
  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scoped(reg);
  EngineFixture f;
  obs::MaintenanceEventLog log;
  f.engine->SetEventLog(&log);

  GraphDatabase db_copy = f.engine->db();
  MoleculeGenerator gen2(507);
  BatchUpdate delta = gen2.GenerateAdditions(db_copy, f.data_cfg, 5, false);
  MaintenanceStats stats = f.engine->ApplyUpdate(delta);

  std::vector<GraphId> ids = f.engine->db().Ids();
  BatchUpdate deletions;
  deletions.deletions = {ids[0], ids[1]};
  f.engine->ApplyUpdate(deletions);

  ASSERT_EQ(log.size(), 2u);
  obs::FlatJson first = obs::ParseFlatJson(log.lines()[0]);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_DOUBLE_EQ(first.numbers.at("seq"), 1.0);
  EXPECT_DOUBLE_EQ(first.numbers.at("additions"), 5.0);
  EXPECT_DOUBLE_EQ(first.numbers.at("deletions"), 0.0);
  EXPECT_DOUBLE_EQ(first.numbers.at("db_size"), 45.0);
  EXPECT_EQ(first.bools.at("major"), stats.major);
  EXPECT_NEAR(first.numbers.at("phases.total_ms"), stats.total_ms, 1e-9);
  EXPECT_NEAR(first.numbers.at("epsilon"), f.engine->config().epsilon, 1e-12);
  EXPECT_TRUE(first.Has("quality.scov"));

  obs::FlatJson second = obs::ParseFlatJson(log.lines()[1]);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_DOUBLE_EQ(second.numbers.at("seq"), 2.0);
  EXPECT_DOUBLE_EQ(second.numbers.at("deletions"), 2.0);
  EXPECT_DOUBLE_EQ(second.numbers.at("db_size"), 43.0);

  // Detaching stops the stream.
  f.engine->SetEventLog(nullptr);
  BatchUpdate more;
  more.deletions = {ids[2]};
  f.engine->ApplyUpdate(more);
  EXPECT_EQ(log.size(), 2u);
}

TEST(RunFromScratchTest, BothModesProducePatterns) {
  MoleculeGenerator gen(505);
  GraphDatabase db = gen.Generate(MoleculeGenerator::EmolLike(30));
  MidasConfig cfg = SmallEngineConfig();
  FromScratchResult plain = RunFromScratch(db, cfg, false, 1);
  FromScratchResult plus = RunFromScratch(db, cfg, true, 1);
  EXPECT_GT(plain.patterns.size(), 0u);
  EXPECT_GT(plus.patterns.size(), 0u);
  EXPECT_GT(plain.total_ms, 0.0);
  EXPECT_GT(plus.total_ms, 0.0);
}

TEST(EvaluateQualityTest, AggregatesCorrectly) {
  LabelDictionary d;
  PatternSet set;
  CannedPattern a;
  a.graph = testing_util::Path(d, {"C", "O"});
  a.coverage = IdSet{0, 1};
  a.scov = 0.5;
  a.lcov = 0.8;
  a.cog = 1.0;
  a.div = 2.0;
  CannedPattern b;
  b.graph = testing_util::Path(d, {"C", "S"});
  b.coverage = IdSet{2};
  b.scov = 0.25;
  b.lcov = 0.6;
  b.cog = 3.0;
  b.div = 4.0;
  set.Add(std::move(a));
  set.Add(std::move(b));

  PatternQuality q = EvaluateQuality(set, 4);
  EXPECT_DOUBLE_EQ(q.scov, 0.75);  // 3 of 4 covered
  EXPECT_DOUBLE_EQ(q.div, 2.0);
  EXPECT_DOUBLE_EQ(q.cog_max, 3.0);
  EXPECT_DOUBLE_EQ(q.cog_avg, 2.0);
}

}  // namespace
}  // namespace midas
