#include "midas/mining/tree_miner.h"

#include <gtest/gtest.h>

#include <set>

#include "midas/graph/canonical.h"
#include "midas/graph/subgraph_iso.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeToyDatabase;

TreeMinerConfig Config(double sup, size_t max_edges) {
  TreeMinerConfig c;
  c.min_support = sup;
  c.max_edges = max_edges;
  return c;
}

TEST(TreeMinerTest, MakeViewCoversDatabase) {
  GraphDatabase db = MakeToyDatabase();
  GraphView view = MakeView(db);
  EXPECT_EQ(view.size(), db.size());
  GraphView partial = MakeView(db, {0, 2, 999});
  EXPECT_EQ(partial.size(), 2u);  // unknown ids skipped
}

TEST(TreeMinerTest, EdgeOccurrencesExact) {
  GraphDatabase db = MakeToyDatabase();
  auto occ = EdgeOccurrences(MakeView(db));
  // C-O occurs in every toy graph.
  Label c = static_cast<Label>(db.labels().Lookup("C"));
  Label o = static_cast<Label>(db.labels().Lookup("O"));
  EdgeLabelPair co(c, o);
  ASSERT_TRUE(occ.count(co) > 0);
  EXPECT_EQ(occ.at(co).size(), db.size());
}

TEST(TreeMinerTest, FrequentEdgesFound) {
  GraphDatabase db = MakeToyDatabase();
  auto trees = MineFrequentTrees(MakeView(db), Config(0.5, 1));
  // At sup 0.5 the C-O edge (8/8) and C-S edge... C-S occurs in G0, G4, G5:
  // 3/8 < 0.5 -> only C-O (and C-C in G6 only: 1/8). So exactly one.
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0].occurrences.size(), db.size());
  EXPECT_EQ(trees[0].tree.NumEdges(), 1u);
}

TEST(TreeMinerTest, SupportsAreCorrect) {
  GraphDatabase db = MakeToyDatabase();
  auto trees = MineFrequentTrees(MakeView(db), Config(0.25, 3));
  ASSERT_FALSE(trees.empty());
  // Verify every reported occurrence by direct subgraph isomorphism, and
  // that no occurrence is missed.
  for (const MinedTree& t : trees) {
    for (const auto& [id, g] : db.graphs()) {
      bool contains = ContainsSubgraph(t.tree, g);
      EXPECT_EQ(contains, t.occurrences.Contains(id))
          << "tree " << t.canon << " graph " << id;
    }
  }
}

TEST(TreeMinerTest, AllMinedTreesAreTreesAndFrequent) {
  GraphDatabase db = MakeToyDatabase();
  double sup = 0.25;
  auto trees = MineFrequentTrees(MakeView(db), Config(sup, 3));
  for (const MinedTree& t : trees) {
    EXPECT_TRUE(t.tree.IsTree());
    EXPECT_GE(t.Support(db.size()), sup);
    EXPECT_EQ(t.canon, CanonicalTreeString(t.tree));
  }
}

TEST(TreeMinerTest, NoDuplicateTrees) {
  GraphDatabase db = MakeToyDatabase();
  auto trees = MineFrequentTrees(MakeView(db), Config(0.2, 3));
  std::set<std::string> canons;
  for (const MinedTree& t : trees) {
    EXPECT_TRUE(canons.insert(t.canon).second) << "duplicate " << t.canon;
  }
}

TEST(TreeMinerTest, MaxEdgesRespected) {
  GraphDatabase db = MakeToyDatabase();
  auto trees = MineFrequentTrees(MakeView(db), Config(0.2, 2));
  for (const MinedTree& t : trees) EXPECT_LE(t.tree.NumEdges(), 2u);
}

TEST(TreeMinerTest, EmptyViewYieldsNothing) {
  GraphView empty;
  EXPECT_TRUE(MineFrequentTrees(empty, Config(0.5, 3)).empty());
}

TEST(TreeMinerTest, SupportIsAntitone) {
  GraphDatabase db = MakeToyDatabase();
  auto trees = MineFrequentTrees(MakeView(db), Config(0.2, 3));
  // Every subtree relation implies occurrence-set inclusion.
  for (const MinedTree& small : trees) {
    for (const MinedTree& big : trees) {
      if (small.tree.NumEdges() + 1 != big.tree.NumEdges()) continue;
      if (!ContainsSubgraph(small.tree, big.tree)) continue;
      EXPECT_EQ(IdSet::Intersection(small.occurrences, big.occurrences).size(),
                big.occurrences.size())
          << big.canon << " not within " << small.canon;
    }
  }
}

TEST(FilterClosedTreesTest, DropsNonClosed) {
  GraphDatabase db = MakeToyDatabase();
  auto trees = MineFrequentTrees(MakeView(db), Config(0.25, 3));
  auto closed = FilterClosedTrees(trees, 3);
  EXPECT_LE(closed.size(), trees.size());
  // Definition check: a closed tree has no one-edge-larger mined supertree
  // with identical occurrences.
  for (const MinedTree& c : closed) {
    for (const MinedTree& t : trees) {
      if (t.tree.NumEdges() != c.tree.NumEdges() + 1) continue;
      if (c.tree.NumEdges() >= 3) continue;  // at cap: closed by convention
      bool equal_occ = t.occurrences == c.occurrences;
      bool is_super = ContainsSubgraph(c.tree, t.tree);
      EXPECT_FALSE(equal_occ && is_super)
          << c.canon << " should not be closed (supertree " << t.canon << ")";
    }
  }
}

TEST(FilterClosedTreesTest, KeepsEverythingWhenSupportsDiffer) {
  // Database where the C-O edge strictly dominates every extension.
  GraphDatabase db;
  LabelDictionary& d = db.labels();
  db.Insert(testing_util::Path(d, {"C", "O"}));
  db.Insert(testing_util::Path(d, {"C", "O", "C"}));
  auto trees = MineFrequentTrees(MakeView(db), Config(0.5, 2));
  auto closed = FilterClosedTrees(trees, 2);
  // C-O has support 2/2; C-O-C support 1/2 (infrequent at 0.5): the edge is
  // closed and survives.
  bool found_edge = false;
  for (const MinedTree& t : closed) {
    if (t.tree.NumEdges() == 1) found_edge = true;
  }
  EXPECT_TRUE(found_edge);
}

TEST(FilterClosedTreesTest, NonClosedEdgeEliminated) {
  // Every graph containing C-O also contains C-O-C: the edge is not closed.
  GraphDatabase db;
  LabelDictionary& d = db.labels();
  db.Insert(testing_util::Path(d, {"C", "O", "C"}));
  db.Insert(testing_util::Path(d, {"C", "O", "C", "S"}));
  auto trees = MineFrequentTrees(MakeView(db), Config(0.5, 2));
  auto closed = FilterClosedTrees(trees, 2);
  for (const MinedTree& t : closed) {
    if (t.tree.NumEdges() == 1) {
      // The only 1-edge trees allowed to survive are those whose extension
      // support differs; C-O must have been subsumed by C-O-C.
      EXPECT_NE(t.occurrences.size(), 2u);
    }
  }
}

}  // namespace
}  // namespace midas
