#include "midas/maintain/journal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "midas/common/failpoint.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/graph/graph_io.h"
#include "midas/graph/subgraph_iso.h"
#include "midas/maintain/snapshot.h"
#include "midas/obs/metrics.h"

namespace midas {
namespace {

namespace fs = std::filesystem;

// Unique scratch directory, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& name)
      : path((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

MidasConfig TestConfig() {
  MidasConfig cfg;
  cfg.budget = {3, 7, 9};
  cfg.fct.sup_min = 0.45;
  cfg.fct.max_edges = 3;
  cfg.cluster.num_coarse = 3;
  cfg.epsilon = 0.0;  // classify every round major: all phases execute
  cfg.sample_cap = 0;
  cfg.seed = 1234;
  return cfg;
}

// Deterministic engine + batches: same seeds, same everything.
std::unique_ptr<MidasEngine> MakeEngine(MoleculeGenerator& gen,
                                        MoleculeGenConfig& data) {
  auto engine = std::make_unique<MidasEngine>(gen.Generate(data),
                                              TestConfig());
  engine->Initialize();
  return engine;
}

BatchUpdate MakeBatch(MoleculeGenerator& gen, MoleculeGenConfig& data,
                      const MidasEngine& engine, size_t adds, bool novel) {
  GraphDatabase copy = engine.db();
  return gen.GenerateAdditions(copy, data, adds, novel);
}

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

// Panels match pattern-by-pattern (in id order) up to label renaming.
void ExpectSamePanel(const PatternSet& expected,
                     const LabelDictionary& expected_labels,
                     const PatternSet& actual, LabelDictionary& actual_labels) {
  ASSERT_EQ(actual.size(), expected.size());
  auto it1 = expected.patterns().begin();
  auto it2 = actual.patterns().begin();
  for (; it1 != expected.patterns().end(); ++it1, ++it2) {
    Graph remapped =
        RemapLabels(it1->second.graph, expected_labels, actual_labels);
    EXPECT_TRUE(AreIsomorphic(remapped, it2->second.graph));
  }
}

// --- Journal round trips ----------------------------------------------------

TEST(JournalTest, BatchAndCommitRoundTrip) {
  TempDir dir("midas_journal_rt");
  MoleculeGenerator gen(777);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);

  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(dir.path + "/j.log"));
  BatchUpdate batch = MakeBatch(gen, data, *engine, 6, true);
  batch.deletions = {3, 5};
  ASSERT_TRUE(journal.AppendBatch(1, batch, engine->db().labels()));
  ASSERT_TRUE(journal.AppendCommit(1, engine->patterns(),
                                   engine->db().labels()));

  LabelDictionary dict;
  JournalReadResult r = ReadJournal(dir.path + "/j.log", dict);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.tail_truncated);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.rounds[0].seq, 1u);
  EXPECT_TRUE(r.rounds[0].committed);
  EXPECT_EQ(r.rounds[0].batch.insertions.size(), batch.insertions.size());
  EXPECT_EQ(r.rounds[0].batch.deletions, batch.deletions);
  EXPECT_EQ(r.rounds[0].panel.size(), engine->patterns().size());
}

TEST(JournalTest, MissingFileIsEmptyJournal) {
  LabelDictionary dict;
  JournalReadResult r = ReadJournal("/nonexistent/midas/journal.log", dict);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.rounds.empty());
  EXPECT_FALSE(r.tail_truncated);
}

TEST(JournalTest, TornTailIsDroppedPrefixTrusted) {
  TempDir dir("midas_journal_torn");
  MoleculeGenerator gen(778);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  const std::string path = dir.path + "/j.log";

  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(path));
  BatchUpdate b1 = MakeBatch(gen, data, *engine, 4, false);
  ASSERT_TRUE(journal.AppendBatch(1, b1, engine->db().labels()));
  ASSERT_TRUE(journal.AppendCommit(1, engine->patterns(),
                                   engine->db().labels()));
  BatchUpdate b2 = MakeBatch(gen, data, *engine, 4, true);
  ASSERT_TRUE(journal.AppendBatch(2, b2, engine->db().labels()));
  journal.Close();

  // Crash mid-append: chop 10 bytes off the second batch record.
  std::string text = ReadFileText(path);
  WriteFileText(path, text.substr(0, text.size() - 10));

  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scope(reg);
  LabelDictionary dict;
  JournalReadResult r = ReadJournal(path, dict);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.tail_truncated);
  ASSERT_EQ(r.rounds.size(), 1u);  // the torn round is gone, round 1 intact
  EXPECT_TRUE(r.rounds[0].committed);
  EXPECT_EQ(reg.GetCounter("midas_journal_torn_tail_total")->Value(), 1u);
}

TEST(JournalTest, CorruptedChecksumStopsScan) {
  TempDir dir("midas_journal_crc");
  MoleculeGenerator gen(779);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  const std::string path = dir.path + "/j.log";

  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(path));
  BatchUpdate b1 = MakeBatch(gen, data, *engine, 4, false);
  ASSERT_TRUE(journal.AppendBatch(1, b1, engine->db().labels()));
  journal.Close();

  // Flip one payload byte; the CRC no longer matches.
  std::string text = ReadFileText(path);
  text[text.size() / 2] ^= 0x01;
  WriteFileText(path, text);

  LabelDictionary dict;
  JournalReadResult r = ReadJournal(path, dict);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.tail_truncated);
  EXPECT_TRUE(r.rounds.empty());
  EXPECT_NE(r.error.find("checksum"), std::string::npos) << r.error;
}

TEST(JournalTest, SeqRegressionAfterCommittedRoundStopsScan) {
  TempDir dir("midas_journal_seq_regress");
  MoleculeGenerator gen(781);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  const std::string path = dir.path + "/j.log";

  // A @B/@C pair whose payload CRCs are perfectly valid but whose seq goes
  // backwards: every byte checks out, yet the record cannot belong to this
  // history (an overwritten or mis-spliced journal). The scan must treat it
  // exactly like corruption — trust the prefix, drop the tail.
  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(path));
  BatchUpdate b5 = MakeBatch(gen, data, *engine, 3, false);
  ASSERT_TRUE(journal.AppendBatch(5, b5, engine->db().labels()));
  ASSERT_TRUE(journal.AppendCommit(5, engine->patterns(),
                                   engine->db().labels()));
  BatchUpdate b3 = MakeBatch(gen, data, *engine, 2, false);
  ASSERT_TRUE(journal.AppendBatch(3, b3, engine->db().labels()));
  ASSERT_TRUE(journal.AppendCommit(3, engine->patterns(),
                                   engine->db().labels()));
  journal.Close();

  LabelDictionary dict;
  JournalReadResult r = ReadJournal(path, dict);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.tail_truncated);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.rounds[0].seq, 5u);
  EXPECT_TRUE(r.rounds[0].committed);
  EXPECT_NE(r.error.find("seq regression"), std::string::npos) << r.error;

  // A duplicate of a *committed* seq is also a regression: replaying it
  // would apply the round twice.
  WriteFileText(path, "");
  ASSERT_TRUE(journal.Open(path));
  ASSERT_TRUE(journal.AppendBatch(2, b5, engine->db().labels()));
  ASSERT_TRUE(journal.AppendCommit(2, engine->patterns(),
                                   engine->db().labels()));
  ASSERT_TRUE(journal.AppendBatch(2, b3, engine->db().labels()));
  journal.Close();
  r = ReadJournal(path, dict);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.tail_truncated);
  ASSERT_EQ(r.rounds.size(), 1u);
  EXPECT_EQ(r.rounds[0].seq, 2u);
}

TEST(JournalTest, RetryOfUncommittedSeqIsLegal) {
  TempDir dir("midas_journal_seq_retry");
  MoleculeGenerator gen(782);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);
  const std::string path = dir.path + "/j.log";

  // A crash between @B and @C followed by a retry legitimately writes the
  // same seq twice: @B 1 (torn), @B 1, @C 1. The scan must accept it.
  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(path));
  BatchUpdate batch = MakeBatch(gen, data, *engine, 3, false);
  ASSERT_TRUE(journal.AppendBatch(1, batch, engine->db().labels()));
  ASSERT_TRUE(journal.AppendBatch(1, batch, engine->db().labels()));
  ASSERT_TRUE(journal.AppendCommit(1, engine->patterns(),
                                   engine->db().labels()));
  journal.Close();

  LabelDictionary dict;
  JournalReadResult r = ReadJournal(path, dict);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.tail_truncated) << r.error;
  ASSERT_EQ(r.rounds.size(), 2u);
  EXPECT_FALSE(r.rounds[0].committed);  // the torn first attempt
  EXPECT_EQ(r.rounds[1].seq, 1u);
  EXPECT_TRUE(r.rounds[1].committed);   // the successful retry
}

// --- Engine + journal integration -------------------------------------------

TEST(JournalTest, BatchAppendFailureRefusesRound) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  TempDir dir("midas_journal_refuse");
  MoleculeGenerator gen(780);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);

  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(dir.path + "/j.log"));
  engine->SetJournal(&journal);

  size_t db_before = engine->db().size();
  uint64_t seq_before = engine->round_seq();
  BatchUpdate batch = MakeBatch(gen, data, *engine, 5, false);

  fail::Arm("journal.append.io_error");
  EXPECT_THROW(engine->ApplyUpdate(batch), std::runtime_error);
  fail::DisarmAll();

  // The engine is untouched: the WAL write happens before any mutation.
  EXPECT_EQ(engine->db().size(), db_before);
  EXPECT_EQ(engine->round_seq(), seq_before);

  // The same batch goes through once the journal works again.
  engine->ApplyUpdate(batch);
  EXPECT_EQ(engine->db().size(), db_before + 5);
  EXPECT_EQ(engine->round_seq(), seq_before + 1);
}

TEST(JournalTest, CommitAppendFailureIsCountedNotFatal) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  TempDir dir("midas_journal_commitfail");
  MoleculeGenerator gen(781);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(20);
  auto engine = MakeEngine(gen, data);

  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(dir.path + "/j.log"));
  engine->SetJournal(&journal);

  obs::MetricsRegistry reg;
  obs::ScopedMetricsRegistry scope(reg);
  fail::Arm("journal.commit.io_error");
  BatchUpdate batch = MakeBatch(gen, data, *engine, 5, false);
  engine->ApplyUpdate(batch);  // must not throw: in-memory round is valid
  fail::DisarmAll();

  EXPECT_EQ(engine->round_seq(), 1u);
  EXPECT_EQ(reg.GetCounter("midas_journal_commit_failures_total")->Value(),
            1u);
}

// --- Crash-recovery matrix ---------------------------------------------------

// Kill the engine at every phase boundary of ApplyUpdate; recovery must
// come back to exactly the last committed round each time.
TEST(CrashRecoveryTest, AbortAtEveryPhaseRecoversLastCommittedRound) {
  if (!fail::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  const char* kSites[] = {
      "midas.apply_update.after_apply",    "midas.apply_update.after_fct",
      "midas.apply_update.after_cluster",  "midas.apply_update.after_csg",
      "midas.apply_update.after_index",    "midas.apply_update.after_refresh",
      "midas.apply_update.after_candidates", "midas.apply_update.after_swap",
  };

  for (const char* site : kSites) {
    SCOPED_TRACE(site);
    TempDir edir("midas_crash_matrix");
    MoleculeGenerator gen(900);
    MoleculeGenConfig data = MoleculeGenerator::EmolLike(25);
    auto engine = MakeEngine(gen, data);

    UpdateJournal journal;
    ASSERT_TRUE(journal.Open(edir.path + "/journal.log"));
    engine->SetJournal(&journal);

    std::string error;
    ASSERT_TRUE(SaveCheckpoint(*engine, edir.path, &error)) << error;

    // Round 1 commits normally; it is the state recovery must reproduce.
    BatchUpdate d1 = MakeBatch(gen, data, *engine, 8, true);
    engine->ApplyUpdate(d1);
    size_t committed_db_size = engine->db().size();
    PatternSet committed_panel = engine->patterns();

    // Round 2 is killed at `site`. It must be a *major* round (novel
    // additions): the candidate/swap failpoints sit in the major-only
    // branch of Algorithm 1.
    BatchUpdate d2 = MakeBatch(gen, data, *engine, 10, true);
    fail::Arm(site);
    EXPECT_THROW(engine->ApplyUpdate(d2), fail::FailpointAbort);
    fail::DisarmAll();
    journal.Close();

    obs::MetricsRegistry reg;
    obs::ScopedMetricsRegistry scope(reg);
    RecoverInfo info;
    std::unique_ptr<MidasEngine> recovered =
        RecoverEngine(edir.path, &info);
    ASSERT_NE(recovered, nullptr) << info.error;
    EXPECT_EQ(info.replayed, 1u);         // round 1
    EXPECT_EQ(info.dropped_inflight, 1u); // round 2's batch record
    EXPECT_EQ(recovered->round_seq(), 1u);
    EXPECT_EQ(recovered->db().size(), committed_db_size);
    ExpectSamePanel(committed_panel, engine->labels(), recovered->patterns(),
                    recovered->labels());
    EXPECT_EQ(reg.GetCounter("midas_recovery_replayed_batches")->Value(),
              1u);
    EXPECT_EQ(
        reg.GetCounter("midas_recovery_dropped_inflight_total")->Value(),
        1u);

    // The recovered engine keeps working.
    BatchUpdate d3 = MakeBatch(gen, data, *recovered, 3, false);
    recovered->ApplyUpdate(d3);
    EXPECT_EQ(recovered->db().size(), committed_db_size + 3);
  }
}

TEST(CrashRecoveryTest, RecoveryWithoutCrashIsIdempotent) {
  TempDir edir("midas_recover_clean");
  MoleculeGenerator gen(901);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(25);
  auto engine = MakeEngine(gen, data);

  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(edir.path + "/journal.log"));
  engine->SetJournal(&journal);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(*engine, edir.path, &error)) << error;

  BatchUpdate d1 = MakeBatch(gen, data, *engine, 8, true);
  engine->ApplyUpdate(d1);
  BatchUpdate d2 = MakeBatch(gen, data, *engine, 4, false);
  engine->ApplyUpdate(d2);
  journal.Close();

  RecoverInfo info;
  auto recovered = RecoverEngine(edir.path, &info);
  ASSERT_NE(recovered, nullptr) << info.error;
  EXPECT_EQ(info.replayed, 2u);
  EXPECT_EQ(info.dropped_inflight, 0u);
  EXPECT_FALSE(info.tail_truncated);
  EXPECT_EQ(recovered->round_seq(), 2u);
  EXPECT_EQ(recovered->db().size(), engine->db().size());
  ExpectSamePanel(engine->patterns(), engine->labels(),
                  recovered->patterns(), recovered->labels());
}

TEST(CrashRecoveryTest, CheckpointResetsJournal) {
  TempDir edir("midas_checkpoint_reset");
  MoleculeGenerator gen(902);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(25);
  auto engine = MakeEngine(gen, data);

  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(edir.path + "/journal.log"));
  engine->SetJournal(&journal);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(*engine, edir.path, &error)) << error;

  BatchUpdate d1 = MakeBatch(gen, data, *engine, 8, true);
  engine->ApplyUpdate(d1);
  EXPECT_GT(fs::file_size(edir.path + "/journal.log"), 0u);

  // Checkpoint: snapshot absorbs the journaled round, journal truncates.
  ASSERT_TRUE(SaveCheckpoint(*engine, edir.path, &error)) << error;
  EXPECT_EQ(fs::file_size(edir.path + "/journal.log"), 0u);
  journal.Close();

  RecoverInfo info;
  auto recovered = RecoverEngine(edir.path, &info);
  ASSERT_NE(recovered, nullptr) << info.error;
  EXPECT_EQ(info.replayed, 0u);  // nothing left to replay
  EXPECT_EQ(recovered->round_seq(), 1u);
  EXPECT_EQ(recovered->db().size(), engine->db().size());
}

TEST(CrashRecoveryTest, TornJournalTailSurfacesInRecoverInfo) {
  TempDir edir("midas_recover_torn");
  MoleculeGenerator gen(903);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(25);
  auto engine = MakeEngine(gen, data);

  UpdateJournal journal;
  ASSERT_TRUE(journal.Open(edir.path + "/journal.log"));
  engine->SetJournal(&journal);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(*engine, edir.path, &error)) << error;
  BatchUpdate d1 = MakeBatch(gen, data, *engine, 8, true);
  engine->ApplyUpdate(d1);
  journal.Close();

  // Tear the tail (the commit record of round 1): the round degrades to
  // in-flight and is dropped.
  const std::string jpath = edir.path + "/journal.log";
  std::string text = ReadFileText(jpath);
  WriteFileText(jpath, text.substr(0, text.size() - 6));

  RecoverInfo info;
  auto recovered = RecoverEngine(edir.path, &info);
  ASSERT_NE(recovered, nullptr) << info.error;
  EXPECT_TRUE(info.tail_truncated);
  EXPECT_EQ(info.replayed, 0u);
  EXPECT_EQ(info.dropped_inflight, 1u);
  EXPECT_EQ(recovered->round_seq(), 0u);  // back to the checkpoint
}

TEST(CrashRecoveryTest, MissingSnapshotFileFailsWithDiagnostic) {
  TempDir edir("midas_recover_missing");
  MoleculeGenerator gen(904);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(25);
  auto engine = MakeEngine(gen, data);
  std::string error;
  ASSERT_TRUE(SaveCheckpoint(*engine, edir.path, &error)) << error;

  fs::remove(edir.path + "/snapshot/patterns.gspan");

  RecoverInfo info;
  EXPECT_EQ(RecoverEngine(edir.path, &info), nullptr);
  EXPECT_NE(info.error.find("patterns.gspan"), std::string::npos)
      << info.error;
}

}  // namespace
}  // namespace midas
