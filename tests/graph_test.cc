#include "midas/graph/graph.h"

#include <gtest/gtest.h>

#include "midas/graph/graph_database.h"
#include "test_util.h"

namespace midas {
namespace {

using testing_util::MakeGraph;

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary d;
  Label c1 = d.Intern("C");
  Label o = d.Intern("O");
  Label c2 = d.Intern("C");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, o);
  EXPECT_EQ(d.size(), 2u);
}

TEST(LabelDictionaryTest, NameRoundTrips) {
  LabelDictionary d;
  Label c = d.Intern("C");
  EXPECT_EQ(d.Name(c), "C");
  EXPECT_EQ(d.Lookup("C"), static_cast<int>(c));
  EXPECT_EQ(d.Lookup("Zz"), -1);
  EXPECT_EQ(d.Name(999), "?999");
}

TEST(GraphTest, AddVertexAndEdge) {
  Graph g;
  VertexId a = g.AddVertex(0);
  VertexId b = g.AddVertex(1);
  EXPECT_TRUE(g.AddEdge(a, b));
  EXPECT_EQ(g.NumVertices(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(a, b));
  EXPECT_TRUE(g.HasEdge(b, a));
}

TEST(GraphTest, RejectsSelfLoopsAndDuplicates) {
  Graph g;
  VertexId a = g.AddVertex(0);
  VertexId b = g.AddVertex(0);
  EXPECT_FALSE(g.AddEdge(a, a));
  EXPECT_TRUE(g.AddEdge(a, b));
  EXPECT_FALSE(g.AddEdge(a, b));
  EXPECT_FALSE(g.AddEdge(b, a));
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, RejectsOutOfRangeEndpoints) {
  Graph g;
  g.AddVertex(0);
  EXPECT_FALSE(g.AddEdge(0, 5));
  EXPECT_FALSE(g.HasEdge(0, 5));
}

TEST(GraphTest, RemoveEdge) {
  Graph g;
  VertexId a = g.AddVertex(0);
  VertexId b = g.AddVertex(1);
  g.AddEdge(a, b);
  EXPECT_TRUE(g.RemoveEdge(b, a));
  EXPECT_FALSE(g.HasEdge(a, b));
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_FALSE(g.RemoveEdge(a, b));
}

TEST(GraphTest, SizeIsEdgeCount) {
  LabelDictionary d;
  Graph g = MakeGraph(d, {"C", "O", "C"}, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.Size(), 2u);  // paper: |G| = |E|
}

TEST(GraphTest, EdgesAreSortedAndUndirected) {
  LabelDictionary d;
  Graph g = MakeGraph(d, {"C", "O", "C"}, {{1, 2}, {0, 1}});
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(VertexId{0}, VertexId{1}));
  EXPECT_EQ(edges[1], std::make_pair(VertexId{1}, VertexId{2}));
}

TEST(GraphTest, EdgeLabelIsCanonical) {
  LabelDictionary d;
  Graph g = MakeGraph(d, {"O", "C"}, {{0, 1}});
  EdgeLabelPair lp = g.EdgeLabel(0, 1);
  EdgeLabelPair lp2 = g.EdgeLabel(1, 0);
  EXPECT_EQ(lp, lp2);
  EXPECT_LE(lp.first, lp.second);
}

TEST(GraphTest, DistinctEdgeLabels) {
  LabelDictionary d;
  Graph g = MakeGraph(d, {"C", "O", "C"}, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.DistinctEdgeLabels().size(), 1u);  // both edges are C-O
}

TEST(GraphTest, Connectivity) {
  LabelDictionary d;
  Graph connected = MakeGraph(d, {"C", "C", "C"}, {{0, 1}, {1, 2}});
  EXPECT_TRUE(connected.IsConnected());
  Graph disconnected = MakeGraph(d, {"C", "C", "C"}, {{0, 1}});
  EXPECT_FALSE(disconnected.IsConnected());
  Graph empty;
  EXPECT_TRUE(empty.IsConnected());
}

TEST(GraphTest, TreePredicate) {
  LabelDictionary d;
  EXPECT_TRUE(MakeGraph(d, {"C", "O", "C"}, {{0, 1}, {1, 2}}).IsTree());
  EXPECT_FALSE(
      MakeGraph(d, {"C", "O", "C"}, {{0, 1}, {1, 2}, {0, 2}}).IsTree());
  EXPECT_FALSE(MakeGraph(d, {"C", "O", "C"}, {{0, 1}}).IsTree());
}

TEST(GraphTest, DensityAndCognitiveLoad) {
  LabelDictionary d;
  Graph triangle = MakeGraph(d, {"C", "C", "C"}, {{0, 1}, {1, 2}, {0, 2}});
  EXPECT_DOUBLE_EQ(triangle.Density(), 1.0);
  EXPECT_DOUBLE_EQ(triangle.CognitiveLoad(), 3.0);  // |E| * rho = 3 * 1

  Graph path = MakeGraph(d, {"C", "C", "C"}, {{0, 1}, {1, 2}});
  EXPECT_DOUBLE_EQ(path.Density(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(path.CognitiveLoad(), 2.0 * 2.0 / 3.0);
}

TEST(GraphTest, InducedSubgraph) {
  LabelDictionary d;
  Graph g = MakeGraph(d, {"C", "O", "C", "S"},
                      {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  Graph sub = g.InducedSubgraph({0, 1, 2});
  EXPECT_EQ(sub.NumVertices(), 3u);
  EXPECT_EQ(sub.NumEdges(), 2u);
  EXPECT_EQ(sub.label(0), g.label(0));
}

TEST(GraphTest, PermutedPreservesStructure) {
  LabelDictionary d;
  Rng rng(17);
  Graph g = testing_util::RandomGraph(d, rng, 8, 3);
  auto perm = testing_util::RandomPermutation(8, rng);
  Graph p = g.Permuted(perm);
  EXPECT_EQ(p.NumVertices(), g.NumVertices());
  EXPECT_EQ(p.NumEdges(), g.NumEdges());
  for (const auto& [u, v] : g.Edges()) {
    EXPECT_TRUE(p.HasEdge(perm[u], perm[v]));
    EXPECT_EQ(p.label(perm[u]), g.label(u));
  }
}

TEST(GraphDatabaseTest, InsertAssignsUniqueIds) {
  GraphDatabase db;
  GraphId a = db.Insert(Graph());
  GraphId b = db.Insert(Graph());
  EXPECT_NE(a, b);
  EXPECT_EQ(db.size(), 2u);
}

TEST(GraphDatabaseTest, RemoveLeavesHole) {
  GraphDatabase db;
  GraphId a = db.Insert(Graph());
  GraphId b = db.Insert(Graph());
  EXPECT_TRUE(db.Remove(a));
  EXPECT_FALSE(db.Remove(a));
  EXPECT_FALSE(db.Contains(a));
  EXPECT_TRUE(db.Contains(b));
  GraphId c = db.Insert(Graph());
  EXPECT_NE(c, a);  // ids are never reused
}

TEST(GraphDatabaseTest, ApplyBatch) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  size_t before = db.size();
  BatchUpdate delta;
  delta.insertions.push_back(Graph());
  delta.deletions.push_back(0);
  auto added = db.ApplyBatch(delta);
  ASSERT_EQ(added.size(), 1u);
  EXPECT_EQ(db.size(), before);  // one in, one out
  EXPECT_FALSE(db.Contains(0));
  EXPECT_TRUE(db.Contains(added[0]));
}

TEST(GraphDatabaseTest, Stats) {
  GraphDatabase db = testing_util::MakeToyDatabase();
  EXPECT_GT(db.TotalEdges(), 0u);
  EXPECT_GE(db.MaxGraphEdges(), 4u);
  EXPECT_EQ(db.Ids().size(), db.size());
}

}  // namespace
}  // namespace midas
