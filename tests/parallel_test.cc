#include "midas/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "midas/common/budget.h"
#include "midas/obs/metrics.h"
#include "midas/obs/profile.h"
#include "midas/obs/trace.h"

namespace midas {
namespace {

TEST(SplitSeedTest, DeterministicAndWellSpread) {
  EXPECT_EQ(SplitSeed(42, 7), SplitSeed(42, 7));
  EXPECT_NE(SplitSeed(42, 7), SplitSeed(42, 8));
  EXPECT_NE(SplitSeed(42, 7), SplitSeed(43, 7));
  // No collisions over a modest index range (splitmix64 is a bijection of
  // its 64-bit input, so collisions here would indicate a mixing bug).
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 4096; ++i) seen.insert(SplitSeed(5, i));
  EXPECT_EQ(seen.size(), 4096u);
}

TEST(TaskPoolTest, SerialPoolSpawnsNothing) {
  TaskPool pool(1);
  EXPECT_TRUE(pool.serial());
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TaskPoolTest, ZeroAndNegativeThreadsAreSerial) {
  EXPECT_TRUE(TaskPool(0).serial());
  EXPECT_TRUE(TaskPool(-3).serial());
}

TEST(TaskPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  TaskPool pool(4);
  EXPECT_FALSE(pool.serial());
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  EXPECT_GE(pool.tasks_executed(), 1u);
}

TEST(TaskPoolTest, ParallelMapIsIndexOrdered) {
  TaskPool pool(4);
  std::vector<int> out = pool.ParallelMap<int>(
      257, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(TaskPoolTest, EmptyRangeIsANoOp) {
  TaskPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(TaskPoolTest, FirstExceptionIsRethrownAfterQuiesce) {
  TaskPool pool(4);
  auto run = [&] {
    pool.ParallelFor(200, [&](size_t i) {
      if (i == 37) throw std::runtime_error("boom");
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // The pool must be fully usable after an exceptional batch.
  std::atomic<size_t> count{0};
  pool.ParallelFor(100, [&](size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(TaskPoolTest, ExhaustedBudgetSkipsRemainingWork) {
  TaskPool pool(4);
  ExecBudget budget = ExecBudget::StepLimit(1);
  budget.Charge(8);  // trips the latch
  ASSERT_TRUE(budget.exhausted());
  std::atomic<size_t> count{0};
  pool.ParallelFor(
      1000,
      [&](size_t) { count.fetch_add(1, std::memory_order_relaxed); },
      &budget);
  EXPECT_EQ(count.load(), 0u);
}

TEST(TaskPoolTest, MidBatchExhaustionCancelsCooperatively) {
  TaskPool pool(4);
  ExecBudget budget = ExecBudget::StepLimit(1u << 30);
  std::atomic<size_t> count{0};
  pool.ParallelFor(
      10000,
      [&](size_t) {
        if (count.fetch_add(1, std::memory_order_relaxed) == 50) {
          // Burn the whole budget from inside a task; every later index's
          // pre-check sees the latched exhaustion and is skipped.
          budget.Charge(1u << 31);
        }
      },
      &budget);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_LT(count.load(), 10000u);
}

TEST(TaskPoolTest, NestedParallelForRunsInlineOnWorkers) {
  TaskPool pool(4);
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor(kOuter, [&](size_t o) {
    ParallelFor(&pool, kInner, [&](size_t i) {
      hits[o * kInner + i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(TaskPoolTest, OnWorkerThreadIsTrueOnlyInsidePoolTasks) {
  EXPECT_FALSE(TaskPool::OnWorkerThread());
  TaskPool pool(4);
  std::atomic<int> on_worker{0};
  std::atomic<int> off_worker{0};
  pool.ParallelFor(64, [&](size_t) {
    if (TaskPool::OnWorkerThread()) {
      on_worker.fetch_add(1, std::memory_order_relaxed);
    } else {
      off_worker.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // The caller participates too, so both populations can be non-empty, but
  // spawned workers must self-identify (64 indices across 3 workers +
  // caller makes an all-caller run virtually impossible only in theory —
  // so just assert totals and that the flag is consistent outside).
  EXPECT_EQ(on_worker.load() + off_worker.load(), 64);
  EXPECT_FALSE(TaskPool::OnWorkerThread());
}

TEST(TaskPoolTest, FreeHelperToleratesNullPool) {
  std::vector<int> order;
  ParallelFor(nullptr, 4, [&](size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(TaskPoolTest, FreeHelperChecksBudgetInSerialPath) {
  ExecBudget budget = ExecBudget::StepLimit(1);
  budget.Charge(8);
  size_t count = 0;
  ParallelFor(nullptr, 100, [&](size_t) { ++count; }, &budget);
  EXPECT_EQ(count, 0u);
}

TEST(TaskPoolTest, ExportsPoolMetricsToCurrentRegistry) {
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(registry);
  TaskPool pool(4);
  pool.ParallelFor(512, [](size_t) {});
  EXPECT_GT(registry.GetCounter("midas_parallel_tasks_total")->Value(), 0u);
  // Queue depth is a point-in-time gauge; after the batch it must be back
  // to zero (all chunks drained).
  EXPECT_EQ(registry.GetGauge("midas_parallel_queue_depth")->Value(), 0.0);
}

// Satellite: spans opened inside pool tasks must fold under the span that
// was live on the submitting thread, not appear as orphan roots.
TEST(TaskPoolTest, WorkerSpansInheritSubmitterPath) {
  obs::SpanProfiler profiler;
  profiler.set_enabled(true);
  obs::ScopedSpanProfiler scope(profiler);
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry metrics_scope(registry);

  TaskPool pool(4);
  {
    obs::TraceSpan outer("outer");
    pool.ParallelFor(32, [](size_t) { obs::TraceSpan task("task"); });
  }

  uint64_t nested = 0;
  bool orphan_task = false;
  for (const auto& [path, stats] : profiler.Snapshot()) {
    if (path == "outer;task") nested = stats.count;
    if (path == "task") orphan_task = true;
  }
  EXPECT_EQ(nested, 32u);
  EXPECT_FALSE(orphan_task);
}

TEST(TaskPoolTest, ParallelMapSkipsBudgetExhaustedIndices) {
  TaskPool pool(2);
  ExecBudget budget = ExecBudget::StepLimit(1);
  budget.Charge(8);
  std::vector<int> out =
      pool.ParallelMap<int>(10, [](size_t) { return 7; }, &budget);
  for (int v : out) EXPECT_EQ(v, 0);  // default-constructed slots
}

}  // namespace
}  // namespace midas
