// The serving host end to end: one writer thread maintains the panel while
// concurrent reader threads render it from lock-free snapshots — the
// deployment shape a visual graph query interface actually runs.
//
// A producer streams mixed insert/delete batches through admission control;
// readers poll the current PanelSnapshot and print its round, size and age
// (staleness). With failpoints armed (MIDAS_FAILPOINTS in the environment,
// e.g. "serve.round.before_apply:6:3") the demo also shows the robustness
// loop: retry with backoff, in-process recovery, and poison-batch
// quarantine — while the readers keep serving throughout.
//
//   $ ./serve_demo
//   $ MIDAS_FAILPOINTS="serve.round.before_apply:6:3" ./serve_demo
//
// With --telemetry_port=P (0 = ephemeral) the host serves its live
// introspection endpoints on 127.0.0.1:P while the demo runs; the demo
// prints ready-made curl one-liners on startup. --linger_ms=N keeps the
// process (and the telemetry server) alive for N ms after the stream
// drains, so an external scraper — e.g. the CI smoke job — has a window
// to hit the endpoints. --threads=N sizes the engine's maintenance task
// pool (0 = hardware concurrency; default keeps the engine's own config).

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "midas/common/failpoint.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/obs/event_log.h"
#include "midas/obs/lineage.h"
#include "midas/serve/engine_host.h"
#include "midas/serve/quarantine.h"

namespace {

// --name=value (integer) flag; leaves *out untouched when absent.
void ParseIntFlag(int argc, char** argv, const char* name, int* out) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      *out = std::atoi(arg.c_str() + prefix.size());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace midas;
  using serve::EngineHost;
  using serve::PanelSnapshotPtr;

  int telemetry_port = -1;  // -1 off, 0 ephemeral
  int linger_ms = 0;
  int threads = -1;  // -1 keep engine default, 0 = hardware concurrency
  ParseIntFlag(argc, argv, "telemetry_port", &telemetry_port);
  ParseIntFlag(argc, argv, "linger_ms", &linger_ms);
  ParseIntFlag(argc, argv, "threads", &threads);

  MoleculeGenerator gen(4242);
  MoleculeGenConfig data = MoleculeGenerator::EmolLike(60);

  MidasConfig cfg;
  cfg.budget = {3, 8, 14};
  cfg.fct.sup_min = 0.5;
  cfg.epsilon = 0.0;   // accept any strict improvement — keeps swaps flowing
  cfg.round_deadline_ms = 50.0;  // per-round latency SLO
  auto engine = std::make_unique<MidasEngine>(gen.Generate(data), cfg);

  serve::HostConfig host_cfg;
  host_cfg.queue_capacity = 4;
  host_cfg.overflow = serve::OverflowPolicy::kBlock;
  host_cfg.max_attempts = 3;
  host_cfg.telemetry_port = telemetry_port;
  host_cfg.num_threads = threads;  // --threads: maintenance parallelism

  obs::MaintenanceEventLog event_log;
  EngineHost host(std::move(engine), "serve_demo_state", host_cfg);
  host.SetEventLog(&event_log);
  std::string err;
  if (!host.Start(&err)) {
    std::cerr << "host failed to start: " << err << "\n";
    return 1;
  }
  if (host.telemetry_port() >= 0) {
    const std::string base =
        "http://127.0.0.1:" + std::to_string(host.telemetry_port());
    std::cout << "telemetry on " << base << " — try:\n"
              << "  curl -s " << base << "/healthz\n"
              << "  curl -s " << base << "/metrics | grep midas_quality\n"
              << "  curl -s " << base << "/statusz\n"
              << "  curl -s " << base << "/traces\n"
              << "  curl -s '" << base << "/spans?fmt=folded'\n"
              << "  curl -s " << base << "/patternz\n"
              << "  curl -s " << base << "/lineage/<id>   # ids from /patternz\n"
              << "  curl -s '" << base << "/historyz?metric=midas_serve_queue_depth'\n"
              << "  curl -s " << base << "/alertz\n"
              << "  curl -s " << base << "/varz\n";
    std::cout.flush();  // scrapers parse the port from redirected stdout
  }
  fail::LoadFromEnv();  // arm MIDAS_FAILPOINTS chaos, if any

  std::mutex print_mu;
  std::atomic<bool> stop{false};

  // Readers: what a GUI render loop does — grab the current snapshot
  // (lock-free), draw it, repeat. Age shows staleness, never emptiness.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&host, &stop, &print_mu, r] {
      uint64_t last_seq = ~0ull;
      uint64_t last_printed = ~0ull;
      while (!stop.load(std::memory_order_acquire)) {
        PanelSnapshotPtr snap = host.snapshot();
        if (snap != nullptr && snap->round_seq != last_seq) {
          last_seq = snap->round_seq;
          std::ostringstream line;
          line << "  reader" << r << ": round " << snap->round_seq << ", |D|="
               << snap->db_size << ", |P|=" << snap->patterns.size()
               << ", age=" << std::fixed << std::setprecision(1)
               << snap->AgeMs() << "ms\n";
          // One reader narrates the swap decisions from the snapshot's
          // ledger copy — same data /lineage/<id> serves. Snapshots can
          // skip rounds under load, so cover every round since the last
          // one this reader saw.
          if (r == 0 && snap->lineage != nullptr) {
            uint64_t from = last_printed == ~0ull ? snap->round_seq
                                                  : last_printed + 1;
            for (uint64_t seq = from; seq <= snap->round_seq; ++seq) {
              for (const obs::LineageEvent& e :
                   snap->lineage->SwapInsAt(seq)) {
                line << "    swap@" << seq << ": pattern " << e.pattern
                     << " displaced "
                     << (e.has_other ? std::to_string(e.other)
                                     : std::string("?"))
                     << " (margin " << std::setprecision(3)
                     << e.rationale.margin << ", dominant "
                     << e.rationale.dominant_term << ")\n";
              }
            }
            last_printed = snap->round_seq;
          }
          std::lock_guard<std::mutex> lock(print_mu);
          std::cout << line.str();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  // Producer: 12 batches through admission control. Labels ride with a
  // producer-private dictionary copied from the snapshot, so novel labels
  // never touch the engine's dictionary across threads.
  GraphDatabase scratch = GraphDatabase();
  for (int day = 1; day <= 12; ++day) {
    PanelSnapshotPtr snap = host.snapshot();
    GraphDatabase copy;
    copy.labels() = *snap->labels;
    // Novel structure every other day keeps the panel contested enough
    // for the ledger narration above to have swaps to explain.
    BatchUpdate delta = gen.GenerateAdditions(copy, data, 8, day % 2 == 0);
    if (day % 4 == 0 && !snap->live_ids->empty()) {
      delta.deletions.push_back(snap->live_ids->at(
          static_cast<size_t>(day) % snap->live_ids->size()));
    }
    serve::SubmitResult r = host.Submit(std::move(delta), copy.labels());
    if (!r.accepted()) {
      const char* why = "overflow";
      switch (r.status) {
        case serve::SubmitStatus::kRejectedValidation:
          why = "validation";
          break;
        case serve::SubmitStatus::kRejectedTimeout:
          why = "submit timeout";
          break;
        case serve::SubmitStatus::kShedOverload:
          why = "shed";
          break;
        default:
          break;
      }
      std::lock_guard<std::mutex> lock(print_mu);
      std::cout << "batch " << day << " rejected (" << why;
      if (!r.shed_reason.empty()) std::cout << ": " << r.shed_reason;
      if (r.retry_after_ms > 0.0) {
        std::cout << ", retry after " << r.retry_after_ms << " ms";
      }
      std::cout << ")\n";
    }
  }

  host.WaitIdle(std::chrono::milliseconds(120000));

  // Post-drain triage: every batch that blew the round SLO (or degraded,
  // retried, got quarantined...) is one curl away via its trace id.
  for (const auto& flight : host.flights().Snapshot()) {
    if (!obs::FlightRecorder::Interesting(*flight)) continue;
    std::lock_guard<std::mutex> lock(print_mu);
    std::cout << "flagged flight: trace " << flight->trace_id << " ("
              << flight->outcome << (flight->slo_violation ? ", slo" : "")
              << (flight->truncated ? ", truncated" : "") << ", "
              << std::fixed << std::setprecision(1) << flight->total_ms
              << "ms)";
    if (host.telemetry_port() >= 0) {
      std::cout << "  curl -s http://127.0.0.1:"
                << std::to_string(host.telemetry_port()) << "/traces/"
                << flight->trace_id;
    }
    std::cout << "\n";
  }

  if (linger_ms > 0) {
    std::cout << "lingering " << linger_ms
              << "ms for external scrapers...\n";
    std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  host.Stop();

  serve::HostStats s = host.stats();
  std::cout << "\nhost: " << s.admitted << " admitted, " << s.rounds_ok
            << " rounds ok, " << s.retries << " retries, " << s.recoveries
            << " recoveries, " << s.quarantined << " quarantined\n";
  for (const std::string& f :
       serve::ListQuarantineFiles(host.quarantine_dir())) {
    std::cout << "quarantined batch for later triage: " << f << "\n";
  }
  return 0;
}
