// midas_cli — a file-based command-line driver around the library, the way
// a deployment would wire MIDAS into an existing GUI backend.
//
//   midas_cli generate <out.db> <count> [aids|pubchem|emol] [seed]
//   midas_cli select   <db> <patterns.out> [gamma]
//   midas_cli maintain <db> <delta.db> <patterns.in> <patterns.out>
//   midas_cli report   <db> <patterns>
//   midas_cli stats    <db>
//   midas_cli snapshot <db> <patterns> <dir>   (persist engine state)
//   midas_cli restore  <dir> <patterns.out>    (resume from a snapshot)
//
// Databases and pattern sets are plain gSpan-format text files, so real
// datasets (AIDS, PubChem exports) drop in without code changes.

#include <fstream>
#include <iostream>
#include <string>

#include "midas/datagen/molecule_gen.h"
#include "midas/datagen/workload.h"
#include "midas/graph/graph_io.h"
#include "midas/graph/graph_statistics.h"
#include "midas/maintain/midas.h"
#include "midas/queryform/formulation.h"
#include "midas/maintain/snapshot.h"
#include "midas/select/pattern_io.h"

namespace {

using namespace midas;

int Usage() {
  std::cerr
      << "usage:\n"
      << "  midas_cli generate <out.db> <count> [aids|pubchem|emol] [seed]\n"
      << "  midas_cli select   <db> <patterns.out> [gamma]\n"
      << "  midas_cli maintain <db> <delta.db> <patterns.in> <patterns.out>\n"
      << "  midas_cli report   <db> <patterns>\n"
      << "  midas_cli stats    <db>\n"
      << "  midas_cli snapshot <db> <patterns> <dir>\n"
      << "  midas_cli restore  <dir> <patterns.out>\n";
  return 2;
}

bool LoadDb(const std::string& path, GraphDatabase* db) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  if (!ReadDatabase(in, db)) {
    std::cerr << "malformed database file " << path << "\n";
    return false;
  }
  return true;
}

MidasConfig CliConfig(size_t gamma) {
  MidasConfig cfg;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 10;
  cfg.budget.gamma = gamma;
  cfg.fct.sup_min = 0.5;
  cfg.epsilon = 0.005;
  cfg.sample_cap = 300;
  cfg.seed = 12345;
  return cfg;
}

int Generate(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string out_path = argv[2];
  size_t count = static_cast<size_t>(std::stoul(argv[3]));
  std::string preset = argc > 4 ? argv[4] : "pubchem";
  uint64_t seed = argc > 5 ? std::stoull(argv[5]) : 1;

  MoleculeGenerator gen(seed);
  MoleculeGenConfig cfg = preset == "aids" ? MoleculeGenerator::AidsLike(count)
                          : preset == "emol"
                              ? MoleculeGenerator::EmolLike(count)
                              : MoleculeGenerator::PubchemLike(count);
  GraphDatabase db = gen.Generate(cfg);
  std::ofstream out(out_path);
  WriteDatabase(db, out);
  std::cout << "wrote " << db.size() << " graphs to " << out_path << "\n";
  return 0;
}

int Select(int argc, char** argv) {
  if (argc < 4) return Usage();
  GraphDatabase db;
  if (!LoadDb(argv[2], &db)) return 1;
  size_t gamma = argc > 4 ? std::stoul(argv[4]) : 16;

  MidasEngine engine(std::move(db), CliConfig(gamma));
  engine.Initialize();
  std::ofstream out(argv[3]);
  WritePatternSet(engine.patterns(), engine.db().labels(), out);
  std::cout << "selected " << engine.patterns().size() << " patterns -> "
            << argv[3] << "\n";
  return 0;
}

int Maintain(int argc, char** argv) {
  if (argc < 6) return Usage();
  GraphDatabase db;
  if (!LoadDb(argv[2], &db)) return 1;
  GraphDatabase delta_db;
  if (!LoadDb(argv[3], &delta_db)) return 1;

  MidasEngine engine(std::move(db), CliConfig(16));
  engine.Initialize();

  // Restore the panel from disk.
  {
    std::ifstream in(argv[4]);
    if (!in) {
      std::cerr << "cannot open " << argv[4] << "\n";
      return 1;
    }
    PatternSet panel;
    if (!ReadPatternSet(in, engine.labels(), &panel)) {
      std::cerr << "malformed pattern file " << argv[4] << "\n";
      return 1;
    }
    engine.LoadPatterns(std::move(panel));
  }

  // The delta file's graphs are the batch insertions (labels re-mapped by
  // name into the engine's dictionary).
  BatchUpdate delta;
  for (const auto& [id, g] : delta_db.graphs()) {
    delta.insertions.push_back(
        RemapLabels(g, delta_db.labels(), engine.labels()));
  }

  MaintenanceStats stats = engine.ApplyUpdate(delta);
  std::cout << "applied +" << delta.insertions.size() << " graphs: "
            << (stats.major ? "major" : "minor") << " modification, "
            << stats.swaps << " swaps, PMT " << stats.total_ms << " ms\n";

  std::ofstream out(argv[5]);
  WritePatternSet(engine.patterns(), engine.db().labels(), out);
  std::cout << "maintained panel -> " << argv[5] << "\n";
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 3) return Usage();
  GraphDatabase db;
  if (!LoadDb(argv[2], &db)) return 1;
  PrintStatistics(ComputeStatistics(db), std::cout);
  return 0;
}

int Report(int argc, char** argv) {
  if (argc < 4) return Usage();
  GraphDatabase db;
  if (!LoadDb(argv[2], &db)) return 1;

  PatternSet panel;
  {
    std::ifstream in(argv[3]);
    if (!in) {
      std::cerr << "cannot open " << argv[3] << "\n";
      return 1;
    }
    if (!ReadPatternSet(in, db.labels(), &panel)) {
      std::cerr << "malformed pattern file " << argv[3] << "\n";
      return 1;
    }
  }

  FctSet fcts = FctSet::Mine(db, {0.5, 3, 20000});
  Rng rng(9);
  CoverageEvaluator eval(db, 300, rng);
  for (auto& [pid, p] : panel.patterns()) {
    RefreshPatternMetrics(p, eval, fcts);
  }
  RefreshDiversityAndScores(panel, GedFeatureTrees(fcts));

  QueryGenConfig qcfg;
  qcfg.count = 100;
  qcfg.min_edges = 4;
  qcfg.max_edges = 16;
  std::vector<Graph> queries = GenerateQueries(db, qcfg, rng);

  PatternQuality q = EvaluateQuality(panel, eval.universe().size());
  std::cout << "patterns: " << panel.size() << "\n"
            << "f_scov: " << q.scov << "\nf_lcov: " << q.lcov
            << "\nf_div: " << q.div << "\ncog(avg/max): " << q.cog_avg << "/"
            << q.cog_max << "\n"
            << "missed %: " << MissedPercentage(queries, panel) << "\n"
            << "mean steps: " << MeanSteps(queries, panel) << "\n";
  return 0;
}

int Snapshot(int argc, char** argv) {
  if (argc < 5) return Usage();
  GraphDatabase db;
  if (!LoadDb(argv[2], &db)) return 1;
  MidasEngine engine(std::move(db), CliConfig(16));
  engine.Initialize();
  std::ifstream in(argv[3]);
  if (!in) {
    std::cerr << "cannot open " << argv[3] << "\n";
    return 1;
  }
  PatternSet panel;
  if (!ReadPatternSet(in, engine.labels(), &panel)) {
    std::cerr << "malformed pattern file " << argv[3] << "\n";
    return 1;
  }
  engine.LoadPatterns(std::move(panel));
  if (!SaveSnapshot(engine, argv[4])) {
    std::cerr << "cannot write snapshot to " << argv[4] << "\n";
    return 1;
  }
  std::cout << "snapshot -> " << argv[4] << "\n";
  return 0;
}

int Restore(int argc, char** argv) {
  if (argc < 4) return Usage();
  std::string error;
  std::unique_ptr<MidasEngine> engine = RestoreEngine(argv[2], &error);
  if (engine == nullptr) {
    std::cerr << "cannot restore from " << argv[2] << ": " << error << "\n";
    return 1;
  }
  std::ofstream out(argv[3]);
  WritePatternSet(engine->patterns(), engine->db().labels(), out);
  std::cout << "restored engine with " << engine->db().size()
            << " graphs; panel -> " << argv[3] << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "generate") return Generate(argc, argv);
  if (cmd == "select") return Select(argc, argv);
  if (cmd == "maintain") return Maintain(argc, argv);
  if (cmd == "report") return Report(argc, argv);
  if (cmd == "stats") return Stats(argc, argv);
  if (cmd == "snapshot") return Snapshot(argc, argv);
  if (cmd == "restore") return Restore(argc, argv);
  return Usage();
}
