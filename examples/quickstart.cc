// Quickstart: build a small graph database, let MIDAS select an initial
// canned pattern set, evolve the database, and watch the patterns being
// maintained.
//
//   $ ./quickstart

#include <iostream>

#include "midas/datagen/molecule_gen.h"
#include "midas/graph/graph_io.h"
#include "midas/maintain/midas.h"

int main() {
  using namespace midas;

  // 1. A synthetic molecule-like database (stand-in for PubChem/AIDS).
  MoleculeGenerator gen(/*seed=*/2024);
  MoleculeGenConfig data_cfg = MoleculeGenerator::PubchemLike(120);
  GraphDatabase db = gen.Generate(data_cfg);
  std::cout << "database: " << db.size() << " graphs, "
            << db.TotalEdges() << " edges total\n";

  // 2. Configure the framework: pattern budget b = (eta_min, eta_max, gamma),
  //    FCT support threshold, evolution ratio threshold epsilon, swapping
  //    thresholds kappa/lambda.
  MidasConfig cfg;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 8;
  cfg.budget.gamma = 12;
  cfg.fct.sup_min = 0.5;
  cfg.epsilon = 0.01;
  cfg.kappa = cfg.lambda = 0.1;
  cfg.sample_cap = 0;  // evaluate coverage on the full database
  cfg.seed = 7;

  // 3. Initialize: mines frequent closed trees, clusters the database,
  //    summarizes clusters into CSGs, builds the FCT-/IFE-indices and
  //    selects the initial canned pattern set.
  MidasEngine engine(std::move(db), cfg);
  engine.Initialize();

  std::cout << "initial pattern set (" << engine.patterns().size()
            << " patterns):\n";
  for (const auto& [pid, p] : engine.patterns().patterns()) {
    std::cout << "  pattern " << pid << ": |V|=" << p.graph.NumVertices()
              << " |E|=" << p.graph.NumEdges() << " scov=" << p.scov
              << " cog=" << p.cog << "\n";
  }
  PatternQuality q0 = engine.CurrentQuality();
  std::cout << "set quality: scov=" << q0.scov << " lcov=" << q0.lcov
            << " div=" << q0.div << " max-cog=" << q0.cog_max << "\n";

  // 4. The database evolves: a batch of graphs from a new chemical family.
  GraphDatabase scratch = engine.db();  // labels stay compatible
  BatchUpdate delta = gen.GenerateAdditions(scratch, data_cfg, 30, true);
  std::cout << "\napplying batch update: +" << delta.insertions.size()
            << " graphs (new family)\n";

  MaintenanceStats stats = engine.ApplyUpdate(delta);
  std::cout << "modification classified as "
            << (stats.major ? "MAJOR" : "minor")
            << " (graphlet distance=" << stats.graphlet_distance << ")\n"
            << "maintenance took " << stats.total_ms << " ms, "
            << stats.candidates << " candidates considered, " << stats.swaps
            << " patterns swapped\n";

  PatternQuality q1 = engine.CurrentQuality();
  std::cout << "set quality after maintenance: scov=" << q1.scov
            << " lcov=" << q1.lcov << " div=" << q1.div
            << " max-cog=" << q1.cog_max << "\n";

  // 5. Patterns render as plain text for embedding in a GUI panel.
  std::cout << "\nfirst maintained pattern:\n";
  if (!engine.patterns().patterns().empty()) {
    const CannedPattern& first = engine.patterns().patterns().begin()->second;
    std::cout << ToString(first.graph, engine.db().labels());
  }
  return 0;
}
