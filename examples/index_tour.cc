// A tour of the FCT-Index and IFE-Index: how MIDAS keeps track of frequent
// closed trees and infrequent edges, and how the dominance filter prunes
// subgraph-isomorphism work during coverage evaluation.
//
//   $ ./index_tour

#include <iostream>

#include "midas/common/timer.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/datagen/workload.h"
#include "midas/graph/canonical.h"
#include "midas/graph/subgraph_iso.h"
#include "midas/index/fct_index.h"
#include "midas/index/ife_index.h"

int main() {
  using namespace midas;

  MoleculeGenerator gen(31);
  GraphDatabase db = gen.Generate(MoleculeGenerator::PubchemLike(200));
  const LabelDictionary& labels = db.labels();

  // Mine the frequent closed tree pool.
  FctSet::Config fcfg;
  fcfg.sup_min = 0.5;
  fcfg.max_edges = 3;
  FctSet fcts = FctSet::Mine(db, fcfg);

  std::cout << "=== FCT universe ===\n";
  for (const FctEntry* e : fcts.FrequentClosedTrees()) {
    std::cout << "  " << e->canon << "  support="
              << static_cast<double>(e->occurrences.size()) /
                     static_cast<double>(db.size())
              << "\n";
  }
  std::cout << fcts.FrequentEdges().size() << " frequent edges, "
            << fcts.InfrequentEdges().size() << " infrequent edges\n";

  // Build both indices.
  FctIndex fct_index = FctIndex::Build(db, fcts);
  IfeIndex ife_index = IfeIndex::Build(db, fcts);
  std::cout << "\n=== FCT-Index ===\n"
            << "trie: " << fct_index.trie().NumNodes() << " nodes, "
            << fct_index.trie().NumEntries() << " terminals, depth "
            << fct_index.trie().MaxDepth() << "\n"
            << "TG-matrix: " << fct_index.tg_matrix().NonZeroCount()
            << " non-zeros; memory ~" << fct_index.MemoryBytes() / 1024
            << " KB\n";
  std::cout << "=== IFE-Index ===\n"
            << ife_index.NumEdges() << " infrequent edge rows, EG-matrix "
            << ife_index.eg_matrix().NonZeroCount() << " non-zeros\n";

  // Candidate filtering vs a full scan.
  Rng rng(17);
  Graph pattern = RandomConnectedSubgraph(*db.Find(5), 6, rng);
  std::cout << "\nprobe pattern: " << pattern.NumVertices() << " vertices, "
            << pattern.NumEdges() << " edges\n";

  IdSet universe(db.Ids());
  Timer filter_timer;
  IdSet candidates = fct_index.CandidateGraphs(
      fct_index.FeatureCounts(pattern), universe);
  candidates = ife_index.CandidateGraphs(ife_index.EdgeCounts(pattern),
                                         candidates);
  double filter_ms = filter_timer.ElapsedMs();

  Timer verify_timer;
  size_t covered = 0;
  for (GraphId id : candidates) {
    if (ContainsSubgraph(pattern, *db.Find(id))) ++covered;
  }
  double verify_ms = verify_timer.ElapsedMs();

  Timer scan_timer;
  size_t covered_scan = 0;
  for (const auto& [id, g] : db.graphs()) {
    if (ContainsSubgraph(pattern, g)) ++covered_scan;
  }
  double scan_ms = scan_timer.ElapsedMs();

  std::cout << "dominance filter kept " << candidates.size() << " of "
            << db.size() << " graphs (" << filter_ms << " ms) -> " << covered
            << " verified containments in " << verify_ms << " ms\n";
  std::cout << "full VF2 scan: " << covered_scan << " containments in "
            << scan_ms << " ms\n";
  std::cout << "(identical answers: "
            << (covered == covered_scan ? "yes" : "NO — bug!") << ")\n";

  // Canonical strings are the trie keys.
  std::cout << "\nexample canonical string of a mined tree: ";
  if (!fcts.FrequentClosedTrees().empty()) {
    const Graph& t = fcts.FrequentClosedTrees().front()->tree;
    std::cout << CanonicalTreeString(t) << "  (labels:";
    for (VertexId v = 0; v < t.NumVertices(); ++v) {
      std::cout << " " << labels.Name(t.label(v));
    }
    std::cout << ")\n";
  }
  return 0;
}
