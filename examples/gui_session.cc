// A visual query formulation session: shows how a GUI client consumes the
// library — render the pattern panel, plan a query formulation in
// pattern-at-a-time mode, and print the step-by-step plan against the
// edge-at-a-time baseline.
//
//   $ ./gui_session

#include <iostream>

#include "midas/datagen/molecule_gen.h"
#include "midas/datagen/workload.h"
#include "midas/graph/dot_export.h"
#include "midas/graph/graph_io.h"
#include "midas/maintain/midas.h"
#include "midas/queryform/formulation.h"

int main() {
  using namespace midas;

  MoleculeGenerator gen(7);
  MoleculeGenConfig data_cfg = MoleculeGenerator::EmolLike(80);

  MidasConfig cfg;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 6;
  cfg.budget.gamma = 9;  // a 3x3 pattern panel
  cfg.fct.sup_min = 0.5;
  cfg.sample_cap = 0;
  cfg.seed = 11;

  MidasEngine engine(gen.Generate(data_cfg), cfg);
  engine.Initialize();
  const LabelDictionary& labels = engine.db().labels();

  // --- the pattern panel --------------------------------------------------
  std::cout << "=== pattern panel (" << engine.patterns().size()
            << " canned patterns) ===\n";
  for (const auto& [pid, p] : engine.patterns().patterns()) {
    std::cout << "[p" << pid << "] " << p.graph.NumVertices() << " atoms / "
              << p.graph.NumEdges() << " bonds, covers "
              << 100.0 * p.scov << "% of the repository\n";
    std::cout << ToString(p.graph, labels);
  }

  // --- the user draws a query ---------------------------------------------
  Rng qrng(13);
  Graph query = RandomConnectedSubgraph(*engine.db().Find(3), 10, qrng);
  std::cout << "\n=== target query (" << query.NumVertices() << " atoms, "
            << query.NumEdges() << " bonds) ===\n"
            << ToString(query, labels);

  FormulationPlan plan = PlanFormulation(query, engine.patterns());
  // Patterns export straight to Graphviz for the actual panel rendering.
  if (!engine.patterns().patterns().empty()) {
    const CannedPattern& first = engine.patterns().patterns().begin()->second;
    std::cout << "\n=== DOT export of pattern p"
              << engine.patterns().patterns().begin()->first
              << " (pipe into `dot -Tsvg`) ===\n"
              << ToDot(first.graph, labels, "pattern");
  }

  std::cout << "\n=== formulation plan ===\n";
  std::cout << "pattern-at-a-time: " << plan.patterns_used
            << " pattern drag-and-drops + " << plan.vertices_added
            << " vertex insertions + " << plan.edges_added
            << " edge insertions = " << plan.steps << " steps\n";
  std::cout << "edge-at-a-time baseline: " << EdgeAtATimeSteps(query)
            << " steps\n";
  if (plan.steps < EdgeAtATimeSteps(query)) {
    double saved =
        100.0 *
        static_cast<double>(EdgeAtATimeSteps(query) - plan.steps) /
        static_cast<double>(EdgeAtATimeSteps(query));
    std::cout << "the panel saves " << saved << "% of the steps\n";
  }
  return 0;
}
