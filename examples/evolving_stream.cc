// A repository evolving over many "days": mixed insert/delete batches keep
// arriving, MIDAS maintains the panel, and the MaintenanceHistory telemetry
// shows what a deployment would chart — per-round PMT, major/minor mix,
// and swap volume — while the panel keeps serving the current workload.
// Every round is also appended to a JSONL maintenance event log
// (evolving_stream.events.jsonl), and the closing report includes the
// Prometheus metrics dump — the full observability surface in one run.
//
//   $ ./evolving_stream              # default 50ms round SLO
//   $ ./evolving_stream --slo_ms=10  # tighter deadline, more degradation
//   $ ./evolving_stream --slo_ms=0   # no deadline: rounds run to completion
//   $ ./evolving_stream --telemetry_port=0   # + live /metrics & /spans
//   $ ./evolving_stream --threads=0  # parallel maintenance (all cores)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <memory>

#include "midas/common/budget.h"
#include "midas/datagen/molecule_gen.h"
#include "midas/datagen/workload.h"
#include "midas/maintain/midas.h"
#include "midas/maintain/report.h"
#include "midas/obs/event_log.h"
#include "midas/obs/export.h"
#include "midas/obs/flight.h"
#include "midas/obs/lineage.h"
#include "midas/obs/metrics.h"
#include "midas/obs/profile.h"
#include "midas/obs/telemetry_server.h"
#include "midas/obs/trace.h"
#include "midas/queryform/formulation.h"

int main(int argc, char** argv) {
  using namespace midas;

  double slo_ms = 50.0;
  int telemetry_port = -1;  // -1 off, 0 ephemeral
  int threads = 1;          // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--slo_ms=", 9) == 0) {
      slo_ms = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--telemetry_port=", 17) == 0) {
      telemetry_port = std::atoi(argv[i] + 17);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--slo_ms=<double>] [--telemetry_port=<int>]"
                   " [--threads=<int>]\n";
      return 2;
    }
  }

  // Per-day flight records (obs/flight.h): each round runs under its own
  // TraceContext, so its cost lands on /traces and as histogram exemplars
  // even without an EngineHost in front.
  obs::FlightRecorderConfig flight_cfg;
  flight_cfg.slo_ms = slo_ms;
  obs::FlightRecorder flights(flight_cfg);

  // Standalone telemetry (no EngineHost here): /metrics + /spans over the
  // process-wide registry and span profiler, live while the stream runs.
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (telemetry_port >= 0) {
    obs::SpanProfiler::Current().set_enabled(true);
    telemetry = std::make_unique<obs::TelemetryServer>();
    telemetry->Handle("/metrics", [](const obs::HttpRequest&) {
      obs::HttpResponse resp;
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
      resp.body = obs::ExportPrometheus(obs::MetricsRegistry::Current());
      return resp;
    });
    telemetry->Handle("/spans", [](const obs::HttpRequest& req) {
      obs::HttpResponse resp;
      obs::SpanProfiler& prof = obs::SpanProfiler::Current();
      resp.body = req.QueryParam("fmt") == "folded" ? prof.ExportFolded()
                                                    : prof.ExportTopTable();
      return resp;
    });
    obs::InstallTraceRoutes(telemetry.get(), &flights);
    std::string terr;
    if (!telemetry->Start(telemetry_port, &terr)) {
      std::cerr << "telemetry server failed: " << terr << "\n";
      return 1;
    }
    std::cout << "telemetry on " << telemetry->BaseUrl() << " — try:\n"
              << "  curl -s " << telemetry->BaseUrl() << "/metrics\n"
              << "  curl -s " << telemetry->BaseUrl() << "/traces\n"
              << "  curl -s '" << telemetry->BaseUrl()
              << "/spans?fmt=folded'\n";
    std::cout.flush();  // scrapers parse the port from redirected stdout
  }

  MoleculeGenerator gen(4242);
  MoleculeGenConfig data = MoleculeGenerator::PubchemLike(150);

  MidasConfig cfg;
  cfg.budget = {3, 8, 14};
  cfg.fct.sup_min = 0.5;
  cfg.epsilon = 0.004;
  cfg.sample_cap = 0;
  cfg.seed = 17;
  // Latency SLO (--slo_ms, default 50): each maintenance round gets this
  // much wall clock. Rounds that would run longer degrade gracefully
  // (mining/GED/swap stop early, the panel stays valid) and report it via
  // stats.truncated, the midas_maintain_truncated_rounds_total metric and
  // the event log's truncated/degrade_reason fields.
  cfg.round_deadline_ms = slo_ms;
  // Maintenance parallelism (--threads, default 1 = serial reference;
  // 0 resolves to the machine's hardware concurrency). With unlimited
  // budgets the stream's outputs are identical at any thread count; under
  // an SLO more threads simply fit more work before the deadline.
  cfg.num_threads = threads;

  MidasEngine engine(gen.Generate(data), cfg);

  const char* event_path = "evolving_stream.events.jsonl";
  std::remove(event_path);  // FileSink appends; start each run fresh
  obs::MaintenanceEventLog event_log;
  event_log.set_sink(obs::FileSink(event_path));
  engine.SetEventLog(&event_log);

  engine.Initialize();
  std::cout << "day 0: " << engine.db().size() << " graphs, "
            << engine.patterns().size() << " canned patterns\n\n";
  std::cout << std::left << std::setw(5) << "day" << std::setw(8) << "|D|"
            << std::setw(8) << "delta" << std::setw(8) << "type"
            << std::setw(8) << "swaps" << std::setw(10) << "PMT(ms)"
            << std::setw(10) << "MP%" << std::setw(7) << "trunc"
            << std::setw(8) << "view" << "\n";

  Rng chaos(99);
  for (int day = 1; day <= 10; ++day) {
    // Weekday mix: mostly in-family growth; every third day a new family
    // arrives; occasional cleanup deletions.
    bool novel = day % 3 == 0;
    size_t adds = static_cast<size_t>(chaos.UniformInt(5, 25));
    GraphDatabase copy = engine.db();
    BatchUpdate delta = gen.GenerateAdditions(copy, data, adds, novel);
    if (day % 4 == 0) {
      BatchUpdate deletions = gen.GenerateDeletions(engine.db(), 5);
      delta.deletions = deletions.deletions;
    }

    // The day's batch flies under its own causal trace: phases, cache
    // lookups and worker chunks all account into it (see obs/trace.h).
    obs::TraceContext trace(obs::MintTraceId());
    MaintenanceStats stats;
    {
      obs::ScopedTraceContext scope(&trace);
      stats = engine.ApplyUpdate(delta);
    }
    auto record = std::make_shared<obs::FlightRecord>();
    record->trace_id = trace.id().ToHex();
    record->seq = engine.round_seq();
    record->additions = delta.insertions.size();
    record->deletions = delta.deletions.size();
    record->total_ms = stats.total_ms;
#define MIDAS_X(field) record->phase_ms.emplace_back(#field, stats.field);
    MIDAS_MAINTENANCE_PHASES(MIDAS_X)
#undef MIDAS_X
    record->truncated = stats.truncated;
    record->view_strategy = stats.ViewStrategy();
    record->view_delta_rows = stats.view_delta_rows;
    record->view_rescan_rows = stats.view_rescan_rows;
    record->budget_steps = trace.budget_steps();
    record->cache_hits = trace.cache_hits();
    record->cache_misses = trace.cache_misses();
    record->degrade_reason = std::string(ExecBudget::CauseName(
        static_cast<ExecBudget::Cause>(trace.degrade_cause())));
    record->slo_violation = slo_ms > 0.0 && stats.total_ms > slo_ms;
    bool slow = record->slo_violation;
    std::string slow_trace = record->trace_id;
    flights.Record(std::move(record));
    if (slow) {
      std::cout << "  slow round (>" << slo_ms << "ms): trace " << slow_trace
                << (telemetry != nullptr
                        ? "  (curl " + telemetry->BaseUrl() + "/traces/" +
                              slow_trace + ")"
                        : std::string())
                << "\n";
    }

    // Today's workload: queries biased towards recent graphs.
    QueryGenConfig qcfg;
    qcfg.count = 40;
    qcfg.min_edges = 4;
    qcfg.max_edges = 14;
    Rng qrng(1000 + day);
    std::vector<Graph> queries = GenerateQueries(engine.db(), qcfg, qrng);
    double mp = MissedPercentage(queries, engine.patterns());

    std::cout << std::left << std::setw(5) << day << std::setw(8)
              << engine.db().size() << std::setw(8)
              << ("+" + std::to_string(adds)) << std::setw(8)
              << (stats.major ? "major" : "minor") << std::setw(8)
              << stats.swaps << std::setw(10) << std::fixed
              << std::setprecision(1) << stats.total_ms << std::setw(10)
              << mp << std::setw(7) << (stats.truncated ? "yes" : "-")
              << std::setw(8) << stats.ViewStrategy() << "\n";

    // The why behind each swap, straight from the provenance ledger: the
    // rationale was captured at the decision site, not reconstructed.
    for (const obs::LineageEvent& e :
         engine.lineage().SwapInsAt(engine.round_seq())) {
      std::cout << "      swap: pattern " << e.pattern << " displaced "
                << (e.has_other ? std::to_string(e.other) : std::string("?"))
                << " (margin " << std::setprecision(3) << e.rationale.margin
                << ", dominant " << e.rationale.dominant_term << ")\n";
    }
  }

  std::cout << "\n" << RenderEngineReport(engine);

  MaintenanceHistory::Summary s = engine.history().Summarize();
  std::cout << "\n10-day summary: " << s.rounds << " rounds, "
            << s.major_rounds << " major, " << s.total_swaps
            << " total swaps, mean PMT " << s.mean_pmt_ms << " ms (max "
            << s.max_pmt_ms << " ms)\n";
  size_t truncated_rounds = 0;
  for (const MaintenanceStats& st : engine.history().entries()) {
    if (st.truncated) ++truncated_rounds;
  }
  std::cout << truncated_rounds << " of " << s.rounds << " rounds hit the "
            << slo_ms << "ms deadline and degraded gracefully\n";
  std::cout << "event log: " << event_log.size() << " JSONL records in "
            << event_path << "\n";
  return 0;
}
