// The boronic-ester scenario of Examples 1.1/1.2: a chemist formulates
// queries against a PubChem-like GUI. After the repository absorbs a new
// compound family, a stale pattern panel makes Δ⁺ queries expensive, while
// MIDAS's maintained panel keeps formulation cheap.
//
//   $ ./chem_evolution

#include <iostream>

#include "midas/datagen/molecule_gen.h"
#include "midas/datagen/workload.h"
#include "midas/maintain/midas.h"
#include "midas/queryform/formulation.h"
#include "midas/queryform/user_model.h"

int main() {
  using namespace midas;

  MoleculeGenerator gen(99);
  MoleculeGenConfig data_cfg = MoleculeGenerator::PubchemLike(120);

  MidasConfig cfg;
  cfg.budget.eta_min = 3;
  cfg.budget.eta_max = 8;
  cfg.budget.gamma = 12;
  cfg.fct.sup_min = 0.5;
  cfg.epsilon = 0.01;
  cfg.sample_cap = 0;
  cfg.seed = 3;

  // Two GUIs over the same repository: one maintained, one frozen.
  MidasEngine maintained(gen.Generate(data_cfg), cfg);
  maintained.Initialize();
  MoleculeGenerator gen2(99);  // identical stream -> identical database
  MidasEngine frozen(gen2.Generate(data_cfg), cfg);
  frozen.Initialize();

  // The repository gains a boronic-ester-like family.
  GraphDatabase scratch = maintained.db();
  BatchUpdate delta = gen.GenerateAdditions(scratch, data_cfg, 30, true);
  IdSet before(maintained.db().Ids());
  MaintenanceStats stats = maintained.ApplyUpdate(delta);
  frozen.ApplyUpdate(delta, MaintenanceMode::kNoMaintain);
  std::cout << "update: +" << delta.insertions.size() << " graphs, "
            << (stats.major ? "major" : "minor") << " modification, "
            << stats.swaps << " patterns refreshed\n\n";

  std::vector<GraphId> new_ids;
  for (GraphId id : maintained.db().Ids()) {
    if (!before.Contains(id)) new_ids.push_back(id);
  }

  // The chemist draws queries about the NEW compounds.
  Rng qrng(5);
  UserModelConfig um;
  double qft_maintained = 0;
  double qft_frozen = 0;
  double steps_maintained = 0;
  double steps_frozen = 0;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    GraphId id = new_ids[static_cast<size_t>(
        qrng.UniformInt(0, new_ids.size() - 1))];
    Graph query = RandomConnectedSubgraph(*maintained.db().Find(id), 12, qrng);
    if (query.NumEdges() == 0) continue;

    SimulatedFormulation with_midas =
        SimulateUsers(query, maintained.patterns(), 5, um, qrng);
    SimulatedFormulation with_stale =
        SimulateUsers(query, frozen.patterns(), 5, um, qrng);
    qft_maintained += with_midas.qft_seconds;
    qft_frozen += with_stale.qft_seconds;
    steps_maintained += static_cast<double>(with_midas.steps);
    steps_frozen += static_cast<double>(with_stale.steps);
    ++count;
  }

  std::cout << "10 queries about the new family, 5 simulated users each:\n";
  std::cout << "  maintained GUI: mean QFT=" << qft_maintained / count
            << "s, mean steps=" << steps_maintained / count << "\n";
  std::cout << "  frozen GUI:     mean QFT=" << qft_frozen / count
            << "s, mean steps=" << steps_frozen / count << "\n";
  double saved = 100.0 * (qft_frozen - qft_maintained) / qft_frozen;
  std::cout << "  maintenance saves " << saved << "% formulation time on the "
            << "new-family workload\n";
  return 0;
}
