#ifndef MIDAS_SELECT_RANDOM_WALK_H_
#define MIDAS_SELECT_RANDOM_WALK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "midas/cluster/csg.h"
#include "midas/common/rng.h"
#include "midas/mining/fct_set.h"

namespace midas {

/// Weighted random walks on cluster summary graphs and candidate-pattern
/// extraction (Section 2.3 and Figure 6).

struct WalkConfig {
  int num_walks = 100;
  int walk_length = 25;
};

/// Per-edge weight map keyed by CsgEdgeKey.
using EdgeWeights = std::unordered_map<uint64_t, double>;

/// Edge weights w_e = lcov(e, D) x lcov(e, C) (Section 2.3): label coverage
/// of the edge's label pair over the whole database and over the cluster.
EdgeWeights CsgEdgeWeights(const Csg& csg, const FctSet& fcts,
                           size_t db_size);

/// Traversal counts from `num_walks` weighted random walks of length
/// `walk_length`, each started at an edge drawn by weight.
EdgeWeights WalkTraversals(const Csg& csg, const EdgeWeights& weights,
                           const WalkConfig& config, Rng& rng);

/// Optional early-termination hook, called with the next edge before it is
/// added; returning true stops growth (Equation 2's coverage-based pruning).
using EdgePruneFn = std::function<bool(VertexId, VertexId)>;

/// Extracts a connected candidate pattern with up to `eta` edges from the
/// csg skeleton: starts at the (start_rank+1)-th most traversed edge and
/// greedily appends the most traversed edge adjacent to the partial pattern.
/// Growth is *coherent*: every appended edge must share at least one member
/// graph with all edges chosen so far, which guarantees the projected
/// pattern is an actual subgraph of some data graph (non-zero subgraph
/// coverage) rather than a chimera straddling several members.
/// Returns the pattern as a standalone labeled graph; an empty graph when
/// the csg has no live edges or pruning fired before the pattern reached
/// 2 edges.
/// `coherent = false` disables the witness constraint (the ablation bench
/// measures what it buys).
Graph ExtractCandidate(const Csg& csg, const EdgeWeights& traversals,
                       size_t eta, size_t start_rank,
                       const EdgePruneFn* prune = nullptr,
                       bool coherent = true);

/// Lower-level variant: returns the chosen skeleton edges instead of the
/// projected pattern (PCP-library construction prices candidates by the
/// traversal mass of exactly these edges).
std::vector<std::pair<VertexId, VertexId>> ExtractCandidateEdges(
    const Csg& csg, const EdgeWeights& traversals, size_t eta,
    size_t start_rank, const EdgePruneFn* prune = nullptr,
    bool coherent = true);

/// Projects a set of skeleton edges into a standalone labeled pattern.
Graph ProjectPattern(const Graph& skeleton,
                     const std::vector<std::pair<VertexId, VertexId>>& edges);

/// Applies the multiplicative weights update [7]: halves the weight of every
/// csg edge whose label pair occurs in the selected pattern.
void MultiplicativeWeightsUpdate(const Csg& csg, const Graph& selected,
                                 EdgeWeights& weights, double factor = 0.5);

/// A potential candidate pattern (PCP) with its walk statistics.
struct Pcp {
  Graph pattern;             ///< projected labeled subgraph
  double traversal_mass = 0; ///< summed traversal counts of its csg edges
  size_t proposals = 0;      ///< how many extraction attempts produced it
};

/// Builds the PCP library of one csg for one size (Section 2.3): candidates
/// are proposed from multiple start ranks plus truncations of actual walk
/// paths, deduplicated by isomorphism, and ranked by traversal mass. The
/// FCP is the library head; the rest give CATAPULT's greedy loop shape
/// variety. All candidates obey the coherence constraint.
std::vector<Pcp> BuildPcpLibrary(const Csg& csg, const EdgeWeights& traversals,
                                 size_t eta, size_t max_library_size,
                                 const EdgePruneFn* prune = nullptr);

}  // namespace midas

#endif  // MIDAS_SELECT_RANDOM_WALK_H_
