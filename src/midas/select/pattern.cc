#include "midas/select/pattern.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "midas/graph/compute_cache.h"
#include "midas/graph/ged.h"
#include "midas/graph/subgraph_iso.h"
#include "midas/index/pf_matrix.h"

namespace midas {

PatternId PatternSet::Add(CannedPattern p) {
  p.id = next_id_++;
  PatternId id = p.id;
  patterns_.emplace(id, std::move(p));
  return id;
}

PatternId PatternSet::AddWithId(PatternId id, CannedPattern p) {
  p.id = id;
  patterns_[id] = std::move(p);
  if (id >= next_id_) next_id_ = id + 1;
  return id;
}

bool PatternSet::Remove(PatternId id) { return patterns_.erase(id) > 0; }

const CannedPattern* PatternSet::Find(PatternId id) const {
  auto it = patterns_.find(id);
  return it == patterns_.end() ? nullptr : &it->second;
}

CannedPattern* PatternSet::FindMutable(PatternId id) {
  auto it = patterns_.find(id);
  return it == patterns_.end() ? nullptr : &it->second;
}

std::vector<double> PatternSet::SizeDistribution() const {
  std::vector<double> sizes;
  sizes.reserve(patterns_.size());
  for (const auto& [id, p] : patterns_) {
    sizes.push_back(static_cast<double>(p.graph.NumEdges()));
  }
  return sizes;
}

IdSet PatternSet::CoverageUnion() const {
  IdSet all;
  for (const auto& [id, p] : patterns_) all.UnionWith(p.coverage);
  return all;
}

size_t PatternSet::UniqueCoverage(PatternId id) const {
  const CannedPattern* p = Find(id);
  if (p == nullptr) return 0;
  IdSet others;
  for (const auto& [oid, op] : patterns_) {
    if (oid != id) others.UnionWith(op.coverage);
  }
  return p->coverage.DifferenceSize(others);
}

size_t PatternSet::MinUniqueCoverage() const {
  size_t best = std::numeric_limits<size_t>::max();
  for (const auto& [id, p] : patterns_) {
    best = std::min(best, UniqueCoverage(id));
  }
  return patterns_.empty() ? 0 : best;
}

double PatternSet::FScov(size_t universe_size) const {
  if (universe_size == 0) return 0.0;
  return static_cast<double>(CoverageUnion().size()) /
         static_cast<double>(universe_size);
}

double PatternSet::FLcov() const {
  // f_lcov is the union label coverage; each pattern caches its own lcov
  // against the full database, and the set-level value is the max (the union
  // is at least the best single pattern; exact unions are recomputed by the
  // maintenance engine which owns the edge-occurrence lists).
  double best = 0.0;
  for (const auto& [id, p] : patterns_) best = std::max(best, p.lcov);
  return best;
}

double PatternSet::FDiv() const {
  double best = std::numeric_limits<double>::max();
  for (const auto& [id, p] : patterns_) best = std::min(best, p.div);
  return patterns_.empty() ? 0.0 : best;
}

double PatternSet::FCog() const {
  double worst = 0.0;
  for (const auto& [id, p] : patterns_) worst = std::max(worst, p.cog);
  return worst;
}

double PatternSet::SetScore(size_t universe_size) const {
  double cog = FCog();
  if (cog <= 0.0) return 0.0;
  return FScov(universe_size) * FLcov() * FDiv() / cog;
}

CoverageEvaluator::CoverageEvaluator(const GraphDatabase& db,
                                     size_t sample_cap, Rng& rng,
                                     const FctIndex* fct_index,
                                     const IfeIndex* ife_index)
    : db_(&db),
      sample_cap_(sample_cap),
      fct_index_(fct_index),
      ife_index_(ife_index) {
  Resample(rng);
}

void CoverageEvaluator::InvalidateFeatureCounts() {
  std::lock_guard<std::mutex> lock(feature_memo_mu_);
  feature_counts_memo_.clear();
}

std::vector<std::pair<uint32_t, int32_t>> CoverageEvaluator::FctCountsFor(
    const Graph& pattern, const std::string& content_code) const {
  {
    std::lock_guard<std::mutex> lock(feature_memo_mu_);
    auto it = feature_counts_memo_.find(content_code);
    if (it != feature_counts_memo_.end()) return it->second;
  }
  // Computed outside the lock: counts are a pure function of the pattern
  // graph and the live feature rows, so concurrent writers agree.
  std::vector<std::pair<uint32_t, int32_t>> counts =
      fct_index_->FeatureCounts(pattern);
  std::lock_guard<std::mutex> lock(feature_memo_mu_);
  feature_counts_memo_.emplace(content_code, counts);
  return counts;
}

void CoverageEvaluator::Resample(Rng& rng) {
  std::vector<GraphId> ids = db_->Ids();
  if (sample_cap_ == 0 || ids.size() <= sample_cap_) {
    universe_ = IdSet(ids);
    return;
  }
  rng.Shuffle(ids);
  ids.resize(sample_cap_);
  universe_ = IdSet(ids);
}

IdSet CoverageEvaluator::CoverageOf(const Graph& pattern) const {
  return CoverageOver(pattern, universe_);
}

IdSet CoverageEvaluator::CoverageOver(const Graph& pattern,
                                      const IdSet& subset) const {
  const std::string pattern_code = GraphContentCode(pattern);
  IdSet candidates = subset;
  if (fct_index_ != nullptr) {
    candidates = fct_index_->CandidateGraphs(
        FctCountsFor(pattern, pattern_code), candidates);
  }
  if (ife_index_ != nullptr) {
    candidates = ife_index_->CandidateGraphs(ife_index_->EdgeCounts(pattern),
                                             candidates);
  }
  std::vector<GraphId> ids;
  ids.reserve(candidates.size());
  for (GraphId id : candidates) ids.push_back(id);

  // Containment memo: data graphs are immutable and ids are never reused
  // within a database instance, so exact verdicts keyed by the database
  // epoch survive across maintenance rounds (graph/compute_cache.h).
  ComputeCache& cache = ComputeCache::Global();
  const uint64_t epoch = db_->epoch();

  std::vector<uint8_t> verdict(ids.size(), 0);
  ParallelFor(pool_, ids.size(), [&](size_t i) {
    const Graph* g = db_->Find(ids[i]);
    if (g == nullptr) return;
    bool contains = false;
    if (!cache.LookupContainment(pattern_code, epoch, ids[i], &contains)) {
      contains = ContainsSubgraph(pattern, *g);  // exact — always cacheable
      cache.StoreContainment(pattern_code, epoch, ids[i], contains);
    }
    verdict[i] = contains ? 1 : 0;
  });

  IdSet covered;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (verdict[i] != 0) covered.Insert(ids[i]);
  }
  return covered;
}

size_t CoverageEvaluator::LabelCoverageCount(const Graph& pattern,
                                             const FctSet& fcts) const {
  IdSet covered;
  const auto& edge_occ = fcts.edge_occurrences();
  for (const EdgeLabelPair& lp : pattern.DistinctEdgeLabels()) {
    auto it = edge_occ.find(lp);
    if (it != edge_occ.end()) covered.UnionWith(it->second);
  }
  return covered.size();
}

double CoverageEvaluator::LabelCoverageOf(const Graph& pattern,
                                          const FctSet& fcts) const {
  if (db_->empty()) return 0.0;
  return static_cast<double>(LabelCoverageCount(pattern, fcts)) /
         static_cast<double>(db_->size());
}

void RefreshPatternMetrics(CannedPattern& p, const CoverageEvaluator& eval,
                           const FctSet& fcts) {
  p.coverage = eval.CoverageOf(p.graph);
  size_t universe = eval.universe().size();
  p.scov = universe == 0 ? 0.0
                         : static_cast<double>(p.coverage.size()) /
                               static_cast<double>(universe);
  p.lcov_count = eval.LabelCoverageCount(p.graph, fcts);
  p.lcov = eval.db().empty() ? 0.0
                             : static_cast<double>(p.lcov_count) /
                                   static_cast<double>(eval.db().size());
  p.cog = p.graph.CognitiveLoad();
}

std::vector<Graph> GedFeatureTrees(const FctSet& fcts) {
  std::vector<Graph> trees;
  for (const FctEntry* entry : fcts.FrequentClosedTrees()) {
    trees.push_back(entry->tree);
  }
  auto add_edge_tree = [&trees](const EdgeLabelPair& lp) {
    Graph t;
    VertexId a = t.AddVertex(lp.first);
    VertexId b = t.AddVertex(lp.second);
    t.AddEdge(a, b);
    trees.push_back(std::move(t));
  };
  for (const auto& [lp, occ] : fcts.FrequentEdges()) add_edge_tree(lp);
  for (const auto& [lp, occ] : fcts.InfrequentEdges()) add_edge_tree(lp);
  return trees;
}

GedEstimator LabelBoundGed() {
  return [](const Graph& a, const Graph& b) {
    return static_cast<double>(GedLowerBound(a, b));
  };
}

uint64_t GedFeatureDigest(const std::vector<Graph>& feature_trees) {
  uint64_t digest = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const Graph& t : feature_trees) {
    for (unsigned char c : GraphContentCode(t)) {
      digest = (digest ^ c) * 0x100000001B3ULL;
    }
  }
  return digest;
}

GedEstimator HybridGed(std::vector<Graph> feature_trees, ExecBudget* budget) {
  auto features = std::make_shared<std::vector<Graph>>(
      std::move(feature_trees));
  // The refinement's value depends on the feature trees (they tighten the
  // lower bound), so the memo key carries their digest — entries from a
  // different FCT generation can never alias.
  const uint64_t feature_digest = GedFeatureDigest(*features);
  return [features, budget, feature_digest](const Graph& a, const Graph& b) {
    int cheap = GedLowerBound(a, b);
    if (cheap > 1) return static_cast<double>(cheap);
    if (BudgetExhausted(budget)) {
      // Budget already spent: stay with the cheap bound rather than start
      // a refinement that would be cut off immediately.
      return static_cast<double>(cheap);
    }
    // Near-tie: refine with the tightened bound / exact GED (Section 6.1).
    // The refinement dominates diversity maintenance cost and pattern pairs
    // repeat verbatim across rounds, so memoize it by content-code pair.
    ComputeCache& cache = ComputeCache::Global();
    std::string code_a = GraphContentCode(a);
    std::string code_b = GraphContentCode(b);
    int refined = 0;
    if (!cache.LookupGed(feature_digest, code_a, code_b, &refined)) {
      refined = EstimateGed(a, b, *features, 8, budget);
      // A budget that tripped mid-search leaves `refined` truncated — only
      // exact outcomes may enter the cache.
      if (!BudgetExhausted(budget)) {
        cache.StoreGed(feature_digest, code_a, code_b, refined);
      }
    }
    return static_cast<double>(std::max(cheap, refined));
  };
}

void RefreshDiversityAndScores(PatternSet& set, const GedEstimator& ged,
                               TaskPool* pool) {
  auto& patterns = set.patterns();
  std::vector<CannedPattern*> rows;
  rows.reserve(patterns.size());
  for (auto& [id, p] : patterns) rows.push_back(&p);
  // One O(n) min-GED row per pattern; rows are independent and each writes
  // only its own pattern, so the parallel schedule cannot change results.
  ParallelFor(pool, rows.size(), [&](size_t i) {
    CannedPattern& p = *rows[i];
    double min_ged = std::numeric_limits<double>::max();
    for (const auto& [oid, other] : patterns) {
      if (oid == p.id) continue;
      min_ged = std::min(min_ged, ged(p.graph, other.graph));
    }
    p.div = patterns.size() <= 1
                ? static_cast<double>(p.graph.NumEdges())  // lone pattern
                : min_ged;
    p.score = p.cog > 0.0 ? p.scov * p.lcov * p.div / p.cog : 0.0;
  });
}

void RefreshDiversityAndScores(PatternSet& set,
                               const std::vector<Graph>& feature_trees,
                               TaskPool* pool) {
  RefreshDiversityAndScores(set, HybridGed(feature_trees), pool);
}

}  // namespace midas
