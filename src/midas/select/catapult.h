#ifndef MIDAS_SELECT_CATAPULT_H_
#define MIDAS_SELECT_CATAPULT_H_

#include <map>

#include "midas/cluster/clustering.h"
#include "midas/cluster/csg.h"
#include "midas/select/pattern.h"
#include "midas/select/random_walk.h"

namespace midas {

/// Pattern budget b = (η_min, η_max, γ) (Definition 3.1).
struct PatternBudget {
  size_t eta_min = 3;   ///< minimum pattern size (edges)
  size_t eta_max = 12;  ///< maximum pattern size (edges)
  size_t gamma = 30;    ///< number of patterns displayed on the GUI

  /// Maximum number of patterns per size: ceil(γ / (η_max - η_min + 1)).
  size_t MaxPerSize() const {
    size_t span = eta_max >= eta_min ? eta_max - eta_min + 1 : 1;
    return (gamma + span - 1) / span;
  }
};

/// Configuration of the CATAPULT selection loop (Section 2.3).
struct CatapultConfig {
  PatternBudget budget;
  WalkConfig walk;
  /// Number of start ranks tried per (csg, size) when proposing candidates.
  size_t pcp_starts = 2;
  /// Lazy-sampling cap for scov evaluation (0 = evaluate on the full db).
  size_t sample_cap = 400;
  /// Multiplicative weights decay applied to covered edge labels.
  double weight_decay = 0.5;
  /// Coherent candidate extraction (see random_walk.h); ablation knob.
  bool coherent_extraction = true;
  /// Propose candidates through the PCP library (Section 2.3's
  /// library-then-FCP flow) instead of raw start ranks. Costs extra
  /// isomorphism-based deduplication per (csg, size); buys shape variety.
  bool use_pcp_library = false;
  size_t pcp_library_size = 6;

  /// Optional task pool (non-owning; nullptr = serial). Parallelizes the
  /// per-candidate scoring pass and the coverage VF2 checks; walks and the
  /// greedy selection remain sequential, so the result is
  /// thread-count-invariant.
  TaskPool* pool = nullptr;
};

/// CATAPULT canned-pattern selection: greedy iterations of weighted random
/// walks over all CSGs, proposing candidate patterns per size, scoring them
/// with Definition 2.1 (cluster coverage x label coverage x diversity /
/// cognitive load) and applying the multiplicative weights update after each
/// selection. Passing the indices turns this into CATAPULT++'s accelerated
/// coverage evaluation; passing nullptr reproduces plain CATAPULT.
PatternSet SelectCannedPatterns(const GraphDatabase& db, const FctSet& fcts,
                                const std::map<ClusterId, Csg>& csgs,
                                const CatapultConfig& config, Rng& rng,
                                const FctIndex* fct_index = nullptr,
                                const IfeIndex* ife_index = nullptr);

}  // namespace midas

#endif  // MIDAS_SELECT_CATAPULT_H_
