#include "midas/select/pattern_io.h"

#include <ostream>

#include "midas/graph/graph_io.h"

namespace midas {

void WritePatternSet(const PatternSet& set, const LabelDictionary& dict,
                     std::ostream& out) {
  for (const auto& [pid, p] : set.patterns()) {
    WriteGraph(p.graph, dict, static_cast<long>(pid), out);
  }
}

bool ReadPatternSet(std::istream& in, LabelDictionary& dict,
                    PatternSet* set) {
  GraphDatabase staging;
  if (!ReadDatabase(in, &staging)) return false;
  for (const auto& [id, g] : staging.graphs()) {
    CannedPattern p;
    p.graph = RemapLabels(g, staging.labels(), dict);
    set->Add(std::move(p));
  }
  return true;
}

}  // namespace midas
