#include "midas/select/pattern_io.h"

#include <ostream>

#include "midas/graph/graph_io.h"

namespace midas {

void WritePatternSet(const PatternSet& set, const LabelDictionary& dict,
                     std::ostream& out) {
  for (const auto& [pid, p] : set.patterns()) {
    WriteGraph(p.graph, dict, static_cast<long>(pid), out);
  }
}

bool ReadPatternSet(std::istream& in, LabelDictionary& dict, PatternSet* set,
                    bool preserve_ids) {
  GraphDatabase staging;
  GspanReadOptions options;
  options.preserve_ids = preserve_ids;
  std::string error;
  if (!ReadDatabase(in, &staging, options, &error)) return false;
  for (const auto& [id, g] : staging.graphs()) {
    CannedPattern p;
    p.graph = RemapLabels(g, staging.labels(), dict);
    if (preserve_ids) {
      set->AddWithId(static_cast<PatternId>(id), std::move(p));
    } else {
      set->Add(std::move(p));
    }
  }
  return true;
}

}  // namespace midas
