#include "midas/select/random_walk.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "midas/graph/subgraph_iso.h"

namespace midas {

EdgeWeights CsgEdgeWeights(const Csg& csg, const FctSet& fcts,
                           size_t db_size) {
  EdgeWeights weights;
  const Graph& skel = csg.skeleton();
  const auto& edge_occ = fcts.edge_occurrences();
  size_t cluster_size = csg.members().size();
  for (const auto& [edge, members] : csg.Edges()) {
    const auto& [u, v] = edge;
    EdgeLabelPair lp = skel.EdgeLabel(u, v);
    double lcov_d = 0.0;
    auto it = edge_occ.find(lp);
    if (it != edge_occ.end() && db_size > 0) {
      lcov_d = static_cast<double>(it->second.size()) /
               static_cast<double>(db_size);
    }
    double lcov_c =
        cluster_size == 0
            ? 0.0
            : static_cast<double>(members->size()) /
                  static_cast<double>(cluster_size);
    weights[CsgEdgeKey(u, v)] = lcov_d * lcov_c;
  }
  return weights;
}

EdgeWeights WalkTraversals(const Csg& csg, const EdgeWeights& weights,
                           const WalkConfig& config, Rng& rng) {
  EdgeWeights traversals;
  const Graph& skel = csg.skeleton();
  auto edges = csg.Edges();
  if (edges.empty()) return traversals;

  // Start distribution over edges, by weight.
  std::vector<double> start_weights;
  start_weights.reserve(edges.size());
  for (const auto& [edge, members] : edges) {
    auto it = weights.find(CsgEdgeKey(edge.first, edge.second));
    start_weights.push_back(it == weights.end() ? 0.0 : it->second);
  }

  for (int w = 0; w < config.num_walks; ++w) {
    int pick = rng.PickWeighted(start_weights);
    if (pick < 0) pick = static_cast<int>(rng.UniformInt(0, edges.size() - 1));
    auto [u, v] = edges[static_cast<size_t>(pick)].first;
    traversals[CsgEdgeKey(u, v)] += 1.0;
    VertexId current = rng.Bernoulli(0.5) ? u : v;
    for (int step = 1; step < config.walk_length; ++step) {
      const auto& neighbors = skel.Neighbors(current);
      if (neighbors.empty()) break;
      std::vector<double> w_out;
      w_out.reserve(neighbors.size());
      for (VertexId n : neighbors) {
        auto it = weights.find(CsgEdgeKey(current, n));
        w_out.push_back(it == weights.end() ? 0.0 : it->second);
      }
      int next = rng.PickWeighted(w_out);
      if (next < 0) break;
      VertexId n = neighbors[static_cast<size_t>(next)];
      traversals[CsgEdgeKey(current, n)] += 1.0;
      current = n;
    }
  }
  return traversals;
}

// Projects a set of skeleton edges into a standalone labeled pattern graph.
Graph ProjectPattern(const Graph& skel,
                     const std::vector<std::pair<VertexId, VertexId>>& edges) {
  Graph pattern;
  std::unordered_map<VertexId, VertexId> remap;
  auto local = [&](VertexId sv) {
    auto it = remap.find(sv);
    if (it != remap.end()) return it->second;
    VertexId id = pattern.AddVertex(skel.label(sv));
    remap.emplace(sv, id);
    return id;
  };
  for (const auto& [u, v] : edges) pattern.AddEdge(local(u), local(v));
  return pattern;
}

std::vector<std::pair<VertexId, VertexId>> ExtractCandidateEdges(
    const Csg& csg, const EdgeWeights& traversals, size_t eta,
    size_t start_rank, const EdgePruneFn* prune, bool coherent) {
  const Graph& skel = csg.skeleton();
  auto edges = csg.Edges();
  if (edges.empty()) return {};

  // Rank edges by traversal count (desc), deterministic tie-break by key.
  std::vector<std::pair<double, std::pair<VertexId, VertexId>>> ranked;
  ranked.reserve(edges.size());
  for (const auto& [edge, members] : edges) {
    auto it = traversals.find(CsgEdgeKey(edge.first, edge.second));
    double t = it == traversals.end() ? 0.0 : it->second;
    ranked.push_back({-t, edge});
  }
  std::sort(ranked.begin(), ranked.end());
  if (start_rank >= ranked.size()) start_rank = ranked.size() - 1;

  std::vector<std::pair<VertexId, VertexId>> chosen;
  std::set<uint64_t> chosen_keys;
  std::set<VertexId> touched;
  // Member graphs containing *all* chosen edges so far (coherence witness).
  IdSet witnesses;
  auto add_edge = [&](VertexId u, VertexId v) {
    chosen.push_back({u, v});
    chosen_keys.insert(CsgEdgeKey(u, v));
    touched.insert(u);
    touched.insert(v);
    witnesses = chosen.size() == 1
                    ? csg.EdgeMembers(u, v)
                    : IdSet::Intersection(witnesses, csg.EdgeMembers(u, v));
  };

  const auto& [t0, e0] = ranked[start_rank];
  (void)t0;
  if (prune != nullptr && (*prune)(e0.first, e0.second)) return {};
  add_edge(e0.first, e0.second);

  while (chosen.size() < eta) {
    // Most traversed coherent edge adjacent to the partial pattern.
    double best_t = -1.0;
    VertexId bu = 0;
    VertexId bv = 0;
    bool found = false;
    for (VertexId u : touched) {
      for (VertexId v : skel.Neighbors(u)) {
        uint64_t key = CsgEdgeKey(u, v);
        if (chosen_keys.count(key) > 0) continue;
        const IdSet& members = csg.EdgeMembers(u, v);
        if (members.empty()) continue;  // dead edge
        if (coherent && witnesses.IntersectionSize(members) == 0) {
          continue;  // incoherent: would straddle member graphs
        }
        auto it = traversals.find(key);
        double t = it == traversals.end() ? 0.0 : it->second;
        if (!found || t > best_t) {
          best_t = t;
          bu = u;
          bv = v;
          found = true;
        }
      }
    }
    if (!found) break;
    if (prune != nullptr && (*prune)(bu, bv)) break;  // Equation 2 fired
    add_edge(bu, bv);
  }

  if (chosen.size() < 2) return {};
  return chosen;
}

Graph ExtractCandidate(const Csg& csg, const EdgeWeights& traversals,
                       size_t eta, size_t start_rank,
                       const EdgePruneFn* prune, bool coherent) {
  std::vector<std::pair<VertexId, VertexId>> chosen =
      ExtractCandidateEdges(csg, traversals, eta, start_rank, prune,
                            coherent);
  if (chosen.empty()) return Graph();
  return ProjectPattern(csg.skeleton(), chosen);
}

std::vector<Pcp> BuildPcpLibrary(const Csg& csg, const EdgeWeights& traversals,
                                 size_t eta, size_t max_library_size,
                                 const EdgePruneFn* prune) {
  std::vector<Pcp> library;
  if (max_library_size == 0) return library;

  // Propose from as many distinct start ranks as the csg offers (bounded by
  // twice the library size; extraction is cheap compared to scoring).
  size_t attempts = std::min<size_t>(csg.NumLiveEdges(),
                                     2 * max_library_size);
  for (size_t rank = 0; rank < attempts; ++rank) {
    std::vector<std::pair<VertexId, VertexId>> chosen =
        ExtractCandidateEdges(csg, traversals, eta, rank, prune);
    if (chosen.empty()) continue;
    Graph g = ProjectPattern(csg.skeleton(), chosen);

    double mass = 0.0;
    for (const auto& [u, v] : chosen) {
      auto it = traversals.find(CsgEdgeKey(u, v));
      if (it != traversals.end()) mass += it->second;
    }

    bool merged = false;
    for (Pcp& existing : library) {
      if (AreIsomorphic(existing.pattern, g)) {
        existing.traversal_mass = std::max(existing.traversal_mass, mass);
        ++existing.proposals;
        merged = true;
        break;
      }
    }
    if (!merged) {
      Pcp pcp;
      pcp.pattern = std::move(g);
      pcp.traversal_mass = mass;
      pcp.proposals = 1;
      library.push_back(std::move(pcp));
      if (library.size() >= max_library_size) break;
    }
  }

  // FCP ordering: highest traversal mass first (the "most frequently
  // traversed edges" criterion), proposals as tie-break.
  std::sort(library.begin(), library.end(), [](const Pcp& a, const Pcp& b) {
    if (a.traversal_mass != b.traversal_mass) {
      return a.traversal_mass > b.traversal_mass;
    }
    return a.proposals > b.proposals;
  });
  return library;
}

void MultiplicativeWeightsUpdate(const Csg& csg, const Graph& selected,
                                 EdgeWeights& weights, double factor) {
  std::set<uint64_t> pattern_labels;
  for (const auto& [u, v] : selected.Edges()) {
    pattern_labels.insert(selected.EdgeLabel(u, v).Packed());
  }
  const Graph& skel = csg.skeleton();
  for (auto& [key, w] : weights) {
    VertexId u = static_cast<VertexId>(key >> 32);
    VertexId v = static_cast<VertexId>(key & 0xffffffffu);
    if (pattern_labels.count(skel.EdgeLabel(u, v).Packed()) > 0) {
      w *= factor;
    }
  }
}

}  // namespace midas
