#include "midas/select/candidate_gen.h"

#include <set>
#include <string>

#include "midas/graph/canonical.h"

namespace midas {

std::vector<Graph> GeneratePromisingCandidates(
    const GraphDatabase& db, const FctSet& fcts,
    const std::map<ClusterId, Csg>& csgs, const PatternSet& existing,
    const IdSet& universe, const CandidateGenConfig& config, Rng& rng) {
  std::vector<Graph> candidates;
  if (csgs.empty() || db.empty()) return candidates;

  // Equation 2 ingredients: coverage already provided by P, and the weakest
  // pattern's unique contribution.
  IdSet covered_by_set = existing.CoverageUnion();
  double threshold =
      (1.0 + config.kappa) *
      static_cast<double>(existing.MinUniqueCoverage());
  const auto& edge_occ = fcts.edge_occurrences();

  std::set<std::string> seen;
  for (const auto& [pid, p] : existing.patterns()) {
    seen.insert(GraphSignature(p.graph));
  }

  for (const auto& [cid, csg] : csgs) {
    if (csg.NumLiveEdges() == 0) continue;
    const Graph& skel = csg.skeleton();
    EdgeWeights weights = CsgEdgeWeights(csg, fcts, db.size());
    EdgeWeights traversals = WalkTraversals(csg, weights, config.walk, rng);

    // Coverage-based pruning hook (Equation 2): stop growth when the next
    // edge's marginal subgraph coverage is below (1+κ) times the weakest
    // existing pattern's unique coverage.
    EdgePruneFn prune = [&](VertexId u, VertexId v) {
      EdgeLabelPair lp = skel.EdgeLabel(u, v);
      auto it = edge_occ.find(lp);
      if (it == edge_occ.end()) return true;  // edge vanished from D
      IdSet scov_e = IdSet::Intersection(it->second, universe);
      double marginal =
          static_cast<double>(scov_e.DifferenceSize(covered_by_set));
      return marginal < threshold;
    };

    for (size_t eta = config.budget.eta_min; eta <= config.budget.eta_max;
         ++eta) {
      for (size_t rank = 0; rank < config.pcp_starts; ++rank) {
        Graph g = ExtractCandidate(
            csg, traversals, eta, rank,
            config.enable_pruning ? &prune : nullptr,
            config.coherent_extraction);
        if (g.NumEdges() < config.budget.eta_min) continue;
        if (!seen.insert(GraphSignature(g)).second) continue;
        candidates.push_back(std::move(g));
        if (candidates.size() >= config.max_candidates) return candidates;
      }
    }
  }
  return candidates;
}

}  // namespace midas
