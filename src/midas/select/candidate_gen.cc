#include "midas/select/candidate_gen.h"

#include <set>
#include <string>

#include "midas/graph/canonical.h"

namespace midas {

std::vector<Graph> GeneratePromisingCandidates(
    const GraphDatabase& db, const FctSet& fcts,
    const std::map<ClusterId, Csg>& csgs, const PatternSet& existing,
    const IdSet& universe, const CandidateGenConfig& config, Rng& rng) {
  std::vector<Graph> candidates;
  if (csgs.empty() || db.empty()) return candidates;

  // Equation 2 ingredients: coverage already provided by P, and the weakest
  // pattern's unique contribution.
  IdSet covered_by_set = existing.CoverageUnion();
  double threshold =
      (1.0 + config.kappa) *
      static_cast<double>(existing.MinUniqueCoverage());
  const auto& edge_occ = fcts.edge_occurrences();

  std::set<std::string> seen;
  for (const auto& [pid, p] : existing.patterns()) {
    seen.insert(GraphSignature(p.graph));
  }

  // Coverage-based pruning hook (Equation 2): stop growth when the next
  // edge's marginal subgraph coverage is below (1+κ) times the weakest
  // existing pattern's unique coverage.
  auto make_prune = [&](const Graph& skel) {
    return [&edge_occ, &universe, &covered_by_set, threshold,
            &skel](VertexId u, VertexId v) {
      EdgeLabelPair lp = skel.EdgeLabel(u, v);
      auto it = edge_occ.find(lp);
      if (it == edge_occ.end()) return true;  // edge vanished from D
      IdSet scov_e = IdSet::Intersection(it->second, universe);
      double marginal =
          static_cast<double>(scov_e.DifferenceSize(covered_by_set));
      return marginal < threshold;
    };
  };

  // The weighted walks draw from the caller's Rng, so they run serially in
  // csg order; the (csg, size, rank) extraction jobs they parameterize are
  // pure and fan out over the pool. Dedup then replays the serial visiting
  // order, so the output is identical at any thread count (jobs past the
  // max_candidates cutoff are computed and discarded).
  struct Job {
    const Csg* csg = nullptr;
    size_t traversal = 0;
    size_t eta = 0;
    size_t rank = 0;
  };
  std::vector<EdgeWeights> all_traversals;
  std::vector<Job> jobs;
  for (const auto& [cid, csg] : csgs) {
    if (csg.NumLiveEdges() == 0) continue;
    EdgeWeights weights = CsgEdgeWeights(csg, fcts, db.size());
    all_traversals.push_back(WalkTraversals(csg, weights, config.walk, rng));
    for (size_t eta = config.budget.eta_min; eta <= config.budget.eta_max;
         ++eta) {
      for (size_t rank = 0; rank < config.pcp_starts; ++rank) {
        jobs.push_back({&csg, all_traversals.size() - 1, eta, rank});
      }
    }
  }

  std::vector<Graph> extracted(jobs.size());
  std::vector<std::string> signatures(jobs.size());
  std::vector<uint8_t> valid(jobs.size(), 0);
  ParallelFor(config.pool, jobs.size(), [&](size_t j) {
    const Job& job = jobs[j];
    EdgePruneFn prune = make_prune(job.csg->skeleton());
    Graph g = ExtractCandidate(*job.csg, all_traversals[job.traversal],
                               job.eta, job.rank,
                               config.enable_pruning ? &prune : nullptr,
                               config.coherent_extraction);
    if (g.NumEdges() >= config.budget.eta_min) {
      signatures[j] = GraphSignature(g);
      extracted[j] = std::move(g);
      valid[j] = 1;
    }
  });

  for (size_t j = 0; j < jobs.size(); ++j) {
    if (valid[j] == 0) continue;
    if (!seen.insert(signatures[j]).second) continue;
    candidates.push_back(std::move(extracted[j]));
    if (candidates.size() >= config.max_candidates) return candidates;
  }
  return candidates;
}

}  // namespace midas
