#ifndef MIDAS_SELECT_PATTERN_IO_H_
#define MIDAS_SELECT_PATTERN_IO_H_

#include <iosfwd>

#include "midas/select/pattern.h"

namespace midas {

/// Pattern-set persistence in the same gSpan-style text format as graph
/// databases (graph_io.h): one `t # <pattern-id>` block per pattern. A GUI
/// can persist its panel across sessions, and the CLI pipeline
/// (examples/midas_cli) passes pattern sets between invocations as files.
///
/// Only the pattern structures are persisted; cached metrics (coverage,
/// scov, ...) are recomputed against the current database after loading.

void WritePatternSet(const PatternSet& set, const LabelDictionary& dict,
                     std::ostream& out);

/// Parses patterns, interning labels into `dict` (by name, so files written
/// against a different dictionary load correctly). Patterns are Add()ed to
/// `set` with fresh ids by default; `preserve_ids` keeps the `t # <id>`
/// header ids instead (restore paths, where the ids anchor the provenance
/// ledger). Returns false on malformed input.
bool ReadPatternSet(std::istream& in, LabelDictionary& dict, PatternSet* set,
                    bool preserve_ids = false);

}  // namespace midas

#endif  // MIDAS_SELECT_PATTERN_IO_H_
