#ifndef MIDAS_SELECT_PATTERN_H_
#define MIDAS_SELECT_PATTERN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "midas/common/budget.h"
#include "midas/common/id_set.h"
#include "midas/common/parallel.h"
#include "midas/common/rng.h"
#include "midas/graph/graph_database.h"
#include "midas/index/fct_index.h"
#include "midas/index/ife_index.h"
#include "midas/mining/fct_set.h"

namespace midas {

/// Stable id of a canned pattern on the GUI.
using PatternId = uint32_t;

/// A canned pattern with cached quality metrics (Section 2.2).
struct CannedPattern {
  PatternId id = 0;
  Graph graph;
  /// Data graphs (within the evaluation universe) containing the pattern.
  IdSet coverage;
  double scov = 0.0;  ///< subgraph coverage |G_p| / |D_s|
  double lcov = 0.0;  ///< label coverage of the pattern's edges
  /// lcov numerator |∪_e L(e, D)| — the label-coverage accumulator the
  /// incremental views delta-maintain (lcov = lcov_count / |D|). Kept next
  /// to the ratio so a clean pattern's lcov can follow a changing |D|
  /// without re-unioning its occurrence lists.
  size_t lcov_count = 0;
  double cog = 0.0;   ///< cognitive load |E_p| * density
  double div = 0.0;   ///< min estimated GED to the rest of the set
  double score = 0.0; ///< s'_p = scov * lcov * div / cog
};

/// The canned pattern set P displayed on the GUI.
class PatternSet {
 public:
  PatternSet() = default;

  /// Adds a pattern, assigning a fresh id (returned).
  PatternId Add(CannedPattern p);
  /// Adds a pattern under a caller-chosen id (restore paths: snapshot /
  /// journal panels keep their on-disk ids so provenance stays addressable
  /// across recovery). Advances the allocator past `id`; replaces any
  /// existing pattern with the same id.
  PatternId AddWithId(PatternId id, CannedPattern p);
  bool Remove(PatternId id);

  /// Id the next Add() would assign. Persisted in the snapshot MANIFEST so
  /// post-recovery swap-ins allocate the same ids an uninterrupted run
  /// would (dead patterns may hold ids above every live one).
  PatternId next_id() const { return next_id_; }
  /// Never lowers the allocator.
  void RestoreNextId(PatternId next_id) {
    if (next_id > next_id_) next_id_ = next_id;
  }

  const CannedPattern* Find(PatternId id) const;
  CannedPattern* FindMutable(PatternId id);

  size_t size() const { return patterns_.size(); }
  const std::map<PatternId, CannedPattern>& patterns() const {
    return patterns_;
  }
  std::map<PatternId, CannedPattern>& patterns() { return patterns_; }

  /// Pattern sizes |E_p| as doubles (for the KS size-distribution test).
  std::vector<double> SizeDistribution() const;

  /// Union of all pattern coverage sets.
  IdSet CoverageUnion() const;
  /// Coverage of p not provided by any other pattern
  /// (|G_scov(p) \ ∪_{p'≠p} G_scov(p')| of Definition 5.5).
  size_t UniqueCoverage(PatternId id) const;
  /// Smallest unique coverage over the set (RHS baseline of Equation 2).
  size_t MinUniqueCoverage() const;

  /// --- set-level objectives (Section 2.2) -------------------------------
  double FScov(size_t universe_size) const;
  double FLcov() const;  ///< min over patterns is not used; union-based, cached lcov inputs
  double FDiv() const;   ///< min cached div
  double FCog() const;   ///< max cached cog
  /// s'_P = f_scov * f_lcov * f_div / f_cog.
  double SetScore(size_t universe_size) const;

 private:
  std::map<PatternId, CannedPattern> patterns_;
  PatternId next_id_ = 0;
};

/// Evaluates pattern coverage against a (lazily sampled) database universe,
/// optionally accelerated by the FCT-/IFE-indices (Section 6.1).
///
/// The paper computes scov over a sampled database D_s when D is large; the
/// evaluator fixes the sample once so all comparisons are consistent.
class CoverageEvaluator {
 public:
  /// sample_cap = 0 disables sampling. Indices may be null (CATAPULT mode:
  /// plain VF2 scans).
  CoverageEvaluator(const GraphDatabase& db, size_t sample_cap, Rng& rng,
                    const FctIndex* fct_index = nullptr,
                    const IfeIndex* ife_index = nullptr);

  /// Ids of universe graphs containing the pattern.
  IdSet CoverageOf(const Graph& pattern) const;

  /// Ids of `subset` graphs containing the pattern (subset must be within
  /// the universe). The delta-apply view path probes only the universe ids
  /// that entered this round; CoverageOf is CoverageOver(universe).
  IdSet CoverageOver(const Graph& pattern, const IdSet& subset) const;

  /// Label coverage of the pattern's edge labels over the full database:
  /// |∪_e L(e, D)| / |D|.
  double LabelCoverageOf(const Graph& pattern, const FctSet& fcts) const;

  /// The lcov numerator |∪_e L(e, D)| (the view-maintained accumulator).
  size_t LabelCoverageCount(const Graph& pattern, const FctSet& fcts) const;

  const IdSet& universe() const { return universe_; }
  const GraphDatabase& db() const { return *db_; }

  /// Re-attaches indices (e.g., after they were rebuilt).
  void SetIndices(const FctIndex* fct_index, const IfeIndex* ife_index) {
    fct_index_ = fct_index;
    ife_index_ = ife_index;
    InvalidateFeatureCounts();
  }

  /// Refreshes the sampled universe after database evolution.
  void Resample(Rng& rng);

  /// Drops the per-pattern FCT feature-count memo. Must be called whenever
  /// the FCT index's feature rows change (SyncFeatures after mining
  /// maintenance) — counts are a function of the pattern graph and the live
  /// feature rows only, so graph-column churn does not invalidate them.
  void InvalidateFeatureCounts();

  /// Attaches a task pool: CoverageOf then runs its per-graph VF2 checks in
  /// parallel (nullptr = serial reference path). Results are merged in
  /// ascending-id order, so the returned IdSet is thread-count-invariant.
  void set_pool(TaskPool* pool) { pool_ = pool; }

 private:
  /// Memoized FctIndex::FeatureCounts(pattern), keyed by the pattern's
  /// content code: one computation per distinct pattern graph between
  /// feature-row syncs, no matter how many CoverageOf/CoverageOver calls a
  /// round issues. Thread-safe (CoverageOf runs on pool workers); values
  /// are deterministic, so racing writers agree.
  std::vector<std::pair<uint32_t, int32_t>> FctCountsFor(
      const Graph& pattern, const std::string& content_code) const;

  const GraphDatabase* db_;
  size_t sample_cap_;
  IdSet universe_;
  const FctIndex* fct_index_;
  const IfeIndex* ife_index_;
  TaskPool* pool_ = nullptr;
  mutable std::mutex feature_memo_mu_;
  mutable std::map<std::string, std::vector<std::pair<uint32_t, int32_t>>>
      feature_counts_memo_;
};

/// Recomputes scov/lcov/cog for one pattern (coverage included).
void RefreshPatternMetrics(CannedPattern& p, const CoverageEvaluator& eval,
                           const FctSet& fcts);

/// Distance measure used for all diversity computations. One estimator is
/// used consistently across selection, swapping (criterion sw3) and
/// reporting, so the "diversity never regresses" guarantee is visible in
/// the reported metrics.
using GedEstimator = std::function<double(const Graph&, const Graph&)>;

/// The plain label lower bound GED_l — O((V+E) log) per pair.
GedEstimator LabelBoundGed();

/// Hybrid estimator: GED_l, refined by the PF-matrix-tightened GED'_l /
/// exact GED machinery (Section 6.1) only when the cheap bound cannot
/// discriminate (distance <= 1), keeping the common case fast.
///
/// `budget` (optional, non-owning — must outlive the returned estimator;
/// the engine keeps one per-round ExecBudget member for this) bounds the
/// exact-GED refinement: on exhaustion the estimate degrades to the cheap
/// bound / anytime upper bound instead of blocking the round.
GedEstimator HybridGed(std::vector<Graph> feature_trees,
                       ExecBudget* budget = nullptr);

/// FNV-1a digest of the feature trees that parameterize HybridGed — the
/// cache-validity key of both the ComputeCache GED memo and the pairwise
/// distance view: distances estimated under a different FCT generation can
/// never alias.
uint64_t GedFeatureDigest(const std::vector<Graph>& feature_trees);

/// Recomputes div (min pairwise distance under `ged`) and score for every
/// pattern in the set. With a pool, the per-pattern min-GED rows run in
/// parallel (each row writes only its own pattern — deterministic).
void RefreshDiversityAndScores(PatternSet& set, const GedEstimator& ged,
                               TaskPool* pool = nullptr);

/// Convenience overload using HybridGed over the given feature trees.
void RefreshDiversityAndScores(PatternSet& set,
                               const std::vector<Graph>& feature_trees,
                               TaskPool* pool = nullptr);

/// Feature trees (FCTs + frequent + infrequent edges) for GED tightening.
std::vector<Graph> GedFeatureTrees(const FctSet& fcts);

}  // namespace midas

#endif  // MIDAS_SELECT_PATTERN_H_
