#include "midas/select/catapult.h"

#include <algorithm>
#include <limits>
#include <set>
#include <unordered_map>

#include "midas/graph/canonical.h"
#include "midas/graph/ged.h"
#include "midas/graph/subgraph_iso.h"
#include "midas/obs/metrics.h"
#include "midas/obs/trace.h"

namespace midas {
namespace {

// Quick reject for "csg skeleton contains candidate": every candidate edge
// label must occur in the skeleton.
bool EdgeLabelsPresent(const Graph& candidate, const Graph& skeleton) {
  std::set<uint64_t> skel_labels;
  for (const auto& [u, v] : skeleton.Edges()) {
    skel_labels.insert(skeleton.EdgeLabel(u, v).Packed());
  }
  for (const auto& [u, v] : candidate.Edges()) {
    if (skel_labels.count(candidate.EdgeLabel(u, v).Packed()) == 0) {
      return false;
    }
  }
  return true;
}

// Cluster coverage ccov(p, cw, C) of Definition 2.1.
double ClusterCoverage(const Graph& candidate,
                       const std::map<ClusterId, Csg>& csgs, size_t db_size) {
  if (db_size == 0) return 0.0;
  double ccov = 0.0;
  for (const auto& [cid, csg] : csgs) {
    if (csg.members().empty()) continue;
    if (EdgeLabelsPresent(candidate, csg.skeleton()) &&
        ContainsSubgraph(candidate, csg.skeleton())) {
      ccov += static_cast<double>(csg.members().size()) /
              static_cast<double>(db_size);
    }
  }
  return ccov;
}

// Fast diversity estimate vs the current set during selection (the final
// set's diversity is recomputed with the tighter machinery afterwards).
double FastDiversity(const Graph& candidate, const PatternSet& set) {
  if (set.size() == 0) return static_cast<double>(candidate.NumEdges());
  double best = std::numeric_limits<double>::max();
  for (const auto& [id, p] : set.patterns()) {
    best = std::min(best, static_cast<double>(GedLowerBound(candidate,
                                                            p.graph)));
  }
  return best;
}

}  // namespace

PatternSet SelectCannedPatterns(const GraphDatabase& db, const FctSet& fcts,
                                const std::map<ClusterId, Csg>& csgs,
                                const CatapultConfig& config, Rng& rng,
                                const FctIndex* fct_index,
                                const IfeIndex* ife_index) {
  obs::TraceSpan select_span("midas_select_select_ms");
  PatternSet selected;
  if (csgs.empty() || db.empty()) return selected;

  CoverageEvaluator eval(db, config.sample_cap, rng, fct_index, ife_index);
  eval.set_pool(config.pool);

  // Per-csg walk weights (updated multiplicatively after each selection).
  std::map<ClusterId, EdgeWeights> weights;
  for (const auto& [cid, csg] : csgs) {
    weights[cid] = CsgEdgeWeights(csg, fcts, db.size());
  }

  std::map<size_t, size_t> per_size_count;
  size_t max_per_size = config.budget.MaxPerSize();
  std::set<std::string> selected_signatures;

  while (selected.size() < config.budget.gamma) {
    // Propose candidates from every csg and every size with quota left.
    struct Candidate {
      Graph graph;
      double score = 0.0;
    };
    std::vector<Candidate> candidates;
    std::set<std::string> proposed;

    for (const auto& [cid, csg] : csgs) {
      if (csg.NumLiveEdges() == 0) continue;
      EdgeWeights traversals =
          WalkTraversals(csg, weights[cid], config.walk, rng);
      for (size_t eta = config.budget.eta_min; eta <= config.budget.eta_max;
           ++eta) {
        if (per_size_count[eta] >= max_per_size) continue;
        std::vector<Graph> proposals;
        if (config.use_pcp_library) {
          // Library flow: PCPs deduped by isomorphism, ranked by traversal
          // mass; FCPs are the library heads.
          for (Pcp& pcp :
               BuildPcpLibrary(csg, traversals, eta,
                               config.pcp_library_size)) {
            proposals.push_back(std::move(pcp.pattern));
            if (proposals.size() >= config.pcp_starts) break;
          }
        } else {
          for (size_t rank = 0; rank < config.pcp_starts; ++rank) {
            proposals.push_back(ExtractCandidate(
                csg, traversals, eta, rank, nullptr,
                config.coherent_extraction));
          }
        }
        for (Graph& g : proposals) {
          if (g.NumEdges() != eta) continue;  // partial growth: wrong bucket
          std::string sig = GraphSignature(g);
          if (selected_signatures.count(sig) > 0 ||
              !proposed.insert(sig).second) {
            continue;
          }
          candidates.push_back({std::move(g), 0.0});
        }
      }
    }
    if (candidates.empty()) break;

    // Score with Definition 2.1. Each candidate's score reads only shared
    // immutable state (csgs, fcts, the selected set so far), so the scoring
    // pass fans out over the pool.
    ParallelFor(config.pool, candidates.size(), [&](size_t i) {
      Candidate& c = candidates[i];
      double ccov = ClusterCoverage(c.graph, csgs, db.size());
      double lcov = eval.LabelCoverageOf(c.graph, fcts);
      double div = FastDiversity(c.graph, selected);
      double cog = c.graph.CognitiveLoad();
      c.score = cog > 0.0 ? ccov * lcov * div / cog : 0.0;
    });
    auto best = std::max_element(
        candidates.begin(), candidates.end(),
        [](const Candidate& a, const Candidate& b) { return a.score < b.score; });
    if (best->score <= 0.0) break;  // nothing useful left

    CannedPattern pattern;
    pattern.graph = best->graph;
    RefreshPatternMetrics(pattern, eval, fcts);
    size_t eta = pattern.graph.NumEdges();
    selected_signatures.insert(GraphSignature(pattern.graph));
    selected.Add(std::move(pattern));
    ++per_size_count[eta];

    for (auto& [cid, w] : weights) {
      MultiplicativeWeightsUpdate(csgs.at(cid), best->graph, w,
                                  config.weight_decay);
    }
  }

  RefreshDiversityAndScores(selected, GedFeatureTrees(fcts), config.pool);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) {
    reg.GetCounter("midas_select_runs_total")->Increment();
    reg.GetCounter("midas_select_patterns_selected_total")
        ->Increment(selected.size());
  }
  return selected;
}

}  // namespace midas
