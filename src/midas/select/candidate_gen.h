#ifndef MIDAS_SELECT_CANDIDATE_GEN_H_
#define MIDAS_SELECT_CANDIDATE_GEN_H_

#include <map>
#include <vector>

#include "midas/cluster/csg.h"
#include "midas/select/catapult.h"

namespace midas {

/// MIDAS pruning-based candidate generation (Section 5.2).
///
/// Unlike CATAPULT, candidate growth exploits knowledge of the existing
/// canned pattern set: before an edge e is appended to a partially built
/// final candidate pattern (FCP), its *marginal* subgraph coverage
/// |G_scov(e) \ ∪_p G_scov(p)| is checked against Equation 2; growth stops
/// early when e cannot help the candidate beat the weakest existing pattern.
/// G_scov(e) is read from the edge-occurrence lists — exactly the rows the
/// TG-/EG-matrices hold for single-edge features — so the check costs one
/// set difference.
struct CandidateGenConfig {
  PatternBudget budget;
  WalkConfig walk;
  double kappa = 0.1;        ///< swapping threshold κ of Equation 2
  size_t pcp_starts = 2;     ///< start ranks per (csg, size)
  size_t max_candidates = 256;
  /// Ablation knobs: disable Equation 2's coverage-based pruning, or the
  /// coherent-extraction constraint (see random_walk.h).
  bool enable_pruning = true;
  bool coherent_extraction = true;

  /// Optional task pool (non-owning; nullptr = serial). The random walks
  /// stay sequential (they share the caller's Rng); the per-(csg, size,
  /// rank) candidate extractions fan out, then dedup runs serially in the
  /// same order as the serial path — thread-count-invariant output.
  TaskPool* pool = nullptr;
};

/// Generates candidate patterns from the given (affected) CSGs.
/// `universe` is the coverage-evaluation universe (sampled database) the
/// existing patterns' coverage sets were computed against.
std::vector<Graph> GeneratePromisingCandidates(
    const GraphDatabase& db, const FctSet& fcts,
    const std::map<ClusterId, Csg>& csgs, const PatternSet& existing,
    const IdSet& universe, const CandidateGenConfig& config, Rng& rng);

}  // namespace midas

#endif  // MIDAS_SELECT_CANDIDATE_GEN_H_
