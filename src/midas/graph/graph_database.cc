#include "midas/graph/graph_database.h"

#include <algorithm>

namespace midas {

GraphId GraphDatabase::Insert(Graph g) {
  GraphId id = next_id_++;
  graphs_.emplace(id, std::move(g));
  return id;
}

bool GraphDatabase::InsertWithId(GraphId id, Graph g) {
  if (!graphs_.emplace(id, std::move(g)).second) return false;
  if (id >= next_id_) next_id_ = id + 1;
  return true;
}

void GraphDatabase::RestoreNextId(GraphId next) {
  next_id_ = std::max(next_id_, next);
}

bool GraphDatabase::Remove(GraphId id) { return graphs_.erase(id) > 0; }

std::vector<GraphId> GraphDatabase::ApplyBatch(const BatchUpdate& delta) {
  for (GraphId id : delta.deletions) Remove(id);
  std::vector<GraphId> inserted;
  inserted.reserve(delta.insertions.size());
  for (const Graph& g : delta.insertions) inserted.push_back(Insert(g));
  return inserted;
}

const Graph* GraphDatabase::Find(GraphId id) const {
  auto it = graphs_.find(id);
  return it == graphs_.end() ? nullptr : &it->second;
}

std::vector<GraphId> GraphDatabase::Ids() const {
  std::vector<GraphId> ids;
  ids.reserve(graphs_.size());
  for (const auto& [id, g] : graphs_) ids.push_back(id);
  return ids;
}

size_t GraphDatabase::TotalEdges() const {
  size_t n = 0;
  for (const auto& [id, g] : graphs_) n += g.NumEdges();
  return n;
}

size_t GraphDatabase::MaxGraphEdges() const {
  size_t n = 0;
  for (const auto& [id, g] : graphs_) n = std::max(n, g.NumEdges());
  return n;
}

}  // namespace midas
