#include "midas/graph/graph_database.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace midas {

namespace {

uint64_t NextEpoch() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

GraphDatabase::GraphDatabase() : epoch_(NextEpoch()) {}

GraphDatabase::GraphDatabase(const GraphDatabase& other)
    : labels_(other.labels_),
      graphs_(other.graphs_),
      next_id_(other.next_id_),
      epoch_(NextEpoch()) {}

GraphDatabase& GraphDatabase::operator=(const GraphDatabase& other) {
  if (this != &other) {
    labels_ = other.labels_;
    graphs_ = other.graphs_;
    next_id_ = other.next_id_;
    epoch_ = NextEpoch();
  }
  return *this;
}

GraphDatabase::GraphDatabase(GraphDatabase&& other) noexcept
    : labels_(std::move(other.labels_)),
      graphs_(std::move(other.graphs_)),
      next_id_(other.next_id_),
      epoch_(other.epoch_) {
  other.next_id_ = 0;
  other.epoch_ = NextEpoch();
}

GraphDatabase& GraphDatabase::operator=(GraphDatabase&& other) noexcept {
  if (this != &other) {
    labels_ = std::move(other.labels_);
    graphs_ = std::move(other.graphs_);
    next_id_ = other.next_id_;
    epoch_ = other.epoch_;
    other.next_id_ = 0;
    other.epoch_ = NextEpoch();
  }
  return *this;
}

GraphId GraphDatabase::Insert(Graph g) {
  GraphId id = next_id_++;
  graphs_.emplace(id, std::move(g));
  return id;
}

bool GraphDatabase::InsertWithId(GraphId id, Graph g) {
  if (!graphs_.emplace(id, std::move(g)).second) return false;
  if (id >= next_id_) {
    next_id_ = id + 1;
  } else {
    // Below the allocator's watermark this id may have existed before with
    // different content (snapshot restore into a reused instance); cached
    // containment verdicts for the old incarnation must stop matching.
    epoch_ = NextEpoch();
  }
  return true;
}

void GraphDatabase::RestoreNextId(GraphId next) {
  next_id_ = std::max(next_id_, next);
}

bool GraphDatabase::Remove(GraphId id) { return graphs_.erase(id) > 0; }

std::vector<GraphId> GraphDatabase::ApplyBatch(const BatchUpdate& delta) {
  for (GraphId id : delta.deletions) Remove(id);
  std::vector<GraphId> inserted;
  inserted.reserve(delta.insertions.size());
  for (const Graph& g : delta.insertions) inserted.push_back(Insert(g));
  return inserted;
}

const Graph* GraphDatabase::Find(GraphId id) const {
  auto it = graphs_.find(id);
  return it == graphs_.end() ? nullptr : &it->second;
}

std::vector<GraphId> GraphDatabase::Ids() const {
  std::vector<GraphId> ids;
  ids.reserve(graphs_.size());
  for (const auto& [id, g] : graphs_) ids.push_back(id);
  return ids;
}

size_t GraphDatabase::ApproxBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [id, g] : graphs_) {
    (void)id;
    bytes += sizeof(GraphId) + sizeof(Graph) + 48;  // std::map node overhead
    bytes += g.NumVertices() * (sizeof(Label) + sizeof(std::vector<VertexId>));
    bytes += 2 * g.NumEdges() * sizeof(VertexId);  // both adjacency rows
  }
  return bytes;
}

size_t GraphDatabase::TotalEdges() const {
  size_t n = 0;
  for (const auto& [id, g] : graphs_) n += g.NumEdges();
  return n;
}

size_t GraphDatabase::MaxGraphEdges() const {
  size_t n = 0;
  for (const auto& [id, g] : graphs_) n = std::max(n, g.NumEdges());
  return n;
}

}  // namespace midas
