#include "midas/graph/canonical.h"

#include <algorithm>
#include <functional>
#include <sstream>

namespace midas {

std::vector<VertexId> TreeCenters(const Graph& tree) {
  size_t n = tree.NumVertices();
  if (n == 0) return {};
  if (n == 1) return {0};
  std::vector<size_t> degree(n);
  std::vector<VertexId> leaves;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = tree.Degree(v);
    if (degree[v] <= 1) leaves.push_back(v);
  }
  size_t remaining = n;
  std::vector<VertexId> frontier = leaves;
  std::vector<bool> removed(n, false);
  while (remaining > 2) {
    std::vector<VertexId> next;
    for (VertexId leaf : frontier) {
      removed[leaf] = true;
      --remaining;
      for (VertexId w : tree.Neighbors(leaf)) {
        if (removed[w]) continue;
        if (--degree[w] == 1) next.push_back(w);
      }
    }
    frontier = std::move(next);
  }
  std::vector<VertexId> centers;
  for (VertexId v = 0; v < n; ++v) {
    if (!removed[v]) centers.push_back(v);
  }
  return centers;
}

namespace {

// AHU encoding of the subtree rooted at v (parent excluded).
std::string EncodeRooted(const Graph& tree, VertexId v, VertexId parent) {
  std::vector<std::string> children;
  for (VertexId w : tree.Neighbors(v)) {
    if (w == parent) continue;
    children.push_back(EncodeRooted(tree, w, v));
  }
  std::sort(children.begin(), children.end());
  std::string out = std::to_string(tree.label(v));
  if (!children.empty()) {
    // '$' separates sibling encodings (as in the paper's canonical strings);
    // without it, multi-digit labels would make the encoding ambiguous.
    out += "(";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += "$";
      out += children[i];
    }
    out += ")";
  }
  return out;
}

}  // namespace

std::string CanonicalTreeString(const Graph& tree) {
  if (tree.NumVertices() == 0) return "";
  std::vector<VertexId> centers = TreeCenters(tree);
  std::string best;
  for (VertexId c : centers) {
    std::string enc =
        EncodeRooted(tree, c, static_cast<VertexId>(-1));
    if (best.empty() || enc < best) best = enc;
  }
  return best;
}

std::vector<uint32_t> CanonicalTreeTokens(const Graph& tree) {
  std::string s = CanonicalTreeString(tree);
  std::vector<uint32_t> tokens;
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '(') {
      tokens.push_back(0);
      ++i;
    } else if (s[i] == ')') {
      tokens.push_back(1);
      ++i;
    } else if (s[i] == '$') {
      tokens.push_back(2);
      ++i;
    } else {
      uint32_t value = 0;
      while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
        value = value * 10 + static_cast<uint32_t>(s[i] - '0');
        ++i;
      }
      tokens.push_back(value + 3);
    }
  }
  return tokens;
}

std::string GraphSignature(const Graph& g) {
  size_t n = g.NumVertices();
  // Initial color = vertex label.
  std::vector<uint64_t> color(n);
  for (VertexId v = 0; v < n; ++v) color[v] = g.label(v);

  for (int round = 0; round < 2; ++round) {
    std::vector<uint64_t> next(n);
    for (VertexId v = 0; v < n; ++v) {
      std::vector<uint64_t> neigh;
      neigh.reserve(g.Degree(v));
      for (VertexId w : g.Neighbors(v)) neigh.push_back(color[w]);
      std::sort(neigh.begin(), neigh.end());
      uint64_t h = color[v] * 1099511628211ULL + 14695981039346656037ULL;
      for (uint64_t c : neigh) h = (h ^ c) * 1099511628211ULL;
      next[v] = h;
    }
    color = std::move(next);
  }

  std::vector<uint64_t> sorted_colors = color;
  std::sort(sorted_colors.begin(), sorted_colors.end());
  std::ostringstream out;
  out << n << ":" << g.NumEdges() << ":";
  for (uint64_t c : sorted_colors) out << std::hex << c << ",";
  return out.str();
}

}  // namespace midas
