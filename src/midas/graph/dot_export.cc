#include "midas/graph/dot_export.h"

#include <ostream>
#include <sstream>

namespace midas {

std::string DotColorFor(const std::string& label_name) {
  // CPK-inspired colors for the common atoms; hashed pastels otherwise.
  if (label_name == "C") return "#909090";
  if (label_name == "O") return "#ff4444";
  if (label_name == "N") return "#4466ff";
  if (label_name == "H") return "#eeeeee";
  if (label_name == "S") return "#e6c200";
  if (label_name == "P") return "#ff8c00";
  if (label_name == "Cl") return "#22cc22";
  if (label_name == "B") return "#ffb5b5";
  static const char* kPalette[] = {"#c0a0e0", "#a0e0c0", "#e0c0a0",
                                   "#a0c0e0", "#e0a0c0", "#c0e0a0"};
  size_t h = 0;
  for (char c : label_name) h = h * 131 + static_cast<unsigned char>(c);
  return kPalette[h % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

void WriteDot(const Graph& g, const LabelDictionary& dict,
              const std::string& name, std::ostream& out) {
  out << "graph " << name << " {\n"
      << "  node [shape=circle, style=filled, fontsize=11];\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::string label = dict.Name(g.label(v));
    out << "  n" << v << " [label=\"" << label << "\", fillcolor=\""
        << DotColorFor(label) << "\"];\n";
  }
  for (const auto& [u, v] : g.Edges()) {
    out << "  n" << u << " -- n" << v << ";\n";
  }
  out << "}\n";
}

std::string ToDot(const Graph& g, const LabelDictionary& dict,
                  const std::string& name) {
  std::ostringstream out;
  WriteDot(g, dict, name, out);
  return out.str();
}

}  // namespace midas
