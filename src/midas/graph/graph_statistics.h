#ifndef MIDAS_GRAPH_GRAPH_STATISTICS_H_
#define MIDAS_GRAPH_GRAPH_STATISTICS_H_

#include <iosfwd>
#include <map>
#include <string>

#include "midas/graph/graph_database.h"

namespace midas {

/// Descriptive statistics of a graph database — the profile report a
/// deployment inspects before picking sup_min, the pattern budget, and the
/// cluster count (and the `midas_cli stats` command).
struct DatabaseStatistics {
  size_t num_graphs = 0;
  size_t total_vertices = 0;
  size_t total_edges = 0;
  double mean_vertices = 0.0;
  double mean_edges = 0.0;
  size_t max_vertices = 0;
  size_t max_edges = 0;
  double mean_density = 0.0;
  double mean_degree = 0.0;
  size_t num_labels = 0;
  size_t num_edge_labels = 0;
  /// Vertex-label histogram (share of all vertices), descending.
  std::map<std::string, double> label_shares;
  /// Fraction of graphs containing each edge label, descending by share.
  std::map<std::string, double> edge_label_coverage;
};

/// Computes the full profile in one pass over the database.
DatabaseStatistics ComputeStatistics(const GraphDatabase& db);

/// Human-readable report (multi-line).
void PrintStatistics(const DatabaseStatistics& stats, std::ostream& out);

}  // namespace midas

#endif  // MIDAS_GRAPH_GRAPH_STATISTICS_H_
