#include "midas/graph/subgraph_iso.h"

#include <algorithm>
#include <functional>

#include "midas/obs/metrics.h"

namespace midas {
namespace {

constexpr VertexId kUnmapped = static_cast<VertexId>(-1);

// Handle bundle for the VF2 counters, revalidated against the current
// registry's id so ScopedMetricsRegistry swaps (tests) are honored without
// paying the name lookups on every Run.
struct IsoMetrics {
  uint64_t registry_id = 0;
  obs::Counter* runs = nullptr;
  obs::Counter* prechecked = nullptr;
  obs::Counter* nodes_visited = nullptr;
  obs::Counter* embeddings = nullptr;
  obs::Counter* early_exits = nullptr;
  obs::Counter* truncated = nullptr;
};

IsoMetrics* GetIsoMetrics(obs::MetricsRegistry& reg) {
  static thread_local IsoMetrics metrics;
  if (metrics.registry_id != reg.id()) {
    metrics.registry_id = reg.id();
    metrics.runs = reg.GetCounter("midas_graph_iso_runs_total");
    metrics.prechecked = reg.GetCounter("midas_graph_iso_prechecked_total");
    metrics.nodes_visited =
        reg.GetCounter("midas_graph_iso_nodes_visited_total");
    metrics.embeddings = reg.GetCounter("midas_graph_iso_embeddings_total");
    metrics.early_exits = reg.GetCounter("midas_graph_iso_early_exits_total");
    metrics.truncated = reg.GetCounter("midas_graph_iso_truncated_total");
  }
  return &metrics;
}

// Shared backtracking state for one (pattern, target) matching run.
class Vf2State {
 public:
  Vf2State(const Graph& pattern, const Graph& target,
           ExecBudget* budget = nullptr)
      : pattern_(pattern), target_(target), budget_(budget) {}

  /// True when the last Run() was cut short by budget exhaustion.
  bool truncated() const { return truncated_; }

  // Visits embeddings until `visit` returns false (stop) or the search space
  // is exhausted. `visit` receives the pattern->target mapping.
  void Run(const std::function<bool(const std::vector<VertexId>&)>& visit) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
    size_t np = pattern_.NumVertices();
    if (np == 0 || np > target_.NumVertices() ||
        pattern_.NumEdges() > target_.NumEdges()) {
      if (reg.enabled()) {
        IsoMetrics* m = GetIsoMetrics(reg);
        m->runs->Increment();
        m->prechecked->Increment();
      }
      return;
    }
    order_ = BuildOrder();
    mapping_.assign(np, kUnmapped);
    used_.assign(target_.NumVertices(), false);
    visit_ = &visit;
    stopped_ = false;
    truncated_ = false;
    nodes_visited_ = 0;
    embeddings_ = 0;
    Extend(0);
    visit_ = nullptr;
    // Counters accumulate locally during the search and flush once per run,
    // keeping the hot recursion free of atomic traffic.
    if (reg.enabled()) {
      IsoMetrics* m = GetIsoMetrics(reg);
      m->runs->Increment();
      m->nodes_visited->Increment(nodes_visited_);
      m->embeddings->Increment(embeddings_);
      if (stopped_) m->early_exits->Increment();
      if (truncated_) m->truncated->Increment();
    }
  }

 private:
  // Connectivity-first ordering: start at the highest-degree vertex with the
  // rarest label, then BFS-like expansion preferring vertices adjacent to
  // already-ordered ones with maximal mapped-degree.
  std::vector<VertexId> BuildOrder() const {
    size_t np = pattern_.NumVertices();
    std::vector<bool> placed(np, false);
    std::vector<VertexId> order;
    order.reserve(np);

    // Target label frequencies for rarity scoring.
    std::vector<size_t> label_freq;
    for (VertexId v = 0; v < target_.NumVertices(); ++v) {
      Label l = target_.label(v);
      if (l >= label_freq.size()) label_freq.resize(l + 1, 0);
      ++label_freq[l];
    }
    auto freq = [&](Label l) {
      return l < label_freq.size() ? label_freq[l] : 0;
    };

    while (order.size() < np) {
      int best = -1;
      size_t best_mapped_deg = 0;
      for (VertexId v = 0; v < np; ++v) {
        if (placed[v]) continue;
        size_t mapped_deg = 0;
        for (VertexId w : pattern_.Neighbors(v)) {
          if (placed[w]) ++mapped_deg;
        }
        bool better;
        if (best < 0) {
          better = true;
        } else if (mapped_deg != best_mapped_deg) {
          better = mapped_deg > best_mapped_deg;
        } else if (pattern_.Degree(v) !=
                   pattern_.Degree(static_cast<VertexId>(best))) {
          better =
              pattern_.Degree(v) > pattern_.Degree(static_cast<VertexId>(best));
        } else {
          better = freq(pattern_.label(v)) <
                   freq(pattern_.label(static_cast<VertexId>(best)));
        }
        if (better) {
          best = static_cast<int>(v);
          best_mapped_deg = mapped_deg;
        }
      }
      placed[best] = true;
      order.push_back(static_cast<VertexId>(best));
    }
    return order;
  }

  bool Feasible(VertexId pv, VertexId tv) const {
    if (used_[tv]) return false;
    if (pattern_.label(pv) != target_.label(tv)) return false;
    if (target_.Degree(tv) < pattern_.Degree(pv)) return false;
    // Every already-mapped pattern neighbor must be a target neighbor.
    for (VertexId pw : pattern_.Neighbors(pv)) {
      VertexId tw = mapping_[pw];
      if (tw != kUnmapped && !target_.HasEdge(tv, tw)) return false;
    }
    return true;
  }

  void Extend(size_t depth) {
    if (stopped_) return;
    if (depth == order_.size()) {
      ++embeddings_;
      if (!(*visit_)(mapping_)) stopped_ = true;
      return;
    }
    VertexId pv = order_[depth];

    // Candidate set: neighbors of an already-mapped pattern neighbor when one
    // exists (connected patterns always have one past depth 0), else all
    // target vertices.
    VertexId anchor = kUnmapped;
    for (VertexId pw : pattern_.Neighbors(pv)) {
      if (mapping_[pw] != kUnmapped) {
        anchor = mapping_[pw];
        break;
      }
    }
    if (anchor != kUnmapped) {
      for (VertexId tv : target_.Neighbors(anchor)) {
        if (Feasible(pv, tv)) {
          Assign(pv, tv, depth);
          if (stopped_) return;
        }
      }
    } else {
      for (VertexId tv = 0; tv < target_.NumVertices(); ++tv) {
        if (Feasible(pv, tv)) {
          Assign(pv, tv, depth);
          if (stopped_) return;
        }
      }
    }
  }

  void Assign(VertexId pv, VertexId tv, size_t depth) {
    ++nodes_visited_;
    // One budget step per candidate assignment: the unit every kernel
    // charges, so a shared per-round budget is comparable across kernels.
    if (!BudgetCharge(budget_)) {
      stopped_ = true;
      truncated_ = true;
      return;
    }
    mapping_[pv] = tv;
    used_[tv] = true;
    Extend(depth + 1);
    used_[tv] = false;
    mapping_[pv] = kUnmapped;
  }

  const Graph& pattern_;
  const Graph& target_;
  ExecBudget* budget_ = nullptr;  ///< non-owning; nullptr = unlimited
  std::vector<VertexId> order_;
  std::vector<VertexId> mapping_;
  std::vector<bool> used_;
  const std::function<bool(const std::vector<VertexId>&)>* visit_ = nullptr;
  bool stopped_ = false;
  bool truncated_ = false;
  uint64_t nodes_visited_ = 0;  ///< candidate assignments tried this run
  uint64_t embeddings_ = 0;     ///< complete mappings reported this run
};

}  // namespace

bool ContainsSubgraph(const Graph& pattern, const Graph& target) {
  return ContainsSubgraphBudgeted(pattern, target, nullptr).found;
}

IsoOutcome ContainsSubgraphBudgeted(const Graph& pattern, const Graph& target,
                                    ExecBudget* budget) {
  IsoOutcome outcome;
  if (pattern.NumVertices() == 0) {
    outcome.found = true;
    return outcome;
  }
  Vf2State state(pattern, target, budget);
  state.Run([&](const std::vector<VertexId>&) {
    outcome.found = true;
    return false;  // stop at first embedding
  });
  outcome.truncated = state.truncated();
  return outcome;
}

size_t CountEmbeddings(const Graph& pattern, const Graph& target, size_t cap) {
  return CountEmbeddingsBudgeted(pattern, target, cap, nullptr).count;
}

EmbeddingCountOutcome CountEmbeddingsBudgeted(const Graph& pattern,
                                              const Graph& target, size_t cap,
                                              ExecBudget* budget) {
  EmbeddingCountOutcome outcome;
  Vf2State state(pattern, target, budget);
  state.Run([&](const std::vector<VertexId>&) {
    ++outcome.count;
    return cap == 0 || outcome.count < cap;
  });
  outcome.truncated = state.truncated();
  return outcome;
}

std::vector<std::vector<VertexId>> FindEmbeddings(const Graph& pattern,
                                                  const Graph& target,
                                                  size_t max_results) {
  std::vector<std::vector<VertexId>> out;
  Vf2State state(pattern, target);
  state.Run([&](const std::vector<VertexId>& m) {
    out.push_back(m);
    return out.size() < max_results;
  });
  return out;
}

size_t CountEdgeEmbeddings(const EdgeLabelPair& lp, const Graph& g) {
  size_t count = 0;
  for (const auto& [u, v] : g.Edges()) {
    if (g.EdgeLabel(u, v) == lp) {
      count += (lp.first == lp.second) ? 2 : 1;
    }
  }
  return count;
}

bool AreIsomorphic(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  if (a.NumVertices() == 0) return true;
  // With equal vertex and edge counts, a non-induced embedding is a bijection
  // that maps all edges onto all edges, i.e., an isomorphism.
  return ContainsSubgraph(a, b);
}

}  // namespace midas
