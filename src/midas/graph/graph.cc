#include "midas/graph/graph.h"

#include <algorithm>
#include <set>

namespace midas {

Label LabelDictionary::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  Label id = static_cast<Label>(names_.size());
  names_.push_back(name);
  index_.emplace(name, id);
  return id;
}

int LabelDictionary::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

std::string LabelDictionary::Name(Label id) const {
  if (id < names_.size()) return names_[id];
  return "?" + std::to_string(id);
}

VertexId Graph::AddVertex(Label label) {
  labels_.push_back(label);
  adjacency_.emplace_back();
  return static_cast<VertexId>(labels_.size() - 1);
}

bool Graph::AddEdge(VertexId u, VertexId v) {
  if (u == v || u >= labels_.size() || v >= labels_.size()) return false;
  auto& nu = adjacency_[u];
  auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return false;
  nu.insert(it, v);
  auto& nv = adjacency_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++edge_count_;
  return true;
}

bool Graph::RemoveEdge(VertexId u, VertexId v) {
  if (u >= labels_.size() || v >= labels_.size()) return false;
  auto& nu = adjacency_[u];
  auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it == nu.end() || *it != v) return false;
  nu.erase(it);
  auto& nv = adjacency_[v];
  nv.erase(std::lower_bound(nv.begin(), nv.end(), u));
  --edge_count_;
  return true;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= labels_.size() || v >= labels_.size()) return false;
  const auto& nu = adjacency_[u];
  return std::binary_search(nu.begin(), nu.end(), v);
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(edge_count_);
  for (VertexId u = 0; u < labels_.size(); ++u) {
    for (VertexId v : adjacency_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::vector<EdgeLabelPair> Graph::DistinctEdgeLabels() const {
  std::set<EdgeLabelPair> seen;
  for (const auto& [u, v] : Edges()) seen.insert(EdgeLabel(u, v));
  return std::vector<EdgeLabelPair>(seen.begin(), seen.end());
}

bool Graph::IsConnected() const {
  if (labels_.empty()) return true;
  std::vector<bool> visited(labels_.size(), false);
  std::vector<VertexId> stack = {0};
  visited[0] = true;
  size_t reached = 1;
  while (!stack.empty()) {
    VertexId u = stack.back();
    stack.pop_back();
    for (VertexId v : adjacency_[u]) {
      if (!visited[v]) {
        visited[v] = true;
        ++reached;
        stack.push_back(v);
      }
    }
  }
  return reached == labels_.size();
}

bool Graph::IsTree() const {
  return !labels_.empty() && edge_count_ == labels_.size() - 1 &&
         IsConnected();
}

double Graph::Density() const {
  size_t n = labels_.size();
  if (n < 2) return 0.0;
  return 2.0 * static_cast<double>(edge_count_) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

double Graph::CognitiveLoad() const {
  return static_cast<double>(edge_count_) * Density();
}

Graph Graph::InducedSubgraph(const std::vector<VertexId>& keep) const {
  Graph sub;
  std::vector<int> remap(labels_.size(), -1);
  for (VertexId old_id : keep) {
    remap[old_id] = static_cast<int>(sub.AddVertex(labels_[old_id]));
  }
  for (VertexId old_u : keep) {
    for (VertexId old_v : adjacency_[old_u]) {
      if (old_u < old_v && remap[old_v] >= 0) {
        sub.AddEdge(static_cast<VertexId>(remap[old_u]),
                    static_cast<VertexId>(remap[old_v]));
      }
    }
  }
  return sub;
}

Graph Graph::Permuted(const std::vector<VertexId>& perm) const {
  Graph out;
  std::vector<Label> new_labels(labels_.size());
  for (VertexId v = 0; v < labels_.size(); ++v) new_labels[perm[v]] = labels_[v];
  for (Label l : new_labels) out.AddVertex(l);
  for (const auto& [u, v] : Edges()) out.AddEdge(perm[u], perm[v]);
  return out;
}

}  // namespace midas
