#ifndef MIDAS_GRAPH_GRAPH_DATABASE_H_
#define MIDAS_GRAPH_GRAPH_DATABASE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "midas/graph/graph.h"

namespace midas {

/// Stable id of a data graph within a GraphDatabase.
using GraphId = uint32_t;

/// A batch update ΔD: a set of graph insertions Δ⁺ and deletions Δ⁻
/// (Section 3.1). Databases of small data graphs evolve in such batches
/// (e.g., daily additions to PubChem).
struct BatchUpdate {
  std::vector<Graph> insertions;
  std::vector<GraphId> deletions;

  bool Empty() const { return insertions.empty() && deletions.empty(); }
};

/// A collection of small/medium data graphs with stable unique ids
/// (the graph database D of Section 2.1).
///
/// Ids are never reused; deletion leaves a hole. Iteration order is
/// ascending id, so all downstream computation is deterministic.
class GraphDatabase {
 public:
  GraphDatabase();
  /// Copies take a fresh epoch: the copy evolves independently, so cached
  /// facts about the original must not be read back for it.
  GraphDatabase(const GraphDatabase& other);
  GraphDatabase& operator=(const GraphDatabase& other);
  /// Moves carry the epoch (it is the same database continuing); the
  /// moved-from shell gets a fresh one in case it is ever refilled.
  GraphDatabase(GraphDatabase&& other) noexcept;
  GraphDatabase& operator=(GraphDatabase&& other) noexcept;

  /// Inserts a graph, returning its assigned id.
  GraphId Insert(Graph g);
  /// Inserts a graph under a caller-chosen id (snapshot/journal restore,
  /// where ids must survive a round trip). Returns false when the id is
  /// already taken. Advances the id allocator past `id`.
  bool InsertWithId(GraphId id, Graph g);
  /// Removes a graph; returns false if the id is absent.
  bool Remove(GraphId id);

  /// Applies a batch update; returns ids assigned to the insertions.
  std::vector<GraphId> ApplyBatch(const BatchUpdate& delta);

  const Graph* Find(GraphId id) const;
  bool Contains(GraphId id) const { return graphs_.count(id) > 0; }

  size_t size() const { return graphs_.size(); }
  bool empty() const { return graphs_.empty(); }

  /// All current graph ids in ascending order.
  std::vector<GraphId> Ids() const;

  /// Ascending-id iteration over (id, graph).
  const std::map<GraphId, Graph>& graphs() const { return graphs_; }

  LabelDictionary& labels() { return labels_; }
  const LabelDictionary& labels() const { return labels_; }

  /// Next id Insert() would assign. Persisted by snapshots so that journal
  /// replay after a restore reassigns the exact same insertion ids even when
  /// trailing deletions left holes above the largest live id.
  GraphId next_id() const { return next_id_; }
  /// Raises the id allocator to `next` (never lowers it).
  void RestoreNextId(GraphId next);

  /// Approximate resident bytes of the stored graphs (labels + adjacency +
  /// map node overhead). Consistency matters more than exactness: this is
  /// the memory watchdog's "database" component.
  size_t ApproxBytes() const;

  /// Total number of edges across all data graphs.
  size_t TotalEdges() const;
  /// Size |E_max| of the largest graph.
  size_t MaxGraphEdges() const;

  /// Process-unique instance epoch, the generation tag of the containment
  /// memo cache (graph/compute_cache.h). Graphs are immutable and ids are
  /// never reused within an instance, so a cached verdict keyed
  /// (pattern, epoch, id) stays valid across maintenance rounds; the epoch
  /// changes exactly when that invariant could break — on copy/restore and
  /// on an InsertWithId that may resurrect a previously deleted id.
  uint64_t epoch() const { return epoch_; }

 private:
  LabelDictionary labels_;
  std::map<GraphId, Graph> graphs_;
  GraphId next_id_ = 0;
  uint64_t epoch_ = 0;  // assigned in the constructors
};

}  // namespace midas

#endif  // MIDAS_GRAPH_GRAPH_DATABASE_H_
