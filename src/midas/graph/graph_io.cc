#include "midas/graph/graph_io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace midas {

void WriteGraph(const Graph& g, const LabelDictionary& dict, long id,
                std::ostream& out) {
  out << "t # " << id << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out << "v " << v << " " << dict.Name(g.label(v)) << "\n";
  }
  for (const auto& [u, v] : g.Edges()) {
    out << "e " << u << " " << v << "\n";
  }
}

void WriteDatabase(const GraphDatabase& db, std::ostream& out) {
  for (const auto& [id, g] : db.graphs()) {
    WriteGraph(g, db.labels(), static_cast<long>(id), out);
  }
}

namespace {

bool ParseFail(std::string* error, size_t line_no, const std::string& what) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + what;
  }
  return false;
}

}  // namespace

bool ReadDatabase(std::istream& in, GraphDatabase* db,
                  const GspanReadOptions& options, std::string* error) {
  std::string line;
  size_t line_no = 0;
  Graph current;
  long current_id = 0;
  bool have_graph = false;
  auto flush = [&]() {
    if (!have_graph) return true;
    if (options.preserve_ids) {
      return db->InsertWithId(static_cast<GraphId>(current_id),
                              std::move(current));
    }
    db->Insert(std::move(current));
    return true;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 't') {
      if (!flush()) {
        return ParseFail(error, line_no,
                         "duplicate graph id " + std::to_string(current_id));
      }
      current = Graph();
      have_graph = true;
      current_id = 0;
      char hash = 0;
      if (!(ls >> hash >> current_id) || hash != '#' || current_id < 0) {
        if (options.preserve_ids) {
          return ParseFail(error, line_no,
                           "malformed graph header (want 't # <id>'): " +
                               line);
        }
        current_id = 0;  // ids are ignored; tolerate datasets without them
      }
    } else if (tag == 'v') {
      if (!have_graph) {
        return ParseFail(error, line_no, "vertex record before any 't' line");
      }
      long idx = -1;
      std::string label;
      if (!(ls >> idx >> label)) {
        return ParseFail(error, line_no,
                         "malformed vertex record (want 'v <idx> <label>'): " +
                             line);
      }
      if (idx != static_cast<long>(current.NumVertices())) {
        return ParseFail(
            error, line_no,
            "vertex index " + std::to_string(idx) +
                " out of order (vertex indices must be dense and ascending; "
                "expected " +
                std::to_string(current.NumVertices()) + ")");
      }
      current.AddVertex(db->labels().Intern(label));
    } else if (tag == 'e') {
      if (!have_graph) {
        return ParseFail(error, line_no, "edge record before any 't' line");
      }
      long u = -1;
      long v = -1;
      if (!(ls >> u >> v)) {
        return ParseFail(error, line_no,
                         "malformed edge record (want 'e <u> <v>'): " + line);
      }
      long n = static_cast<long>(current.NumVertices());
      if (u < 0 || v < 0 || u >= n || v >= n) {
        return ParseFail(error, line_no,
                         "edge endpoint out of range: e " + std::to_string(u) +
                             " " + std::to_string(v) + " with " +
                             std::to_string(n) + " vertices declared");
      }
      if (u == v) {
        return ParseFail(error, line_no,
                         "self-loop edge " + std::to_string(u) + "-" +
                             std::to_string(v) +
                             " (graphs are simple; Section 2.1)");
      }
      if (!current.AddEdge(static_cast<VertexId>(u),
                           static_cast<VertexId>(v))) {
        return ParseFail(error, line_no,
                         "duplicate edge " + std::to_string(u) + "-" +
                             std::to_string(v));
      }
    } else {
      return ParseFail(error, line_no,
                       std::string("unknown record tag '") + tag + "': " +
                           line);
    }
  }
  ++line_no;
  if (!flush()) {
    return ParseFail(error, line_no,
                     "duplicate graph id " + std::to_string(current_id));
  }
  return true;
}

bool ReadDatabase(std::istream& in, GraphDatabase* db, std::string* error) {
  return ReadDatabase(in, db, GspanReadOptions{}, error);
}

bool ReadDatabase(std::istream& in, GraphDatabase* db) {
  return ReadDatabase(in, db, GspanReadOptions{}, nullptr);
}

std::string ToString(const Graph& g, const LabelDictionary& dict) {
  std::ostringstream out;
  WriteGraph(g, dict, 0, out);
  return out.str();
}

Graph RemapLabels(const Graph& g, const LabelDictionary& from,
                  LabelDictionary& to) {
  Graph out;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out.AddVertex(to.Intern(from.Name(g.label(v))));
  }
  for (const auto& [u, v] : g.Edges()) out.AddEdge(u, v);
  return out;
}

}  // namespace midas
