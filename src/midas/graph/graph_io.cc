#include "midas/graph/graph_io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace midas {

void WriteGraph(const Graph& g, const LabelDictionary& dict, long id,
                std::ostream& out) {
  out << "t # " << id << "\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out << "v " << v << " " << dict.Name(g.label(v)) << "\n";
  }
  for (const auto& [u, v] : g.Edges()) {
    out << "e " << u << " " << v << "\n";
  }
}

void WriteDatabase(const GraphDatabase& db, std::ostream& out) {
  for (const auto& [id, g] : db.graphs()) {
    WriteGraph(g, db.labels(), static_cast<long>(id), out);
  }
}

bool ReadDatabase(std::istream& in, GraphDatabase* db) {
  std::string line;
  Graph current;
  bool have_graph = false;
  auto flush = [&]() {
    if (have_graph) db->Insert(std::move(current));
    current = Graph();
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 't') {
      flush();
      have_graph = true;
    } else if (tag == 'v') {
      size_t idx = 0;
      std::string label;
      if (!(ls >> idx >> label)) return false;
      if (idx != current.NumVertices()) return false;  // must be dense
      current.AddVertex(db->labels().Intern(label));
    } else if (tag == 'e') {
      VertexId u = 0;
      VertexId v = 0;
      if (!(ls >> u >> v)) return false;
      if (!current.AddEdge(u, v)) return false;
    } else {
      return false;
    }
  }
  flush();
  return true;
}

std::string ToString(const Graph& g, const LabelDictionary& dict) {
  std::ostringstream out;
  WriteGraph(g, dict, 0, out);
  return out.str();
}

Graph RemapLabels(const Graph& g, const LabelDictionary& from,
                  LabelDictionary& to) {
  Graph out;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out.AddVertex(to.Intern(from.Name(g.label(v))));
  }
  for (const auto& [u, v] : g.Edges()) out.AddEdge(u, v);
  return out;
}

}  // namespace midas
