#include "midas/graph/ged.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <numeric>
#include <vector>

#include "midas/obs/metrics.h"

namespace midas {
namespace {

constexpr int kDeleted = -1;
constexpr int kUnset = -2;

// Cached counter handles for GedExact, revalidated by registry id (see
// IsoMetrics in subgraph_iso.cc for the rationale).
struct GedMetrics {
  uint64_t registry_id = 0;
  obs::Counter* calls = nullptr;
  obs::Counter* nodes_expanded = nullptr;
  obs::Counter* bound_prunes = nullptr;
  obs::Counter* truncated = nullptr;
};

GedMetrics* GetGedMetrics(obs::MetricsRegistry& reg) {
  static thread_local GedMetrics metrics;
  if (metrics.registry_id != reg.id()) {
    metrics.registry_id = reg.id();
    metrics.calls = reg.GetCounter("midas_graph_ged_exact_calls_total");
    metrics.nodes_expanded =
        reg.GetCounter("midas_graph_ged_nodes_expanded_total");
    metrics.bound_prunes =
        reg.GetCounter("midas_graph_ged_bound_prunes_total");
    metrics.truncated = reg.GetCounter("midas_graph_ged_truncated_total");
  }
  return &metrics;
}

// DFS branch & bound over assignments of A-vertices to B-vertices (or
// deletion). Edge costs are charged incrementally as both endpoints become
// decided; B-side insertions for unmatched vertices/edges are added at the
// leaves.
class GedSearch {
 public:
  GedSearch(const Graph& a, const Graph& b, int limit,
            ExecBudget* budget = nullptr)
      : a_(a), b_(b), best_(limit), budget_(budget) {}

  /// True when Run() unwound early on budget exhaustion; best_ then holds
  /// the incumbent (an upper bound), not a proven optimum.
  bool truncated() const { return truncated_; }

  int Run() {
    size_t na = a_.NumVertices();
    order_.resize(na);
    std::iota(order_.begin(), order_.end(), 0);
    // High-degree vertices first: decides expensive edges early.
    std::sort(order_.begin(), order_.end(), [&](VertexId x, VertexId y) {
      return a_.Degree(x) > a_.Degree(y);
    });
    assign_.assign(na, kUnset);
    used_.assign(b_.NumVertices(), false);
    Extend(0, 0);
    return best_;
  }

 private:
  // Admissible remaining-cost bound: vertex count imbalance.
  int RemainingBound(size_t depth, size_t used_count) const {
    int rem_a = static_cast<int>(order_.size() - depth);
    int rem_b = static_cast<int>(b_.NumVertices() - used_count);
    return std::abs(rem_a - rem_b);
  }

  // Cost of deciding vertex u (mapped to v, or kDeleted) against all
  // previously decided A-vertices.
  int EdgeCost(VertexId u, int v, size_t depth) const {
    int cost = 0;
    for (size_t i = 0; i < depth; ++i) {
      VertexId w = order_[i];
      int x = assign_[w];
      bool a_edge = a_.HasEdge(u, w);
      if (v == kDeleted || x == kDeleted) {
        if (a_edge) ++cost;  // incident A-edge must be deleted
        continue;
      }
      bool b_edge = b_.HasEdge(static_cast<VertexId>(v),
                               static_cast<VertexId>(x));
      if (a_edge != b_edge) ++cost;  // delete or insert one edge
    }
    return cost;
  }

  void Extend(size_t depth, int cost) {
    if (truncated_) return;
    if (cost + RemainingBound(depth, used_count_) >= best_) {
      ++bound_prunes_;
      return;
    }
    // One budget step per node expanded — the same unit VF2 charges per
    // candidate assignment, so a shared round budget is kernel-comparable.
    if (!BudgetCharge(budget_)) {
      truncated_ = true;
      return;
    }
    ++nodes_expanded_;
    if (depth == order_.size()) {
      Finish(cost);
      return;
    }
    VertexId u = order_[depth];
    for (VertexId v = 0; v < b_.NumVertices(); ++v) {
      if (used_[v]) continue;
      int step = (a_.label(u) != b_.label(v) ? 1 : 0) +
                 EdgeCost(u, static_cast<int>(v), depth);
      if (cost + step >= best_) continue;
      assign_[u] = static_cast<int>(v);
      used_[v] = true;
      ++used_count_;
      Extend(depth + 1, cost + step);
      --used_count_;
      used_[v] = false;
      assign_[u] = kUnset;
      if (truncated_) return;
    }
    // Delete u.
    int step = 1 + EdgeCost(u, kDeleted, depth);
    if (cost + step < best_) {
      assign_[u] = kDeleted;
      Extend(depth + 1, cost + step);
      assign_[u] = kUnset;
    }
  }

  void Finish(int cost) {
    // Unmatched B vertices are insertions; B edges with an unmatched endpoint
    // are insertions (edges between two matched B vertices were already
    // charged when the second endpoint was decided).
    int extra = static_cast<int>(b_.NumVertices() - used_count_);
    for (const auto& [x, y] : b_.Edges()) {
      if (!used_[x] || !used_[y]) ++extra;
    }
    best_ = std::min(best_, cost + extra);
  }

  const Graph& a_;
  const Graph& b_;
  std::vector<VertexId> order_;
  std::vector<int> assign_;
  std::vector<bool> used_;
  size_t used_count_ = 0;
  int best_;
  ExecBudget* budget_ = nullptr;  ///< non-owning; nullptr = unlimited
  bool truncated_ = false;

 public:
  uint64_t nodes_expanded_ = 0;  ///< search-tree nodes entered
  uint64_t bound_prunes_ = 0;    ///< subtrees cut by the admissible bound
};

}  // namespace

int GedExact(const Graph& a, const Graph& b, int cost_limit) {
  return GedExactBudgeted(a, b, cost_limit, nullptr).distance;
}

GedOutcome GedExactBudgeted(const Graph& a, const Graph& b, int cost_limit,
                            ExecBudget* budget) {
  // Seed the branch & bound with the greedy upper bound: the search only
  // has to find strictly better solutions (or confirm none exist). The
  // seed also makes the search anytime — whenever the budget runs out, the
  // incumbent (at worst the greedy bound) is still an achievable distance.
  int ub = GedUpperBound(a, b);
  int limit = std::min(cost_limit, ub + 1);
  GedSearch search(a, b, limit, budget);
  int d = std::min(search.Run(), ub);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) {
    GedMetrics* m = GetGedMetrics(reg);
    m->calls->Increment();
    m->nodes_expanded->Increment(search.nodes_expanded_);
    m->bound_prunes->Increment(search.bound_prunes_);
    if (search.truncated()) m->truncated->Increment();
  }
  GedOutcome outcome;
  outcome.distance = std::min(d, cost_limit);
  outcome.truncated = search.truncated();
  return outcome;
}

int GedLowerBound(const Graph& a, const Graph& b) {
  std::map<Label, int> la;
  std::map<Label, int> lb;
  for (VertexId v = 0; v < a.NumVertices(); ++v) ++la[a.label(v)];
  for (VertexId v = 0; v < b.NumVertices(); ++v) ++lb[b.label(v)];
  // |L(V_A) ∩ L(V_B)| as multiset intersection (tighter than set
  // intersection and still a valid lower bound on preservable vertices).
  int common = 0;
  for (const auto& [label, ca] : la) {
    auto it = lb.find(label);
    if (it != lb.end()) common += std::min(ca, it->second);
  }
  int va = static_cast<int>(a.NumVertices());
  int vb = static_cast<int>(b.NumVertices());
  int v_part = std::abs(va - vb) + (std::min(va, vb) - common);
  int e_part =
      std::abs(static_cast<int>(a.NumEdges()) - static_cast<int>(b.NumEdges()));
  return v_part + e_part;
}

int GedTightLowerBound(const Graph& a, const Graph& b, int relaxed_edges) {
  return GedLowerBound(a, b) + std::max(0, relaxed_edges);
}

int GedUpperBound(const Graph& a, const Graph& b) {
  // Greedy label-first alignment (mirrors closure_graph's GreedyAlign but
  // also permits relabel matches when no same-label vertex is free).
  size_t na = a.NumVertices();
  size_t nb = b.NumVertices();
  std::vector<int> map_a(na, -1);
  std::vector<bool> used_b(nb, false);

  std::vector<VertexId> order(na);
  for (size_t i = 0; i < na; ++i) order[i] = static_cast<VertexId>(i);
  std::sort(order.begin(), order.end(), [&](VertexId x, VertexId y) {
    return a.Degree(x) > a.Degree(y);
  });

  for (VertexId v : order) {
    int best = -1;
    int best_score = -1;
    for (VertexId t = 0; t < nb; ++t) {
      if (used_b[t]) continue;
      int score = a.label(v) == b.label(t) ? 2 : 0;
      for (VertexId w : a.Neighbors(v)) {
        if (map_a[w] >= 0 && b.HasEdge(t, static_cast<VertexId>(map_a[w]))) {
          score += 2;
        }
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(t);
      }
    }
    if (best >= 0) {
      map_a[v] = best;
      used_b[static_cast<size_t>(best)] = true;
    }
  }

  // Price the edit script induced by the alignment.
  int cost = 0;
  size_t mapped = 0;
  for (VertexId v = 0; v < na; ++v) {
    if (map_a[v] < 0) {
      ++cost;  // delete vertex
    } else {
      ++mapped;
      if (a.label(v) != b.label(static_cast<VertexId>(map_a[v]))) {
        ++cost;  // relabel
      }
    }
  }
  cost += static_cast<int>(nb - mapped);  // insert unmatched b vertices
  // Edges of a: preserved iff both endpoints mapped onto a b-edge.
  size_t preserved = 0;
  for (const auto& [u, v] : a.Edges()) {
    if (map_a[u] >= 0 && map_a[v] >= 0 &&
        b.HasEdge(static_cast<VertexId>(map_a[u]),
                  static_cast<VertexId>(map_a[v]))) {
      ++preserved;
    }
  }
  cost += static_cast<int>(a.NumEdges() - preserved);  // deletions
  cost += static_cast<int>(b.NumEdges() - preserved);  // insertions
  return cost;
}

}  // namespace midas
