#ifndef MIDAS_GRAPH_GRAPH_H_
#define MIDAS_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace midas {

/// Numeric vertex-label id (interned via LabelDictionary).
using Label = uint32_t;
/// Vertex index within one graph (dense, 0-based).
using VertexId = uint32_t;

/// Unordered label pair identifying an edge "label" l(e) = l(u).l(v)
/// (Section 2.1). Stored canonically with first <= second.
struct EdgeLabelPair {
  Label first = 0;
  Label second = 0;

  EdgeLabelPair() = default;
  EdgeLabelPair(Label a, Label b)
      : first(a < b ? a : b), second(a < b ? b : a) {}

  bool operator==(const EdgeLabelPair& o) const {
    return first == o.first && second == o.second;
  }
  bool operator<(const EdgeLabelPair& o) const {
    return first != o.first ? first < o.first : second < o.second;
  }
  /// Packs both labels into one 64-bit key (for hashing / map keys).
  uint64_t Packed() const {
    return (static_cast<uint64_t>(first) << 32) | second;
  }
};

struct EdgeLabelPairHash {
  size_t operator()(const EdgeLabelPair& p) const {
    return std::hash<uint64_t>()(p.Packed());
  }
};

/// Bidirectional mapping between human-readable label strings (atom symbols
/// like "C", "O", "N" in the chemistry use case) and dense numeric ids.
/// One dictionary is shared per GraphDatabase.
class LabelDictionary {
 public:
  /// Returns the id for name, interning it on first use.
  Label Intern(const std::string& name);
  /// Returns the id if interned, or -1.
  int Lookup(const std::string& name) const;
  /// Name for an id; "?<id>" if unknown.
  std::string Name(Label id) const;
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, Label> index_;
  std::vector<std::string> names_;
};

/// An undirected simple graph with labeled vertices (Section 2.1).
///
/// Data graphs, canned patterns, queries, mined trees and cluster summary
/// graph skeletons all use this type. Vertices are dense 0-based indices;
/// neighbor lists are kept sorted so containment checks are O(log deg).
/// Following the paper, |G| denotes the number of edges.
class Graph {
 public:
  Graph() = default;

  /// Adds a vertex with the given label; returns its id.
  VertexId AddVertex(Label label);
  /// Adds undirected edge {u, v}. Returns false for self-loops, duplicate
  /// edges or out-of-range endpoints.
  bool AddEdge(VertexId u, VertexId v);
  /// Removes undirected edge {u, v}; returns false if absent.
  bool RemoveEdge(VertexId u, VertexId v);

  bool HasEdge(VertexId u, VertexId v) const;

  size_t NumVertices() const { return labels_.size(); }
  size_t NumEdges() const { return edge_count_; }
  /// Paper convention: |G| = |E|.
  size_t Size() const { return edge_count_; }

  Label label(VertexId v) const { return labels_[v]; }
  void set_label(VertexId v, Label l) { labels_[v] = l; }
  size_t Degree(VertexId v) const { return adjacency_[v].size(); }
  const std::vector<VertexId>& Neighbors(VertexId v) const {
    return adjacency_[v];
  }

  /// Edge label l(e) for an existing edge (u, v).
  EdgeLabelPair EdgeLabel(VertexId u, VertexId v) const {
    return EdgeLabelPair(labels_[u], labels_[v]);
  }

  /// All edges as (u, v) pairs with u < v, in ascending order.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// Multiset of distinct edge label pairs present in the graph.
  std::vector<EdgeLabelPair> DistinctEdgeLabels() const;

  bool IsConnected() const;
  /// Connected and |E| = |V| - 1.
  bool IsTree() const;

  /// Graph density rho = 2|E| / (|V|(|V|-1)); 0 for graphs with < 2 vertices.
  double Density() const;

  /// Cognitive load cog(G) = |E| * rho (Section 2.2).
  double CognitiveLoad() const;

  /// Subgraph induced on `keep` (vertex ids into this graph); preserves all
  /// edges among kept vertices. `keep` must contain no duplicates.
  Graph InducedSubgraph(const std::vector<VertexId>& keep) const;

  /// Returns an isomorphic copy with vertices renumbered by `perm`, where
  /// perm[old_id] = new_id. Used by permutation-invariance property tests.
  Graph Permuted(const std::vector<VertexId>& perm) const;

  bool operator==(const Graph& other) const {
    return labels_ == other.labels_ && adjacency_ == other.adjacency_;
  }

 private:
  std::vector<Label> labels_;
  std::vector<std::vector<VertexId>> adjacency_;
  size_t edge_count_ = 0;
};

}  // namespace midas

#endif  // MIDAS_GRAPH_GRAPH_H_
