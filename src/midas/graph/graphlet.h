#ifndef MIDAS_GRAPH_GRAPHLET_H_
#define MIDAS_GRAPH_GRAPHLET_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "midas/common/parallel.h"
#include "midas/graph/graph_database.h"

namespace midas {

/// Connected 3- and 4-node graphlet census (Section 3.4).
///
/// MIDAS views the database as one large disconnected network and compares
/// the graphlet frequency distributions ψ_D and ψ_{D ⊕ ΔD}; their Euclidean
/// distance against the evolution ratio threshold ε classifies a batch update
/// as a major or minor modification.

/// The eight connected graphlets on 3 or 4 vertices (induced).
enum GraphletType : int {
  kWedge = 0,     ///< path on 3 vertices
  kTriangle = 1,  ///< K3
  kPath4 = 2,     ///< path on 4 vertices
  kStar4 = 3,     ///< star / claw K1,3
  kCycle4 = 4,    ///< 4-cycle
  kPaw = 5,       ///< triangle with a pendant edge
  kDiamond = 6,   ///< K4 minus one edge
  kK4 = 7,        ///< complete graph on 4 vertices
};
inline constexpr int kNumGraphletTypes = 8;

using GraphletCounts = std::array<uint64_t, kNumGraphletTypes>;

/// Exact induced census of one graph via ESU (Wernicke) enumeration.
GraphletCounts CountGraphlets(const Graph& g);

/// Incrementally maintained database-level census. Per-graph counts are
/// cached so deletions subtract in O(1) and ψ never has to be recomputed
/// from scratch after a batch update.
class GraphletCensus {
 public:
  GraphletCensus() { totals_.fill(0); }

  /// Builds the census of an existing database. With a pool, the per-graph
  /// ESU enumerations run in parallel; totals merge serially in id order.
  explicit GraphletCensus(const GraphDatabase& db, TaskPool* pool = nullptr);

  void Add(GraphId id, const Graph& g);
  void Remove(GraphId id);

  /// Batch Add of graphs already inserted into `db`: the expensive
  /// CountGraphlets calls fan out over the pool, the bookkeeping stays
  /// serial — identical result to calling Add(id, g) per id in order.
  void AddBatch(const GraphDatabase& db, const std::vector<GraphId>& ids,
                TaskPool* pool);

  /// Normalized frequency distribution ψ over the 8 graphlet types.
  /// All-zero counts yield the uniform distribution.
  std::vector<double> Distribution() const;

  const GraphletCounts& totals() const { return totals_; }

 private:
  GraphletCounts totals_;
  std::unordered_map<GraphId, GraphletCounts> per_graph_;
};

/// Euclidean distance between two graphlet distributions,
/// dist(ψ_D, ψ_{D⊕ΔD}) of Section 3.4.
double GraphletDistance(const std::vector<double>& psi1,
                        const std::vector<double>& psi2);

}  // namespace midas

#endif  // MIDAS_GRAPH_GRAPHLET_H_
