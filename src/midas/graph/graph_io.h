#ifndef MIDAS_GRAPH_GRAPH_IO_H_
#define MIDAS_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "midas/graph/graph_database.h"

namespace midas {

/// Text serialization in the gSpan-style transactional format:
///
///   t # <graph-id>
///   v <vertex-idx> <label-string>
///   e <u> <v>
///
/// Vertex indices must be dense and ascending within each graph. This is the
/// interchange format used by most public graph-mining datasets (AIDS,
/// PubChem exports), so real data can be dropped in for the synthetic
/// generator without code changes.

/// Writes one graph (labels resolved through dict).
void WriteGraph(const Graph& g, const LabelDictionary& dict, long id,
                std::ostream& out);

/// Writes a whole database in ascending id order.
void WriteDatabase(const GraphDatabase& db, std::ostream& out);

/// Parses a database; returns false on malformed input. Graph ids in the
/// file are ignored (the database assigns fresh ids in file order).
bool ReadDatabase(std::istream& in, GraphDatabase* db);

/// Round-trips a graph to its serialized string (debugging aid).
std::string ToString(const Graph& g, const LabelDictionary& dict);

/// Rebuilds g with every label translated by *name* from `from` into `to`
/// (interning as needed). Graphs from different databases/files only agree
/// on label names, not numeric ids; remap before mixing them.
Graph RemapLabels(const Graph& g, const LabelDictionary& from,
                  LabelDictionary& to);

}  // namespace midas

#endif  // MIDAS_GRAPH_GRAPH_IO_H_
