#ifndef MIDAS_GRAPH_GRAPH_IO_H_
#define MIDAS_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "midas/graph/graph_database.h"

namespace midas {

/// Text serialization in the gSpan-style transactional format:
///
///   t # <graph-id>
///   v <vertex-idx> <label-string>
///   e <u> <v>
///
/// Vertex indices must be dense and ascending within each graph. This is the
/// interchange format used by most public graph-mining datasets (AIDS,
/// PubChem exports), so real data can be dropped in for the synthetic
/// generator without code changes.

/// Writes one graph (labels resolved through dict).
void WriteGraph(const Graph& g, const LabelDictionary& dict, long id,
                std::ostream& out);

/// Writes a whole database in ascending id order.
void WriteDatabase(const GraphDatabase& db, std::ostream& out);

/// Parsing options for ReadDatabase.
struct GspanReadOptions {
  /// Use the `t # <id>` ids from the file (they must parse and be unique)
  /// instead of assigning fresh ids in file order. Snapshot restore needs
  /// this so journaled deletion ids stay valid across a round trip.
  bool preserve_ids = false;
};

/// Parses a database; returns false on malformed input with a
/// line-numbered diagnostic in *error ("line 7: self-loop edge 3-3").
/// Rejected (instead of silently constructing a bad Graph): unknown record
/// tags, `v`/`e` records before the first `t`, non-dense or out-of-order
/// vertex indices, out-of-range edge endpoints, self-loops, and duplicate
/// edges. By default graph ids in the file are ignored (the database assigns
/// fresh ids in file order); see GspanReadOptions::preserve_ids.
bool ReadDatabase(std::istream& in, GraphDatabase* db,
                  const GspanReadOptions& options, std::string* error);
bool ReadDatabase(std::istream& in, GraphDatabase* db, std::string* error);
bool ReadDatabase(std::istream& in, GraphDatabase* db);

/// Round-trips a graph to its serialized string (debugging aid).
std::string ToString(const Graph& g, const LabelDictionary& dict);

/// Rebuilds g with every label translated by *name* from `from` into `to`
/// (interning as needed). Graphs from different databases/files only agree
/// on label names, not numeric ids; remap before mixing them.
Graph RemapLabels(const Graph& g, const LabelDictionary& from,
                  LabelDictionary& to);

}  // namespace midas

#endif  // MIDAS_GRAPH_GRAPH_IO_H_
