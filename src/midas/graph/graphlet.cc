#include "midas/graph/graphlet.h"

#include <algorithm>

#include "midas/common/stats.h"

namespace midas {
namespace {

// Classifies the induced subgraph on 3 connected vertices.
GraphletType Classify3(const Graph& g, VertexId a, VertexId b, VertexId c) {
  int edges = static_cast<int>(g.HasEdge(a, b)) +
              static_cast<int>(g.HasEdge(a, c)) +
              static_cast<int>(g.HasEdge(b, c));
  return edges == 3 ? kTriangle : kWedge;
}

// Classifies the induced subgraph on 4 connected vertices.
GraphletType Classify4(const Graph& g, const std::array<VertexId, 4>& s) {
  int deg[4] = {0, 0, 0, 0};
  int edges = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      if (g.HasEdge(s[i], s[j])) {
        ++edges;
        ++deg[i];
        ++deg[j];
      }
    }
  }
  switch (edges) {
    case 3: {
      int max_deg = std::max(std::max(deg[0], deg[1]), std::max(deg[2], deg[3]));
      return max_deg == 3 ? kStar4 : kPath4;
    }
    case 4: {
      int max_deg = std::max(std::max(deg[0], deg[1]), std::max(deg[2], deg[3]));
      return max_deg == 3 ? kPaw : kCycle4;
    }
    case 5:
      return kDiamond;
    default:
      return kK4;
  }
}

// ESU (Wernicke 2006): enumerates every connected induced k-vertex subgraph
// exactly once by growing from a root using only vertices > root, with an
// exclusive extension set.
class EsuEnumerator {
 public:
  EsuEnumerator(const Graph& g, GraphletCounts& counts)
      : g_(g), counts_(counts) {}

  void Run() {
    size_t n = g_.NumVertices();
    in_sub_.assign(n, false);
    in_ext_.assign(n, false);
    for (VertexId v = 0; v < n; ++v) {
      sub_.clear();
      sub_.push_back(v);
      in_sub_[v] = true;
      std::vector<VertexId> ext;
      for (VertexId w : g_.Neighbors(v)) {
        if (w > v) {
          ext.push_back(w);
          in_ext_[w] = true;
        }
      }
      Extend(v, ext);
      for (VertexId w : ext) in_ext_[w] = false;
      in_sub_[v] = false;
    }
  }

 private:
  void Record() {
    if (sub_.size() == 3) {
      ++counts_[Classify3(g_, sub_[0], sub_[1], sub_[2])];
    } else {
      ++counts_[Classify4(g_, {sub_[0], sub_[1], sub_[2], sub_[3]})];
    }
  }

  void Extend(VertexId root, std::vector<VertexId>& ext) {
    if (sub_.size() >= 3) Record();
    if (sub_.size() == 4) return;
    // When |sub| == 2, both the 3-subset and its 4-extensions are recorded
    // along this path; recursion handles it naturally.
    while (!ext.empty()) {
      VertexId w = ext.back();
      ext.pop_back();
      in_ext_[w] = false;

      // New extension = ext ∪ {neighbors of w that are exclusive}.
      std::vector<VertexId> next_ext = ext;
      std::vector<VertexId> added;
      for (VertexId u : g_.Neighbors(w)) {
        if (u > root && !in_sub_[u] && !in_ext_[u]) {
          // Exclusive: not adjacent to current subgraph (other than via w).
          bool adjacent_to_sub = false;
          for (VertexId s : sub_) {
            if (g_.HasEdge(u, s)) {
              adjacent_to_sub = true;
              break;
            }
          }
          if (!adjacent_to_sub) {
            next_ext.push_back(u);
            in_ext_[u] = true;
            added.push_back(u);
          }
        }
      }
      sub_.push_back(w);
      in_sub_[w] = true;
      Extend(root, next_ext);
      in_sub_[w] = false;
      sub_.pop_back();
      for (VertexId u : added) in_ext_[u] = false;
    }
  }

  const Graph& g_;
  GraphletCounts& counts_;
  std::vector<VertexId> sub_;
  std::vector<bool> in_sub_;
  std::vector<bool> in_ext_;
};

}  // namespace

GraphletCounts CountGraphlets(const Graph& g) {
  GraphletCounts counts;
  counts.fill(0);
  EsuEnumerator(g, counts).Run();
  return counts;
}

GraphletCensus::GraphletCensus(const GraphDatabase& db, TaskPool* pool) {
  totals_.fill(0);
  AddBatch(db, db.Ids(), pool);
}

void GraphletCensus::AddBatch(const GraphDatabase& db,
                              const std::vector<GraphId>& ids,
                              TaskPool* pool) {
  std::vector<GraphletCounts> counts(ids.size());
  ParallelFor(pool, ids.size(), [&](size_t i) {
    const Graph* g = db.Find(ids[i]);
    if (g != nullptr) counts[i] = CountGraphlets(*g);
  });
  for (size_t i = 0; i < ids.size(); ++i) {
    if (db.Find(ids[i]) == nullptr) continue;
    per_graph_[ids[i]] = counts[i];
    for (int t = 0; t < kNumGraphletTypes; ++t) totals_[t] += counts[i][t];
  }
}

void GraphletCensus::Add(GraphId id, const Graph& g) {
  GraphletCounts counts = CountGraphlets(g);
  per_graph_[id] = counts;
  for (int t = 0; t < kNumGraphletTypes; ++t) totals_[t] += counts[t];
}

void GraphletCensus::Remove(GraphId id) {
  auto it = per_graph_.find(id);
  if (it == per_graph_.end()) return;
  for (int t = 0; t < kNumGraphletTypes; ++t) totals_[t] -= it->second[t];
  per_graph_.erase(it);
}

std::vector<double> GraphletCensus::Distribution() const {
  std::vector<double> psi(kNumGraphletTypes, 0.0);
  uint64_t total = 0;
  for (uint64_t c : totals_) total += c;
  if (total == 0) {
    for (double& x : psi) x = 1.0 / kNumGraphletTypes;
    return psi;
  }
  for (int t = 0; t < kNumGraphletTypes; ++t) {
    psi[t] = static_cast<double>(totals_[t]) / static_cast<double>(total);
  }
  return psi;
}

double GraphletDistance(const std::vector<double>& psi1,
                        const std::vector<double>& psi2) {
  return EuclideanDistance(psi1, psi2);
}

}  // namespace midas
