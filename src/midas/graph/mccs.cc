#include "midas/graph/mccs.h"

#include <algorithm>
#include <vector>

namespace midas {
namespace {

constexpr int kUnmapped = -1;

// Grows a common connected subgraph from the anchor pair (u1->u2, v1->v2),
// returning the number of common edges found. Greedy frontier expansion:
// repeatedly map an unmapped g1-vertex adjacent to the mapped set onto a
// compatible g2-vertex maximizing newly matched edges.
size_t GrowFrom(const Graph& g1, const Graph& g2, VertexId u1, VertexId v1,
                VertexId u2, VertexId v2) {
  std::vector<int> map1(g1.NumVertices(), kUnmapped);
  std::vector<bool> used2(g2.NumVertices(), false);
  map1[u1] = static_cast<int>(u2);
  map1[v1] = static_cast<int>(v2);
  used2[u2] = used2[v2] = true;
  size_t common_edges = 1;

  bool progress = true;
  while (progress) {
    progress = false;
    int best_gain = 0;
    VertexId best_w1 = 0;
    int best_w2 = kUnmapped;
    for (VertexId w1 = 0; w1 < g1.NumVertices(); ++w1) {
      if (map1[w1] != kUnmapped) continue;
      // Must touch the mapped set to stay connected.
      bool frontier = false;
      for (VertexId x : g1.Neighbors(w1)) {
        if (map1[x] != kUnmapped) {
          frontier = true;
          break;
        }
      }
      if (!frontier) continue;
      for (VertexId w2 = 0; w2 < g2.NumVertices(); ++w2) {
        if (used2[w2] || g2.label(w2) != g1.label(w1)) continue;
        int gain = 0;
        for (VertexId x : g1.Neighbors(w1)) {
          if (map1[x] != kUnmapped &&
              g2.HasEdge(w2, static_cast<VertexId>(map1[x]))) {
            ++gain;
          }
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_w1 = w1;
          best_w2 = static_cast<int>(w2);
        }
      }
    }
    if (best_w2 != kUnmapped && best_gain > 0) {
      map1[best_w1] = best_w2;
      used2[best_w2] = true;
      common_edges += static_cast<size_t>(best_gain);
      progress = true;
    }
  }
  return common_edges;
}

}  // namespace

size_t ApproxMccsEdges(const Graph& g1, const Graph& g2, Rng& rng,
                       int restarts) {
  if (g1.NumEdges() == 0 || g2.NumEdges() == 0) return 0;
  auto edges1 = g1.Edges();
  auto edges2 = g2.Edges();
  size_t best = 0;
  for (int r = 0; r < restarts; ++r) {
    // Random g1 anchor edge; find a label-compatible g2 edge.
    const auto& [a, b] =
        edges1[static_cast<size_t>(rng.UniformInt(0, edges1.size() - 1))];
    EdgeLabelPair want = g1.EdgeLabel(a, b);
    size_t start =
        static_cast<size_t>(rng.UniformInt(0, edges2.size() - 1));
    for (size_t k = 0; k < edges2.size(); ++k) {
      const auto& [x, y] = edges2[(start + k) % edges2.size()];
      if (!(g2.EdgeLabel(x, y) == want)) continue;
      // Orient the anchor consistently with labels.
      if (g1.label(a) == g2.label(x) && g1.label(b) == g2.label(y)) {
        best = std::max(best, GrowFrom(g1, g2, a, b, x, y));
      }
      if (g1.label(a) == g2.label(y) && g1.label(b) == g2.label(x)) {
        best = std::max(best, GrowFrom(g1, g2, a, b, y, x));
      }
      break;  // one anchor pair per restart
    }
  }
  return best;
}

double MccsSimilarity(const Graph& g1, const Graph& g2, Rng& rng,
                      int restarts) {
  size_t min_edges = std::min(g1.NumEdges(), g2.NumEdges());
  if (min_edges == 0) return 0.0;
  size_t mccs = ApproxMccsEdges(g1, g2, rng, restarts);
  return static_cast<double>(mccs) / static_cast<double>(min_edges);
}

}  // namespace midas
