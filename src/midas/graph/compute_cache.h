#ifndef MIDAS_GRAPH_COMPUTE_CACHE_H_
#define MIDAS_GRAPH_COMPUTE_CACHE_H_

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "midas/graph/graph.h"
#include "midas/graph/graph_database.h"

namespace midas {

/// Exact content code of a labeled graph: vertex labels in index order plus
/// the sorted edge list, serialized to a compact binary string. Code
/// equality means *identical representation* (labels and adjacency),
/// strictly stronger than isomorphism — two isomorphic graphs with
/// different vertex orders get different codes, so a memo keyed by content
/// codes can miss but can never conflate distinct graphs. (WL signatures,
/// by contrast, are necessary-but-not-sufficient and would be unsound
/// here.) Cost is O(V + E), negligible next to a VF2 or GED call.
std::string GraphContentCode(const Graph& g);

/// Sharded, bounded LRU memo cache for the two expensive exact kernels the
/// maintenance loops recompute across rounds:
///  - GED: (content code, content code) -> distance. Pattern sets change by
///    at most one pattern per swap scan, so most pairwise distances in
///    RefreshDiversityAndScores and the swap distance matrix repeat
///    verbatim round after round.
///  - Containment: (pattern code, db epoch, graph id) -> verdict. Data
///    graphs are immutable and ids are never reused within a database
///    instance, so a verdict stays valid for that instance's lifetime; the
///    epoch (GraphDatabase::epoch()) changes exactly when the invariant
///    could break (copy, restore, id resurrection), which is the cache's
///    generation-based invalidation.
///
/// Only *exact* results may be stored: callers must skip Store* for
/// budget-truncated searches (a truncated "not found" means "not found
/// within budget", not "absent"). Lookups are therefore sound in budgeted
/// contexts too — an exact cached answer is strictly better information.
///
/// Concurrency: 16 shards, each a mutex + hash map + intrusive LRU list;
/// TaskPool workers probing different keys rarely collide on a shard.
/// Hits/misses/evictions go to `midas_cache_{hit,miss,evict}_total` on the
/// current MetricsRegistry (and to internal counters for tests).
class ComputeCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// `capacity` bounds the total entry count across all shards (split
  /// evenly); each of the two key spaces lives in the same shard set.
  explicit ComputeCache(size_t capacity = 1 << 16);
  ~ComputeCache();  // out of line: Shard is incomplete here

  ComputeCache(const ComputeCache&) = delete;
  ComputeCache& operator=(const ComputeCache&) = delete;

  /// GED memo. Symmetric: the two codes are ordered internally. `salt`
  /// captures every auxiliary input of the estimator beyond the two graphs
  /// (e.g. a digest of the feature trees that tighten the bound) — values
  /// computed under different auxiliary state must not alias.
  bool LookupGed(uint64_t salt, const std::string& code_a,
                 const std::string& code_b, int* out);
  void StoreGed(uint64_t salt, const std::string& code_a,
                const std::string& code_b, int value);

  /// Containment memo for pattern-vs-data-graph checks.
  bool LookupContainment(const std::string& pattern_code, uint64_t db_epoch,
                         GraphId graph_id, bool* out);
  void StoreContainment(const std::string& pattern_code, uint64_t db_epoch,
                        GraphId graph_id, bool contains);

  /// Drops every entry (stats are kept).
  void Clear();

  /// Evicts LRU entries until at most `max_entries` remain across all
  /// shards (split evenly). The degradation ladder's trim-cache rung; the
  /// evicted entries count toward `midas_cache_evict_total`. Does not
  /// change the cache's capacity — it refills normally afterwards.
  void TrimTo(size_t max_entries);

  /// Approximate resident bytes across all shards (keys + LRU/index node
  /// overhead) — the memory watchdog's "cache" component.
  size_t ApproxBytes() const;

  Stats stats() const;
  size_t size() const;

  /// The process-wide cache the engine hot loops use. Shared across engines
  /// on purpose: values are exact, so cross-engine hits are always correct,
  /// and the containment epoch keeps instances apart.
  static ComputeCache& Global();

 private:
  struct Shard;

  bool Lookup(const std::string& key, int64_t* out);
  void Store(const std::string& key, int64_t value);
  Shard& ShardFor(const std::string& key);

  static constexpr size_t kShards = 16;
  std::array<std::unique_ptr<Shard>, kShards> shards_;
  size_t per_shard_capacity_;
};

}  // namespace midas

#endif  // MIDAS_GRAPH_COMPUTE_CACHE_H_
