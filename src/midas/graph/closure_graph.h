#ifndef MIDAS_GRAPH_CLOSURE_GRAPH_H_
#define MIDAS_GRAPH_CLOSURE_GRAPH_H_

#include <vector>

#include "midas/graph/graph.h"

namespace midas {

/// Graph closure / integration (Section 2.3, Figure 4).
///
/// A closure graph integrates two graphs into one: vertices are aligned by a
/// label-preserving mapping φ, unmatched vertices/edges become "extended"
/// entries (the paper's dummy ε vertices collapse away after the union), and
/// the result contains every vertex and edge of both inputs. Cluster summary
/// graphs are built by folding this operation over a cluster.
///
/// Computing the optimal alignment is itself subgraph-isomorphism-hard, so we
/// use a deterministic greedy alignment that maximizes matched edges locally;
/// this preserves the property that matters downstream (every data edge is
/// represented in the summary graph).

/// Greedy label-preserving alignment of g's vertices onto target's vertices.
/// Returns mapping[v] = target vertex id, or -1 when v is unmatched.
/// Injective over matched vertices; vertices are processed in decreasing
/// degree order and each picks the compatible target vertex with the most
/// edges to already-matched neighbors.
std::vector<int> GreedyAlign(const Graph& g, const Graph& target);

/// Closure (integration) of g1 and g2: a graph containing g1 as-is plus the
/// unmatched vertices/edges of g2 under GreedyAlign(g2, g1).
Graph GraphClosure(const Graph& g1, const Graph& g2);

}  // namespace midas

#endif  // MIDAS_GRAPH_CLOSURE_GRAPH_H_
