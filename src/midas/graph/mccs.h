#ifndef MIDAS_GRAPH_MCCS_H_
#define MIDAS_GRAPH_MCCS_H_

#include "midas/common/rng.h"
#include "midas/graph/graph.h"

namespace midas {

/// Approximate maximum connected common subgraph (MCCS).
///
/// Fine clustering (Section 2.3) groups graphs by the MCCS similarity
///   ω_MCCS(G1, G2) = |G_MCCS| / min(|G1|, |G2|)   (sizes in edges).
/// Exact MCCS is NP-hard; clustering only needs a similarity *ordering*, so
/// we grow a common connected subgraph greedily from several random anchor
/// edge pairs and keep the best.

/// Approximate |MCCS| in edges. `restarts` anchor attempts are made.
size_t ApproxMccsEdges(const Graph& g1, const Graph& g2, Rng& rng,
                       int restarts = 4);

/// ω_MCCS similarity in [0, 1]; 0 when either graph has no edges.
double MccsSimilarity(const Graph& g1, const Graph& g2, Rng& rng,
                      int restarts = 4);

}  // namespace midas

#endif  // MIDAS_GRAPH_MCCS_H_
