#include "midas/graph/compute_cache.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "midas/obs/metrics.h"
#include "midas/obs/trace.h"

namespace midas {

namespace {

void AppendU32(std::string& s, uint32_t v) {
  s.push_back(static_cast<char>(v & 0xFF));
  s.push_back(static_cast<char>((v >> 8) & 0xFF));
  s.push_back(static_cast<char>((v >> 16) & 0xFF));
  s.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void AppendU64(std::string& s, uint64_t v) {
  AppendU32(s, static_cast<uint32_t>(v & 0xFFFFFFFFULL));
  AppendU32(s, static_cast<uint32_t>(v >> 32));
}

void CountCacheEvent(const char* name, uint64_t n = 1) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) reg.GetCounter(name)->Increment(n);
}

}  // namespace

std::string GraphContentCode(const Graph& g) {
  std::string code;
  code.reserve(8 + 4 * g.NumVertices() + 8 * g.NumEdges());
  AppendU32(code, static_cast<uint32_t>(g.NumVertices()));
  AppendU32(code, static_cast<uint32_t>(g.NumEdges()));
  for (VertexId v = 0; v < g.NumVertices(); ++v) AppendU32(code, g.label(v));
  for (const auto& [u, v] : g.Edges()) {  // ascending (u, v), u < v
    AppendU32(code, u);
    AppendU32(code, v);
  }
  return code;
}

struct ComputeCache::Shard {
  std::mutex mu;
  /// LRU list, most recent at the front; the map points into it.
  std::list<std::pair<std::string, int64_t>> lru;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, int64_t>>::iterator>
      index;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
};

ComputeCache::ComputeCache(size_t capacity) {
  per_shard_capacity_ = std::max<size_t>(8, capacity / kShards);
  for (auto& s : shards_) s = std::make_unique<Shard>();
}

ComputeCache::~ComputeCache() = default;

ComputeCache::Shard& ComputeCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>()(key) % kShards];
}

bool ComputeCache::Lookup(const std::string& key, int64_t* out) {
  Shard& shard = ShardFor(key);
  // Per-batch attribution: the owning update's TraceContext (when one is
  // installed on this thread) counts this lookup alongside the global
  // counters, so a flight record knows its own cache traffic.
  obs::TraceContext* trace = obs::TraceContext::Current();
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    shard.misses.fetch_add(1, std::memory_order_relaxed);
    CountCacheEvent("midas_cache_miss_total");
    if (trace != nullptr) trace->CountCacheLookup(false);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->second;
  shard.hits.fetch_add(1, std::memory_order_relaxed);
  CountCacheEvent("midas_cache_hit_total");
  if (trace != nullptr) trace->CountCacheLookup(true);
  return true;
}

void ComputeCache::Store(const std::string& key, int64_t value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = value;  // exact values can only be re-stored equal
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, value);
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    shard.evictions.fetch_add(1, std::memory_order_relaxed);
    CountCacheEvent("midas_cache_evict_total");
  }
}

namespace {

std::string GedKey(uint64_t salt, const std::string& code_a,
                   const std::string& code_b) {
  const std::string& lo = code_a <= code_b ? code_a : code_b;
  const std::string& hi = code_a <= code_b ? code_b : code_a;
  std::string key;
  key.reserve(9 + lo.size() + 1 + hi.size());
  key.push_back('G');
  AppendU64(key, salt);
  key += lo;
  key.push_back('\x01');
  key += hi;
  return key;
}

}  // namespace

bool ComputeCache::LookupGed(uint64_t salt, const std::string& code_a,
                             const std::string& code_b, int* out) {
  int64_t v = 0;
  if (!Lookup(GedKey(salt, code_a, code_b), &v)) return false;
  *out = static_cast<int>(v);
  return true;
}

void ComputeCache::StoreGed(uint64_t salt, const std::string& code_a,
                            const std::string& code_b, int value) {
  Store(GedKey(salt, code_a, code_b), value);
}

bool ComputeCache::LookupContainment(const std::string& pattern_code,
                                     uint64_t db_epoch, GraphId graph_id,
                                     bool* out) {
  std::string key;
  key.reserve(1 + pattern_code.size() + 12);
  key.push_back('C');
  key += pattern_code;
  AppendU64(key, db_epoch);
  AppendU32(key, graph_id);
  int64_t v = 0;
  if (!Lookup(key, &v)) return false;
  *out = v != 0;
  return true;
}

void ComputeCache::StoreContainment(const std::string& pattern_code,
                                    uint64_t db_epoch, GraphId graph_id,
                                    bool contains) {
  std::string key;
  key.reserve(1 + pattern_code.size() + 12);
  key.push_back('C');
  key += pattern_code;
  AppendU64(key, db_epoch);
  AppendU32(key, graph_id);
  Store(key, contains ? 1 : 0);
}

void ComputeCache::Clear() {
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    s->lru.clear();
    s->index.clear();
  }
}

void ComputeCache::TrimTo(size_t max_entries) {
  const size_t per_shard = max_entries / kShards;
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    while (s->lru.size() > per_shard) {
      s->index.erase(s->lru.back().first);
      s->lru.pop_back();
      s->evictions.fetch_add(1, std::memory_order_relaxed);
      CountCacheEvent("midas_cache_evict_total");
    }
  }
}

size_t ComputeCache::ApproxBytes() const {
  // Per entry: the key string twice (LRU node + index key), the value, and
  // a flat estimate of list/map node overhead. Consistent, not exact.
  constexpr size_t kPerEntryOverhead = 2 * sizeof(std::string) + 96;
  size_t bytes = sizeof(*this);
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    for (const auto& [key, value] : s->lru) {
      (void)value;
      bytes += 2 * key.size() + sizeof(int64_t) + kPerEntryOverhead;
    }
  }
  return bytes;
}

ComputeCache::Stats ComputeCache::stats() const {
  Stats total;
  for (const auto& s : shards_) {
    total.hits += s->hits.load(std::memory_order_relaxed);
    total.misses += s->misses.load(std::memory_order_relaxed);
    total.evictions += s->evictions.load(std::memory_order_relaxed);
  }
  return total;
}

size_t ComputeCache::size() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->lru.size();
  }
  return n;
}

ComputeCache& ComputeCache::Global() {
  static ComputeCache* cache = new ComputeCache();
  return *cache;
}

}  // namespace midas
