#ifndef MIDAS_GRAPH_GED_H_
#define MIDAS_GRAPH_GED_H_

#include <limits>

#include "midas/common/budget.h"
#include "midas/graph/graph.h"

namespace midas {

/// Graph edit distance with unit costs (vertex insert/delete/relabel = 1,
/// edge insert/delete = 1). Edge labels are determined by endpoint labels
/// (Section 2.1), so no separate edge-relabel operation exists.
///
/// Pattern diversity div(p, P \ p) = min GED to any other pattern
/// (Section 2.2). MIDAS computes diversity with the lower bounds below and
/// falls back to the exact distance only for pattern-sized graphs.

/// Exact GED via depth-first branch & bound over vertex assignments.
/// Stops early and returns `cost_limit` when the distance is >= cost_limit.
/// Intended for pattern-sized graphs (<= ~10 vertices each).
int GedExact(const Graph& a, const Graph& b,
             int cost_limit = std::numeric_limits<int>::max());

/// GED result under a budget. `distance` is exact when `truncated` is
/// false; when true the branch & bound was cut short and `distance` is the
/// best *upper bound* proven so far (seeded by GedUpperBound, so it is
/// always achievable — the anytime property of B&B: more budget only
/// tightens it, never invalidates it).
struct GedOutcome {
  int distance = 0;
  bool truncated = false;
};

/// Budgeted GedExact (nullptr budget = unlimited = GedExact). One budget
/// step is charged per search-tree node expanded; on exhaustion the search
/// unwinds and the incumbent upper bound is returned with truncated = true.
GedOutcome GedExactBudgeted(const Graph& a, const Graph& b, int cost_limit,
                            ExecBudget* budget);

/// Label-based lower bound GED_l (Lemma 6.1 with n = 0):
///   |V|-part = ||V_A|-|V_B|| + min(|V_A|,|V_B|) - |L(V_A) ∩ L(V_B)|
///   |E|-part = ||E_A|-|E_B||
int GedLowerBound(const Graph& a, const Graph& b);

/// Tightened lower bound GED'_l = GED_l + relaxed_edges (Lemma 6.1), where
/// relaxed_edges is the number of edges of the smaller graph that must be
/// ignored before its feature embeddings fit into the other graph's; it is
/// computed from the pattern-feature matrix (see index/pf_matrix.h).
int GedTightLowerBound(const Graph& a, const Graph& b, int relaxed_edges);

/// Greedy upper bound: builds one vertex alignment (label- and
/// neighborhood-guided, highest-degree first) and prices the edit script it
/// induces. The returned value is always achievable, so
/// GedLowerBound <= GedExact <= GedUpperBound; GedExact also uses it to
/// seed its branch & bound. O(V^2 * deg).
int GedUpperBound(const Graph& a, const Graph& b);

}  // namespace midas

#endif  // MIDAS_GRAPH_GED_H_
