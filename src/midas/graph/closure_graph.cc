#include "midas/graph/closure_graph.h"

#include <algorithm>
#include <numeric>

namespace midas {

std::vector<int> GreedyAlign(const Graph& g, const Graph& target) {
  std::vector<int> mapping(g.NumVertices(), -1);
  std::vector<bool> used(target.NumVertices(), false);

  std::vector<VertexId> order(g.NumVertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (g.Degree(a) != g.Degree(b)) return g.Degree(a) > g.Degree(b);
    return a < b;
  });

  for (VertexId v : order) {
    int best = -1;
    int best_score = -1;
    for (VertexId t = 0; t < target.NumVertices(); ++t) {
      if (used[t] || target.label(t) != g.label(v)) continue;
      int score = 0;
      for (VertexId w : g.Neighbors(v)) {
        if (mapping[w] >= 0 &&
            target.HasEdge(t, static_cast<VertexId>(mapping[w]))) {
          ++score;
        }
      }
      // Prefer more matched edges, then higher-degree target vertices
      // (denser alignment cores), then lowest id for determinism.
      if (score > best_score ||
          (score == best_score && best >= 0 &&
           target.Degree(t) > target.Degree(static_cast<VertexId>(best)))) {
        best = static_cast<int>(t);
        best_score = score;
      }
    }
    if (best >= 0) {
      mapping[v] = best;
      used[static_cast<size_t>(best)] = true;
    }
  }
  return mapping;
}

Graph GraphClosure(const Graph& g1, const Graph& g2) {
  Graph closure = g1;
  std::vector<int> mapping = GreedyAlign(g2, g1);
  // Materialize unmatched g2 vertices.
  for (VertexId v = 0; v < g2.NumVertices(); ++v) {
    if (mapping[v] < 0) {
      mapping[v] = static_cast<int>(closure.AddVertex(g2.label(v)));
    }
  }
  for (const auto& [u, v] : g2.Edges()) {
    closure.AddEdge(static_cast<VertexId>(mapping[u]),
                    static_cast<VertexId>(mapping[v]));
  }
  return closure;
}

}  // namespace midas
