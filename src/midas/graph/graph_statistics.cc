#include "midas/graph/graph_statistics.h"

#include <iomanip>
#include <ostream>
#include <set>

namespace midas {

DatabaseStatistics ComputeStatistics(const GraphDatabase& db) {
  DatabaseStatistics s;
  s.num_graphs = db.size();
  if (db.empty()) return s;

  std::map<Label, size_t> label_counts;
  std::map<EdgeLabelPair, size_t> edge_graph_counts;
  double density_sum = 0.0;
  for (const auto& [id, g] : db.graphs()) {
    s.total_vertices += g.NumVertices();
    s.total_edges += g.NumEdges();
    s.max_vertices = std::max(s.max_vertices, g.NumVertices());
    s.max_edges = std::max(s.max_edges, g.NumEdges());
    density_sum += g.Density();
    for (VertexId v = 0; v < g.NumVertices(); ++v) ++label_counts[g.label(v)];
    for (const EdgeLabelPair& lp : g.DistinctEdgeLabels()) {
      ++edge_graph_counts[lp];
    }
  }
  double n = static_cast<double>(s.num_graphs);
  s.mean_vertices = static_cast<double>(s.total_vertices) / n;
  s.mean_edges = static_cast<double>(s.total_edges) / n;
  s.mean_density = density_sum / n;
  s.mean_degree = s.total_vertices == 0
                      ? 0.0
                      : 2.0 * static_cast<double>(s.total_edges) /
                            static_cast<double>(s.total_vertices);
  s.num_labels = label_counts.size();
  s.num_edge_labels = edge_graph_counts.size();

  for (const auto& [label, count] : label_counts) {
    s.label_shares[db.labels().Name(label)] =
        static_cast<double>(count) / static_cast<double>(s.total_vertices);
  }
  for (const auto& [lp, count] : edge_graph_counts) {
    std::string key =
        db.labels().Name(lp.first) + "-" + db.labels().Name(lp.second);
    s.edge_label_coverage[key] = static_cast<double>(count) / n;
  }
  return s;
}

void PrintStatistics(const DatabaseStatistics& s, std::ostream& out) {
  out << "graphs:        " << s.num_graphs << "\n"
      << "vertices:      " << s.total_vertices << " (mean "
      << std::fixed << std::setprecision(1) << s.mean_vertices << ", max "
      << s.max_vertices << ")\n"
      << "edges:         " << s.total_edges << " (mean " << s.mean_edges
      << ", max " << s.max_edges << ")\n"
      << "mean density:  " << std::setprecision(3) << s.mean_density << "\n"
      << "mean degree:   " << s.mean_degree << "\n"
      << "vertex labels: " << s.num_labels << "\n"
      << "edge labels:   " << s.num_edge_labels << "\n";
  out << "label shares:\n";
  for (const auto& [name, share] : s.label_shares) {
    out << "  " << std::left << std::setw(4) << name << " "
        << std::setprecision(1) << 100.0 * share << "%\n";
  }
  out << "edge-label coverage (share of graphs):\n";
  for (const auto& [name, share] : s.edge_label_coverage) {
    out << "  " << std::left << std::setw(7) << name << " "
        << std::setprecision(1) << 100.0 * share << "%\n";
  }
  out.flush();
}

}  // namespace midas
