#ifndef MIDAS_GRAPH_CANONICAL_H_
#define MIDAS_GRAPH_CANONICAL_H_

#include <string>
#include <vector>

#include "midas/graph/graph.h"

namespace midas {

/// Canonical forms for labeled trees and isomorphism-invariant signatures
/// for small graphs.
///
/// CATAPULT/MIDAS represent frequent (closed) trees by canonical strings
/// (Section 4.2, Figure 5(c)); the FCT-Index trie is keyed by the token
/// sequence of that string (Definition 5.1). We use the AHU canonical form
/// for unordered labeled free trees: root at the tree center (trying both
/// centers when there are two) and recursively sort child encodings. Two
/// labeled trees are isomorphic iff their canonical strings are equal.

/// Center vertex (or two adjacent centers) of a tree.
std::vector<VertexId> TreeCenters(const Graph& tree);

/// Canonical string of a labeled free tree. Requires tree.IsTree().
/// Format example: "6(8(8)$8)" — numeric label ids, nested parentheses for
/// children, '$' between sibling subtrees (as in Figure 5(c)).
std::string CanonicalTreeString(const Graph& tree);

/// Token sequence of the canonical string, for trie insertion.
/// Token 0 = '(' ; token 1 = ')' ; token 2 = '$' ; token l+3 = label l.
std::vector<uint32_t> CanonicalTreeTokens(const Graph& tree);

/// Isomorphism-invariant signature for an arbitrary small labeled graph,
/// built from two Weisfeiler–Leman refinement rounds over vertex labels plus
/// global counts. Equal signatures are *necessary* for isomorphism; callers
/// deduplicating candidate patterns confirm with AreIsomorphic().
std::string GraphSignature(const Graph& g);

}  // namespace midas

#endif  // MIDAS_GRAPH_CANONICAL_H_
