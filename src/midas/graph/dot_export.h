#ifndef MIDAS_GRAPH_DOT_EXPORT_H_
#define MIDAS_GRAPH_DOT_EXPORT_H_

#include <iosfwd>
#include <string>

#include "midas/graph/graph.h"

namespace midas {

/// Graphviz DOT export — the bridge from the library to an actual GUI
/// panel: every canned pattern (or query, or data graph) renders with
/// `dot -Tsvg`. Vertex labels come from the dictionary; atoms get simple
/// chemistry-flavored fill colors so panels are scannable.

/// Writes one graph as an undirected DOT graph named `name`.
void WriteDot(const Graph& g, const LabelDictionary& dict,
              const std::string& name, std::ostream& out);

/// DOT text of one graph.
std::string ToDot(const Graph& g, const LabelDictionary& dict,
                  const std::string& name = "g");

/// Fill color used for a label name ("C" -> gray, "O" -> red, ...);
/// unknown labels hash onto a small palette.
std::string DotColorFor(const std::string& label_name);

}  // namespace midas

#endif  // MIDAS_GRAPH_DOT_EXPORT_H_
