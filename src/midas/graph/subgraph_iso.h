#ifndef MIDAS_GRAPH_SUBGRAPH_ISO_H_
#define MIDAS_GRAPH_SUBGRAPH_ISO_H_

#include <cstddef>
#include <vector>

#include "midas/common/budget.h"
#include "midas/graph/graph.h"

namespace midas {

/// VF2-style subgraph isomorphism (Cordella et al. [17]).
///
/// Semantics are *non-induced* subgraph isomorphism with exact label match:
/// an injective mapping m of pattern vertices into target vertices such that
/// labels agree and every pattern edge maps to a target edge. This is the
/// containment relation "G contains a subgraph isomorphic to p" used for
/// coverage throughout the paper (Section 2.2).
///
/// The matcher orders pattern vertices connectivity-first and prunes by
/// label, degree and mapped-neighborhood consistency.
///
/// Every entry point has a budgeted variant taking an `ExecBudget*`
/// (nullptr = unlimited): one budget step is charged per candidate
/// assignment tried, and on exhaustion the search stops where it stands and
/// reports `truncated = true`. A truncated `found == false` means "not
/// found within budget", not "absent" — callers degrade accordingly
/// (coverage under-counts; it never invents containment).

/// True iff target contains a subgraph isomorphic to pattern.
bool ContainsSubgraph(const Graph& pattern, const Graph& target);

/// Containment outcome under a budget.
struct IsoOutcome {
  bool found = false;
  bool truncated = false;  ///< search stopped by budget exhaustion
};
IsoOutcome ContainsSubgraphBudgeted(const Graph& pattern, const Graph& target,
                                    ExecBudget* budget);

/// Number of distinct embeddings (injective mappings), counting at most
/// `cap` (0 means unlimited). Automorphic images are counted separately,
/// matching the "number of embeddings" stored in the TG-/TP-matrices.
size_t CountEmbeddings(const Graph& pattern, const Graph& target,
                       size_t cap = 1024);

/// Embedding count under a budget; `count` is a lower bound when truncated.
struct EmbeddingCountOutcome {
  size_t count = 0;
  bool truncated = false;
};
EmbeddingCountOutcome CountEmbeddingsBudgeted(const Graph& pattern,
                                              const Graph& target, size_t cap,
                                              ExecBudget* budget);

/// Enumerates up to `max_results` embeddings. Each embedding maps pattern
/// vertex i to embedding[i] in the target.
std::vector<std::vector<VertexId>> FindEmbeddings(const Graph& pattern,
                                                  const Graph& target,
                                                  size_t max_results = 64);

/// Exact graph isomorphism test (equal vertex/edge counts + containment).
bool AreIsomorphic(const Graph& a, const Graph& b);

/// Number of embeddings of a single labeled edge into g: each matching edge
/// contributes one mapping when its endpoint labels differ and two when they
/// coincide (both orientations). Cheaper than running VF2 on a 1-edge tree.
size_t CountEdgeEmbeddings(const EdgeLabelPair& lp, const Graph& g);

}  // namespace midas

#endif  // MIDAS_GRAPH_SUBGRAPH_ISO_H_
