#ifndef MIDAS_SERVE_ADMISSION_H_
#define MIDAS_SERVE_ADMISSION_H_

#include <string>
#include <vector>

#include "midas/graph/graph_database.h"

namespace midas {
namespace serve {

/// Pre-admission limits on one BatchUpdate. Zero means "no limit" for the
/// size knobs. Defaults are sized for interactive GUI databases of small
/// data graphs (PubChem-like molecules); a bulk-load pipeline would raise
/// them.
struct AdmissionLimits {
  size_t max_batch_items = 4096;     ///< |Δ⁺| + |Δ⁻| per batch
  size_t max_graph_vertices = 1024;  ///< per inserted graph
  size_t max_graph_edges = 4096;     ///< per inserted graph
  bool allow_empty = false;          ///< admit no-op batches?
};

/// What ValidateBatch can find wrong with a batch.
enum class BatchProblem {
  kEmptyBatch,         ///< nothing to do (error unless allow_empty)
  kBatchTooLarge,      ///< |Δ⁺| + |Δ⁻| over max_batch_items
  kEmptyGraph,         ///< an insertion with no vertices
  kOversizedGraph,     ///< an insertion over the vertex/edge limits
  kDanglingDeletion,   ///< deletion id not present in the database view
  kDuplicateDeletion,  ///< deletion id repeated within the batch (deduped)
};

/// Stable spelling for logs/tests ("dangling_deletion", ...).
const char* BatchProblemName(BatchProblem problem);

/// One per-item finding: which check tripped, on which item, and whether it
/// rejects the batch (fatal) or was repaired in the normalized copy.
struct BatchDiagnostic {
  BatchProblem problem = BatchProblem::kEmptyBatch;
  bool fatal = true;
  std::string detail;  ///< e.g. "deletion #2 (id 17): not in database"
};

/// Outcome of pre-admission validation.
struct BatchValidation {
  /// True when the (normalized) batch may enter the update queue. Fatal
  /// diagnostics clear this; warnings (duplicate deletions) do not.
  bool admissible = false;
  /// The batch to actually enqueue: duplicate deletion ids removed (first
  /// occurrence kept, order preserved). Only meaningful when admissible.
  BatchUpdate normalized;
  std::vector<BatchDiagnostic> diagnostics;
  size_t errors = 0;    ///< fatal diagnostics
  size_t warnings = 0;  ///< repaired diagnostics

  /// All diagnostic details joined with "; " (for event-log lines).
  std::string Describe() const;
};

/// Validates ΔD before it is journaled or queued:
///  - deletion ids absent from the database view are *rejected*, not
///    silently ignored (each with a per-item diagnostic);
///  - deletion ids repeated within the batch are deduped in `normalized`
///    and reported as warnings;
///  - malformed (vertex-less) and oversized insertions, empty and oversized
///    batches are rejected per `limits`.
///
/// The `live_ids` overload checks against a sorted id vector — typically
/// PanelSnapshot::live_ids, so producers can pre-validate lock-free against
/// the latest published state. That view trails the engine by the queued
/// batches; EngineHost re-validates against the authoritative database on
/// the writer thread before starting the round.
BatchValidation ValidateBatch(const BatchUpdate& batch,
                              const std::vector<GraphId>& live_ids,
                              const AdmissionLimits& limits);
BatchValidation ValidateBatch(const BatchUpdate& batch,
                              const GraphDatabase& db,
                              const AdmissionLimits& limits);

}  // namespace serve
}  // namespace midas

#endif  // MIDAS_SERVE_ADMISSION_H_
