#include "midas/serve/quarantine.h"

#include <algorithm>
#include <sstream>

#include "midas/common/failpoint.h"
#include "midas/graph/graph_io.h"

namespace midas {
namespace serve {

namespace {

void SetError(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

std::string FlattenReason(const std::string& reason) {
  std::string flat = reason;
  for (char& c : flat) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return flat;
}

}  // namespace

bool WriteQuarantineFile(const QuarantinedBatch& q, const LabelDictionary& dict,
                         const std::string& dir, std::string* path,
                         std::string* error, io::FileSystem* fs_param) {
  if (MIDAS_FAILPOINT("serve.quarantine.write_error")) {
    SetError(error,
             "injected I/O error (failpoint serve.quarantine.write_error)");
    return false;
  }
  io::FileSystem& fs = io::Resolve(fs_param);
  if (!fs.CreateDirs(dir, error)) return false;

  std::string chosen;
  for (int n = 0; n < 1000; ++n) {
    std::string name = "batch-" + std::to_string(q.seq) +
                       (n == 0 ? "" : "-" + std::to_string(n)) +
                       ".quarantine.gspan";
    std::string candidate = dir + "/" + name;
    if (!fs.Exists(candidate)) {
      chosen = candidate;
      break;
    }
  }
  if (chosen.empty()) {
    SetError(error, "no free quarantine file name for seq " +
                        std::to_string(q.seq) + " under " + dir);
    return false;
  }

  std::ostringstream out;
  out << "# midas-quarantine v1\n"
      << "# seq=" << q.seq << "\n"
      << "# attempts=" << q.attempts << "\n"
      << "# reason=" << FlattenReason(q.reason) << "\n"
      << "# deletions=";
  for (size_t i = 0; i < q.batch.deletions.size(); ++i) {
    out << (i == 0 ? "" : " ") << q.batch.deletions[i];
  }
  out << "\n";
  for (size_t i = 0; i < q.batch.insertions.size(); ++i) {
    WriteGraph(q.batch.insertions[i], dict, static_cast<long>(i), out);
  }

  // Durable write + parent-dir sync: the quarantine file is the only
  // surviving evidence of a poison batch, so it must not evaporate in the
  // crash that often follows one.
  if (!fs.WriteFileDurable(chosen, out.str(), error)) return false;
  if (!fs.SyncDir(dir, error)) return false;
  if (path != nullptr) *path = chosen;
  return true;
}

bool ReadQuarantineFile(const std::string& path, LabelDictionary& dict,
                        QuarantinedBatch* out, std::string* error,
                        io::FileSystem* fs_param) {
  std::string content;
  std::string read_error;
  if (io::Resolve(fs_param).Read(path, &content, &read_error) !=
      io::ReadStatus::kOk) {
    SetError(error, read_error);
    return false;
  }

  *out = QuarantinedBatch{};
  std::istringstream lines(content);
  std::string line;
  bool magic = false;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] != '#') break;  // header is a '#' prefix
    std::string body = line.substr(1);
    if (!body.empty() && body[0] == ' ') body = body.substr(1);
    if (body == "midas-quarantine v1") {
      magic = true;
    } else if (body.rfind("seq=", 0) == 0) {
      std::istringstream v(body.substr(4));
      v >> out->seq;
    } else if (body.rfind("attempts=", 0) == 0) {
      std::istringstream v(body.substr(9));
      v >> out->attempts;
    } else if (body.rfind("reason=", 0) == 0) {
      out->reason = body.substr(7);
    } else if (body.rfind("deletions=", 0) == 0) {
      std::istringstream v(body.substr(10));
      GraphId id = 0;
      while (v >> id) out->batch.deletions.push_back(id);
    }
    // Unknown header keys are skipped (forward compatibility).
  }
  if (!magic) {
    SetError(error, path + ": missing '# midas-quarantine v1' magic");
    return false;
  }

  // The body is plain gspan ('#' header lines are comments to the parser).
  // Parse into a scratch database, then remap labels by name into the
  // caller's dictionary — same dance as journal batch payloads.
  GraphDatabase scratch;
  std::istringstream body(content);
  std::string parse_error;
  if (!ReadDatabase(body, &scratch, &parse_error)) {
    SetError(error, path + ": " + parse_error);
    return false;
  }
  for (const auto& [id, g] : scratch.graphs()) {
    out->batch.insertions.push_back(RemapLabels(g, scratch.labels(), dict));
  }
  return true;
}

std::vector<std::string> ListQuarantineFiles(const std::string& dir,
                                             io::FileSystem* fs_param) {
  io::FileSystem& fs = io::Resolve(fs_param);
  std::vector<std::string> paths;
  if (!fs.Exists(dir)) return paths;
  for (const std::string& name : fs.ListDir(dir)) {
    if (name.find(".quarantine.gspan") != std::string::npos) {
      paths.push_back(dir + "/" + name);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace serve
}  // namespace midas
