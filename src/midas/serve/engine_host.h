#ifndef MIDAS_SERVE_ENGINE_HOST_H_
#define MIDAS_SERVE_ENGINE_HOST_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "midas/common/io.h"
#include "midas/common/memory.h"
#include "midas/maintain/journal.h"
#include "midas/maintain/midas.h"
#include "midas/maintain/verify.h"
#include "midas/obs/event_log.h"
#include "midas/obs/flight.h"
#include "midas/obs/history.h"
#include "midas/obs/sli.h"
#include "midas/obs/trace.h"
#include "midas/obs/telemetry_server.h"
#include "midas/serve/admission.h"
#include "midas/serve/overload.h"
#include "midas/serve/panel_snapshot.h"
#include "midas/serve/quarantine.h"
#include "midas/serve/update_queue.h"

namespace midas {
namespace serve {

/// Background integrity scrubber (maintain/verify.h): the writer verifies
/// its own durable state on idle loop ticks — disk tiers (manifest CRCs,
/// journal chain) first, then the deep per-pattern cross-check in
/// time-sliced laps — and self-heals through the repair ladder when a
/// violation surfaces.
struct ScrubConfig {
  bool enabled = false;
  /// Wall-clock budget of one deep-verify slice (ms). The deep tier resumes
  /// at the pattern where the previous slice stopped, so a full lap costs
  /// many ticks but never stalls the writer longer than this per tick.
  double tick_budget_ms = 2.0;
  /// Attempt self-healing via the repair ladder when a violation is found.
  /// False = detect-only: metrics, /integrityz and events still fire, but
  /// the host never touches the state (useful for forensics).
  bool repair = true;
};

/// Tuning of one EngineHost.
struct HostConfig {
  size_t queue_capacity = 64;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  AdmissionLimits admission;
  MaintenanceMode mode = MaintenanceMode::kMidas;

  /// Bound on how long a kBlock Submit may wait for queue space before
  /// returning kRejectedTimeout. 0 = wait forever (the historical
  /// contract) — but a dead host now wakes blocked submitters either way.
  double submit_timeout_ms = 0.0;

  /// Overload-resilience layer: adaptive admission (CoDel + cost model),
  /// circuit breaker around the writer, memory watchdog + degradation
  /// ladder. Defaults keep every mechanism passive until pressure or
  /// failures appear, so healthy-state rounds are byte-identical to a host
  /// without the layer.
  OverloadConfig overload;

  /// Maintenance worker threads, applied to the engine before Initialize
  /// (and to every recovered engine). -1 keeps the engine's own
  /// MidasConfig::num_threads; otherwise same semantics as that field
  /// (0 = hardware concurrency, 1 = serial).
  int num_threads = -1;

  /// Retry-with-backoff: a batch gets `max_attempts` ApplyUpdate tries; the
  /// sleep before retry k is backoff_initial_ms * backoff_multiplier^(k-1),
  /// capped at backoff_max_ms.
  int max_attempts = 3;
  double backoff_initial_ms = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 250.0;

  /// Budget tightening: attempt 1 runs under the engine's own round limits;
  /// attempt k >= 2 runs under a deadline of
  ///   max(retry_deadline_floor_ms,
  ///       retry_deadline_ms * retry_budget_factor^(k-2))
  /// (or the engine's own deadline if that is tighter), so each retry of a
  /// poison batch is cheaper than the last and cannot monopolize the writer.
  double retry_deadline_ms = 250.0;
  double retry_budget_factor = 0.5;
  double retry_deadline_floor_ms = 5.0;

  /// Rounds between SaveCheckpoint calls (journal truncation). 0 disables
  /// periodic checkpoints; the post-recovery checkpoint is unconditional —
  /// it re-baselines the journal after the torn tail a failed round leaves.
  uint64_t checkpoint_every = 32;

  /// Quarantine directory, resolved under the engine dir when relative.
  std::string quarantine_subdir = "quarantine";

  /// Introspection HTTP server (obs/telemetry_server.h): -1 disables it,
  /// 0 binds an ephemeral port (query the bound port with
  /// EngineHost::telemetry_port()), any other value is the fixed port.
  /// Serves /metrics, /varz, /healthz, /statusz and /spans on 127.0.0.1.
  int telemetry_port = -1;
  /// Enable the hierarchical span profiler (obs/profile.h) alongside the
  /// telemetry server, so /spans has a call tree to show. Only consulted
  /// when the server is on.
  bool profile_spans = true;

  /// Pattern-quality drift detection (obs/sli.h). When enabled, the host
  /// attaches a KS drift detector to the engine; a drifting panel flips
  /// /healthz to 503 and logs a `quality_drift` event.
  bool sli_enabled = true;
  obs::SliConfig sli;

  /// Causal per-batch tracing (obs/flight.h). When enabled, every Submit
  /// mints a TraceContext that rides the queue, is installed thread-locally
  /// for the round (and inherited by TaskPool workers), and ends as a
  /// FlightRecord on /traces, a `trace_event` log line, and histogram
  /// exemplars. Tracing never feeds back into maintenance decisions.
  bool tracing_enabled = true;
  obs::FlightRecorderConfig flight;

  /// In-process metric history (obs/history.h): the writer samples the
  /// whole MetricsRegistry into per-metric ring buffers once per loop
  /// iteration (rate-limited by history.min_interval_ms) and /historyz
  /// serves min/mean/max/p99 downsampling over any window. Also drives the
  /// multi-window burn-rate alerter surfaced at /alertz, the
  /// `midas_alert_*` gauges and `alert_event` JSONL records.
  bool history_enabled = true;
  obs::MetricHistoryConfig history;
  obs::AlertConfig alerts;

  /// Every durable-state I/O — journal appends, checkpoints, recovery
  /// reads, quarantine files, scrubber re-reads — goes through this
  /// FileSystem. nullptr = the real POSIX backend. Tests install an
  /// io::FaultyFileSystem here to inject EIO/ENOSPC/torn renames/fsync
  /// lies/bit rot without touching the kernel.
  io::FileSystem* fs = nullptr;

  /// Background integrity scrubbing + self-healing repair.
  ScrubConfig scrub;
};

/// Monotonic host telemetry (all counters since Start).
struct HostStats {
  uint64_t submitted = 0;           ///< Submit() calls
  uint64_t admitted = 0;            ///< batches accepted into the queue
  uint64_t rejected_validation = 0; ///< Submit-side ValidateBatch rejects
  uint64_t rejected_overflow = 0;   ///< kReject policy, queue full
  uint64_t coalesced = 0;           ///< batches merged by kCoalesce
  uint64_t writer_rejected = 0;     ///< writer-side re-validation rejects
  uint64_t rounds_ok = 0;           ///< successful maintenance rounds
  uint64_t retries = 0;             ///< ApplyUpdate attempts beyond the first
  uint64_t recoveries = 0;          ///< in-process engine restorations
  uint64_t recovery_failures = 0;   ///< failed restoration attempts
  uint64_t quarantined = 0;         ///< batches written to quarantine
  uint64_t checkpoints = 0;         ///< SaveCheckpoint calls that succeeded
  uint64_t shed_overload = 0;       ///< Submit-side overload sheds
  uint64_t submit_timeouts = 0;     ///< kBlock waits that hit the deadline
  uint64_t scrub_ticks = 0;         ///< integrity scrubber slices run
  uint64_t integrity_violations = 0;  ///< violations the scrubber surfaced
  uint64_t integrity_repairs = 0;     ///< repair-ladder runs that healed
  uint64_t integrity_refusals = 0;    ///< ladder exhaustions (refuse-serve)
};

enum class SubmitStatus {
  kAccepted,            ///< queued (or merged) for the writer
  kRejectedValidation,  ///< pre-admission checks failed (see diagnostics)
  kRejectedOverflow,    ///< queue full under OverflowPolicy::kReject
  kRejectedStopped,     ///< host not running (or Stop in progress)
  kRejectedTimeout,     ///< kBlock wait exceeded HostConfig::submit_timeout_ms
  kShedOverload,        ///< overload layer shed it; retry_after_ms hints when
};

struct SubmitResult {
  SubmitStatus status = SubmitStatus::kRejectedStopped;
  bool coalesced = false;  ///< accepted by merging into a pending batch
  std::vector<BatchDiagnostic> diagnostics;  ///< per-item findings
  /// 32-hex trace id of this batch's flight ("" with tracing disabled or
  /// the host stopped) — the key into /traces/<id> and the event log.
  std::string trace_id;
  /// Backoff hint for kShedOverload / kRejectedTimeout: how long the
  /// submitter should wait before retrying (0 = no hint).
  double retry_after_ms = 0.0;
  /// Which mechanism shed it: "codel", "cost", "ladder", "breaker" or
  /// "integrity" ("" when not shed).
  std::string shed_reason;
  bool accepted() const { return status == SubmitStatus::kAccepted; }
};

/// Concurrent serving host: owns a MidasEngine behind one maintenance
/// writer thread and serves readers from immutable, atomically swapped
/// PanelSnapshots.
///
/// Threading contract:
///  - `snapshot()` is lock-free and wait-free for any number of reader
///    threads; a reader never blocks on (or observes the middle of) a
///    maintenance round.
///  - `Submit()` may be called from any thread; it validates against the
///    latest snapshot, then enqueues per the overflow policy (kBlock is the
///    only way it blocks).
///  - The engine itself is touched only by the writer thread after Start().
///
/// Fault handling (the robustness loop):
///  1. Every admitted batch is re-validated against the authoritative
///     database, then applied under retry-with-exponential-backoff, each
///     attempt with a tighter ExecBudget (HostConfig budget knobs).
///  2. A failed attempt leaves the engine torn; the host restores it
///     *in-process* from `<engine_dir>/snapshot` + journal (RecoverEngine)
///     and re-baselines with a checkpoint — readers keep the last published
///     panel throughout, so the panel is never unavailable.
///  3. A batch still failing after max_attempts is quarantined: serialized
///     to a greppable file (quarantine.h), counted in
///     `midas_quarantined_batches`, recorded in the event log — and the
///     stream continues with the next batch.
class EngineHost {
 public:
  /// Takes ownership of `engine` (Initialize() is run by Start if needed).
  /// `engine_dir` is the host's durable state: `<engine_dir>/snapshot`,
  /// `<engine_dir>/journal.log` and the quarantine directory live there.
  EngineHost(std::unique_ptr<MidasEngine> engine, std::string engine_dir,
             HostConfig config = HostConfig());
  ~EngineHost();

  EngineHost(const EngineHost&) = delete;
  EngineHost& operator=(const EngineHost&) = delete;

  /// Checkpoints the engine (recovery baseline), opens the journal,
  /// publishes the initial snapshot and starts the writer thread. Returns
  /// false (with *error) when the durable state cannot be set up.
  bool Start(std::string* error = nullptr);

  /// Stops admission, drains the queue (every already-accepted batch is
  /// applied or quarantined), and joins the writer. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// True when in-process recovery failed and the writer gave up: the last
  /// published snapshot keeps serving, but no further batch is applied.
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  /// Admission-controlled entry of one ΔD into the update stream. Graphs
  /// must be labelled against an engine-consistent dictionary (i.e. ids from
  /// a PanelSnapshot's `labels`); to introduce *new* labels use the overload
  /// below.
  SubmitResult Submit(BatchUpdate batch);

  /// Same, for batches labelled against `labels` — a producer-private
  /// dictionary (start from `snapshot()->labels`, Intern new names into a
  /// copy). The writer remaps by name before applying, so producers never
  /// touch the live engine's dictionary.
  SubmitResult Submit(BatchUpdate batch, const LabelDictionary& labels);

  /// The current panel — lock-free epoch read; never nullptr after Start().
  PanelSnapshotPtr snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Blocks until the queue is drained and no round is in flight (or
  /// `timeout` elapses). Returns true when idle was reached.
  bool WaitIdle(std::chrono::milliseconds timeout);

  HostStats stats() const;
  size_t queue_depth() const { return queue_.depth(); }
  const std::string& engine_dir() const { return engine_dir_; }
  const std::string& quarantine_dir() const { return quarantine_dir_; }

  /// Attaches a maintenance event log: per-round records from the engine
  /// plus host-level `serve_event` lines (quarantines, writer-side
  /// rejects). Call before Start; non-owning.
  void SetEventLog(obs::MaintenanceEventLog* log) { event_log_ = log; }

  /// Bound telemetry port (resolves HostConfig::telemetry_port == 0 to the
  /// ephemeral port actually bound); -1 when the server is disabled.
  int telemetry_port() const {
    return telemetry_ != nullptr ? telemetry_->port() : -1;
  }
  /// The telemetry server itself (nullptr when disabled) — for registering
  /// extra routes before Start.
  obs::TelemetryServer* telemetry() { return telemetry_.get(); }

  /// Current pattern-quality drift status (always false with sli_enabled
  /// off). /healthz reports 503 while this is true.
  bool quality_drifted() const {
    return config_.sli_enabled && drift_.drifted();
  }
  const obs::QualityDriftDetector& drift_detector() const { return drift_; }

  /// Most recent committed round's MaintenanceStats (thread-safe copy;
  /// false when no round has committed yet).
  bool LastRoundStats(MaintenanceStats* out) const;

  /// Flight records of recent batches (lock-free ring; see obs/flight.h).
  /// Served on /traces and /traces/<id> when telemetry is on.
  const obs::FlightRecorder& flights() const { return flights_; }

  /// In-process metric history / burn-rate alerter (nullptr when
  /// HostConfig::history_enabled is off or the host never started).
  const obs::MetricHistory* metric_history() const { return history_.get(); }
  const obs::BurnRateAlerter* alerter() const { return alerter_.get(); }
  /// The host's virtual-time clock for history/alerting: milliseconds since
  /// Start (monotonic).
  double HistoryNowMs() const;

  // --- Overload-resilience introspection ---------------------------------

  /// Current degradation-ladder rung (kHealthy when the watchdog is off).
  OverloadState overload_state() const { return ladder_.state(); }
  const DegradationLadder& ladder() const { return ladder_; }
  const CircuitBreaker& breaker() const { return breaker_; }
  const AdmissionController& admission_controller() const {
    return admission_ctrl_;
  }
  /// The watchdog's budget tracker. Tests and chaos drivers inject
  /// deterministic pressure via SetSyntheticBytes; the writer samples it
  /// once per loop iteration.
  MemoryBudget& memory_budget() { return memory_; }
  const MemoryBudget& memory_budget() const { return memory_; }
  /// Every ladder/breaker state change since Start, in order — the evidence
  /// a seeded chaos drill compares across runs. Integrity repair-ladder
  /// transitions appear here too (source "integrity").
  const OverloadTransitionLog& overload_transitions() const {
    return overload_log_;
  }

  // --- Durable-state integrity ------------------------------------------

  /// The self-healing escalation ladder the scrubber climbs when a
  /// violation surfaces. Each rung is tried in order; each success is
  /// re-verified (disk tiers + full deep check) before the host trusts it.
  enum class RepairRung {
    kNone = 0,            ///< healthy / repaired
    kRebuildViews,        ///< re-derive every maintained view + checkpoint
    kRestoreSnapshot,     ///< RecoverEngine from snapshot + journal replay
    kRunFromScratch,      ///< rebuild the engine from the live database
    kRefuseServe,         ///< ladder exhausted: refuse new batches
  };
  static const char* RepairRungName(RepairRung rung);

  /// True when the repair ladder exhausted every rung: Submit sheds with
  /// reason "integrity", /healthz reports 503 with cause "integrity", and
  /// the last published snapshot keeps serving reads. The scrubber keeps
  /// retrying the ladder; a later success lifts the refusal.
  bool integrity_failed() const {
    return integrity_failed_.load(std::memory_order_acquire);
  }
  /// Copy of the most recent integrity report (thread-safe; empty before
  /// the scrubber's first finding or completed lap).
  IntegrityReport last_integrity_report() const;
  /// Round seq of the last state that passed a full clean verification lap.
  uint64_t integrity_verified_seq() const;

 private:
  void WriterLoop();
  SubmitResult SubmitInternal(BatchUpdate batch,
                              std::shared_ptr<const LabelDictionary> labels);
  void RunBatch(BoundedUpdateQueue::Item item);
  /// Drops the torn engine and restores from snapshot+journal; re-attaches
  /// journal/event log and re-baselines with a checkpoint. False when the
  /// host could not get a healthy engine back.
  bool RecoverInProcess(const std::string& why);
  /// Wires a (recovered or rebuilt) engine into the host: journal, event
  /// log, drift detector, round limits, thread count, ladder shed posture.
  void AttachEngine(MidasEngine* engine);
  /// One scrubber slice on the writer's idle tick: disk tiers on cycle
  /// start, then deep per-pattern slices until a lap completes. Violations
  /// feed metrics/events and (when scrub.repair) the repair ladder.
  void ScrubTick();
  /// Climbs the repair ladder until a rung heals (re-verified clean) or
  /// every rung failed — then flips the host into integrity refusal.
  /// Returns true when the state was repaired.
  bool RunRepairLadder(const std::string& cause);
  bool RepairRebuildViews(std::string* error);
  bool RepairRestoreSnapshot(std::string* error);
  bool RepairRunFromScratch(std::string* error);
  /// Post-repair proof: disk tiers + unbounded deep check. The host never
  /// publishes a repaired panel that fails this.
  bool VerifyAfterRepair(IntegrityReport* report);
  /// Publishes the report copy readers see on /integrityz.
  void SetIntegrityReport(const IntegrityReport& report, uint64_t verified_seq);
  /// Scrub flight record: outcome "integrity_violation" /
  /// "integrity_repaired" / "integrity_refused", admission "scrub".
  void RecordIntegrityEvent(const char* outcome, const std::string& detail);
  void PublishSnapshot();
  void Quarantine(const BatchUpdate& batch, const LabelDictionary& labels,
                  uint64_t seq, int attempts, const std::string& reason);
  void AppendServeEvent(const std::string& kind, uint64_t seq,
                        const std::string& detail);
  /// Publishes one finished flight record: ring + `trace_event` log line.
  void RecordFlight(std::shared_ptr<const obs::FlightRecord> record);
  /// Writer-side completion: folds the trace's accumulated cost counters,
  /// the SLO/drift flags and the quality delta vs `pre` into the record,
  /// then publishes it.
  void FinishFlight(std::shared_ptr<obs::FlightRecord> record,
                    const obs::TraceContext* trace,
                    const PanelSnapshotPtr& pre);
  void MaybeCheckpoint();
  void UpdateGauges();
  /// Writer, once per loop iteration: sample the registry into the history
  /// rings and re-evaluate the burn-rate alerts.
  void HistoryTick();
  /// Feeds one committed round into the alerter (SLO verdict + the
  /// published snapshot's quality SLIs) and drains transitions.
  void ObserveRoundForAlerts(const MaintenanceStats& stats);
  /// Publishes alert transitions: midas_alert_* gauges, transition counter,
  /// `alert_event` JSONL lines.
  void DrainAlertTransitions(double now_ms);
  /// Writer, once per loop iteration: sample the memory watchdog, advance
  /// the degradation ladder one rung at most, engage/disengage rung actions.
  void WatchdogTick();
  /// Engages (escalating) or reverts (recovering) the actions between two
  /// adjacent ladder rungs. Writer-thread-only.
  void ApplyRungActions(OverloadState from, OverloadState to);
  /// Records one resilience state change: transition log + serve_event.
  void LogOverloadTransition(const char* source, const std::string& from,
                             const std::string& to, const std::string& reason);
  /// Compares the breaker's state against the last one the writer logged
  /// and records the transition when it moved.
  void NoteBreakerState(const char* reason);
  /// The round limits attempt 1 runs under: the engine's own, tightened to
  /// the degraded caps when the ladder is at kTightenBudgets or above.
  void EffectiveBaseLimits(double* deadline_ms, uint64_t* step_limit) const;
  /// Registers /metrics, /varz, /healthz, /statusz and /spans on the
  /// telemetry server. Handlers run on the server thread and only touch
  /// thread-safe host state (snapshots, atomics, mutex-guarded copies).
  void InstallTelemetryRoutes();

  const std::string engine_dir_;
  const std::string quarantine_dir_;
  HostConfig config_;
  double base_deadline_ms_ = 0.0;   ///< engine's own round limits, saved
  uint64_t base_step_limit_ = 0;    ///< at Start for per-attempt overrides

  std::unique_ptr<MidasEngine> engine_;  ///< writer-thread-only after Start
  UpdateJournal journal_;
  obs::MaintenanceEventLog* event_log_ = nullptr;  ///< non-owning
  obs::QualityDriftDetector drift_;                ///< fed by the writer
  obs::FlightRecorder flights_;                    ///< per-batch trace ring
  std::unique_ptr<obs::TelemetryServer> telemetry_;
  std::unique_ptr<obs::MetricHistory> history_;    ///< nullptr when disabled
  std::unique_ptr<obs::BurnRateAlerter> alerter_;  ///< nullptr when disabled
  std::chrono::steady_clock::time_point history_epoch_{};

  /// Last committed round's stats, copied out of the writer for /statusz.
  mutable std::mutex last_stats_mu_;
  MaintenanceStats last_stats_;
  bool has_last_stats_ = false;

  // Overload-resilience layer (see serve/overload.h). The controller and
  // ladder are read from Submit via their atomic mirrors; all mutation
  // happens on the writer thread (plus Admit's own mutex).
  AdmissionController admission_ctrl_;
  CircuitBreaker breaker_;
  DegradationLadder ladder_;
  MemoryBudget memory_;
  OverloadTransitionLog overload_log_;
  /// Rung whose actions are currently engaged (writer-thread-only; trails
  /// ladder_.state() by the ApplyRungActions call).
  OverloadState applied_rung_ = OverloadState::kHealthy;
  /// Breaker state as of the writer's last transition log entry.
  CircuitBreaker::State logged_breaker_state_ = CircuitBreaker::State::kClosed;

  // Integrity scrubber state. The cursor/cycle fields are writer-thread-
  // only; the report/cause mirrors behind integrity_mu_ serve /integrityz
  // and tests; integrity_failed_ is the Submit-visible refusal flag.
  int scrub_phase_ = 0;          ///< 0 = disk tiers next, 1 = deep slices
  size_t scrub_cursor_ = 0;      ///< deep-tier resume position
  uint64_t refused_backoff_ticks_ = 0;  ///< ladder-retry pacing while refused
  IntegrityReport scrub_cycle_;  ///< accumulates the current lap
  RepairRung logged_rung_ = RepairRung::kNone;  ///< writer-thread-only
  std::atomic<bool> integrity_failed_{false};
  mutable std::mutex integrity_mu_;
  IntegrityReport last_integrity_report_;   ///< guarded by integrity_mu_
  std::string integrity_cause_;             ///< guarded by integrity_mu_
  uint64_t integrity_verified_seq_ = 0;     ///< guarded by integrity_mu_

  BoundedUpdateQueue queue_;
  std::thread writer_;
  std::atomic<bool> running_{false};
  std::atomic<bool> dead_{false};
  /// Batches fully processed by the writer (applied, quarantined or
  /// writer-rejected), counting coalesced parts — WaitIdle compares this
  /// against the queue's admitted() count.
  std::atomic<uint64_t> drained_{0};
  uint64_t rounds_since_checkpoint_ = 0;  ///< writer-thread-only

  std::atomic<std::shared_ptr<const PanelSnapshot>> snapshot_{nullptr};

  // HostStats counters (relaxed atomics; written from Submit + writer).
  std::atomic<uint64_t> submitted_{0}, admitted_{0}, rejected_validation_{0},
      rejected_overflow_{0}, coalesced_{0}, writer_rejected_{0}, rounds_ok_{0},
      retries_{0}, recoveries_{0}, recovery_failures_{0}, quarantined_{0},
      checkpoints_{0}, shed_overload_{0}, submit_timeouts_{0}, scrub_ticks_{0},
      integrity_violations_{0}, integrity_repairs_{0}, integrity_refusals_{0};
};

}  // namespace serve
}  // namespace midas

#endif  // MIDAS_SERVE_ENGINE_HOST_H_
