#ifndef MIDAS_SERVE_OVERLOAD_H_
#define MIDAS_SERVE_OVERLOAD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace midas {
namespace serve {

// ---------------------------------------------------------------------------
// Adaptive admission: CoDel-style sojourn control + cost-aware estimates.
// ---------------------------------------------------------------------------

struct AdmissionControlConfig {
  bool enabled = true;
  /// CoDel target: acceptable queue wait. Shedding starts when the minimum
  /// sojourn observed over a full interval stays above this.
  double target_sojourn_ms = 150.0;
  /// CoDel initial interval; every consecutive shed halves it (floor below),
  /// so a persistently congested queue sheds geometrically harder.
  double interval_ms = 1000.0;
  double min_interval_ms = 25.0;
  /// EWMA smoothing for the per-edge round-latency estimate the cost model
  /// uses (fed from committed MaintenanceStats).
  double ewma_alpha = 0.2;
  /// Cost ceiling: shed a batch whose estimated apply cost
  /// (|Δ| edges x per-edge EWMA) exceeds this. 0 disables the cost check.
  double max_estimated_cost_ms = 0.0;
  /// Floor of the retry-after hint handed to shed submitters.
  double retry_after_floor_ms = 10.0;
  /// Cap of the retry-after hint. The cost-model hint scales with how far a
  /// batch overshoots the ceiling, which on a cold EWMA (or one absurd
  /// batch) can compute hours — no client should be told to go away that
  /// long. Non-finite hints clamp here too.
  double retry_after_cap_ms = 30000.0;
};

/// Admission verdict for one batch at Submit time.
struct AdmissionDecision {
  bool admit = true;
  double retry_after_ms = 0.0;
  /// "", "codel", "cost", "ladder", "breaker" — the serve_event spelling.
  const char* reason = "";
};

/// Sojourn-time admission controller in front of BoundedUpdateQueue.
///
/// The writer reports every popped part's queue wait (ObserveSojourn) and
/// every committed round's per-edge latency (ObserveRound). Submitters ask
/// Admit(): while the minimum sojourn over the current interval exceeds the
/// target, the controller is *shedding* — submissions are rejected with a
/// retry-after hint equal to the current interval, and each consecutive shed
/// halves the interval (CoDel's control law, adapted from packet drops to
/// admission rejects). One observation under target resets the controller.
///
/// Cost-aware admission rides along: the per-edge EWMA turns |Δ| into an
/// estimated apply cost, so a single pathological batch can be shed even
/// when the queue itself is calm.
///
/// Thread safety: all entry points take one mutex; both sides are
/// per-batch-rate, never per-kernel-step.
class AdmissionController {
 public:
  explicit AdmissionController(
      AdmissionControlConfig config = AdmissionControlConfig());

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Writer side, on Pop: one part's queue wait.
  void ObserveSojourn(double sojourn_ms);
  /// Writer side, after a committed round: feeds the per-edge latency EWMA.
  /// `delta_edges` is the batch's total edge count (insertions) plus its
  /// deletion count; 0-edge batches charge as 1.
  void ObserveRound(size_t delta_edges, double round_ms);

  /// Submit side: admit or shed this batch.
  AdmissionDecision Admit(size_t delta_edges);

  bool shedding() const { return shedding_.load(std::memory_order_relaxed); }
  double per_edge_ewma_ms() const;
  uint64_t shed_total() const {
    return shed_total_.load(std::memory_order_relaxed);
  }

  const AdmissionControlConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Clamps a raw backoff hint into
  /// [retry_after_floor_ms, retry_after_cap_ms]; non-finite or non-positive
  /// inputs land on the floor.
  double ClampRetryAfter(double hint_ms) const;

  const AdmissionControlConfig config_;
  mutable std::mutex mu_;
  // CoDel window state (guarded by mu_).
  bool window_open_ = false;
  Clock::time_point window_start_{};
  double window_min_ms_ = 0.0;
  double current_interval_ms_ = 0.0;
  // Per-edge latency EWMA (guarded by mu_).
  bool ewma_primed_ = false;
  double ewma_ms_ = 0.0;

  std::atomic<bool> shedding_{false};
  std::atomic<uint64_t> shed_total_{0};
};

// ---------------------------------------------------------------------------
// Circuit breaker around the maintenance writer.
// ---------------------------------------------------------------------------

struct CircuitBreakerConfig {
  bool enabled = true;
  /// Consecutive failed apply attempts (across batches) that open the
  /// breaker. 0 disables the failure trip.
  int failure_threshold = 3;
  /// Round-latency SLO; `slo_violation_threshold` consecutive committed
  /// rounds over it also open the breaker. 0 disables the latency trip.
  double latency_slo_ms = 0.0;
  int slo_violation_threshold = 5;
  /// Open-state cooldown before the half-open probe; doubles on every
  /// failed probe, capped below.
  double open_cooldown_ms = 100.0;
  double cooldown_multiplier = 2.0;
  double cooldown_max_ms = 5000.0;
};

/// Writer-side circuit breaker: consecutive apply failures (or latency-SLO
/// breaches) trip it open; while open the writer stops consuming the queue
/// (admission sheds upstream) until the cooldown elapses, then exactly one
/// probe batch flows (half-open). A successful probe closes the breaker and
/// resets the cooldown; a failed probe reopens it with a doubled cooldown.
///
/// State is written only by the writer thread; the atomic mirrors make the
/// state readable from Submit and telemetry handlers.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = CircuitBreakerConfig());

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Writer: may a batch be attempted now? Open -> false until the cooldown
  /// elapses, then the call itself transitions to half-open and admits the
  /// probe. Always true when disabled.
  bool AllowAttempt();

  /// Writer: outcome of an attempted batch. Success closes a half-open
  /// breaker and clears the failure streak; failure reopens/trips per the
  /// thresholds. Returns true when the breaker changed state.
  bool RecordSuccess(double round_ms);
  bool RecordFailure();

  State state() const {
    return static_cast<State>(state_.load(std::memory_order_relaxed));
  }
  bool open() const { return state() != State::kClosed; }
  /// Milliseconds until the next half-open probe (0 when not open).
  double RetryAfterMs() const;
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

  static const char* StateName(State state);
  const CircuitBreakerConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;
  void Open();

  const CircuitBreakerConfig config_;
  // Writer-thread-only working state.
  int consecutive_failures_ = 0;
  int consecutive_slo_ = 0;
  double cooldown_ms_ = 0.0;
  Clock::time_point opened_at_{};
  // Cross-thread mirrors.
  std::atomic<int> state_{static_cast<int>(State::kClosed)};
  std::atomic<double> retry_hint_ms_{0.0};
  std::atomic<uint64_t> trips_{0};
};

// ---------------------------------------------------------------------------
// Degradation ladder driven by the memory watchdog.
// ---------------------------------------------------------------------------

/// The ladder's states, in order of increasing severity. Each rung keeps
/// every action of the rungs below it.
enum class OverloadState {
  kHealthy = 0,        ///< full-quality maintenance
  kTrimCache = 1,      ///< ComputeCache trimmed to a fraction
  kTightenBudgets = 2, ///< rounds run under degraded deadline/step caps
  kCoalesceOnly = 3,   ///< queue overflow policy forced to coalesce
  kShedWork = 4,       ///< diversity refresh skipped, candidate gen sampled
  kLameDuck = 5,       ///< reject-all admission; existing queue drains
};

const char* OverloadStateName(OverloadState state);

struct DegradationLadderConfig {
  bool enabled = true;
  /// Pressure fraction (tracked bytes / budget) at which each rung engages,
  /// in OverloadState order starting at kTrimCache. Must be increasing.
  double enter_pressure[5] = {0.70, 0.80, 0.88, 0.94, 0.98};
  /// Hysteresis: a rung disengages only once pressure is below
  /// enter - exit_margin AND the state has been held for min_dwell_evals
  /// evaluations. Margin keeps the ladder from flapping around a threshold;
  /// the dwell is counted in evaluations (per-round ticks), not wall time,
  /// so scripted drills transition identically across runs.
  double exit_margin = 0.08;
  int min_dwell_evals = 2;
};

/// One recorded state change of the resilience layer (ladder rungs and
/// breaker states share the log, so a drill's full story is one sequence).
struct OverloadTransition {
  std::string source;  ///< "ladder", "breaker" or "integrity"
  std::string from;
  std::string to;
  uint64_t eval = 0;   ///< evaluation tick the transition happened at
  std::string reason;  ///< e.g. "pressure=0.91"
};

/// Memory-pressure-driven degradation ladder with hysteresis.
///
/// Evaluate() is called by the writer once per watchdog tick with the
/// current pressure fraction; the returned target state moves at most one
/// rung per call (both directions), so actions engage in order and a
/// pressure spike cannot leap straight to lame-duck without passing the
/// cheaper remedies. Deterministic: state depends only on the sequence of
/// pressure readings, never on the clock.
class DegradationLadder {
 public:
  explicit DegradationLadder(
      DegradationLadderConfig config = DegradationLadderConfig());

  DegradationLadder(const DegradationLadder&) = delete;
  DegradationLadder& operator=(const DegradationLadder&) = delete;

  /// One watchdog tick. Returns the (possibly unchanged) current state.
  OverloadState Evaluate(double pressure);

  OverloadState state() const {
    return static_cast<OverloadState>(state_.load(std::memory_order_relaxed));
  }
  /// True when the current state applies the given rung's action (rungs are
  /// cumulative).
  bool AtLeast(OverloadState rung) const {
    return static_cast<int>(state()) >= static_cast<int>(rung);
  }
  uint64_t evals() const { return evals_.load(std::memory_order_relaxed); }

  const DegradationLadderConfig& config() const { return config_; }

 private:
  double EnterThreshold(int rung) const;

  const DegradationLadderConfig config_;
  // Writer-thread-only working state.
  int dwell_ = 0;
  // Cross-thread mirrors.
  std::atomic<int> state_{static_cast<int>(OverloadState::kHealthy)};
  std::atomic<uint64_t> evals_{0};
};

/// Bounded, mutex-guarded log of OverloadTransitions — the evidence the
/// deterministic chaos drill compares across runs, and the /statusz
/// "overload.transitions" table.
class OverloadTransitionLog {
 public:
  explicit OverloadTransitionLog(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void Append(OverloadTransition t);
  std::vector<OverloadTransition> Snapshot() const;
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<OverloadTransition> entries_;
  std::atomic<uint64_t> total_{0};
};

// ---------------------------------------------------------------------------
// The knob bundle EngineHost exposes.
// ---------------------------------------------------------------------------

struct OverloadConfig {
  AdmissionControlConfig admission;
  CircuitBreakerConfig breaker;
  DegradationLadderConfig ladder;

  /// Memory watchdog budget over the tracked components (engine database,
  /// ComputeCache, update queue, flight recorder). 0 disables the watchdog
  /// (the ladder then never leaves kHealthy on its own).
  size_t memory_budget_bytes = 0;
  /// Also sample /proc RSS into `midas_memory_rss_bytes` (observability
  /// only; never feeds the ladder).
  bool sample_rss = false;

  /// Ladder actions.
  /// kTrimCache: ComputeCache trimmed to this fraction of its entries.
  double cache_trim_fraction = 0.5;
  /// kTightenBudgets: rounds run under min(engine deadline, this) and
  /// min(engine step cap, this).
  double degraded_deadline_ms = 50.0;
  uint64_t degraded_step_limit = 200000;
  /// kShedWork: candidate generation capped at this many candidates.
  size_t shed_candidate_cap = 16;
};

}  // namespace serve
}  // namespace midas

#endif  // MIDAS_SERVE_OVERLOAD_H_
