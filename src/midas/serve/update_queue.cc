#include "midas/serve/update_queue.h"

#include <set>
#include <utility>

namespace midas {
namespace serve {

const char* OverflowPolicyName(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock:
      return "block";
    case OverflowPolicy::kReject:
      return "reject";
    case OverflowPolicy::kCoalesce:
      return "coalesce";
  }
  return "unknown";
}

size_t ApproxBatchBytes(const BatchUpdate& batch) {
  size_t bytes = sizeof(BatchUpdate);
  for (const Graph& g : batch.insertions) {
    const size_t v = g.NumVertices();
    bytes += sizeof(Graph);
    bytes += v * (sizeof(Label) + sizeof(std::vector<VertexId>));
    bytes += 2 * g.NumEdges() * sizeof(VertexId);  // both adjacency rows
  }
  bytes += batch.deletions.size() * sizeof(GraphId);
  return bytes;
}

void MergeBatches(BatchUpdate* base, BatchUpdate&& extra) {
  for (Graph& g : extra.insertions) {
    base->insertions.push_back(std::move(g));
  }
  std::set<GraphId> seen(base->deletions.begin(), base->deletions.end());
  for (GraphId id : extra.deletions) {
    if (seen.insert(id).second) base->deletions.push_back(id);
  }
}

BoundedUpdateQueue::PushOutcome BoundedUpdateQueue::Push(
    BatchUpdate batch, std::shared_ptr<const LabelDictionary> labels,
    std::shared_ptr<obs::TraceContext> trace,
    std::chrono::milliseconds block_timeout) {
  const auto now = std::chrono::steady_clock::now();
  const size_t batch_bytes = ApproxBatchBytes(batch);
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return PushOutcome::kRejectedClosed;
  if (drain_only_) return PushOutcome::kRejectedDraining;
  if (items_.size() >= capacity_) {
    if (EffectivePolicyLocked() == OverflowPolicy::kBlock) {
      // Wake on space, shutdown, dead consumer, or a ladder policy override
      // — a producer must not sleep through coalesce-only mode.
      const auto woken = [this] {
        return closed_ || drain_only_ || items_.size() < capacity_ ||
               EffectivePolicyLocked() != OverflowPolicy::kBlock;
      };
      if (block_timeout.count() > 0) {
        if (!space_.wait_for(lock, block_timeout, woken)) {
          return PushOutcome::kRejectedTimeout;
        }
      } else {
        space_.wait(lock, woken);
      }
      if (closed_) return PushOutcome::kRejectedClosed;
      if (drain_only_) return PushOutcome::kRejectedDraining;
    }
    if (items_.size() >= capacity_) {
      switch (EffectivePolicyLocked()) {
        case OverflowPolicy::kReject:
          return PushOutcome::kRejectedFull;
        case OverflowPolicy::kCoalesce: {
          items_.back().parts.push_back(Part{std::move(batch),
                                             std::move(labels),
                                             std::move(trace), now,
                                             batch_bytes});
          ++admitted_;
          approx_bytes_ += batch_bytes;
          return PushOutcome::kCoalesced;
        }
        case OverflowPolicy::kBlock:
          // Unreachable: the wait above only returns with space, a policy
          // change, or one of the rejections handled there.
          break;
      }
    }
  }
  Item item;
  item.ticket = next_ticket_++;
  item.parts.push_back(Part{std::move(batch), std::move(labels),
                            std::move(trace), now, batch_bytes});
  items_.push_back(std::move(item));
  ++admitted_;
  approx_bytes_ += batch_bytes;
  ready_.notify_one();
  return PushOutcome::kQueued;
}

bool BoundedUpdateQueue::Pop(Item* out, std::chrono::milliseconds wait) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait_for(lock, wait, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // timeout, or closed and drained
  *out = std::move(items_.front());
  items_.pop_front();
  for (const Part& p : out->parts) {
    approx_bytes_ -= p.approx_bytes <= approx_bytes_ ? p.approx_bytes
                                                     : approx_bytes_;
  }
  space_.notify_one();
  return true;
}

void BoundedUpdateQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  space_.notify_all();
  ready_.notify_all();
}

void BoundedUpdateQueue::SetDrainOnly() {
  std::lock_guard<std::mutex> lock(mu_);
  drain_only_ = true;
  space_.notify_all();
}

bool BoundedUpdateQueue::drain_only() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drain_only_;
}

void BoundedUpdateQueue::SetPolicyOverride(OverflowPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  has_override_ = true;
  override_policy_ = policy;
  // A switch to coalesce frees blocked producers' reason to wait; wake them
  // so they re-evaluate under the new policy (they will re-check the full
  // queue and coalesce instead of sleeping through the overload).
  space_.notify_all();
}

void BoundedUpdateQueue::ClearPolicyOverride() {
  std::lock_guard<std::mutex> lock(mu_);
  has_override_ = false;
}

OverflowPolicy BoundedUpdateQueue::effective_policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EffectivePolicyLocked();
}

size_t BoundedUpdateQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool BoundedUpdateQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

uint64_t BoundedUpdateQueue::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

size_t BoundedUpdateQueue::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return approx_bytes_;
}

}  // namespace serve
}  // namespace midas
