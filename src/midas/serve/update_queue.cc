#include "midas/serve/update_queue.h"

#include <set>
#include <utility>

namespace midas {
namespace serve {

const char* OverflowPolicyName(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock:
      return "block";
    case OverflowPolicy::kReject:
      return "reject";
    case OverflowPolicy::kCoalesce:
      return "coalesce";
  }
  return "unknown";
}

void MergeBatches(BatchUpdate* base, BatchUpdate&& extra) {
  for (Graph& g : extra.insertions) {
    base->insertions.push_back(std::move(g));
  }
  std::set<GraphId> seen(base->deletions.begin(), base->deletions.end());
  for (GraphId id : extra.deletions) {
    if (seen.insert(id).second) base->deletions.push_back(id);
  }
}

BoundedUpdateQueue::PushOutcome BoundedUpdateQueue::Push(
    BatchUpdate batch, std::shared_ptr<const LabelDictionary> labels,
    std::shared_ptr<obs::TraceContext> trace) {
  const auto now = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) return PushOutcome::kRejectedClosed;
  if (items_.size() >= capacity_) {
    switch (policy_) {
      case OverflowPolicy::kReject:
        return PushOutcome::kRejectedFull;
      case OverflowPolicy::kCoalesce: {
        items_.back().parts.push_back(
            Part{std::move(batch), std::move(labels), std::move(trace), now});
        ++admitted_;
        return PushOutcome::kCoalesced;
      }
      case OverflowPolicy::kBlock:
        space_.wait(lock,
                    [this] { return closed_ || items_.size() < capacity_; });
        if (closed_) return PushOutcome::kRejectedClosed;
        break;
    }
  }
  Item item;
  item.ticket = next_ticket_++;
  item.parts.push_back(
      Part{std::move(batch), std::move(labels), std::move(trace), now});
  items_.push_back(std::move(item));
  ++admitted_;
  ready_.notify_one();
  return PushOutcome::kQueued;
}

bool BoundedUpdateQueue::Pop(Item* out, std::chrono::milliseconds wait) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait_for(lock, wait, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // timeout, or closed and drained
  *out = std::move(items_.front());
  items_.pop_front();
  space_.notify_one();
  return true;
}

void BoundedUpdateQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  space_.notify_all();
  ready_.notify_all();
}

size_t BoundedUpdateQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool BoundedUpdateQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

uint64_t BoundedUpdateQueue::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

}  // namespace serve
}  // namespace midas
