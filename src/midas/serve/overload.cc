#include "midas/serve/overload.h"

#include <algorithm>
#include <cmath>

#include "midas/obs/metrics.h"

namespace midas {
namespace serve {

namespace {

void Count(const char* name, uint64_t n = 1) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
  if (!reg.enabled()) return;
  reg.GetCounter(name)->Increment(n);
}

}  // namespace

// --- AdmissionController ---------------------------------------------------

AdmissionController::AdmissionController(AdmissionControlConfig config)
    : config_(std::move(config)) {
  current_interval_ms_ = config_.interval_ms;
}

void AdmissionController::ObserveSojourn(double sojourn_ms) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = Clock::now();
  if (sojourn_ms <= config_.target_sojourn_ms) {
    // One sub-target observation resets the control law: the queue drained
    // below target at least once, so congestion is not persistent.
    window_open_ = false;
    current_interval_ms_ = config_.interval_ms;
    shedding_.store(false, std::memory_order_relaxed);
    return;
  }
  if (!window_open_) {
    window_open_ = true;
    window_start_ = now;
    window_min_ms_ = sojourn_ms;
    return;
  }
  window_min_ms_ = std::min(window_min_ms_, sojourn_ms);
  const double window_ms =
      std::chrono::duration<double, std::milli>(now - window_start_).count();
  if (window_ms >= current_interval_ms_ &&
      window_min_ms_ > config_.target_sojourn_ms) {
    // A full interval of above-target sojourns: start (or keep) shedding.
    shedding_.store(true, std::memory_order_relaxed);
    window_start_ = now;
    window_min_ms_ = sojourn_ms;
  }
}

void AdmissionController::ObserveRound(size_t delta_edges, double round_ms) {
  if (!config_.enabled) return;
  const double per_edge =
      round_ms / static_cast<double>(std::max<size_t>(1, delta_edges));
  std::lock_guard<std::mutex> lock(mu_);
  if (!ewma_primed_) {
    ewma_ms_ = per_edge;
    ewma_primed_ = true;
  } else {
    ewma_ms_ += config_.ewma_alpha * (per_edge - ewma_ms_);
  }
}

double AdmissionController::ClampRetryAfter(double hint_ms) const {
  double floor = config_.retry_after_floor_ms;
  if (!std::isfinite(floor) || floor < 0.0) floor = 0.0;
  double cap = config_.retry_after_cap_ms;
  if (!std::isfinite(cap) || cap < floor) cap = floor;
  if (!std::isfinite(hint_ms) || hint_ms < floor) return floor;
  return std::min(hint_ms, cap);
}

AdmissionDecision AdmissionController::Admit(size_t delta_edges) {
  AdmissionDecision d;
  if (!config_.enabled) return d;

  std::lock_guard<std::mutex> lock(mu_);
  if (shedding_.load(std::memory_order_relaxed)) {
    // Interval halving: every shed admission tightens the control interval,
    // shedding geometrically harder while congestion persists. The writer's
    // next sub-target sojourn resets everything.
    d.admit = false;
    d.reason = "codel";
    d.retry_after_ms = ClampRetryAfter(current_interval_ms_);
    current_interval_ms_ =
        std::max(config_.min_interval_ms, current_interval_ms_ / 2.0);
    shed_total_.fetch_add(1, std::memory_order_relaxed);
    Count("midas_serve_shed_total");
    Count("midas_serve_shed_codel_total");
    return d;
  }

  if (config_.max_estimated_cost_ms > 0.0 && ewma_primed_) {
    const double est =
        ewma_ms_ * static_cast<double>(std::max<size_t>(1, delta_edges));
    if (est > config_.max_estimated_cost_ms) {
      d.admit = false;
      d.reason = "cost";
      // The hint scales with how far over the ceiling the batch is: a
      // 2x-over batch should not retry sooner than a just-over one.
      d.retry_after_ms = ClampRetryAfter(est - config_.max_estimated_cost_ms);
      shed_total_.fetch_add(1, std::memory_order_relaxed);
      Count("midas_serve_shed_total");
      Count("midas_serve_shed_cost_total");
      return d;
    }
  }
  return d;
}

double AdmissionController::per_edge_ewma_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_primed_ ? ewma_ms_ : 0.0;
}

// --- CircuitBreaker --------------------------------------------------------

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(std::move(config)) {
  cooldown_ms_ = config_.open_cooldown_ms;
}

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

bool CircuitBreaker::AllowAttempt() {
  if (!config_.enabled) return true;
  switch (state()) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      // The probe is already in flight this cycle; the writer is single-
      // threaded, so a second AllowAttempt in half-open means the probe's
      // outcome was never recorded — let it through rather than wedge.
      return true;
    case State::kOpen: {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - opened_at_)
              .count();
      if (elapsed_ms < cooldown_ms_) {
        retry_hint_ms_.store(std::max(0.0, cooldown_ms_ - elapsed_ms),
                             std::memory_order_relaxed);
        return false;
      }
      state_.store(static_cast<int>(State::kHalfOpen),
                   std::memory_order_relaxed);
      retry_hint_ms_.store(0.0, std::memory_order_relaxed);
      return true;  // this attempt is the probe
    }
  }
  return true;
}

bool CircuitBreaker::RecordSuccess(double round_ms) {
  if (!config_.enabled) return false;
  consecutive_failures_ = 0;
  bool changed = false;
  if (state() == State::kHalfOpen) {
    state_.store(static_cast<int>(State::kClosed), std::memory_order_relaxed);
    cooldown_ms_ = config_.open_cooldown_ms;
    consecutive_slo_ = 0;
    changed = true;
  }
  if (config_.latency_slo_ms > 0.0 && round_ms > config_.latency_slo_ms) {
    if (++consecutive_slo_ >= std::max(1, config_.slo_violation_threshold) &&
        state() == State::kClosed) {
      Open();
      return true;
    }
  } else {
    consecutive_slo_ = 0;
  }
  return changed;
}

bool CircuitBreaker::RecordFailure() {
  if (!config_.enabled) return false;
  consecutive_slo_ = 0;
  if (state() == State::kHalfOpen) {
    // Failed probe: reopen with a doubled cooldown.
    cooldown_ms_ = std::min(config_.cooldown_max_ms,
                            cooldown_ms_ * config_.cooldown_multiplier);
    Open();
    return true;
  }
  if (state() == State::kClosed && config_.failure_threshold > 0 &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    Open();
    return true;
  }
  return false;
}

void CircuitBreaker::Open() {
  consecutive_failures_ = 0;
  opened_at_ = Clock::now();
  state_.store(static_cast<int>(State::kOpen), std::memory_order_relaxed);
  retry_hint_ms_.store(cooldown_ms_, std::memory_order_relaxed);
  trips_.fetch_add(1, std::memory_order_relaxed);
  Count("midas_breaker_trips_total");
}

double CircuitBreaker::RetryAfterMs() const {
  if (state() != State::kOpen) return 0.0;
  return retry_hint_ms_.load(std::memory_order_relaxed);
}

// --- DegradationLadder -----------------------------------------------------

const char* OverloadStateName(OverloadState state) {
  switch (state) {
    case OverloadState::kHealthy:
      return "healthy";
    case OverloadState::kTrimCache:
      return "trim_cache";
    case OverloadState::kTightenBudgets:
      return "tighten_budgets";
    case OverloadState::kCoalesceOnly:
      return "coalesce_only";
    case OverloadState::kShedWork:
      return "shed_work";
    case OverloadState::kLameDuck:
      return "lame_duck";
  }
  return "unknown";
}

DegradationLadder::DegradationLadder(DegradationLadderConfig config)
    : config_(std::move(config)) {}

double DegradationLadder::EnterThreshold(int rung) const {
  // rung 1 (kTrimCache) .. 5 (kLameDuck) map to enter_pressure[0..4].
  return config_.enter_pressure[std::clamp(rung, 1, 5) - 1];
}

OverloadState DegradationLadder::Evaluate(double pressure) {
  evals_.fetch_add(1, std::memory_order_relaxed);
  if (!config_.enabled) return state();

  const int current = static_cast<int>(state());
  int next = current;

  if (current < static_cast<int>(OverloadState::kLameDuck) &&
      pressure >= EnterThreshold(current + 1)) {
    // Escalate one rung per evaluation: actions engage in order, so the
    // cheap remedies always get a round to work before the harsher ones.
    next = current + 1;
  } else if (current > static_cast<int>(OverloadState::kHealthy) &&
             pressure < EnterThreshold(current) - config_.exit_margin) {
    // De-escalate only after the dwell: a reading just below the exit line
    // must persist, or the ladder would flap with the sampler's noise.
    if (++dwell_ >= std::max(1, config_.min_dwell_evals)) {
      next = current - 1;
    }
  } else {
    dwell_ = 0;
  }

  if (next != current) {
    dwell_ = 0;
    state_.store(next, std::memory_order_relaxed);
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Current();
    if (reg.enabled()) {
      reg.GetGauge("midas_overload_state")->Set(static_cast<double>(next));
    }
    Count("midas_overload_transitions_total");
  }
  return state();
}

// --- OverloadTransitionLog -------------------------------------------------

void OverloadTransitionLog::Append(OverloadTransition t) {
  std::lock_guard<std::mutex> lock(mu_);
  total_.fetch_add(1, std::memory_order_relaxed);
  if (entries_.size() >= capacity_) {
    entries_.erase(entries_.begin());
  }
  entries_.push_back(std::move(t));
}

std::vector<OverloadTransition> OverloadTransitionLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

}  // namespace serve
}  // namespace midas
