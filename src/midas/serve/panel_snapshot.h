#ifndef MIDAS_SERVE_PANEL_SNAPSHOT_H_
#define MIDAS_SERVE_PANEL_SNAPSHOT_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "midas/graph/graph_database.h"
#include "midas/maintain/midas.h"
#include "midas/maintain/small_patterns.h"
#include "midas/select/pattern.h"

namespace midas {
namespace serve {

/// Immutable, self-contained view of everything a GUI needs to render the
/// canned-pattern panel: the pattern set, its quality, the small-pattern
/// companion panel, and enough database metadata to pre-validate updates.
///
/// EngineHost publishes one after every successful maintenance round via an
/// atomic epoch swap (`std::atomic<std::shared_ptr<const PanelSnapshot>>`),
/// so any number of reader threads can grab the current panel without ever
/// blocking on — or observing the torn middle of — a maintenance round.
/// A snapshot is frozen at publication; readers share it by shared_ptr and
/// it dies when the last reader drops it.
struct PanelSnapshot {
  uint64_t round_seq = 0;  ///< completed maintenance rounds at publication
  size_t db_size = 0;      ///< |D| at publication
  PatternSet patterns;     ///< the canned-pattern panel P
  SmallPatternPanel small_panel;  ///< the η <= 2 companion panel
  PatternQuality quality;  ///< scov/lcov/div/cog of `patterns`
  /// Sorted live graph ids at publication — the view ValidateBatch uses to
  /// pre-check deletion ids without touching the (busy) engine.
  std::shared_ptr<const std::vector<GraphId>> live_ids;
  /// Frozen copy of the engine's label dictionary at publication. Producers
  /// that mint graphs with *new* labels copy this, Intern into the copy, and
  /// pass the copy to Submit — the live engine dictionary is never shared
  /// across threads (the writer remaps by name when the round starts).
  std::shared_ptr<const LabelDictionary> labels;
  /// Frozen copy of the engine's provenance ledger (obs/lineage.h) at
  /// publication — the /patternz and /lineage/<id> endpoints read it
  /// lock-free. Never nullptr after Start (may be an empty ledger).
  std::shared_ptr<const obs::PatternLedger> lineage;
  std::chrono::steady_clock::time_point created_at{};

  /// Milliseconds since this snapshot was published (staleness signal; the
  /// host also exports it as the `midas_serve_snapshot_age_ms` gauge).
  double AgeMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - created_at)
        .count();
  }

  /// Whether `id` was a live graph when this snapshot was taken.
  bool ContainsGraph(GraphId id) const {
    if (live_ids == nullptr) return false;
    return std::binary_search(live_ids->begin(), live_ids->end(), id);
  }
};

using PanelSnapshotPtr = std::shared_ptr<const PanelSnapshot>;

}  // namespace serve
}  // namespace midas

#endif  // MIDAS_SERVE_PANEL_SNAPSHOT_H_
