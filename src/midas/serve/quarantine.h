#ifndef MIDAS_SERVE_QUARANTINE_H_
#define MIDAS_SERVE_QUARANTINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "midas/common/io.h"
#include "midas/graph/graph_database.h"

namespace midas {
namespace serve {

/// A batch the writer gave up on after its retry budget: the full ΔD plus
/// why and how hard it was tried. Serialized to one greppable text file so
/// incident response can inspect — and, once the root cause is fixed,
/// replay — the poison batch.
///
/// File format (`# midas-quarantine v1` magic first):
///
///   # midas-quarantine v1
///   # seq=12
///   # attempts=3
///   # reason=failpoint abort: midas.apply_update.after_fct
///   # deletions=3 17 29
///   t # 0
///   v 0 C
///   ...
///
/// Metadata rides in `#` comment lines, which graph_io's gspan parser
/// skips — the file body IS a valid gspan database, so the insertions
/// round-trip through ReadDatabase for replay (`ReadQuarantineFile` does
/// exactly that; `midas_cli` or any gspan tool can open the file too).
struct QuarantinedBatch {
  uint64_t seq = 0;      ///< round seq the batch was attempted as
  int attempts = 0;      ///< ApplyUpdate attempts before giving up
  std::string reason;    ///< last failure (newlines flattened to spaces)
  BatchUpdate batch;
};

/// Writes `q` into `dir` (created if absent) as
/// `batch-<seq>[-<n>].quarantine.gspan`, picking an unused `<n>` suffix so
/// repeated quarantines never clobber evidence. Labels are resolved through
/// `dict`. On success stores the file path in *path (when non-null). The
/// file is written durably (fsync + parent-dir sync) through `fs` (nullptr
/// = the real POSIX backend) — quarantined evidence must survive a crash.
bool WriteQuarantineFile(const QuarantinedBatch& q, const LabelDictionary& dict,
                         const std::string& dir, std::string* path,
                         std::string* error, io::FileSystem* fs = nullptr);

/// Parses a quarantine file back: metadata from the `#` header, insertions
/// via graph_io::ReadDatabase (labels interned into `dict` by name).
bool ReadQuarantineFile(const std::string& path, LabelDictionary& dict,
                        QuarantinedBatch* out, std::string* error,
                        io::FileSystem* fs = nullptr);

/// Quarantine file paths under `dir`, sorted (empty when the directory does
/// not exist).
std::vector<std::string> ListQuarantineFiles(const std::string& dir,
                                             io::FileSystem* fs = nullptr);

}  // namespace serve
}  // namespace midas

#endif  // MIDAS_SERVE_QUARANTINE_H_
