#ifndef MIDAS_SERVE_UPDATE_QUEUE_H_
#define MIDAS_SERVE_UPDATE_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "midas/graph/graph_database.h"
#include "midas/obs/trace.h"

namespace midas {
namespace serve {

/// What to do when a Push finds the queue full.
enum class OverflowPolicy {
  kBlock,     ///< wait for the writer to drain a slot (backpressure)
  kReject,    ///< fail the Push immediately (caller sheds load)
  kCoalesce,  ///< merge into the newest pending item (bounded memory)
};

const char* OverflowPolicyName(OverflowPolicy policy);

/// Approximate resident size of one batch: graph payloads (labels +
/// adjacency) plus the deletion id list. Used by the queue's incremental
/// byte accounting and by admission cost heuristics; it only needs to be
/// consistent, not exact.
size_t ApproxBatchBytes(const BatchUpdate& batch);

/// Bounded multi-producer / single-consumer queue of batch updates in front
/// of the maintenance writer. Producers are any number of Submit() callers;
/// the single consumer is EngineHost's writer thread. Mutex + condvar — the
/// queue is allowed to block; only panel *reads* must be lock-free (they
/// are: readers never touch the queue, see panel_snapshot.h).
///
/// Each batch rides with the (immutable) label dictionary its graphs were
/// built against — producers label against a PanelSnapshot's dictionary
/// copy, never the live engine's, so no dictionary is shared mutably across
/// threads. The writer remaps labels by name when the round starts.
///
/// kCoalesce appends the overflowing batch to the newest pending item as an
/// extra *part* instead of dropping it; the writer merges an item's parts
/// into one ΔD, so one maintenance round absorbs several batches — the
/// classic load-shedding move for derived-structure maintenance under a
/// bursty update stream.
class BoundedUpdateQueue {
 public:
  /// One admitted batch plus the dictionary its labels resolve through
  /// (nullptr = ids are engine-consistent as of submission) and the causal
  /// trace minted at Submit (nullptr = untraced). Coalescing keeps every
  /// part's trace; the writer picks the first as the round's primary and
  /// records the rest as links, so merged batches stay attributable.
  struct Part {
    BatchUpdate batch;
    std::shared_ptr<const LabelDictionary> labels;
    std::shared_ptr<obs::TraceContext> trace;
    /// Push time; the writer turns it into queue_wait_ms.
    std::chrono::steady_clock::time_point enqueued_at;
    /// ApproxBatchBytes at push time; the queue's byte gauge subtracts it
    /// on Pop without re-walking the (possibly writer-mutated) batch.
    size_t approx_bytes = 0;
  };

  struct Item {
    uint64_t ticket = 0;  ///< 1-based admission order of the first part
    std::vector<Part> parts;
    /// Batches merged into this item beyond the first.
    size_t coalesced() const { return parts.empty() ? 0 : parts.size() - 1; }
  };

  enum class PushOutcome {
    kQueued,           ///< enqueued as a new item
    kCoalesced,        ///< appended to the newest pending item
    kRejectedFull,     ///< kReject policy and the queue is full
    kRejectedClosed,   ///< Close() was called
    kRejectedTimeout,  ///< kBlock wait exceeded its deadline
    kRejectedDraining  ///< SetDrainOnly(): the consumer is dead/stopping
  };

  BoundedUpdateQueue(size_t capacity, OverflowPolicy policy)
      : capacity_(capacity == 0 ? 1 : capacity), policy_(policy) {}

  BoundedUpdateQueue(const BoundedUpdateQueue&) = delete;
  BoundedUpdateQueue& operator=(const BoundedUpdateQueue&) = delete;

  /// Admits one batch per the overflow policy. kBlock waits until a slot
  /// frees up (or the queue closes / goes drain-only); a nonzero
  /// `block_timeout` bounds that wait and returns kRejectedTimeout when it
  /// expires — zero preserves the historical wait-forever contract.
  PushOutcome Push(BatchUpdate batch,
                   std::shared_ptr<const LabelDictionary> labels = nullptr,
                   std::shared_ptr<obs::TraceContext> trace = nullptr,
                   std::chrono::milliseconds block_timeout =
                       std::chrono::milliseconds(0));

  /// Consumer side: pops the oldest item, waiting up to `wait` for one to
  /// arrive. Returns false on timeout, or when the queue is closed *and*
  /// drained — the writer's exit condition.
  bool Pop(Item* out, std::chrono::milliseconds wait);

  /// Stops admission (Push returns kRejectedClosed) and wakes every waiter.
  /// Already-queued items remain poppable so the writer can drain.
  void Close();

  /// Dead-consumer escape hatch: new pushes return kRejectedDraining and
  /// every producer blocked on a full queue is woken with the same outcome.
  /// Unlike Close(), this is about the *consumer* being gone (host dead),
  /// not the queue shutting down — Pop still drains what is left so the
  /// writer's dead-drop accounting stays intact.
  void SetDrainOnly();
  bool drain_only() const;

  /// Degradation-ladder hook: temporarily force the overflow policy (the
  /// coalesce-only rung overrides to kCoalesce so a full queue absorbs
  /// bursts instead of blocking or rejecting). Clear restores the policy
  /// the queue was constructed with.
  void SetPolicyOverride(OverflowPolicy policy);
  void ClearPolicyOverride();
  /// The policy a Push would use right now (override, else constructed).
  OverflowPolicy effective_policy() const;

  size_t depth() const;
  bool closed() const;
  /// Batches admitted so far (queued + coalesced).
  uint64_t admitted() const;
  /// Incremental ApproxBatchBytes sum of everything currently queued — the
  /// memory watchdog's "queue" component.
  size_t ApproxBytes() const;

 private:
  OverflowPolicy EffectivePolicyLocked() const {
    return has_override_ ? override_policy_ : policy_;
  }

  const size_t capacity_;
  const OverflowPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable space_;  ///< producers blocked on a full queue
  std::condition_variable ready_;  ///< the consumer waiting for items
  std::deque<Item> items_;
  uint64_t next_ticket_ = 1;
  uint64_t admitted_ = 0;
  size_t approx_bytes_ = 0;
  bool closed_ = false;
  bool drain_only_ = false;
  bool has_override_ = false;
  OverflowPolicy override_policy_ = OverflowPolicy::kCoalesce;
};

/// Merges `extra` into `base`: insertions appended, deletion ids unioned
/// (first-occurrence order, duplicates dropped). Used by the writer to
/// flatten a coalesced item's parts; both batches must share one label
/// space.
void MergeBatches(BatchUpdate* base, BatchUpdate&& extra);

}  // namespace serve
}  // namespace midas

#endif  // MIDAS_SERVE_UPDATE_QUEUE_H_
