#include "midas/serve/engine_host.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>
#include <utility>

#include "midas/common/budget.h"
#include "midas/common/failpoint.h"
#include "midas/graph/compute_cache.h"
#include "midas/graph/graph_io.h"
#include "midas/maintain/snapshot.h"
#include "midas/obs/export.h"
#include "midas/obs/json.h"
#include "midas/obs/metrics.h"
#include "midas/obs/profile.h"

namespace midas {
namespace serve {

namespace fs = std::filesystem;

namespace {

void Count(const char* name, uint64_t n = 1) {
  auto& reg = obs::MetricsRegistry::Current();
  if (!reg.enabled()) return;
  reg.GetCounter(name)->Increment(n);
}

/// One queue item flattened to a single ΔD plus the (private) dictionary
/// its labels resolve through — self-contained, so the batch stays
/// serializable and re-mappable no matter what happens to the engine.
struct CanonicalBatch {
  BatchUpdate batch;
  LabelDictionary labels;
};

CanonicalBatch Canonicalize(BoundedUpdateQueue::Item&& item,
                            const LabelDictionary& engine_labels) {
  CanonicalBatch out;
  out.labels = engine_labels;  // frozen copy; Intern below mutates only it
  for (auto& part : item.parts) {
    BatchUpdate remapped;
    if (part.labels != nullptr) {
      remapped.insertions.reserve(part.batch.insertions.size());
      for (const Graph& g : part.batch.insertions) {
        remapped.insertions.push_back(
            RemapLabels(g, *part.labels, out.labels));
      }
      remapped.deletions = std::move(part.batch.deletions);
    } else {
      // No rider dictionary: ids are engine-consistent, and out.labels
      // started as a copy of the engine dictionary.
      remapped = std::move(part.batch);
    }
    MergeBatches(&out.batch, std::move(remapped));
  }
  return out;
}

/// Translates the canonical batch into the live engine dictionary. Re-run
/// before every attempt: recovery may hand back an engine whose dictionary
/// lacks labels a previous attempt interned.
BatchUpdate RemapInto(const CanonicalBatch& canon, LabelDictionary& target) {
  BatchUpdate out;
  out.deletions = canon.batch.deletions;
  out.insertions.reserve(canon.batch.insertions.size());
  for (const Graph& g : canon.batch.insertions) {
    out.insertions.push_back(RemapLabels(g, canon.labels, target));
  }
  return out;
}

}  // namespace

EngineHost::EngineHost(std::unique_ptr<MidasEngine> engine,
                       std::string engine_dir, HostConfig config)
    : engine_dir_(std::move(engine_dir)),
      quarantine_dir_(fs::path(config.quarantine_subdir).is_absolute()
                          ? config.quarantine_subdir
                          : engine_dir_ + "/" + config.quarantine_subdir),
      config_(std::move(config)),
      engine_(std::move(engine)),
      drift_(config_.sli),
      flights_(config_.flight),
      admission_ctrl_(config_.overload.admission),
      breaker_(config_.overload.breaker),
      ladder_(config_.overload.ladder),
      queue_(config_.queue_capacity, config_.overflow) {}

EngineHost::~EngineHost() { Stop(); }

bool EngineHost::Start(std::string* error) {
  auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (running_.load(std::memory_order_acquire)) return true;
  if (engine_ == nullptr) return fail("EngineHost: no engine");

  std::string mkdir_err;
  if (!io::Resolve(config_.fs).CreateDirs(engine_dir_, &mkdir_err)) {
    return fail(mkdir_err);
  }

  if (config_.num_threads >= 0) engine_->SetNumThreads(config_.num_threads);
  try {
    if (!engine_->initialized()) engine_->Initialize();
  } catch (const std::exception& e) {
    return fail(std::string("engine Initialize: ") + e.what());
  }
  base_deadline_ms_ = engine_->config().round_deadline_ms;
  base_step_limit_ = engine_->config().round_step_limit;

  // Memory watchdog: the budget is measured over *tracked* structures (a
  // pure function of engine state, so pressure — and the ladder driven by
  // it — replays deterministically); RSS is observability-only. Samplers
  // run on the writer thread via WatchdogTick.
  memory_.set_budget_bytes(config_.overload.memory_budget_bytes);
  memory_.set_sample_rss(config_.overload.sample_rss);
  memory_.Register("database", [this] {
    return engine_ != nullptr ? engine_->db().ApproxBytes() : 0;
  });
  memory_.Register("cache",
                   [] { return ComputeCache::Global().ApproxBytes(); });
  memory_.Register("queue", [this] { return queue_.ApproxBytes(); });
  memory_.Register("flight_recorder",
                   [this] { return flights_.ApproxBytes(); });

  // Recovery baseline: snapshot the as-started engine so RecoverEngine has
  // a floor even before the first checkpointed round.
  std::string err;
  if (!SaveCheckpoint(*engine_, engine_dir_, &err, config_.fs)) {
    return fail("baseline checkpoint: " + err);
  }
  if (!journal_.Open(engine_dir_ + "/journal.log", &err, config_.fs)) {
    return fail("open journal: " + err);
  }
  // Anything left in the journal predates the baseline we just saved.
  if (!journal_.Reset(&err)) return fail("reset journal: " + err);
  engine_->SetJournal(&journal_);
  if (event_log_ != nullptr) engine_->SetEventLog(event_log_);
  if (config_.sli_enabled) engine_->SetDriftDetector(&drift_);
  rounds_since_checkpoint_ = 0;

  if (config_.history_enabled) {
    history_ = std::make_unique<obs::MetricHistory>(config_.history);
    alerter_ = std::make_unique<obs::BurnRateAlerter>(config_.alerts);
    // Pre-register the alert metrics so a healthy host exports them at 0
    // — dashboards must distinguish "quiet" from "absent".
    auto& reg = obs::MetricsRegistry::Current();
    if (reg.enabled()) {
      for (const obs::BurnRateAlerter::AlertState& s : alerter_->States(0.0)) {
        if (s.enabled) reg.GetGauge("midas_alert_" + s.name)->Set(0.0);
      }
      reg.GetCounter("midas_alert_transitions_total");
    }
  }
  history_epoch_ = std::chrono::steady_clock::now();

  PublishSnapshot();

  if (config_.telemetry_port >= 0) {
    if (telemetry_ == nullptr) {
      telemetry_ = std::make_unique<obs::TelemetryServer>();
    }
    InstallTelemetryRoutes();
    if (config_.profile_spans) {
      obs::SpanProfiler::Current().set_enabled(true);
    }
    if (!telemetry_->Start(config_.telemetry_port, &err)) {
      return fail("telemetry server: " + err);
    }
  }

  scrub_phase_ = 0;
  scrub_cursor_ = 0;
  scrub_cycle_ = IntegrityReport{};
  logged_rung_ = RepairRung::kNone;
  integrity_failed_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(integrity_mu_);
    last_integrity_report_ = IntegrityReport{};
    integrity_cause_.clear();
    integrity_verified_seq_ = 0;
  }

  dead_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  writer_ = std::thread([this] { WriterLoop(); });
  return true;
}

void EngineHost::Stop() {
  queue_.Close();
  if (writer_.joinable()) writer_.join();
  if (telemetry_ != nullptr) telemetry_->Stop();
  running_.store(false, std::memory_order_release);
}

SubmitResult EngineHost::Submit(BatchUpdate batch) {
  return SubmitInternal(std::move(batch), nullptr);
}

SubmitResult EngineHost::Submit(BatchUpdate batch,
                                const LabelDictionary& labels) {
  return SubmitInternal(std::move(batch),
                        std::make_shared<const LabelDictionary>(labels));
}

SubmitResult EngineHost::SubmitInternal(
    BatchUpdate batch, std::shared_ptr<const LabelDictionary> labels) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Count("midas_serve_submitted_total");

  SubmitResult result;
  if (!running_.load(std::memory_order_acquire) || queue_.closed()) {
    result.status = SubmitStatus::kRejectedStopped;
    return result;
  }

  // Mint the batch's causal identity up front: even a rejected batch gets a
  // (short) flight record, so the submitter's trace id is always resolvable.
  std::shared_ptr<obs::TraceContext> trace;
  if (config_.tracing_enabled) {
    trace = std::make_shared<obs::TraceContext>(obs::MintTraceId());
    result.trace_id = trace->id().ToHex();
  }
  // Keyed off result.trace_id, not `trace`: the overflow path runs after
  // Push consumed the context.
  auto record_reject = [&](const char* verdict, size_t adds, size_t dels) {
    if (result.trace_id.empty()) return;
    auto record = std::make_shared<obs::FlightRecord>();
    record->trace_id = result.trace_id;
    record->additions = adds;
    record->deletions = dels;
    record->admission = verdict;
    record->outcome = verdict;
    RecordFlight(std::move(record));
  };

  PanelSnapshotPtr snap = snapshot();
  static const std::vector<GraphId> kNoIds;
  const std::vector<GraphId>& live =
      (snap != nullptr && snap->live_ids != nullptr) ? *snap->live_ids
                                                     : kNoIds;
  const size_t raw_adds = batch.insertions.size();
  const size_t raw_dels = batch.deletions.size();
  BatchValidation v = ValidateBatch(batch, live, config_.admission);
  result.diagnostics = std::move(v.diagnostics);
  if (!v.admissible) {
    rejected_validation_.fetch_add(1, std::memory_order_relaxed);
    Count("midas_serve_admission_rejects_total");
    result.status = SubmitStatus::kRejectedValidation;
    record_reject("rejected_validation", raw_adds, raw_dels);
    return result;
  }

  // Overload gating, in escalation order: lame-duck ladder rung, open
  // breaker, then the adaptive admission controller. All pass-through in a
  // healthy host, so the layer costs three atomic loads on the hot path.
  auto shed = [&](const char* reason, double retry_after_ms) {
    shed_overload_.fetch_add(1, std::memory_order_relaxed);
    Count("midas_serve_shed_overload_total");
    result.status = SubmitStatus::kShedOverload;
    result.retry_after_ms = retry_after_ms;
    result.shed_reason = reason;
    record_reject("shed_overload", raw_adds, raw_dels);
    return result;
  };
  if (integrity_failed_.load(std::memory_order_acquire)) {
    // Repair ladder exhausted: the durable state cannot be trusted, so no
    // new batch may mutate it. Reads keep serving the last verified panel.
    return shed("integrity", config_.overload.admission.interval_ms);
  }
  if (ladder_.state() == OverloadState::kLameDuck) {
    // No principled hint for lame-duck: the rung lifts when pressure drops.
    // The initial CoDel interval is the layer's "a while from now" unit.
    return shed("ladder", config_.overload.admission.interval_ms);
  }
  if (breaker_.state() == CircuitBreaker::State::kOpen) {
    return shed("breaker",
                std::max(breaker_.RetryAfterMs(),
                         config_.overload.admission.retry_after_floor_ms));
  }
  size_t delta_edges = v.normalized.deletions.size();
  for (const Graph& g : v.normalized.insertions) delta_edges += g.NumEdges();
  AdmissionDecision decision = admission_ctrl_.Admit(delta_edges);
  if (!decision.admit) {
    return shed(decision.reason, decision.retry_after_ms);
  }

  const auto block_timeout = std::chrono::milliseconds(
      config_.submit_timeout_ms > 0.0
          ? static_cast<int64_t>(config_.submit_timeout_ms)
          : 0);
  switch (queue_.Push(std::move(v.normalized), std::move(labels),
                      std::move(trace), block_timeout)) {
    case BoundedUpdateQueue::PushOutcome::kQueued:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      result.status = SubmitStatus::kAccepted;
      break;
    case BoundedUpdateQueue::PushOutcome::kCoalesced:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      Count("midas_serve_coalesced_total");
      result.status = SubmitStatus::kAccepted;
      result.coalesced = true;
      break;
    case BoundedUpdateQueue::PushOutcome::kRejectedFull:
      rejected_overflow_.fetch_add(1, std::memory_order_relaxed);
      Count("midas_serve_overflow_rejects_total");
      result.status = SubmitStatus::kRejectedOverflow;
      record_reject("rejected_overflow", raw_adds, raw_dels);
      break;
    case BoundedUpdateQueue::PushOutcome::kRejectedClosed:
    case BoundedUpdateQueue::PushOutcome::kRejectedDraining:
      result.status = SubmitStatus::kRejectedStopped;
      break;
    case BoundedUpdateQueue::PushOutcome::kRejectedTimeout:
      submit_timeouts_.fetch_add(1, std::memory_order_relaxed);
      Count("midas_serve_submit_timeouts_total");
      result.status = SubmitStatus::kRejectedTimeout;
      // The queue stayed full for the whole wait; hint a backoff in the
      // same unit rather than inviting an immediate identical wait.
      result.retry_after_ms = config_.submit_timeout_ms;
      record_reject("rejected_timeout", raw_adds, raw_dels);
      break;
  }
  UpdateGauges();
  return result;
}

void EngineHost::WriterLoop() {
  for (;;) {
    // Circuit-breaker gate: while open, stop consuming — admission sheds
    // upstream and the queue holds what was already admitted. AllowAttempt
    // flips open -> half-open itself once the cooldown elapses (the next
    // batch is the probe). Ignored once the queue closes so Stop() can
    // always drain.
    if (!queue_.closed() && !breaker_.AllowAttempt()) {
      NoteBreakerState("cooldown");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      WatchdogTick();
      HistoryTick();
      UpdateGauges();
      continue;
    }
    NoteBreakerState("cooldown elapsed");
    BoundedUpdateQueue::Item item;
    if (queue_.Pop(&item, std::chrono::milliseconds(50))) {
      const uint64_t batches = item.parts.size();
      if (dead_.load(std::memory_order_acquire)) {
        // The writer gave up on this engine; record the evidence instead of
        // silently dropping admitted work.
        if (config_.tracing_enabled) {
          for (const auto& part : item.parts) {
            if (part.trace == nullptr) continue;
            auto record = std::make_shared<obs::FlightRecord>();
            record->trace_id = part.trace->id().ToHex();
            record->ticket = item.ticket;
            record->additions = part.batch.insertions.size();
            record->deletions = part.batch.deletions.size();
            record->admission = "dead_drop";
            record->outcome = "dead_drop";
            record->error = "host dead";
            RecordFlight(std::move(record));
          }
        }
        PanelSnapshotPtr snap = snapshot();
        CanonicalBatch canon = Canonicalize(
            std::move(item), snap != nullptr && snap->labels != nullptr
                                 ? *snap->labels
                                 : LabelDictionary());
        Quarantine(canon.batch, canon.labels, 0, 0, "host dead");
      } else {
        RunBatch(std::move(item));
      }
      drained_.fetch_add(batches, std::memory_order_release);
    } else if (queue_.closed()) {
      break;  // closed and drained
    } else {
      // Idle tick: no batch arrived within the Pop timeout — spend the
      // slack verifying our own durable state.
      ScrubTick();
    }
    WatchdogTick();
    HistoryTick();
    UpdateGauges();
  }
}

void EngineHost::RunBatch(BoundedUpdateQueue::Item item) {
  // Causal bookkeeping before Canonicalize consumes the item: the first
  // traced part is the round's primary identity, the remaining (coalesced)
  // parts become its links — a merged batch stays attributable to every
  // submitter. The context is installed thread-locally for the whole
  // attempt loop, so engine phases, TaskPool workers and cache lookups all
  // account into it.
  const auto popped_at = std::chrono::steady_clock::now();
  // Every part's queue wait feeds the CoDel controller — the coalesced
  // parts too, since each was a separately admitted batch.
  for (const auto& part : item.parts) {
    admission_ctrl_.ObserveSojourn(
        std::chrono::duration<double, std::milli>(popped_at -
                                                  part.enqueued_at)
            .count());
  }
  std::shared_ptr<obs::TraceContext> trace;
  std::shared_ptr<obs::FlightRecord> record;
  if (config_.tracing_enabled) {
    record = std::make_shared<obs::FlightRecord>();
    record->ticket = item.ticket;
    record->coalesced_parts = item.coalesced();
    for (const auto& part : item.parts) {
      if (part.trace == nullptr) continue;
      if (trace == nullptr) {
        trace = part.trace;
        record->queue_wait_ms =
            std::chrono::duration<double, std::milli>(popped_at -
                                                      part.enqueued_at)
                .count();
      } else {
        record->links.push_back(part.trace->id().ToHex());
      }
    }
    if (trace != nullptr) {
      record->trace_id = trace->id().ToHex();
      if (record->coalesced_parts > 0) record->admission = "coalesced";
    } else {
      record = nullptr;  // untraced item (tracing flipped on mid-stream)
    }
  }
  obs::ScopedTraceContext trace_scope(trace.get());
  PanelSnapshotPtr pre_snapshot = snapshot();

  CanonicalBatch canon = Canonicalize(std::move(item), engine_->db().labels());
  if (record != nullptr) {
    record->additions = canon.batch.insertions.size();
    record->deletions = canon.batch.deletions.size();
  }

  // Authoritative re-validation: the Submit-side check ran against a
  // snapshot that trails the engine by the queued batches (e.g. an id this
  // batch deletes may have been deleted by the batch before it).
  {
    BatchValidation v = ValidateBatch(canon.batch, engine_->db(),
                                      config_.admission);
    if (!v.admissible) {
      writer_rejected_.fetch_add(1, std::memory_order_relaxed);
      Count("midas_serve_writer_rejects_total");
      AppendServeEvent("writer_reject", engine_->round_seq() + 1,
                       v.Describe());
      if (record != nullptr) {
        record->outcome = "writer_rejected";
        record->error = v.Describe();
        RecordFlight(std::move(record));
      }
      return;
    }
    canon.batch = std::move(v.normalized);
  }

  std::string last_error = "never attempted";
  uint64_t attempted = 0;
  const int max_attempts = std::max(1, config_.max_attempts);
  int attempt = 0;
  for (attempt = 1; attempt <= max_attempts; ++attempt) {
    if (engine_ == nullptr && !RecoverInProcess(last_error)) {
      last_error = "in-process recovery failed (" + last_error + ")";
      continue;  // try recovery again on the next attempt, if any
    }
    attempted = engine_->round_seq() + 1;

    // Budget: attempt 1 runs under the engine's own limits (tightened to
    // the degraded caps when the ladder says so); each retry gets a
    // geometrically tighter deadline so a poison batch cannot monopolize
    // the writer.
    double eff_deadline_ms = 0.0;
    uint64_t eff_step_limit = 0;
    EffectiveBaseLimits(&eff_deadline_ms, &eff_step_limit);
    if (attempt == 1) {
      engine_->SetRoundLimits(eff_deadline_ms, eff_step_limit);
    } else {
      double deadline =
          config_.retry_deadline_ms *
          std::pow(config_.retry_budget_factor, attempt - 2);
      deadline = std::max(deadline, config_.retry_deadline_floor_ms);
      if (eff_deadline_ms > 0.0) deadline = std::min(deadline,
                                                     eff_deadline_ms);
      engine_->SetRoundLimits(deadline, eff_step_limit);
    }

    try {
      MIDAS_FAILPOINT_ABORT("serve.round.before_apply");
      BatchUpdate attempt_batch = RemapInto(canon, engine_->labels());
      MaintenanceStats round_stats =
          engine_->ApplyUpdate(attempt_batch, config_.mode);
      MIDAS_FAILPOINT_ABORT("serve.round.before_publish");
      engine_->SetRoundLimits(base_deadline_ms_, base_step_limit_);
      {
        std::lock_guard<std::mutex> lock(last_stats_mu_);
        last_stats_ = round_stats;
        has_last_stats_ = true;
      }
      rounds_ok_.fetch_add(1, std::memory_order_relaxed);
      Count("midas_serve_rounds_total");
      size_t round_edges = canon.batch.deletions.size();
      for (const Graph& g : canon.batch.insertions) {
        round_edges += g.NumEdges();
      }
      admission_ctrl_.ObserveRound(round_edges, round_stats.total_ms);
      if (breaker_.RecordSuccess(round_stats.total_ms)) {
        NoteBreakerState("round committed");
      }
      ++rounds_since_checkpoint_;
      MaybeCheckpoint();
      PublishSnapshot();
      ObserveRoundForAlerts(round_stats);
      if (record != nullptr) {
        record->seq = engine_->round_seq();
        record->attempts = attempt;
        record->retries = attempt - 1;
        record->total_ms = round_stats.total_ms;
#define MIDAS_X(field) \
  record->phase_ms.emplace_back(#field, round_stats.field);
        MIDAS_MAINTENANCE_PHASES(MIDAS_X)
#undef MIDAS_X
        record->truncated = round_stats.truncated;
        record->view_strategy = round_stats.ViewStrategy();
        record->view_delta_rows = round_stats.view_delta_rows;
        record->view_rescan_rows = round_stats.view_rescan_rows;
        FinishFlight(std::move(record), trace.get(), pre_snapshot);
      }
      return;
    } catch (const std::exception& e) {
      last_error = e.what();
      if (breaker_.RecordFailure()) NoteBreakerState(last_error.c_str());
      if (attempt < max_attempts) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        Count("midas_serve_retries_total");
      }
      if (RecoverInProcess(last_error) &&
          engine_->round_seq() >= attempted) {
        // The failure struck *after* the journal commit — the round is
        // durable and recovery replayed it. Publishing it (instead of
        // retrying) avoids applying the batch twice.
        rounds_ok_.fetch_add(1, std::memory_order_relaxed);
        Count("midas_serve_rounds_total");
        if (breaker_.RecordSuccess(0.0)) {
          NoteBreakerState("recovery replayed committed round");
        }
        PublishSnapshot();
        if (record != nullptr) {
          record->seq = engine_->round_seq();
          record->attempts = attempt;
          record->retries = attempt - 1;
          record->recovered = true;
          record->error = last_error;
          FinishFlight(std::move(record), trace.get(), pre_snapshot);
        }
        return;
      }
      if (record != nullptr) record->recovered = true;
      if (attempt < max_attempts) {
        double sleep_ms = config_.backoff_initial_ms *
                          std::pow(config_.backoff_multiplier, attempt - 1);
        sleep_ms = std::min(sleep_ms, config_.backoff_max_ms);
        if (sleep_ms > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(sleep_ms));
        }
      }
    }
  }

  Quarantine(canon.batch, canon.labels, attempted, max_attempts, last_error);
  if (record != nullptr) {
    record->seq = attempted;
    record->attempts = max_attempts;
    record->retries = max_attempts - 1;
    record->outcome = "quarantined";
    record->error = last_error;
    FinishFlight(std::move(record), trace.get(), pre_snapshot);
  }
  if (engine_ == nullptr) {
    // Recovery never came back: stop applying, keep serving the last
    // published snapshot, quarantine whatever else arrives. Producers
    // blocked on a full queue are woken (kRejectedDraining) — nobody
    // should wait on a writer that will never drain another slot.
    dead_.store(true, std::memory_order_release);
    queue_.SetDrainOnly();
    AppendServeEvent("host_dead", attempted, last_error);
  }
}

void EngineHost::AttachEngine(MidasEngine* engine) {
  engine->SetJournal(&journal_);
  if (event_log_ != nullptr) engine->SetEventLog(event_log_);
  if (config_.sli_enabled) engine->SetDriftDetector(&drift_);
  engine->SetRoundLimits(base_deadline_ms_, base_step_limit_);
  if (config_.num_threads >= 0) engine->SetNumThreads(config_.num_threads);
  // A recovered engine must come back inside the ladder's current posture,
  // not at full quality while the host is shedding.
  if (ladder_.AtLeast(OverloadState::kShedWork)) {
    engine->SetShedMode(true, config_.overload.shed_candidate_cap);
  }
}

bool EngineHost::RecoverInProcess(const std::string& why) {
  engine_.reset();  // drop the torn engine before rebuilding from disk
  std::string detail;
  try {
    RecoverInfo info;
    std::unique_ptr<MidasEngine> fresh =
        RecoverEngine(engine_dir_, &info, config_.fs);
    if (fresh == nullptr) {
      detail = info.error.empty() ? "RecoverEngine failed" : info.error;
    } else {
      AttachEngine(fresh.get());
      // Mandatory re-baseline: a failed round leaves stale uncommitted
      // records (and possibly seqs above where we resume) in the journal;
      // the checkpoint truncates them so the retry's appends cannot read
      // back as a seq regression.
      std::string err;
      if (!SaveCheckpoint(*fresh, engine_dir_, &err, config_.fs)) {
        detail = "post-recovery checkpoint: " + err;
      } else {
        engine_ = std::move(fresh);
        rounds_since_checkpoint_ = 0;
        recoveries_.fetch_add(1, std::memory_order_relaxed);
        Count("midas_serve_recoveries_total");
        AppendServeEvent("recovered", engine_->round_seq(), why);
        return true;
      }
    }
  } catch (const std::exception& e) {
    detail = e.what();
  }
  recovery_failures_.fetch_add(1, std::memory_order_relaxed);
  Count("midas_serve_recovery_failures_total");
  AppendServeEvent("recovery_failed", 0, detail);
  return false;
}

void EngineHost::PublishSnapshot() {
  auto snap = std::make_shared<PanelSnapshot>();
  snap->round_seq = engine_->round_seq();
  snap->db_size = engine_->db().size();
  snap->patterns = engine_->patterns();
  snap->small_panel = engine_->small_panel();
  snap->quality = engine_->CurrentQuality();
  snap->live_ids =
      std::make_shared<const std::vector<GraphId>>(engine_->db().Ids());
  snap->labels =
      std::make_shared<const LabelDictionary>(engine_->db().labels());
  // Deep copy of the ledger: the engine keeps mutating its own, readers
  // (/patternz, /lineage/<id>) walk this frozen one lock-free.
  snap->lineage =
      std::make_shared<const obs::PatternLedger>(engine_->lineage());
  snap->created_at = std::chrono::steady_clock::now();

  // Readers' view of completed rounds never regresses, even if recovery
  // resumed from an older committed state (see docs/robustness.md).
  PanelSnapshotPtr current = snapshot_.load(std::memory_order_acquire);
  if (current != nullptr && snap->round_seq < current->round_seq) return;
  snapshot_.store(std::move(snap), std::memory_order_release);
  Count("midas_serve_snapshots_published_total");
  UpdateGauges();
}

void EngineHost::Quarantine(const BatchUpdate& batch,
                            const LabelDictionary& labels, uint64_t seq,
                            int attempts, const std::string& reason) {
  QuarantinedBatch q;
  q.seq = seq;
  q.attempts = attempts;
  q.reason = reason;
  q.batch = batch;
  std::string path;
  std::string err;
  std::string detail;
  if (WriteQuarantineFile(q, labels, quarantine_dir_, &path, &err,
                          config_.fs)) {
    detail = reason + " file=" + path;
  } else {
    // The write itself failed; the event-log record is the only evidence.
    Count("midas_serve_quarantine_write_failures_total");
    detail = reason + " (quarantine write failed: " + err + ")";
  }
  quarantined_.fetch_add(1, std::memory_order_relaxed);
  Count("midas_quarantined_batches");
  AppendServeEvent("quarantine", seq, detail);
}

void EngineHost::FinishFlight(std::shared_ptr<obs::FlightRecord> record,
                              const obs::TraceContext* trace,
                              const PanelSnapshotPtr& pre) {
  if (trace != nullptr) {
    record->budget_steps = trace->budget_steps();
    record->cache_hits = trace->cache_hits();
    record->cache_misses = trace->cache_misses();
    record->degrade_reason = std::string(ExecBudget::CauseName(
        static_cast<ExecBudget::Cause>(trace->degrade_cause())));
  }
  record->slo_violation = config_.flight.slo_ms > 0.0 &&
                          record->total_ms > config_.flight.slo_ms;
  record->drift_coincident = quality_drifted();
  PanelSnapshotPtr post = snapshot();
  if (pre != nullptr && post != nullptr) {
    record->scov_delta = post->quality.scov - pre->quality.scov;
    record->lcov_delta = post->quality.lcov - pre->quality.lcov;
    record->div_delta = post->quality.div - pre->quality.div;
    record->cog_delta = post->quality.cog_avg - pre->quality.cog_avg;
  }
  RecordFlight(std::move(record));
}

void EngineHost::RecordFlight(
    std::shared_ptr<const obs::FlightRecord> record) {
  Count("midas_serve_traces_total");
  if (event_log_ != nullptr) {
    // `trace_event` JSONL record, interleaved with the per-round
    // maintenance records so one grep reconstructs a batch's whole story.
    event_log_->AppendRaw("{\"trace_event\":" + record->ToJson() + "}");
  }
  flights_.Record(std::move(record));
}

void EngineHost::AppendServeEvent(const std::string& kind, uint64_t seq,
                                  const std::string& detail) {
  if (event_log_ == nullptr) return;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("serve_event").Value(kind);
  w.Key("seq").Value(seq);
  w.Key("detail").Value(detail);
  w.EndObject();
  event_log_->AppendRaw(w.str());
}

void EngineHost::MaybeCheckpoint() {
  if (config_.checkpoint_every == 0) return;
  if (rounds_since_checkpoint_ < config_.checkpoint_every) return;
  std::string err;
  if (SaveCheckpoint(*engine_, engine_dir_, &err, config_.fs)) {
    rounds_since_checkpoint_ = 0;
    checkpoints_.fetch_add(1, std::memory_order_relaxed);
    Count("midas_serve_checkpoints_total");
  } else {
    // Not fatal: the journal keeps every round since the last checkpoint,
    // it just grows until a later checkpoint succeeds.
    AppendServeEvent("checkpoint_failed", engine_->round_seq(), err);
  }
}

const char* EngineHost::RepairRungName(RepairRung rung) {
  switch (rung) {
    case RepairRung::kNone: return "none";
    case RepairRung::kRebuildViews: return "rebuild_views";
    case RepairRung::kRestoreSnapshot: return "restore_snapshot";
    case RepairRung::kRunFromScratch: return "run_from_scratch";
    case RepairRung::kRefuseServe: return "refuse_serve";
  }
  return "unknown";
}

void EngineHost::ScrubTick() {
  if (!config_.scrub.enabled || dead_.load(std::memory_order_acquire)) {
    return;
  }
  if (integrity_failed_.load(std::memory_order_acquire)) {
    // Refused: retry at a gentle cadence (every ~20 idle ticks, roughly a
    // second) instead of burning the writer re-verifying a known-bad state
    // on every Pop timeout. A cleared fault still lifts the refusal, just
    // not instantly.
    if (++refused_backoff_ticks_ < 20) return;
    refused_backoff_ticks_ = 0;
  }
  if (engine_ == nullptr) {
    // A failed restore rung left the host engineless. Keep retrying the
    // ladder so a cleared fault lifts the refusal without a restart.
    if (integrity_failed_.load(std::memory_order_acquire) &&
        config_.scrub.repair) {
      RunRepairLadder("engine lost during repair");
    }
    return;
  }
  scrub_ticks_.fetch_add(1, std::memory_order_relaxed);
  Count("midas_integrity_scrub_ticks_total");

  IntegrityReport tick;
  bool lap_done = false;
  if (scrub_phase_ == 0) {
    // Disk tiers: manifest CRCs + journal chain in one slice (cheap —
    // bounded by snapshot size, not panel size).
    VerifyOptions opt;
    opt.level = IntegrityTier::kJournal;
    opt.fs = config_.fs;
    tick = VerifyEngineDir(engine_dir_, opt);
    scrub_phase_ = 1;
    scrub_cursor_ = 0;
  } else {
    scrub_cursor_ = VerifyPatternsSlice(*engine_, scrub_cursor_,
                                        config_.scrub.tick_budget_ms, &tick);
    if (scrub_cursor_ == 0) {
      PanelSnapshotPtr snap = snapshot();
      if (snap != nullptr) {
        VerifyPanelAgreement(*engine_, snap->patterns, snap->round_seq,
                             &tick);
      }
      scrub_phase_ = 0;
      lap_done = true;
    }
  }
  Count("midas_integrity_checks_total", tick.checks);
  scrub_cycle_.Merge(tick);

  if (!tick.clean()) {
    integrity_violations_.fetch_add(tick.violations.size(),
                                    std::memory_order_relaxed);
    Count("midas_integrity_violations_total", tick.violations.size());
    if (breaker_.RecordFailure()) NoteBreakerState("integrity violation");
    SetIntegrityReport(scrub_cycle_, 0);
    const std::string detail = tick.Describe();
    AppendServeEvent("integrity_violation", engine_->round_seq(), detail);
    RecordIntegrityEvent("integrity_violation", detail);
    if (config_.scrub.repair) {
      RunRepairLadder(detail);
    } else {
      auto& reg = obs::MetricsRegistry::Current();
      if (reg.enabled()) reg.GetGauge("midas_integrity_status")->Set(1.0);
    }
    // Restart the scan from the disk tier: whatever the ladder did (or a
    // detect-only host left alone), the next lap measures the new state.
    scrub_phase_ = 0;
    scrub_cursor_ = 0;
    scrub_cycle_ = IntegrityReport{};
    return;
  }

  if (lap_done) {
    // Full clean lap: every tier verified against the live engine — this
    // seq becomes the verified watermark.
    SetIntegrityReport(scrub_cycle_, engine_->round_seq());
    scrub_cycle_ = IntegrityReport{};
    if (integrity_failed_.exchange(false, std::memory_order_acq_rel)) {
      // The fault cleared between refusal and this lap (e.g. a transient
      // device error): the state verifies clean end to end, so serving
      // resumes.
      LogOverloadTransition("integrity", RepairRungName(logged_rung_),
                            RepairRungName(RepairRung::kNone),
                            "clean verification lap");
      logged_rung_ = RepairRung::kNone;
    }
  }
}

bool EngineHost::RunRepairLadder(const std::string& cause) {
  auto transition = [this](RepairRung to, const std::string& why) {
    LogOverloadTransition("integrity", RepairRungName(logged_rung_),
                          RepairRungName(to), why);
    logged_rung_ = to;
  };
  auto& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) reg.GetGauge("midas_integrity_status")->Set(1.0);

  struct Step {
    RepairRung rung;
    bool (EngineHost::*fn)(std::string*);
  };
  static constexpr Step kLadder[] = {
      {RepairRung::kRebuildViews, &EngineHost::RepairRebuildViews},
      {RepairRung::kRestoreSnapshot, &EngineHost::RepairRestoreSnapshot},
      {RepairRung::kRunFromScratch, &EngineHost::RepairRunFromScratch},
  };
  std::string why = cause;
  for (const Step& step : kLadder) {
    transition(step.rung, why);
    std::string err;
    if (!(this->*step.fn)(&err)) {
      why = std::string(RepairRungName(step.rung)) + " failed: " + err;
      AppendServeEvent("integrity_repair_failed",
                       engine_ != nullptr ? engine_->round_seq() : 0, why);
      continue;
    }
    IntegrityReport proof;
    if (!VerifyAfterRepair(&proof)) {
      why = std::string(RepairRungName(step.rung)) +
            " did not verify: " + proof.Describe();
      AppendServeEvent("integrity_repair_failed",
                       engine_ != nullptr ? engine_->round_seq() : 0, why);
      continue;
    }
    // Healed and proven: publish the repaired (deep-verified) panel.
    integrity_repairs_.fetch_add(1, std::memory_order_relaxed);
    Count("midas_integrity_repairs_total");
    if (breaker_.RecordSuccess(0.0)) NoteBreakerState("integrity repaired");
    const uint64_t seq = engine_->round_seq();
    SetIntegrityReport(proof, seq);
    integrity_failed_.store(false, std::memory_order_release);
    const std::string healed =
        std::string("repaired at ") + RepairRungName(step.rung);
    transition(RepairRung::kNone, healed);
    AppendServeEvent("integrity_repaired", seq, healed + " (" + cause + ")");
    RecordIntegrityEvent("integrity_repaired", healed);
    PublishSnapshot();
    if (reg.enabled()) reg.GetGauge("midas_integrity_status")->Set(0.0);
    return true;
  }

  // Every rung failed: the durable state cannot be trusted. Refuse new
  // batches (typed shed reason "integrity", /healthz 503) but keep serving
  // the last published — still verified — panel to readers.
  transition(RepairRung::kRefuseServe, why);
  integrity_refusals_.fetch_add(1, std::memory_order_relaxed);
  Count("midas_integrity_refusals_total");
  integrity_failed_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(integrity_mu_);
    integrity_cause_ = why;
  }
  AppendServeEvent("integrity_refused",
                   engine_ != nullptr ? engine_->round_seq() : 0, why);
  RecordIntegrityEvent("integrity_refused", why);
  if (reg.enabled()) reg.GetGauge("midas_integrity_status")->Set(2.0);
  return false;
}

bool EngineHost::RepairRebuildViews(std::string* error) {
  if (engine_ == nullptr) {
    *error = "no engine";
    return false;
  }
  try {
    engine_->RebuildDerivedState();
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
  // Rewriting the checkpoint from the rebuilt engine also heals disk rot:
  // a flipped bit in the snapshot is overwritten with fresh, CRC'd bytes.
  if (!SaveCheckpoint(*engine_, engine_dir_, error, config_.fs)) {
    return false;
  }
  rounds_since_checkpoint_ = 0;
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  Count("midas_serve_checkpoints_total");
  return true;
}

bool EngineHost::RepairRestoreSnapshot(std::string* error) {
  // Unlike RecoverInProcess this keeps the current engine alive until the
  // restore succeeds: the live database is the RunFromScratch rung's only
  // input, so it must survive a failed restore.
  std::unique_ptr<MidasEngine> fresh;
  RecoverInfo info;
  try {
    fresh = RecoverEngine(engine_dir_, &info, config_.fs);
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
  if (fresh == nullptr) {
    *error = info.error.empty() ? "RecoverEngine failed" : info.error;
    return false;
  }
  AttachEngine(fresh.get());
  if (!SaveCheckpoint(*fresh, engine_dir_, error, config_.fs)) return false;
  engine_ = std::move(fresh);
  rounds_since_checkpoint_ = 0;
  recoveries_.fetch_add(1, std::memory_order_relaxed);
  Count("midas_serve_recoveries_total");
  AppendServeEvent("recovered", engine_->round_seq(), "integrity repair");
  return true;
}

bool EngineHost::RepairRunFromScratch(std::string* error) {
  if (engine_ == nullptr) {
    *error = "no engine to rebuild from";
    return false;
  }
  try {
    const uint64_t seq = engine_->round_seq();
    GraphDatabase db = engine_->db();  // deep copy, fresh epoch
    auto fresh =
        std::make_unique<MidasEngine>(std::move(db), engine_->config());
    if (config_.num_threads >= 0) fresh->SetNumThreads(config_.num_threads);
    fresh->Initialize();  // full from-scratch pipeline, selection included
    fresh->RestoreRoundSeq(seq);
    AttachEngine(fresh.get());
    if (!SaveCheckpoint(*fresh, engine_dir_, error, config_.fs)) {
      return false;
    }
    engine_ = std::move(fresh);
    rounds_since_checkpoint_ = 0;
    return true;
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
}

bool EngineHost::VerifyAfterRepair(IntegrityReport* report) {
  VerifyOptions opt;
  opt.level = IntegrityTier::kJournal;
  opt.fs = config_.fs;
  *report = VerifyEngineDir(engine_dir_, opt);
  if (engine_ != nullptr) {
    VerifyOptions deep;
    deep.fs = config_.fs;  // unbounded: a repair is rare enough to prove
    VerifyEngineDeep(*engine_, deep, report);
  }
  return report->clean();
}

void EngineHost::SetIntegrityReport(const IntegrityReport& report,
                                    uint64_t verified_seq) {
  {
    std::lock_guard<std::mutex> lock(integrity_mu_);
    last_integrity_report_ = report;
    if (verified_seq > 0) integrity_verified_seq_ = verified_seq;
  }
  auto& reg = obs::MetricsRegistry::Current();
  if (reg.enabled() && verified_seq > 0) {
    reg.GetGauge("midas_integrity_last_verified_seq")
        ->Set(static_cast<double>(verified_seq));
    reg.GetGauge("midas_integrity_status")->Set(0.0);
  }
}

void EngineHost::RecordIntegrityEvent(const char* outcome,
                                      const std::string& detail) {
  if (!config_.tracing_enabled) return;
  auto record = std::make_shared<obs::FlightRecord>();
  record->trace_id = obs::MintTraceId().ToHex();
  record->seq = engine_ != nullptr ? engine_->round_seq() : 0;
  record->admission = "scrub";
  record->outcome = outcome;
  record->error = detail;
  RecordFlight(std::move(record));
}

IntegrityReport EngineHost::last_integrity_report() const {
  std::lock_guard<std::mutex> lock(integrity_mu_);
  return last_integrity_report_;
}

uint64_t EngineHost::integrity_verified_seq() const {
  std::lock_guard<std::mutex> lock(integrity_mu_);
  return integrity_verified_seq_;
}

void EngineHost::WatchdogTick() {
  if (config_.overload.memory_budget_bytes == 0 ||
      !config_.overload.ladder.enabled) {
    return;
  }
  const MemoryBudget::Sample sample = memory_.SampleNow();
  const OverloadState before = ladder_.state();
  const OverloadState after = ladder_.Evaluate(sample.pressure);
  if (after == before) return;
  ApplyRungActions(before, after);
  char reason[48];
  std::snprintf(reason, sizeof(reason), "pressure=%.3f", sample.pressure);
  LogOverloadTransition("ladder", OverloadStateName(before),
                        OverloadStateName(after), reason);
}

void EngineHost::ApplyRungActions(OverloadState from, OverloadState to) {
  // The ladder moves one rung per evaluation, so `from` and `to` are
  // adjacent: exactly one rung's action engages (up) or reverts (down).
  const bool up = static_cast<int>(to) > static_cast<int>(from);
  const OverloadState rung = up ? to : from;
  switch (rung) {
    case OverloadState::kHealthy:
      break;
    case OverloadState::kTrimCache:
      if (up) {
        // One-shot trim: the cache refills afterwards, and re-entering the
        // rung trims again. Nothing to revert.
        ComputeCache& cache = ComputeCache::Global();
        cache.TrimTo(static_cast<size_t>(
            static_cast<double>(cache.size()) *
            config_.overload.cache_trim_fraction));
      }
      break;
    case OverloadState::kTightenBudgets:
      // Applied per attempt via EffectiveBaseLimits; no sticky state.
      break;
    case OverloadState::kCoalesceOnly:
      if (up) {
        queue_.SetPolicyOverride(OverflowPolicy::kCoalesce);
      } else {
        queue_.ClearPolicyOverride();
      }
      break;
    case OverloadState::kShedWork:
      if (engine_ != nullptr) {
        engine_->SetShedMode(up, up ? config_.overload.shed_candidate_cap
                                    : 0);
      }
      break;
    case OverloadState::kLameDuck:
      // Enforced at Submit (reject-all); the queue keeps draining.
      break;
  }
  applied_rung_ = to;
}

void EngineHost::LogOverloadTransition(const char* source,
                                       const std::string& from,
                                       const std::string& to,
                                       const std::string& reason) {
  OverloadTransition t;
  t.source = source;
  t.from = from;
  t.to = to;
  t.eval = ladder_.evals();
  t.reason = reason;
  overload_log_.Append(std::move(t));
  AppendServeEvent("overload_transition",
                   engine_ != nullptr ? engine_->round_seq() : 0,
                   std::string(source) + " " + from + " -> " + to + " (" +
                       reason + ")");
}

void EngineHost::NoteBreakerState(const char* reason) {
  const CircuitBreaker::State now = breaker_.state();
  if (now == logged_breaker_state_) return;
  const CircuitBreaker::State prev = logged_breaker_state_;
  logged_breaker_state_ = now;
  LogOverloadTransition("breaker", CircuitBreaker::StateName(prev),
                        CircuitBreaker::StateName(now), reason);
  auto& reg = obs::MetricsRegistry::Current();
  if (reg.enabled()) {
    reg.GetGauge("midas_breaker_state")
        ->Set(static_cast<double>(static_cast<int>(now)));
  }
}

void EngineHost::EffectiveBaseLimits(double* deadline_ms,
                                     uint64_t* step_limit) const {
  *deadline_ms = base_deadline_ms_;
  *step_limit = base_step_limit_;
  if (!ladder_.AtLeast(OverloadState::kTightenBudgets)) return;
  const double cap_ms = config_.overload.degraded_deadline_ms;
  const uint64_t cap_steps = config_.overload.degraded_step_limit;
  if (cap_ms > 0.0) {
    *deadline_ms = base_deadline_ms_ > 0.0 ? std::min(base_deadline_ms_,
                                                      cap_ms)
                                           : cap_ms;
  }
  if (cap_steps > 0) {
    *step_limit = base_step_limit_ > 0 ? std::min(base_step_limit_,
                                                  cap_steps)
                                       : cap_steps;
  }
}

void EngineHost::UpdateGauges() {
  auto& reg = obs::MetricsRegistry::Current();
  if (!reg.enabled()) return;
  reg.GetGauge("midas_serve_queue_depth")
      ->Set(static_cast<double>(queue_.depth()));
  PanelSnapshotPtr snap = snapshot();
  if (snap != nullptr) {
    reg.GetGauge("midas_serve_snapshot_age_ms")->Set(snap->AgeMs());
  }
}

double EngineHost::HistoryNowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - history_epoch_)
      .count();
}

void EngineHost::HistoryTick() {
  if (history_ == nullptr) return;
  const double now = HistoryNowMs();
  history_->Sample(now, obs::MetricsRegistry::Current());
  DrainAlertTransitions(now);
}

void EngineHost::ObserveRoundForAlerts(const MaintenanceStats& stats) {
  if (alerter_ == nullptr) return;
  const double now = HistoryNowMs();
  alerter_->ObserveRound(now, config_.flight.slo_ms > 0.0 &&
                                  stats.total_ms > config_.flight.slo_ms);
  PanelSnapshotPtr snap = snapshot();
  if (snap != nullptr) {
    alerter_->ObserveQuality(now, snap->quality.scov, snap->quality.lcov);
  }
  DrainAlertTransitions(now);
}

void EngineHost::DrainAlertTransitions(double now_ms) {
  if (alerter_ == nullptr) return;
  std::vector<obs::BurnRateAlerter::Transition> transitions =
      alerter_->Tick(now_ms);
  if (transitions.empty()) return;
  auto& reg = obs::MetricsRegistry::Current();
  for (const obs::BurnRateAlerter::Transition& t : transitions) {
    if (reg.enabled()) {
      reg.GetGauge("midas_alert_" + t.alert)->Set(t.firing ? 1.0 : 0.0);
      reg.GetCounter("midas_alert_transitions_total")->Increment();
    }
    if (event_log_ != nullptr) {
      obs::JsonWriter w;
      w.BeginObject();
      w.Key("alert_event").Value(t.alert);
      w.Key("state").Value(t.firing ? "firing" : "resolved");
      w.Key("at_ms").Value(t.at_ms);
      w.Key("fast_rate").Value(t.fast_rate);
      w.Key("slow_rate").Value(t.slow_rate);
      w.EndObject();
      event_log_->AppendRaw(w.str());
    }
  }
}

bool EngineHost::WaitIdle(std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (drained_.load(std::memory_order_acquire) == queue_.admitted() &&
        queue_.depth() == 0) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

bool EngineHost::LastRoundStats(MaintenanceStats* out) const {
  std::lock_guard<std::mutex> lock(last_stats_mu_);
  if (!has_last_stats_) return false;
  if (out != nullptr) *out = last_stats_;
  return true;
}

void EngineHost::InstallTelemetryRoutes() {
  telemetry_->Handle("/metrics", [](const obs::HttpRequest& req) {
    // Content negotiation: OpenMetrics scrapers (exemplar-aware) ask via
    // Accept; everyone else gets the 0.0.4 dialect, where exemplar
    // suffixes would be a syntax error, stripped.
    const obs::MetricsTextFormat format =
        req.Header("accept").find("application/openmetrics-text") !=
                std::string::npos
            ? obs::MetricsTextFormat::kOpenMetrics
            : obs::MetricsTextFormat::kPrometheus0_0_4;
    obs::HttpResponse resp;
    resp.content_type = obs::MetricsContentType(format);
    resp.body = obs::ExportPrometheus(obs::MetricsRegistry::Current(),
                                      format);
    return resp;
  });

  telemetry_->Handle("/varz", [](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = obs::ExportJson(obs::MetricsRegistry::Current());
    return resp;
  });

  telemetry_->Handle("/healthz", [this](const obs::HttpRequest&) {
    const bool is_running = running();
    const bool is_dead = dead();
    const bool drift = quality_drifted();
    const bool integrity = integrity_failed();
    const bool healthy = is_running && !is_dead && !drift && !integrity;

    obs::JsonWriter w;
    w.BeginObject();
    w.Key("status").Value(healthy ? "ok" : "degraded");
    if (!healthy) {
      // Typed cause, most severe first: a prober branches on one field
      // instead of re-deriving precedence from the booleans.
      w.Key("cause").Value(integrity     ? "integrity"
                           : is_dead     ? "dead"
                           : drift       ? "quality_drift"
                                         : "stopped");
    }
    w.Key("running").Value(is_running);
    w.Key("dead").Value(is_dead);
    w.Key("quality_drift").Value(drift);
    w.Key("integrity_failed").Value(integrity);
    if (integrity) {
      std::lock_guard<std::mutex> lock(integrity_mu_);
      w.Key("integrity_cause").Value(integrity_cause_);
    }
    w.Key("queue_depth").Value(static_cast<uint64_t>(queue_.depth()));
    w.Key("rounds_ok").Value(rounds_ok_.load(std::memory_order_relaxed));
    PanelSnapshotPtr snap = snapshot();
    if (snap != nullptr) {
      w.Key("round_seq").Value(snap->round_seq);
      w.Key("snapshot_age_ms").Value(snap->AgeMs());
    }
    w.EndObject();

    obs::HttpResponse resp;
    resp.status = healthy ? 200 : 503;
    resp.content_type = "application/json";
    resp.body = w.str();
    return resp;
  });

  telemetry_->Handle("/statusz", [this](const obs::HttpRequest&) {
    HostStats s = stats();
    PanelSnapshotPtr snap = snapshot();
    obs::DriftFinding drift = drift_.last_finding();

    obs::JsonWriter w;
    w.BeginObject();
    w.Key("running").Value(running());
    w.Key("dead").Value(dead());
    w.Key("engine_dir").Value(engine_dir_);
    w.Key("queue_depth").Value(static_cast<uint64_t>(queue_.depth()));
    if (snap != nullptr) {
      w.Key("snapshot").BeginObject();
      w.Key("round_seq").Value(snap->round_seq);
      w.Key("db_size").Value(static_cast<uint64_t>(snap->db_size));
      w.Key("patterns").Value(static_cast<uint64_t>(snap->patterns.size()));
      w.Key("age_ms").Value(snap->AgeMs());
      w.Key("quality").BeginObject();
      w.Key("scov").Value(snap->quality.scov);
      w.Key("lcov").Value(snap->quality.lcov);
      w.Key("div").Value(snap->quality.div);
      w.Key("cog_avg").Value(snap->quality.cog_avg);
      w.Key("cog_max").Value(snap->quality.cog_max);
      w.EndObject();
      w.EndObject();
    }
    w.Key("stats").BeginObject();
    w.Key("submitted").Value(s.submitted);
    w.Key("admitted").Value(s.admitted);
    w.Key("rejected_validation").Value(s.rejected_validation);
    w.Key("rejected_overflow").Value(s.rejected_overflow);
    w.Key("coalesced").Value(s.coalesced);
    w.Key("writer_rejected").Value(s.writer_rejected);
    w.Key("rounds_ok").Value(s.rounds_ok);
    w.Key("retries").Value(s.retries);
    w.Key("recoveries").Value(s.recoveries);
    w.Key("recovery_failures").Value(s.recovery_failures);
    w.Key("quarantined").Value(s.quarantined);
    w.Key("checkpoints").Value(s.checkpoints);
    w.Key("shed_overload").Value(s.shed_overload);
    w.Key("submit_timeouts").Value(s.submit_timeouts);
    w.EndObject();
    w.Key("overload").BeginObject();
    w.Key("state").Value(OverloadStateName(ladder_.state()));
    w.Key("pressure").Value(memory_.last_pressure());
    w.Key("tracked_bytes")
        .Value(static_cast<uint64_t>(memory_.last_total_bytes()));
    w.Key("budget_bytes")
        .Value(static_cast<uint64_t>(memory_.budget_bytes()));
    w.Key("breaker").Value(CircuitBreaker::StateName(breaker_.state()));
    w.Key("breaker_trips").Value(breaker_.trips());
    w.Key("admission_shedding").Value(admission_ctrl_.shedding());
    w.Key("admission_shed_total").Value(admission_ctrl_.shed_total());
    w.Key("queue_policy")
        .Value(OverflowPolicyName(queue_.effective_policy()));
    w.Key("transitions_total").Value(overload_log_.total());
    w.Key("transitions").BeginArray();
    auto transitions = overload_log_.Snapshot();
    const size_t first = transitions.size() > 16 ? transitions.size() - 16
                                                 : 0;
    for (size_t i = first; i < transitions.size(); ++i) {
      const OverloadTransition& t = transitions[i];
      w.BeginObject();
      w.Key("source").Value(t.source);
      w.Key("from").Value(t.from);
      w.Key("to").Value(t.to);
      w.Key("eval").Value(t.eval);
      w.Key("reason").Value(t.reason);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    w.Key("drift").BeginObject();
    w.Key("enabled").Value(config_.sli_enabled);
    w.Key("drifted").Value(drift.drifted);
    w.Key("rounds").Value(drift_.rounds());
    w.Key("baseline_frozen").Value(drift_.baseline_frozen());
    if (drift.drifted) {
      w.Key("metric").Value(drift.metric);
      w.Key("ks_statistic").Value(drift.ks_statistic);
      w.Key("p_value").Value(drift.p_value);
      w.Key("baseline_mean").Value(drift.baseline_mean);
      w.Key("window_mean").Value(drift.window_mean);
    }
    w.EndObject();
    w.EndObject();

    // Compact flight-record table: the newest few traces, so /statusz alone
    // answers "what just flew through here" (full records on /traces).
    obs::JsonWriter tw;
    tw.BeginArray();
    auto records = flights_.Snapshot();
    if (records.size() > 8) records.resize(8);
    for (const auto& r : records) r->AppendSummary(tw);
    tw.EndArray();

    // Splice the last committed round's MaintenanceStats (already a JSON
    // object via ToJson) and the traces table in before the closing brace —
    // JsonWriter has no raw-value API.
    std::string body = w.str();
    MaintenanceStats last;
    std::string last_json =
        LastRoundStats(&last) ? last.ToJson() : std::string("null");
    body.insert(body.size() - 1, ",\"last_round\":" + last_json +
                                     ",\"traces\":" + tw.str());

    obs::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = body;
    return resp;
  });

  telemetry_->Handle("/integrityz", [this](const obs::HttpRequest&) {
    IntegrityReport report;
    std::string cause;
    uint64_t verified_seq = 0;
    {
      std::lock_guard<std::mutex> lock(integrity_mu_);
      report = last_integrity_report_;
      cause = integrity_cause_;
      verified_seq = integrity_verified_seq_;
    }
    const bool refused = integrity_failed();

    obs::JsonWriter w;
    w.BeginObject();
    w.Key("scrub_enabled").Value(config_.scrub.enabled);
    w.Key("status").Value(refused          ? "refused"
                          : report.clean() ? "ok"
                                           : "violations");
    w.Key("refusal_cause").Value(cause);
    w.Key("last_verified_seq").Value(verified_seq);
    w.Key("scrub_ticks")
        .Value(scrub_ticks_.load(std::memory_order_relaxed));
    w.Key("violations_total")
        .Value(integrity_violations_.load(std::memory_order_relaxed));
    w.Key("repairs_total")
        .Value(integrity_repairs_.load(std::memory_order_relaxed));
    w.Key("refusals_total")
        .Value(integrity_refusals_.load(std::memory_order_relaxed));
    w.EndObject();
    // Splice the report (already JSON via ToJson) before the closing brace.
    std::string body = w.str();
    body.insert(body.size() - 1, ",\"report\":" + report.ToJson());

    obs::HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = body;
    return resp;
  });

  telemetry_->Handle("/patternz", [this](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    PanelSnapshotPtr snap = snapshot();
    if (snap == nullptr || snap->lineage == nullptr) {
      resp.status = 503;
      resp.body = "{\"error\":\"no snapshot published yet\"}";
      return resp;
    }
    resp.body = snap->lineage->PanelJson(snap->round_seq);
    return resp;
  });

  telemetry_->HandlePrefix("/lineage/", [this](const obs::HttpRequest& req) {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    PanelSnapshotPtr snap = snapshot();
    if (snap == nullptr || snap->lineage == nullptr) {
      resp.status = 503;
      resp.body = "{\"error\":\"no snapshot published yet\"}";
      return resp;
    }
    const std::string suffix = req.path.substr(std::string("/lineage/").size());
    PatternId id = 0;
    std::istringstream in(suffix);
    if (suffix.empty() || !(in >> id) || !in.eof()) {
      resp.status = 400;
      resp.body = "{\"error\":\"usage: /lineage/<numeric pattern id>\"}";
      return resp;
    }
    std::string body = snap->lineage->LineageJson(id);
    if (body.empty()) {
      resp.status = 404;
      resp.body = "{\"error\":\"no lineage for pattern " + suffix + "\"}";
      return resp;
    }
    resp.body = std::move(body);
    return resp;
  });

  telemetry_->Handle("/historyz", [this](const obs::HttpRequest& req) {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    if (history_ == nullptr) {
      resp.status = 404;
      resp.body = "{\"error\":\"metric history disabled "
                  "(HostConfig::history_enabled)\"}";
      return resp;
    }
    const std::string metric = req.QueryParam("metric");
    double window_s = 60.0;
    size_t buckets = 60;
    if (const std::string w = req.QueryParam("window"); !w.empty()) {
      std::istringstream in(w);
      in >> window_s;
    }
    if (const std::string b = req.QueryParam("buckets"); !b.empty()) {
      std::istringstream in(b);
      in >> buckets;
    }
    if (window_s <= 0.0) window_s = 60.0;
    if (buckets == 0 || buckets > 10000) buckets = 60;
    resp.body = history_->QueryJson(metric, HistoryNowMs(),
                                    window_s * 1000.0, buckets);
    return resp;
  });

  telemetry_->Handle("/alertz", [this](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.content_type = "application/json";
    if (alerter_ == nullptr) {
      resp.body = "{\"enabled\":false}";
      return resp;
    }
    resp.body = alerter_->ToJson(HistoryNowMs());
    return resp;
  });

  telemetry_->Handle("/spans", [](const obs::HttpRequest& req) {
    obs::HttpResponse resp;
    obs::SpanProfiler& prof = obs::SpanProfiler::Current();
    if (req.QueryParam("fmt") == "folded") {
      resp.body = prof.ExportFolded();
    } else if (!prof.enabled() && prof.size() == 0) {
      resp.body = "span profiler disabled (HostConfig::profile_spans)\n";
    } else {
      resp.body = prof.ExportTopTable();
    }
    return resp;
  });

  obs::InstallTraceRoutes(telemetry_.get(), &flights_);
}

HostStats EngineHost::stats() const {
  HostStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected_validation = rejected_validation_.load(std::memory_order_relaxed);
  s.rejected_overflow = rejected_overflow_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.writer_rejected = writer_rejected_.load(std::memory_order_relaxed);
  s.rounds_ok = rounds_ok_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.recoveries = recoveries_.load(std::memory_order_relaxed);
  s.recovery_failures = recovery_failures_.load(std::memory_order_relaxed);
  s.quarantined = quarantined_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  s.submit_timeouts = submit_timeouts_.load(std::memory_order_relaxed);
  s.scrub_ticks = scrub_ticks_.load(std::memory_order_relaxed);
  s.integrity_violations =
      integrity_violations_.load(std::memory_order_relaxed);
  s.integrity_repairs = integrity_repairs_.load(std::memory_order_relaxed);
  s.integrity_refusals = integrity_refusals_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace serve
}  // namespace midas
