#include "midas/serve/admission.h"

#include <algorithm>
#include <functional>
#include <set>

namespace midas {
namespace serve {

namespace {

BatchValidation ValidateWith(
    const BatchUpdate& batch, const AdmissionLimits& limits,
    const std::function<bool(GraphId)>& is_live) {
  BatchValidation v;
  auto error = [&v](BatchProblem problem, std::string detail) {
    v.diagnostics.push_back({problem, true, std::move(detail)});
    ++v.errors;
  };
  auto warning = [&v](BatchProblem problem, std::string detail) {
    v.diagnostics.push_back({problem, false, std::move(detail)});
    ++v.warnings;
  };

  if (batch.Empty() && !limits.allow_empty) {
    error(BatchProblem::kEmptyBatch, "batch has no insertions and no deletions");
  }
  size_t items = batch.insertions.size() + batch.deletions.size();
  if (limits.max_batch_items > 0 && items > limits.max_batch_items) {
    error(BatchProblem::kBatchTooLarge,
          "batch has " + std::to_string(items) + " items, limit " +
              std::to_string(limits.max_batch_items));
  }

  for (size_t i = 0; i < batch.insertions.size(); ++i) {
    const Graph& g = batch.insertions[i];
    if (g.NumVertices() == 0) {
      error(BatchProblem::kEmptyGraph,
            "insertion #" + std::to_string(i) + ": graph has no vertices");
      continue;
    }
    if (limits.max_graph_vertices > 0 &&
        g.NumVertices() > limits.max_graph_vertices) {
      error(BatchProblem::kOversizedGraph,
            "insertion #" + std::to_string(i) + ": " +
                std::to_string(g.NumVertices()) + " vertices, limit " +
                std::to_string(limits.max_graph_vertices));
    }
    if (limits.max_graph_edges > 0 && g.NumEdges() > limits.max_graph_edges) {
      error(BatchProblem::kOversizedGraph,
            "insertion #" + std::to_string(i) + ": " +
                std::to_string(g.NumEdges()) + " edges, limit " +
                std::to_string(limits.max_graph_edges));
    }
  }

  std::set<GraphId> seen;
  std::vector<GraphId> deduped;
  deduped.reserve(batch.deletions.size());
  for (size_t i = 0; i < batch.deletions.size(); ++i) {
    GraphId id = batch.deletions[i];
    if (!seen.insert(id).second) {
      warning(BatchProblem::kDuplicateDeletion,
              "deletion #" + std::to_string(i) + " (id " + std::to_string(id) +
                  "): repeated within the batch; deduped");
      continue;
    }
    if (!is_live(id)) {
      error(BatchProblem::kDanglingDeletion,
            "deletion #" + std::to_string(i) + " (id " + std::to_string(id) +
                "): not in database");
      continue;
    }
    deduped.push_back(id);
  }

  v.admissible = v.errors == 0;
  if (v.admissible) {
    v.normalized.insertions = batch.insertions;
    v.normalized.deletions = std::move(deduped);
  }
  return v;
}

}  // namespace

const char* BatchProblemName(BatchProblem problem) {
  switch (problem) {
    case BatchProblem::kEmptyBatch:
      return "empty_batch";
    case BatchProblem::kBatchTooLarge:
      return "batch_too_large";
    case BatchProblem::kEmptyGraph:
      return "empty_graph";
    case BatchProblem::kOversizedGraph:
      return "oversized_graph";
    case BatchProblem::kDanglingDeletion:
      return "dangling_deletion";
    case BatchProblem::kDuplicateDeletion:
      return "duplicate_deletion";
  }
  return "unknown";
}

std::string BatchValidation::Describe() const {
  std::string out;
  for (const BatchDiagnostic& d : diagnostics) {
    if (!out.empty()) out += "; ";
    out += std::string(BatchProblemName(d.problem)) + ": " + d.detail;
  }
  return out;
}

BatchValidation ValidateBatch(const BatchUpdate& batch,
                              const std::vector<GraphId>& live_ids,
                              const AdmissionLimits& limits) {
  return ValidateWith(batch, limits, [&live_ids](GraphId id) {
    return std::binary_search(live_ids.begin(), live_ids.end(), id);
  });
}

BatchValidation ValidateBatch(const BatchUpdate& batch,
                              const GraphDatabase& db,
                              const AdmissionLimits& limits) {
  return ValidateWith(batch, limits,
                      [&db](GraphId id) { return db.Contains(id); });
}

}  // namespace serve
}  // namespace midas
