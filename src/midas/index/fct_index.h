#ifndef MIDAS_INDEX_FCT_INDEX_H_
#define MIDAS_INDEX_FCT_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "midas/common/id_set.h"
#include "midas/common/sparse_matrix.h"
#include "midas/graph/graph_database.h"
#include "midas/index/trie.h"
#include "midas/mining/fct_set.h"

namespace midas {

/// FCT-Index (Definition 5.1): a token trie over the canonical strings of
/// the frequent closed trees and frequent edges, whose terminals point into
/// two sparse matrices:
///   - TG-matrix: feature row x data-graph column -> number of embeddings;
///   - TP-matrix: feature row x canned-pattern column -> number of embeddings.
///
/// The index answers "which graphs can possibly contain pattern p?" by
/// entrywise dominance: if p has c embeddings of feature f, any containing
/// graph has >= c (embeddings compose injectively), so candidate graphs are
/// those whose TG column dominates p's feature-count vector. Embedding counts
/// are uniformly capped, which preserves the dominance filter's soundness.
class FctIndex {
 public:
  struct Config {
    int32_t embedding_cap = 1 << 20;
  };

  FctIndex() = default;

  /// Builds rows from fcts' frequent closed trees + frequent edges and
  /// columns from all graphs of db (pattern columns start empty).
  static FctIndex Build(const GraphDatabase& db, const FctSet& fcts,
                        const Config& config);
  static FctIndex Build(const GraphDatabase& db, const FctSet& fcts);

  /// --- graph-side maintenance -------------------------------------------
  void AddGraph(GraphId id, const Graph& g);
  void RemoveGraph(GraphId id);

  /// --- pattern-side maintenance -----------------------------------------
  void AddPattern(uint32_t pattern_id, const Graph& pattern);
  void RemovePattern(uint32_t pattern_id);

  /// --- feature-side maintenance -----------------------------------------
  /// Re-synchronizes the feature rows with a maintained FctSet: obsolete
  /// rows are dropped, new features get fresh rows counted against the
  /// current database (via their occurrence lists) and registered patterns.
  void SyncFeatures(const GraphDatabase& db, const FctSet& fcts);

  /// Embedding counts of all live features in an arbitrary graph, as
  /// (row, count) with count > 0.
  std::vector<std::pair<uint32_t, int32_t>> FeatureCounts(
      const Graph& g) const;

  /// Data graphs whose TG column dominates `counts` entrywise. When counts
  /// is empty the filter is vacuous and `universe` is returned.
  IdSet CandidateGraphs(
      const std::vector<std::pair<uint32_t, int32_t>>& counts,
      const IdSet& universe) const;

  /// Stored embedding counts of a registered pattern (TP column).
  std::vector<std::pair<uint32_t, int32_t>> PatternCounts(
      uint32_t pattern_id) const;

  size_t NumFeatures() const { return live_rows_; }
  const TokenTrie& trie() const { return trie_; }
  const SparseMatrix& tg_matrix() const { return tg_; }
  const SparseMatrix& tp_matrix() const { return tp_; }
  /// Feature tree of a row (1-edge trees for frequent edges).
  const Graph* FeatureTree(uint32_t row) const;

  size_t MemoryBytes() const;

 private:
  int32_t CountCapped(const Graph& feature, const Graph& g) const;
  uint32_t AddRow(const Graph& tree, const std::vector<uint32_t>& tokens);

  Config config_;
  TokenTrie trie_;
  std::vector<Graph> feature_trees_;        // row -> feature tree
  std::vector<bool> row_live_;
  size_t live_rows_ = 0;
  SparseMatrix tg_;
  SparseMatrix tp_;
  std::unordered_map<uint32_t, Graph> patterns_;  // registered patterns
};

}  // namespace midas

#endif  // MIDAS_INDEX_FCT_INDEX_H_
