#include "midas/index/pf_matrix.h"

#include <algorithm>
#include <limits>
#include <map>

#include "midas/graph/ged.h"
#include "midas/graph/subgraph_iso.h"

namespace midas {

PfMatrix BuildPfMatrix(const Graph& g, const std::vector<Graph>& features,
                       size_t max_embeddings) {
  PfMatrix pf;
  auto edges = g.Edges();
  std::map<std::pair<VertexId, VertexId>, size_t> edge_row;
  for (size_t i = 0; i < edges.size(); ++i) edge_row[edges[i]] = i;
  pf.rows.assign(edges.size(), {});

  for (size_t fi = 0; fi < features.size(); ++fi) {
    const Graph& f = features[fi];
    auto f_edges = f.Edges();
    for (const auto& m : FindEmbeddings(f, g, max_embeddings)) {
      size_t col = pf.feature_of_column.size();
      pf.feature_of_column.push_back(fi);
      for (auto& row : pf.rows) row.push_back(0);
      for (const auto& [fu, fv] : f_edges) {
        VertexId gu = m[fu];
        VertexId gv = m[fv];
        if (gu > gv) std::swap(gu, gv);
        auto it = edge_row.find({gu, gv});
        if (it != edge_row.end()) pf.rows[it->second][col] = 1;
      }
    }
  }
  return pf;
}

int ComputeRelaxedEdges(const Graph& a, const Graph& b,
                        const std::vector<Graph>& features,
                        size_t max_embeddings) {
  const Graph& small = a.NumEdges() <= b.NumEdges() ? a : b;
  const Graph& big = a.NumEdges() <= b.NumEdges() ? b : a;

  PfMatrix pf = BuildPfMatrix(small, features, max_embeddings);
  size_t num_features = features.size();

  // Allowed embedding budget per feature = count in the big graph.
  std::vector<int> budget(num_features, 0);
  for (size_t fi = 0; fi < num_features; ++fi) {
    budget[fi] = static_cast<int>(
        CountEmbeddings(features[fi], big, max_embeddings));
  }

  std::vector<bool> column_alive(pf.feature_of_column.size(), true);
  std::vector<bool> edge_relaxed(pf.rows.size(), false);
  std::vector<int> live_count(num_features, 0);
  for (size_t c = 0; c < pf.feature_of_column.size(); ++c) {
    ++live_count[pf.feature_of_column[c]];
  }

  auto surplus_exists = [&]() {
    for (size_t fi = 0; fi < num_features; ++fi) {
      if (live_count[fi] > budget[fi]) return true;
    }
    return false;
  };
  if (!surplus_exists()) return 0;

  // Exact minimum for small graphs: try deletion sets of increasing size.
  if (pf.rows.size() <= 12) {
    size_t num_edges = pf.rows.size();
    size_t num_cols = pf.feature_of_column.size();
    for (size_t k = 1; k < num_edges; ++k) {
      // Enumerate all k-subsets of edges via bitmask combinations.
      std::vector<size_t> pick(k);
      for (size_t i = 0; i < k; ++i) pick[i] = i;
      while (true) {
        std::vector<int> live = live_count;
        for (size_t c = 0; c < num_cols; ++c) {
          for (size_t i = 0; i < k; ++i) {
            if (pf.rows[pick[i]][c]) {
              --live[pf.feature_of_column[c]];
              break;
            }
          }
        }
        bool ok = true;
        for (size_t fi = 0; fi < num_features; ++fi) {
          if (live[fi] > budget[fi]) {
            ok = false;
            break;
          }
        }
        if (ok) return static_cast<int>(k);
        // Next combination.
        size_t i = k;
        while (i > 0 && pick[i - 1] == num_edges - k + i - 1) --i;
        if (i == 0) break;
        ++pick[i - 1];
        for (size_t j = i; j < k; ++j) pick[j] = pick[j - 1] + 1;
      }
    }
    return static_cast<int>(num_edges);
  }

  int relaxed = 0;
  while (surplus_exists()) {
    // Pick the edge whose relaxation kills the most surplus embeddings.
    int best_edge = -1;
    int best_kills = 0;
    for (size_t e = 0; e < pf.rows.size(); ++e) {
      if (edge_relaxed[e]) continue;
      int kills = 0;
      for (size_t c = 0; c < pf.rows[e].size(); ++c) {
        if (column_alive[c] && pf.rows[e][c] &&
            live_count[pf.feature_of_column[c]] > budget[pf.feature_of_column[c]]) {
          ++kills;
        }
      }
      if (kills > best_kills) {
        best_kills = kills;
        best_edge = static_cast<int>(e);
      }
    }
    if (best_edge < 0) break;  // surplus embeddings use no edges (unreachable)
    edge_relaxed[static_cast<size_t>(best_edge)] = true;
    ++relaxed;
    for (size_t c = 0; c < pf.rows[static_cast<size_t>(best_edge)].size();
         ++c) {
      if (column_alive[c] && pf.rows[static_cast<size_t>(best_edge)][c]) {
        column_alive[c] = false;
        --live_count[pf.feature_of_column[c]];
      }
    }
  }
  return relaxed;
}

namespace {

// Number of vertex-label relabels already charged by GED_l's vertex part.
int VertexLabelMismatch(const Graph& a, const Graph& b) {
  std::map<Label, int> la;
  std::map<Label, int> lb;
  for (VertexId v = 0; v < a.NumVertices(); ++v) ++la[a.label(v)];
  for (VertexId v = 0; v < b.NumVertices(); ++v) ++lb[b.label(v)];
  int common = 0;
  for (const auto& [label, ca] : la) {
    auto it = lb.find(label);
    if (it != lb.end()) common += std::min(ca, it->second);
  }
  int mn = static_cast<int>(std::min(a.NumVertices(), b.NumVertices()));
  return mn - common;
}

}  // namespace

int GedTightLowerBoundWithFeatures(const Graph& a, const Graph& b,
                                   const std::vector<Graph>& features) {
  int n = ComputeRelaxedEdges(a, b, features);
  // A relaxed edge may be explained by an endpoint relabel rather than an
  // edge edit; each relabel (already charged in the vertex part) can absorb
  // relaxations of all edges incident to the relabeled vertex. Conservative
  // correction: discount max-degree edges per mismatched label.
  int mismatches = VertexLabelMismatch(a, b);
  size_t max_deg = 0;
  const Graph& small = a.NumEdges() <= b.NumEdges() ? a : b;
  for (VertexId v = 0; v < small.NumVertices(); ++v) {
    max_deg = std::max(max_deg, small.Degree(v));
  }
  int discounted = n - mismatches * static_cast<int>(max_deg);
  return GedTightLowerBound(a, b, std::max(0, discounted));
}

int EstimateGed(const Graph& a, const Graph& b,
                const std::vector<Graph>& features,
                size_t exact_max_vertices, ExecBudget* budget) {
  if (a.NumVertices() <= exact_max_vertices &&
      b.NumVertices() <= exact_max_vertices) {
    return GedExactBudgeted(a, b, std::numeric_limits<int>::max(), budget)
        .distance;
  }
  return GedTightLowerBoundWithFeatures(a, b, features);
}

}  // namespace midas
