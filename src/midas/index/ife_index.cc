#include "midas/index/ife_index.h"

#include "midas/graph/subgraph_iso.h"

namespace midas {

uint32_t IfeIndex::RowFor(const EdgeLabelPair& lp) {
  auto it = row_of_.find(lp);
  if (it != row_of_.end()) return it->second;
  uint32_t row = next_row_++;
  row_of_.emplace(lp, row);
  edge_of_row_.push_back(lp);
  return row;
}

IfeIndex IfeIndex::Build(const GraphDatabase& db, const FctSet& fcts) {
  IfeIndex index;
  index.SyncEdges(db, fcts);
  return index;
}

void IfeIndex::SyncEdges(const GraphDatabase& db, const FctSet& fcts) {
  std::map<EdgeLabelPair, const IdSet*> desired;
  for (const auto& [lp, occ] : fcts.InfrequentEdges()) desired.emplace(lp, occ);

  // Remove rows for edges that are no longer infrequent.
  for (auto it = row_of_.begin(); it != row_of_.end();) {
    if (desired.count(it->first) == 0) {
      eg_.RemoveRow(it->second);
      ep_.RemoveRow(it->second);
      it = row_of_.erase(it);
    } else {
      ++it;
    }
  }
  // Add rows for new infrequent edges.
  for (const auto& [lp, occ] : desired) {
    if (row_of_.count(lp) > 0) continue;
    uint32_t row = RowFor(lp);
    for (GraphId id : *occ) {
      const Graph* g = db.Find(id);
      if (g == nullptr) continue;
      int32_t c = static_cast<int32_t>(CountEdgeEmbeddings(lp, *g));
      if (c > 0) eg_.Set(row, id, c);
    }
    for (const auto& [pid, pattern] : patterns_) {
      int32_t c = static_cast<int32_t>(CountEdgeEmbeddings(lp, pattern));
      if (c > 0) ep_.Set(row, pid, c);
    }
  }
}

void IfeIndex::AddGraph(GraphId id, const Graph& g) {
  for (const auto& [lp, row] : row_of_) {
    int32_t c = static_cast<int32_t>(CountEdgeEmbeddings(lp, g));
    if (c > 0) eg_.Set(row, id, c);
  }
}

void IfeIndex::RemoveGraph(GraphId id) { eg_.RemoveColumn(id); }

void IfeIndex::AddPattern(uint32_t pattern_id, const Graph& pattern) {
  patterns_[pattern_id] = pattern;
  for (const auto& [lp, row] : row_of_) {
    int32_t c = static_cast<int32_t>(CountEdgeEmbeddings(lp, pattern));
    if (c > 0) ep_.Set(row, pattern_id, c);
  }
}

void IfeIndex::RemovePattern(uint32_t pattern_id) {
  patterns_.erase(pattern_id);
  ep_.RemoveColumn(pattern_id);
}

std::vector<std::pair<uint32_t, int32_t>> IfeIndex::EdgeCounts(
    const Graph& g) const {
  std::vector<std::pair<uint32_t, int32_t>> counts;
  for (const auto& [lp, row] : row_of_) {
    int32_t c = static_cast<int32_t>(CountEdgeEmbeddings(lp, g));
    if (c > 0) counts.emplace_back(row, c);
  }
  return counts;
}

IdSet IfeIndex::CandidateGraphs(
    const std::vector<std::pair<uint32_t, int32_t>>& counts,
    const IdSet& universe) const {
  if (counts.empty()) return universe;
  bool first = true;
  IdSet candidates;
  for (const auto& [row, need] : counts) {
    IdSet matching;
    for (const auto& [col, have] : eg_.Row(row)) {
      if (have >= need) matching.Insert(col);
    }
    if (first) {
      candidates = IdSet::Intersection(matching, universe);
      first = false;
    } else {
      candidates = IdSet::Intersection(candidates, matching);
    }
    if (candidates.empty()) break;
  }
  return candidates;
}

size_t IfeIndex::MemoryBytes() const {
  return sizeof(*this) + eg_.MemoryBytes() + ep_.MemoryBytes() +
         row_of_.size() * (sizeof(EdgeLabelPair) + sizeof(uint32_t) +
                           3 * sizeof(void*));
}

}  // namespace midas
