#ifndef MIDAS_INDEX_IFE_INDEX_H_
#define MIDAS_INDEX_IFE_INDEX_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "midas/common/id_set.h"
#include "midas/common/sparse_matrix.h"
#include "midas/graph/graph_database.h"
#include "midas/mining/fct_set.h"

namespace midas {

/// IFE-Index (Definition 5.2): embedding counts of every *infrequent* edge
/// label over data graphs (EG-matrix) and canned patterns (EP-matrix).
///
/// Complements the FCT-Index: a candidate pattern containing an infrequent
/// edge can only be covered by graphs that contain that edge, so the
/// dominance filter over the EG-matrix prunes most of the database for
/// rare-edge patterns (Section 5.2).
class IfeIndex {
 public:
  IfeIndex() = default;

  /// Builds rows from fcts' infrequent edges; columns from their occurrence
  /// lists (pattern columns start empty).
  static IfeIndex Build(const GraphDatabase& db, const FctSet& fcts);

  void AddGraph(GraphId id, const Graph& g);
  void RemoveGraph(GraphId id);

  void AddPattern(uint32_t pattern_id, const Graph& pattern);
  void RemovePattern(uint32_t pattern_id);

  /// Re-synchronizes edge rows with a maintained FctSet (edges may migrate
  /// between the frequent and infrequent universes as support shifts).
  void SyncEdges(const GraphDatabase& db, const FctSet& fcts);

  /// Embedding counts of the tracked infrequent edges in a graph,
  /// as (row, count) with count > 0.
  std::vector<std::pair<uint32_t, int32_t>> EdgeCounts(const Graph& g) const;

  /// Data graphs whose EG column dominates `counts` entrywise; `universe`
  /// when counts is empty.
  IdSet CandidateGraphs(
      const std::vector<std::pair<uint32_t, int32_t>>& counts,
      const IdSet& universe) const;

  size_t NumEdges() const { return row_of_.size(); }
  const SparseMatrix& eg_matrix() const { return eg_; }
  const SparseMatrix& ep_matrix() const { return ep_; }

  size_t MemoryBytes() const;

 private:
  uint32_t RowFor(const EdgeLabelPair& lp);  // allocates on first use

  std::map<EdgeLabelPair, uint32_t> row_of_;   // live infrequent edges
  std::vector<EdgeLabelPair> edge_of_row_;
  uint32_t next_row_ = 0;
  SparseMatrix eg_;
  SparseMatrix ep_;
  std::unordered_map<uint32_t, Graph> patterns_;
};

}  // namespace midas

#endif  // MIDAS_INDEX_IFE_INDEX_H_
