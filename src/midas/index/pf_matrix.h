#ifndef MIDAS_INDEX_PF_MATRIX_H_
#define MIDAS_INDEX_PF_MATRIX_H_

#include <vector>

#include "midas/common/budget.h"
#include "midas/graph/graph.h"

namespace midas {

/// Pattern-feature (PF) matrix machinery for the tightened GED lower bound
/// (Section 6.1, Lemma 6.1).
///
/// Rows are the edges of a graph; columns are individual embeddings of
/// subtree features (FCTs, frequent and infrequent edges). An entry is 1
/// when the edge participates in the embedding. If graph A's embedding
/// multiset does not fit inside graph B's, edges of A must be "relaxed"
/// (excluded from matching) until it does; the number of such relaxations n
/// tightens GED_l to GED'_l = GED_l + n.

/// PF-matrix of one graph against a feature list.
struct PfMatrix {
  /// rows[e][c] = 1 iff edge e of the graph participates in embedding c.
  std::vector<std::vector<uint8_t>> rows;
  /// feature_of_column[c] = index into the feature list.
  std::vector<size_t> feature_of_column;
};

/// Builds the PF-matrix of g. At most `max_embeddings` embeddings are
/// materialized per feature.
PfMatrix BuildPfMatrix(const Graph& g, const std::vector<Graph>& features,
                       size_t max_embeddings = 32);

/// Number of edges of the smaller graph (fewer edges; ties pick a) that must
/// be relaxed before its per-feature embedding counts fit within the other
/// graph's. Greedy maximal-coverage deletion over the PF-matrix.
int ComputeRelaxedEdges(const Graph& a, const Graph& b,
                        const std::vector<Graph>& features,
                        size_t max_embeddings = 32);

/// GED'_l with relabel correction: relaxations explainable by vertex-label
/// mismatches (already charged in GED_l's vertex part) are not double
/// counted. Used to rank pattern diversity (Section 6.1).
///
/// NOTE: like the paper's Lemma 6.1, this is a *ranking heuristic*. Vertex
/// relabels can invalidate feature embeddings without any edge edit, so the
/// tightened value can overshoot the true GED by a small amount in
/// relabel-heavy corner cases. It always dominates GedLowerBound and is 0
/// for isomorphic graphs; anywhere a sound bound is required (the swap
/// criteria sw3), the plain GedLowerBound is used instead.
int GedTightLowerBoundWithFeatures(const Graph& a, const Graph& b,
                                   const std::vector<Graph>& features);

/// Diversity-oriented GED estimate: exact branch & bound when both graphs
/// have at most `exact_max_vertices` vertices, otherwise the tightened
/// lower bound. When `budget` is non-null the exact branch is budgeted
/// (see GedExactBudgeted): on exhaustion it degrades to the anytime upper
/// bound, which preserves the estimator's ranking use — patterns merely
/// look at most as diverse as they are.
int EstimateGed(const Graph& a, const Graph& b,
                const std::vector<Graph>& features,
                size_t exact_max_vertices = 8, ExecBudget* budget = nullptr);

}  // namespace midas

#endif  // MIDAS_INDEX_PF_MATRIX_H_
