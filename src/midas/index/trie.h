#ifndef MIDAS_INDEX_TRIE_H_
#define MIDAS_INDEX_TRIE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace midas {

/// Token trie over canonical tree strings (Definition 5.1).
///
/// Each trie node corresponds to one token of a canonical string; terminal
/// nodes carry the row key of the feature in the TG-/TP-matrices (the
/// paper's graph/pattern pointers). Removal unmarks terminals; nodes are
/// kept (the trie is small and shared prefixes usually persist).
class TokenTrie {
 public:
  TokenTrie() { nodes_.emplace_back(); }

  /// Inserts a token sequence with its row key. Returns false (and updates
  /// the key) if the sequence was already present.
  bool Insert(const std::vector<uint32_t>& tokens, uint32_t row_key);

  /// Row key of the sequence, or -1 when absent.
  int64_t Lookup(const std::vector<uint32_t>& tokens) const;

  /// Unmarks the terminal; returns false when the sequence was absent.
  bool Remove(const std::vector<uint32_t>& tokens);

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEntries() const { return entries_; }
  /// Depth of the deepest terminal (the `m` of Lemma 5.3).
  size_t MaxDepth() const { return max_depth_; }

  size_t MemoryBytes() const;

 private:
  struct Node {
    std::map<uint32_t, uint32_t> children;  // token -> node index
    int64_t row_key = -1;                   // -1 = not terminal
  };

  std::vector<Node> nodes_;
  size_t entries_ = 0;
  size_t max_depth_ = 0;
};

}  // namespace midas

#endif  // MIDAS_INDEX_TRIE_H_
