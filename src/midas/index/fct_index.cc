#include "midas/index/fct_index.h"

#include <algorithm>
#include <set>

#include "midas/graph/canonical.h"
#include "midas/graph/subgraph_iso.h"

namespace midas {

int32_t FctIndex::CountCapped(const Graph& feature, const Graph& g) const {
  size_t cap = static_cast<size_t>(config_.embedding_cap);
  size_t n;
  if (feature.NumEdges() == 1) {
    auto edges = feature.Edges();
    n = CountEdgeEmbeddings(feature.EdgeLabel(edges[0].first, edges[0].second),
                            g);
  } else {
    n = CountEmbeddings(feature, g, cap);
  }
  return static_cast<int32_t>(std::min(n, cap));
}

uint32_t FctIndex::AddRow(const Graph& tree,
                          const std::vector<uint32_t>& tokens) {
  uint32_t row = static_cast<uint32_t>(feature_trees_.size());
  feature_trees_.push_back(tree);
  row_live_.push_back(true);
  ++live_rows_;
  trie_.Insert(tokens, row);
  return row;
}

FctIndex FctIndex::Build(const GraphDatabase& db, const FctSet& fcts,
                         const Config& config) {
  FctIndex index;
  index.config_ = config;
  index.SyncFeatures(db, fcts);
  return index;
}

FctIndex FctIndex::Build(const GraphDatabase& db, const FctSet& fcts) {
  return Build(db, fcts, Config());
}

void FctIndex::SyncFeatures(const GraphDatabase& db, const FctSet& fcts) {
  // Desired feature universe: frequent closed trees + frequent edges.
  struct Wanted {
    const Graph* tree;
    const IdSet* occurrences;
  };
  std::vector<std::pair<std::vector<uint32_t>, Wanted>> wanted;
  std::vector<Graph> edge_trees;  // storage for 1-edge trees
  edge_trees.reserve(fcts.FrequentEdges().size());

  // Dedup by token sequence: a frequent edge can coincide with a 1-edge FCT,
  // and duplicate rows would fight over the same trie terminal.
  std::set<std::vector<uint32_t>> seen_tokens;
  for (const FctEntry* entry : fcts.FrequentClosedTrees()) {
    std::vector<uint32_t> tokens = CanonicalTreeTokens(entry->tree);
    if (!seen_tokens.insert(tokens).second) continue;
    wanted.push_back(
        {std::move(tokens), {&entry->tree, &entry->occurrences}});
  }
  for (const auto& [lp, occ] : fcts.FrequentEdges()) {
    Graph t;
    VertexId a = t.AddVertex(lp.first);
    VertexId b = t.AddVertex(lp.second);
    t.AddEdge(a, b);
    edge_trees.push_back(std::move(t));
    std::vector<uint32_t> tokens = CanonicalTreeTokens(edge_trees.back());
    if (!seen_tokens.insert(tokens).second) continue;
    wanted.push_back({std::move(tokens), {&edge_trees.back(), occ}});
  }

  // Mark which existing rows survive.
  std::vector<bool> survives(feature_trees_.size(), false);
  std::vector<size_t> fresh;  // indices into `wanted` needing new rows
  for (size_t i = 0; i < wanted.size(); ++i) {
    int64_t row = trie_.Lookup(wanted[i].first);
    if (row >= 0 && row_live_[static_cast<size_t>(row)]) {
      survives[static_cast<size_t>(row)] = true;
    } else {
      fresh.push_back(i);
    }
  }
  // Drop obsolete rows.
  for (uint32_t row = 0; row < feature_trees_.size(); ++row) {
    if (row_live_[row] && !survives[row]) {
      row_live_[row] = false;
      --live_rows_;
      trie_.Remove(CanonicalTreeTokens(feature_trees_[row]));
      tg_.RemoveRow(row);
      tp_.RemoveRow(row);
    }
  }
  // Add new rows and count their embeddings over the database (restricted
  // to the feature's occurrence list) and over registered patterns.
  for (size_t i : fresh) {
    const auto& [tokens, w] = wanted[i];
    uint32_t row = AddRow(*w.tree, tokens);
    for (GraphId id : *w.occurrences) {
      const Graph* g = db.Find(id);
      if (g == nullptr) continue;
      int32_t c = CountCapped(feature_trees_[row], *g);
      if (c > 0) tg_.Set(row, id, c);
    }
    for (const auto& [pid, pattern] : patterns_) {
      int32_t c = CountCapped(feature_trees_[row], pattern);
      if (c > 0) tp_.Set(row, pid, c);
    }
  }
}

void FctIndex::AddGraph(GraphId id, const Graph& g) {
  for (uint32_t row = 0; row < feature_trees_.size(); ++row) {
    if (!row_live_[row]) continue;
    int32_t c = CountCapped(feature_trees_[row], g);
    if (c > 0) tg_.Set(row, id, c);
  }
}

void FctIndex::RemoveGraph(GraphId id) { tg_.RemoveColumn(id); }

void FctIndex::AddPattern(uint32_t pattern_id, const Graph& pattern) {
  patterns_[pattern_id] = pattern;
  for (uint32_t row = 0; row < feature_trees_.size(); ++row) {
    if (!row_live_[row]) continue;
    int32_t c = CountCapped(feature_trees_[row], pattern);
    if (c > 0) tp_.Set(row, pattern_id, c);
  }
}

void FctIndex::RemovePattern(uint32_t pattern_id) {
  patterns_.erase(pattern_id);
  tp_.RemoveColumn(pattern_id);
}

std::vector<std::pair<uint32_t, int32_t>> FctIndex::FeatureCounts(
    const Graph& g) const {
  std::vector<std::pair<uint32_t, int32_t>> counts;
  for (uint32_t row = 0; row < feature_trees_.size(); ++row) {
    if (!row_live_[row]) continue;
    int32_t c = CountCapped(feature_trees_[row], g);
    if (c > 0) counts.emplace_back(row, c);
  }
  return counts;
}

IdSet FctIndex::CandidateGraphs(
    const std::vector<std::pair<uint32_t, int32_t>>& counts,
    const IdSet& universe) const {
  if (counts.empty()) return universe;
  bool first = true;
  IdSet candidates;
  for (const auto& [row, need] : counts) {
    IdSet matching;
    for (const auto& [col, have] : tg_.Row(row)) {
      if (have >= need) matching.Insert(col);
    }
    if (first) {
      candidates = IdSet::Intersection(matching, universe);
      first = false;
    } else {
      candidates = IdSet::Intersection(candidates, matching);
    }
    if (candidates.empty()) break;
  }
  return candidates;
}

std::vector<std::pair<uint32_t, int32_t>> FctIndex::PatternCounts(
    uint32_t pattern_id) const {
  std::vector<std::pair<uint32_t, int32_t>> counts;
  for (uint32_t row = 0; row < feature_trees_.size(); ++row) {
    if (!row_live_[row]) continue;
    int32_t c = tp_.Get(row, pattern_id);
    if (c > 0) counts.emplace_back(row, c);
  }
  return counts;
}

const Graph* FctIndex::FeatureTree(uint32_t row) const {
  if (row >= feature_trees_.size() || !row_live_[row]) return nullptr;
  return &feature_trees_[row];
}

size_t FctIndex::MemoryBytes() const {
  size_t bytes = sizeof(*this) + trie_.MemoryBytes() + tg_.MemoryBytes() +
                 tp_.MemoryBytes();
  for (const Graph& t : feature_trees_) {
    bytes += t.NumVertices() * (sizeof(Label) + sizeof(void*)) +
             t.NumEdges() * 2 * sizeof(VertexId);
  }
  return bytes;
}

}  // namespace midas
