#include "midas/index/trie.h"

namespace midas {

bool TokenTrie::Insert(const std::vector<uint32_t>& tokens, uint32_t row_key) {
  uint32_t node = 0;
  for (uint32_t token : tokens) {
    auto it = nodes_[node].children.find(token);
    if (it == nodes_[node].children.end()) {
      uint32_t child = static_cast<uint32_t>(nodes_.size());
      nodes_[node].children.emplace(token, child);
      nodes_.emplace_back();
      node = child;
    } else {
      node = it->second;
    }
  }
  bool fresh = nodes_[node].row_key < 0;
  nodes_[node].row_key = row_key;
  if (fresh) {
    ++entries_;
    if (tokens.size() > max_depth_) max_depth_ = tokens.size();
  }
  return fresh;
}

int64_t TokenTrie::Lookup(const std::vector<uint32_t>& tokens) const {
  uint32_t node = 0;
  for (uint32_t token : tokens) {
    auto it = nodes_[node].children.find(token);
    if (it == nodes_[node].children.end()) return -1;
    node = it->second;
  }
  return nodes_[node].row_key;
}

bool TokenTrie::Remove(const std::vector<uint32_t>& tokens) {
  uint32_t node = 0;
  for (uint32_t token : tokens) {
    auto it = nodes_[node].children.find(token);
    if (it == nodes_[node].children.end()) return false;
    node = it->second;
  }
  if (nodes_[node].row_key < 0) return false;
  nodes_[node].row_key = -1;
  --entries_;
  return true;
}

size_t TokenTrie::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Node& n : nodes_) {
    bytes += sizeof(Node);
    bytes += n.children.size() * (sizeof(uint32_t) * 2 + 3 * sizeof(void*));
  }
  return bytes;
}

}  // namespace midas
