#include "midas/datagen/molecule_gen.h"

#include <algorithm>
#include <array>

namespace midas {
namespace {

// Weighted atom alphabet (hydrogens explicit, as in the paper's Figure 2).
struct AtomWeight {
  const char* symbol;
  double weight;
};
constexpr AtomWeight kAtoms[] = {
    {"C", 0.50}, {"O", 0.14}, {"N", 0.12}, {"H", 0.12},
    {"S", 0.05}, {"P", 0.04}, {"Cl", 0.03},
};

std::string PickAtom(Rng& rng) {
  std::vector<double> weights;
  for (const AtomWeight& a : kAtoms) weights.push_back(a.weight);
  int pick = rng.PickWeighted(weights);
  return kAtoms[pick < 0 ? 0 : pick].symbol;
}

// Novel compound families (the boronic-ester scenario) draw from a visibly
// different alphabet — boron- and oxygen-rich — so their arrival changes
// label and subtree statistics the way a genuinely new compound class does.
constexpr AtomWeight kNovelAtoms[] = {
    {"B", 0.28}, {"O", 0.30}, {"C", 0.27}, {"N", 0.15},
};

std::string PickNovelAtom(Rng& rng) {
  std::vector<double> weights;
  for (const AtomWeight& a : kNovelAtoms) weights.push_back(a.weight);
  int pick = rng.PickWeighted(weights);
  return kNovelAtoms[pick < 0 ? 0 : pick].symbol;
}

// Characteristic heteroatom per scaffold family (cycled).
const char* FamilyHeteroatom(size_t family) {
  static constexpr const char* kHetero[] = {"O", "N", "S", "P", "Cl", "O",
                                            "N", "S"};
  return kHetero[family % (sizeof(kHetero) / sizeof(kHetero[0]))];
}

// Attaches a small functional-group motif at `anchor`.
void AttachMotif(Graph& g, LabelDictionary& dict, VertexId anchor, int kind) {
  Label c = dict.Intern("C");
  Label o = dict.Intern("O");
  Label n = dict.Intern("N");
  Label h = dict.Intern("H");
  Label b = dict.Intern("B");
  switch (kind % 4) {
    case 0: {  // carboxyl-like: C(=O)O
      VertexId cc = g.AddVertex(c);
      VertexId o1 = g.AddVertex(o);
      VertexId o2 = g.AddVertex(o);
      g.AddEdge(anchor, cc);
      g.AddEdge(cc, o1);
      g.AddEdge(cc, o2);
      break;
    }
    case 1: {  // amine-like: N(H)(H)
      VertexId nn = g.AddVertex(n);
      VertexId h1 = g.AddVertex(h);
      VertexId h2 = g.AddVertex(h);
      g.AddEdge(anchor, nn);
      g.AddEdge(nn, h1);
      g.AddEdge(nn, h2);
      break;
    }
    case 2: {  // hydroxyl chain: O-H
      VertexId oo = g.AddVertex(o);
      VertexId hh = g.AddVertex(h);
      g.AddEdge(anchor, oo);
      g.AddEdge(oo, hh);
      break;
    }
    default: {  // boronic-ester-like ring: B(O)(O) closed over a C
      VertexId bb = g.AddVertex(b);
      VertexId o1 = g.AddVertex(o);
      VertexId o2 = g.AddVertex(o);
      VertexId cc = g.AddVertex(c);
      g.AddEdge(anchor, bb);
      g.AddEdge(bb, o1);
      g.AddEdge(bb, o2);
      g.AddEdge(o1, cc);
      g.AddEdge(o2, cc);
      break;
    }
  }
}

// Family scaffold: a ring of family-specific size with a heteroatom, plus a
// short carbon tail. Deterministic per (family_seed, family, novel).
Graph MakeScaffold(LabelDictionary& dict, uint64_t family_seed, size_t family,
                   bool novel) {
  Rng rng(family_seed * 1000003ULL + family * 97ULL + (novel ? 31337ULL : 0));
  Graph g;
  Label c = dict.Intern("C");
  Label hetero = novel ? dict.Intern("B")
                       : dict.Intern(FamilyHeteroatom(family));
  Label o = dict.Intern("O");

  size_t ring_size = static_cast<size_t>(rng.UniformInt(5, 6));
  std::vector<VertexId> ring;
  for (size_t i = 0; i < ring_size; ++i) {
    // Novel scaffolds alternate B/O around the ring; base scaffolds are
    // carbon rings with one heteroatom.
    Label l = i == 0 ? hetero : (novel && i % 2 == 1 ? o : c);
    ring.push_back(g.AddVertex(l));
  }
  for (size_t i = 0; i < ring_size; ++i) {
    g.AddEdge(ring[i], ring[(i + 1) % ring_size]);
  }
  // Tail of 1-3 carbons.
  VertexId tail = ring[1];
  size_t tail_len = static_cast<size_t>(rng.UniformInt(1, 3));
  for (size_t i = 0; i < tail_len; ++i) {
    VertexId next = g.AddVertex(c);
    g.AddEdge(tail, next);
    tail = next;
  }
  // Novel families carry the boron marker motif (Example 1.2's boronic
  // esters) so their arrival visibly shifts label and graphlet statistics.
  if (novel) AttachMotif(g, dict, tail, 3);
  return g;
}

}  // namespace

void MoleculeGenerator::InternAlphabet(LabelDictionary& dict) {
  for (const AtomWeight& a : kAtoms) dict.Intern(a.symbol);
  dict.Intern("B");
}

MoleculeGenConfig MoleculeGenerator::AidsLike(size_t num_graphs) {
  MoleculeGenConfig c;
  c.num_graphs = num_graphs;
  c.num_families = 8;
  c.min_vertices = 10;
  c.max_vertices = 28;
  c.ring_probability = 0.35;
  c.family_seed = 11;
  return c;
}

MoleculeGenConfig MoleculeGenerator::PubchemLike(size_t num_graphs) {
  MoleculeGenConfig c;
  c.num_graphs = num_graphs;
  c.num_families = 6;
  c.min_vertices = 8;
  c.max_vertices = 24;
  c.ring_probability = 0.25;
  c.family_seed = 23;
  return c;
}

MoleculeGenConfig MoleculeGenerator::EmolLike(size_t num_graphs) {
  MoleculeGenConfig c;
  c.num_graphs = num_graphs;
  c.num_families = 5;
  c.min_vertices = 6;
  c.max_vertices = 18;
  c.ring_probability = 0.2;
  c.family_seed = 37;
  return c;
}

Graph MoleculeGenerator::MakeMolecule(LabelDictionary& dict,
                                      const MoleculeGenConfig& config,
                                      size_t family, bool novel_family) {
  Graph g = MakeScaffold(dict, config.family_seed, family, novel_family);

  size_t target = static_cast<size_t>(rng_.UniformInt(
      static_cast<int64_t>(config.min_vertices),
      static_cast<int64_t>(config.max_vertices)));

  // Random tree growth up to the target vertex count.
  while (g.NumVertices() < target) {
    VertexId anchor =
        static_cast<VertexId>(rng_.UniformInt(0, g.NumVertices() - 1));
    Label l = dict.Intern(novel_family ? PickNovelAtom(rng_)
                                       : PickAtom(rng_));
    VertexId fresh = g.AddVertex(l);
    g.AddEdge(anchor, fresh);
  }
  // Occasional extra ring closure.
  if (rng_.Bernoulli(config.ring_probability) && g.NumVertices() >= 4) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      VertexId u =
          static_cast<VertexId>(rng_.UniformInt(0, g.NumVertices() - 1));
      VertexId v =
          static_cast<VertexId>(rng_.UniformInt(0, g.NumVertices() - 1));
      if (u != v && !g.HasEdge(u, v)) {
        g.AddEdge(u, v);
        break;
      }
    }
  }
  // Functional-group motifs. Novel families carry several copies of the
  // boron ring motif (Example 1.2's boronic esters): repeated 5-cycles and
  // diamonds shift the graphlet frequency distribution decisively, the way
  // a genuinely new compound class would.
  if (novel_family) {
    size_t copies = 1 + g.NumVertices() / 8;
    for (size_t i = 0; i < copies; ++i) {
      VertexId anchor =
          static_cast<VertexId>(rng_.UniformInt(0, g.NumVertices() - 1));
      AttachMotif(g, dict, anchor, 3);
    }
  } else if (rng_.Bernoulli(config.motif_probability)) {
    VertexId anchor =
        static_cast<VertexId>(rng_.UniformInt(0, g.NumVertices() - 1));
    AttachMotif(g, dict, anchor, static_cast<int>(rng_.UniformInt(0, 2)));
  }
  return g;
}

GraphDatabase MoleculeGenerator::Generate(const MoleculeGenConfig& config) {
  GraphDatabase db;
  InternAlphabet(db.labels());
  for (size_t i = 0; i < config.num_graphs; ++i) {
    size_t family = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(config.num_families) - 1));
    db.Insert(MakeMolecule(db.labels(), config, family, false));
  }
  return db;
}

BatchUpdate MoleculeGenerator::GenerateAdditions(
    GraphDatabase& db, const MoleculeGenConfig& config, size_t count,
    bool new_family) {
  BatchUpdate delta;
  InternAlphabet(db.labels());
  delta.insertions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t family;
    if (new_family) {
      // One previously unused family beyond the original universe.
      family = config.num_families + 1;
    } else {
      family = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(config.num_families) - 1));
    }
    delta.insertions.push_back(
        MakeMolecule(db.labels(), config, family, new_family));
  }
  return delta;
}

BatchUpdate MoleculeGenerator::GenerateTargetedDeletions(
    const GraphDatabase& db, const std::string& label_name,
    size_t max_count) {
  BatchUpdate delta;
  int label = db.labels().Lookup(label_name);
  if (label < 0) return delta;
  std::vector<GraphId> victims;
  for (const auto& [id, g] : db.graphs()) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (g.label(v) == static_cast<Label>(label)) {
        victims.push_back(id);
        break;
      }
    }
  }
  rng_.Shuffle(victims);
  if (victims.size() > max_count) victims.resize(max_count);
  delta.deletions = std::move(victims);
  return delta;
}

BatchUpdate MoleculeGenerator::GenerateDeletions(const GraphDatabase& db,
                                                 size_t count) {
  BatchUpdate delta;
  std::vector<GraphId> ids = db.Ids();
  rng_.Shuffle(ids);
  count = std::min(count, ids.size());
  delta.deletions.assign(ids.begin(), ids.begin() + count);
  return delta;
}

}  // namespace midas
