#ifndef MIDAS_DATAGEN_MOLECULE_GEN_H_
#define MIDAS_DATAGEN_MOLECULE_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "midas/common/rng.h"
#include "midas/graph/graph_database.h"

namespace midas {

/// Synthetic molecule-like graph database generator.
///
/// Stand-in for the paper's AIDS / PubChem / eMolecules datasets (see
/// DESIGN.md, substitution 1). Graphs are built from per-family scaffolds
/// (a small ring-bearing core with a characteristic heteroatom), decorated
/// with random tree growth, occasional ring closures, and functional-group
/// motifs — giving the three properties the algorithms exercise: cluster
/// structure, skewed subtree/label frequencies, and evolvable motif
/// composition. The "new family" update mode reproduces the boronic-ester
/// evolution scenario of Example 1.2: a batch of graphs built around a
/// previously unseen scaffold, shifting the graphlet distribution.
struct MoleculeGenConfig {
  size_t num_graphs = 500;
  size_t num_families = 6;
  size_t min_vertices = 8;
  size_t max_vertices = 24;
  double ring_probability = 0.25;   ///< extra ring-closing edge per graph
  double motif_probability = 0.65;  ///< attach a functional-group motif
  uint64_t family_seed = 7;         ///< derives per-family scaffolds
};

class MoleculeGenerator {
 public:
  explicit MoleculeGenerator(uint64_t seed) : rng_(seed) {}

  /// Interns the generator's full atom alphabet (C, O, N, H, S, P, Cl, B) in
  /// a fixed order. Called by Generate/GenerateAdditions, so every database
  /// or delta produced by any MoleculeGenerator uses identical label ids —
  /// deltas generated against a copy of a database remain valid against the
  /// original.
  static void InternAlphabet(LabelDictionary& dict);

  /// Dataset presets mirroring the paper's corpora at reduced scale.
  static MoleculeGenConfig AidsLike(size_t num_graphs);
  static MoleculeGenConfig PubchemLike(size_t num_graphs);
  static MoleculeGenConfig EmolLike(size_t num_graphs);

  /// Generates a fresh database.
  GraphDatabase Generate(const MoleculeGenConfig& config);

  /// A batch of `count` insertions compatible with db's label dictionary.
  /// With new_family = true the graphs come from one previously unused
  /// scaffold family (major modification); otherwise they are drawn from
  /// the existing families (minor modification).
  BatchUpdate GenerateAdditions(GraphDatabase& db,
                                const MoleculeGenConfig& config, size_t count,
                                bool new_family);

  /// A batch deleting `count` uniformly chosen existing graphs.
  /// Uniform deletions barely move the graphlet distribution (a minor
  /// modification); use GenerateTargetedDeletions for major ones.
  BatchUpdate GenerateDeletions(const GraphDatabase& db, size_t count);

  /// A batch deleting up to `max_count` graphs that contain the given atom
  /// label — wiping out a compound family, which *does* shift the label and
  /// graphlet statistics (a major deletion, the mirror image of a
  /// new-family insertion).
  BatchUpdate GenerateTargetedDeletions(const GraphDatabase& db,
                                        const std::string& label_name,
                                        size_t max_count);

  Rng& rng() { return rng_; }

 private:
  /// One molecule of family `family` interned into dict.
  Graph MakeMolecule(LabelDictionary& dict, const MoleculeGenConfig& config,
                     size_t family, bool novel_family);

  Rng rng_;
};

}  // namespace midas

#endif  // MIDAS_DATAGEN_MOLECULE_GEN_H_
