#ifndef MIDAS_DATAGEN_PROTEIN_GEN_H_
#define MIDAS_DATAGEN_PROTEIN_GEN_H_

#include <cstdint>

#include "midas/common/rng.h"
#include "midas/graph/graph_database.h"

namespace midas {

/// Protein-interaction-flavored graph generator — a second, structurally
/// different domain backing the paper's claim that the framework is
/// "independent of domains and data sources" (contribution b). Compared to
/// the molecule generator: larger graphs, hub-and-spoke topology
/// (preferential attachment instead of uniform tree growth), denser
/// triangle structure (complex cliques), and a protein-family label
/// alphabet (kinase, ligase, receptor, ...) instead of atoms.
struct ProteinGenConfig {
  size_t num_graphs = 200;
  size_t num_families = 5;     ///< interactome families (cluster structure)
  size_t min_vertices = 15;
  size_t max_vertices = 45;
  double triangle_probability = 0.35;  ///< close a wedge into a triangle
  size_t complex_size = 4;     ///< size of the per-family core complex
  uint64_t family_seed = 3;
};

class ProteinGenerator {
 public:
  explicit ProteinGenerator(uint64_t seed) : rng_(seed) {}

  /// Interns the protein-family alphabet in fixed order (same contract as
  /// MoleculeGenerator::InternAlphabet).
  static void InternAlphabet(LabelDictionary& dict);

  GraphDatabase Generate(const ProteinGenConfig& config);

  /// Insertion batch; new_family graphs come from a previously unused
  /// interactome family (major modification).
  BatchUpdate GenerateAdditions(GraphDatabase& db,
                                const ProteinGenConfig& config, size_t count,
                                bool new_family);

  Rng& rng() { return rng_; }

 private:
  Graph MakeInteractome(LabelDictionary& dict, const ProteinGenConfig& config,
                        size_t family, bool novel);

  Rng rng_;
};

}  // namespace midas

#endif  // MIDAS_DATAGEN_PROTEIN_GEN_H_
