#ifndef MIDAS_DATAGEN_WORKLOAD_H_
#define MIDAS_DATAGEN_WORKLOAD_H_

#include <vector>

#include "midas/common/rng.h"
#include "midas/graph/graph_database.h"

namespace midas {

/// Query workload generation (Section 7.1): queries are random connected
/// subgraphs of data graphs. After a batch insertion, the query set is
/// balanced so that half the queries come from Δ⁺ — the workload a GUI with
/// stale patterns struggles with.
struct QueryGenConfig {
  size_t count = 100;
  size_t min_edges = 4;
  size_t max_edges = 40;
};

/// Random connected edge-subgraph of g with ~target_edges edges (clipped to
/// |E(g)|); grown edge-by-edge from a random seed edge.
Graph RandomConnectedSubgraph(const Graph& g, size_t target_edges, Rng& rng);

/// Queries drawn from uniformly random graphs of db.
std::vector<Graph> GenerateQueries(const GraphDatabase& db,
                                   const QueryGenConfig& config, Rng& rng);

/// Balanced set: half the queries from `delta_ids` (when non-empty), the
/// rest from the remaining graphs.
std::vector<Graph> GenerateBalancedQueries(const GraphDatabase& db,
                                           const std::vector<GraphId>& delta_ids,
                                           const QueryGenConfig& config,
                                           Rng& rng);

}  // namespace midas

#endif  // MIDAS_DATAGEN_WORKLOAD_H_
