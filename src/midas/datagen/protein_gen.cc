#include "midas/datagen/protein_gen.h"

#include <algorithm>
#include <string>
#include <vector>

namespace midas {
namespace {

constexpr const char* kProteinFamilies[] = {
    "KIN",  // kinases
    "LIG",  // ligases
    "REC",  // receptors
    "TF",   // transcription factors
    "CHA",  // chaperones
    "PRO",  // proteases
    "MEM",  // membrane proteins
    "RIB",  // ribosomal proteins
};
constexpr size_t kNumProteinLabels =
    sizeof(kProteinFamilies) / sizeof(kProteinFamilies[0]);

Label PickProtein(LabelDictionary& dict, Rng& rng, size_t bias) {
  // Family-biased label draw: each interactome family over-represents one
  // protein class, which gives clustering something to find.
  if (rng.Bernoulli(0.4)) {
    return dict.Intern(kProteinFamilies[bias % kNumProteinLabels]);
  }
  return dict.Intern(kProteinFamilies[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(kNumProteinLabels) - 1))]);
}

}  // namespace

void ProteinGenerator::InternAlphabet(LabelDictionary& dict) {
  for (const char* f : kProteinFamilies) dict.Intern(f);
}

Graph ProteinGenerator::MakeInteractome(LabelDictionary& dict,
                                        const ProteinGenConfig& config,
                                        size_t family, bool novel) {
  Graph g;
  size_t bias = family + (novel ? 3 : 0);

  // Core complex: a clique of the family's signature protein class —
  // deterministic per family (the analogue of a molecule scaffold).
  Rng scaffold_rng(config.family_seed * 7919ULL + family * 13ULL +
                   (novel ? 104729ULL : 0));
  Label core_label = dict.Intern(
      kProteinFamilies[(bias + 1) % kNumProteinLabels]);
  std::vector<VertexId> core;
  for (size_t i = 0; i < config.complex_size; ++i) {
    core.push_back(g.AddVertex(core_label));
  }
  for (size_t i = 0; i < core.size(); ++i) {
    for (size_t j = i + 1; j < core.size(); ++j) {
      g.AddEdge(core[i], core[j]);
    }
  }

  // Preferential-attachment growth: hubs accumulate degree.
  size_t target = static_cast<size_t>(rng_.UniformInt(
      static_cast<int64_t>(config.min_vertices),
      static_cast<int64_t>(config.max_vertices)));
  while (g.NumVertices() < target) {
    // Pick an anchor proportional to degree + 1.
    std::vector<double> weights;
    weights.reserve(g.NumVertices());
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      weights.push_back(static_cast<double>(g.Degree(v)) + 1.0);
    }
    int anchor = rng_.PickWeighted(weights);
    if (anchor < 0) anchor = 0;
    VertexId fresh = g.AddVertex(PickProtein(dict, rng_, bias));
    g.AddEdge(static_cast<VertexId>(anchor), fresh);

    // Triadic closure: connect the newcomer to one of the anchor's other
    // neighbors (interaction partners of partners interact).
    if (rng_.Bernoulli(config.triangle_probability)) {
      const auto& neighbors = g.Neighbors(static_cast<VertexId>(anchor));
      if (neighbors.size() > 1) {
        VertexId other = neighbors[static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(neighbors.size()) - 1))];
        if (other != fresh) g.AddEdge(fresh, other);
      }
    }
  }
  return g;
}

GraphDatabase ProteinGenerator::Generate(const ProteinGenConfig& config) {
  GraphDatabase db;
  InternAlphabet(db.labels());
  for (size_t i = 0; i < config.num_graphs; ++i) {
    size_t family = static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(config.num_families) - 1));
    db.Insert(MakeInteractome(db.labels(), config, family, false));
  }
  return db;
}

BatchUpdate ProteinGenerator::GenerateAdditions(GraphDatabase& db,
                                                const ProteinGenConfig& config,
                                                size_t count,
                                                bool new_family) {
  BatchUpdate delta;
  InternAlphabet(db.labels());
  delta.insertions.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t family = new_family
                        ? config.num_families + 1
                        : static_cast<size_t>(rng_.UniformInt(
                              0, static_cast<int64_t>(config.num_families) -
                                     1));
    delta.insertions.push_back(
        MakeInteractome(db.labels(), config, family, new_family));
  }
  return delta;
}

}  // namespace midas
